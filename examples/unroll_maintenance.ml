(* Unrolling with HLI maintenance (paper Figure 6): the loop body is
   duplicated, the duplicated memory references get fresh items, and the
   loop's LCDD table is recomputed — a distance-1 dependence between
   b[j] and b[j-1] becomes a same-body alias between copy 0 and copy 1
   plus a distance-1 LCDD between the wrapped copies.

   Run with: dune exec examples/unroll_maintenance.exe *)

let kernel =
  {|
double b[128];

void recur(double *v)
{
  int j;
  for (j = 1; j < 121; j++)
  {
    v[j] = v[j] + v[j-1] * 0.5;
  }
}

int main()
{
  int i;
  double s;
  for (i = 0; i < 128; i++)
  {
    b[i] = 1.0 + 0.01 * i;
  }
  recur(b);
  s = 0.0;
  for (i = 0; i < 128; i++)
  {
    s = s + b[i];
  }
  print_double(s);
  return 0;
}
|}

let () =
  let prog = Srclang.Typecheck.program_of_string kernel in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let entry =
    List.find
      (fun (e : Hli_core.Tables.hli_entry) ->
        e.Hli_core.Tables.unit_name = "recur")
      entries
  in
  Fmt.pr "== HLI of recur() before unrolling ==@.%a@.@."
    Hli_core.Tables.pp_entry entry;
  (* baseline semantics *)
  let rtl0 = Backend.Lower.lower_program prog in
  let base = Machine.Simulate.run_functional rtl0 in
  (* unroll by 4 with maintenance *)
  let rtl = Backend.Lower.lower_program prog in
  let fn = Option.get (Backend.Rtl.find_fn rtl "recur") in
  ignore (Backend.Hli_import.map_unit entry fn);
  let mt = Hli_core.Maintain.start entry in
  let stats =
    Backend.Unroll.run_fn
      ~maintain:(Backend.Hli_import.local_maint mt)
      ~factor:4 fn
  in
  Fmt.pr "unrolled %d loop(s), made %d body copies@."
    stats.Backend.Unroll.unrolled stats.Backend.Unroll.copies_made;
  let entry', _ = Hli_core.Maintain.commit mt in
  Fmt.pr "@.== HLI of recur() after unrolling by 4 ==@.%a@.@."
    Hli_core.Tables.pp_entry entry';
  (* the transformed program still computes the same sum *)
  let rtl =
    {
      rtl with
      Backend.Rtl.fns =
        List.map
          (fun f ->
            if f.Backend.Rtl.fname = "recur" then Backend.Unroll.refresh f else f)
          rtl.Backend.Rtl.fns;
    }
  in
  let opt = Machine.Simulate.run_functional rtl in
  assert (base.Machine.Exec.output = opt.Machine.Exec.output);
  Fmt.pr "output unchanged: %s" base.Machine.Exec.output;
  Fmt.pr "dynamic instructions %d -> %d (loop overhead removed)@."
    base.Machine.Exec.dyn_count opt.Machine.Exec.dyn_count
