(* Interprocedural CSE (paper Figure 4): without HLI, a call forces GCC
   to forget every memory-derived value in its CSE table; with the call
   REF/MOD table, only values the callee may modify are purged.

   The kernel below keeps reloading coeff[0..2] around calls to a
   scaling helper that only touches a *different* array — with HLI the
   reloads become register copies.

   Run with: dune exec examples/interprocedural_cse.exe *)

let kernel =
  {|
double coeff[8];
double data[512];

void scale_data(double *d, double k)
{
  int i;
  for (i = 0; i < 512; i++)
  {
    d[i] = d[i] * k;
  }
}

double polish(double *d)
{
  int i;
  double s;
  s = 0.0;
  for (i = 1; i < 511; i++)
  {
    s = s + coeff[0] * d[i];
    scale_data(d, 1.0 + coeff[1] * 0.000001);
    s = s + coeff[0] * d[i] + coeff[2];
    scale_data(d, 1.0 - coeff[1] * 0.000001);
    s = s + coeff[0] + coeff[2];
  }
  return s;
}

int main()
{
  int i;
  coeff[0] = 1.5;
  coeff[1] = 0.5;
  coeff[2] = -0.25;
  for (i = 0; i < 512; i++)
  {
    data[i] = 0.01 * i;
  }
  print_double(polish(data));
  return 0;
}
|}

let compile_cse ~use_hli =
  let prog = Srclang.Typecheck.program_of_string kernel in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let rtl = Backend.Lower.lower_program prog in
  let total = Backend.Cse.fresh_stats () in
  List.iter
    (fun fn ->
      let name = fn.Backend.Rtl.fname in
      let entry =
        List.find
          (fun (e : Hli_core.Tables.hli_entry) ->
            e.Hli_core.Tables.unit_name = name)
          entries
      in
      let m = Backend.Hli_import.map_unit entry fn in
      let hli = if use_hli then Some m else None in
      let mt =
        if use_hli then
          Some (Backend.Hli_import.local_maint (Hli_core.Maintain.start entry))
        else None
      in
      let s = Backend.Cse.run_fn ?hli ?maintain:mt fn in
      total.Backend.Cse.loads_eliminated <-
        total.Backend.Cse.loads_eliminated + s.Backend.Cse.loads_eliminated;
      total.Backend.Cse.alu_eliminated <-
        total.Backend.Cse.alu_eliminated + s.Backend.Cse.alu_eliminated;
      total.Backend.Cse.call_purges <-
        total.Backend.Cse.call_purges + s.Backend.Cse.call_purges;
      total.Backend.Cse.call_survivals <-
        total.Backend.Cse.call_survivals + s.Backend.Cse.call_survivals)
    rtl.Backend.Rtl.fns;
  (rtl, total)

let () =
  let rtl_gcc, s_gcc = compile_cse ~use_hli:false in
  let rtl_hli, s_hli = compile_cse ~use_hli:true in
  Fmt.pr "CSE without HLI: %d loads removed, %d table entries purged at calls@."
    s_gcc.Backend.Cse.loads_eliminated s_gcc.Backend.Cse.call_purges;
  Fmt.pr "CSE with    HLI: %d loads removed, %d purged, %d survived calls@."
    s_hli.Backend.Cse.loads_eliminated s_hli.Backend.Cse.call_purges
    s_hli.Backend.Cse.call_survivals;
  (* both variants must still compute the same answer *)
  let r1 = Machine.Simulate.run_functional rtl_gcc in
  let r2 = Machine.Simulate.run_functional rtl_hli in
  assert (r1.Machine.Exec.output = r2.Machine.Exec.output);
  Fmt.pr "output (both variants): %s" r1.Machine.Exec.output;
  Fmt.pr "dynamic instructions: %d without HLI, %d with@."
    r1.Machine.Exec.dyn_count r2.Machine.Exec.dyn_count
