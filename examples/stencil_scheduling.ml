(* Stencil scheduling: runs the tomcatv-like workload through both
   machine models and shows where the cycles go — including the R10000
   load/store-queue stalls that HLI-informed scheduling removes (the
   paper's explanation for the R10000's larger speedups).

   Run with: dune exec examples/stencil_scheduling.exe *)

let () =
  let w = Option.get (Workloads.Registry.find "101.tomcatv") in
  Fmt.pr "workload: %s — %s@." w.Workloads.Workload.name
    w.Workloads.Workload.descr;
  let c = Harness.Pipeline.compile w.Workloads.Workload.source in
  let s = c.Harness.Pipeline.stats in
  Fmt.pr "queries %d | gcc yes %d | hli yes %d | combined %d@."
    s.Backend.Ddg.total s.Backend.Ddg.gcc_yes s.Backend.Ddg.hli_yes
    s.Backend.Ddg.combined_yes;
  let m = Harness.Pipeline.measure c in
  let pr name (base : Machine.Simulate.report) (opt : Machine.Simulate.report) =
    Fmt.pr
      "%s: %9d -> %9d cycles (speedup %.3f), LSQ stalls %7d -> %7d, L1 misses %d -> %d@."
      name base.Machine.Simulate.cycles opt.Machine.Simulate.cycles
      (Harness.Pipeline.speedup ~base ~opt)
      base.Machine.Simulate.lsq_stalls opt.Machine.Simulate.lsq_stalls
      base.Machine.Simulate.l1_misses opt.Machine.Simulate.l1_misses
  in
  pr "R4600 " (Harness.Pipeline.r4600_gcc m) (Harness.Pipeline.r4600_hli m);
  pr "R10000" (Harness.Pipeline.r10000_gcc m) (Harness.Pipeline.r10000_hli m)
