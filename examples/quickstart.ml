(* Quickstart: compile one kernel with and without HLI, print what the
   back end learned and what it cost on both machine models.

   Run with: dune exec examples/quickstart.exe *)

let kernel =
  {|
double a[256];
double b[256];
double c[256];
double d[256];

void triad(double *x, double *y, double *z, double *w)
{
  int i;
  for (i = 1; i < 255; i++)
  {
    z[i] = x[i] * y[i] + x[i-1] * y[i+1] + x[i+1] * y[i-1];
    w[i] = z[i] * 0.5 + w[i-1] * 0.25;
  }
}

int main()
{
  int i;
  int rep;
  double s;
  for (i = 0; i < 256; i++)
  {
    a[i] = 0.25 * i;
    b[i] = 0.5 * i;
    c[i] = 0.0;
    d[i] = 0.0;
  }
  for (rep = 0; rep < 50; rep++)
  {
    triad(a, b, c, d);
  }
  s = 0.0;
  for (i = 0; i < 256; i++)
  {
    s = s + c[i] + d[i];
  }
  print_double(s);
  return 0;
}
|}

let () =
  (* 1. One call compiles four variants: {GCC-only, with-HLI} x {R4600,
     R10000 latencies}. *)
  let c = Harness.Pipeline.compile kernel in
  let s = c.Harness.Pipeline.stats in
  Fmt.pr "HLI file size: %d bytes@." c.Harness.Pipeline.hli_bytes;
  Fmt.pr "dependence queries in scheduling: %d@." s.Backend.Ddg.total;
  Fmt.pr "  GCC alone must assume a dependence: %d@." s.Backend.Ddg.gcc_yes;
  Fmt.pr "  HLI assumes a dependence:           %d@." s.Backend.Ddg.hli_yes;
  Fmt.pr "  combined (Figure 5 rule):           %d@." s.Backend.Ddg.combined_yes;
  (* 2. Execute all four on the timing models; outputs are checked to be
     identical. *)
  let m = Harness.Pipeline.measure c in
  Fmt.pr "program output: %s"
    (Harness.Pipeline.r4600_gcc m).Machine.Simulate.output;
  Fmt.pr "R4600 : %7d cycles without HLI, %7d with  (speedup %.3f)@."
    (Harness.Pipeline.r4600_gcc m).Machine.Simulate.cycles
    (Harness.Pipeline.r4600_hli m).Machine.Simulate.cycles
    (Harness.Pipeline.speedup ~base:(Harness.Pipeline.r4600_gcc m)
       ~opt:(Harness.Pipeline.r4600_hli m));
  Fmt.pr "R10000: %7d cycles without HLI, %7d with  (speedup %.3f)@."
    (Harness.Pipeline.r10000_gcc m).Machine.Simulate.cycles
    (Harness.Pipeline.r10000_hli m).Machine.Simulate.cycles
    (Harness.Pipeline.speedup ~base:(Harness.Pipeline.r10000_gcc m)
       ~opt:(Harness.Pipeline.r10000_hli m))
