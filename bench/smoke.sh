#!/bin/sh
# CI smoke check for the parallel workload harness (dune alias @smoke).
#
# Runs two small workloads through bench/main.exe both sequentially
# (-j 1) and on a 4-domain pool, then checks that
#   1. the Table 1/2 output is byte-identical between the two runs,
#   2. the --stats-json telemetry dump is well-formed JSON
#      (validated with the harness's own structural checker, since the
#      container has no external JSON tooling),
#   3. every workload's emitted HLI2 file passes hli_dump --check
#      (decode + structural validator), and
#   4. a cold and a warm run through the on-disk HLI cache
#      (--hli-cache) produce tables byte-identical to the uncached run,
#      with the expected hit/miss counters in the telemetry dump.
set -eu

# dune runs us inside _build with relative exe paths; make them invocable
exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac
dump="$2"
case "$dump" in
  /*) ;;
  *) dump="./$dump" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-smoke-$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

WORKLOADS="wc,129.compress"

"$exe" tables --workloads "$WORKLOADS" -j 1 --stats-json "$tmp/seq.json" \
  > "$tmp/seq.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" -j 4 --stats-json "$tmp/par.json" \
  > "$tmp/par.out" 2>/dev/null

if ! cmp -s "$tmp/seq.out" "$tmp/par.out"; then
  echo "smoke: FAIL — parallel tables differ from the sequential run" >&2
  diff "$tmp/seq.out" "$tmp/par.out" >&2 || true
  exit 1
fi

"$exe" --validate-json "$tmp/seq.json" > /dev/null \
  || { echo "smoke: FAIL — malformed sequential --stats-json" >&2; exit 1; }
"$exe" --validate-json "$tmp/par.json" > /dev/null \
  || { echo "smoke: FAIL — malformed parallel --stats-json" >&2; exit 1; }

echo "smoke: OK (parallel == sequential, telemetry JSON valid)"

# every workload's HLI2 file must decode and pass the structural
# validator (the same checks hlic --lint-hli runs)
"$exe" emit-hli --out "$tmp/hli" > /dev/null
for f in "$tmp/hli"/*.hli; do
  "$dump" --check "$f" > /dev/null \
    || { echo "smoke: FAIL — hli_dump --check rejected $f" >&2; exit 1; }
done
echo "smoke: OK (hli_dump --check over all workloads)"

# on-disk HLI cache: cold fills, warm replays; both runs' tables must
# be byte-identical to the uncached run
"$exe" tables --workloads "$WORKLOADS" -j 1 --hli-cache "$tmp/cache" \
  --stats-json "$tmp/cold.json" > "$tmp/cold.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" -j 1 --hli-cache "$tmp/cache" \
  --stats-json "$tmp/warm.json" > "$tmp/warm.out" 2>/dev/null

for run in cold warm; do
  if ! cmp -s "$tmp/seq.out" "$tmp/$run.out"; then
    echo "smoke: FAIL — $run-cache tables differ from the uncached run" >&2
    diff "$tmp/seq.out" "$tmp/$run.out" >&2 || true
    exit 1
  fi
  "$exe" --validate-json "$tmp/$run.json" > /dev/null \
    || { echo "smoke: FAIL — malformed $run-cache --stats-json" >&2; exit 1; }
done

# the cache is per-function: a cold run misses once per function of
# the two workloads, a warm run hits the same count
grep -q '"hli_cache":{"hits":0,"misses":[1-9][0-9]*,"partial_hits":0,"trims":0}' \
  "$tmp/cold.json" \
  || { echo "smoke: FAIL — cold run should report 0 hits / all misses" >&2; exit 1; }
grep -q '"hli_cache":{"hits":[1-9][0-9]*,"misses":0,"partial_hits":0,"trims":0}' \
  "$tmp/warm.json" \
  || { echo "smoke: FAIL — warm run should report all hits / 0 misses" >&2; exit 1; }

echo "smoke: OK (HLI cache cold/warm byte-identical, counters present)"

# the query-engine microbench and ablation-config checks ride along
# when their scripts are passed (the @smoke dune rule passes both;
# @querybench / @ablation run them alone)
main="$1"
shift 2
for script in "$@"; do
  sh "$script" "$main"
done
