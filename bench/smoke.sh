#!/bin/sh
# CI smoke check for the parallel workload harness (dune alias @smoke).
#
# Runs two small workloads through bench/main.exe both sequentially
# (-j 1) and on a 4-domain pool, then checks that
#   1. the Table 1/2 output is byte-identical between the two runs, and
#   2. the --stats-json telemetry dump is well-formed JSON
#      (validated with the harness's own structural checker, since the
#      container has no external JSON tooling).
set -eu

# dune runs us inside _build with a relative exe path; make it invocable
exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-smoke-$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

WORKLOADS="wc,129.compress"

"$exe" tables --workloads "$WORKLOADS" -j 1 --stats-json "$tmp/seq.json" \
  > "$tmp/seq.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" -j 4 --stats-json "$tmp/par.json" \
  > "$tmp/par.out" 2>/dev/null

if ! cmp -s "$tmp/seq.out" "$tmp/par.out"; then
  echo "smoke: FAIL — parallel tables differ from the sequential run" >&2
  diff "$tmp/seq.out" "$tmp/par.out" >&2 || true
  exit 1
fi

"$exe" --validate-json "$tmp/seq.json" > /dev/null \
  || { echo "smoke: FAIL — malformed sequential --stats-json" >&2; exit 1; }
"$exe" --validate-json "$tmp/par.json" > /dev/null \
  || { echo "smoke: FAIL — malformed parallel --stats-json" >&2; exit 1; }

echo "smoke: OK (parallel == sequential, telemetry JSON valid)"

# the query-engine microbench and ablation-config checks ride along
# when their scripts are passed (the @smoke dune rule passes both;
# @querybench / @ablation run them alone)
main="$1"
shift
for script in "$@"; do
  sh "$script" "$main"
done
