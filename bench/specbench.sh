#!/bin/sh
# CI check for the speculative scheduler (dune alias @specbench).
#
#   1. runs a workload subset through bench tables plain and with
#      --speculate 0: threshold 0 can never drop an edge, so the two
#      runs must be byte-identical (speculation off is free);
#   2. starts a single hlid and a three-shard fleet and re-runs the
#      tables with --speculate 1000 in-process, over the wire and
#      against the fleet — Q_prob service must be invisible in the
#      output on every path, and the remote telemetry dump must carry
#      the v8 equiv_prob counter and the speculation object;
#   3. validates the committed BENCH_speculate.json sweep artifact:
#      schema, per-workload sweep keys, all workloads present, at
#      least one dropped edge at the top threshold, and a
#      misspeculation-rate ceiling of $SPECBENCH_MISSPEC_CEIL
#      (default 0.01) at the default threshold 0.5.
set -eu

exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac
hlid="$2"
case "$hlid" in
  /*) ;;
  *) hlid="./$hlid" ;;
esac
artifact="$3"

tmp="${TMPDIR:-/tmp}/hli-specbench-$$"
mkdir -p "$tmp"
cleanup() {
  for i in 0 1 2; do
    [ -f "$tmp/shard$i.pid" ] && kill -9 "$(cat "$tmp/shard$i.pid")" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

# 034.mdljdp2 is in the subset on purpose: it is one of the two
# workloads whose maybe edges actually drop at threshold 1.0, so the
# remote runs exercise Q_prob with consequences
WORKLOADS="wc,129.compress,101.tomcatv,034.mdljdp2"
FUEL=500000

# 1: --speculate 0 is the identity
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  > "$tmp/plain.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 --speculate 0 \
  > "$tmp/spec0.out" 2>/dev/null
if ! cmp -s "$tmp/plain.out" "$tmp/spec0.out"; then
  echo "specbench: FAIL — --speculate 0 tables differ from the plain run" >&2
  diff "$tmp/plain.out" "$tmp/spec0.out" >&2 || true
  exit 1
fi
echo "specbench: OK (--speculate 0 is byte-identical to speculation off)"

# 2: the probabilistic wire path must be invisible in the tables
start_shard() { # $1 = index; records the pid in $tmp/shard$1.pid
  "$hlid" --socket "$tmp/shard$1.sock" -j 2 2>>"$tmp/shard$1.log" &
  echo $! > "$tmp/shard$1.pid"
}
wait_socket() { # $1 = path
  i=0
  while [ ! -S "$1" ] && [ $i -lt 50 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  [ -S "$1" ] || { echo "specbench: FAIL — $1 did not come up" >&2; exit 1; }
}
for i in 0 1 2; do start_shard $i; done
for i in 0 1 2; do wait_socket "$tmp/shard$i.sock"; done
fleet="$tmp/shard0.sock,$tmp/shard1.sock,$tmp/shard2.sock"

"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 --speculate 1000 \
  > "$tmp/spec-local.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 --speculate 1000 \
  --remote "$tmp/shard0.sock" --stats-json "$tmp/spec-remote.json" \
  > "$tmp/spec-remote.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 --speculate 1000 \
  --remote "$fleet" \
  > "$tmp/spec-fleet.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 --speculate 0 \
  --remote "$tmp/shard0.sock" \
  > "$tmp/spec0-remote.out" 2>/dev/null

if ! cmp -s "$tmp/spec-local.out" "$tmp/spec-remote.out"; then
  echo "specbench: FAIL — speculative remote tables differ from the in-process run" >&2
  diff "$tmp/spec-local.out" "$tmp/spec-remote.out" >&2 || true
  exit 1
fi
if ! cmp -s "$tmp/spec-local.out" "$tmp/spec-fleet.out"; then
  echo "specbench: FAIL — speculative fleet tables differ from the in-process run" >&2
  diff "$tmp/spec-local.out" "$tmp/spec-fleet.out" >&2 || true
  exit 1
fi
if ! cmp -s "$tmp/plain.out" "$tmp/spec0-remote.out"; then
  echo "specbench: FAIL — remote --speculate 0 tables differ from the plain run" >&2
  diff "$tmp/plain.out" "$tmp/spec0-remote.out" >&2 || true
  exit 1
fi
"$exe" --validate-json "$tmp/spec-remote.json" > /dev/null \
  || { echo "specbench: FAIL — malformed remote --stats-json" >&2; exit 1; }
grep -q '"schema":"hli-telemetry-v8"' "$tmp/spec-remote.json" \
  || { echo "specbench: FAIL — remote dump is not hli-telemetry-v8" >&2; exit 1; }
# the dump carries one row per workload: only some drop edges or issue
# Q_prob, so gate on the max across rows, not the first
probed=$(grep -o '"equiv_prob":[0-9]*' "$tmp/spec-remote.json" | cut -d: -f2 \
  | sort -n | tail -1)
[ "${probed:-0}" -gt 0 ] \
  || { echo "specbench: FAIL — remote run answered no Q_prob queries" >&2; exit 1; }
dropped=$(grep -o '"speculation":{"edges_dropped":[0-9]*' "$tmp/spec-remote.json" \
  | grep -o '[0-9]*$' | sort -n | tail -1)
[ "${dropped:-0}" -gt 0 ] \
  || { echo "specbench: FAIL — no edges dropped at threshold 1.0 on the remote path" >&2
       exit 1; }
echo "specbench: OK (speculative tables byte-identical: local, wire and fleet; $probed Q_prob answers, $dropped edges dropped)"

# 3: the committed sweep artifact is well-formed and within the
# misspeculation budget at the default threshold
"$exe" --validate-json "$artifact" > /dev/null \
  || { echo "specbench: FAIL — malformed $artifact" >&2; exit 1; }
grep -q '"schema":"hli-specbench-v1"' "$artifact" \
  || { echo "specbench: FAIL — $artifact lacks the hli-specbench-v1 schema" >&2
       exit 1; }
for key in '"edges_dropped":' '"misspec_rate":' '"speedup_r4600":' '"speedup_r10000":'; do
  grep -q "$key" "$artifact" \
    || { echo "specbench: FAIL — $artifact lacks $key rows" >&2; exit 1; }
done
nwork=$(grep -o '"name":' "$artifact" | wc -l)
[ "$nwork" -ge 14 ] \
  || { echo "specbench: FAIL — sweep covers $nwork workloads, expected all 14" >&2
       exit 1; }
grep -q '"failure":' "$artifact" \
  && { echo "specbench: FAIL — sweep artifact carries failed workloads" >&2; exit 1; }
top_drop=$(grep -o '"threshold":1000,"edges_dropped":[0-9]*' "$artifact" \
  | grep -o '[0-9]*$' | sort -n | tail -1)
[ "${top_drop:-0}" -gt 0 ] \
  || { echo "specbench: FAIL — no workload drops an edge at threshold 1.0" >&2
       exit 1; }
ceil="${SPECBENCH_MISSPEC_CEIL:-0.01}"
bad=$(grep -o '"threshold":500,"edges_dropped":[0-9]*,"checks":[0-9]*,"misspeculations":[0-9]*,"misspec_rate":[0-9.]*' \
  "$artifact" | grep -o '[0-9.]*$' \
  | awk -v c="$ceil" '$1 > c { n++ } END { printf "%d", n }')
if [ "${bad:-0}" -gt 0 ]; then
  echo "specbench: FAIL — $bad workload(s) exceed the $ceil misspeculation-rate ceiling at threshold 0.5" >&2
  exit 1
fi
echo "specbench: OK ($artifact valid: $nwork workloads, max $top_drop edges dropped at 1.0, misspec rate <= $ceil at 0.5)"
