#!/bin/sh
# CI check for the hlid fleet router (dune alias @fleetbench).
#
#   1. starts three hlid backends on private sockets;
#   2. runs a workload subset through bench tables in-process, against
#      a single backend, against the three-shard fleet (plain and
#      --pipeline 8), and through a process-mode router
#      (hlid --router), requiring byte-identical Tables 1/2 on every
#      path;
#   3. chaos: while the fleet tables run repeats, a background loop
#      SIGKILLs a rotating shard and restarts it on the same socket —
#      the run must exit 0 with output still byte-identical, riding on
#      the router's re-handshake + replay failover;
#   4. runs a quick fleetbench (instances x clients x batch x
#      pipeline), validates the emitted hli-fleetbench-v1 JSON, and
#      requires the best three-shard row to reach at least
#      $FLEETBENCH_FLOOR of the best single-instance row (default
#      0.85 — the fleet must not tax co-located clients, with a margin
#      for box noise on single-core runners).
set -eu

exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac
hlid="$2"
case "$hlid" in
  /*) ;;
  *) hlid="./$hlid" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-fleetbench-$$"
mkdir -p "$tmp"
router_pid=""
chaos_pid=""
cleanup() {
  [ -n "$chaos_pid" ] && kill "$chaos_pid" 2>/dev/null || true
  [ -n "$router_pid" ] && kill -9 "$router_pid" 2>/dev/null || true
  for i in 0 1 2; do
    [ -f "$tmp/shard$i.pid" ] && kill -9 "$(cat "$tmp/shard$i.pid")" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

WORKLOADS="wc,129.compress,101.tomcatv,034.mdljdp2"
FUEL=500000

start_shard() { # $1 = index; records the pid in $tmp/shard$1.pid
  "$hlid" --socket "$tmp/shard$1.sock" -j 2 2>>"$tmp/shard$1.log" &
  echo $! > "$tmp/shard$1.pid"
}
wait_socket() { # $1 = path
  i=0
  while [ ! -S "$1" ] && [ $i -lt 50 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  [ -S "$1" ] || { echo "fleetbench: FAIL — $1 did not come up" >&2; exit 1; }
}

for i in 0 1 2; do start_shard $i; done
for i in 0 1 2; do wait_socket "$tmp/shard$i.sock"; done
fleet="$tmp/shard0.sock,$tmp/shard1.sock,$tmp/shard2.sock"

# 1+2: sharding must be invisible in the tables — single backend,
# library fleet (plain and pipelined) and process-mode router alike
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  > "$tmp/local.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$tmp/shard0.sock" \
  > "$tmp/single.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$fleet" --stats-json "$tmp/fleet.json" \
  > "$tmp/fleet.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$fleet" --pipeline 8 \
  > "$tmp/fleet-p8.out" 2>/dev/null

"$hlid" --socket "$tmp/router.sock" --router "$fleet" 2>"$tmp/router.log" &
router_pid=$!
wait_socket "$tmp/router.sock"
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$tmp/router.sock" \
  > "$tmp/proxied.out" 2>/dev/null
kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""

for out in single fleet fleet-p8 proxied; do
  if ! cmp -s "$tmp/local.out" "$tmp/$out.out"; then
    echo "fleetbench: FAIL — $out tables differ from the in-process run" >&2
    diff "$tmp/local.out" "$tmp/$out.out" >&2 || true
    exit 1
  fi
done
"$exe" --validate-json "$tmp/fleet.json" > /dev/null \
  || { echo "fleetbench: FAIL — malformed fleet --stats-json" >&2; exit 1; }
grep -q '"router":{' "$tmp/fleet.json" \
  || { echo "fleetbench: FAIL — fleet dump lacks the router object" >&2; exit 1; }
echo "fleetbench: OK (fleet tables byte-identical: single, 3-shard, pipelined and proxied)"

# 3: chaos — SIGKILL a rotating shard every second and restart it on
# the same socket while the fleet run repeats; failover (reconnect,
# re-open, replay) must keep the output byte-identical
(
  v=0
  while :; do
    sleep 1
    kill -9 "$(cat "$tmp/shard$v.pid")" 2>/dev/null || true
    start_shard $v
    v=$(((v + 1) % 3))
  done
) &
chaos_pid=$!
chaos_ok=1
for rep in 1 2; do
  if ! "$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
    --remote "$fleet" --pipeline 8 \
    > "$tmp/chaos$rep.out" 2>"$tmp/chaos$rep.err"; then
    chaos_ok=0
    break
  fi
done
kill "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true
chaos_pid=""
[ "$chaos_ok" -eq 1 ] \
  || { echo "fleetbench: FAIL — fleet run died under shard SIGKILLs" >&2
       cat "$tmp/chaos1.err" "$tmp/chaos2.err" >&2 2>/dev/null || true
       exit 1; }
for rep in 1 2; do
  if ! cmp -s "$tmp/local.out" "$tmp/chaos$rep.out"; then
    echo "fleetbench: FAIL — chaos run $rep tables differ from the in-process run" >&2
    diff "$tmp/local.out" "$tmp/chaos$rep.out" >&2 || true
    exit 1
  fi
done
echo "fleetbench: OK (2 fleet runs under rotating shard SIGKILLs, tables byte-identical)"

# 4: quick fleet benchmark (in-process backends), JSON validated and a
# relative floor: sharding must not tax co-located clients
OCAMLRUNPARAM="s=2M${OCAMLRUNPARAM:+,$OCAMLRUNPARAM}" \
  "$exe" fleetbench --workloads wc --out "$tmp/bench.json" \
  > "$tmp/bench.out" 2>/dev/null
grep -q "q/s" "$tmp/bench.out" \
  || { echo "fleetbench: FAIL — no benchmark output" >&2; exit 1; }
"$exe" --validate-json "$tmp/bench.json" > /dev/null \
  || { echo "fleetbench: FAIL — malformed fleetbench JSON" >&2; exit 1; }
grep -q '"schema":"hli-fleetbench-v1"' "$tmp/bench.json" \
  || { echo "fleetbench: FAIL — bench JSON lacks the hli-fleetbench-v1 schema" >&2
       exit 1; }
# rows: instances clients batch pipeline qps p50 p99.  Join the
# 3-shard rows against the single-instance rows cell-by-cell (equal
# clients, batch and pipeline) and take the best ratio: the fleet
# passes if at least one matched cell keeps $FLEETBENCH_FLOOR of the
# single-instance rate.
floor="${FLEETBENCH_FLOOR:-0.9}"
ratio=$(awk '
  $1 == 1 { single[$2 " " $3 " " $4] = $5 }
  $1 == 3 && single[$2 " " $3 " " $4] > 0 {
    r = $5 / single[$2 " " $3 " " $4]
    if (r > best) best = r
  }
  END { printf "%.3f", best }' "$tmp/bench.out")
ok=$(awk -v r="${ratio:-0}" -v f="$floor" 'BEGIN { print (r >= f) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
  echo "fleetbench: FAIL — best 3-shard/single-instance ratio ${ratio:-0} at equal clients is under the $floor floor" >&2
  cat "$tmp/bench.out" >&2
  exit 1
fi
echo "fleetbench: OK (fleetbench ran, JSON valid, best 3-shard/single ratio $ratio at equal clients >= $floor)"
