#!/bin/sh
# CI check for the hlid remote back-end (dune alias @servbench).
#
#   1. starts hlid on a private socket with a --shm-dir;
#   2. runs a workload subset through bench tables in-process, --remote,
#      --remote --pipeline 8, and --remote --shm, requiring
#      byte-identical Tables 1/2 on every path and a well-formed
#      hli-telemetry-v7 dump carrying the "server" and "shm" objects;
#   3. runs a quick servbench (client subprocesses against a
#      Domain-spawned server) over both the wire and shm paths,
#      validates the emitted hli-servbench-v2 JSON, and enforces
#      batched-throughput floors: $SERVBENCH_FLOOR q/s on the wire
#      rows (default 530000 — 10x the PR 5 unbatched rate) and
#      $SERVBENCH_SHM_FLOOR q/s on the shm rows (default 2500000 —
#      half the recorded mmap'd-lookup rate, so box noise cannot
#      flake either gate);
#   4. kills the server with SIGKILL mid-probe and requires the client
#      to exit nonzero with a precise E11xx code, without hanging.
set -eu

exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac
hlid="$2"
case "$hlid" in
  /*) ;;
  *) hlid="./$hlid" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-servbench-$$"
mkdir -p "$tmp"
sock="$tmp/hlid.sock"
hlid_pid=""
cleanup() {
  [ -n "$hlid_pid" ] && kill -9 "$hlid_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

WORKLOADS="wc,129.compress,101.tomcatv,034.mdljdp2"
FUEL=500000

"$hlid" --socket "$sock" -j 8 --shm-dir "$tmp/shm" 2>"$tmp/hlid.log" &
hlid_pid=$!
i=0
while [ ! -S "$sock" ] && [ $i -lt 50 ]; do
  sleep 0.1
  i=$((i + 1))
done
[ -S "$sock" ] || { echo "servbench: FAIL — hlid did not come up" >&2; exit 1; }

# 1+2: the wire service must be invisible in the tables — unpipelined
# and pipelined alike (pipelining changes scheduling, never answers)
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  > "$tmp/local.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$sock" --stats-json "$tmp/remote.json" \
  > "$tmp/remote.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$sock" --pipeline 8 \
  > "$tmp/remote-p8.out" 2>/dev/null
"$exe" tables --workloads "$WORKLOADS" --fuel $FUEL -j 2 \
  --remote "$sock" --shm --stats-json "$tmp/shm.json" \
  > "$tmp/remote-shm.out" 2>/dev/null

if ! cmp -s "$tmp/local.out" "$tmp/remote.out"; then
  echo "servbench: FAIL — remote tables differ from the in-process run" >&2
  diff "$tmp/local.out" "$tmp/remote.out" >&2 || true
  exit 1
fi
if ! cmp -s "$tmp/local.out" "$tmp/remote-p8.out"; then
  echo "servbench: FAIL — pipelined remote tables differ from the in-process run" >&2
  diff "$tmp/local.out" "$tmp/remote-p8.out" >&2 || true
  exit 1
fi
if ! cmp -s "$tmp/local.out" "$tmp/remote-shm.out"; then
  echo "servbench: FAIL — shm tables differ from the in-process run" >&2
  diff "$tmp/local.out" "$tmp/remote-shm.out" >&2 || true
  exit 1
fi
"$exe" --validate-json "$tmp/remote.json" > /dev/null \
  || { echo "servbench: FAIL — malformed remote --stats-json" >&2; exit 1; }
grep -q '"server":{' "$tmp/remote.json" \
  || { echo "servbench: FAIL — remote dump lacks the server object" >&2; exit 1; }
"$exe" --validate-json "$tmp/shm.json" > /dev/null \
  || { echo "servbench: FAIL — malformed shm --stats-json" >&2; exit 1; }
grep -q '"shm":{"maps":' "$tmp/shm.json" \
  || { echo "servbench: FAIL — shm dump lacks the shm object" >&2; exit 1; }
grep -q '"shm":{"maps":0' "$tmp/shm.json" \
  && { echo "servbench: FAIL — shm run mapped no segments" >&2; exit 1; }
echo "servbench: OK (remote tables byte-identical: plain, pipelined and shm)"

# 3: quick benchmark (concurrent client subprocesses), with the bench
# artifact validated and a floor on batched remote throughput.  The
# server gets a roomy minor heap, as the recorded runs do.
OCAMLRUNPARAM="s=2M${OCAMLRUNPARAM:+,$OCAMLRUNPARAM}" \
  "$exe" servbench --workloads wc --pipeline 8 --shm --out "$tmp/bench.json" \
  > "$tmp/bench.out" 2>/dev/null
grep -q "q/s" "$tmp/bench.out" \
  || { echo "servbench: FAIL — no benchmark output" >&2; exit 1; }
"$exe" --validate-json "$tmp/bench.json" > /dev/null \
  || { echo "servbench: FAIL — malformed servbench JSON" >&2; exit 1; }
grep -q '"schema":"hli-servbench-v2"' "$tmp/bench.json" \
  || { echo "servbench: FAIL — bench JSON lacks the hli-servbench-v2 schema" >&2
       exit 1; }
grep -q '"path":"shm"' "$tmp/bench.json" \
  || { echo "servbench: FAIL — bench JSON lacks shm rows" >&2; exit 1; }
# rows: path clients batch pipeline qps p50 p99
floor="${SERVBENCH_FLOOR:-530000}"
best=$(awk '$1 == "wire" && $3 == 64 && $5 > m { m = $5 } END { printf "%d", m }' \
  "$tmp/bench.out")
if [ "${best:-0}" -lt "$floor" ]; then
  echo "servbench: FAIL — best batched wire throughput ${best:-0} q/s is under the $floor q/s floor" >&2
  cat "$tmp/bench.out" >&2
  exit 1
fi
shm_floor="${SERVBENCH_SHM_FLOOR:-2500000}"
shm_best=$(awk '$1 == "shm" && $3 == 64 && $5 > m { m = $5 } END { printf "%d", m }' \
  "$tmp/bench.out")
if [ "${shm_best:-0}" -lt "$shm_floor" ]; then
  echo "servbench: FAIL — best batched shm throughput ${shm_best:-0} q/s is under the $shm_floor q/s floor" >&2
  cat "$tmp/bench.out" >&2
  exit 1
fi
echo "servbench: OK (servbench ran, JSON valid, best batched wire $best q/s >= $floor, shm $shm_best q/s >= $shm_floor)"

# 4: kill the server mid-session; the probe must exit on its own,
# nonzero, with a protocol E-code on stderr — bounded, never a hang
(
  set +e
  "$exe" remote-probe --remote "$sock" > /dev/null 2>"$tmp/probe.err"
  echo $? > "$tmp/probe.code"
) &
probe_sh=$!
sleep 2
kill -9 "$hlid_pid" 2>/dev/null || true
hlid_pid=""
i=0
while [ ! -f "$tmp/probe.code" ] && [ $i -lt 200 ]; do
  sleep 0.1
  i=$((i + 1))
done
if [ ! -f "$tmp/probe.code" ]; then
  kill -9 "$probe_sh" 2>/dev/null || true
  echo "servbench: FAIL — probe hung after the server was killed" >&2
  exit 1
fi
wait "$probe_sh" 2>/dev/null || true
code=$(cat "$tmp/probe.code")
[ "$code" -ne 0 ] \
  || { echo "servbench: FAIL — probe exited 0 after server kill" >&2; exit 1; }
grep -q 'E11' "$tmp/probe.err" \
  || { echo "servbench: FAIL — probe stderr lacks an E11xx code" >&2
       cat "$tmp/probe.err" >&2; exit 1; }
echo "servbench: OK (server killed mid-session => probe exit $code, $(grep -o 'E11[0-9][0-9]' "$tmp/probe.err" | head -1))"
