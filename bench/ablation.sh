#!/bin/sh
# CI check for the DESIGN.md §5 ablation configs (dune alias @ablation).
#
# Runs one integer and one floating-point workload through
# bench/main.exe under every ablation config (plus baseline), and
# checks that
#   1. each run completes and prints both tables, and
#   2. its --stats-json telemetry dump is well-formed JSON of the
#      current schema (validated with the harness's own structural
#      checker, since the container has no external JSON tooling).
set -eu

# dune runs us inside _build with a relative exe path; make it invocable
exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-ablation-$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

WORKLOADS="wc,101.tomcatv"   # one int, one fp

for ab in baseline merge-off routine-regions hli-only lsq-off; do
  out="$tmp/$ab.out"
  json="$tmp/$ab.json"
  "$exe" tables --workloads "$WORKLOADS" --ablation "$ab" -j 2 \
    --stats-json "$json" > "$out" 2>/dev/null \
    || { echo "ablation: FAIL — $ab run exited nonzero" >&2; exit 1; }
  grep -q "== Table 1:" "$out" && grep -q "== Table 2:" "$out" \
    || { echo "ablation: FAIL — $ab printed no tables" >&2; exit 1; }
  "$exe" --validate-json "$json" > /dev/null \
    || { echo "ablation: FAIL — malformed --stats-json under $ab" >&2; exit 1; }
done

# an unknown ablation name must be rejected (driver diagnostic E1006)
if "$exe" tables --workloads wc --ablation no-such-thing >/dev/null 2>&1; then
  echo "ablation: FAIL — unknown ablation name accepted" >&2
  exit 1
fi

echo "ablation: OK (5 configs x 2 workloads, telemetry JSON valid)"
