#!/bin/sh
# Structural check of the query-engine microbenchmark (dune alias
# @querybench, also run by @smoke).
#
# Runs bench/main.exe in querybench mode on two workloads, then checks
# that the emitted BENCH_queries.json
#   1. is well-formed JSON (the harness's own structural validator), and
#   2. carries every field EXPERIMENTS.md documents for the
#      hli-querybench-v1 schema.
# Speedups are NOT gated here: absolute timings depend on the machine,
# and tiny CI workloads sit in the noise.  The committed BENCH_queries.json
# at the repo root holds the su2cor/doduc numbers.
set -eu

# dune runs us inside _build with a relative exe path; make it invocable
exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-querybench-$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

out="$tmp/BENCH_queries.json"
"$exe" querybench --workloads wc,129.compress --out "$out" > "$tmp/qb.out"

"$exe" --validate-json "$out" > /dev/null \
  || { echo "querybench: FAIL — malformed $out" >&2; exit 1; }

for key in '"schema":"hli-querybench-v1"' '"workloads":' '"queries":' \
           '"build_ns":' '"indexed":' '"reference":' '"query_ns":' \
           '"qps":' '"speedup":' '"equiv_hit_rate":' '"call_hit_rate":'; do
  grep -q -- "$key" "$out" \
    || { echo "querybench: FAIL — $out lacks $key" >&2; exit 1; }
done

echo "querybench: OK (2 workloads benchmarked, JSON valid)"
