(* Benchmark harness.

   Two kinds of content, as DESIGN.md's per-experiment index specifies:

   1. Reproductions — regenerate every table of the paper's evaluation
      (Table 1: HLI sizes; Table 2: dependence-query counts, reductions
      and machine speedups), plus the ablations DESIGN.md calls out
      (class-merging aggressiveness, the R10000 LSQ blocking rule, and
      the HLI-vs-no-HLI behaviour of the CSE/LICM passes).

   2. Microbenchmarks — one Bechamel Test.make per pipeline stage that
      feeds those tables (front-end analysis + TBLCONST, serialization,
      HLI queries, DDG construction + scheduling, and both timing
      simulators), so component costs are tracked like any other
      performance artifact.

   Run with: dune exec bench/main.exe            (everything)
             dune exec bench/main.exe -- tables  (reproductions only)
             dune exec bench/main.exe -- micro   (microbenchmarks only)
             dune exec bench/main.exe -- querybench
                                                 (query-throughput bench)
             dune exec bench/main.exe -- serbench
                                                 (serialization throughput,
                                                 HLI1-vs-HLI2 container
                                                 overhead, and the on-disk
                                                 HLI cache cold/warm runs)
             dune exec bench/main.exe -- emit-hli
                                                 (write each workload's HLI2
                                                 file under --out DIR, for
                                                 hli_dump --check sweeps)
             dune exec bench/main.exe -- editstorm
                                                 (mutate a fraction of the
                                                 suite's functions, recompile
                                                 through a warm per-function
                                                 HLI cache; the incremental
                                                 recompile curve,
                                                 BENCH_editstorm.json)

             dune exec bench/main.exe -- specbench
                                                 (speculative-scheduling
                                                 threshold sweep: DDG edges
                                                 dropped, misspeculation rate
                                                 and speedup over the
                                                 non-speculative HLI schedule
                                                 per workload,
                                                 BENCH_speculate.json)

   Flags (tables mode):
     -j N                 domain-pool size (default: HLI_JOBS env, else
                          Domain.recommended_domain_count; -j 1 is the
                          sequential reference path)
     --workloads a,b,c    run only the named workloads (skips ablations;
                          also selects the querybench workloads)
     --fuel N             per-run simulation budget, 0 = unlimited
                          (exhaustion annotates the row, see Tables)
     --passes SPEC        optional passes for every workload, e.g.
                          cse,licm,unroll=4 (see --list-passes)
     --ablation NAME      run under a DESIGN.md §5 ablation config
                          (baseline, merge-off, routine-regions,
                          hli-only, lsq-off)
     --speculate THRESH   schedule speculatively: drop maybe-class
                          store-to-load DDG edges whose HLI confidence
                          is below THRESH per mille (0..1000), with
                          run-time checks and recovery; composes onto
                          --ablation (specbench sweeps this axis
                          itself and rejects the flag)
     --list-passes        list the registered passes and exit
     --hli-cache DIR      on-disk HLI cache directory for the compile
                          stage (default: HLI_CACHE env; unset disables
                          caching; also the serbench cache directory)
     --stats              print the per-stage telemetry table
     --stats-json PATH    write the hli-telemetry-v7 JSON dump ("-" for
                          stdout)
     --remote SOCKET      hlid socket: With_hli variants import, query
                          and maintain HLI over the wire (tables stay
                          byte-identical to the in-process run); also
                          the server for servbench / remote-probe
     --pipeline N         remote-session frame window: keep up to N
                          request frames in flight per hlid session
                          (1 = strict request/reply); also adds the
                          pipelined rows to the servbench matrix
     --shm                with --remote: map the HLIX index segments a
                          co-located hlid (--shm-dir) publishes and
                          answer read-only queries from shared memory,
                          falling back to the wire per query when a
                          segment is missing, mid-rebuild or a
                          maintenance transaction is open (tables stay
                          byte-identical); servbench additionally runs
                          an shm copy of the matrix (path column)
     --validate-json PATH check a JSON dump: telemetry schema version
                          first (an hli-telemetry-v1/v2 dump is
                          rejected with a version-specific message),
                          then the structural JSON check; exit 1 on
                          either (used by bench/smoke.sh)
     --out PATH           querybench output file (default
                          BENCH_queries.json) / servbench output file
                          (default BENCH_servbench.json) / emit-hli
                          output directory (default _hli)

   querybench replays a deterministic query stream over the selected
   workloads' HLI entries against both the indexed Query engine and the
   Query_ref oracle, and records queries/sec, index build time, memo
   hit rates and the speedup in an hli-querybench-v1 JSON artifact. *)

let fuel = 100_000_000

type cfg = {
  mode : string;
  jobs : int;
  fuel : int;
  stats : bool;
  stats_json : string option;
  workloads : string list option;
  passes : string;
  ablation : string;
  out : string option;
  hli_cache : string option;
  hli_cache_max : int option;  (** cache size cap (--hli-cache-max-bytes) *)
  remote : string option;  (** hlid socket for --remote / servbench *)
  pipeline : int;  (** remote-session frame window (--pipeline) *)
  shm : bool;  (** map published HLIX segments (--shm) *)
  batch : int;  (** queries per frame (servbench-child only) *)
  repeat : int;  (** stream replay count (servbench-child only) *)
  speculate : int option;
      (** per-mille speculation threshold (--speculate); composes onto
          --ablation for tables mode, None = non-speculative *)
}

let usage () =
  prerr_endline
    "usage: main.exe \
     [tables|micro|querybench|serbench|servbench|fleetbench|remote-probe|emit-hli|editstorm|specbench|all] \
     [-j N] [--fuel N] [--workloads a,b,c] [--passes SPEC] [--ablation NAME] \
     [--speculate THRESH] [--list-passes] [--stats] [--stats-json PATH] \
     [--validate-json PATH] [--hli-cache DIR] [--out PATH] [--remote SOCKET] \
     [--pipeline N] [--shm]";
  exit 2

(* --------------------------------------------------------------- *)
(* Interrupt handling: SIGINT/SIGTERM remove partially-written      *)
(* artifacts (a half-dumped --stats-json, a servbench socket) so an  *)
(* interrupted run never leaves corrupt telemetry behind, then exit  *)
(* with the conventional 128+signal code.                           *)
(* --------------------------------------------------------------- *)

let cleanup_mutex = Mutex.create ()
let cleanup_files : string list ref = ref []
let cleanup_hooks : (unit -> unit) list ref = ref []

let with_cleanup_lock f =
  Mutex.lock cleanup_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cleanup_mutex) f

let register_cleanup p = with_cleanup_lock (fun () -> cleanup_files := p :: !cleanup_files)

let unregister_cleanup p =
  with_cleanup_lock (fun () ->
      cleanup_files := List.filter (fun q -> q <> p) !cleanup_files)

let register_cleanup_hook h =
  with_cleanup_lock (fun () -> cleanup_hooks := h :: !cleanup_hooks)

let run_cleanups () =
  let files, hooks =
    with_cleanup_lock (fun () ->
        let r = (!cleanup_files, !cleanup_hooks) in
        cleanup_files := [];
        cleanup_hooks := [];
        r)
  in
  List.iter (fun h -> try h () with _ -> ()) hooks;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) files

let install_signal_handlers () =
  let handle signum _ =
    run_cleanups ();
    Stdlib.exit (128 + signum)
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (handle 2))
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle (handle 15))
  with Invalid_argument _ | Sys_error _ -> ()

let parse_args () =
  let cfg =
    ref
      {
        mode = "all";
        jobs = Pool.default_jobs ();
        fuel;
        stats = false;
        stats_json = None;
        workloads = None;
        passes = "";
        ablation = "baseline";
        out = None;
        hli_cache = Harness.Pipeline.hli_cache_env ();
        hli_cache_max = Harness.Pipeline.hli_cache_max_env ();
        remote = None;
        pipeline = 1;
        shm = false;
        batch = 64;
        repeat = 1;
        speculate = None;
      }
  in
  let rec loop = function
    | [] -> ()
    | ( "tables" | "micro" | "all" | "querybench" | "serbench" | "servbench"
      | "servbench-child" | "fleetbench" | "fleetbench-server" | "remote-probe"
      | "emit-hli" | "editstorm"
      | "specbench" ) as m
      :: rest ->
        cfg := { !cfg with mode = m };
        loop rest
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            cfg := { !cfg with jobs = j };
            loop rest
        | _ -> usage ())
    | "--fuel" :: n :: rest -> (
        (* simulation budget per run; 0 = unlimited.  A workload that
           exhausts it yields an annotated partial row, not an abort. *)
        match int_of_string_opt n with
        | Some f when f >= 0 ->
            cfg := { !cfg with fuel = f };
            loop rest
        | _ -> usage ())
    | "--stats" :: rest ->
        cfg := { !cfg with stats = true };
        loop rest
    | "--stats-json" :: path :: rest ->
        cfg := { !cfg with stats_json = Some path };
        loop rest
    | "--workloads" :: names :: rest ->
        cfg := { !cfg with workloads = Some (String.split_on_char ',' names) };
        loop rest
    | "--passes" :: spec :: rest ->
        cfg := { !cfg with passes = spec };
        loop rest
    | "--ablation" :: name :: rest ->
        cfg := { !cfg with ablation = name };
        loop rest
    | "--speculate" :: n :: rest -> (
        (* per-mille threshold; composes onto --ablation *)
        match int_of_string_opt n with
        | Some t when t >= 0 && t <= 1000 ->
            cfg := { !cfg with speculate = Some t };
            loop rest
        | _ -> usage ())
    | "--list-passes" :: _ ->
        print_string (Driver.Pass_manager.list_text ());
        exit 0
    | "--out" :: path :: rest ->
        cfg := { !cfg with out = Some path };
        loop rest
    | "--hli-cache" :: dir :: rest ->
        cfg := { !cfg with hli_cache = (if dir = "" then None else Some dir) };
        loop rest
    | "--hli-cache-max-bytes" :: n :: rest -> (
        match int_of_string_opt n with
        | Some b ->
            cfg := { !cfg with hli_cache_max = (if b > 0 then Some b else None) };
            loop rest
        | _ -> usage ())
    | "--remote" :: sock :: rest ->
        cfg := { !cfg with remote = Some sock };
        loop rest
    | "--shm" :: rest ->
        cfg := { !cfg with shm = true };
        loop rest
    | "--batch" :: n :: rest -> (
        (* servbench-child only: queries per Batch frame *)
        match int_of_string_opt n with
        | Some b when b >= 1 ->
            cfg := { !cfg with batch = b };
            loop rest
        | _ -> usage ())
    | "--repeat" :: n :: rest -> (
        (* servbench-child only: replay the query stream N times, so a
           cell's wall time is tens of milliseconds and not at the
           mercy of process wake-up skew *)
        match int_of_string_opt n with
        | Some r when r >= 1 ->
            cfg := { !cfg with repeat = r };
            loop rest
        | _ -> usage ())
    | "--pipeline" :: n :: rest -> (
        match int_of_string_opt n with
        | Some p when p >= 1 ->
            cfg := { !cfg with pipeline = p };
            loop rest
        | _ -> usage ())
    | "--validate-json" :: path :: _ ->
        let ic =
          try open_in_bin path
          with Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        in
        let s =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (* reject dumps from another telemetry schema generation first,
           so an old v1 file gets a version message rather than a
           (misleading) structural verdict *)
        (match Harness.Telemetry.check_schema s with
        | Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 1
        | Ok () -> ());
        (match Harness.Telemetry.validate_json s with
        | Ok () ->
            print_endline "valid JSON";
            exit 0
        | Error (msg, pos) ->
            Printf.eprintf "%s: malformed JSON at byte %d: %s\n" path pos msg;
            exit 1)
    | _ -> usage ()
  in
  loop (List.tl (Array.to_list Sys.argv));
  !cfg

(* ------------------------------------------------------------------ *)
(* Table reproductions                                                 *)
(* ------------------------------------------------------------------ *)

(* resolve --passes/--ablation into a pipeline config; exits with the
   diagnostic's code on a bad spec or name *)
let pipeline_config cfg =
  try
    let ablation =
      match Driver.Variant.find_ablation cfg.ablation with
      | Some a -> a
      | None ->
          Diagnostics.error ~code:"E1006" ~phase:Diagnostics.Driver
            "unknown ablation %S (known: %s)" cfg.ablation
            (String.concat ", " ("baseline" :: Driver.Variant.ablation_names))
    in
    { Harness.Pipeline.specs = Driver.Pass_manager.parse_specs cfg.passes;
      ablation;
      hli_cache = cfg.hli_cache;
      hli_cache_max = cfg.hli_cache_max;
      remote = cfg.remote;
      pipeline = cfg.pipeline;
      shm = cfg.shm }
    |> fun c ->
    (match cfg.speculate with
    | None -> c
    | Some t ->
        { c with
          Harness.Pipeline.ablation =
            Driver.Variant.with_speculate t c.Harness.Pipeline.ablation })
  with Diagnostics.Diagnostic d ->
    Fmt.epr "%a@." Diagnostics.pp d;
    exit (Diagnostics.exit_code d)

let reproduce_tables cfg pool =
  let config = pipeline_config cfg in
  (* fail fast on an unwritable --stats-json path, before the (long) run *)
  let stats_oc =
    match cfg.stats_json with
    | None | Some "-" -> None
    | Some path -> (
        try
          let oc = open_out_bin path in
          (* interruption must not leave a half-written dump behind *)
          register_cleanup path;
          Some oc
        with Sys_error msg ->
          Printf.eprintf "--stats-json: %s\n" msg;
          exit 1)
  in
  let ws =
    match cfg.workloads with
    | None -> Workloads.Registry.all
    | Some names ->
        List.filter_map
          (fun n ->
            match Workloads.Registry.find n with
            | Some w -> Some w
            | None ->
                Fmt.epr "warning: unknown workload %s (skipped)@." n;
                None)
          names
  in
  if cfg.ablation <> "baseline" then
    Fmt.epr "ablation: %s (%s)@." config.Harness.Pipeline.ablation.Driver.Variant.ab_name
      config.Harness.Pipeline.ablation.Driver.Variant.ab_doc;
  let rows =
    Harness.Tables.run_all ~fuel:cfg.fuel ~config ?pool
      ~progress:(fun w -> Fmt.epr "running %s...@." w.Workloads.Workload.name)
      ws
  in
  print_string (Harness.Tables.print_tables rows);
  if cfg.stats then print_string ("\n" ^ Harness.Tables.stats_table rows);
  (* a --remote run embeds the server's own telemetry (v5 "server"
     object) in the dump, fetched over a short dedicated session; a
     --shm run additionally embeds the client-side shm counters (v6
     "shm" object) accumulated across the run's sessions *)
  let server =
    match (cfg.stats_json, cfg.remote) with
    | Some _, Some sock -> (
        try
          match Harness.Remote.socket_list sock with
          | _ :: _ :: _ as socks ->
              (* fleet run: the dump carries the router's aggregate
                 ({"router":...,"backends":[...]}) instead of a single
                 server object *)
              let rt = Hli_server.Router.connect socks in
              Fun.protect
                ~finally:(fun () -> Hli_server.Router.close rt)
                (fun () -> Some (Hli_server.Router.stats_json rt))
          | _ ->
              let cl = Hli_server.Client.connect sock in
              Fun.protect
                ~finally:(fun () -> Hli_server.Client.close cl)
                (fun () -> Some (Hli_server.Client.server_stats cl))
        with Diagnostics.Diagnostic _ -> None)
    | _ -> None
  in
  let shm =
    if cfg.shm then Some (Hli_server.Client.shm_stats_json ()) else None
  in
  (match (cfg.stats_json, stats_oc) with
  | Some "-", _ -> print_endline (Harness.Tables.stats_json ?server ?shm rows)
  | Some path, Some oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Harness.Tables.stats_json ?server ?shm rows));
      unregister_cleanup path;
      Fmt.epr "wrote telemetry to %s@." path
  | _ -> ());
  rows

(* The DESIGN.md §5 ablations are {!Driver.Variant.ablations} configs;
   a full-table run under any of them is `--ablation NAME`.  The
   default run prints one compact comparison section per ablation on a
   small workload subset: the compile-side knobs (merge-off,
   routine-regions) move HLI size and edge reduction, the
   simulation-side knobs (hli-only, lsq-off) move the speedups. *)

let find_ablation name =
  match Driver.Variant.find_ablation name with
  | Some a -> a
  | None -> invalid_arg ("find_ablation: " ^ name)

let ablated_config name =
  { Harness.Pipeline.default_config with ablation = find_ablation name }

let ablation_compile_section pool name workloads =
  let ab = find_ablation name in
  Printf.printf "\n== Ablation: %s — %s ==\n" ab.Driver.Variant.ab_name
    ab.Driver.Variant.ab_doc;
  Printf.printf "%-14s %12s %12s %10s %10s\n" "Benchmark" "HLI(B) base"
    "HLI(B) abl" "red% base" "red% abl";
  let red s = 100.0 *. Harness.Tables.reduction s in
  List.iter
    (fun wname ->
      let w = Option.get (Workloads.Registry.find wname) in
      let src = w.Workloads.Workload.source in
      let c1 = Harness.Pipeline.compile ?pool src in
      let c2 = Harness.Pipeline.compile ~config:(ablated_config name) ?pool src in
      Printf.printf "%-14s %12d %12d %9.0f%% %9.0f%%\n" wname
        c1.Harness.Pipeline.hli_bytes c2.Harness.Pipeline.hli_bytes
        (red c1.Harness.Pipeline.stats)
        (red c2.Harness.Pipeline.stats))
    workloads

let ablation_sim_section pool sim_fuel name workloads =
  let ab = find_ablation name in
  Printf.printf "\n== Ablation: %s — %s ==\n" ab.Driver.Variant.ab_name
    ab.Driver.Variant.ab_doc;
  Printf.printf "%-14s %12s %12s %12s %12s\n" "Benchmark" "R4600 base"
    "R4600 abl" "R10000 base" "R10000 abl";
  List.iter
    (fun wname ->
      let w = Option.get (Workloads.Registry.find wname) in
      let r1 = Harness.Tables.run_workload ~fuel:sim_fuel ?pool w in
      let r2 =
        Harness.Tables.run_workload ~fuel:sim_fuel
          ~config:(ablated_config name) ?pool w
      in
      Printf.printf "%-14s %12.3f %12.3f %12.3f %12.3f\n" wname
        r1.Harness.Tables.sp_r4600 r2.Harness.Tables.sp_r4600
        r1.Harness.Tables.sp_r10000 r2.Harness.Tables.sp_r10000)
    workloads

(* Ablation 3: the CSE and LICM passes with and without HLI (Figure 4
   and the loop-invariant-removal discussion of Section 3.2.2). *)
let ablation_passes () =
  print_endline "\n== Ablation: optimization passes with and without HLI ==";
  Printf.printf "%-14s %18s %18s\n" "Benchmark" "CSE loads (-/+)" "LICM loads (-/+)";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.Registry.find name) in
      let prog = Srclang.Typecheck.program_of_string w.Workloads.Workload.source in
      let entries = Harness.Pipeline.build_hli_entries prog in
      let variant use_hli =
        let rtl = Backend.Lower.lower_program prog in
        let cse_total = ref 0 and licm_total = ref 0 in
        List.iter
          (fun fn ->
            let entry =
              List.find
                (fun (e : Hli_core.Tables.hli_entry) ->
                  e.Hli_core.Tables.unit_name = fn.Backend.Rtl.fname)
                entries
            in
            let m = Backend.Hli_import.map_unit entry fn in
            let hli = if use_hli then Some m else None in
            let s1 = Backend.Cse.run_fn ?hli fn in
            cse_total := !cse_total + s1.Backend.Cse.loads_eliminated;
            let s2 = Backend.Licm.run_fn ?hli fn in
            licm_total := !licm_total + s2.Backend.Licm.hoisted_loads)
          rtl.Backend.Rtl.fns;
        (!cse_total, !licm_total)
      in
      let c1, l1 = variant false in
      let c2, l2 = variant true in
      Printf.printf "%-14s %11d/%-6d %11d/%-6d\n" name c1 c2 l1 l2)
    [ "015.doduc"; "101.tomcatv"; "052.alvinn" ]

(* ------------------------------------------------------------------ *)
(* Query-throughput microbenchmark (BENCH_queries.json)                *)
(* ------------------------------------------------------------------ *)

(* per-unit query material, derived once from the entry so both engines
   see the same stream *)
type qb_unit = {
  qb_items : int array;  (** capped item ids *)
  qb_calls : int array;  (** capped call item ids *)
  qb_rids : int array;  (** capped region ids *)
}

let qb_item_cap = 140
let qb_call_cap = 16
let qb_rid_cap = 16
let qb_reps = 6

let qb_unit_of_entry (e : Hli_core.Tables.hli_entry) =
  let cap k arr = Array.sub arr 0 (min k (Array.length arr)) in
  let items = Array.of_list (Hli_core.Tables.all_items e) in
  let calls =
    List.concat_map
      (fun (le : Hli_core.Tables.line_entry) ->
        List.filter_map
          (fun (it : Hli_core.Tables.item_entry) ->
            if it.Hli_core.Tables.acc = Hli_core.Tables.Acc_call then
              Some it.Hli_core.Tables.item_id
            else None)
          le.Hli_core.Tables.items)
      e.Hli_core.Tables.line_table
  in
  let rids =
    List.map
      (fun (r : Hli_core.Tables.region_entry) -> r.Hli_core.Tables.region_id)
      e.Hli_core.Tables.regions
  in
  {
    qb_items = cap qb_item_cap items;
    qb_calls = cap qb_call_cap (Array.of_list calls);
    qb_rids = cap qb_rid_cap (Array.of_list rids);
  }

(* The replayed stream.  The pair-granularity queries (equiv, call
   REF/MOD) are repeated [qb_reps] times — the back end re-asks the
   same pairs across CSE/LICM/scheduling passes, which is the access
   pattern the memo exists for; the remaining kinds (region-of, alias,
   lcdd over a small class/item square per region) run once.  Returns
   the number of queries issued.

   The two run functions are textual copies (one per engine): calling
   the engines through a closure record or functor would put an equal
   indirect-call tax on both sides and blur the very difference being
   measured. *)
let qb_run_indexed (u : qb_unit) idx =
  let q = ref 0 in
  let n = Array.length u.qb_items in
  for _rep = 1 to qb_reps do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ignore (Hli_core.Query.get_equiv_acc idx u.qb_items.(i) u.qb_items.(j));
        incr q
      done
    done;
    Array.iter
      (fun c ->
        Array.iter
          (fun m ->
            ignore (Hli_core.Query.get_call_acc idx ~call:c ~mem:m);
            incr q)
          u.qb_items)
      u.qb_calls
  done;
  for i = 0 to n - 1 do
    ignore (Hli_core.Query.get_region_of_item idx u.qb_items.(i));
    incr q
  done;
  Array.iter
    (fun rid ->
      let k = min n 8 in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          ignore (Hli_core.Query.get_alias idx ~rid i j);
          incr q;
          ignore
            (Hli_core.Query.get_lcdd idx ~rid u.qb_items.(i) u.qb_items.(j));
          incr q
        done
      done)
    u.qb_rids;
  !q

let qb_run_ref (u : qb_unit) idx =
  let q = ref 0 in
  let n = Array.length u.qb_items in
  for _rep = 1 to qb_reps do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ignore
          (Hli_core.Query_ref.get_equiv_acc idx u.qb_items.(i) u.qb_items.(j));
        incr q
      done
    done;
    Array.iter
      (fun c ->
        Array.iter
          (fun m ->
            ignore (Hli_core.Query_ref.get_call_acc idx ~call:c ~mem:m);
            incr q)
          u.qb_items)
      u.qb_calls
  done;
  for i = 0 to n - 1 do
    ignore (Hli_core.Query_ref.get_region_of_item idx u.qb_items.(i));
    incr q
  done;
  Array.iter
    (fun rid ->
      let k = min n 8 in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          ignore (Hli_core.Query_ref.get_alias idx ~rid i j);
          incr q;
          ignore
            (Hli_core.Query_ref.get_lcdd idx ~rid u.qb_items.(i) u.qb_items.(j));
          incr q
        done
      done)
    u.qb_rids;
  !q

type qb_result = {
  qb_name : string;
  qb_queries : int;
  qb_build_ns : int64;
  qb_indexed_ns : int64;
  qb_ref_ns : int64;
  qb_equiv_hit_rate : float;
  qb_call_hit_rate : float;
}

let qps queries ns =
  if Int64.compare ns 0L <= 0 then 0.0
  else float_of_int queries /. (Int64.to_float ns /. 1e9)

let qb_speedup (r : qb_result) =
  if Int64.compare r.qb_indexed_ns 0L <= 0 then 0.0
  else Int64.to_float r.qb_ref_ns /. Int64.to_float r.qb_indexed_ns

let querybench_workload name : qb_result =
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "querybench: unknown workload %s\n" name;
        exit 1
  in
  let prog = Srclang.Typecheck.program_of_string w.Workloads.Workload.source in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let units = List.map qb_unit_of_entry entries in
  let now = Harness.Telemetry.now_ns in
  (* one warmup pass (cold caches), then take the fastest of a few
     timed passes — the stream is sub-millisecond, so a single timing
     is at the mercy of GC pauses and scheduling noise *)
  (* indexed engine: one build per unit (timed) *)
  let t0 = now () in
  let idxs = List.map Hli_core.Query.build entries in
  let build_ns = Int64.sub (now ()) t0 in
  let run_indexed () =
    List.fold_left2 (fun acc u idx -> acc + qb_run_indexed u idx) 0 units idxs
  in
  (* hit rates of one cold pass: how often the stream re-asks a pair *)
  let cc0 = Hli_core.Query.cache_counters () in
  let queries = run_indexed () in
  let cc1 = Hli_core.Query.cache_counters () in
  let delta k = List.assoc k cc1 - List.assoc k cc0 in
  let rate h m = if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m) in
  let equiv_hit_rate =
    rate (delta "equiv_memo_hits") (delta "equiv_memo_misses")
  in
  let call_hit_rate = rate (delta "call_memo_hits") (delta "call_memo_misses") in
  (* reference oracle: same stream, no precomputation to amortize *)
  let refs = List.map Hli_core.Query_ref.build entries in
  let run_ref () =
    List.fold_left2 (fun acc u idx -> acc + qb_run_ref u idx) 0 units refs
  in
  let queries_ref = run_ref () in
  assert (queries = queries_ref);
  (* The streams are sub-millisecond, so a single timing is at the
     mercy of GC pauses and container scheduling noise.  Interleave the
     two engines' trials (so a noisy window hits both alike) and keep
     the fastest pass of each. *)
  let trials = 15 in
  let indexed_best = ref Int64.max_int and ref_best = ref Int64.max_int in
  let timed run best =
    let t0 = now () in
    ignore (run ());
    let dt = Int64.sub (now ()) t0 in
    if Int64.compare dt !best < 0 then best := dt
  in
  for _ = 1 to trials do
    timed run_indexed indexed_best;
    timed run_ref ref_best
  done;
  let indexed_ns = !indexed_best and ref_ns = !ref_best in
  {
    qb_name = name;
    qb_queries = queries;
    qb_build_ns = build_ns;
    qb_indexed_ns = indexed_ns;
    qb_ref_ns = ref_ns;
    qb_equiv_hit_rate = equiv_hit_rate;
    qb_call_hit_rate = call_hit_rate;
  }

let querybench cfg =
  let names =
    match cfg.workloads with
    | Some ns -> ns
    | None -> [ "103.su2cor"; "015.doduc" ]
  in
  let results = List.map querybench_workload names in
  print_endline "== Query throughput: indexed engine vs Query_ref oracle ==";
  Printf.printf "%-14s %10s %12s %12s %8s %9s %9s\n" "Benchmark" "queries"
    "indexed q/s" "ref q/s" "speedup" "equiv-hit" "call-hit";
  List.iter
    (fun r ->
      Printf.printf "%-14s %10d %12.0f %12.0f %7.1fx %8.1f%% %8.1f%%\n"
        r.qb_name r.qb_queries
        (qps r.qb_queries r.qb_indexed_ns)
        (qps r.qb_queries r.qb_ref_ns)
        (qb_speedup r)
        (100.0 *. r.qb_equiv_hit_rate)
        (100.0 *. r.qb_call_hit_rate))
    results;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"hli-querybench-v1\",\"workloads\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"queries\":%d,\"build_ns\":%Ld,\"indexed\":{\"query_ns\":%Ld,\"qps\":%.1f},\"reference\":{\"query_ns\":%Ld,\"qps\":%.1f},\"speedup\":%.2f,\"equiv_hit_rate\":%.4f,\"call_hit_rate\":%.4f}"
           (Harness.Telemetry.json_escape r.qb_name)
           r.qb_queries r.qb_build_ns r.qb_indexed_ns
           (qps r.qb_queries r.qb_indexed_ns)
           r.qb_ref_ns
           (qps r.qb_queries r.qb_ref_ns)
           (qb_speedup r) r.qb_equiv_hit_rate r.qb_call_hit_rate))
    results;
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  (match Harness.Telemetry.validate_json json with
  | Ok () -> ()
  | Error (msg, pos) ->
      Printf.eprintf "querybench: generated malformed JSON at byte %d: %s\n"
        pos msg;
      exit 1);
  let out = Option.value ~default:"BENCH_queries.json" cfg.out in
  let oc =
    try open_out_bin out
    with Sys_error msg ->
      Printf.eprintf "--out: %s\n" msg;
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Printf.eprintf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Serialization throughput + HLI cache benchmark (serbench)           *)
(* ------------------------------------------------------------------ *)

let workload_of_name ~mode name =
  match Workloads.Registry.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "%s: unknown workload %s\n" mode name;
      exit 1

(* Every workload's HLI through both encoders: the HLI1 payload bytes
   (the paper's Table 1 metric) against the HLI2 container (explicit
   option tags + per-entry length and CRC32), with encode/decode
   throughput over the HLI2 bytes and a mandatory round-trip check. *)
let serbench_sizes cfg =
  let names =
    match cfg.workloads with
    | Some ns -> ns
    | None -> List.map (fun w -> w.Workloads.Workload.name) Workloads.Registry.all
  in
  print_endline "== Serialization: HLI1 payload vs HLI2 container ==";
  Printf.printf "%-14s %9s %9s %9s %11s %11s\n" "Benchmark" "HLI1(B)"
    "HLI2(B)" "overhead" "enc MB/s" "dec MB/s";
  let now = Harness.Telemetry.now_ns in
  let t1 = ref 0 and t2 = ref 0 in
  List.iter
    (fun name ->
      let w = workload_of_name ~mode:"serbench" name in
      let prog =
        Srclang.Typecheck.program_of_string w.Workloads.Workload.source
      in
      let entries = Harness.Pipeline.build_hli_entries prog in
      let f = { Hli_core.Tables.entries } in
      let v1 = Hli_core.Serialize.size_bytes f in
      let bytes = Hli_core.Serialize.to_bytes f in
      let v2 = String.length bytes in
      if Hli_core.Serialize.of_bytes bytes <> f then begin
        Printf.eprintf "serbench: %s: HLI2 round-trip mismatch\n" name;
        exit 1
      end;
      t1 := !t1 + v1;
      t2 := !t2 + v2;
      let reps = 200 in
      let time repf =
        let t0 = now () in
        for _ = 1 to reps do
          repf ()
        done;
        Int64.sub (now ()) t0
      in
      let enc_ns = time (fun () -> ignore (Hli_core.Serialize.to_bytes f)) in
      let dec_ns =
        time (fun () -> ignore (Hli_core.Serialize.of_bytes bytes))
      in
      let mbps ns =
        if Int64.compare ns 0L <= 0 then 0.0
        else float_of_int (v2 * reps) /. (Int64.to_float ns /. 1e9) /. 1e6
      in
      Printf.printf "%-14s %9d %9d %8.1f%% %11.1f %11.1f\n" name v1 v2
        (100.0 *. float_of_int (v2 - v1) /. float_of_int (max 1 v1))
        (mbps enc_ns) (mbps dec_ns))
    names;
  Printf.printf "%-14s %9d %9d %8.1f%%\n" "total" !t1 !t2
    (100.0 *. float_of_int (!t2 - !t1) /. float_of_int (max 1 !t1))

(* Cold/warm compiles through the on-disk HLI cache: the cold run pays
   analysis + TBLCONST and stores, the warm run replays the HLI2 file.
   The two compiles must agree on the HLI (byte-identical tables are
   the acceptance bar); hit/miss counts come from the per-run
   telemetry. *)
let serbench_cache cfg pool =
  let dir =
    match cfg.hli_cache with
    | Some d -> d
    | None -> Filename.concat (Filename.get_temp_dir_name ()) "hli-serbench-cache"
  in
  let names =
    match cfg.workloads with
    | Some ns -> ns
    | None -> [ "101.tomcatv"; "015.doduc"; "129.compress" ]
  in
  Printf.printf "\n== On-disk HLI cache (dir: %s) ==\n" dir;
  Printf.printf "%-14s %10s %10s %8s %5s %5s\n" "Benchmark" "cold ms"
    "warm ms" "speedup" "hits" "miss";
  let now = Harness.Telemetry.now_ns in
  List.iter
    (fun name ->
      let w = workload_of_name ~mode:"serbench" name in
      let src = w.Workloads.Workload.source in
      let config =
        { Harness.Pipeline.default_config with hli_cache = Some dir }
      in
      (* drop every cached entry so the first compile is genuinely cold
         (the cache is per-function now — there is no single path to
         remove for a workload) *)
      (try
         Array.iter
           (fun f ->
             if Filename.check_suffix f ".hlie" then
               Sys.remove (Filename.concat dir f))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      let timed () =
        let tm = Harness.Telemetry.create () in
        let t0 = now () in
        let c = Harness.Pipeline.compile ~config ?pool ~tm src in
        (c, Int64.sub (now ()) t0, tm)
      in
      let c1, cold_ns, tm1 = timed () in
      let c2, warm_ns, tm2 = timed () in
      if c1.Harness.Pipeline.hli <> c2.Harness.Pipeline.hli then begin
        Printf.eprintf "serbench: %s: warm-cache HLI differs from cold\n" name;
        exit 1
      end;
      let ms ns = Int64.to_float ns /. 1e6 in
      Printf.printf "%-14s %10.2f %10.2f %7.2fx %5d %5d\n" name (ms cold_ns)
        (ms warm_ns)
        (if Int64.compare warm_ns 0L <= 0 then 0.0
         else Int64.to_float cold_ns /. Int64.to_float warm_ns)
        (Harness.Telemetry.counter tm2 "hli_cache_hits")
        (Harness.Telemetry.counter tm1 "hli_cache_misses"))
    names

let serbench cfg pool =
  serbench_sizes cfg;
  serbench_cache cfg pool

(* ------------------------------------------------------------------ *)
(* emit-hli: one HLI2 file per workload (for hli_dump --check sweeps)  *)
(* ------------------------------------------------------------------ *)

let emit_hli cfg =
  let dir = Option.value ~default:"_hli" cfg.out in
  Harness.Pipeline.mkdir_p dir;
  let ws =
    match cfg.workloads with
    | None -> Workloads.Registry.all
    | Some names -> List.map (workload_of_name ~mode:"emit-hli") names
  in
  List.iter
    (fun w ->
      let prog =
        Srclang.Typecheck.program_of_string w.Workloads.Workload.source
      in
      let entries = Harness.Pipeline.build_hli_entries prog in
      let f = { Hli_core.Tables.entries } in
      let path = Filename.concat dir (w.Workloads.Workload.name ^ ".hli") in
      Hli_core.Serialize.write_file path f;
      Printf.printf "%s\n" path)
    ws

(* ------------------------------------------------------------------ *)
(* Edit storm (BENCH_editstorm.json)                                   *)
(* ------------------------------------------------------------------ *)

(* The incremental-compile headline: mutate a fraction of the suite's
   functions, then re-run the HLI-production phase of every workload
   through a warm per-function cache.  Mutations are in-place
   integer-constant tweaks — they change no line numbers, no pointer
   constraints and no access skeleton, so only the edited function's
   fingerprint moves and callers replay from cache.  Only the touched
   functions should miss, and the recompile wall time should scale
   roughly linearly with the touched fraction.  Emits
   BENCH_editstorm.json (hli-editstorm-v1); EDITSTORM_FLOOR (set by
   bench/editstorm.sh) gates the smallest fraction's cold/edit
   speedup. *)

let es_fractions = [ 0.01; 0.05; 0.25; 1.0 ]

(* Top-level function body spans of a mini-C source: (name, lo, hi)
   byte ranges in source order.  The workloads are written in Allman
   style ('{' alone on its line), which is all this scanner supports;
   [editstorm] cross-checks the scan against the typechecked AST and
   aborts on any disagreement rather than silently skewing the
   selection. *)
let es_function_spans (src : string) : (string * int * int) list =
  let is_id c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let name_of_header h =
    match String.index_opt h '(' with
    | None -> None
    | Some p ->
        let e = ref p in
        while !e > 0 && not (is_id h.[!e - 1]) do
          decr e
        done;
        let s = ref !e in
        while !s > 0 && is_id h.[!s - 1] do
          decr s
        done;
        if !s < !e then Some (String.sub h !s (!e - !s)) else None
  in
  let spans = ref [] in
  let depth = ref 0 in
  let header = ref "" in
  let cur = ref None in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    let j =
      match String.index_from_opt src !i '\n' with Some j -> j | None -> n
    in
    let line = String.sub src !i (j - !i) in
    let t = String.trim line in
    if !depth = 0 && t = "{" then
      Option.iter (fun f -> cur := Some (f, !i)) (name_of_header !header);
    String.iter
      (fun c ->
        if c = '{' then incr depth
        else if c = '}' then begin
          decr depth;
          if !depth = 0 then
            Option.iter
              (fun (f, lo) ->
                spans := (f, lo, j) :: !spans;
                cur := None)
              !cur
        end)
      line;
    if !depth = 0 && t <> "" && t <> "{" then header := t;
    i := j + 1
  done;
  List.rev !spans

(* Candidate mutation points inside [lo, hi): the last digit of each
   integer literal (not an identifier tail, not adjacent to a '.'),
   then — for float-only function bodies — the last fractional digit
   of each float literal.  Mutating bumps that digit in place — same
   byte length, so every span and every line number survives. *)
let es_candidates src lo hi =
  let is_digit c = c >= '0' && c <= '9' in
  let is_idc c = is_digit c || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ints = ref [] and fracs = ref [] in
  let i = ref lo in
  while !i < hi do
    if is_digit src.[!i] && (!i = 0 || not (is_idc src.[!i - 1])) then begin
      let from_dot = !i > 0 && src.[!i - 1] = '.' in
      let e = ref !i in
      while !e < hi && is_digit src.[!e] do
        incr e
      done;
      let trailing_idc = !e < String.length src && is_idc src.[!e] in
      let into_dot = !e < String.length src && src.[!e] = '.' in
      if not trailing_idc then
        if from_dot then fracs := (!e - 1) :: !fracs
        else if not into_dot then ints := (!e - 1) :: !ints;
      i := !e
    end
    else incr i
  done;
  List.rev !ints @ List.rev !fracs

let es_apply src pos =
  let b = Bytes.of_string src in
  let c = Bytes.get b pos in
  Bytes.set b pos (if c = '9' then '8' else Char.chr (Char.code c + 1));
  Bytes.to_string b

(* (function name, interprocedural fingerprint) for every function of
   [src], or None if the mutated text no longer typechecks. *)
let es_fp_table src =
  match Srclang.Typecheck.program_of_string src with
  | exception _ -> None
  | prog ->
      let fps = Analysis.Fingerprint.of_program prog in
      Some
        (List.map
           (fun (f : Srclang.Tast.func) ->
             ( f.Srclang.Tast.name,
               Analysis.Fingerprint.func fps f.Srclang.Tast.name ))
           prog.Srclang.Tast.funcs)

(* Apply one verified tweak to [fname]: a candidate is kept only if the
   program still typechecks and exactly [fname]'s fingerprint differs
   from [src]'s — a tweak with caller fan-in is rejected and the next
   literal is tried.  [None] = the body holds no mutable constant at
   all (e.g. a one-line wrapper), and the storm substitutes another
   function. *)
let es_mutate src (spans : (string * int * int) list) fname : string option =
  let base =
    match es_fp_table src with
    | Some t -> t
    | None -> failwith "editstorm: base source does not typecheck"
  in
  match List.find_opt (fun (n, _, _) -> n = fname) spans with
  | None -> None
  | Some (_, lo, hi) ->
      let rec try_cands = function
        | [] -> None
        | pos :: rest -> (
            let trial = es_apply src pos in
            match es_fp_table trial with
            | None -> try_cands rest
            | Some fps ->
                let changed =
                  List.filter_map
                    (fun (n, d) ->
                      match List.assoc_opt n base with
                      | Some d0 when d0 <> d -> Some n
                      | _ -> None)
                    fps
                in
                if changed = [ fname ] then Some trial else try_cands rest)
      in
      try_cands (es_candidates src lo hi)

let es_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "editstorm: FAIL — %s\n" msg;
      exit 1)
    fmt

let editstorm cfg =
  let names =
    match cfg.workloads with
    | Some ns -> ns
    | None ->
        List.map (fun w -> w.Workloads.Workload.name) Workloads.Registry.all
  in
  (* per workload: source, function spans, AST-confirmed function list *)
  let wls =
    List.map
      (fun name ->
        let w = workload_of_name ~mode:"editstorm" name in
        let src = w.Workloads.Workload.source in
        let spans = es_function_spans src in
        let funcs =
          match es_fp_table src with
          | Some t -> List.map fst t
          | None -> es_fail "%s does not typecheck" name
        in
        if List.sort compare (List.map (fun (n, _, _) -> n) spans)
           <> List.sort compare funcs
        then
          es_fail "%s: span scanner found [%s] but the AST has [%s]" name
            (String.concat " " (List.map (fun (n, _, _) -> n) spans))
            (String.concat " " funcs);
        (name, src, spans, funcs))
      names
  in
  let universe =
    List.concat_map (fun (w, _, _, funcs) -> List.map (fun f -> (w, f)) funcs) wls
  in
  let total = List.length universe in
  let base_dir =
    match cfg.hli_cache with
    | Some d -> d
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "hli-editstorm-%d" (Unix.getpid ()))
  in
  let now = Harness.Telemetry.now_ns in
  Printf.printf "== Edit storm: %d workloads, %d functions ==\n"
    (List.length wls) total;
  Printf.printf "%9s %8s %11s %9s %9s %9s %9s\n" "fraction" "mutated"
    "reanalyzed" "cold ms" "warm ms" "edit ms" "speedup";
  let rows =
    List.map
      (fun frac ->
        (* a fresh cache per fraction: stale entries from an earlier
           fraction's identical tweaks would turn planned misses into
           hits *)
        let dir =
          Filename.concat base_dir
            (Printf.sprintf "f%04d" (int_of_float (frac *. 1000.)))
        in
        (try
           Array.iter
             (fun f ->
               if Filename.check_suffix f ".hlie" then
                 Sys.remove (Filename.concat dir f))
             (Sys.readdir dir)
         with Sys_error _ -> ());
        let config =
          { Harness.Pipeline.default_config with
            hli_cache = Some dir;
            hli_cache_max = cfg.hli_cache_max }
        in
        let k =
          min total
            (max 1 (int_of_float (Float.round (frac *. float_of_int total))))
        in
        (* spread the k targets evenly over the suite; a function with
           no mutable constant (a bare wrapper) is substituted by the
           next unselected one, so the storm always touches exactly k *)
        let targets = List.init k (fun i -> List.nth universe (i * total / k)) in
        let attempts =
          targets @ List.filter (fun wf -> not (List.mem wf targets)) universe
        in
        let cur_srcs = Hashtbl.create 16 in
        let cur_mutated = Hashtbl.create 16 in
        List.iter
          (fun (name, src, _, _) ->
            Hashtbl.replace cur_srcs name src;
            Hashtbl.replace cur_mutated name [])
          wls;
        let successes = ref 0 in
        List.iter
          (fun (w, f) ->
            if !successes < k then
              let _, _, spans, _ =
                List.find (fun (n, _, _, _) -> n = w) wls
              in
              match es_mutate (Hashtbl.find cur_srcs w) spans f with
              | None -> ()
              | Some src' ->
                  Hashtbl.replace cur_srcs w src';
                  Hashtbl.replace cur_mutated w
                    (f :: Hashtbl.find cur_mutated w);
                  incr successes)
          attempts;
        let mutated_total = !successes in
        if mutated_total = 0 then es_fail "no storm target could be mutated";
        if mutated_total < k then
          (* only reachable when the fallback exhausted the whole
             universe, i.e. k approaches the count of functions that
             hold any constant at all *)
          Printf.eprintf
            "editstorm: note: %d of %d targets mutable (constant-free \
             bodies skipped)\n"
            mutated_total k;
        let storm =
          List.map
            (fun (name, src, _, _) ->
              ( name,
                src,
                Hashtbl.find cur_srcs name,
                List.rev (Hashtbl.find cur_mutated name) ))
            wls
        in
        let run srcs =
          let tm = Harness.Telemetry.create () in
          let t0 = now () in
          List.iter
            (fun src ->
              ignore (Harness.Pipeline.frontend ~config ~tm src))
            srcs;
          let wall = Int64.sub (now ()) t0 in
          ( wall,
            Harness.Telemetry.counter tm "hli_cache_hits",
            Harness.Telemetry.counter tm "hli_cache_misses",
            Harness.Telemetry.counter tm "hli_cache_partial_hits" )
        in
        let cold_ns, h0, m0, _ = run (List.map (fun (_, s, _, _) -> s) storm) in
        if h0 <> 0 || m0 <> total then
          es_fail "cold run expected 0/%d hits/misses, got %d/%d" total h0 m0;
        let warm_ns, h1, m1, _ = run (List.map (fun (_, s, _, _) -> s) storm) in
        if h1 <> total || m1 <> 0 then
          es_fail "warm run expected %d/0 hits/misses, got %d/%d" total h1 m1;
        (* the edit recompile pays only for files the storm touched — an
           unchanged file is skipped by its content hash before any
           parse, as in any build system — and, within a touched file,
           re-analyzes only the functions whose fingerprints moved *)
        let touched = List.filter (fun (_, s, s', _) -> s' <> s) storm in
        let touched_funcs =
          List.fold_left
            (fun acc (name, _, _, _) ->
              acc
              + List.length
                  (List.filter (fun (w, _) -> w = name) universe))
            0 touched
        in
        let edit_ns, h2, m2, p2 =
          run (List.map (fun (_, _, s', _) -> s') touched)
        in
        if m2 <> mutated_total then
          es_fail "%d functions mutated but %d re-analyzed" mutated_total m2;
        if h2 <> touched_funcs - mutated_total then
          es_fail "edit run expected %d hits, got %d"
            (touched_funcs - mutated_total) h2;
        (* byte-identity: the spliced-cache HLI of every edited workload
           must match an uncached compile of the same mutated source *)
        List.iter
          (fun (name, _, src', mutated) ->
            if mutated <> [] then begin
              let cached = Harness.Pipeline.frontend ~config src' in
              let fresh =
                Harness.Pipeline.frontend
                  ~config:{ config with Harness.Pipeline.hli_cache = None }
                  src'
              in
              if
                Hli_core.Serialize.to_bytes
                  { Hli_core.Tables.entries = cached.Driver.Pass.h_entries }
                <> Hli_core.Serialize.to_bytes
                     { Hli_core.Tables.entries = fresh.Driver.Pass.h_entries }
              then es_fail "%s: warm-spliced HLI differs from a cold build" name
            end)
          storm;
        let ms ns = Int64.to_float ns /. 1e6 in
        let speedup =
          if Int64.compare edit_ns 0L <= 0 then 0.0
          else Int64.to_float cold_ns /. Int64.to_float edit_ns
        in
        Printf.printf "%8.1f%% %8d %11d %9.2f %9.2f %9.2f %8.2fx\n"
          (100.0 *. frac) mutated_total m2 (ms cold_ns) (ms warm_ns)
          (ms edit_ns) speedup;
        (frac, mutated_total, m2, p2, cold_ns, warm_ns, edit_ns, speedup))
      es_fractions
  in
  (* acceptance: a ~1% storm must not re-analyze more than 5% of the
     suite, and must beat the cold build by EDITSTORM_FLOOR when the
     gate is armed (bench/editstorm.sh sets it) *)
  (match rows with
  | (frac, _, re, _, _, _, _, speedup) :: _ ->
      if frac <= 0.011 && re * 20 > total then
        es_fail "a %.0f%% storm re-analyzed %d/%d functions (> 5%%)"
          (100.0 *. frac) re total;
      (match Sys.getenv_opt "EDITSTORM_FLOOR" with
      | Some s -> (
          match float_of_string_opt s with
          | Some floor when floor > 0.0 ->
              if speedup < floor then
                es_fail "1%% storm speedup %.2fx is under the %.1fx floor"
                  speedup floor
          | _ -> es_fail "EDITSTORM_FLOOR=%S is not a positive number" s)
      | None -> ())
  | [] -> ());
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"hli-editstorm-v1\",\"workloads\":[%s],\"functions\":%d,\
        \"rows\":["
       (String.concat ","
          (List.map
             (fun (n, _, _, _) ->
               "\"" ^ Harness.Telemetry.json_escape n ^ "\"")
             wls))
       total);
  List.iteri
    (fun i (frac, mutated, re, partial, cold_ns, warm_ns, edit_ns, speedup) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"fraction\":%.3f,\"mutated\":%d,\"reanalyzed\":%d,\
            \"partial_hits\":%d,\"cold_ns\":%Ld,\"warm_ns\":%Ld,\
            \"edit_ns\":%Ld,\"speedup\":%.2f}"
           frac mutated re partial cold_ns warm_ns edit_ns speedup))
    rows;
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  (match Harness.Telemetry.validate_json json with
  | Ok () -> ()
  | Error (msg, pos) ->
      Printf.eprintf "editstorm: generated malformed JSON at byte %d: %s\n" pos
        msg;
      exit 1);
  let out = Option.value ~default:"BENCH_editstorm.json" cfg.out in
  let oc =
    try open_out_bin out
    with Sys_error msg ->
      Printf.eprintf "--out: %s\n" msg;
      exit 1
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.eprintf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Speculation sweep (BENCH_speculate.json)                            *)
(* ------------------------------------------------------------------ *)

(* For every workload: compile and simulate the non-speculative
   baseline once, then re-run the full variant matrix at each
   --speculate threshold of the sweep, recording DDG edges dropped,
   run-time checks inserted, misspeculation recoveries and the speedup
   of the speculative HLI schedule over the non-speculative one (per
   machine, HLI-variant cycles against HLI-variant cycles — the
   gcc-only baselines never speculate).  Threshold 0 can never drop an
   edge (no per-mille confidence is below 0), so its cycle counts must
   equal the baseline's exactly; a difference means the byte-identity
   guarantee of [speculate = None] is broken and the bench fails.
   The artifact is BENCH_speculate.json (hli-specbench-v1);
   bench/specbench.sh validates it and gates the misspeculation rate
   at the default threshold. *)

let spec_thresholds = [ 0; 250; 500; 750; 1000 ]

type spec_cell = {
  sc_t : int;  (** per-mille threshold *)
  sc_dropped : int;  (** DDG edges dropped (stats variant) *)
  sc_checks : int;  (** speculative loads flagged (stats variant) *)
  sc_misspec : int;  (** recoveries, summed over both HLI variants *)
  sc_rate : float;  (** misspeculations per dynamic instruction *)
  sc_c4 : int;  (** HLI-variant R4600 cycles *)
  sc_c10 : int;  (** HLI-variant R10000 cycles *)
  sc_s4 : float;  (** speedup over the non-speculative HLI schedule *)
  sc_s10 : float;
}

let spec_fail_reason = function
  | Diagnostics.Diagnostic d -> Diagnostics.to_string d
  | Machine.Exec.Out_of_fuel -> "out of fuel"
  | Machine.Exec.Runtime_error m -> "runtime error: " ^ m
  | e -> Printexc.to_string e

let specbench cfg pool =
  let ws =
    match cfg.workloads with
    | None -> Workloads.Registry.all
    | Some names ->
        List.filter_map
          (fun n ->
            match Workloads.Registry.find n with
            | Some w -> Some w
            | None ->
                Fmt.epr "warning: unknown workload %s (skipped)@." n;
                None)
          names
  in
  let base_ablation =
    (pipeline_config cfg).Harness.Pipeline.ablation
  in
  if base_ablation.Driver.Variant.speculate <> None then begin
    (* the sweep owns the threshold axis *)
    Printf.eprintf "specbench: --speculate is implied by the sweep\n";
    exit 2
  end;
  let run_at w speculate =
    let ablation =
      match speculate with
      | None -> base_ablation
      | Some t -> Driver.Variant.with_speculate t base_ablation
    in
    let config = { (pipeline_config cfg) with Harness.Pipeline.ablation } in
    let c = Harness.Pipeline.compile ~config ?pool w.Workloads.Workload.source in
    let m = Harness.Pipeline.measure ~fuel:cfg.fuel ?pool c in
    (c, m)
  in
  let speedup base opt = if base = 0 || opt = 0 then 1.0
    else float_of_int base /. float_of_int opt
  in
  Printf.printf "== Speculative scheduling sweep (per-mille thresholds) ==\n";
  Printf.printf "%-14s %6s %8s %7s %8s %9s %8s %8s\n" "Benchmark" "thresh"
    "dropped" "checks" "misspec" "rate" "sp4600" "sp10000";
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let name = w.Workloads.Workload.name in
        Fmt.epr "specbench: %s...@." name;
        match run_at w None with
        | exception
            ((Diagnostics.Diagnostic _ | Machine.Exec.Out_of_fuel
             | Machine.Exec.Runtime_error _) as e) ->
            let reason = spec_fail_reason e in
            Printf.printf "%-14s (skipped: %s)\n" name reason;
            (name, 0, 0, 0, Error reason)
        | _, m0 ->
            let b4 = Harness.Pipeline.r4600_hli m0 in
            let b10 = Harness.Pipeline.r10000_hli m0 in
            let cells =
              List.filter_map
                (fun t ->
                  match run_at w (Some t) with
                  | exception
                      ((Diagnostics.Diagnostic _ | Machine.Exec.Out_of_fuel
                       | Machine.Exec.Runtime_error _) as e) ->
                      Printf.printf "%-14s %6d (failed: %s)\n" name t
                        (spec_fail_reason e);
                      None
                  | c, m ->
                      let r4 = Harness.Pipeline.r4600_hli m in
                      let r10 = Harness.Pipeline.r10000_hli m in
                      let misspec =
                        r4.Machine.Simulate.misspeculations
                        + r10.Machine.Simulate.misspeculations
                      in
                      let dyn =
                        r4.Machine.Simulate.dyn_insns
                        + r10.Machine.Simulate.dyn_insns
                      in
                      let s = c.Harness.Pipeline.stats in
                      if
                        t = 0
                        && (r4.Machine.Simulate.cycles
                            <> b4.Machine.Simulate.cycles
                           || r10.Machine.Simulate.cycles
                              <> b10.Machine.Simulate.cycles)
                      then begin
                        Printf.eprintf
                          "specbench: FAIL — %s at threshold 0 differs from \
                           the non-speculative run (r4600 %d vs %d, r10000 \
                           %d vs %d cycles)\n"
                          name r4.Machine.Simulate.cycles
                          b4.Machine.Simulate.cycles
                          r10.Machine.Simulate.cycles
                          b10.Machine.Simulate.cycles;
                        exit 1
                      end;
                      let cell =
                        {
                          sc_t = t;
                          sc_dropped = s.Backend.Ddg.spec_edges_dropped;
                          sc_checks = s.Backend.Ddg.spec_checks;
                          sc_misspec = misspec;
                          sc_rate =
                            (if dyn = 0 then 0.0
                             else float_of_int misspec /. float_of_int dyn);
                          sc_c4 = r4.Machine.Simulate.cycles;
                          sc_c10 = r10.Machine.Simulate.cycles;
                          sc_s4 =
                            speedup b4.Machine.Simulate.cycles
                              r4.Machine.Simulate.cycles;
                          sc_s10 =
                            speedup b10.Machine.Simulate.cycles
                              r10.Machine.Simulate.cycles;
                        }
                      in
                      Printf.printf
                        "%-14s %6d %8d %7d %8d %9.6f %8.3f %8.3f\n" name t
                        cell.sc_dropped cell.sc_checks cell.sc_misspec
                        cell.sc_rate cell.sc_s4 cell.sc_s10;
                      Some cell)
                spec_thresholds
            in
            ( name,
              (Harness.Pipeline.r4600_gcc m0).Machine.Simulate.dyn_insns,
              b4.Machine.Simulate.cycles,
              b10.Machine.Simulate.cycles,
              Ok cells ))
      ws
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"hli-specbench-v1\",\"thresholds\":[%s],\
                     \"workloads\":["
       (String.concat "," (List.map string_of_int spec_thresholds)));
  List.iteri
    (fun i (name, dyn, c4, c10, cells) ->
      if i > 0 then Buffer.add_char b ',';
      match cells with
      | Error reason ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":\"%s\",\"failure\":\"%s\"}"
               (Harness.Telemetry.json_escape name)
               (Harness.Telemetry.json_escape reason))
      | Ok cells ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"dyn_insns\":%d,\
                \"base\":{\"cycles_r4600\":%d,\"cycles_r10000\":%d},\"sweep\":["
               (Harness.Telemetry.json_escape name)
               dyn c4 c10);
          List.iteri
            (fun j c ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf
                   "{\"threshold\":%d,\"edges_dropped\":%d,\"checks\":%d,\
                    \"misspeculations\":%d,\"misspec_rate\":%.6f,\
                    \"cycles_r4600\":%d,\"cycles_r10000\":%d,\
                    \"speedup_r4600\":%.3f,\"speedup_r10000\":%.3f}"
                   c.sc_t c.sc_dropped c.sc_checks c.sc_misspec c.sc_rate
                   c.sc_c4 c.sc_c10 c.sc_s4 c.sc_s10))
            cells;
          Buffer.add_string b "]}")
    rows;
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  (match Harness.Telemetry.validate_json json with
  | Ok () -> ()
  | Error (msg, pos) ->
      Printf.eprintf "specbench: generated malformed JSON at byte %d: %s\n" pos
        msg;
      exit 1);
  let out = Option.value ~default:"BENCH_speculate.json" cfg.out in
  let oc =
    try open_out_bin out
    with Sys_error msg ->
      Printf.eprintf "--out: %s\n" msg;
      exit 1
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.eprintf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Server benchmark (servbench) and the remote-probe fault client      *)
(* ------------------------------------------------------------------ *)

module SP = Hli_server.Protocol

(* A deterministic batched query stream over one unit, modeled on the
   querybench stream but sized for round-trips: every query crosses
   the wire, so the quadratic parts are capped harder. *)
let sb_item_cap = 40

let sb_queries_of_entry (e : Hli_core.Tables.hli_entry) : SP.query list =
  let u = e.Hli_core.Tables.unit_name in
  let qb = qb_unit_of_entry e in
  let items =
    Array.sub qb.qb_items 0 (min sb_item_cap (Array.length qb.qb_items))
  in
  let n = Array.length items in
  let qs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      qs := SP.Q_equiv { u; a = items.(i); b = items.(j) } :: !qs
    done
  done;
  Array.iter
    (fun c ->
      Array.iter
        (fun m -> qs := SP.Q_call { u; call = c; mem = m } :: !qs)
        items)
    qb.qb_calls;
  for i = 0 to n - 1 do
    qs := SP.Q_region_of { u; item = items.(i) } :: !qs
  done;
  Array.iter
    (fun rid ->
      let k = min n 8 in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          qs := SP.Q_alias { u; rid; ca = i; cb = j } :: !qs;
          qs := SP.Q_lcdd { u; rid; a = items.(i); b = items.(j) } :: !qs
        done
      done)
    qb.qb_rids;
  List.rev !qs

let rec sb_batches b = function
  | [] -> []
  | qs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | q :: rest -> take (k - 1) (q :: acc) rest
      in
      let batch, rest = take b [] qs in
      batch :: sb_batches b rest

(* in-process baseline: the same stream against a local index *)
let sb_local_run idxs (qs : SP.query list) =
  let idx_of u = List.assoc u idxs in
  List.iter
    (fun q ->
      match q with
      | SP.Q_equiv { u; a; b } ->
          ignore (Hli_core.Query.get_equiv_acc (idx_of u) a b)
      | SP.Q_alias { u; rid; ca; cb } ->
          ignore (Hli_core.Query.get_alias (idx_of u) ~rid ca cb)
      | SP.Q_lcdd { u; rid; a; b } ->
          ignore (Hli_core.Query.get_lcdd (idx_of u) ~rid a b)
      | SP.Q_call { u; call; mem } ->
          ignore (Hli_core.Query.get_call_acc (idx_of u) ~call ~mem)
      | SP.Q_region_of { u; item } ->
          ignore (Hli_core.Query.get_region_of_item (idx_of u) item)
      | SP.Q_hoist_target _ -> ())
    qs

let sb_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* one client session: replay the batches, timing each frame.  With
   [pipeline > 1] frames are sent in windows of that size and the
   per-frame latency is amortized over the window (individual frames
   overlap on the wire, so only the window wall time is observable).
   With [shm] each query of a frame is answered off the unit's mapped
   HLIX segment, and the frame's misses (lcdd/hoist kinds, torn
   windows) go over the wire as one remainder batch — the wire window
   never applies, shm lookups are synchronous loads.  [barrier] is
   called once the session is open, so the harness can line every
   client up and time only the query phase — domain spawn and session
   setup cost milliseconds, which would otherwise dominate a
   multi-client wall at these rates.  Returns the frame latencies and
   the timestamp of the last collected reply. *)
(* Fleet flavor of [sb_client]: the same stream through a router
   session over every listed socket ([--remote sock1,sock2,...]).  No
   shm — the router owns the shard connections, and the fleet rows
   measure the routed wire path. *)
let sb_client_fleet ~pipeline ~barrier socks bytes batches =
  let rt = Hli_server.Router.connect ~pipeline socks in
  Fun.protect
    ~finally:(fun () -> Hli_server.Router.close rt)
    (fun () ->
      ignore (Hli_server.Router.open_hli_bytes rt bytes);
      barrier ();
      let now = Harness.Telemetry.now_ns in
      let lats =
        if pipeline <= 1 then
          Array.of_list
            (List.map
               (fun batch ->
                 let t0 = now () in
                 ignore (Hli_server.Router.query_batch rt batch);
                 Int64.to_float (Int64.sub (now ()) t0))
               batches)
        else begin
          let lats = ref [] in
          List.iter
            (fun window ->
              let k = List.length window in
              let t0 = now () in
              ignore (Hli_server.Router.query_batches rt window);
              let per =
                Int64.to_float (Int64.sub (now ()) t0) /. float_of_int k
              in
              for _ = 1 to k do
                lats := per :: !lats
              done)
            (sb_batches pipeline batches);
          Array.of_list !lats
        end
      in
      (lats, now ()))

let sb_client ?(pipeline = 1) ?(shm = false) ?(barrier = fun () -> ()) socket
    bytes batches =
  match Harness.Remote.socket_list socket with
  | _ :: _ :: _ as socks -> sb_client_fleet ~pipeline ~barrier socks bytes batches
  | _ ->
  let cl = Hli_server.Client.connect ~pipeline ~shm socket in
  Fun.protect
    ~finally:(fun () -> Hli_server.Client.close cl)
    (fun () ->
      ignore (Hli_server.Client.open_hli_bytes cl bytes);
      barrier ();
      let now = Harness.Telemetry.now_ns in
      let lats =
        if shm then
          Array.of_list
            (List.map
               (fun batch ->
                 let t0 = now () in
                 let misses =
                   List.filter
                     (fun q ->
                       Option.is_none (Hli_server.Client.shm_query cl q))
                     batch
                 in
                 (match misses with
                 | [] -> ()
                 | ms -> ignore (Hli_server.Client.query_batch cl ms));
                 Int64.to_float (Int64.sub (now ()) t0))
               batches)
        else if pipeline <= 1 then
          Array.of_list
            (List.map
               (fun batch ->
                 let t0 = now () in
                 ignore (Hli_server.Client.query_batch cl batch);
                 Int64.to_float (Int64.sub (now ()) t0))
               batches)
        else begin
          let lats = ref [] in
          List.iter
            (fun window ->
              let k = List.length window in
              let t0 = now () in
              ignore (Hli_server.Client.query_batches cl window);
              let per =
                Int64.to_float (Int64.sub (now ()) t0) /. float_of_int k
              in
              for _ = 1 to k do
                lats := per :: !lats
              done)
            (sb_batches pipeline batches);
          Array.of_list !lats
        end
      in
      (lats, now ()))

(* Workload setup shared by the servbench parent and its client
   children: names, HLI entries/bytes and the deterministic query
   stream.  Children rebuild it from the workload names, so parent and
   child streams are identical by construction. *)
let sb_setup cfg =
  let names =
    match cfg.workloads with
    | Some ns -> ns
    | None -> [ "101.tomcatv"; "015.doduc" ]
  in
  let entries =
    (* qualify unit names by workload: different workloads may both
       define e.g. [main], and the combined file must keep them apart *)
    List.concat_map
      (fun name ->
        let w = workload_of_name ~mode:"servbench" name in
        let prog =
          Srclang.Typecheck.program_of_string w.Workloads.Workload.source
        in
        List.map
          (fun (e : Hli_core.Tables.hli_entry) ->
            { e with
              Hli_core.Tables.unit_name =
                name ^ "/" ^ e.Hli_core.Tables.unit_name })
          (Harness.Pipeline.build_hli_entries prog))
      names
  in
  let bytes = Hli_core.Serialize.to_bytes { Hli_core.Tables.entries } in
  let queries = List.concat_map sb_queries_of_entry entries in
  (names, entries, bytes, queries)

(* servbench-child: one real client process for the servbench matrix.
   A domain-per-client harness shares the server's OCaml runtime, so
   every client participates in its stop-the-world pauses and the
   multi-client rows measure GC barrier scaling, not the server.  Real
   hlid clients are separate processes; so are these.  Protocol on
   stdio: print READY once the session is open, start on GO, then
   report "END <last-reply-ns>" and the frame latencies. *)
let sb_child cfg =
  let socket =
    match cfg.remote with
    | Some s -> s
    | None ->
        prerr_endline "servbench-child: --remote SOCKET is required";
        exit 2
  in
  let _, _, bytes, queries = sb_setup cfg in
  let batches =
    List.concat (List.init cfg.repeat (fun _ -> sb_batches cfg.batch queries))
  in
  let cpu0 = ref 0.0 in
  let lats, t_end =
    sb_client ~pipeline:cfg.pipeline ~shm:cfg.shm
      ~barrier:(fun () ->
        (* shed the compile-phase garbage: the measured phase should
           touch only the session buffers and the query stream, not
           drag a dead compiler heap through the cache on every
           context switch *)
        Gc.compact ();
        print_string "READY\n";
        flush Stdlib.stdout;
        match input_line Stdlib.stdin with
        | "GO" ->
            let t = Unix.times () in
            cpu0 := t.Unix.tms_utime +. t.Unix.tms_stime
        | _ | (exception End_of_file) -> exit 2)
      socket bytes batches
  in
  (if Sys.getenv_opt "SB_DEBUG_CPU" <> None then
     let t = Unix.times () in
     Printf.eprintf "child cpu %.1fms\n%!"
       ((t.Unix.tms_utime +. t.Unix.tms_stime -. !cpu0) *. 1000.));
  Printf.printf "END %Ld\n" t_end;
  Array.iter (fun l -> Printf.printf "%.1f " l) lats;
  print_newline ();
  exit 0

(* fleetbench-server: one real hlid instance for the fleetbench
   matrix.  In-process backends would all share the bench runtime, so
   every instance participates in every other's stop-the-world pauses
   and the fleet rows measure GC barrier scaling, not sharding; real
   fleet shards are separate processes, so are these.  Listens on the
   path the parent passed as --remote, prints READY once bound, and
   drains on SIGTERM. *)
let sb_server cfg =
  let socket =
    match cfg.remote with
    | Some s -> s
    | None ->
        prerr_endline "fleetbench-server: --remote SOCKET is required";
        exit 2
  in
  let srv =
    Hli_server.Server.create
      { (Hli_server.Server.default_config ~socket_path:socket) with
        jobs = Pool.default_jobs () }
  in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Hli_server.Server.initiate_shutdown srv));
  print_string "READY\n";
  flush Stdlib.stdout;
  Hli_server.Server.run srv;
  exit 0

(* [clients] concurrent sessions against [socket]: spawn one child
   process per session, wait until every session is open, release them
   together, and time from the release to the last session's final
   reply (CLOCK_MONOTONIC is comparable across processes).  [repeat]
   comes from the caller's per-cell wall-time calibration (see
   [sb_calibrate]): the raw stream is only ~66 frames at batch 64, a
   wall of a couple of milliseconds where scheduler wake-up skew
   across the children is a double-digit share of the measurement. *)
let sb_run ~clients ~pipeline ~batch ~shm ~repeat ~names socket =
  let prog = Sys.executable_name in
  (* children get a deliberately small minor heap: the server wants a
     large one (OCAMLRUNPARAM=s=... on the parent), but N clients each
     inheriting it would cycle N oversized nurseries through the
     shared cache and measure memory pressure instead of the server *)
  let child_env =
    let keep =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 13
                  && String.sub kv 0 13 = "OCAMLRUNPARAM"))
    in
    Array.of_list (keep @ [ "OCAMLRUNPARAM=s=256k" ])
  in
  let spawn () =
    let gi, go_w = Unix.pipe () in
    let out_r, oo = Unix.pipe () in
    let argv =
      [
        prog; "servbench-child"; "--remote"; socket;
        "--batch"; string_of_int batch;
        "--pipeline"; string_of_int pipeline;
        "--repeat"; string_of_int repeat;
        "--workloads"; String.concat "," names;
      ]
      @ (if shm then [ "--shm" ] else [])
    in
    let pid =
      Unix.create_process_env prog (Array.of_list argv) child_env gi oo
        Unix.stderr
    in
    Unix.close gi;
    Unix.close oo;
    (pid, Unix.out_channel_of_descr go_w, Unix.in_channel_of_descr out_r)
  in
  let kids = Array.init clients (fun _ -> spawn ()) in
  let fail : 'a. string -> 'a = fun msg ->
    Array.iter (fun (pid, _, _) -> try Unix.kill pid Sys.sigkill with _ -> ())
      kids;
    Printf.eprintf "servbench: %s\n" msg;
    exit 1
  in
  Array.iter
    (fun (_, _, ic) ->
      match input_line ic with
      | "READY" -> ()
      | l -> fail ("child sent " ^ String.escaped l ^ " instead of READY")
      | exception End_of_file -> fail "child died before READY")
    kids;
  let now = Harness.Telemetry.now_ns in
  let cpu0 =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  let t0 = now () in
  Array.iter
    (fun (_, oc, _) ->
      output_string oc "GO\n";
      flush oc)
    kids;
  let parts =
    Array.map
      (fun (pid, oc, ic) ->
        let result =
          match input_line ic with
          | exception End_of_file -> Error "child died before END"
          | endl -> (
              match Scanf.sscanf_opt endl "END %Ld" (fun x -> x) with
              | None -> Error ("child sent " ^ String.escaped endl)
              | Some t_end -> (
                  match input_line ic with
                  | exception End_of_file -> Error "child died mid-report"
                  | line ->
                      let lats =
                        String.split_on_char ' ' line
                        |> List.filter (fun s -> s <> "")
                        |> List.map float_of_string
                        |> Array.of_list
                      in
                      Ok (lats, t_end)))
        in
        close_out_noerr oc;
        close_in_noerr ic;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> fail "child exited abnormally");
        match result with Ok r -> r | Error msg -> fail msg)
      kids
  in
  let t_end =
    Array.fold_left (fun acc (_, e) -> max acc e) Int64.min_int parts
  in
  (if Sys.getenv_opt "SB_DEBUG_CPU" <> None then
     let t = Unix.times () in
     Printf.eprintf "cell %dx%dx%d: wall %.1fms server-cpu %.1fms\n%!"
       clients batch pipeline
       (Int64.to_float (Int64.sub t_end t0) /. 1e6)
       ((t.Unix.tms_utime +. t.Unix.tms_stime -. cpu0) *. 1000.));
  let lats = Array.concat (Array.to_list (Array.map fst parts)) in
  (lats, Int64.to_float (Int64.sub t_end t0))

(* per-cell wall-time target (satellite of the shm work): every matrix
   cell replays the stream enough times that its wall clock approaches
   SERVBENCH_CELL_MS (default 100 ms), calibrated per (path, pipeline,
   batch) with one in-process probe session.  A fixed frame count
   can't serve both paths: at shm rates it is over in a couple of
   milliseconds (scheduler skew dominates), at batch-1 wire rates it
   would take seconds per cell. *)
let sb_target_cell_ns () =
  let ms =
    match Sys.getenv_opt "SERVBENCH_CELL_MS" with
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> f
        | _ -> 100.0)
    | None -> 100.0
  in
  ms *. 1e6

let sb_calibrate ~pipeline ~shm ~batch socket bytes queries =
  let batches = sb_batches batch queries in
  let t0 = ref 0L in
  let _, t_end =
    sb_client ~pipeline ~shm
      ~barrier:(fun () -> t0 := Harness.Telemetry.now_ns ())
      socket bytes batches
  in
  let wall = Int64.to_float (Int64.sub t_end !t0) in
  max 1 (min 512 (int_of_float (ceil (sb_target_cell_ns () /. max 1.0 wall))))

(* servbench: queries/sec and frame latency for 1..8 concurrent client
   sessions at several batch sizes, against the in-process baseline.
   Uses --remote SOCKET when given; otherwise starts an in-process
   server on a temp socket.  With --shm the whole matrix runs twice —
   once over the wire, once answering off the published HLIX segments
   (the "path" column) — against the same server. *)
let servbench cfg =
  let names, entries, bytes, queries = sb_setup cfg in
  let nq = List.length queries in
  (* server: external via --remote, or in-process on a temp socket *)
  let socket, shutdown =
    match cfg.remote with
    | Some s -> (s, fun () -> ())
    | None ->
        let path =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "hli-servbench-%d.sock" (Unix.getpid ()))
        in
        let shm_dir =
          if cfg.shm then
            Some
              (Filename.concat
                 (Filename.get_temp_dir_name ())
                 (Printf.sprintf "hli-servbench-shm-%d" (Unix.getpid ())))
          else None
        in
        let srv =
          Hli_server.Server.create
            { (Hli_server.Server.default_config ~socket_path:path) with
              (* size the worker pool to the machine: on a small box
                 extra domains only add context switches between the
                 poller, the workers, and the client domains.  A
                 single-core host gets poller-inline mode (jobs = 1),
                 which skips the cross-domain handoff entirely. *)
              jobs = Pool.default_jobs ();
              shm_dir }
        in
        register_cleanup path;
        let d = Domain.spawn (fun () -> Hli_server.Server.run srv) in
        register_cleanup_hook (fun () ->
            Hli_server.Server.initiate_shutdown srv);
        ( path,
          fun () ->
            Hli_server.Server.initiate_shutdown srv;
            Domain.join d;
            Option.iter (fun dir -> try Unix.rmdir dir with Unix.Unix_error _ -> ()) shm_dir;
            unregister_cleanup path )
  in
  Fun.protect ~finally:shutdown @@ fun () ->
  (* in-process baseline: same stream, local indexes, no wire *)
  let idxs =
    List.map
      (fun (e : Hli_core.Tables.hli_entry) ->
        (e.Hli_core.Tables.unit_name, Hli_core.Query.build e))
      entries
  in
  let now = Harness.Telemetry.now_ns in
  let t0 = now () in
  sb_local_run idxs queries;
  let local_ns = Int64.to_float (Int64.sub (now ()) t0) in
  Printf.printf "== servbench: hlid over %s ==\n" socket;
  Printf.printf "%d queries per client session (%s)\n" nq
    (String.concat ", " names);
  let local_qps =
    if local_ns <= 0.0 then 0.0 else float_of_int nq /. (local_ns /. 1e9)
  in
  Printf.printf "in-process baseline: %.0f q/s\n" local_qps;
  Printf.printf "%6s %8s %6s %9s %12s %12s %12s\n" "path" "clients" "batch"
    "pipeline" "q/s" "p50 (us)" "p99 (us)";
  let rows = ref [] in
  let paths = if cfg.shm then [ "wire"; "shm" ] else [ "wire" ] in
  List.iter
    (fun path ->
      let shm = String.equal path "shm" in
      List.iter
        (fun pipeline ->
          List.iter
            (fun batch ->
              let repeat =
                sb_calibrate ~pipeline ~shm ~batch socket bytes queries
              in
              if shm && (Hli_server.Client.shm_stats ()).Hli_server.Client.maps = 0
              then
                Printf.eprintf
                  "servbench: warning: --shm but no segment was mapped (is \
                   the server running with --shm-dir?)\n%!";
              List.iter
                (fun clients ->
                  let lats, wall_ns =
                    sb_run ~clients ~pipeline ~batch ~shm ~repeat ~names
                      socket
                  in
                  Array.sort compare lats;
                  let qps =
                    if wall_ns <= 0.0 then 0.0
                    else
                      float_of_int (clients * nq * repeat) /. (wall_ns /. 1e9)
                  in
                  let p50 = sb_percentile lats 0.50 /. 1e3
                  and p99 = sb_percentile lats 0.99 /. 1e3 in
                  rows := (path, clients, batch, pipeline, qps, p50, p99) :: !rows;
                  Printf.printf "%6s %8d %6d %9d %12.0f %12.1f %12.1f\n" path
                    clients batch pipeline qps p50 p99)
                [ 1; 2; 4; 8 ])
            [ 1; 8; 64 ])
        (List.sort_uniq compare [ 1; 8; max 1 cfg.pipeline ]))
    paths;
  (* the bench trajectory artifact: one row per matrix cell (v2 added
     the per-row "path": "wire" | "shm") *)
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"hli-servbench-v2\",\"workloads\":[%s],\
        \"queries_per_session\":%d,\"local_qps\":%.0f,\"rows\":["
       (String.concat ","
          (List.map
             (fun n -> "\"" ^ Harness.Telemetry.json_escape n ^ "\"")
             names))
       nq local_qps);
  List.iteri
    (fun i (path, clients, batch, pipeline, qps, p50, p99) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"path\":\"%s\",\"clients\":%d,\"batch\":%d,\"pipeline\":%d,\
            \"qps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f}"
           path clients batch pipeline qps p50 p99))
    (List.rev !rows);
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  (match Harness.Telemetry.validate_json json with
  | Ok () -> ()
  | Error (msg, pos) ->
      Printf.eprintf "servbench: generated malformed JSON at byte %d: %s\n"
        pos msg;
      exit 1);
  let out = Option.value ~default:"BENCH_servbench.json" cfg.out in
  let oc =
    try open_out_bin out
    with Sys_error msg ->
      Printf.eprintf "--out: %s\n" msg;
      exit 1
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.eprintf "wrote %s\n" out;
  if cfg.stats then begin
    try
      let cl = Hli_server.Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Hli_server.Client.close cl)
        (fun () ->
          Printf.printf "server telemetry: %s\n"
            (Hli_server.Client.server_stats cl))
    with Diagnostics.Diagnostic _ -> ()
  end

(* fleetbench: the servbench stream against a sharded hlid fleet.
   Each matrix row boots [instances] server processes (fleetbench-server
   re-execs of this binary) on private sockets — instances = 1 is the
   plain single-daemon wire path, and for larger fleets every client
   child connects through the client-library router over the
   comma-joined socket list, so its units shard by consistent hash and
   its trains split per shard.  Client counts are the same across fleet
   sizes, so a fleet row and the single-instance wire row at equal
   total clients are directly comparable.  Artifact:
   BENCH_fleetbench.json (hli-fleetbench-v1); bench/fleetbench.sh
   gates fleet-vs-single throughput and runs the chaos (SIGKILL a
   shard mid-tables) byte-identity check. *)
let fleetbench cfg =
  let names, _entries, bytes, queries = sb_setup cfg in
  let nq = List.length queries in
  let boot n =
    let prog = Sys.executable_name in
    let servers =
      List.init n (fun i ->
          let path =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "hli-fleetbench-%d-%d.sock" (Unix.getpid ()) i)
          in
          register_cleanup path;
          let out_r, oo = Unix.pipe () in
          let pid =
            Unix.create_process prog
              [| prog; "fleetbench-server"; "--remote"; path |]
              Unix.stdin oo Unix.stderr
          in
          Unix.close oo;
          let ic = Unix.in_channel_of_descr out_r in
          (match input_line ic with
          | "READY" -> ()
          | _ | (exception End_of_file) ->
              Printf.eprintf "fleetbench: server %d did not come up\n" i;
              exit 1);
          (path, pid, ic))
    in
    let stop () =
      List.iter
        (fun (path, pid, ic) ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          close_in_noerr ic;
          unregister_cleanup path)
        servers
    in
    (String.concat "," (List.map (fun (p, _, _) -> p) servers), stop)
  in
  Printf.printf "== fleetbench: hlid fleet (%s) ==\n" (String.concat ", " names);
  Printf.printf "%d queries per client session\n" nq;
  Printf.printf "%9s %8s %6s %9s %12s %12s %12s\n" "instances" "clients"
    "batch" "pipeline" "q/s" "p50 (us)" "p99 (us)";
  let rows = ref [] in
  List.iter
    (fun instances ->
      let socket, stop = boot instances in
      Fun.protect ~finally:stop @@ fun () ->
      List.iter
        (fun pipeline ->
          List.iter
            (fun batch ->
              let repeat =
                sb_calibrate ~pipeline ~shm:false ~batch socket bytes queries
              in
              List.iter
                (fun clients ->
                  let lats, wall_ns =
                    sb_run ~clients ~pipeline ~batch ~shm:false ~repeat ~names
                      socket
                  in
                  Array.sort compare lats;
                  let qps =
                    if wall_ns <= 0.0 then 0.0
                    else
                      float_of_int (clients * nq * repeat) /. (wall_ns /. 1e9)
                  in
                  let p50 = sb_percentile lats 0.50 /. 1e3
                  and p99 = sb_percentile lats 0.99 /. 1e3 in
                  rows :=
                    (instances, clients, batch, pipeline, qps, p50, p99)
                    :: !rows;
                  Printf.printf "%9d %8d %6d %9d %12.0f %12.1f %12.1f\n"
                    instances clients batch pipeline qps p50 p99)
                [ 1; 2; 4 ])
            [ 64 ])
        [ 1; 8 ])
    [ 1; 3 ];
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"hli-fleetbench-v1\",\"workloads\":[%s],\
        \"queries_per_session\":%d,\"rows\":["
       (String.concat ","
          (List.map
             (fun n -> "\"" ^ Harness.Telemetry.json_escape n ^ "\"")
             names))
       nq);
  List.iteri
    (fun i (instances, clients, batch, pipeline, qps, p50, p99) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"instances\":%d,\"clients\":%d,\"batch\":%d,\"pipeline\":%d,\
            \"qps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f}"
           instances clients batch pipeline qps p50 p99))
    (List.rev !rows);
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  (match Harness.Telemetry.validate_json json with
  | Ok () -> ()
  | Error (msg, pos) ->
      Printf.eprintf "fleetbench: generated malformed JSON at byte %d: %s\n"
        pos msg;
      exit 1);
  let out = Option.value ~default:"BENCH_fleetbench.json" cfg.out in
  let oc =
    try open_out_bin out
    with Sys_error msg ->
      Printf.eprintf "--out: %s\n" msg;
      exit 1
  in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.eprintf "wrote %s\n" out

(* remote-probe: loop batched queries against --remote SOCKET until a
   protocol fault surfaces, then exit through the diagnostic path.
   servbench.sh kills the server mid-probe and asserts that the client
   reports a precise E11xx code and a nonzero exit instead of hanging. *)
let remote_probe cfg =
  let socket =
    match cfg.remote with
    | Some s -> s
    | None ->
        prerr_endline "remote-probe: --remote SOCKET is required";
        exit 2
  in
  let w = workload_of_name ~mode:"remote-probe" "101.tomcatv" in
  let prog = Srclang.Typecheck.program_of_string w.Workloads.Workload.source in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let bytes = Hli_core.Serialize.to_bytes { Hli_core.Tables.entries } in
  let batches =
    sb_batches 16 (List.concat_map sb_queries_of_entry entries)
  in
  try
    let cl = Hli_server.Client.connect socket in
    ignore (Hli_server.Client.open_hli_bytes cl bytes);
    prerr_endline "remote-probe: session open, querying";
    while true do
      List.iter (fun b -> ignore (Hli_server.Client.query_batch cl b)) batches
    done
  with Diagnostics.Diagnostic d ->
    Fmt.epr "%a@." Diagnostics.pp d;
    exit (Diagnostics.exit_code d)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let w = Option.get (Workloads.Registry.find "101.tomcatv") in
  let src = w.Workloads.Workload.source in
  let prog = Srclang.Typecheck.program_of_string src in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let hli = { Hli_core.Tables.entries } in
  let bytes = Hli_core.Serialize.to_bytes hli in
  let rtl0 = Backend.Lower.lower_program prog in
  let fn = List.hd rtl0.Backend.Rtl.fns in
  let entry =
    List.find
      (fun (e : Hli_core.Tables.hli_entry) ->
        e.Hli_core.Tables.unit_name = fn.Backend.Rtl.fname)
      entries
  in
  let map = Backend.Hli_import.map_unit entry fn in
  let idx =
    match map.Backend.Hli_import.source with
    | Backend.Hli_import.Local idx -> idx
    | Backend.Hli_import.Remote _ -> assert false (* map_unit is local *)
  in
  let item_arr = Array.of_list (Hli_core.Tables.all_items entry) in
  let small_src =
    {|
double a[64];
int main()
{
  int i;
  double s;
  s = 0.0;
  for (i = 1; i < 64; i++)
  {
    a[i] = a[i] + a[i-1];
    s = s + a[i];
  }
  print_double(s);
  return 0;
}
|}
  in
  let small = Harness.Pipeline.compile small_src in
  let tests =
    [
      Test.make ~name:"frontend:parse+typecheck"
        (Staged.stage (fun () -> ignore (Srclang.Typecheck.program_of_string src)));
      Test.make ~name:"frontend:tblconst"
        (Staged.stage (fun () -> ignore (Hligen.Tblconst.build_program prog)));
      Test.make ~name:"hli:serialize"
        (Staged.stage (fun () -> ignore (Hli_core.Serialize.to_bytes hli)));
      Test.make ~name:"hli:deserialize"
        (Staged.stage (fun () -> ignore (Hli_core.Serialize.of_bytes bytes)));
      Test.make ~name:"backend:lower"
        (Staged.stage (fun () -> ignore (Backend.Lower.lower_program prog)));
      Test.make ~name:"hli:query-equiv-acc-x200"
        (Staged.stage (fun () ->
             let n = Array.length item_arr in
             for k = 0 to 199 do
               let a = item_arr.(k mod n) and b = item_arr.((k * 7 + 3) mod n) in
               ignore (Hli_core.Query.get_equiv_acc idx a b)
             done));
      Test.make ~name:"backend:ddg+schedule"
        (Staged.stage (fun () ->
             let rtl = Backend.Lower.lower_program prog in
             ignore
               (Backend.Sched.schedule_program ~mode:Backend.Ddg.Gcc_only
                  ~hli_of_fn:(fun _ -> None) ~md:Backend.Machdesc.r10000 rtl)));
      Test.make ~name:"machine:r4600-sim-small"
        (Staged.stage (fun () ->
             ignore
               (Machine.Simulate.run Machine.Simulate.R4600
                  (Harness.Pipeline.rtl_gcc_r4600 small))));
      Test.make ~name:"machine:r10000-sim-small"
        (Staged.stage (fun () ->
             ignore
               (Machine.Simulate.run Machine.Simulate.R10000
                  (Harness.Pipeline.rtl_gcc_r10000 small))));
    ]
  in
  print_endline "\n== Microbenchmarks (ns per run, OLS on monotonic clock) ==";
  List.iter
    (fun t ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.4) () in
      let raw = Benchmark.all cfg instances t in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Printf.printf "%-34s %14.1f\n" name est
          | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
        ols)
    tests

let () =
  let cfg = parse_args () in
  install_signal_handlers ();
  let pool =
    if cfg.jobs > 1 then Some (Pool.create ~jobs:cfg.jobs) else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      if cfg.mode = "tables" || cfg.mode = "all" then begin
        ignore (reproduce_tables cfg pool);
        (* ablations use fixed workload subsets; skip them when the
           run was narrowed with --workloads (e.g. the smoke alias)
           or is itself an ablated run *)
        if cfg.workloads = None && cfg.ablation = "baseline" then begin
          ablation_compile_section pool "merge-off"
            [ "101.tomcatv"; "102.swim"; "034.mdljdp2"; "129.compress" ];
          ablation_compile_section pool "routine-regions"
            [ "101.tomcatv"; "102.swim"; "129.compress" ];
          ablation_sim_section pool cfg.fuel "hli-only"
            [ "101.tomcatv"; "034.mdljdp2" ];
          ablation_sim_section pool cfg.fuel "lsq-off"
            [ "034.mdljdp2"; "077.mdljsp2"; "102.swim" ];
          ablation_passes ()
        end
      end;
      if cfg.mode = "micro" || cfg.mode = "all" then micro ();
      if cfg.mode = "querybench" then querybench cfg;
      if cfg.mode = "serbench" then serbench cfg pool;
      if cfg.mode = "servbench" then servbench cfg;
      if cfg.mode = "servbench-child" then sb_child cfg;
      if cfg.mode = "fleetbench-server" then sb_server cfg;
      if cfg.mode = "fleetbench" then fleetbench cfg;
      if cfg.mode = "remote-probe" then remote_probe cfg;
      if cfg.mode = "emit-hli" then emit_hli cfg;
      if cfg.mode = "editstorm" then editstorm cfg;
      if cfg.mode = "specbench" then specbench cfg pool)
