#!/bin/sh
# Edit-storm check for the per-function HLI cache (dune alias
# @editstorm, also run by @smoke).
#
# Runs bench/main.exe in editstorm mode over the full suite, which
#   1. mutates 1%/5%/25%/100% of the suite's functions (in-place
#      constant tweaks) and re-runs the HLI-production phase through a
#      warm per-function cache — the mode itself asserts the
#      hit/miss ledger per fraction (only touched functions miss) and
#      that every spliced warm HLI is byte-identical to a cold build,
#   2. validates the emitted BENCH_editstorm.json (structural check +
#      the fields EXPERIMENTS.md documents), and
#   3. arms EDITSTORM_FLOOR (default 5): the 1% storm's recompile must
#      beat the cold build by at least that factor or the mode exits 1.
set -eu

# dune runs us inside _build with a relative exe path; make it invocable
exe="$1"
case "$exe" in
  /*) ;;
  *) exe="./$exe" ;;
esac

tmp="${TMPDIR:-/tmp}/hli-editstorm-$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

out="$tmp/BENCH_editstorm.json"
EDITSTORM_FLOOR="${EDITSTORM_FLOOR:-5}" \
  "$exe" editstorm --hli-cache "$tmp/cache" --out "$out" > "$tmp/es.out"

"$exe" --validate-json "$out" > /dev/null \
  || { echo "editstorm: FAIL — malformed $out" >&2; exit 1; }

for key in '"schema":"hli-editstorm-v1"' '"workloads":' '"functions":' \
           '"fraction":' '"mutated":' '"reanalyzed":' '"partial_hits":' \
           '"cold_ns":' '"warm_ns":' '"edit_ns":' '"speedup":'; do
  grep -q -- "$key" "$out" \
    || { echo "editstorm: FAIL — $out lacks $key" >&2; exit 1; }
done

echo "editstorm: OK (${EDITSTORM_FLOOR:-5}x floor upheld, JSON valid)"
