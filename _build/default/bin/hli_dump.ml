(* hli_dump — inspect a serialized HLI file.

   Prints the line table and region tables of every program unit, and
   verifies the binary round-trip. *)

open Cmdliner

let run path verify =
  try
    let f = Hli_core.Serialize.read_file path in
    print_string (Hli_core.Serialize.to_text f);
    if verify then begin
      let bytes = Hli_core.Serialize.to_bytes f in
      let f2 = Hli_core.Serialize.of_bytes bytes in
      if f = f2 then Fmt.pr "round-trip: OK (%d bytes)@." (String.length bytes)
      else begin
        Fmt.epr "round-trip: MISMATCH@.";
        exit 2
      end
    end;
    0
  with
  | Hli_core.Serialize.Corrupt msg ->
      Fmt.epr "corrupt HLI file: %s@." msg;
      1
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"HLI file")

let verify_flag =
  Arg.(value & flag & info [ "verify" ] ~doc:"check binary round-trip")

let cmd =
  let doc = "dump a High-Level Information file" in
  Cmd.v (Cmd.info "hli_dump" ~doc) Term.(const run $ path_arg $ verify_flag)

let () = exit (Cmd.eval' cmd)
