(* experiments — regenerate the paper's Table 1 and Table 2 over all
   fourteen workloads, plus the DESIGN.md ablations. *)

open Cmdliner

let run_tables only quick =
  let wls =
    match only with
    | [] -> Workloads.Registry.all
    | names ->
        List.filter
          (fun w -> List.mem w.Workloads.Workload.name names)
          Workloads.Registry.all
  in
  let fuel = if quick then 20_000_000 else 400_000_000 in
  let rows =
    List.map
      (fun w ->
        Fmt.epr "running %s...@." w.Workloads.Workload.name;
        Harness.Tables.run_workload ~fuel w)
      wls
  in
  print_string (Harness.Tables.print_tables rows);
  0

let only_arg =
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME" ~doc:"run only this workload (repeatable)")

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"cap simulation fuel for a fast pass")

let cmd =
  let doc = "reproduce the paper's Tables 1 and 2" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run_tables $ only_arg $ quick_flag)

let () = exit (Cmd.eval' cmd)
