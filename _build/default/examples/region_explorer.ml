(* Region explorer: reproduces the paper's Figure 2 on its own example
   program — the region tree, the items, the equivalence classes per
   region, the alias entry between b[0] and b[0..9], and the LCDD from
   b[j] to b[j-1] with distance 1.

   Run with: dune exec examples/region_explorer.exe *)

let figure2_program =
  {|
int a[10];
int b[10];
int sum;

void foo()
{
  int i;
  int j;
  for (i = 0; i < 10; i++)
  {
    a[i] = 0;
  }
  for (i = 0; i < 10; i++)
  {
    sum = sum + a[i] + b[0];
    for (j = 1; j < 10; j++)
    {
      b[j] = b[j] + b[j-1];
      a[i] = a[i] + b[j];
      sum = sum + 1;
    }
  }
}
|}

let () =
  let prog = Srclang.Typecheck.program_of_string figure2_program in
  let ctx = Hligen.Tblconst.make_context prog in
  let f = List.hd prog.Srclang.Tast.funcs in
  let entry, items, region = Hligen.Tblconst.build_unit ctx f in
  Fmt.pr "== region tree ==@.%a@.@." Frontir.Region.pp_tree region;
  Fmt.pr "== memory access items (ITEMGEN) ==@.";
  List.iter
    (fun it -> Fmt.pr "  %a@." Frontir.Itemgen.pp_item it)
    items.Frontir.Itemgen.items;
  Fmt.pr "@.== HLI tables (TBLCONST) ==@.%a@.@." Hli_core.Tables.pp_entry entry;
  (* exercise the query interface the back end would use *)
  let idx = Hli_core.Query.build entry in
  let show_equiv a b =
    Fmt.pr "get_equiv_acc(%d, %d) = %a@." a b Hli_core.Query.pp_equiv_result
      (Hli_core.Query.get_equiv_acc idx a b)
  in
  (* items 6 and 7 are the b[j] and b[j-1] loads: distinct locations in
     one iteration, so the scheduler may reorder them *)
  show_equiv 6 7;
  (* items 6 and 8 are b[j] load and b[j] store: same class *)
  show_equiv 6 8;
  (* the LCDD between their classes in the j-loop (region 4) *)
  match Hli_core.Query.get_lcdd idx ~rid:4 6 7 with
  | Some lcdds ->
      List.iter (fun l -> Fmt.pr "lcdd: %a@." Hli_core.Tables.pp_lcdd l) lcdds
  | None -> Fmt.pr "lcdd: items not represented in region 4@."
