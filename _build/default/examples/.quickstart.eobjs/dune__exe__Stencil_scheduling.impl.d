examples/stencil_scheduling.ml: Backend Fmt Harness Machine Option Workloads
