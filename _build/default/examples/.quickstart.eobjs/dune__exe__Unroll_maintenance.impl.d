examples/unroll_maintenance.ml: Backend Fmt Harness Hli_core List Machine Option Srclang
