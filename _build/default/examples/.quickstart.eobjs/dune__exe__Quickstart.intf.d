examples/quickstart.mli:
