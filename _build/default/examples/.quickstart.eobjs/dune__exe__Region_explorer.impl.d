examples/region_explorer.ml: Fmt Frontir Hli_core Hligen List Srclang
