examples/interprocedural_cse.ml: Backend Fmt Harness Hli_core List Machine Srclang
