examples/unroll_maintenance.mli:
