examples/interprocedural_cse.mli:
