examples/quickstart.ml: Backend Fmt Harness Machine
