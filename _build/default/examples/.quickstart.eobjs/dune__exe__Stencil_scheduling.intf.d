examples/stencil_scheduling.mli:
