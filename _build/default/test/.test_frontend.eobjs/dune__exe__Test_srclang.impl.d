test/test_srclang.ml: Alcotest Ast Fmt Lexer List Loc Option Parser QCheck QCheck_alcotest Srclang Symbol Tast Token Typecheck Types
