test/test_workloads.ml: Alcotest Backend Harness Hli_core List Machine String Workloads
