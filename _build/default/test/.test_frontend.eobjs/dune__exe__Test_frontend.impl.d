test/test_frontend.ml: Alcotest Backend Fmt Frontir Hli_core Hligen List Machine Option Srclang String
