test/test_machine.ml: Alcotest Backend Machine Srclang String
