test/test_passes.ml: Alcotest Backend Harness Hli_core List Machine Option Srclang String Workloads
