test/test_analysis.ml: Affine Alcotest Analysis Callgraph Deptest Frontir List Option Pointsto QCheck QCheck_alcotest Refmod Section Srclang Symbol Tast Typecheck Types
