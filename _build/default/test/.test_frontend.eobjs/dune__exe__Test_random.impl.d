test/test_random.ml: Alcotest Array Harness List Machine Printf QCheck QCheck_alcotest String
