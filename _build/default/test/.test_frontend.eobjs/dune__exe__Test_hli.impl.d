test/test_hli.ml: Alcotest Array Hli_core Hligen List Option QCheck QCheck_alcotest Srclang String
