test/test_backend.ml: Alcotest Array Backend Ddg Frontir Gcc_alias Harness Hashtbl Hli_core Hli_import Hligen List Lower Machdesc Option Rtl Sched Srclang Workloads
