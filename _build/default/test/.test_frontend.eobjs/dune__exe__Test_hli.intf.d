test/test_hli.mli:
