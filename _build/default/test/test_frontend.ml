let paper_example = {|
int a[10];
int b[10];
int sum;

void foo()
{
  int i;
  int j;
  for (i = 0; i < 10; i++)
  {
    a[i] = 0;
  }
  for (i = 0; i < 10; i++)
  {
    sum = sum + a[i] + b[0];
    for (j = 1; j < 10; j++)
    {
      b[j] = b[j] + b[j-1];
      a[i] = a[i] + b[j];
      sum = sum + 1;
    }
  }
}
|}

let test_smoke () =
  let prog = Srclang.Typecheck.program_of_string paper_example in
  let ctx = Hligen.Tblconst.make_context prog in
  let f = List.hd prog.Srclang.Tast.funcs in
  let entry, u, region = Hligen.Tblconst.build_unit ctx f in
  Fmt.epr "region tree:@.%a@." Frontir.Region.pp_tree region;
  List.iter (fun it -> Fmt.epr "%a@." Frontir.Itemgen.pp_item it) u.Frontir.Itemgen.items;
  Fmt.epr "%a@." Hli_core.Tables.pp_entry entry;
  let file = { Hli_core.Tables.entries = [ entry ] } in
  let bytes = Hli_core.Serialize.to_bytes file in
  let file2 = Hli_core.Serialize.of_bytes bytes in
  Alcotest.(check bool) "roundtrip" true (file = file2);
  Alcotest.(check int) "4 regions" 4 (List.length entry.Hli_core.Tables.regions)


(* Verify the Memwalk/Lower ordering contract: HLI items map 1:1 onto
   RTL memory references for every function. *)
let test_mapping () =
  let prog = Srclang.Typecheck.program_of_string paper_example in
  let ctx = Hligen.Tblconst.make_context prog in
  let rtl = Backend.Lower.lower_program prog in
  List.iter
    (fun f ->
      let entry, _, _ = Hligen.Tblconst.build_unit ctx f in
      let fn = Option.get (Backend.Rtl.find_fn rtl f.Srclang.Tast.name) in
      let m = Backend.Hli_import.map_unit entry fn in
      Alcotest.(check int) (f.Srclang.Tast.name ^ " unmapped") 0 m.Backend.Hli_import.unmapped_insns;
      Alcotest.(check (list int)) (f.Srclang.Tast.name ^ " mismatched") [] m.Backend.Hli_import.mismatched_lines)
    prog.Srclang.Tast.funcs

let e2e_src = {|
double x[100];
double y[100];
double z[100];
int n = 100;

void saxpy(double a)
{
  int i;
  for (i = 0; i < 100; i++)
  {
    y[i] = y[i] + a * x[i];
    z[i] = y[i] * 2.0;
  }
}

int main()
{
  int i;
  double sum;
  for (i = 0; i < 100; i++)
  {
    x[i] = i * 1.0;
    y[i] = 2.0 * i;
  }
  saxpy(3.0);
  sum = 0.0;
  for (i = 0; i < 100; i++)
  {
    sum = sum + z[i];
  }
  print_double(sum);
  return 0;
}
|}

let compile_both src =
  let prog = Srclang.Typecheck.program_of_string src in
  let ctx = Hligen.Tblconst.make_context prog in
  let entries =
    List.map (fun f -> let e, _, _ = Hligen.Tblconst.build_unit ctx f in e)
      prog.Srclang.Tast.funcs
  in
  let make_rtl mode =
    let rtl = Backend.Lower.lower_program prog in
    let hli_of_fn name =
      match List.find_opt (fun (e : Hli_core.Tables.hli_entry) -> e.Hli_core.Tables.unit_name = name) entries with
      | Some e ->
          let fn = Option.get (Backend.Rtl.find_fn rtl name) in
          Some (Backend.Hli_import.map_unit e fn)
      | None -> None
    in
    let stats = Backend.Sched.schedule_program ~mode ~hli_of_fn ~md:Backend.Machdesc.r10000 rtl in
    (rtl, stats)
  in
  (make_rtl Backend.Ddg.Gcc_only, make_rtl Backend.Ddg.With_hli)

let test_e2e () =
  let (rtl_gcc, _), (rtl_hli, stats) = compile_both e2e_src in
  let r1 = Machine.Simulate.run Machine.Simulate.R4600 rtl_gcc in
  let r2 = Machine.Simulate.run Machine.Simulate.R4600 rtl_hli in
  let r3 = Machine.Simulate.run Machine.Simulate.R10000 rtl_gcc in
  let r4 = Machine.Simulate.run Machine.Simulate.R10000 rtl_hli in
  Alcotest.(check string) "same output r4600" r1.Machine.Simulate.output r2.Machine.Simulate.output;
  Alcotest.(check string) "same output r10000" r3.Machine.Simulate.output r4.Machine.Simulate.output;
  Fmt.epr "output: %s@." (String.trim r1.Machine.Simulate.output);
  Fmt.epr "queries total=%d gcc=%d hli=%d combined=%d@." stats.Backend.Ddg.total
    stats.Backend.Ddg.gcc_yes stats.Backend.Ddg.hli_yes stats.Backend.Ddg.combined_yes;
  Fmt.epr "r4600: gcc=%d hli=%d | r10000: gcc=%d hli=%d (lsq stalls %d vs %d)@."
    r1.Machine.Simulate.cycles r2.Machine.Simulate.cycles
    r3.Machine.Simulate.cycles r4.Machine.Simulate.cycles
    r3.Machine.Simulate.lsq_stalls r4.Machine.Simulate.lsq_stalls;
  Alcotest.(check bool) "queries made" true (stats.Backend.Ddg.total > 0);
  (* expected checksum: sum z[i] = 2*(2i + 3i) = 10i summed = 10*4950 *)
  Alcotest.(check string) "checksum" "49500.000000" (String.trim r1.Machine.Simulate.output)

let () =
  Alcotest.run "frontend"
    [ ("smoke",
       [ Alcotest.test_case "paper example" `Quick test_smoke;
         Alcotest.test_case "item mapping" `Quick test_mapping;
         Alcotest.test_case "end to end" `Quick test_e2e ]) ]
