(** GCC-2.7-style conservative memory disambiguation.

    Reimplements the base+offset reasoning of GCC's
    [memrefs_conflict_p]/[true_dependence] era (before alias.c grew type
    information): two memory references conflict unless their addresses
    can be proven distinct purely from the RTL address structure.  This
    is deliberately the {e weak} analyzer of the paper's Table 2 "GCC
    result" column — the headroom the HLI then recovers.

    Rules:
    - distinct global symbols never conflict;
    - same base (symbol, frame, or same pointer register) with constant
      offsets: conflict iff the byte ranges overlap;
    - any reference with an index register conflicts with everything in
      a compatible space (GCC cannot bound the index);
    - register-based (pointer) references conflict with all symbol/frame
      references and with each other, except the same-register
      constant-offset case;
    - the argument-passing areas are private: outgoing/incoming slots
      conflict only among themselves at overlapping offsets. *)

open Rtl

(* byte ranges [o1, o1+s1) and [o2, o2+s2) overlap? *)
let ranges_overlap o1 s1 o2 s2 = o1 < o2 + s2 && o2 < o1 + s1

(* Both references have fixed (index-free) addresses off the same base. *)
let fixed m = m.mindex = None

(** Do the two references possibly access overlapping memory, under
    GCC's local rules only? *)
let memrefs_conflict_p (a : mem) (b : mem) : bool =
  match (a.mbase, b.mbase) with
  | Bsym sa, Bsym sb ->
      if not (Srclang.Symbol.equal sa sb) then false
      else if fixed a && fixed b then
        ranges_overlap a.moffset a.msize b.moffset b.msize
      else true
  | Bframe, Bframe ->
      if fixed a && fixed b then ranges_overlap a.moffset a.msize b.moffset b.msize
      else true
  | Bargout, Bargout | Bargin, Bargin ->
      ranges_overlap a.moffset a.msize b.moffset b.msize
  | Bargout, Bargin | Bargin, Bargout ->
      (* different frames' linkage areas *)
      false
  | (Bargout | Bargin), _ | _, (Bargout | Bargin) ->
      (* GCC knows the arg-passing slots are compiler-private *)
      false
  | Breg ra, Breg rb ->
      if ra = rb && fixed a && fixed b then
        ranges_overlap a.moffset a.msize b.moffset b.msize
      else true
  | Breg _, (Bsym _ | Bframe) | (Bsym _ | Bframe), Breg _ ->
      (* a pointer may point anywhere GCC can see *)
      true
  | Bsym _, Bframe | Bframe, Bsym _ ->
      (* frame slots are not globals; GCC 2.7 distinguished the frame
         from static storage *)
      false

(** GCC's answer to "must I assume a dependence between these two
    references?" — one of them being a write is the caller's concern. *)
let true_dependence a b = memrefs_conflict_p a b
