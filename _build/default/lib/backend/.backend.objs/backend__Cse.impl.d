lib/backend/cse.ml: Array Gcc_alias Hashtbl Hli_core Hli_import List Rtl Srclang
