lib/backend/machdesc.ml: Rtl
