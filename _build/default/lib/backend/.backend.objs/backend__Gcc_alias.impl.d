lib/backend/gcc_alias.ml: Rtl Srclang
