lib/backend/hli_import.ml: Array Hashtbl Hli_core List Rtl
