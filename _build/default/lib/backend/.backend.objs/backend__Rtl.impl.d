lib/backend/rtl.ml: Array Fmt List Srclang Symbol Tast
