lib/backend/lower.ml: Array Ast Frontir Hashtbl List Loc Option Rtl Srclang Symbol Tast Types
