lib/backend/unroll.ml: Array Hashtbl Hli_core List Option Rtl
