lib/backend/sched.ml: Array Ddg Fun List Machdesc Rtl
