lib/backend/ddg.ml: Array Gcc_alias Hashtbl Hli_import List Machdesc Option Rtl
