lib/backend/licm.ml: Array Gcc_alias Hashtbl Hli_core Hli_import List Option Rtl
