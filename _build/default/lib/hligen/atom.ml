(** Atoms: the units from which a region's equivalence classes are
    built.

    An atom is either a memory item immediately enclosed by the region,
    or a whole equivalence class propagated up from an immediate
    sub-region (with its locations widened over the sub-loop's range).
    TBLCONST groups atoms into classes, then derives alias and LCDD
    relations between the classes. *)

open Srclang
open Analysis

(** The memory "space" an atom lives in; atoms in different spaces can
    only interact through pointer aliasing. *)
type space =
  | Space_sym of Symbol.t  (** a named variable *)
  | Space_ptr of Symbol.t  (** indirection through pointer variable *)
  | Space_any  (** unknown pointer: may be anywhere *)
  | Space_abi_out of int  (** outgoing stack-argument slot *)
  | Space_abi_in of int  (** incoming stack-argument slot *)

let space_equal a b =
  match (a, b) with
  | Space_sym x, Space_sym y | Space_ptr x, Space_ptr y -> Symbol.equal x y
  | Space_any, Space_any -> true
  | Space_abi_out i, Space_abi_out j | Space_abi_in i, Space_abi_in j -> i = j
  | _ -> false

let space_of_access (a : Frontir.Access.t) =
  match a.Frontir.Access.base with
  | Frontir.Access.Direct s -> Space_sym s
  | Frontir.Access.Through_ptr p -> Space_ptr p
  | Frontir.Access.Unknown_ptr -> Space_any
  | Frontir.Access.Stack_arg (_, i) -> Space_abi_out i
  | Frontir.Access.Incoming_arg (_, i) -> Space_abi_in i

type t = {
  members : Hli_core.Tables.member list;
  space : space;
  section : Section.t;  (** where in the space the atom may touch *)
  kind : Hli_core.Tables.equiv_kind;
  has_load : bool;
  has_store : bool;
  reprs : Frontir.Access.t list;
      (** representative raw accesses; non-empty only for atoms built
          from immediate items, enabling exact dependence distances *)
  desc : string;
}

(** Section of one access: point sections from affine subscripts,
    [Whole] for scalars or non-affine subscripts. *)
let section_of_access (a : Frontir.Access.t) : Section.t =
  match a.Frontir.Access.subscripts with
  | [] -> Section.Whole
  | subs -> (
      let affs = List.map Affine.of_expr subs in
      if List.for_all Option.is_some affs then
        Section.of_point (List.map Option.get affs)
      else Section.Whole)

let is_degenerate_section = function
  | Section.Whole -> false
  | Section.Dims dims ->
      List.for_all
        (fun { Section.lo; hi } ->
          match (lo, hi) with
          | Some a, Some b -> Affine.equal a b
          | _ -> false)
        dims

let desc_of_space space =
  match space with
  | Space_sym s -> s.Symbol.name
  | Space_ptr p -> "*" ^ p.Symbol.name
  | Space_any -> "*?"
  | Space_abi_out i -> Printf.sprintf "argout%d" i
  | Space_abi_in i -> Printf.sprintf "argin%d" i

let of_item (item : Frontir.Itemgen.item) (a : Frontir.Access.t) : t =
  let section = section_of_access a in
  let scalar = a.Frontir.Access.subscripts = [] in
  {
    members = [ Hli_core.Tables.Member_item item.Frontir.Itemgen.id ];
    space = space_of_access a;
    section;
    kind = Hli_core.Tables.Definitely;
    has_load = not a.Frontir.Access.is_store;
    has_store = a.Frontir.Access.is_store;
    reprs = [ a ];
    desc =
      (if scalar then desc_of_space (space_of_access a)
       else Fmt.str "%s%a" (desc_of_space (space_of_access a)) Section.pp section);
  }

(** Can two atoms of the same space be proven to touch the same
    location(s)?  [invariant] must accept only symbols whose value cannot
    change between the two accesses (within one iteration of the
    region). *)
let is_whole_scalar (t : t) =
  t.section = Section.Whole
  &&
  match t.space with
  | Space_sym s -> Types.is_scalar s.Symbol.ty
  | Space_abi_out _ | Space_abi_in _ -> true
  | Space_ptr _ | Space_any -> false

let same_location ~invariant (a : t) (b : t) : Deptest.sameness =
  match (a.reprs, b.reprs) with
  | ra :: _, rb :: _ when List.length a.reprs = 1 && List.length b.reprs = 1 ->
      (* exact comparison on the raw subscripts *)
      Deptest.same_location ~invariant ra rb
  | _ ->
      if is_whole_scalar a && is_whole_scalar b then
        (* same scalar variable (spaces already matched): one location *)
        Deptest.Same
      else if Section.same a.section b.section then
        if is_degenerate_section a.section then Deptest.Same else Deptest.Maybe_same
      else if Section.disjoint a.section b.section then Deptest.Different
      else Deptest.Maybe_same
