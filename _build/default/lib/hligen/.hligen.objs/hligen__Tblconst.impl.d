lib/hligen/tblconst.ml: Affine Analysis Atom Deptest Fmt Frontir Hli_core List Option Pointsto Refmod Section Srclang Symbol Tast Types
