lib/hligen/atom.ml: Affine Analysis Deptest Fmt Frontir Hli_core List Option Printf Section Srclang Symbol Types
