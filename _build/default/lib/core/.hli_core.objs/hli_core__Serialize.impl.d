lib/core/serialize.ml: Buffer Char Fmt Fun List Printf String Tables
