lib/core/tables.ml: Fmt List
