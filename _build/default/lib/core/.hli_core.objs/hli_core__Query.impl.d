lib/core/query.ml: Fmt Hashtbl List Option Tables
