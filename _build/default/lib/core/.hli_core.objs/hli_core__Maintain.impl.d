lib/core/maintain.ml: Array Hashtbl List Option Printf Query Tables
