(** Experiment drivers reproducing the paper's Table 1 and Table 2. *)

type row = {
  w : Workloads.Workload.t;
  lines : int;
  hli_bytes : int;
  stats : Backend.Ddg.stats;
  sp_r4600 : float;
  sp_r10000 : float;
  dyn_insns : int;
}

let run_workload ?(fuel = 400_000_000) (w : Workloads.Workload.t) : row =
  let c = Pipeline.compile w.Workloads.Workload.source in
  let m = Pipeline.measure ~fuel c in
  {
    w;
    lines = Workloads.Workload.line_count w;
    hli_bytes = c.Pipeline.hli_bytes;
    stats = c.Pipeline.stats;
    sp_r4600 =
      Pipeline.speedup ~base:m.Pipeline.r4600_gcc ~opt:m.Pipeline.r4600_hli;
    sp_r10000 =
      Pipeline.speedup ~base:m.Pipeline.r10000_gcc ~opt:m.Pipeline.r10000_hli;
    dyn_insns = m.Pipeline.r4600_gcc.Machine.Simulate.dyn_insns;
  }

let reduction (s : Backend.Ddg.stats) =
  if s.Backend.Ddg.gcc_yes = 0 then 0.0
  else
    float_of_int (s.Backend.Ddg.gcc_yes - s.Backend.Ddg.combined_yes)
    /. float_of_int s.Backend.Ddg.gcc_yes

let pct n total = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

(* ------------------------------------------------------------------ *)
(* Formatting                                                          *)
(* ------------------------------------------------------------------ *)

let table1_header =
  Printf.sprintf "%-14s %-7s %10s %9s %13s" "Benchmark" "Suite" "Code(lines)"
    "HLI(KB)" "HLI/line(B)"

let table1_row (r : row) =
  Printf.sprintf "%-14s %-7s %10d %9.1f %13.1f" r.w.Workloads.Workload.name
    (Workloads.Workload.suite_name r.w.Workloads.Workload.suite)
    r.lines
    (float_of_int r.hli_bytes /. 1024.0)
    (float_of_int r.hli_bytes /. float_of_int (max 1 r.lines))

let table2_header =
  Printf.sprintf "%-14s %7s %9s %12s %12s %12s %6s %8s %8s" "Benchmark" "Tests"
    "per line" "GCC yes" "HLI yes" "Comb yes" "Red%" "R4600" "R10000"

let table2_row (r : row) =
  let s = r.stats in
  Printf.sprintf "%-14s %7d %9.2f %6d (%2.0f%%) %6d (%2.0f%%) %6d (%2.0f%%) %5.0f%% %8.2f %8.2f"
    r.w.Workloads.Workload.name s.Backend.Ddg.total
    (float_of_int s.Backend.Ddg.total /. float_of_int (max 1 r.lines))
    s.Backend.Ddg.gcc_yes
    (pct s.Backend.Ddg.gcc_yes s.Backend.Ddg.total)
    s.Backend.Ddg.hli_yes
    (pct s.Backend.Ddg.hli_yes s.Backend.Ddg.total)
    s.Backend.Ddg.combined_yes
    (pct s.Backend.Ddg.combined_yes s.Backend.Ddg.total)
    (100.0 *. reduction s)
    r.sp_r4600 r.sp_r10000

(* geometric mean of speedups, arithmetic means of percentages, as the
   paper's "mean" rows do *)
let mean_row name (rows : row list) =
  let n = max 1 (List.length rows) in
  let fn = float_of_int n in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. fn in
  let geo f =
    exp (List.fold_left (fun acc r -> acc +. log (f r)) 0.0 rows /. fn)
  in
  Printf.sprintf
    "%-14s %7s %9.2f %12s %12s %12s %5.0f%% %8.2f %8.2f" name "-"
    (avg (fun r -> float_of_int r.stats.Backend.Ddg.total /. float_of_int (max 1 r.lines)))
    (Printf.sprintf "- (%2.0f%%)" (avg (fun r -> pct r.stats.Backend.Ddg.gcc_yes r.stats.Backend.Ddg.total)))
    (Printf.sprintf "- (%2.0f%%)" (avg (fun r -> pct r.stats.Backend.Ddg.hli_yes r.stats.Backend.Ddg.total)))
    (Printf.sprintf "- (%2.0f%%)" (avg (fun r -> pct r.stats.Backend.Ddg.combined_yes r.stats.Backend.Ddg.total)))
    (100.0 *. avg (fun r -> reduction r.stats))
    (geo (fun r -> r.sp_r4600))
    (geo (fun r -> r.sp_r10000))

let mean_row_t1 name (rows : row list) =
  let n = max 1 (List.length rows) in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int n in
  Printf.sprintf "%-14s %-7s %10s %9s %13.1f" name "-" "-" "-"
    (avg (fun r -> float_of_int r.hli_bytes /. float_of_int (max 1 r.lines)))

let print_tables (rows : row list) =
  let int_rows, fp_rows =
    List.partition
      (fun r -> not (Workloads.Workload.is_fp r.w.Workloads.Workload.suite))
      rows
  in
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf (s ^ "\n") in
  line "== Table 1: benchmark characteristics ==";
  line table1_header;
  List.iter (fun r -> line (table1_row r)) int_rows;
  line (mean_row_t1 "mean (int)" int_rows);
  List.iter (fun r -> line (table1_row r)) fp_rows;
  line (mean_row_t1 "mean (fp)" fp_rows);
  line "";
  line "== Table 2: dependence tests and speedups ==";
  line table2_header;
  List.iter (fun r -> line (table2_row r)) int_rows;
  line (mean_row "mean (int)" int_rows);
  List.iter (fun r -> line (table2_row r)) fp_rows;
  line (mean_row "mean (fp)" fp_rows);
  Buffer.contents buf
