lib/harness/tables.ml: Backend Buffer List Machine Pipeline Printf Workloads
