lib/harness/pipeline.ml: Backend Fmt Hashtbl Hli_core Hligen List Machine Option Srclang
