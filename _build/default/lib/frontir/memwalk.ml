(** Canonical enumeration of memory events.

    The HLI mapping between front end and back end (paper Sections 2.1 and
    3.2.1) relies on one contract: {b for each source line, the front end
    lists memory items in exactly the order the back end's instruction
    stream contains the corresponding memory references}.  This module is
    the single definition of that order; {!Itemgen} consumes it directly
    and {!Backend.Lower} is written against the same rules (and tested for
    agreement on every workload).

    Ordering rules:
    - expressions are evaluated left to right, operands before operators;
    - for an assignment, the right-hand side is evaluated first, then the
      address of the left-hand side, and the store is last;
    - a subscripted access emits its base-pointer load (if the base is a
      memory-resident pointer variable), then its subscript expressions'
      events, then the element access itself;
    - a call emits its arguments' events left to right, then one store per
      stack-passed argument (beyond the 4 register arguments of the
      MIPS-style ABI), then the call event itself;
    - a function prologue emits, per parameter in order: a store when a
      register-passed parameter is memory-resident (spilled at entry), or
      a load when a stack-passed parameter is promoted to a register;
    - scalar locals and parameters that are never address-taken live in
      pseudo-registers and emit nothing (rule for optimization above -O0);
    - a [for (init; cond; step)] line emits init events, then cond events,
      then step events, matching the textual RTL layout
      preheader/header/latch. *)

open Srclang

(** Number of arguments passed in registers by the target ABI. *)
let abi_reg_args = 4

type event =
  | Mem of Access.t  (** a load or store of user-visible memory *)
  | Callsite of string  (** a call instruction *)

type line_event = { line : int; event : event }

let is_memory_lvalue (lv : Tast.lvalue) =
  match lv.Tast.ldesc with
  | Tast.Lvar s -> Symbol.memory_resident s
  | Tast.Lindex _ | Tast.Lderef _ -> true

let rec expr_events (e : Tast.expr) : line_event list =
  let line = e.Tast.loc.Loc.line in
  match e.Tast.desc with
  | Tast.Const_int _ | Tast.Const_float _ -> []
  | Tast.Lval lv ->
      if is_memory_lvalue lv then
        address_events lv
        @ [ { line = lv.Tast.lloc.Loc.line; event = Mem (Access.of_lvalue ~is_store:false lv) } ]
      else []
  | Tast.Addr lv -> address_events lv
  | Tast.Binop (_, a, b) -> expr_events a @ expr_events b
  | Tast.Unop (_, a) | Tast.Cast (_, a) -> expr_events a
  | Tast.Call (name, args) ->
      let arg_events = List.concat_map expr_events args in
      let n = List.length args in
      let stack_stores =
        if n <= abi_reg_args then []
        else
          List.filteri (fun i _ -> i >= abi_reg_args) args
          |> List.mapi (fun k arg ->
                 let idx = abi_reg_args + k in
                 let elem_size =
                   Types.size_of (Types.decay arg.Tast.ty)
                 in
                 {
                   line = arg.Tast.loc.Loc.line;
                   event =
                     Mem
                       {
                         Access.base = Access.Stack_arg (name, idx);
                         subscripts = [];
                         elem_size;
                         is_store = true;
                       };
                 })
      in
      arg_events @ stack_stores @ [ { line; event = Callsite name } ]

(** Events needed to compute the address of [lv] (no access to the
    element itself). *)
and address_events (lv : Tast.lvalue) : line_event list =
  match lv.Tast.ldesc with
  | Tast.Lvar _ -> []
  | Tast.Lindex (base, idx) ->
      let base_events =
        match base.Tast.lty with
        | Types.Tptr _ ->
            (* the pointer's value is needed: a load if it lives in memory *)
            if is_memory_lvalue base then
              address_events base
              @ [
                  {
                    line = base.Tast.lloc.Loc.line;
                    event = Mem (Access.of_lvalue ~is_store:false base);
                  };
                ]
            else []
        | _ -> address_events base
      in
      base_events @ expr_events idx
  | Tast.Lderef e -> expr_events e

let assign_events (lv : Tast.lvalue) (rhs : Tast.expr) sloc =
  let rhs_events = expr_events rhs in
  if is_memory_lvalue lv then
    rhs_events @ address_events lv
    @ [ { line = sloc.Loc.line; event = Mem (Access.of_lvalue ~is_store:true lv) } ]
  else rhs_events

(** Events of one statement, including nested statements, in program
    order. *)
let rec stmt_events (st : Tast.stmt) : line_event list =
  match st.Tast.sdesc with
  | Tast.Sexpr e -> expr_events e
  | Tast.Sassign (lv, rhs) -> assign_events lv rhs st.Tast.sloc
  | Tast.Sif (cond, a, b) -> expr_events cond @ stmts_events a @ stmts_events b
  | Tast.Swhile (cond, body) -> expr_events cond @ stmts_events body
  | Tast.Sfor (init, cond, step, body) ->
      let of_stmt = Option.fold ~none:[] ~some:stmt_events in
      let of_expr = Option.fold ~none:[] ~some:expr_events in
      of_stmt init @ of_expr cond @ stmts_events body @ of_stmt step
  | Tast.Sreturn e -> Option.fold ~none:[] ~some:expr_events e
  | Tast.Sblock body -> stmts_events body

and stmts_events stmts = List.concat_map stmt_events stmts

(** ABI events of the function prologue, on the function's first line. *)
let prologue_events (f : Tast.func) : line_event list =
  let line = f.Tast.loc.Loc.line in
  List.concat
    (List.mapi
       (fun i p ->
         let resident = Symbol.memory_resident p in
         let elem_size = Types.size_of (Types.decay p.Symbol.ty) in
         if i < abi_reg_args && resident then
           [
             {
               line;
               event =
                 Mem
                   {
                     Access.base = Access.Incoming_arg (f.Tast.name, i);
                     subscripts = [];
                     elem_size;
                     is_store = true;
                   };
             };
           ]
         else if i >= abi_reg_args && not resident then
           [
             {
               line;
               event =
                 Mem
                   {
                     Access.base = Access.Incoming_arg (f.Tast.name, i);
                     subscripts = [];
                     elem_size;
                     is_store = false;
                   };
             };
           ]
         else [])
       f.Tast.params)

(** All memory events of a function in program-textual order: prologue
    first, then the body. *)
let func_events (f : Tast.func) : line_event list =
  prologue_events f @ stmts_events f.Tast.body
