(** Memory-access descriptors.

    An [Access.t] captures *what* a memory item touches, in a form the
    dependence and alias analyses can reason about: a base plus subscript
    expressions.  Both the front-end ITEMGEN phase and the HLI table
    construction work over these. *)

open Srclang

type base =
  | Direct of Symbol.t  (** a named variable (scalar or array) *)
  | Through_ptr of Symbol.t
      (** indirection through a named pointer variable: [*p], [p\[i\]] *)
  | Unknown_ptr  (** indirection through a computed pointer expression *)
  | Stack_arg of string * int
      (** ABI traffic: outgoing stack slot for argument [i] of a call to
          the named function (paper Section 3.1.1) *)
  | Incoming_arg of string * int
      (** ABI traffic at function entry for parameter [i] *)

type t = {
  base : base;
  subscripts : Tast.expr list;  (** outermost dimension first; may be [] *)
  elem_size : int;  (** bytes accessed *)
  is_store : bool;
}

let base_symbol t =
  match t.base with
  | Direct s -> Some s
  | Through_ptr _ | Unknown_ptr | Stack_arg _ | Incoming_arg _ -> None

let pointer_symbol t =
  match t.base with
  | Through_ptr p -> Some p
  | Direct _ | Unknown_ptr | Stack_arg _ | Incoming_arg _ -> None

(** Descriptor for an lvalue that is known to be a memory access.
    [is_store] distinguishes the final read/write of the location. *)
let of_lvalue ~is_store (lv : Tast.lvalue) : t =
  let elem_size = Types.size_of (Types.decay lv.Tast.lty) in
  let subscripts = Tast.subscripts lv in
  let base =
    match Tast.root_symbol lv with
    | Some s -> Direct s
    | None -> (
        match Tast.via_pointer lv with
        | Some p -> Through_ptr p
        | None -> Unknown_ptr)
  in
  { base; subscripts; elem_size; is_store }

let pp_base ppf = function
  | Direct s -> Symbol.pp ppf s
  | Through_ptr p -> Fmt.pf ppf "*%a" Symbol.pp p
  | Unknown_ptr -> Fmt.string ppf "*?"
  | Stack_arg (f, i) -> Fmt.pf ppf "stackarg(%s,%d)" f i
  | Incoming_arg (f, i) -> Fmt.pf ppf "inarg(%s,%d)" f i

let pp ppf t =
  Fmt.pf ppf "%s %a%a"
    (if t.is_store then "st" else "ld")
    pp_base t.base
    Fmt.(list (brackets Tast.pp_expr))
    t.subscripts

let to_string t = Fmt.str "%a" pp t
