(** ITEMGEN — memory access item generation (paper Section 3.1.1).

    Walks a function and assigns a unique item id to every memory access
    and call event, in the canonical {!Memwalk} order.  The produced items
    are the currency of the whole HLI: the line table lists them per line,
    the region tables group them into equivalence classes, and the back
    end maps them 1:1 onto RTL memory references. *)

open Srclang

type kind =
  | Mem_item of Access.t
  | Call_item of string  (** callee name *)

type item = {
  id : int;  (** unique within the program unit *)
  line : int;
  kind : kind;
}

type unit_items = {
  func_name : string;
  items : item list;  (** in canonical order *)
}

let access_of item =
  match item.kind with Mem_item a -> Some a | Call_item _ -> None

let is_store item =
  match item.kind with Mem_item a -> a.Access.is_store | Call_item _ -> false

let is_call item =
  match item.kind with Call_item _ -> true | Mem_item _ -> false

(** Generate items for one function.  Ids start at [first_id] and are
    dense; the next free id is returned alongside. *)
let of_func ?(first_id = 1) (f : Tast.func) : unit_items * int =
  let events = Memwalk.func_events f in
  let next = ref first_id in
  let items =
    List.map
      (fun { Memwalk.line; event } ->
        let id = !next in
        incr next;
        match event with
        | Memwalk.Mem access -> { id; line; kind = Mem_item access }
        | Memwalk.Callsite name -> { id; line; kind = Call_item name })
      events
  in
  ({ func_name = f.Tast.name; items }, !next)

(** Items grouped by source line, preserving canonical order within each
    line (this is exactly the HLI line table's content). *)
let by_line (u : unit_items) : (int * item list) list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun it ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl it.line) in
      Hashtbl.replace tbl it.line (it :: prev))
    u.items;
  Hashtbl.fold (fun line items acc -> (line, List.rev items) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Items whose line falls inside region [r] but not inside any of its
    sub-regions. *)
let immediate_items (u : unit_items) (r : Region.t) : item list =
  List.filter
    (fun it ->
      it.line >= r.Region.first_line
      && it.line <= r.Region.last_line
      && not
           (List.exists
              (fun s ->
                it.line >= s.Region.first_line && it.line <= s.Region.last_line)
              r.Region.subs))
    u.items

(** All items inside region [r], including sub-regions. *)
let items_within (u : unit_items) (r : Region.t) : item list =
  List.filter
    (fun it -> it.line >= r.Region.first_line && it.line <= r.Region.last_line)
    u.items

let pp_item ppf it =
  match it.kind with
  | Mem_item a -> Fmt.pf ppf "{%d @%d %a}" it.id it.line Access.pp a
  | Call_item name -> Fmt.pf ppf "{%d @%d call %s}" it.id it.line name
