lib/frontir/itemgen.ml: Access Fmt Hashtbl List Memwalk Option Region Srclang Tast
