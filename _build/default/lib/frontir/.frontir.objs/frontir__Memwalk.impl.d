lib/frontir/memwalk.ml: Access List Loc Option Srclang Symbol Tast Types
