lib/frontir/access.ml: Fmt Srclang Symbol Tast Types
