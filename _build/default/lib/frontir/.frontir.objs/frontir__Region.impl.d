lib/frontir/region.ml: Ast Fmt List Loc Srclang Symbol Tast Types
