(** 107.mgrid stand-in: multigrid solver.

    The original applies 27-point 3-D stencils (resid/psinv) and
    grid-transfer operators.  The paper reports the {e smallest} HLI
    win of the floating-point set (15% reduction): the same array
    appears as both input and output of the smoother at different grid
    levels reached through offset pointers, so the front end can rarely
    separate classes.  We reproduce that with in-place smoothing on one
    array through two offset pointer views plus the usual 3-D stencil
    reads, so most HLI answers stay "maybe". *)

let template =
  {|
double grid_u[@SZ3@];
double grid_v[@SZ3@];
double grid_r[@SZ3@];

void resid(double *u, double *v, double *r, int n)
{
  int i;
  int j;
  int k;
  int n2;
  n2 = n * n;
  for (i = 1; i < n - 1; i++)
  {
    for (j = 1; j < n - 1; j++)
    {
      for (k = 1; k < n - 1; k++)
      {
        r[i*n2+j*n+k] = v[i*n2+j*n+k]
          - 2.0 * u[i*n2+j*n+k]
          + 0.125 * (u[(i-1)*n2+j*n+k] + u[(i+1)*n2+j*n+k]
            + u[i*n2+(j-1)*n+k] + u[i*n2+(j+1)*n+k]
            + u[i*n2+j*n+k-1] + u[i*n2+j*n+k+1]);
      }
    }
  }
}

void psinv(double *r, double *u, int n)
{
  int i;
  int j;
  int k;
  int n2;
  n2 = n * n;
  for (i = 1; i < n - 1; i++)
  {
    for (j = 1; j < n - 1; j++)
    {
      for (k = 1; k < n - 1; k++)
      {
        u[i*n2+j*n+k] = u[i*n2+j*n+k]
          + 0.5 * r[i*n2+j*n+k]
          + 0.0625 * (r[(i-1)*n2+j*n+k] + r[(i+1)*n2+j*n+k]
            + r[i*n2+(j-1)*n+k] + r[i*n2+(j+1)*n+k]
            + r[i*n2+j*n+k-1] + r[i*n2+j*n+k+1]);
      }
    }
  }
}

void smooth_inplace(double *u, int n)
{
  int i;
  int j;
  int k;
  int n2;
  double *a;
  double *b;
  n2 = n * n;
  a = u;
  b = u + 1;
  for (i = 1; i < n - 1; i++)
  {
    for (j = 1; j < n - 1; j++)
    {
      for (k = 1; k < n - 2; k++)
      {
        a[i*n2+j*n+k] = 0.75 * a[i*n2+j*n+k] + 0.25 * b[i*n2+j*n+k];
      }
    }
  }
}

double norm(double *r, int n)
{
  int i;
  int j;
  int k;
  int n2;
  double s;
  n2 = n * n;
  s = 0.0;
  for (i = 0; i < n; i++)
  {
    for (j = 0; j < n; j++)
    {
      for (k = 0; k < n; k++)
      {
        s = s + r[i*n2+j*n+k] * r[i*n2+j*n+k];
      }
    }
  }
  return s;
}

int main()
{
  int i;
  int cyc;
  double s;
  for (i = 0; i < @SZ3@; i++)
  {
    grid_u[i] = 0.0;
    grid_v[i] = 0.001 * (i % 257) - 0.128;
    grid_r[i] = 0.0;
  }
  s = 0.0;
  for (cyc = 0; cyc < @CYCLES@; cyc++)
  {
    resid(grid_u, grid_v, grid_r, @N@);
    psinv(grid_r, grid_u, @N@);
    smooth_inplace(grid_u, @N@);
    s = norm(grid_r, @N@);
  }
  print_double(s);
  return 0;
}
|}

let n = 24

let source =
  Workload.expand [ ("SZ3", n * n * n); ("CYCLES", 10); ("N", n) ] template

let workload =
  {
    Workload.name = "107.mgrid";
    suite = Workload.Cfp95;
    descr = "multigrid 3-D stencils with in-place offset-pointer smoothing";
    source;
  }
