(** Workload descriptors.

    Each workload is a mini-C program standing in for one row of the
    paper's Tables 1 and 2.  SPEC sources are not redistributable (and
    far larger); these programs reproduce the {e memory-reference
    character} that drives the paper's numbers — loop structure,
    refs-per-line density, array-vs-pointer access style, and
    call-graph shape — at a scale our simulators run in seconds.  See
    DESIGN.md ("Substitutions"). *)

type suite = Gnu | Cint92 | Cint95 | Cfp92 | Cfp95

let suite_name = function
  | Gnu -> "GNU"
  | Cint92 -> "CINT92"
  | Cint95 -> "CINT95"
  | Cfp92 -> "CFP92"
  | Cfp95 -> "CFP95"

let is_fp = function Cfp92 | Cfp95 -> true | Gnu | Cint92 | Cint95 -> false

type t = {
  name : string;  (** paper's benchmark name *)
  suite : suite;
  descr : string;  (** what the original program does / what we mimic *)
  source : string;  (** mini-C source text *)
}

(** Source lines, counted the way the paper's Table 1 does (all lines of
    the source file). *)
let line_count (w : t) =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 w.source

(** Template expansion for generated sources: replaces each [@KEY@]
    occurrence with its value.  Used by workloads whose problem sizes
    are parameters. *)
let expand (bindings : (string * int) list) (template : string) : string =
  List.fold_left
    (fun acc (key, v) ->
      let pat = "@" ^ key ^ "@" in
      let b = Buffer.create (String.length acc) in
      let plen = String.length pat in
      let rec go i =
        if i >= String.length acc then ()
        else if
          i + plen <= String.length acc && String.sub acc i plen = pat
        then begin
          Buffer.add_string b (string_of_int v);
          go (i + plen)
        end
        else begin
          Buffer.add_char b acc.[i];
          go (i + 1)
        end
      in
      go 0;
      Buffer.contents b)
    template bindings
