(** 048.ora stand-in: optical ray tracing.

    The original traces rays through a stack of optical surfaces —
    almost pure scalar double-precision code (sqrt-heavy), tiny arrays,
    long arithmetic dependence chains and few memory references.  Memory
    disambiguation consequently buys little (the paper reports a 1.00
    speedup), which this stand-in preserves: the surface table is small
    and scalars dominate. *)

let template =
  {|
double surf_r[@NSURF@];
double surf_d[@NSURF@];
double surf_n[@NSURF@];
double stat_y[@NSURF@];
double stat_u[@NSURF@];
double acc_x;
double acc_u;

void setup()
{
  int s;
  for (s = 0; s < @NSURF@; s++)
  {
    surf_r[s] = 20.0 + 3.0 * s;
    surf_d[s] = 1.5 + 0.25 * s;
    surf_n[s] = 1.4 + 0.01 * s;
    stat_y[s] = 0.0;
    stat_u[s] = 0.0;
  }
}

double trace_ray(double y0, double u0, double *sy, double *su)
{
  int b;
  int s;
  double y;
  double u;
  double i;
  double ip;
  double n1;
  double n2;
  double c;
  y = y0;
  u = u0;
  n1 = 1.0;
  for (s = 0; s < @NSURF@; s++)
  {
    c = 1.0 / surf_r[s];
    i = u + y * c;
    n2 = surf_n[s];
    ip = i * n1 / n2;
    u = ip - y * c;
    y = y + u * surf_d[s];
    n1 = n2;
  }
  b = 0;
  if (y < 0.0)
  {
    b = 1;
  }
  sy[b] = sy[b] + y;
  su[b] = su[b] + u;
  return y * y + u * u;
}

double ray_bundle(int nrays)
{
  int k;
  double a;
  double y0;
  double u0;
  double e;
  a = 0.0;
  for (k = 0; k < nrays; k++)
  {
    y0 = 0.05 * k;
    u0 = 0.001 * k - 0.02;
    e = trace_ray(y0, u0, stat_y, stat_u);
    a = a + sqrt(e + 1.0);
    acc_x = acc_x + y0;
    acc_u = acc_u + u0;
  }
  return a;
}

int main()
{
  int round;
  double total;
  setup();
  acc_x = 0.0;
  acc_u = 0.0;
  total = 0.0;
  for (round = 0; round < @ROUNDS@; round++)
  {
    total = total + ray_bundle(@NRAYS@);
  }
  print_double(total);
  print_double(acc_x);
  print_double(stat_y[3] + stat_u[5]);
  return 0;
}
|}

let source =
  Workload.expand [ ("NSURF", 16); ("NRAYS", 512); ("ROUNDS", 40) ] template

let workload =
  {
    Workload.name = "048.ora";
    suite = Workload.Cfp92;
    descr = "ray tracing through optical surfaces: scalar sqrt-heavy chains";
    source;
  }
