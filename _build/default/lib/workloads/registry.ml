(** All workloads, in the paper's Table 1/2 order (integer suite first,
    then floating point). *)

let all : Workload.t list =
  [
    W_wc.workload;
    W_espresso.workload;
    W_eqntott.workload;
    W_compress.workload;
    W_doduc.workload;
    W_mdljdp2.workload;
    W_ora.workload;
    W_alvinn.workload;
    W_mdljsp2.workload;
    W_tomcatv.workload;
    W_swim.workload;
    W_su2cor.workload;
    W_mgrid.workload;
    W_apsi.workload;
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all
