(** 015.doduc stand-in: Monte-Carlo nuclear reactor simulation.

    The original is a large (25k-line) Fortran program of many small
    routines: table interpolations, thermodynamic property evaluations
    and control logic, with deep call chains and dense per-line memory
    traffic in nested loops (the paper measures its largest HLI file,
    53 bytes/line, and a 63% edge reduction).  We reproduce the shape
    with a battery of interpolation/property routines over shared
    tables, called from nested sweep loops. *)

let template =
  {|
double t_temp[@TAB@];
double t_pres[@TAB@];
double t_enth[@TAB@];
double t_dens[@TAB@];
double t_visc[@TAB@];
double cell_t[@NCELL@];
double cell_p[@NCELL@];
double cell_h[@NCELL@];
double cell_d[@NCELL@];
double flux[@NCELL@];
double srcq[@NCELL@];

void build_tables()
{
  int i;
  for (i = 0; i < @TAB@; i++)
  {
    t_temp[i] = 280.0 + 2.5 * i;
    t_pres[i] = 1.0 + 0.04 * i;
    t_enth[i] = 1000.0 + 12.0 * i + 0.01 * i * i;
    t_dens[i] = 900.0 - 1.5 * i;
    t_visc[i] = 0.001 + 0.00001 * i;
  }
}

int locate(double *tab, double x)
{
  int lo;
  int hi;
  int mid;
  lo = 0;
  hi = @TAB@ - 1;
  while (hi - lo > 1)
  {
    mid = (lo + hi) / 2;
    if (tab[mid] > x)
    {
      hi = mid;
    }
    else
    {
      lo = mid;
    }
  }
  return lo;
}

double interp(double *xs, double *ys, double x)
{
  int i;
  double f;
  i = locate(xs, x);
  f = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return ys[i] + f * (ys[i + 1] - ys[i]);
}

double enthalpy(double t)
{
  return interp(t_temp, t_enth, t);
}

double density(double t)
{
  return interp(t_temp, t_dens, t);
}

double viscosity(double t)
{
  return interp(t_temp, t_visc, t);
}

double heat_source(int i, double t)
{
  double base;
  base = 0.8 + 0.2 * sin(0.01 * i);
  return base * (1.0 + 0.0005 * (t - 300.0));
}

void sweep_cells(double *ct, double *cp, double *ch, double *cd, double *fl, double *sq)
{
  int i;
  double h;
  double d;
  double mu;
  double q;
  double dt;
  for (i = 1; i < @NCELL1@; i++)
  {
    h = enthalpy(ct[i]);
    d = density(ct[i]);
    mu = viscosity(ct[i]);
    q = heat_source(i, ct[i]);
    dt = (q + 0.5 * (fl[i - 1] + fl[i]) - 0.001 * h * mu) / (d + 1.0);
    ct[i] = ct[i] + 0.05 * dt;
    ch[i] = h;
    cd[i] = d;
    cp[i] = cp[i] + 0.01 * (d - 900.0);
    sq[i] = q;
  }
}

void diffuse_flux(double *fl, double *sq)
{
  int i;
  for (i = 1; i < @NCELL1@; i++)
  {
    fl[i] = 0.9 * fl[i] + 0.05 * (fl[i - 1] + fl[i + 1]) + 0.02 * sq[i];
  }
}

double core_energy(double *ch, double *cd)
{
  int i;
  double e;
  e = 0.0;
  for (i = 0; i < @NCELL@; i++)
  {
    e = e + ch[i] * cd[i];
  }
  return e * 0.000001;
}

int main()
{
  int i;
  int step;
  double e;
  build_tables();
  for (i = 0; i < @NCELL@; i++)
  {
    cell_t[i] = 300.0 + 0.2 * i;
    cell_p[i] = 10.0;
    cell_h[i] = 0.0;
    cell_d[i] = 0.0;
    flux[i] = 1.0 + 0.001 * i;
    srcq[i] = 0.0;
  }
  e = 0.0;
  for (step = 0; step < @STEPS@; step++)
  {
    sweep_cells(cell_t, cell_p, cell_h, cell_d, flux, srcq);
    diffuse_flux(flux, srcq);
    e = core_energy(cell_h, cell_d);
  }
  print_double(e);
  return 0;
}
|}

let source =
  Workload.expand
    [ ("NCELL1", 1023); ("NCELL", 1024); ("TAB", 128); ("STEPS", 30) ]
    template

let workload =
  {
    Workload.name = "015.doduc";
    suite = Workload.Cfp92;
    descr = "reactor simulation: table interpolation routines under sweep loops";
    source;
  }
