(** 101.tomcatv stand-in: vectorized mesh generation.

    The original is a Fortran mesh generator dominated by 2-D
    neighbor-stencil sweeps over a handful of grid arrays.  We reproduce
    that shape: flattened 2-D grids handed to subroutines as pointer
    parameters (the Fortran calling convention GCC sees), residual
    computation with (i±1, j±1) neighbors, and relaxation sweeps.
    Pointer-parameter stencils are exactly where GCC's local
    disambiguation collapses (every reference is register-based) while
    the HLI's points-to and SIV tests keep the classes apart. *)

let n = 64

let template =
  {|
double xx[@NSQ@];
double yy[@NSQ@];
double rxg[@NSQ@];
double ryg[@NSQ@];
double aa[@N@];
double dd[@N@];

void residual(double *x, double *y, double *rx, double *ry)
{
  int i;
  int j;
  for (i = 1; i < @N1@; i++)
  {
    for (j = 1; j < @N1@; j++)
    {
      double xxij;
      double yxij;
      double xyij;
      double yyij;
      double a;
      double b;
      double c;
      xxij = 0.5 * (x[(i+1)*@N@+j] - x[(i-1)*@N@+j]);
      yxij = 0.5 * (y[(i+1)*@N@+j] - y[(i-1)*@N@+j]);
      xyij = 0.5 * (x[i*@N@+j+1] - x[i*@N@+j-1]);
      yyij = 0.5 * (y[i*@N@+j+1] - y[i*@N@+j-1]);
      a = 0.25 * (xyij*xyij + yyij*yyij);
      b = 0.25 * (xxij*xxij + yxij*yxij);
      c = 0.125 * (xxij*xyij + yxij*yyij);
      rx[i*@N@+j] = a * (x[(i+1)*@N@+j] - 2.0*x[i*@N@+j] + x[(i-1)*@N@+j])
        + b * (x[i*@N@+j+1] - 2.0*x[i*@N@+j] + x[i*@N@+j-1])
        - 2.0 * c * (x[(i+1)*@N@+j+1] - x[(i+1)*@N@+j-1] - x[(i-1)*@N@+j+1] + x[(i-1)*@N@+j-1]);
      ry[i*@N@+j] = a * (y[(i+1)*@N@+j] - 2.0*y[i*@N@+j] + y[(i-1)*@N@+j])
        + b * (y[i*@N@+j+1] - 2.0*y[i*@N@+j] + y[i*@N@+j-1])
        - 2.0 * c * (y[(i+1)*@N@+j+1] - y[(i+1)*@N@+j-1] - y[(i-1)*@N@+j+1] + y[(i-1)*@N@+j-1]);
    }
  }
}

void relax(double *x, double *rx, double *a, double *d)
{
  int i;
  int j;
  double r;
  for (i = 1; i < @N1@; i++)
  {
    d[i] = 1.0 / (4.0 + a[i]);
    for (j = 1; j < @N1@; j++)
    {
      r = rx[i*@N@+j];
      x[i*@N@+j] = x[i*@N@+j] + 0.35 * r * d[i];
    }
  }
}

double maxres(double *rx, double *ry)
{
  int i;
  int j;
  double m;
  double v;
  m = 0.0;
  for (i = 1; i < @N1@; i++)
  {
    for (j = 1; j < @N1@; j++)
    {
      v = fabs(rx[i*@N@+j]) + fabs(ry[i*@N@+j]);
      if (v > m)
      {
        m = v;
      }
    }
  }
  return m;
}

int main()
{
  int i;
  int j;
  int it;
  double res;
  for (i = 0; i < @N@; i++)
  {
    aa[i] = 0.01 * i;
    dd[i] = 0.0;
    for (j = 0; j < @N@; j++)
    {
      xx[i*@N@+j] = i * 1.0 + 0.03 * j;
      yy[i*@N@+j] = j * 1.0 - 0.01 * i;
      rxg[i*@N@+j] = 0.0;
      ryg[i*@N@+j] = 0.0;
    }
  }
  res = 0.0;
  for (it = 0; it < 8; it++)
  {
    residual(xx, yy, rxg, ryg);
    relax(xx, rxg, aa, dd);
    relax(yy, ryg, aa, dd);
    res = maxres(rxg, ryg);
  }
  print_double(res);
  return 0;
}
|}

let source =
  Workload.expand [ ("NSQ", n * n); ("N1", n - 1); ("N", n) ] template

let workload =
  {
    Workload.name = "101.tomcatv";
    suite = Workload.Cfp95;
    descr = "2-D mesh generation: pointer-parameter neighbor stencils";
    source;
  }
