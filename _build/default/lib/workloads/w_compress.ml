(** 129.compress stand-in: LZW compression.

    The original compresses a byte stream with a hash-probed code table.
    We reproduce the structure: a byte-generating loop, an LZW encode
    loop probing global hash/code tables with data-dependent indices,
    and a small output-counting sink.  Integer code, short basic blocks,
    few memory references per line — the profile the paper reports for
    the integer programs (low queries/line, modest HLI benefit). *)

let template =
  {|
int htab[@HSIZE@];
int codetab[@HSIZE@];
int inbuf[@INSIZE@];
int outcount;
int incount;
int checksum;

void cl_hash()
{
  int i;
  for (i = 0; i < @HSIZE@; i++)
  {
    htab[i] = -1;
    codetab[i] = 0;
  }
}

int emit_code(int code)
{
  outcount = outcount + 1;
  checksum = (checksum + code) & 65535;
  return code;
}

void fill_input(int n)
{
  int i;
  int v;
  v = 7;
  for (i = 0; i < n; i++)
  {
    v = (v * 129 + 41) & 8191;
    if (v & 64)
    {
      inbuf[i] = (v >> 3) & 63;
    }
    else
    {
      inbuf[i] = v & 15;
    }
  }
  incount = n;
}

void compress(int *buf, int *ht, int *ct)
{
  int i;
  int ent;
  int c;
  int fcode;
  int h;
  int disp;
  int free_ent;
  int probes;
  free_ent = 257;
  ent = buf[0];
  probes = 0;
  for (i = 1; i < incount; i++)
  {
    c = buf[i];
    fcode = (c << 12) + ent;
    h = (c << 4) ^ ent;
    if (ht[h] == fcode)
    {
      ent = ct[h];
    }
    else
    {
      if (ht[h] >= 0)
      {
        disp = @HSIZE@ - h;
        if (h == 0)
        {
          disp = 1;
        }
        probes = 0;
        while (ht[h] >= 0 && ht[h] != fcode && probes < 8)
        {
          h = h - disp;
          if (h < 0)
          {
            h = h + @HSIZE@;
          }
          probes = probes + 1;
        }
      }
      if (ht[h] == fcode)
      {
        ent = ct[h];
      }
      else
      {
        emit_code(ent);
        if (free_ent < @MAXCODE@)
        {
          ct[h] = free_ent;
          ht[h] = fcode;
          free_ent = free_ent + 1;
        }
        ent = c;
      }
    }
  }
  emit_code(ent);
}

int main()
{
  int round;
  outcount = 0;
  checksum = 0;
  for (round = 0; round < @ROUNDS@; round++)
  {
    fill_input(@INSIZE@);
    cl_hash();
    compress(inbuf, htab, codetab);
  }
  print_int(outcount);
  print_int(checksum);
  return 0;
}
|}

let source =
  Workload.expand
    [ ("HSIZE", 5003); ("INSIZE", 16384); ("MAXCODE", 4096); ("ROUNDS", 6) ]
    template

let workload =
  {
    Workload.name = "129.compress";
    suite = Workload.Cint95;
    descr = "LZW compression: hash-probed tables, data-dependent indices";
    source;
  }
