(** 008.espresso stand-in: two-level logic minimization.

    The original manipulates cube covers as arrays of bit-set words
    passed between many small set-operation routines.  We reproduce
    that: a cover of fixed-width cubes, set operations (and/or/diff/
    containment/distance) through pointer parameters, and an iterative
    expand/irredundant-like driver.  Many short leaf calls over
    pointer-parameter words is where GCC's disambiguation gives up and
    interprocedural REF/MOD plus points-to recover scheduling freedom
    (the paper's largest integer reduction, 62%). *)

let template =
  {|
int cover[@COVSZ@];
int tmpa[@W@];
int tmpb[@W@];
int tmpc[@W@];
int ncubes;
int sig;

void set_copy(int *dst, int *src)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    dst[k] = src[k];
  }
}

void set_and(int *dst, int *a, int *b)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    dst[k] = a[k] & b[k];
  }
}

void set_or(int *dst, int *a, int *b)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    dst[k] = a[k] | b[k];
  }
}

void set_diff(int *dst, int *a, int *b)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    dst[k] = a[k] & ~b[k];
  }
}

int set_empty(int *a)
{
  int k;
  int acc;
  acc = 0;
  for (k = 0; k < @W@; k++)
  {
    acc = acc | a[k];
  }
  return acc == 0;
}

int set_contains(int *a, int *b)
{
  int k;
  int bad;
  bad = 0;
  for (k = 0; k < @W@; k++)
  {
    bad = bad | (b[k] & ~a[k]);
  }
  return bad == 0;
}

int cube_distance(int *a, int *b)
{
  int k;
  int d;
  int x;
  d = 0;
  for (k = 0; k < @W@; k++)
  {
    x = a[k] & b[k];
    if (x == 0)
    {
      d = d + 1;
    }
  }
  return d;
}

void gen_cube(int *dst, int seed)
{
  int k;
  int v;
  v = seed;
  for (k = 0; k < @W@; k++)
  {
    v = (v * 69069 + 5) & 1048575;
    dst[k] = v | 257;
  }
}

void expand_cube(int *c, int *against)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    c[k] = c[k] | (c[k] << 1 & ~against[k]);
  }
}

int irredundant()
{
  int i;
  int j;
  int removed;
  removed = 0;
  for (i = 0; i < ncubes; i++)
  {
    for (j = 0; j < ncubes; j++)
    {
      if (i != j)
      {
        if (set_contains(cover + j * @W@, cover + i * @W@))
        {
          if (set_empty(cover + i * @W@) == 0)
          {
            set_diff(cover + i * @W@, cover + i * @W@, cover + i * @W@);
            removed = removed + 1;
          }
        }
      }
    }
  }
  return removed;
}

void sharp(int *a, int *b)
{
  set_and(tmpa, a, b);
  set_diff(tmpb, a, tmpa);
  set_or(a, tmpb, tmpa);
}

int main()
{
  int i;
  int j;
  int pass;
  int total;
  int d;
  ncubes = @NCUBES@;
  total = 0;
  for (i = 0; i < ncubes; i++)
  {
    gen_cube(cover + i * @W@, i * 7 + 3);
  }
  for (pass = 0; pass < @PASSES@; pass++)
  {
    for (i = 0; i < ncubes; i++)
    {
      for (j = i + 1; j < ncubes; j++)
      {
        d = cube_distance(cover + i * @W@, cover + j * @W@);
        if (d == 0)
        {
          sharp(cover + i * @W@, cover + j * @W@);
        }
        else
        {
          if (d == 1)
          {
            expand_cube(cover + i * @W@, cover + j * @W@);
          }
        }
      }
    }
    total = total + irredundant();
  }
  sig = 0;
  for (i = 0; i < ncubes * @W@; i++)
  {
    sig = (sig + cover[i]) & 65535;
  }
  print_int(total);
  print_int(sig);
  return 0;
}
|}

let source =
  Workload.expand
    [ ("COVSZ", 64 * 8); ("NCUBES", 64); ("PASSES", 12); ("W", 8) ]
    template

let workload =
  {
    Workload.name = "008.espresso";
    suite = Workload.Cint92;
    descr = "logic minimization: bit-set cubes through pointer-parameter leaf calls";
    source;
  }
