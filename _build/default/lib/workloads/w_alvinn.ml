(** 052.alvinn stand-in: neural-network training.

    The original trains a small feed-forward network (input → hidden →
    output) with back-propagation: matrix-vector products over weight
    arrays and activation vectors, all reached through pointer
    parameters.  The tiny program size (475 lines in the paper) and
    dense inner products match here. *)

let template =
  {|
double in_act[@NIN@];
double hid_act[@NHID@];
double out_act[@NOUT@];
double w1[@W1SZ@];
double w2[@W2SZ@];
double hid_delta[@NHID@];
double out_delta[@NOUT@];
double target[@NOUT@];

void input_pattern(int seed)
{
  int i;
  int v;
  v = seed;
  for (i = 0; i < @NIN@; i++)
  {
    v = (v * 137 + 29) & 4095;
    in_act[i] = v * 0.000244140625;
  }
  for (i = 0; i < @NOUT@; i++)
  {
    v = (v * 137 + 29) & 4095;
    target[i] = v * 0.000244140625;
  }
}

void forward_hidden(double *act, double *w, double *hid)
{
  int h;
  int i;
  double s;
  for (h = 0; h < @NHID@; h++)
  {
    s = 0.0;
    for (i = 0; i < @NIN@; i++)
    {
      s = s + act[i] * w[h * @NIN@ + i];
    }
    hid[h] = 1.0 / (1.0 + exp(0.0 - s));
  }
}

void forward_output(double *hid, double *w, double *out)
{
  int o;
  int h;
  double s;
  for (o = 0; o < @NOUT@; o++)
  {
    s = 0.0;
    for (h = 0; h < @NHID@; h++)
    {
      s = s + hid[h] * w[o * @NHID@ + h];
    }
    out[o] = 1.0 / (1.0 + exp(0.0 - s));
  }
}

double output_error(double *out, double *tgt, double *delta)
{
  int o;
  double e;
  double d;
  e = 0.0;
  for (o = 0; o < @NOUT@; o++)
  {
    d = tgt[o] - out[o];
    delta[o] = d * out[o] * (1.0 - out[o]);
    e = e + d * d;
  }
  return e;
}

void hidden_error(double *odelta, double *w, double *hid, double *hdelta)
{
  int h;
  int o;
  double s;
  for (h = 0; h < @NHID@; h++)
  {
    s = 0.0;
    for (o = 0; o < @NOUT@; o++)
    {
      s = s + odelta[o] * w[o * @NHID@ + h];
    }
    hdelta[h] = s * hid[h] * (1.0 - hid[h]);
  }
}

void adjust_w2(double *w, double *odelta, double *hid)
{
  int o;
  int h;
  for (o = 0; o < @NOUT@; o++)
  {
    for (h = 0; h < @NHID@; h++)
    {
      w[o * @NHID@ + h] = w[o * @NHID@ + h] + 0.3 * odelta[o] * hid[h];
    }
  }
}

void adjust_w1(double *w, double *hdelta, double *act)
{
  int h;
  int i;
  for (h = 0; h < @NHID@; h++)
  {
    for (i = 0; i < @NIN@; i++)
    {
      w[h * @NIN@ + i] = w[h * @NIN@ + i] + 0.3 * hdelta[h] * act[i];
    }
  }
}

int main()
{
  int epoch;
  int i;
  double err;
  for (i = 0; i < @W1SZ@; i++)
  {
    w1[i] = 0.01 * ((i * 7) % 19) - 0.09;
  }
  for (i = 0; i < @W2SZ@; i++)
  {
    w2[i] = 0.01 * ((i * 5) % 23) - 0.11;
  }
  err = 0.0;
  for (epoch = 0; epoch < @EPOCHS@; epoch++)
  {
    input_pattern(epoch * 13 + 1);
    forward_hidden(in_act, w1, hid_act);
    forward_output(hid_act, w2, out_act);
    err = err + output_error(out_act, target, out_delta);
    hidden_error(out_delta, w2, hid_act, hid_delta);
    adjust_w2(w2, out_delta, hid_act);
    adjust_w1(w1, hid_delta, in_act);
  }
  print_double(err);
  return 0;
}
|}

let source =
  Workload.expand
    [
      ("W1SZ", 960 * 30);
      ("W2SZ", 30 * 30);
      ("NIN", 960);
      ("NHID", 30);
      ("NOUT", 30);
      ("EPOCHS", 24);
    ]
    template

let workload =
  {
    Workload.name = "052.alvinn";
    suite = Workload.Cfp92;
    descr = "neural-net training: matrix-vector products via pointer parameters";
    source;
  }
