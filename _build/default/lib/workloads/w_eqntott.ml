(** 023.eqntott stand-in: truth-table generation.

    The original spends its time comparing and sorting PLA terms —
    fixed-width integer vectors — through a comparison routine called
    from a sort.  We reproduce that: term vectors in a flat global
    array, a [cmppt]-like comparator through pointer parameters, an
    insertion/shell sort driver, and a de-duplication sweep. *)

let template =
  {|
int terms[@TOTSZ@];
int outterms[@TOTSZ@];
int perm[@NTERMS@];
int nterm;
int sig;

void gen_terms(int seed)
{
  int i;
  int k;
  int v;
  v = seed;
  for (i = 0; i < @NTERMS@; i++)
  {
    perm[i] = i;
    for (k = 0; k < @W@; k++)
    {
      v = (v * 75 + 74) % 65537;
      terms[i * @W@ + k] = v & 3;
    }
  }
  nterm = @NTERMS@;
}

int cmppt(int *a, int *b)
{
  int k;
  for (k = 0; k < @W@; k++)
  {
    if (a[k] < b[k])
    {
      return 0 - 1;
    }
    if (a[k] > b[k])
    {
      return 1;
    }
  }
  return 0;
}

void sort_terms()
{
  int gap;
  int i;
  int j;
  int t;
  int c;
  gap = nterm / 2;
  while (gap > 0)
  {
    for (i = gap; i < nterm; i++)
    {
      j = i - gap;
      while (j >= 0)
      {
        c = cmppt(terms + perm[j] * @W@, terms + perm[j + gap] * @W@);
        if (c > 0)
        {
          t = perm[j];
          perm[j] = perm[j + gap];
          perm[j + gap] = t;
          j = j - gap;
        }
        else
        {
          j = 0 - 1;
        }
      }
    }
    gap = gap / 2;
  }
}

int copy_unique(int *src, int *dst, int *pm)
{
  int i;
  int k;
  int n;
  int same;
  n = 0;
  for (i = 0; i < nterm; i++)
  {
    same = 0;
    if (i > 0)
    {
      same = cmppt(src + pm[i] * @W@, src + pm[i - 1] * @W@) == 0;
    }
    if (same == 0)
    {
      for (k = 0; k < @W@; k++)
      {
        dst[n * @W@ + k] = src[pm[i] * @W@ + k];
      }
      n = n + 1;
    }
  }
  return n;
}

int dedup()
{
  int i;
  int uniq;
  uniq = 1;
  for (i = 1; i < nterm; i++)
  {
    if (cmppt(terms + perm[i] * @W@, terms + perm[i - 1] * @W@) != 0)
    {
      uniq = uniq + 1;
    }
  }
  return uniq;
}

int main()
{
  int round;
  int u;
  int i;
  u = 0;
  for (round = 0; round < @ROUNDS@; round++)
  {
    gen_terms(round * 31 + 7);
    sort_terms();
    u = u + dedup();
    u = u + copy_unique(terms, outterms, perm);
  }
  sig = 0;
  for (i = 0; i < @NTERMS@; i++)
  {
    sig = (sig * 31 + perm[i] + outterms[i]) & 65535;
  }
  print_int(u);
  print_int(sig);
  return 0;
}
|}

let source =
  Workload.expand
    [ ("TOTSZ", 256 * 16); ("NTERMS", 256); ("ROUNDS", 6); ("W", 16) ]
    template

let workload =
  {
    Workload.name = "023.eqntott";
    suite = Workload.Cint92;
    descr = "truth-table generation: term comparison and sorting via pointers";
    source;
  }
