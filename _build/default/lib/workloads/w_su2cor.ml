(** 103.su2cor stand-in: quantum-physics lattice correlation.

    The original computes particle-mass correlation functions on a 4-D
    lattice with a Monte-Carlo update (matrix multiplies over small
    complex matrices at every site) and a correlation-gathering sweep
    with reductions.  We reproduce a flattened lattice of 2x2 "link
    matrices", a heat-bath-like update, and correlation sums at a range
    of separations. *)

let template =
  {|
double lat_a[@LSZ@];
double lat_b[@LSZ@];
double lat_c[@LSZ@];
double lat_d[@LSZ@];
double corr[@TLEN@];
double work[@LSZ@];

void init_lattice(int seed)
{
  int s;
  int v;
  v = seed;
  for (s = 0; s < @LSZ@; s++)
  {
    v = (v * 1103515 + 12345) & 1048575;
    lat_a[s] = 1.0 - 0.000001 * v;
    lat_b[s] = 0.0000005 * v - 0.25;
    lat_c[s] = 0.25 - 0.0000004 * v;
    lat_d[s] = 1.0 + 0.0000002 * v;
  }
}

void su2_multiply(double *a, double *b, double *c, double *d, double *w, int n)
{
  int s;
  int t;
  for (s = 0; s < n - 1; s++)
  {
    t = s + 1;
    w[s] = a[s] * a[t] - b[s] * b[t] - c[s] * c[t] - d[s] * d[t];
  }
  w[n - 1] = a[n - 1];
}

void heatbath(double *a, double *b, double *c, double *d, double *w, int n)
{
  int s;
  double act;
  double scale;
  for (s = 1; s < n - 1; s++)
  {
    act = w[s - 1] + w[s + 1];
    scale = 1.0 / sqrt(1.0 + act * act);
    a[s] = (a[s] + 0.1 * act) * scale;
    b[s] = b[s] * scale;
    c[s] = c[s] * scale;
    d[s] = d[s] * scale;
  }
}

void correlations(double *a, double *b, double *cr)
{
  int t;
  int s;
  double acc;
  for (t = 0; t < @TLEN@; t++)
  {
    acc = 0.0;
    for (s = 0; s < @LSZ@ - @TLEN@; s++)
    {
      acc = acc + a[s] * a[s + t] + b[s] * b[s + t];
    }
    cr[t] = cr[t] + acc;
  }
}

double effective_mass(double *cr)
{
  int t;
  double m;
  double r;
  m = 0.0;
  for (t = 1; t < @TLEN@ - 1; t++)
  {
    r = (cr[t - 1] + cr[t + 1]) / (2.0 * cr[t] + 0.000001);
    if (r > 1.0)
    {
      m = m + log(r);
    }
  }
  return m;
}

int main()
{
  int sweep;
  int t;
  double mass;
  init_lattice(991);
  for (t = 0; t < @TLEN@; t++)
  {
    corr[t] = 0.0;
  }
  mass = 0.0;
  for (sweep = 0; sweep < @SWEEPS@; sweep++)
  {
    su2_multiply(lat_a, lat_b, lat_c, lat_d, work, @LSZ@);
    heatbath(lat_a, lat_b, lat_c, lat_d, work, @LSZ@);
    correlations(lat_a, lat_b, corr);
    mass = effective_mass(corr);
  }
  print_double(mass);
  return 0;
}
|}

let source =
  Workload.expand [ ("LSZ", 8192); ("TLEN", 32); ("SWEEPS", 4) ] template

let workload =
  {
    Workload.name = "103.su2cor";
    suite = Workload.Cfp95;
    descr = "lattice correlation: multi-array sweeps and sliding-window reductions";
    source;
  }
