(** 141.apsi stand-in: mesoscale atmospheric simulation.

    The original advances temperature, wind and pollutant fields on a
    3-D grid through many specialized routines.  Its paper profile is
    distinctive: the highest query density (1.02 per line) but a modest
    33% reduction — a mix of disambiguable constant-stride sweeps and
    symbolic-stride/indirect routines the front end cannot crack.  We
    reproduce both kinds: constant-stride advection/diffusion over
    named fields, plus symbolic-stride column physics where the HLI
    stays conservative. *)

let template =
  {|
double t_fld[@SZ@];
double q_fld[@SZ@];
double uw_fld[@SZ@];
double vw_fld[@SZ@];
double wrk1[@SZ@];
double wrk2[@SZ@];
double colbuf[@NZ@];

void advect(double *t, double *u, double *v, double *out)
{
  int i;
  int j;
  for (i = 1; i < @NX1@; i++)
  {
    for (j = 1; j < @NY1@; j++)
    {
      out[i*@NY@+j] = t[i*@NY@+j]
        - 0.1 * u[i*@NY@+j] * (t[i*@NY@+j] - t[(i-1)*@NY@+j])
        - 0.1 * v[i*@NY@+j] * (t[i*@NY@+j] - t[i*@NY@+j-1]);
    }
  }
}

void diffuse(double *t, double *out)
{
  int i;
  int j;
  for (i = 1; i < @NX1@; i++)
  {
    for (j = 1; j < @NY1@; j++)
    {
      out[i*@NY@+j] = t[i*@NY@+j] + 0.05 *
        (t[(i+1)*@NY@+j] + t[(i-1)*@NY@+j] + t[i*@NY@+j+1] + t[i*@NY@+j-1] - 4.0 * t[i*@NY@+j]);
    }
  }
}

void column_physics(double *f, double *col, int nz, int stride)
{
  int k;
  double flux;
  for (k = 0; k < nz; k++)
  {
    col[k] = f[k * stride];
  }
  for (k = 1; k < nz - 1; k++)
  {
    flux = 0.3 * (col[k + 1] - col[k - 1]);
    f[k * stride] = col[k] + 0.01 * flux - 0.002 * col[k] * col[k];
  }
}

void apply_columns(double *f)
{
  int i;
  for (i = 0; i < @NX@; i++)
  {
    column_physics(f + i * @NY@, colbuf, @NZ@, 3);
  }
}

void wind_update(double *u, double *v, double *t)
{
  int i;
  int j;
  for (i = 1; i < @NX1@; i++)
  {
    for (j = 1; j < @NY1@; j++)
    {
      u[i*@NY@+j] = 0.99 * u[i*@NY@+j] - 0.002 * (t[i*@NY@+j] - t[(i-1)*@NY@+j]);
      v[i*@NY@+j] = 0.99 * v[i*@NY@+j] - 0.002 * (t[i*@NY@+j] - t[i*@NY@+j-1]);
    }
  }
}

void copy_back(double *dst, double *src)
{
  int i;
  for (i = 0; i < @SZ@; i++)
  {
    dst[i] = src[i];
  }
}

double total_heat(double *t)
{
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < @SZ@; i++)
  {
    s = s + t[i];
  }
  return s;
}

int main()
{
  int i;
  int step;
  double s;
  for (i = 0; i < @SZ@; i++)
  {
    t_fld[i] = 280.0 + 0.01 * (i % 97);
    q_fld[i] = 0.001 * (i % 31);
    uw_fld[i] = 1.0 + 0.005 * (i % 13);
    vw_fld[i] = 0.5 - 0.004 * (i % 17);
    wrk1[i] = 0.0;
    wrk2[i] = 0.0;
  }
  s = 0.0;
  for (step = 0; step < @STEPS@; step++)
  {
    advect(t_fld, uw_fld, vw_fld, wrk1);
    diffuse(wrk1, wrk2);
    copy_back(t_fld, wrk2);
    advect(q_fld, uw_fld, vw_fld, wrk1);
    copy_back(q_fld, wrk1);
    apply_columns(t_fld);
    wind_update(uw_fld, vw_fld, t_fld);
    s = total_heat(t_fld);
  }
  print_double(s);
  return 0;
}
|}

let nx = 48
let ny = 48

let source =
  Workload.expand
    [
      ("SZ", nx * ny);
      ("NX1", nx - 1);
      ("NY1", ny - 1);
      ("NX", nx);
      ("NY", ny);
      ("NZ", 16);
      ("STEPS", 12);
    ]
    template

let workload =
  {
    Workload.name = "141.apsi";
    suite = Workload.Cfp95;
    descr = "atmospheric fields: constant-stride sweeps plus symbolic-stride columns";
    source;
  }
