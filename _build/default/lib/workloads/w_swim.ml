(** 102.swim stand-in: shallow-water equations.

    The original sweeps five 2-D fields (u, v, p and their time-shifted
    copies) with wide stencils in three routines (calc1/calc2/calc3);
    its basic blocks contain a dozen loads from distinct arrays per
    statement.  The paper's numbers — 0.78 queries/line (the densest of
    all benchmarks), 96% GCC-yes, 90% reduction — come from exactly this
    many-array pointer-parameter stencil shape. *)

let template =
  {|
double u_g[@SZ@];
double v_g[@SZ@];
double p_g[@SZ@];
double unew_g[@SZ@];
double vnew_g[@SZ@];
double pnew_g[@SZ@];
double cu_g[@SZ@];
double cv_g[@SZ@];
double z_g[@SZ@];
double h_g[@SZ@];

void calc1(double *u, double *v, double *p, double *cu, double *cv, double *z, double *h)
{
  int i;
  int j;
  double fsdx;
  double fsdy;
  fsdx = 4.0 / 0.25;
  fsdy = 4.0 / 0.25;
  for (i = 1; i < @N1@; i++)
  {
    for (j = 1; j < @N1@; j++)
    {
      cu[i*@N@+j] = 0.5 * (p[i*@N@+j] + p[(i-1)*@N@+j]) * u[i*@N@+j];
      cv[i*@N@+j] = 0.5 * (p[i*@N@+j] + p[i*@N@+j-1]) * v[i*@N@+j];
      z[i*@N@+j] = (fsdx * (v[i*@N@+j] - v[(i-1)*@N@+j]) - fsdy * (u[i*@N@+j] - u[i*@N@+j-1]))
        / (p[(i-1)*@N@+j-1] + p[i*@N@+j-1] + p[i*@N@+j] + p[(i-1)*@N@+j]);
      h[i*@N@+j] = p[i*@N@+j] + 0.25 * (u[i*@N@+j] * u[i*@N@+j] + u[(i-1)*@N@+j] * u[(i-1)*@N@+j]
        + v[i*@N@+j] * v[i*@N@+j] + v[i*@N@+j-1] * v[i*@N@+j-1]);
    }
  }
}

void calc2(double *u, double *v, double *p, double *unew, double *vnew, double *pnew, double *cu, double *cv, double *z, double *h)
{
  int i;
  int j;
  double tdts8;
  double tdtsdx;
  double tdtsdy;
  tdts8 = 90.0 / 8.0;
  tdtsdx = 90.0 / 0.25;
  tdtsdy = 90.0 / 0.25;
  for (i = 1; i < @N1@; i++)
  {
    for (j = 1; j < @N1@; j++)
    {
      unew[i*@N@+j] = u[i*@N@+j]
        + tdts8 * (z[i*@N@+j] + z[i*@N@+j-1]) * (cv[i*@N@+j] + cv[(i-1)*@N@+j])
        - tdtsdx * (h[i*@N@+j] - h[(i-1)*@N@+j]);
      vnew[i*@N@+j] = v[i*@N@+j]
        - tdts8 * (z[i*@N@+j] + z[(i-1)*@N@+j]) * (cu[i*@N@+j] + cu[i*@N@+j-1])
        - tdtsdy * (h[i*@N@+j] - h[i*@N@+j-1]);
      pnew[i*@N@+j] = p[i*@N@+j]
        - tdtsdx * (cu[i*@N@+j] - cu[(i-1)*@N@+j])
        - tdtsdy * (cv[i*@N@+j] - cv[i*@N@+j-1]);
    }
  }
}

void calc3(double *u, double *v, double *p, double *unew, double *vnew, double *pnew)
{
  int i;
  int j;
  double alpha;
  alpha = 0.001;
  for (i = 1; i < @N1@; i++)
  {
    for (j = 1; j < @N1@; j++)
    {
      u[i*@N@+j] = u[i*@N@+j] + alpha * (unew[i*@N@+j] - 2.0 * u[i*@N@+j] + unew[i*@N@+j-1]);
      v[i*@N@+j] = v[i*@N@+j] + alpha * (vnew[i*@N@+j] - 2.0 * v[i*@N@+j] + vnew[(i-1)*@N@+j]);
      p[i*@N@+j] = p[i*@N@+j] + alpha * (pnew[i*@N@+j] - 2.0 * p[i*@N@+j] + pnew[i*@N@+j-1]);
    }
  }
}

double check(double *p)
{
  int i;
  int j;
  double s;
  s = 0.0;
  for (i = 0; i < @N@; i++)
  {
    for (j = 0; j < @N@; j++)
    {
      s = s + p[i*@N@+j];
    }
  }
  return s;
}

int main()
{
  int i;
  int j;
  int step;
  double s;
  for (i = 0; i < @N@; i++)
  {
    for (j = 0; j < @N@; j++)
    {
      u_g[i*@N@+j] = 0.1 * i - 0.05 * j;
      v_g[i*@N@+j] = 0.05 * j - 0.02 * i;
      p_g[i*@N@+j] = 1000.0 + 0.5 * i + 0.25 * j;
      unew_g[i*@N@+j] = 0.0;
      vnew_g[i*@N@+j] = 0.0;
      pnew_g[i*@N@+j] = 0.0;
      cu_g[i*@N@+j] = 0.0;
      cv_g[i*@N@+j] = 0.0;
      z_g[i*@N@+j] = 0.0;
      h_g[i*@N@+j] = 0.0;
    }
  }
  s = 0.0;
  for (step = 0; step < @STEPS@; step++)
  {
    calc1(u_g, v_g, p_g, cu_g, cv_g, z_g, h_g);
    calc2(u_g, v_g, p_g, unew_g, vnew_g, pnew_g, cu_g, cv_g, z_g, h_g);
    calc3(u_g, v_g, p_g, unew_g, vnew_g, pnew_g);
    s = check(p_g);
  }
  print_double(s);
  return 0;
}
|}

let n = 64

let source =
  Workload.expand [ ("SZ", n * n); ("N1", n - 1); ("N", n); ("STEPS", 10) ] template

let workload =
  {
    Workload.name = "102.swim";
    suite = Workload.Cfp95;
    descr = "shallow-water stencils over ten pointer-parameter fields";
    source;
  }
