(** GNU wc stand-in: word/line/character counting.

    A state-machine scan over a synthetic text buffer reached through a
    pointer parameter, updating global counters — short basic blocks,
    almost no floating point, counter stores interleaved with buffer
    loads.  GCC must assume the buffer loads conflict with the counter
    stores (pointer vs. global); HLI's points-to separates them, which
    is the paper's 50% edge reduction at a 1.00 speedup. *)

let template =
  {|
int text[@BUFSZ@];
int nlines;
int nwords;
int nchars;
int longest;

void make_text(int seed)
{
  int i;
  int v;
  v = seed;
  for (i = 0; i < @BUFSZ@; i++)
  {
    v = (v * 1103 + 12345) & 32767;
    if ((v & 31) == 0)
    {
      text[i] = 10;
    }
    else
    {
      if ((v & 7) == 1)
      {
        text[i] = 32;
      }
      else
      {
        text[i] = 97 + (v % 26);
      }
    }
  }
}

void count(int *buf, int n)
{
  int i;
  int c;
  int inword;
  int linelen;
  inword = 0;
  linelen = 0;
  for (i = 0; i < n; i++)
  {
    c = buf[i];
    nchars = nchars + 1;
    if (c == 10)
    {
      nlines = nlines + 1;
      if (linelen > longest)
      {
        longest = linelen;
      }
      linelen = 0;
    }
    else
    {
      linelen = linelen + 1;
    }
    if (c == 32 || c == 10)
    {
      inword = 0;
    }
    else
    {
      if (inword == 0)
      {
        nwords = nwords + 1;
        inword = 1;
      }
    }
  }
}

int main()
{
  int round;
  nlines = 0;
  nwords = 0;
  nchars = 0;
  longest = 0;
  for (round = 0; round < @ROUNDS@; round++)
  {
    make_text(round + 17);
    count(text, @BUFSZ@);
  }
  print_int(nlines);
  print_int(nwords);
  print_int(nchars);
  print_int(longest);
  return 0;
}
|}

let source = Workload.expand [ ("BUFSZ", 32768); ("ROUNDS", 8) ] template

let workload =
  {
    Workload.name = "wc";
    suite = Workload.Gnu;
    descr = "word counting: pointer scan updating global counters";
    source;
  }
