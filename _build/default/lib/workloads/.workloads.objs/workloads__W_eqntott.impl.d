lib/workloads/w_eqntott.ml: Workload
