lib/workloads/w_alvinn.ml: Workload
