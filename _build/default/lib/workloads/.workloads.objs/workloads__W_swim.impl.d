lib/workloads/w_swim.ml: Workload
