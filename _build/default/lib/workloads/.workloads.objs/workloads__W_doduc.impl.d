lib/workloads/w_doduc.ml: Workload
