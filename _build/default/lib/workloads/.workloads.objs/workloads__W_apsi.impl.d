lib/workloads/w_apsi.ml: Workload
