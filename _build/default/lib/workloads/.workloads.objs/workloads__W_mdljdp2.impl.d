lib/workloads/w_mdljdp2.ml: Workload
