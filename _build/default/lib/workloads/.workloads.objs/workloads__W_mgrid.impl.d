lib/workloads/w_mgrid.ml: Workload
