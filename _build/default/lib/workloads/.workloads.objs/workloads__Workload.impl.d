lib/workloads/workload.ml: Buffer List String
