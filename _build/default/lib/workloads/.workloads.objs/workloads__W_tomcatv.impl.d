lib/workloads/w_tomcatv.ml: Workload
