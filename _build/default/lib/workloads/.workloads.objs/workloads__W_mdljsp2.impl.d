lib/workloads/w_mdljsp2.ml: Workload
