lib/workloads/w_su2cor.ml: Workload
