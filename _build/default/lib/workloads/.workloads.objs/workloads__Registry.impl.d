lib/workloads/registry.ml: List W_alvinn W_apsi W_compress W_doduc W_eqntott W_espresso W_mdljdp2 W_mdljsp2 W_mgrid W_ora W_su2cor W_swim W_tomcatv W_wc Workload
