lib/workloads/w_ora.ml: Workload
