lib/workloads/w_espresso.ml: Workload
