lib/workloads/w_compress.ml: Workload
