lib/workloads/w_wc.ml: Workload
