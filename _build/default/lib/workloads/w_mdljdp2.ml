(** 034.mdljdp2 stand-in: molecular dynamics (double precision).

    The original integrates equations of motion for a few hundred
    particles: a pairwise force loop (distance, cutoff, Lennard-Jones
    force accumulation into fx/fy/fz), then velocity/position updates.
    All particle arrays reach the kernels as pointer parameters, and the
    force-loop body is one large basic block mixing loads of six arrays
    with stores into three — GCC serializes all of it (every reference
    is pointer-based), while points-to plus subscript analysis frees
    nearly everything, giving the paper's 85% reduction and its largest
    R10000 speedups. *)

let template =
  {|
double px[@NP@];
double py[@NP@];
double pz[@NP@];
double vx[@NP@];
double vy[@NP@];
double vz[@NP@];
double fx[@NP@];
double fy[@NP@];
double fz[@NP@];
double epot_g;

void init_particles()
{
  int i;
  int side;
  side = 8;
  for (i = 0; i < @NP@; i++)
  {
    px[i] = 1.1 * (i % side) + 0.01 * i;
    py[i] = 1.1 * ((i / side) % side) - 0.005 * i;
    pz[i] = 1.1 * (i / (side * side));
    vx[i] = 0.001 * (i % 7) - 0.003;
    vy[i] = 0.001 * (i % 5) - 0.002;
    vz[i] = 0.001 * (i % 3) - 0.001;
  }
}

void clear_forces(double *gx, double *gy, double *gz)
{
  int i;
  for (i = 0; i < @NP@; i++)
  {
    gx[i] = 0.0;
    gy[i] = 0.0;
    gz[i] = 0.0;
  }
}

double forces(double *x, double *y, double *z, double *gx, double *gy, double *gz)
{
  int i;
  int j;
  double dx;
  double dy;
  double dz;
  double r2;
  double r2i;
  double r6i;
  double ff;
  double epot;
  epot = 0.0;
  for (i = 0; i < @NP@; i++)
  {
    for (j = i + 1; j < @NP@; j++)
    {
      dx = x[i] - x[j];
      dy = y[i] - y[j];
      dz = z[i] - z[j];
      r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < @CUT@.0)
      {
        r2i = 1.0 / r2;
        r6i = r2i * r2i * r2i;
        ff = 48.0 * r2i * r6i * (r6i - 0.5);
        epot = epot + 4.0 * r6i * (r6i - 1.0);
        gx[i] = gx[i] + ff * dx;
        gy[i] = gy[i] + ff * dy;
        gz[i] = gz[i] + ff * dz;
        gx[j] = gx[j] - ff * dx;
        gy[j] = gy[j] - ff * dy;
        gz[j] = gz[j] - ff * dz;
      }
    }
  }
  return epot;
}

double update(double *x, double *y, double *z, double *wx, double *wy, double *wz, double *gx, double *gy, double *gz)
{
  int i;
  double dt;
  double ekin;
  dt = 0.004;
  ekin = 0.0;
  for (i = 0; i < @NP@; i++)
  {
    wx[i] = wx[i] + dt * gx[i];
    wy[i] = wy[i] + dt * gy[i];
    wz[i] = wz[i] + dt * gz[i];
    x[i] = x[i] + dt * wx[i];
    y[i] = y[i] + dt * wy[i];
    z[i] = z[i] + dt * wz[i];
    ekin = ekin + wx[i] * wx[i] + wy[i] * wy[i] + wz[i] * wz[i];
  }
  return 0.5 * ekin;
}

int main()
{
  int step;
  double epot;
  double ekin;
  init_particles();
  epot = 0.0;
  ekin = 0.0;
  for (step = 0; step < @STEPS@; step++)
  {
    clear_forces(fx, fy, fz);
    epot = forces(px, py, pz, fx, fy, fz);
    ekin = update(px, py, pz, vx, vy, vz, fx, fy, fz);
  }
  epot_g = epot;
  print_double(epot);
  print_double(ekin);
  return 0;
}
|}

let source = Workload.expand [ ("NP", 192); ("CUT", 9); ("STEPS", 12) ] template

let workload =
  {
    Workload.name = "034.mdljdp2";
    suite = Workload.Cfp92;
    descr = "molecular dynamics: pairwise force loop over pointer-parameter arrays";
    source;
  }
