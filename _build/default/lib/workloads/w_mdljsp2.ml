(** 077.mdljsp2 stand-in: molecular dynamics, single precision in the
    original (we model one floating class), with the neighbor-list
    variant of the force computation.

    Differs from 034.mdljdp2 in loop structure: forces are accumulated
    through a precomputed neighbor list (indirection through an integer
    index array), plus a scaling pass.  The same pointer-parameter style
    keeps GCC maximally conservative; the paper reports an 85% edge
    reduction and its largest speedup (1.59 on R10000). *)

let template =
  {|
double sx[@NP@];
double sy[@NP@];
double sz[@NP@];
double swx[@NP@];
double swy[@NP@];
double swz[@NP@];
double sfx[@NP@];
double sfy[@NP@];
double sfz[@NP@];
int nbr[@NBMAX@];
int nstart[@NP1@];

void sp_init()
{
  int i;
  for (i = 0; i < @NP@; i++)
  {
    sx[i] = 0.9 * (i % 9) + 0.013 * i;
    sy[i] = 0.9 * ((i / 9) % 9) - 0.007 * i;
    sz[i] = 0.9 * (i / 81);
    swx[i] = 0.0015 * (i % 11) - 0.004;
    swy[i] = 0.0015 * (i % 13) - 0.006;
    swz[i] = 0.0015 * (i % 17) - 0.008;
    sfx[i] = 0.0;
    sfy[i] = 0.0;
    sfz[i] = 0.0;
  }
}

int build_neighbors(double *x, double *y, double *z, int *list, int *start)
{
  int i;
  int j;
  int n;
  double dx;
  double dy;
  double dz;
  double r2;
  n = 0;
  for (i = 0; i < @NP@; i++)
  {
    start[i] = n;
    for (j = i + 1; j < @NP@; j++)
    {
      dx = x[i] - x[j];
      dy = y[i] - y[j];
      dz = z[i] - z[j];
      r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < 6.25)
      {
        if (n < @NBMAX@)
        {
          list[n] = j;
          n = n + 1;
        }
      }
    }
  }
  start[@NP@] = n;
  return n;
}

double sp_forces(double *x, double *y, double *z, double *gx, double *gy, double *gz, int *list, int *start)
{
  int i;
  int k;
  int j;
  double dx;
  double dy;
  double dz;
  double r2;
  double r2i;
  double r6i;
  double ff;
  double epot;
  epot = 0.0;
  for (i = 0; i < @NP@; i++)
  {
    for (k = start[i]; k < start[i + 1]; k++)
    {
      j = list[k];
      dx = x[i] - x[j];
      dy = y[i] - y[j];
      dz = z[i] - z[j];
      r2 = dx * dx + dy * dy + dz * dz;
      r2i = 1.0 / r2;
      r6i = r2i * r2i * r2i;
      ff = 48.0 * r2i * r6i * (r6i - 0.5);
      epot = epot + 4.0 * r6i * (r6i - 1.0);
      gx[i] = gx[i] + ff * dx;
      gy[i] = gy[i] + ff * dy;
      gz[i] = gz[i] + ff * dz;
      gx[j] = gx[j] - ff * dx;
      gy[j] = gy[j] - ff * dy;
      gz[j] = gz[j] - ff * dz;
    }
  }
  return epot;
}

double sp_update(double *x, double *y, double *z, double *wx, double *wy, double *wz, double *gx, double *gy, double *gz)
{
  int i;
  double dt;
  double ekin;
  dt = 0.003;
  ekin = 0.0;
  for (i = 0; i < @NP@; i++)
  {
    wx[i] = wx[i] + dt * gx[i];
    wy[i] = wy[i] + dt * gy[i];
    wz[i] = wz[i] + dt * gz[i];
    x[i] = x[i] + dt * wx[i];
    y[i] = y[i] + dt * wy[i];
    z[i] = z[i] + dt * wz[i];
    ekin = ekin + wx[i] * wx[i] + wy[i] * wy[i] + wz[i] * wz[i];
    gx[i] = 0.0;
    gy[i] = 0.0;
    gz[i] = 0.0;
  }
  return 0.5 * ekin;
}

int main()
{
  int step;
  int nn;
  double epot;
  double ekin;
  sp_init();
  epot = 0.0;
  ekin = 0.0;
  nn = 0;
  for (step = 0; step < @STEPS@; step++)
  {
    if (step % 4 == 0)
    {
      nn = build_neighbors(sx, sy, sz, nbr, nstart);
    }
    epot = sp_forces(sx, sy, sz, sfx, sfy, sfz, nbr, nstart);
    ekin = sp_update(sx, sy, sz, swx, swy, swz, sfx, sfy, sfz);
  }
  print_int(nn);
  print_double(epot);
  print_double(ekin);
  return 0;
}
|}

let source =
  Workload.expand
    [ ("NBMAX", 40000); ("NP1", 193); ("NP", 192); ("STEPS", 16) ]
    template

let workload =
  {
    Workload.name = "077.mdljsp2";
    suite = Workload.Cfp92;
    descr = "molecular dynamics with neighbor lists through pointer parameters";
    source;
  }
