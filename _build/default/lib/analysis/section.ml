(** Array sections: summaries of the locations an access (or a whole
    loop's worth of accesses) may touch.

    When a loop region's equivalence classes are propagated to the
    enclosing region (paper Section 2.2.1), each class stops meaning "one
    element per iteration" and starts meaning "everything the loop
    touches".  Sections represent that as per-dimension affine intervals,
    e.g. [b\[0..9\]] in the paper's Figure 2. *)

type bound = Affine.t option
(** [None] = unknown / unbounded in that direction *)

type dim = { lo : bound; hi : bound }

type t =
  | Whole  (** the entire variable (scalar, or unknown extent) *)
  | Dims of dim list  (** per-dimension intervals, outermost first *)

let scalar = Whole

let of_point (subs : Affine.t list) : t =
  Dims (List.map (fun f -> { lo = Some f; hi = Some f }) subs)

(** Widen a section over a loop: substitute the induction variable's
    range [lo_iv .. hi_iv] into each bound.  Bounds whose affine form
    still mentions the ivar after no substitution is possible become
    unknown. *)
let widen_over ~ivar ~(iv_lo : Affine.t option) ~(iv_hi : Affine.t option) (t : t) : t =
  match t with
  | Whole -> Whole
  | Dims dims ->
      let subst_bound ~want_low (b : bound) : bound =
        match b with
        | None -> None
        | Some f ->
            let c = Affine.coeff_of f ivar in
            if c = 0 then Some f
            else
              let pick = if (c > 0) = want_low then iv_lo else iv_hi in
              (match pick with
              | Some v -> Some (Affine.subst f ivar v)
              | None -> None)
      in
      Dims
        (List.map
           (fun d ->
             { lo = subst_bound ~want_low:true d.lo; hi = subst_bound ~want_low:false d.hi })
           dims)

(** Union of two sections (smallest enclosing box, per dimension). *)
let join a b =
  match (a, b) with
  | Whole, _ | _, Whole -> Whole
  | Dims da, Dims db ->
      if List.length da <> List.length db then Whole
      else
        let join_bound ~low x y =
          match (x, y) with
          | Some fx, Some fy -> (
              match Affine.const_value (Affine.sub fx fy) with
              | Some c ->
                  if low then if c <= 0 then Some fx else Some fy
                  else if c >= 0 then Some fx
                  else Some fy
              | None -> None)
          | _ -> None
        in
        Dims
          (List.map2
             (fun x y ->
               {
                 lo = join_bound ~low:true x.lo y.lo;
                 hi = join_bound ~low:false x.hi y.hi;
               })
             da db)

(** Can the two sections be proven disjoint?  Only constant-difference
    bounds are comparable. *)
let disjoint a b =
  match (a, b) with
  | Whole, _ | _, Whole -> false
  | Dims da, Dims db ->
      List.length da = List.length db
      && List.exists2
           (fun x y ->
             let lt p q =
               (* p strictly below q *)
               match (p, q) with
               | Some fp, Some fq -> (
                   match Affine.const_value (Affine.sub fp fq) with
                   | Some c -> c < 0
                   | None -> false)
               | _ -> false
             in
             lt x.hi y.lo || lt y.hi x.lo)
           da db

(** Are the two sections provably the same set of locations? *)
let same a b =
  match (a, b) with
  | Whole, Whole -> true
  | Dims da, Dims db ->
      List.length da = List.length db
      && List.for_all2
           (fun x y ->
             let eq p q =
               match (p, q) with
               | Some fp, Some fq -> Affine.equal fp fq
               | None, None -> true
               | _ -> false
             in
             eq x.lo y.lo && eq x.hi y.hi)
           da db
  | Whole, Dims _ | Dims _, Whole -> false

let pp_bound ppf = function
  | None -> Fmt.string ppf "?"
  | Some f -> Affine.pp ppf f

let pp ppf = function
  | Whole -> Fmt.string ppf "<whole>"
  | Dims dims ->
      List.iter (fun d -> Fmt.pf ppf "[%a..%a]" pp_bound d.lo pp_bound d.hi) dims

let to_string t = Fmt.str "%a" pp t
