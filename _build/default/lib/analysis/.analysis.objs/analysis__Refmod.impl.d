lib/analysis/refmod.ml: Builtins Callgraph Frontir Hashtbl List Pointsto Srclang Symbol Tast
