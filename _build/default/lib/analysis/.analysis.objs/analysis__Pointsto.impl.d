lib/analysis/pointsto.ml: Fmt Hashtbl List Option Srclang Symbol Tast Types
