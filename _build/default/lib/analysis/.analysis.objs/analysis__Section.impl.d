lib/analysis/section.ml: Affine Fmt List
