lib/analysis/deptest.ml: Affine Fmt Frontir List Srclang Symbol
