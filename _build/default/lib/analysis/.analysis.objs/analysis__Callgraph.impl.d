lib/analysis/callgraph.ml: Hashtbl List Option Srclang Tast
