lib/analysis/affine.ml: Ast Fmt List Option Srclang Symbol Tast Types
