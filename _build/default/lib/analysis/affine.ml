(** Affine (linear) integer forms over program symbols.

    An affine form is [c0 + Σ ci·vi] where the [vi] are scalar symbols
    (loop induction variables, parameters, or other scalars).  Subscript
    expressions are converted to this representation before dependence
    testing; conversion fails ([None]) for genuinely non-linear
    expressions (products of variables, memory loads, calls), which is
    exactly when SUIF's tests also give up. *)

open Srclang

type t = {
  const : int;
  terms : (Symbol.t * int) list;
      (** sorted by symbol id; coefficients are non-zero *)
}

let const c = { const = c; terms = [] }
let zero = const 0

let var ?(coeff = 1) s =
  if coeff = 0 then zero else { const = 0; terms = [ (s, coeff) ] }

let is_const t = t.terms = []

let const_value t = if is_const t then Some t.const else None

(** Coefficient of [s] (0 when absent). *)
let coeff_of t s =
  match List.assoc_opt s t.terms with
  | Some c -> c
  | None -> (
      (* assoc_opt uses structural equality; symbols are records with
         mutable fields, so compare by id instead *)
      match List.find_opt (fun (v, _) -> Symbol.equal v s) t.terms with
      | Some (_, c) -> c
      | None -> 0)

let normalize terms =
  List.filter (fun (_, c) -> c <> 0) terms
  |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)

let map_coeffs f t =
  { const = f t.const; terms = normalize (List.map (fun (v, c) -> (v, f c)) t.terms) }

let add a b =
  let merged =
    List.fold_left
      (fun acc (v, c) ->
        let prev =
          match List.find_opt (fun (w, _) -> Symbol.equal w v) acc with
          | Some (_, c0) -> c0
          | None -> 0
        in
        (v, prev + c) :: List.filter (fun (w, _) -> not (Symbol.equal w v)) acc)
      a.terms b.terms
  in
  { const = a.const + b.const; terms = normalize merged }

let neg t = map_coeffs (fun c -> -c) t
let sub a b = add a (neg b)
let scale k t = if k = 0 then zero else map_coeffs (fun c -> k * c) t

(** Remove the term for [s], returning its coefficient and the rest. *)
let split t s =
  let c = coeff_of t s in
  (c, { t with terms = List.filter (fun (v, _) -> not (Symbol.equal v s)) t.terms })

(** Substitute an affine form for a symbol: [t\[s := r\]]. *)
let subst t s r =
  let c, rest = split t s in
  if c = 0 then t else add rest (scale c r)

let equal a b =
  a.const = b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2
       (fun (v1, c1) (v2, c2) -> Symbol.equal v1 v2 && c1 = c2)
       a.terms b.terms

(** Symbols appearing with non-zero coefficient. *)
let symbols t = List.map fst t.terms

let for_all_symbols p t = List.for_all (fun (v, _) -> p v) t.terms

(* ------------------------------------------------------------------ *)
(* Extraction from typed expressions                                   *)
(* ------------------------------------------------------------------ *)

(** Convert an integer-typed expression to affine form.  Scalar variables
    (pseudo-register locals, parameters and even globals) become symbolic
    terms; whether a term may be treated as loop-invariant is the
    caller's concern (see {!Deptest}). *)
let rec of_expr (e : Tast.expr) : t option =
  match e.Tast.desc with
  | Tast.Const_int n -> Some (const n)
  | Tast.Lval { ldesc = Tast.Lvar s; lty; _ } when Types.equal lty Types.Tint ->
      Some (var s)
  | Tast.Binop (Ast.Add, a, b) -> map2 add a b
  | Tast.Binop (Ast.Sub, a, b) -> map2 sub a b
  | Tast.Binop (Ast.Mul, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some fa, Some fb -> (
          match (const_value fa, const_value fb) with
          | Some k, _ -> Some (scale k fb)
          | _, Some k -> Some (scale k fa)
          | None, None -> None)
      | _ -> None)
  | Tast.Unop (Ast.Neg, a) -> Option.map neg (of_expr a)
  | Tast.Cast (Types.Tint, a) -> of_expr a
  | _ -> None

and map2 f a b =
  match (of_expr a, of_expr b) with
  | Some fa, Some fb -> Some (f fa fb)
  | _ -> None

let pp ppf t =
  if is_const t then Fmt.int ppf t.const
  else begin
    let first = ref true in
    if t.const <> 0 then begin
      Fmt.int ppf t.const;
      first := false
    end;
    List.iter
      (fun (v, c) ->
        if !first then begin
          first := false;
          if c = 1 then Symbol.pp ppf v
          else if c = -1 then Fmt.pf ppf "-%a" Symbol.pp v
          else Fmt.pf ppf "%d*%a" c Symbol.pp v
        end
        else if c = 1 then Fmt.pf ppf "+%a" Symbol.pp v
        else if c = -1 then Fmt.pf ppf "-%a" Symbol.pp v
        else if c > 0 then Fmt.pf ppf "+%d*%a" c Symbol.pp v
        else Fmt.pf ppf "%d*%a" c Symbol.pp v)
      t.terms
  end

let to_string t = Fmt.str "%a" pp t
