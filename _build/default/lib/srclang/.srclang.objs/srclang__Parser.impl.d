lib/srclang/parser.ml: Array Ast Lexer List Loc Printf Token Types
