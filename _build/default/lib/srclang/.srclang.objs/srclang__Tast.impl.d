lib/srclang/tast.ml: Ast Fmt List Loc Option Symbol Types
