lib/srclang/ast.ml: List Loc Option Types
