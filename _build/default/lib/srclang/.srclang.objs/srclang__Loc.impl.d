lib/srclang/loc.ml: Fmt
