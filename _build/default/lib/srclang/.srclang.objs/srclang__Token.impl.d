lib/srclang/token.ml:
