lib/srclang/types.ml: Fmt
