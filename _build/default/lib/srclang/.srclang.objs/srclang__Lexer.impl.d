lib/srclang/lexer.ml: List Loc Printf String Token
