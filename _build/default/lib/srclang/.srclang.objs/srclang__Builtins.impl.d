lib/srclang/builtins.ml: List Option Types
