lib/srclang/symbol.ml: Fmt Hashtbl Map Set Types
