lib/srclang/typecheck.ml: Ast Builtins Fmt Hashtbl List Loc Option Parser Symbol Tast Types
