(** Untyped abstract syntax for the mini-C language.

    This is what {!Parser} produces.  Every node carries a {!Loc.t}; the
    line component is semantically significant downstream because the HLI
    line table keys on it. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** logical && *)
  | Lor  (** logical || *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type unop =
  | Neg  (** arithmetic negation *)
  | Lnot  (** logical ! *)
  | Bnot  (** bitwise ~ *)

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of expr * expr  (** [a\[i\]]; multi-dim arrays nest *)
  | Deref of expr  (** [*p] *)
  | Addr of expr  (** [&lv] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Cast of Types.t * expr

type decl = {
  dname : string;
  dty : Types.t;
  dinit : expr option;
  dloc : Loc.t;
}

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr  (** expression statement (usually a call) *)
  | Sassign of expr * expr  (** lvalue = rvalue *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
      (** [for (init; cond; step) body]; init/step are simple statements *)
  | Sreturn of expr option
  | Sblock of stmt list
  | Sdecl of decl

type func = {
  fname : string;
  fret : Types.t;
  fparams : (string * Types.t) list;
  fbody : stmt list;
  floc : Loc.t;
}

type top = Tgvar of decl | Tfunc of func

type program = { tops : top list }

let mk_expr ~loc edesc = { edesc; eloc = loc }
let mk_stmt ~loc sdesc = { sdesc; sloc = loc }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let unop_to_string = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(** Fold over all expressions in a statement list, outside-in. *)
let rec fold_stmts_expr f acc stmts =
  List.fold_left (fold_stmt_expr f) acc stmts

and fold_stmt_expr f acc stmt =
  match stmt.sdesc with
  | Sexpr e -> f acc e
  | Sassign (lhs, rhs) -> f (f acc lhs) rhs
  | Sif (cond, then_, else_) ->
      fold_stmts_expr f (fold_stmts_expr f (f acc cond) then_) else_
  | Swhile (cond, body) -> fold_stmts_expr f (f acc cond) body
  | Sfor (init, cond, step, body) ->
      let acc = Option.fold ~none:acc ~some:(fold_stmt_expr f acc) init in
      let acc = Option.fold ~none:acc ~some:(f acc) cond in
      let acc = Option.fold ~none:acc ~some:(fold_stmt_expr f acc) step in
      fold_stmts_expr f acc body
  | Sreturn e -> Option.fold ~none:acc ~some:(f acc) e
  | Sblock body -> fold_stmts_expr f acc body
  | Sdecl d -> Option.fold ~none:acc ~some:(f acc) d.dinit

(** All function names called anywhere in [e], in syntactic order. *)
let rec calls_in_expr e =
  match e.edesc with
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Index (a, i) -> calls_in_expr a @ calls_in_expr i
  | Deref a | Addr a | Unop (_, a) | Cast (_, a) -> calls_in_expr a
  | Binop (_, a, b) -> calls_in_expr a @ calls_in_expr b
  | Call (name, args) -> (name :: List.concat_map calls_in_expr args)
