(** Lexical tokens of the mini-C language. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_DOUBLE
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN  (** [=] *)
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUS_PLUS
  | MINUS_MINUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMP_AMP
  | BAR_BAR
  | BANG
  | AMP
  | BAR
  | CARET
  | TILDE
  | SHL
  | SHR
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_DOUBLE -> "double"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PLUS_PLUS -> "++"
  | MINUS_MINUS -> "--"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AMP_AMP -> "&&"
  | BAR_BAR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
