(** Source locations for the mini-C front end.

    Line numbers are the backbone of the HLI line table (Section 2.1 of the
    paper): the front end and back end agree on nothing except source
    coordinates, so every AST node, HIR item and RTL instruction carries one
    of these. *)

type t = {
  line : int;  (** 1-based source line *)
  col : int;  (** 1-based column of the first character *)
}

let make ~line ~col = { line; col }

(** A conventional location for synthesized nodes (e.g. implicit casts). *)
let dummy = { line = 0; col = 0 }

let is_dummy t = t.line = 0

let compare a b =
  match compare a.line b.line with 0 -> compare a.col b.col | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<synth>"
  else Fmt.pf ppf "%d:%d" t.line t.col

let to_string t = Fmt.str "%a" pp t
