(** Typed abstract syntax.

    The type checker ({!Typecheck}) elaborates the raw {!Ast} into this
    representation: names are resolved to {!Symbol.t}s, every expression
    carries its type, implicit [int]/[double] conversions are explicit
    {!Cast} nodes, and lvalues are a dedicated syntactic class so that
    memory accesses are structurally identifiable — the property both the
    ITEMGEN phase (front end) and the lowering pass (back end) rely on to
    enumerate memory references in the same order. *)

type expr = { desc : desc; ty : Types.t; loc : Loc.t }

and desc =
  | Const_int of int
  | Const_float of float
  | Lval of lvalue
      (** rvalue use of an lvalue; a memory load when the root is
          memory-resident *)
  | Addr of lvalue  (** [&lv], or an array name decaying to a pointer *)
  | Binop of Ast.binop * expr * expr
  | Unop of Ast.unop * expr
  | Call of string * expr list
  | Cast of Types.t * expr  (** explicit or inserted conversion *)

and lvalue = { ldesc : ldesc; lty : Types.t; lloc : Loc.t }

and ldesc =
  | Lvar of Symbol.t  (** a scalar or whole-aggregate variable *)
  | Lindex of lvalue * expr
      (** [base\[i\]] where [base] has array or pointer type; for a pointer
          base the address is the pointer's value plus the scaled index *)
  | Lderef of expr  (** [*e] for a computed pointer expression *)

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sblock of stmt list

type func = {
  name : string;
  ret : Types.t;
  params : Symbol.t list;
  locals : Symbol.t list;  (** every local declared anywhere in the body *)
  body : stmt list;
  loc : Loc.t;
}

(** Constant initializer for a global variable. *)
type ginit = Ginit_int of int | Ginit_float of float

type program = {
  globals : (Symbol.t * ginit option) list;
  funcs : func list;
}

(** Root symbol of an lvalue, if it is a named variable (possibly
    subscripted).  [None] for computed-pointer targets. *)
let rec root_symbol lv =
  match lv.ldesc with
  | Lvar s -> Some s
  | Lindex (base, _) -> (
      (* A subscripted pointer accesses the pointee, not the pointer
         variable itself. *)
      match base.lty with
      | Types.Tptr _ -> None
      | _ -> root_symbol base)
  | Lderef _ -> None

(** The pointer variable through which an lvalue indirects, if any:
    [p[i]] and [*p] both indirect through [p]. *)
let rec via_pointer lv =
  match lv.ldesc with
  | Lvar _ -> None
  | Lindex (base, _) -> (
      match (base.lty, base.ldesc) with
      | Types.Tptr _, Lvar p -> Some p
      | Types.Tptr _, _ -> None
      | _ -> via_pointer base)
  | Lderef e -> (
      match e.desc with
      | Lval { ldesc = Lvar p; _ } -> Some p
      | _ -> None)

(** Subscript expressions of an lvalue, outermost dimension first. *)
let subscripts lv =
  let rec go lv acc =
    match lv.ldesc with
    | Lvar _ | Lderef _ -> acc
    | Lindex (base, idx) -> go base (idx :: acc)
  in
  go lv []

let find_func program name =
  List.find_opt (fun f -> f.name = name) program.funcs

(** Fold [f] over every statement in the list, recursively (pre-order). *)
let rec fold_stmts f acc stmts = List.fold_left (fold_stmt f) acc stmts

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt.sdesc with
  | Sexpr _ | Sassign _ | Sreturn _ -> acc
  | Sif (_, a, b) -> fold_stmts f (fold_stmts f acc a) b
  | Swhile (_, body) | Sblock body -> fold_stmts f acc body
  | Sfor (init, _, step, body) ->
      let acc = Option.fold ~none:acc ~some:(fold_stmt f acc) init in
      let acc = Option.fold ~none:acc ~some:(fold_stmt f acc) step in
      fold_stmts f acc body

(** Fold [f] over every expression (and the expressions inside lvalues)
    reachable from the statement list, in evaluation order. *)
let rec fold_exprs f acc stmts = List.fold_left (fold_expr_stmt f) acc stmts

and fold_expr_stmt f acc stmt =
  match stmt.sdesc with
  | Sexpr e -> fold_expr f acc e
  | Sassign (lv, e) -> fold_expr f (fold_lvalue f acc lv) e
  | Sif (c, a, b) -> fold_exprs f (fold_exprs f (fold_expr f acc c) a) b
  | Swhile (c, body) -> fold_exprs f (fold_expr f acc c) body
  | Sfor (init, cond, step, body) ->
      let acc = Option.fold ~none:acc ~some:(fold_expr_stmt f acc) init in
      let acc = Option.fold ~none:acc ~some:(fold_expr f acc) cond in
      let acc = Option.fold ~none:acc ~some:(fold_expr_stmt f acc) step in
      fold_exprs f acc body
  | Sreturn e -> Option.fold ~none:acc ~some:(fold_expr f acc) e
  | Sblock body -> fold_exprs f acc body

and fold_expr f acc e =
  let acc = f acc e in
  match e.desc with
  | Const_int _ | Const_float _ -> acc
  | Lval lv | Addr lv -> fold_lvalue f acc lv
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) | Cast (_, a) -> fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

and fold_lvalue f acc lv =
  match lv.ldesc with
  | Lvar _ -> acc
  | Lindex (base, idx) -> fold_expr f (fold_lvalue f acc base) idx
  | Lderef e -> fold_expr f acc e

(* ------------------------------------------------------------------ *)
(* Pretty printing (for debugging and golden tests)                    *)
(* ------------------------------------------------------------------ *)

let rec pp_expr ppf e =
  match e.desc with
  | Const_int n -> Fmt.int ppf n
  | Const_float f -> Fmt.float ppf f
  | Lval lv -> pp_lvalue ppf lv
  | Addr lv -> Fmt.pf ppf "&%a" pp_lvalue lv
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (Ast.binop_to_string op) pp_expr b
  | Unop (op, a) -> Fmt.pf ppf "%s%a" (Ast.unop_to_string op) pp_expr a
  | Call (name, args) ->
      Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:comma pp_expr) args
  | Cast (ty, a) -> Fmt.pf ppf "(%a)%a" Types.pp ty pp_expr a

and pp_lvalue ppf lv =
  match lv.ldesc with
  | Lvar s -> Symbol.pp ppf s
  | Lindex (base, idx) -> Fmt.pf ppf "%a[%a]" pp_lvalue base pp_expr idx
  | Lderef e -> Fmt.pf ppf "*(%a)" pp_expr e

let expr_to_string e = Fmt.str "%a" pp_expr e
let lvalue_to_string lv = Fmt.str "%a" pp_lvalue lv
