(** Built-in functions known to the whole toolchain.

    These stand in for the C library calls the SPEC benchmarks make.  Each
    builtin is *pure* (no memory side effects) unless noted; the
    interprocedural REF/MOD analysis exploits purity, exactly as a real
    front end would for math intrinsics. *)

type t = {
  name : string;
  ret : Types.t;
  params : Types.t list;
  pure : bool;
      (** true when the callee neither reads nor writes user-visible
          memory; output routines are impure only in the I/O sense and
          still MOD nothing *)
}

let all =
  [
    { name = "sqrt"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "fabs"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "exp"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "log"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "sin"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "cos"; ret = Types.Tdouble; params = [ Types.Tdouble ]; pure = true };
    { name = "pow"; ret = Types.Tdouble; params = [ Types.Tdouble; Types.Tdouble ]; pure = true };
    { name = "abs"; ret = Types.Tint; params = [ Types.Tint ]; pure = true };
    { name = "print_int"; ret = Types.Tvoid; params = [ Types.Tint ]; pure = true };
    { name = "print_double"; ret = Types.Tvoid; params = [ Types.Tdouble ]; pure = true };
    (* A pseudo-random generator with hidden internal state; impure so the
       analyses must treat it conservatively, like SPEC's rand(). *)
    { name = "rand"; ret = Types.Tint; params = []; pure = false };
    { name = "srand"; ret = Types.Tvoid; params = [ Types.Tint ]; pure = false };
  ]

let find name = List.find_opt (fun b -> b.name = name) all

let is_builtin name = Option.is_some (find name)

(** True when calls to [name] cannot reference or modify any user memory.
    Unknown names are assumed impure. *)
let is_pure name = match find name with Some b -> b.pure | None -> false
