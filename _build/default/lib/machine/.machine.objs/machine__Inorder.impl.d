lib/machine/inorder.ml: Backend Cache Exec Hashtbl List Option
