lib/machine/simulate.ml: Backend Cache Exec Inorder Ooo
