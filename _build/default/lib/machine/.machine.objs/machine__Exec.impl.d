lib/machine/exec.ml: Array Backend Buffer Bytes Float Hashtbl Int32 Int64 List Option Printf Rtl Srclang
