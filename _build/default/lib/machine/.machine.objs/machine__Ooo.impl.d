lib/machine/ooo.ml: Array Backend Cache Exec Hashtbl List Option
