(** Set-associative cache model with LRU replacement, used as the L1
    data cache (backed by an optional L2) of both machine models. *)

type level = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;  (** [set].[way] = tag, -1 empty *)
  lru : int array array;  (** higher = more recently used *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let make_level ~size_bytes ~ways ~line_bytes =
  let sets = max 1 (size_bytes / (ways * line_bytes)) in
  {
    sets;
    ways;
    line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* true = hit *)
let access_level l addr =
  let line = addr / l.line_bytes in
  let set = line mod l.sets in
  let tag = line / l.sets in
  l.tick <- l.tick + 1;
  let tags = l.tags.(set) and lru = l.lru.(set) in
  let rec find w = if w >= l.ways then None else if tags.(w) = tag then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
      lru.(w) <- l.tick;
      l.hits <- l.hits + 1;
      true
  | None ->
      l.misses <- l.misses + 1;
      (* evict LRU way *)
      let victim = ref 0 in
      for w = 1 to l.ways - 1 do
        if lru.(w) < lru.(!victim) then victim := w
      done;
      tags.(!victim) <- tag;
      lru.(!victim) <- l.tick;
      false

type t = {
  l1 : level;
  l2 : level option;
  l2_penalty : int;  (** extra cycles on L1 miss, L2 hit *)
  mem_penalty : int;  (** extra cycles on L2 miss (or L1 miss, no L2) *)
}

(** Parameters of the R4600 board in the paper: 16 KB 2-way L1D, no L2,
    64 MB DRAM. *)
let r4600 () =
  {
    l1 = make_level ~size_bytes:(16 * 1024) ~ways:2 ~line_bytes:32;
    l2 = None;
    l2_penalty = 0;
    mem_penalty = 30;
  }

(** R10000: 32 KB 2-way L1D, 2 MB unified L2. *)
let r10000 () =
  {
    l1 = make_level ~size_bytes:(32 * 1024) ~ways:2 ~line_bytes:32;
    l2 = Some (make_level ~size_bytes:(2 * 1024 * 1024) ~ways:2 ~line_bytes:64);
    l2_penalty = 8;
    mem_penalty = 60;
  }

(** Access the hierarchy; returns the extra latency beyond an L1 hit. *)
let access t addr =
  if access_level t.l1 addr then 0
  else
    match t.l2 with
    | None -> t.mem_penalty
    | Some l2 ->
        if access_level l2 addr then t.l2_penalty
        else t.l2_penalty + t.mem_penalty

let l1_stats t = (t.l1.hits, t.l1.misses)
