(* Tests for the telemetry subsystem: span/counter accounting, the
   JSON dump (validated by the bundled structural checker), and the
   per-kind HLI query counters threaded through Hli_core.Query. *)

let has_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

let telemetry_tests =
  [
    Alcotest.test_case "spans accumulate ns and count" `Quick (fun () ->
        let tm = Harness.Telemetry.create () in
        let v =
          Harness.Telemetry.span ~tm "backend.lower" (fun () ->
              Sys.opaque_identity (List.init 1000 Fun.id) |> List.length)
        in
        Alcotest.(check int) "span returns f ()" 1000 v;
        ignore (Harness.Telemetry.span ~tm "backend.lower" (fun () -> ()));
        Alcotest.(check int) "count" 2
          (Harness.Telemetry.span_count tm "backend.lower");
        Alcotest.(check bool) "ns nonnegative" true
          (Harness.Telemetry.span_ns tm "backend.lower" >= 0L);
        Alcotest.(check int) "absent stage" 0
          (Harness.Telemetry.span_count tm "machine.simulate"));
    Alcotest.test_case "span charges time even when f raises" `Quick (fun () ->
        let tm = Harness.Telemetry.create () in
        (try
           Harness.Telemetry.span ~tm "backend.passes" (fun () ->
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check int) "counted" 1
          (Harness.Telemetry.span_count tm "backend.passes"));
    Alcotest.test_case "counters accumulate" `Quick (fun () ->
        let tm = Harness.Telemetry.create () in
        Harness.Telemetry.count ~tm "widgets";
        Harness.Telemetry.count ~tm ~n:3 "widgets";
        Alcotest.(check int) "total" 4 (Harness.Telemetry.counter tm "widgets"));
    Alcotest.test_case "no-tm span is transparent" `Quick (fun () ->
        Alcotest.(check int) "passthrough" 7
          (Harness.Telemetry.span "anything" (fun () -> 7)));
    Alcotest.test_case "stage names come back in pipeline order" `Quick
      (fun () ->
        let tm = Harness.Telemetry.create () in
        ignore (Harness.Telemetry.span ~tm "machine.simulate" (fun () -> ()));
        ignore (Harness.Telemetry.span ~tm "backend.lower" (fun () -> ()));
        ignore (Harness.Telemetry.span ~tm "zz.custom" (fun () -> ()));
        Alcotest.(check (list string))
          "order"
          [ "backend.lower"; "machine.simulate"; "zz.custom" ]
          (Harness.Telemetry.span_names tm));
  ]

let json_tests =
  [
    Alcotest.test_case "to_json validates" `Quick (fun () ->
        let tm = Harness.Telemetry.create () in
        ignore (Harness.Telemetry.span ~tm "backend.lower" (fun () -> ()));
        Harness.Telemetry.count ~tm "needs \"escaping\"\n";
        match Harness.Telemetry.validate_json (Harness.Telemetry.to_json tm) with
        | Ok () -> ()
        | Error (msg, pos) -> Alcotest.failf "invalid at %d: %s" pos msg);
    Alcotest.test_case "validator accepts JSON shapes" `Quick (fun () ->
        List.iter
          (fun s ->
            match Harness.Telemetry.validate_json s with
            | Ok () -> ()
            | Error (msg, pos) -> Alcotest.failf "%s: invalid at %d: %s" s pos msg)
          [
            "{}";
            "[]";
            "null";
            "-12.5e+3";
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\u00e9\"}";
          ]);
    Alcotest.test_case "validator rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            match Harness.Telemetry.validate_json s with
            | Ok () -> Alcotest.failf "accepted malformed: %s" s
            | Error _ -> ())
          [
            "";
            "{";
            "{\"a\":}";
            "{\"a\":1,}";
            "[1,2";
            "\"unterminated";
            "{\"a\":1} trailing";
            "{'a':1}";
          ]);
    Alcotest.test_case "stats_json for a workload row validates" `Quick
      (fun () ->
        let w = Option.get (Workloads.Registry.find "wc") in
        (* fuel-starved on purpose: exercises the failure annotation in
           the JSON too, cheaply *)
        let r = Harness.Tables.run_workload ~fuel:100 w in
        let json = Harness.Tables.stats_json [ r ] in
        (match Harness.Telemetry.validate_json json with
        | Ok () -> ()
        | Error (msg, pos) -> Alcotest.failf "invalid at %d: %s" pos msg);
        Alcotest.(check bool) "has schema" true
          (has_sub json
             (Printf.sprintf "\"schema\":\"%s\""
                Harness.Telemetry.schema_version));
        Alcotest.(check bool) "schema is v8" true
          (Harness.Telemetry.schema_version = "hli-telemetry-v8");
        (* v5: the server object is present, null for in-process runs *)
        Alcotest.(check bool) "has null server" true
          (has_sub json "\"server\":null");
        (* v6: the shm object is present, null for non-shm runs *)
        Alcotest.(check bool) "has null shm" true
          (has_sub json "\"shm\":null");
        Alcotest.(check bool) "has query_cache" true
          (has_sub json "\"query_cache\":{");
        Alcotest.(check bool) "has hli_cache" true
          (has_sub json "\"hli_cache\":{\"hits\":");
        Alcotest.(check bool) "has duplicates" true
          (has_sub json "\"duplicates\":0");
        Alcotest.(check bool) "has dropped" true
          (has_sub json "\"dropped\":0");
        Alcotest.(check bool) "has failure" true
          (has_sub json "\"failure\":\"out of fuel\""));
    Alcotest.test_case "schema gate rejects a v1 dump specifically" `Quick
      (fun () ->
        let v1 = "{\"schema\":\"hli-telemetry-v1\",\"workloads\":[]}" in
        (match Harness.Telemetry.check_schema v1 with
        | Ok () -> Alcotest.fail "v1 dump accepted"
        | Error msg ->
            Alcotest.(check bool) "names the found version" true
              (has_sub msg "hli-telemetry-v1");
            Alcotest.(check bool) "names the expected version" true
              (has_sub msg Harness.Telemetry.schema_version));
        (* current dumps and non-telemetry JSON pass the gate *)
        (match
           Harness.Telemetry.check_schema
             (Printf.sprintf "{\"schema\":\"%s\"}"
                Harness.Telemetry.schema_version)
         with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "v2 dump rejected: %s" msg);
        (match
           Harness.Telemetry.check_schema
             "{\"schema\":\"hli-querybench-v1\",\"workloads\":[]}"
         with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "querybench schema rejected: %s" msg);
        match Harness.Telemetry.check_schema "{\"a\":1}" with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "schema-less JSON rejected: %s" msg);
  ]

let query_counter_tests =
  [
    Alcotest.test_case "HLI variants bump equiv_acc; kinds are counted"
      `Quick (fun () ->
        Hli_core.Query.reset_query_counters ();
        let src =
          {|
double a[64];
int main()
{
  int i;
  for (i = 1; i < 64; i++)
  {
    a[i] = a[i] + a[i-1];
  }
  return 0;
}
|}
        in
        ignore (Harness.Pipeline.compile src);
        let counters = Hli_core.Query.query_counters () in
        Alcotest.(check int) "six kinds" 6 (List.length counters);
        Alcotest.(check bool) "equiv_acc issued" true
          (List.assoc "equiv_acc" counters > 0);
        Alcotest.(check bool) "equiv_prob counted" true
          (List.mem_assoc "equiv_prob" counters));
    Alcotest.test_case "reset zeroes every kind" `Quick (fun () ->
        Hli_core.Query.reset_query_counters ();
        List.iter
          (fun (name, v) -> Alcotest.(check int) name 0 v)
          (Hli_core.Query.query_counters ()));
    Alcotest.test_case "cache counters track builds, hits and misses" `Quick
      (fun () ->
        let src =
          {|
double a[8];
int main()
{
  a[0] = a[1] + a[2];
  return 0;
}
|}
        in
        let prog = Srclang.Typecheck.program_of_string src in
        let entries = Harness.Pipeline.build_hli_entries prog in
        let e = List.hd entries in
        Hli_core.Query.reset_cache_counters ();
        let idx = Hli_core.Query.build e in
        let get k = List.assoc k (Hli_core.Query.cache_counters ()) in
        Alcotest.(check int) "one build counted" 1 (get "index_builds");
        (match Hli_core.Tables.all_items e with
        | a :: b :: _ ->
            ignore (Hli_core.Query.get_equiv_acc idx a b);
            Alcotest.(check int) "first ask misses" 1 (get "equiv_memo_misses");
            Alcotest.(check int) "no hit yet" 0 (get "equiv_memo_hits");
            (* swapped order must hit: the memo key is unordered *)
            ignore (Hli_core.Query.get_equiv_acc idx b a);
            Alcotest.(check int) "swapped ask hits" 1 (get "equiv_memo_hits");
            Alcotest.(check int) "still one miss" 1 (get "equiv_memo_misses")
        | _ -> Alcotest.fail "expected at least two items");
        Hli_core.Query.invalidate idx;
        Alcotest.(check int) "invalidation counted" 1
          (get "memo_invalidations");
        Alcotest.(check int) "memo emptied" 0 (Hli_core.Query.memo_size idx);
        Hli_core.Query.reset_cache_counters ();
        List.iter
          (fun (name, v) -> Alcotest.(check int) name 0 v)
          (Hli_core.Query.cache_counters ()));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("telemetry", telemetry_tests);
      ("json", json_tests);
      ("hli-query-counters", query_counter_tests);
    ]
