(* Tests for the back end: GCC-style alias rules, the lowering/ITEMGEN
   order contract on every workload, DDG query accounting, and schedule
   validity. *)

open Backend

let mem ?(base = Rtl.Bframe) ?(off = 0) ?idx ?(scale = 1) ?(size = 4) () =
  {
    Rtl.mbase = base;
    moffset = off;
    mindex = idx;
    mscale = scale;
    msize = size;
    mclass = Rtl.Rint;
  }

let gsym name = Srclang.Symbol.fresh ~name ~ty:(Srclang.Types.Tarray (Srclang.Types.Tint, 10)) ~storage:Srclang.Symbol.Global

let gcc_alias_tests =
  [
    Alcotest.test_case "distinct globals never conflict" `Quick (fun () ->
        let a = mem ~base:(Rtl.Bsym (gsym "a")) () in
        let b = mem ~base:(Rtl.Bsym (gsym "b")) () in
        Alcotest.(check bool) "no" false (Gcc_alias.true_dependence a b));
    Alcotest.test_case "same global disjoint offsets" `Quick (fun () ->
        let s = gsym "a" in
        let a = mem ~base:(Rtl.Bsym s) ~off:0 ~size:4 () in
        let b = mem ~base:(Rtl.Bsym s) ~off:4 ~size:4 () in
        let c = mem ~base:(Rtl.Bsym s) ~off:2 ~size:4 () in
        Alcotest.(check bool) "disjoint" false (Gcc_alias.true_dependence a b);
        Alcotest.(check bool) "overlap" true (Gcc_alias.true_dependence a c));
    Alcotest.test_case "index register forces conflict" `Quick (fun () ->
        let s = gsym "a" in
        let a = mem ~base:(Rtl.Bsym s) ~idx:5 () in
        let b = mem ~base:(Rtl.Bsym s) ~off:400 () in
        Alcotest.(check bool) "yes" true (Gcc_alias.true_dependence a b));
    Alcotest.test_case "pointer conflicts with symbol" `Quick (fun () ->
        let a = mem ~base:(Rtl.Breg 3) () in
        let b = mem ~base:(Rtl.Bsym (gsym "a")) () in
        Alcotest.(check bool) "yes" true (Gcc_alias.true_dependence a b));
    Alcotest.test_case "same pointer reg, disjoint offsets" `Quick (fun () ->
        let a = mem ~base:(Rtl.Breg 3) ~off:0 () in
        let b = mem ~base:(Rtl.Breg 3) ~off:8 () in
        let c = mem ~base:(Rtl.Breg 4) ~off:8 () in
        Alcotest.(check bool) "same reg disjoint" false (Gcc_alias.true_dependence a b);
        Alcotest.(check bool) "different regs" true (Gcc_alias.true_dependence a c));
    Alcotest.test_case "frame vs global never conflict" `Quick (fun () ->
        let a = mem ~base:Rtl.Bframe () in
        let b = mem ~base:(Rtl.Bsym (gsym "a")) () in
        Alcotest.(check bool) "no" false (Gcc_alias.true_dependence a b));
    Alcotest.test_case "arg areas are private" `Quick (fun () ->
        let out = mem ~base:Rtl.Bargout ~off:32 () in
        let ptr = mem ~base:(Rtl.Breg 3) () in
        let out2 = mem ~base:Rtl.Bargout ~off:32 () in
        Alcotest.(check bool) "vs pointer" false (Gcc_alias.true_dependence out ptr);
        Alcotest.(check bool) "same slot" true (Gcc_alias.true_dependence out out2));
  ]

(* ------------------------------------------------------------------ *)
(* Mapping contract on every workload                                  *)
(* ------------------------------------------------------------------ *)

let mapping_tests =
  List.map
    (fun w ->
      Alcotest.test_case w.Workloads.Workload.name `Quick (fun () ->
          let prog =
            Srclang.Typecheck.program_of_string w.Workloads.Workload.source
          in
          let ctx = Hligen.Tblconst.make_context prog in
          let rtl = Lower.lower_program prog in
          List.iter
            (fun f ->
              let entry, _, _ = Hligen.Tblconst.build_unit ctx f in
              let fn = Option.get (Rtl.find_fn rtl f.Srclang.Tast.name) in
              let m = Hli_import.map_unit entry fn in
              Alcotest.(check int)
                (f.Srclang.Tast.name ^ " unmapped")
                0 m.Hli_import.unmapped_insns;
              Alcotest.(check (list int))
                (f.Srclang.Tast.name ^ " mismatched lines")
                [] m.Hli_import.mismatched_lines)
            prog.Srclang.Tast.funcs))
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* DDG accounting and schedule validity                                *)
(* ------------------------------------------------------------------ *)

let stencil_src =
  {|
double u[128];
double v[128];

void step(double *x, double *y)
{
  int i;
  for (i = 1; i < 127; i++)
  {
    y[i] = x[i-1] + x[i+1] + x[i] * 0.5;
  }
}

int main()
{
  int i;
  double s;
  for (i = 0; i < 128; i++)
  {
    u[i] = 0.1 * i;
  }
  step(u, v);
  s = 0.0;
  for (i = 0; i < 128; i++)
  {
    s = s + v[i];
  }
  print_double(s);
  return 0;
}
|}

let compile_src ?speculate mode src =
  let prog = Srclang.Typecheck.program_of_string src in
  let entries = Harness.Pipeline.build_hli_entries prog in
  let rtl = Lower.lower_program prog in
  let maps = Hashtbl.create 4 in
  List.iter
    (fun (e : Hli_core.Tables.hli_entry) ->
      match Rtl.find_fn rtl e.Hli_core.Tables.unit_name with
      | Some fn ->
          Hashtbl.replace maps e.Hli_core.Tables.unit_name (Hli_import.map_unit e fn)
      | None -> ())
    entries;
  let stats =
    Sched.schedule_program ~mode ?speculate
      ~hli_of_fn:(fun n -> Hashtbl.find_opt maps n)
      ~md:Machdesc.r10000 rtl
  in
  (rtl, stats)

let compile_stats mode = compile_src mode stencil_src

let ddg_tests =
  [
    Alcotest.test_case "combined <= gcc and <= hli (Figure 5)" `Quick (fun () ->
        let _, s = compile_stats Ddg.With_hli in
        Alcotest.(check bool) "total > 0" true (s.Ddg.total > 0);
        Alcotest.(check bool) "combined <= gcc" true
          (s.Ddg.combined_yes <= s.Ddg.gcc_yes);
        Alcotest.(check bool) "combined <= hli" true
          (s.Ddg.combined_yes <= s.Ddg.hli_yes);
        Alcotest.(check bool) "all <= total" true
          (s.Ddg.gcc_yes <= s.Ddg.total && s.Ddg.hli_yes <= s.Ddg.total));
    Alcotest.test_case "HLI strictly disambiguates the stencil" `Quick (fun () ->
        let _, s = compile_stats Ddg.With_hli in
        Alcotest.(check bool) "hli < gcc" true (s.Ddg.hli_yes < s.Ddg.gcc_yes));
    Alcotest.test_case "schedules respect DDG order" `Quick (fun () ->
        (* after scheduling, every block must still be a topological
           order of a freshly built DDG *)
        let rtl, _ = compile_stats Ddg.Gcc_only in
        List.iter
          (fun fn ->
            Array.iter
              (fun (b : Rtl.block) ->
                let g =
                  Ddg.build ~mode:Ddg.Gcc_only ~hli:None ~md:Machdesc.r10000
                    ~stats:(Ddg.fresh_stats ()) b.Rtl.insns
                in
                (* positions in the new order *)
                let pos = Hashtbl.create 16 in
                List.iteri
                  (fun idx (ins : Rtl.insn) -> Hashtbl.replace pos ins.Rtl.uid idx)
                  b.Rtl.insns;
                Array.iteri
                  (fun j preds ->
                    List.iter
                      (fun (k, _) ->
                        let pj = Hashtbl.find pos g.Ddg.insns.(j).Rtl.uid in
                        let pk = Hashtbl.find pos g.Ddg.insns.(k).Rtl.uid in
                        Alcotest.(check bool) "pred before succ" true (pk < pj))
                      preds)
                  g.Ddg.preds)
              fn.Rtl.blocks)
          rtl.Rtl.fns);
    Alcotest.test_case "branches stay last" `Quick (fun () ->
        let rtl, _ = compile_stats Ddg.With_hli in
        List.iter
          (fun fn ->
            Array.iter
              (fun (b : Rtl.block) ->
                let rec check_tail seen_branch = function
                  | [] -> ()
                  | (i : Rtl.insn) :: rest ->
                      if seen_branch then
                        Alcotest.(check bool) "only branches after a branch" true
                          (Rtl.is_branch i)
                      else ();
                      check_tail (seen_branch || Rtl.is_branch i) rest
                in
                check_tail false b.Rtl.insns)
              fn.Rtl.blocks)
          rtl.Rtl.fns);
  ]

(* ------------------------------------------------------------------ *)
(* Speculative scheduling (--speculate)                                *)
(* ------------------------------------------------------------------ *)

let workload_src name =
  let w =
    List.find (fun w -> w.Workloads.Workload.name = name) Workloads.Registry.all
  in
  w.Workloads.Workload.source

let spec_flag_count (rtl : Rtl.program) =
  List.fold_left
    (fun acc fn ->
      Array.fold_left
        (fun acc (b : Rtl.block) ->
          List.fold_left
            (fun acc (i : Rtl.insn) -> if i.Rtl.spec then acc + 1 else acc)
            acc b.Rtl.insns)
        acc fn.Rtl.blocks)
    0 rtl.Rtl.fns

(* 034.mdljdp2 is one of the two workloads with maybe-class
   store-to-load edges whose alias confidence lands in [0.5, 0.75):
   they survive the default threshold and drop only at 0.75+.  The
   exact counts pin the probability analysis end to end. *)
let speculation_tests =
  [
    Alcotest.test_case "threshold 1.0 drops mdljdp2's maybe edges" `Quick
      (fun () ->
        let rtl, s =
          compile_src ~speculate:1000 Ddg.With_hli (workload_src "034.mdljdp2")
        in
        Alcotest.(check int) "edges dropped" 3 s.Ddg.spec_edges_dropped;
        Alcotest.(check int) "checks" 3 s.Ddg.spec_checks;
        Alcotest.(check int) "flagged loads" 3 (spec_flag_count rtl));
    Alcotest.test_case "confident edges survive the default threshold" `Quick
      (fun () ->
        let rtl, s =
          compile_src ~speculate:500 Ddg.With_hli (workload_src "034.mdljdp2")
        in
        Alcotest.(check int) "edges dropped" 0 s.Ddg.spec_edges_dropped;
        Alcotest.(check int) "flagged loads" 0 (spec_flag_count rtl));
    Alcotest.test_case "threshold 0 is the identity" `Quick (fun () ->
        let rtl, s =
          compile_src ~speculate:0 Ddg.With_hli (workload_src "034.mdljdp2")
        in
        Alcotest.(check int) "edges dropped" 0 s.Ddg.spec_edges_dropped;
        Alcotest.(check int) "checks" 0 s.Ddg.spec_checks;
        Alcotest.(check int) "flagged loads" 0 (spec_flag_count rtl));
    Alcotest.test_case "rescheduling without --speculate clears flags" `Quick
      (fun () ->
        (* spec marks are per-schedule state: a later variant built over
           the same RTL must not inherit them *)
        let rtl, _ =
          compile_src ~speculate:1000 Ddg.With_hli (workload_src "034.mdljdp2")
        in
        Alcotest.(check bool) "flags set" true (spec_flag_count rtl > 0);
        List.iter
          (fun (fn : Rtl.fn) ->
            Array.iter
              (fun (b : Rtl.block) ->
                ignore
                  (Ddg.build ~mode:Ddg.With_hli ~hli:None ~md:Machdesc.r10000
                     ~stats:(Ddg.fresh_stats ()) b.Rtl.insns))
              fn.Rtl.blocks)
          rtl.Rtl.fns;
        Alcotest.(check int) "flags cleared" 0 (spec_flag_count rtl));
  ]

(* lowering sanity: loop metadata matches region numbering *)
let loop_meta_tests =
  [
    Alcotest.test_case "loop regions numbered like the front end" `Quick (fun () ->
        let prog = Srclang.Typecheck.program_of_string stencil_src in
        let rtl = Lower.lower_program prog in
        List.iter
          (fun f ->
            let region = Frontir.Region.of_func f in
            let fn = Option.get (Rtl.find_fn rtl f.Srclang.Tast.name) in
            let front_ids =
              List.filter_map
                (fun r ->
                  if Frontir.Region.is_loop r then Some r.Frontir.Region.rid
                  else None)
                (Frontir.Region.all region)
            in
            let back_ids = List.map (fun l -> l.Rtl.l_region) fn.Rtl.loops in
            Alcotest.(check (list int))
              (f.Srclang.Tast.name ^ " loop ids")
              (List.sort compare front_ids)
              (List.sort compare back_ids))
          prog.Srclang.Tast.funcs);
  ]

let () =
  Alcotest.run "backend"
    [
      ("gcc-alias", gcc_alias_tests);
      ("mapping-contract", mapping_tests);
      ("ddg", ddg_tests);
      ("speculation", speculation_tests);
      ("loops", loop_meta_tests);
    ]
