(* Unit tests for the mini-C front end: lexer, parser, type checker. *)

open Srclang

let tok_list src = List.map fst (Lexer.tokenize src)

let check_tokens name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        name expected
        (List.map Token.to_string (tok_list src)))

let lexer_tests =
  [
    check_tokens "operators" "a += b << 2 && !c"
      [ "a"; "+="; "b"; "<<"; "2"; "&&"; "!"; "c"; "<eof>" ];
    check_tokens "comments" "x /* skip\nme */ = // eol\n1;"
      [ "x"; "="; "1"; ";"; "<eof>" ];
    check_tokens "floats" "1.5 2. 3e2 4.5e-1 7"
      [ "1.5"; "2."; "300."; "0.45"; "7"; "<eof>" ];
    check_tokens "keywords vs idents" "int intx for fort"
      [ "int"; "intx"; "for"; "fort"; "<eof>" ];
    Alcotest.test_case "line numbers" `Quick (fun () ->
        let toks = Lexer.tokenize "a\nbb\n  c" in
        let lines = List.map (fun (_, l) -> l.Loc.line) toks in
        Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines);
    Alcotest.test_case "unterminated comment" `Quick (fun () ->
        match Lexer.tokenize "/* oops" with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check string) "code" "E0101" d.Diagnostics.code;
            Alcotest.(check int) "line" 1 d.Diagnostics.line;
            Alcotest.(check int) "col" 1 d.Diagnostics.col
        | _ -> Alcotest.fail "expected a lex diagnostic");
  ]

let pp_expr ppf (e : Ast.expr) =
  let rec go ppf (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Int_lit n -> Fmt.int ppf n
    | Ast.Float_lit f -> Fmt.float ppf f
    | Ast.Var v -> Fmt.string ppf v
    | Ast.Index (a, i) -> Fmt.pf ppf "%a[%a]" go a go i
    | Ast.Deref a -> Fmt.pf ppf "(*%a)" go a
    | Ast.Addr a -> Fmt.pf ppf "(&%a)" go a
    | Ast.Binop (op, a, b) ->
        Fmt.pf ppf "(%a %s %a)" go a (Ast.binop_to_string op) go b
    | Ast.Unop (op, a) -> Fmt.pf ppf "(%s%a)" (Ast.unop_to_string op) go a
    | Ast.Call (f, args) ->
        Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") go) args
    | Ast.Cast (t, a) -> Fmt.pf ppf "((%a)%a)" Types.pp t go a
  in
  go ppf e

let expr_str src = Fmt.str "%a" pp_expr (Parser.expr_of_string src)

let check_expr name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (expr_str src))

let parser_tests =
  [
    check_expr "precedence mul over add" "a + b * c" "(a + (b * c))";
    check_expr "precedence shift vs cmp" "a << 1 < b" "((a << 1) < b)";
    check_expr "logical precedence" "a && b || c && d" "((a && b) || (c && d))";
    check_expr "unary binds tight" "-a * b" "((-a) * b)";
    check_expr "nested index" "m[i][j+1]" "m[i][(j + 1)]";
    check_expr "deref arith" "*(p + 2)" "(*(p + 2))";
    check_expr "address of element" "&a[i]" "(&a[i])";
    check_expr "call args" "f(a, b + 1, g(c))" "f(a, (b + 1), g(c))";
    check_expr "cast" "(double)n + 1.0" "(((double)n) + 1)";
    check_expr "bitwise layering" "a | b ^ c & d" "(a | (b ^ (c & d)))";
    Alcotest.test_case "program structure" `Quick (fun () ->
        let p =
          Parser.program_of_string
            "int g;\nint f(int x) { return x + g; }\nint main() { g = 1; return f(2); }"
        in
        Alcotest.(check int) "3 tops" 3 (List.length p.Ast.tops));
    Alcotest.test_case "for desugar ++" `Quick (fun () ->
        let p = Parser.program_of_string "void f() { int i; for (i = 0; i < 3; i++) { } }" in
        match p.Ast.tops with
        | [ Ast.Tfunc f ] -> (
            match List.rev f.Ast.fbody with
            | { Ast.sdesc = Ast.Sfor (Some _, Some _, Some step, _); _ } :: _ -> (
                match step.Ast.sdesc with
                | Ast.Sassign (_, { Ast.edesc = Ast.Binop (Ast.Add, _, _); _ }) -> ()
                | _ -> Alcotest.fail "step not desugared to i = i + 1")
            | _ -> Alcotest.fail "no for")
        | _ -> Alcotest.fail "no func");
    Alcotest.test_case "array params decay" `Quick (fun () ->
        let p = Parser.program_of_string "void f(double a[10]) { }" in
        match p.Ast.tops with
        | [ Ast.Tfunc { Ast.fparams = [ (_, Types.Tptr Types.Tdouble) ]; _ } ] -> ()
        | _ -> Alcotest.fail "param did not decay");
    Alcotest.test_case "parse error has location" `Quick (fun () ->
        match Parser.program_of_string "int f() { return + ; }" with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check string) "code" "E0201" d.Diagnostics.code;
            Alcotest.(check int) "line" 1 d.Diagnostics.line
        | _ -> Alcotest.fail "expected error");
  ]

let check_ty name src fname expected_ty =
  Alcotest.test_case name `Quick (fun () ->
      let p = Typecheck.program_of_string src in
      let f = Option.get (Tast.find_func p fname) in
      match List.rev f.Tast.body with
      | { Tast.sdesc = Tast.Sreturn (Some e); _ } :: _ ->
          Alcotest.(check string) name expected_ty (Types.to_string e.Tast.ty)
      | _ -> Alcotest.fail "no return"

)

let typecheck_tests =
  [
    check_ty "int arith" "int f() { return 1 + 2 * 3; }" "f" "int";
    check_ty "promotion to double"
      "double f() { int n; n = 2; return n + 1.5; }" "f" "double";
    check_ty "pointer arith keeps type"
      "double g[4];\ndouble *f() { return g + 2; }" "f" "double*";
    check_ty "comparison is int"
      "int f() { double x; x = 1.0; return x < 2.0; }" "f" "int";
    Alcotest.test_case "implicit cast inserted" `Quick (fun () ->
        let p = Typecheck.program_of_string "double f(int n) { return n; }" in
        let f = Option.get (Tast.find_func p "f") in
        match f.Tast.body with
        | [ { Tast.sdesc = Tast.Sreturn (Some { Tast.desc = Tast.Cast (Types.Tdouble, _); _ }); _ } ] -> ()
        | _ -> Alcotest.fail "no cast");
    Alcotest.test_case "addr_taken is recorded" `Quick (fun () ->
        let p =
          Typecheck.program_of_string
            "void g(int *p) { }\nvoid f() { int x; int y; g(&x); y = 1; }"
        in
        let f = Option.get (Tast.find_func p "f") in
        let x = List.find (fun s -> s.Symbol.name = "x") f.Tast.locals in
        let y = List.find (fun s -> s.Symbol.name = "y") f.Tast.locals in
        Alcotest.(check bool) "x taken" true x.Symbol.addr_taken;
        Alcotest.(check bool) "y not" false y.Symbol.addr_taken;
        Alcotest.(check bool) "x resident" true (Symbol.memory_resident x);
        Alcotest.(check bool) "y pseudo" false (Symbol.memory_resident y));
    Alcotest.test_case "deref normalized to subscript" `Quick (fun () ->
        let p =
          Typecheck.program_of_string "int f(int *p, int i) { return *(p + i); }"
        in
        let f = Option.get (Tast.find_func p "f") in
        match f.Tast.body with
        | [ { Tast.sdesc = Tast.Sreturn (Some { Tast.desc = Tast.Lval lv; _ }); _ } ] -> (
            match lv.Tast.ldesc with
            | Tast.Lindex (_, _) -> ()
            | _ -> Alcotest.fail "not normalized")
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "undeclared variable rejected" `Quick (fun () ->
        match Typecheck.program_of_string "int f() { return nope; }" with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check string) "code" "E0301" d.Diagnostics.code
        | _ -> Alcotest.fail "accepted bad program");
    Alcotest.test_case "bad arity rejected" `Quick (fun () ->
        match
          Typecheck.program_of_string "int g(int a) { return a; }\nint f() { return g(); }"
        with
        | exception Diagnostics.Diagnostic _ -> ()
        | _ -> Alcotest.fail "accepted bad call");
    Alcotest.test_case "global initializers" `Quick (fun () ->
        let p = Typecheck.program_of_string "int a = -3;\ndouble b = 2;\nint main() { return 0; }" in
        match p.Tast.globals with
        | [ (_, Some (Tast.Ginit_int -3)); (_, Some (Tast.Ginit_float 2.0)) ] -> ()
        | _ -> Alcotest.fail "bad initializers");
    Alcotest.test_case "types size_of" `Quick (fun () ->
        Alcotest.(check int) "int" 4 (Types.size_of Types.Tint);
        Alcotest.(check int) "double" 8 (Types.size_of Types.Tdouble);
        Alcotest.(check int) "ptr" 4 (Types.size_of (Types.Tptr Types.Tdouble));
        Alcotest.(check int) "array" 80
          (Types.size_of (Types.Tarray (Types.Tdouble, 10)));
        Alcotest.(check int) "2d array" 24
          (Types.size_of (Types.Tarray (Types.Tarray (Types.Tint, 3), 2))));
    Alcotest.test_case "builtins typed" `Quick (fun () ->
        let p = Typecheck.program_of_string "double f() { return sqrt(2.0) + exp(1.0); }" in
        Alcotest.(check int) "one func" 1 (List.length p.Tast.funcs));
  ]

(* property: the lexer+parser roundtrips integer expressions built from a
   tiny generator *)
let gen_expr_string =
  let open QCheck.Gen in
  let rec gen n =
    if n <= 0 then
      oneof [ map string_of_int (int_range 0 99); return "x"; return "y" ]
    else
      frequency
        [
          (3, gen 0);
          (2, map2 (fun a b -> "(" ^ a ^ " + " ^ b ^ ")") (gen (n - 1)) (gen (n - 1)));
          (2, map2 (fun a b -> "(" ^ a ^ " * " ^ b ^ ")") (gen (n - 1)) (gen (n - 1)));
          (1, map (fun a -> "(-" ^ a ^ ")") (gen (n - 1)));
        ]
  in
  gen 4

let prop_parse_total =
  QCheck.Test.make ~count:200 ~name:"parser total on generated exprs"
    (QCheck.make gen_expr_string) (fun s ->
      match Parser.expr_of_string s with _ -> true | exception _ -> false)

let () =
  Alcotest.run "srclang"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("typecheck", typecheck_tests);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_parse_total ]);
    ]
