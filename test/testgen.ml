(* Shared QCheck generators for random HLI files, used by the
   serializer property tests (test_hli.ml) and the fuzz/differential
   harness (test_serialize_fuzz.ml).

   [~allow_zero:true] additionally generates the HLI2-only boundary
   values — [Some 0] LCDD distances and [Some 0] region parents — which
   the legacy HLI1 payload encoding collapses to [None] (its optional
   fields are bare varints with 0 meaning "absent").  Keep it [false]
   when the property under test includes the HLI1 writer/reader pair. *)

module T = Hli_core.Tables

let gen_file ?(allow_zero = false) () : T.hli_file QCheck.Gen.t =
  QCheck.Gen.(
    let opt_floor = if allow_zero then 0 else 1 in
    let gen_acc = oneofl [ T.Acc_load; T.Acc_store; T.Acc_call ] in
    let gen_item =
      int_range 1 500 >>= fun id ->
      gen_acc >>= fun acc -> return { T.item_id = id; acc }
    in
    let gen_line =
      int_range 1 200 >>= fun line_no ->
      list_size (int_range 0 5) gen_item >>= fun items ->
      return { T.line_no; items }
    in
    let gen_member =
      oneof
        [
          map (fun i -> T.Member_item i) (int_range 1 500);
          (int_range 1 20 >>= fun sub_region ->
           int_range 1 500 >>= fun cls ->
           return (T.Member_subclass { sub_region; cls }));
        ]
    in
    let gen_class =
      int_range 1 500 >>= fun class_id ->
      oneofl [ T.Definitely; T.Maybe ] >>= fun kind ->
      string_size ~gen:(char_range 'a' 'z') (int_range 0 8) >>= fun desc ->
      list_size (int_range 0 4) gen_member >>= fun members ->
      return { T.class_id; kind; desc; members }
    in
    (* probability sections (HLI3): full per-mille range including the
       0 boundary — the v3 encoding tags the option explicitly, so
       [Some 0] must round-trip *)
    let gen_prob = opt (int_range 0 1000) in
    let gen_lcdd =
      int_range 1 500 >>= fun lcdd_src ->
      int_range 1 500 >>= fun lcdd_dst ->
      oneofl [ T.Dep_definite; T.Dep_maybe ] >>= fun lcdd_dep ->
      opt (int_range opt_floor 64) >>= fun lcdd_distance ->
      gen_prob >>= fun lcdd_prob ->
      return { T.lcdd_src; lcdd_dst; lcdd_dep; lcdd_distance; lcdd_prob }
    in
    let gen_callrefmod =
      oneof
        [
          map (fun i -> T.Key_call_item i) (int_range 1 500);
          map (fun r -> T.Key_sub_region r) (int_range 1 20);
        ]
      >>= fun call_key ->
      bool >>= fun refmod_all ->
      list_size (int_range 0 3) (int_range 1 500) >>= fun ref_classes ->
      list_size (int_range 0 3) (int_range 1 500) >>= fun mod_classes ->
      return { T.call_key; ref_classes; mod_classes; refmod_all }
    in
    let gen_region =
      int_range 1 20 >>= fun region_id ->
      oneofl [ T.Region_unit; T.Region_loop ] >>= fun rtype ->
      opt (int_range opt_floor 20) >>= fun parent ->
      int_range 1 100 >>= fun first_line ->
      int_range 1 100 >>= fun d ->
      list_size (int_range 0 4) gen_class >>= fun eq_classes ->
      list_size (int_range 0 2)
        (list_size (int_range 2 4) (int_range 1 500)
        >>= fun alias_classes ->
         gen_prob >>= fun alias_prob -> return { T.alias_classes; alias_prob })
      >>= fun aliases ->
      list_size (int_range 0 4) gen_lcdd >>= fun lcdds ->
      list_size (int_range 0 2) gen_callrefmod >>= fun callrefmods ->
      return
        {
          T.region_id;
          rtype;
          parent;
          first_line;
          last_line = first_line + d;
          eq_classes;
          aliases;
          lcdds;
          callrefmods;
        }
    in
    let gen_entry =
      string_size ~gen:(char_range 'a' 'z') (int_range 1 10) >>= fun unit_name ->
      list_size (int_range 0 8) gen_line >>= fun line_table ->
      list_size (int_range 0 4) gen_region >>= fun regions ->
      return { T.unit_name; line_table; regions }
    in
    list_size (int_range 0 4) gen_entry >>= fun entries -> return { T.entries })

(* The HLI1 payload encoding's normalization: what a lossless value
   becomes after a v1 write/read cycle (optional zeros collapse, and
   the probability sections — which HLI1 cannot carry — drop to
   [None]).  The differential oracle compares against this. *)
let v1_normalize (f : T.hli_file) : T.hli_file =
  let norm_lcdd l =
    { l with T.lcdd_distance = (match l.T.lcdd_distance with
                                | Some 0 -> None
                                | d -> d);
             lcdd_prob = None }
  in
  let norm_alias a = { a with T.alias_prob = None } in
  let norm_region r =
    {
      r with
      T.parent = (match r.T.parent with Some 0 -> None | p -> p);
      aliases = List.map norm_alias r.T.aliases;
      lcdds = List.map norm_lcdd r.T.lcdds;
    }
  in
  let norm_entry e = { e with T.regions = List.map norm_region e.T.regions } in
  { T.entries = List.map norm_entry f.T.entries }

(* ------------------------------------------------------------------ *)
(* hlid wire-protocol frame generators, used by the protocol fuzz      *)
(* harness (test_protocol_fuzz.ml) and the server tests.               *)
(* ------------------------------------------------------------------ *)

module P = Hli_server.Protocol

let gen_unit_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let gen_query : P.query QCheck.Gen.t =
  QCheck.Gen.(
    gen_unit_name >>= fun u ->
    oneof
      [
        (int_range 0 500 >>= fun a ->
         int_range 0 500 >>= fun b -> return (P.Q_equiv { u; a; b }));
        (int_range 1 20 >>= fun rid ->
         int_range 0 8 >>= fun ca ->
         int_range 0 8 >>= fun cb -> return (P.Q_alias { u; rid; ca; cb }));
        (int_range 1 20 >>= fun rid ->
         int_range 0 500 >>= fun a ->
         int_range 0 500 >>= fun b -> return (P.Q_lcdd { u; rid; a; b }));
        (int_range 0 500 >>= fun call ->
         int_range 0 500 >>= fun mem -> return (P.Q_call { u; call; mem }));
        map (fun item -> P.Q_region_of { u; item }) (int_range 0 500);
        map (fun item -> P.Q_hoist_target { u; item }) (int_range 0 500);
      ])

(* Every request constructor is reachable so the fuzz sweep exercises
   each frame kind's decoder. *)
let gen_request : P.request QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        return (P.Hello { version = P.protocol_version });
        map
          (fun f -> P.Open_hli (Hli_core.Serialize.to_bytes f))
          (gen_file ~allow_zero:true ());
        map (fun s -> P.Open_path s) gen_unit_name;
        map (fun qs -> P.Batch qs) (list_size (int_range 0 12) gen_query);
        (gen_unit_name >>= fun u ->
         int_range 0 500 >>= fun item -> return (P.Notify_delete { u; item }));
        (gen_unit_name >>= fun u ->
         int_range 0 500 >>= fun like ->
         int_range 1 200 >>= fun line -> return (P.Notify_gen { u; like; line }));
        (gen_unit_name >>= fun u ->
         int_range 0 500 >>= fun item ->
         int_range 1 20 >>= fun target_rid ->
         return (P.Notify_move { u; item; target_rid }));
        (gen_unit_name >>= fun u ->
         int_range 1 20 >>= fun rid ->
         int_range 2 8 >>= fun factor ->
         return (P.Notify_unroll { u; rid; factor }));
        map (fun u -> P.Refresh u) gen_unit_name;
        map (fun u -> P.Line_table u) gen_unit_name;
        return P.Stats;
        return P.Close;
        (* delta-upload pair (protocol v3): hash refs and fill payloads
           are arbitrary bytes at the codec layer — semantic checks
           (hash agreement, pending-open state) live in the server *)
        map
          (fun refs ->
            P.Open_delta
              (List.map (fun u -> (u, Digest.string u)) refs))
          (list_size (int_range 0 8) gen_unit_name);
        map
          (fun payloads -> P.Delta_fill payloads)
          (list_size (int_range 0 4)
             (map
                (fun f ->
                  match f.Hli_core.Tables.entries with
                  | e :: _ -> Hli_core.Serialize.entry_to_bytes e
                  | [] -> "")
                (gen_file ~allow_zero:true ())));
        (* probabilistic batch (protocol v5) *)
        (gen_unit_name >>= fun u ->
         list_size (int_range 0 10)
           (int_range 0 500 >>= fun a ->
            int_range 0 500 >>= fun b -> return (a, b))
         >>= fun pairs -> return (P.Q_prob { u; pairs }));
      ])
