(* Tests for the machine library: functional execution semantics of the
   RTL interpreter, the cache model, and basic timing-model sanity. *)

let run_src ?(fuel = 50_000_000) src =
  let prog = Srclang.Typecheck.program_of_string src in
  let rtl = Backend.Lower.lower_program prog in
  Machine.Exec.run ~fuel rtl

let check_output name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = run_src src in
      Alcotest.(check string) name expected (String.trim r.Machine.Exec.output))

let exec_tests =
  [
    check_output "arith and precedence"
      "int main() { print_int(2 + 3 * 4 - 10 / 2); return 0; }" "9";
    check_output "division truncates"
      "int main() { print_int(7 / 2); print_int(-7 % 3); return 0; }" "3\n-1";
    check_output "float arithmetic"
      "int main() { print_double(1.5 * 4.0 + 0.25); return 0; }" "6.250000";
    check_output "conversions"
      "int main() { int n; double x; n = 7; x = n / 2; print_double(x); n = (int)(3.9); print_int(n); return 0; }"
      "3.000000\n3";
    check_output "while and if"
      "int main() { int i; int s; i = 0; s = 0; while (i < 10) { if (i % 2 == 0) { s += i; } i++; } print_int(s); return 0; }"
      "20";
    check_output "short circuit"
      {|
int g;
int bump() { g = g + 1; return 1; }
int main()
{
  int r;
  g = 0;
  r = 0 && bump();
  r = r + (1 || bump());
  print_int(r);
  print_int(g);
  return 0;
}
|}
      "1\n0";
    check_output "arrays and pointers"
      {|
int a[5];
int main()
{
  int i;
  int *p;
  for (i = 0; i < 5; i++) { a[i] = i * i; }
  p = a + 1;
  print_int(p[2] + *p + a[4]);
  return 0;
}
|}
      "26";
    check_output "2d arrays"
      {|
int m[3][4];
int main()
{
  int i;
  int j;
  for (i = 0; i < 3; i++) { for (j = 0; j < 4; j++) { m[i][j] = i * 10 + j; } }
  print_int(m[2][3]);
  print_int(m[0][1]);
  return 0;
}
|}
      "23\n1";
    check_output "address-taken local"
      {|
void set(int *p, int v) { *p = v; }
int main()
{
  int x;
  x = 1;
  set(&x, 42);
  print_int(x);
  return 0;
}
|}
      "42";
    check_output "recursion"
      {|
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
int main() { print_int(fib(12)); return 0; }
|}
      "144";
    check_output "stack arguments (>4)"
      {|
int sum6(int a, int b, int c, int d, int e, int f)
{
  return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
int main() { print_int(sum6(1, 2, 3, 4, 5, 6)); return 0; }
|}
      "91";
    check_output "double stack arguments"
      {|
double mix(double a, double b, double c, double d, double e)
{
  return a + b + c + d + e * 10.0;
}
int main() { print_double(mix(1.0, 2.0, 3.0, 4.0, 0.5)); return 0; }
|}
      "15.000000";
    check_output "builtins"
      "int main() { print_double(sqrt(16.0)); print_double(fabs(0.0 - 2.5)); print_int(abs(-3)); return 0; }"
      "4.000000\n2.500000\n3";
    check_output "global initializers"
      "int a = 5;\ndouble b = -1.5;\nint main() { print_int(a); print_double(b); return 0; }"
      "5\n-1.500000";
    Alcotest.test_case "rand is deterministic" `Quick (fun () ->
        let src =
          "int main() { srand(7); print_int(rand() % 100); print_int(rand() % 100); return 0; }"
        in
        let r1 = run_src src and r2 = run_src src in
        Alcotest.(check string) "same" r1.Machine.Exec.output r2.Machine.Exec.output);
    Alcotest.test_case "out of fuel raises" `Quick (fun () ->
        match run_src ~fuel:1000 "int main() { while (1) { } return 0; }" with
        | exception Machine.Exec.Out_of_fuel -> ()
        | _ -> Alcotest.fail "did not time out");
    Alcotest.test_case "division by zero raises" `Quick (fun () ->
        match run_src "int main() { int z; z = 0; return 1 / z; }" with
        | exception Machine.Exec.Runtime_error _ -> ()
        | _ -> Alcotest.fail "no error");
  ]

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    Alcotest.test_case "repeat access hits" `Quick (fun () ->
        let c = Machine.Cache.r4600 () in
        let miss1 = Machine.Cache.access c 0x1000 in
        let hit = Machine.Cache.access c 0x1004 in
        Alcotest.(check bool) "first misses" true (miss1 > 0);
        Alcotest.(check int) "same line hits" 0 hit);
    Alcotest.test_case "capacity eviction" `Quick (fun () ->
        let c = Machine.Cache.r4600 () in
        ignore (Machine.Cache.access c 0);
        (* touch far more lines than 16KB can hold *)
        for k = 1 to 4096 do
          ignore (Machine.Cache.access c (k * 32))
        done;
        let again = Machine.Cache.access c 0 in
        Alcotest.(check bool) "evicted" true (again > 0));
    Alcotest.test_case "L2 catches L1 misses" `Quick (fun () ->
        let c = Machine.Cache.r10000 () in
        ignore (Machine.Cache.access c 0x2000);
        (* evict from L1 only: touch > 32KB of lines *)
        for k = 1 to 2048 do
          ignore (Machine.Cache.access c (0x10000 + (k * 32)))
        done;
        let lat = Machine.Cache.access c 0x2000 in
        Alcotest.(check int) "l2 hit penalty" c.Machine.Cache.l2_penalty lat);
    Alcotest.test_case "stats add up" `Quick (fun () ->
        let c = Machine.Cache.r4600 () in
        for k = 0 to 99 do
          ignore (Machine.Cache.access c (k * 4))
        done;
        let h, m = Machine.Cache.l1_stats c in
        Alcotest.(check int) "total" 100 (h + m));
  ]

(* ------------------------------------------------------------------ *)
(* Timing models                                                       *)
(* ------------------------------------------------------------------ *)

let timing_src =
  {|
double a[256];
int main()
{
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < 256; i++) { a[i] = i * 0.5; }
  for (i = 1; i < 256; i++) { s = s + a[i] * a[i-1]; }
  print_double(s);
  return 0;
}
|}

let timing_tests =
  [
    Alcotest.test_case "r4600 cycles >= instructions" `Quick (fun () ->
        let prog = Srclang.Typecheck.program_of_string timing_src in
        let rtl = Backend.Lower.lower_program prog in
        let r = Machine.Simulate.run Machine.Simulate.R4600 rtl in
        Alcotest.(check bool) "single issue" true
          (r.Machine.Simulate.cycles >= r.Machine.Simulate.dyn_insns));
    Alcotest.test_case "r10000 is faster than r4600" `Quick (fun () ->
        let prog = Srclang.Typecheck.program_of_string timing_src in
        let rtl = Backend.Lower.lower_program prog in
        let r1 = Machine.Simulate.run Machine.Simulate.R4600 rtl in
        let prog2 = Srclang.Typecheck.program_of_string timing_src in
        let rtl2 = Backend.Lower.lower_program prog2 in
        let r2 = Machine.Simulate.run Machine.Simulate.R10000 rtl2 in
        Alcotest.(check bool) "ooo wins" true
          (r2.Machine.Simulate.cycles < r1.Machine.Simulate.cycles);
        Alcotest.(check bool) "at least 1/width" true
          (r2.Machine.Simulate.cycles * 4 >= r2.Machine.Simulate.dyn_insns));
    Alcotest.test_case "both machines run the same program" `Quick (fun () ->
        let prog = Srclang.Typecheck.program_of_string timing_src in
        let rtl = Backend.Lower.lower_program prog in
        let r1 = Machine.Simulate.run Machine.Simulate.R4600 rtl in
        let prog2 = Srclang.Typecheck.program_of_string timing_src in
        let rtl2 = Backend.Lower.lower_program prog2 in
        let r2 = Machine.Simulate.run Machine.Simulate.R10000 rtl2 in
        Alcotest.(check string) "output" r1.Machine.Simulate.output
          r2.Machine.Simulate.output;
        Alcotest.(check int) "dyn insns" r1.Machine.Simulate.dyn_insns
          r2.Machine.Simulate.dyn_insns);
  ]

(* Regression: [Exec.run ~fuel:n] executes exactly [n] instructions
   before raising [Out_of_fuel] (the seed let n+1 slip through), and
   [fuel = 0] means unlimited. *)
let fuel_tests =
  let src =
    "int main() { int i; i = 0; while (i < 50) { i++; } print_int(i); return 0; }"
  in
  let fresh_rtl () =
    Backend.Lower.lower_program (Srclang.Typecheck.program_of_string src)
  in
  [
    Alcotest.test_case "fuel = total completes" `Quick (fun () ->
        let total = (Machine.Exec.run (fresh_rtl ())).Machine.Exec.dyn_count in
        let r = Machine.Exec.run ~fuel:total (fresh_rtl ()) in
        Alcotest.(check int) "dyn_count" total r.Machine.Exec.dyn_count);
    Alcotest.test_case "fuel = n executes exactly n" `Quick (fun () ->
        let total = (Machine.Exec.run (fresh_rtl ())).Machine.Exec.dyn_count in
        let n = total - 1 in
        let hooked = ref 0 in
        (match
           Machine.Exec.run ~fuel:n ~hook:(fun _ -> incr hooked) (fresh_rtl ())
         with
        | _ -> Alcotest.fail "expected Out_of_fuel"
        | exception Machine.Exec.Out_of_fuel -> ());
        Alcotest.(check int) "hook saw exactly n instructions" n !hooked);
    Alcotest.test_case "tiny budgets trip precisely" `Quick (fun () ->
        List.iter
          (fun n ->
            let hooked = ref 0 in
            (match
               Machine.Exec.run ~fuel:n
                 ~hook:(fun _ -> incr hooked)
                 (fresh_rtl ())
             with
            | _ -> Alcotest.fail "expected Out_of_fuel"
            | exception Machine.Exec.Out_of_fuel -> ());
            Alcotest.(check int)
              (Printf.sprintf "fuel=%d" n)
              n !hooked)
          [ 1; 2; 10 ]);
    Alcotest.test_case "fuel = 0 is unlimited" `Quick (fun () ->
        let r = Machine.Exec.run ~fuel:0 (fresh_rtl ()) in
        Alcotest.(check string) "output" "50"
          (String.trim r.Machine.Exec.output));
  ]

(* ------------------------------------------------------------------ *)
(* Speculative-load recovery (--speculate)                             *)
(* ------------------------------------------------------------------ *)

(* A hand-built function in the shape the scheduler emits under
   [--speculate]: a load hoisted above a store it may alias, with
   [Rtl.insn.spec] set and the load's uid greater than the store's
   (uid order is original program order).  The store's implicit check
   must re-load the destination register and count a misspeculation
   exactly when the addresses collide at run time. *)
let spec_rtl ?(nloads = 1) ~store_off ~overwrite () =
  let open Backend in
  let g =
    Srclang.Symbol.fresh ~name:"g"
      ~ty:(Srclang.Types.Tarray (Srclang.Types.Tint, 4))
      ~storage:Srclang.Symbol.Global
  in
  let mem off =
    {
      Rtl.mbase = Rtl.Bsym g;
      moffset = off;
      mindex = None;
      mscale = 1;
      msize = 4;
      mclass = Rtl.Rint;
    }
  in
  let insn ?(spec = false) uid desc =
    { Rtl.uid; desc; line = 0; item = None; spec }
  in
  let insns =
    [ insn 0 (Rtl.Store (mem 0, Rtl.Imm 1)) ]
    (* g[0]'s loads originally sat below the uid-2 store; the
       scheduler hoisted them here and flagged them speculative *)
    @ List.init nloads (fun k -> insn ~spec:true (3 + k) (Rtl.Load (1 + k, mem 0)))
    @ (if overwrite then [ insn 90 (Rtl.Li (1, Rtl.Imm 7)) ] else [])
    @ [
        insn 2 (Rtl.Store (mem store_off, Rtl.Imm 42));
        insn 4 (Rtl.Call ("print_int", [ Rtl.Reg 1 ], None));
      ]
    (* a tail long enough that the check's issue-stage stall (not the
       cold-cache miss on the first store) sets the final cycle count *)
    @ List.init 32 (fun k -> insn (100 + k) (Rtl.Li (0, Rtl.Imm k)))
    @ [ insn 5 (Rtl.Ret (Some (Rtl.Imm 0))) ]
  in
  let block = { Rtl.bid = 0; insns; succs = []; preds = [] } in
  {
    Rtl.fns =
      [
        {
          Rtl.fname = "main";
          params = [];
          ret_class = Some Rtl.Rint;
          blocks = [| block |];
          entry = 0;
          frame_size = 0;
          argout_size = 0;
          vreg_count = nloads + 1;
          vreg_class = Array.make (nloads + 1) Rtl.Rint;
          loops = [];
        };
      ];
    globals = [ (g, None) ];
  }

let speculation_tests =
  [
    Alcotest.test_case "colliding store recovers the load" `Quick (fun () ->
        let r = Machine.Exec.run (spec_rtl ~store_off:0 ~overwrite:false ()) in
        Alcotest.(check string)
          "recovered value" "42"
          (String.trim r.Machine.Exec.output);
        Alcotest.(check int) "misspeculations" 1 r.Machine.Exec.misspec);
    Alcotest.test_case "disjoint store leaves the load alone" `Quick (fun () ->
        let r = Machine.Exec.run (spec_rtl ~store_off:4 ~overwrite:false ()) in
        Alcotest.(check string)
          "speculated value" "1"
          (String.trim r.Machine.Exec.output);
        Alcotest.(check int) "misspeculations" 0 r.Machine.Exec.misspec);
    Alcotest.test_case "overwritten register prunes the check" `Quick (fun () ->
        (* once the destination register is redefined the speculative
           value is dead: no recovery may clobber the new definition *)
        let r = Machine.Exec.run (spec_rtl ~store_off:0 ~overwrite:true ()) in
        Alcotest.(check string)
          "redefined value" "7"
          (String.trim r.Machine.Exec.output);
        Alcotest.(check int) "misspeculations" 0 r.Machine.Exec.misspec);
    Alcotest.test_case "timing models surface the recovery count" `Quick
      (fun () ->
        List.iter
          (fun m ->
            (* several hoisted loads so the recovery window is longer
               than the cold-miss shadow of the first store — the
               penalty must show up in the cycle count, not just the
               counter *)
            let hit =
              Machine.Simulate.run m
                (spec_rtl ~nloads:8 ~store_off:0 ~overwrite:false ())
            in
            let miss =
              Machine.Simulate.run m
                (spec_rtl ~nloads:8 ~store_off:4 ~overwrite:false ())
            in
            Alcotest.(check int)
              (Machine.Simulate.machine_name m ^ " misspeculations")
              8 hit.Machine.Simulate.misspeculations;
            Alcotest.(check int)
              (Machine.Simulate.machine_name m ^ " clean run")
              0 miss.Machine.Simulate.misspeculations;
            (* identical instruction streams: the penalty alone must
               separate the two runs *)
            Alcotest.(check bool)
              (Machine.Simulate.machine_name m ^ " penalty charged")
              true
              (hit.Machine.Simulate.cycles > miss.Machine.Simulate.cycles))
          [ Machine.Simulate.R4600; Machine.Simulate.R10000 ]);
  ]

let () =
  Alcotest.run "machine"
    [
      ("exec", exec_tests);
      ("cache", cache_tests);
      ("timing", timing_tests);
      ("fuel", fuel_tests);
      ("speculation", speculation_tests);
    ]
