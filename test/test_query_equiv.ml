(* Differential testing of the indexed, memoized query engine
   (Hli_core.Query) against the straight-line reference oracle
   (Hli_core.Query_ref).  Both engines are handed the same entries —
   the paper's Figure 2 program, two real workloads, and randomized
   kernels — and every basic query must agree answer-by-answer,
   including probes with ids the tables never mention.  A second group
   pins the per-kind query counters to identical totals for the two
   engines, and a third proves the memo caches are emptied by
   maintenance transactions. *)

module Q = Hli_core.Query
module R = Hli_core.Query_ref
module T = Hli_core.Tables

let equiv_result = Alcotest.testable Q.pp_equiv_result ( = )
let call_acc = Alcotest.testable Q.pp_call_acc ( = )
let lcdd_result = Alcotest.(option (list (testable T.pp_lcdd ( = ))))

(* (answer, per-mille confidence) pairs from the probabilistic query *)
let prob_result = Alcotest.pair equiv_result Alcotest.int

(* the paper's Figure 2 program (same source as test_hli.ml) *)
let fig2 =
  {|
int a[10];
int b[10];
int sum;

void foo()
{
  int i;
  int j;
  for (i = 0; i < 10; i++)
  {
    a[i] = 0;
  }
  for (i = 0; i < 10; i++)
  {
    sum = sum + a[i] + b[0];
    for (j = 1; j < 10; j++)
    {
      b[j] = b[j] + b[j-1];
      a[i] = a[i] + b[j];
      sum = sum + 1;
    }
  }
}
|}

let entries_of_source src =
  let prog = Srclang.Typecheck.program_of_string src in
  Harness.Pipeline.build_hli_entries prog

let fig2_entry () = List.hd (entries_of_source fig2)

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let calls_of_entry (e : T.hli_entry) =
  List.concat_map
    (fun le ->
      List.filter_map
        (fun it -> if it.T.acc = T.Acc_call then Some it.T.item_id else None)
        le.T.items)
    e.T.line_table

(* Every basic query, asked of both engines over all item pairs plus
   ids the entry never defines (the engines must agree on "don't
   know" answers too).  [cap] bounds the O(n^2) pair sweeps so the
   randomized property stays fast. *)
let diff_entry ?(cap = 28) (e : T.hli_entry) =
  let qi = Q.build e and ri = R.build e in
  let items = take cap (List.sort_uniq compare (T.all_items e)) in
  let probe = items @ [ 99991; 0 ] in
  List.iter
    (fun a ->
      Alcotest.(check (option int))
        (Printf.sprintf "region_of %d" a)
        (R.get_region_of_item ri a)
        (Q.get_region_of_item qi a))
    probe;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check equiv_result
            (Printf.sprintf "equiv_acc %d %d" a b)
            (R.get_equiv_acc ri a b) (Q.get_equiv_acc qi a b);
          (* the probabilistic variant must agree on BOTH components:
             same answer as the plain query and the same per-mille
             confidence *)
          Alcotest.check prob_result
            (Printf.sprintf "equiv_prob %d %d" a b)
            (R.get_equiv_prob ri a b) (Q.get_equiv_prob qi a b))
        probe)
    probe;
  List.iter
    (fun call ->
      List.iter
        (fun mem ->
          Alcotest.check call_acc
            (Printf.sprintf "call_acc call:%d mem:%d" call mem)
            (R.get_call_acc ri ~call ~mem)
            (Q.get_call_acc qi ~call ~mem))
        probe)
    (calls_of_entry e @ [ 99991 ]);
  let rids = List.map (fun r -> r.T.region_id) e.T.regions @ [ 99991 ] in
  let small = take 12 probe in
  List.iter
    (fun rid ->
      (* alias takes class ids: sweep a small dense range so hits and
         misses both occur *)
      for a = 0 to 10 do
        for b = 0 to 10 do
          Alcotest.(check bool)
            (Printf.sprintf "alias r:%d %d %d" rid a b)
            (R.get_alias ri ~rid a b) (Q.get_alias qi ~rid a b)
        done
      done;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              Alcotest.check lcdd_result
                (Printf.sprintf "lcdd r:%d %d %d" rid a b)
                (R.get_lcdd ri ~rid a b) (Q.get_lcdd qi ~rid a b))
            small)
        small)
    rids;
  (* a second sweep over the now-warm memo must not change answers *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check equiv_result
            (Printf.sprintf "warm equiv_acc %d %d" a b)
            (R.get_equiv_acc ri a b) (Q.get_equiv_acc qi a b))
        probe)
    (take 8 probe)

(* Random kernels: same shape as test_random.ml's generator (each dune
   test executable is standalone, so the generator is duplicated
   rather than shared). *)
let array_names = [| "aa"; "bb"; "cc" |]

let gen_subscript =
  QCheck.Gen.(
    oneof
      [
        return "i";
        return "i-1";
        return "i+1";
        return "i+2";
        map string_of_int (int_range 0 9);
      ])

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        (oneofl [ 0; 1; 2 ] >>= fun a ->
         gen_subscript >>= fun s ->
         return (Printf.sprintf "%s[%s]" array_names.(a) s));
        map string_of_int (int_range 1 9);
        return "s";
      ])

let gen_stmt =
  QCheck.Gen.(
    oneof
      [
        (oneofl [ 0; 1; 2 ] >>= fun a ->
         gen_subscript >>= fun s ->
         gen_operand >>= fun x ->
         gen_operand >>= fun y ->
         oneofl [ "+"; "-"; "*" ] >>= fun op ->
         return
           (Printf.sprintf "    %s[%s] = %s %s %s;" array_names.(a) s x op y));
        (gen_operand >>= fun x ->
         oneofl [ "+"; "-" ] >>= fun op ->
         return (Printf.sprintf "    s = s %s %s;" op x));
      ])

let gen_program =
  QCheck.Gen.(
    int_range 2 8 >>= fun nstmts ->
    list_repeat nstmts gen_stmt >>= fun body ->
    int_range 4 30 >>= fun trip ->
    let body = String.concat "\n" body in
    return
      (Printf.sprintf
         {|
int aa[64];
int bb[64];
int cc[64];

void kernel(int *pa, int *pb)
{
  int i;
  int s;
  s = 0;
  for (i = 3; i < %d; i++)
  {
%s
    pa[i] = pa[i] + pb[i-1];
  }
  aa[0] = aa[0] + s;
}

int main()
{
  int i;
  for (i = 0; i < 64; i++)
  {
    aa[i] = i * 3 + 1;
  }
  kernel(aa, bb);
  return 0;
}
|}
         (3 + trip) body))

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let differential_tests =
  [
    Alcotest.test_case "figure 2 entry: engines agree on every query" `Quick
      (fun () -> diff_entry (fig2_entry ()));
    Alcotest.test_case "workload entries: engines agree on every query"
      `Quick (fun () ->
        List.iter
          (fun name ->
            let w = Option.get (Workloads.Registry.find name) in
            List.iter (diff_entry ~cap:18)
              (entries_of_source w.Workloads.Workload.source))
          [ "wc"; "103.su2cor" ]);
    Alcotest.test_case
      "all 14 workloads: (answer, confidence) parity on every pair" `Quick
      (fun () ->
        (* the full suite at a smaller pair cap: every unit of every
           workload, both components of every probabilistic answer *)
        List.iter
          (fun (w : Workloads.Workload.t) ->
            List.iter
              (fun e ->
                let qi = Q.build e and ri = R.build e in
                let items =
                  take 10 (List.sort_uniq compare (T.all_items e))
                in
                let probe = items @ [ 99991 ] in
                List.iter
                  (fun a ->
                    List.iter
                      (fun b ->
                        Alcotest.check prob_result
                          (Printf.sprintf "%s equiv_prob %d %d"
                             w.Workloads.Workload.name a b)
                          (R.get_equiv_prob ri a b)
                          (Q.get_equiv_prob qi a b))
                      probe)
                  probe)
              (entries_of_source w.Workloads.Workload.source))
          Workloads.Registry.all);
  ]

let random_props =
  [
    QCheck.Test.make ~count:12
      ~name:"randomized entries: engines agree on every query" arb_program
      (fun src ->
        List.iter diff_entry (entries_of_source src);
        true);
  ]

(* The memoized engine must bump the per-kind counters once per
   logical query, hits included — running an identical stream through
   either engine must leave identical totals. *)
let counter_parity_test =
  Alcotest.test_case "per-kind counters match across engines" `Quick
    (fun () ->
      let e = fig2_entry () in
      let items = take 10 (List.sort_uniq compare (T.all_items e)) in
      let stream (type a) (build : T.hli_entry -> a)
          (equiv : a -> int -> int -> Q.equiv_result)
          (equiv_prob : a -> int -> int -> Q.equiv_result * int)
          (call : a -> call:int -> mem:int -> Q.call_acc_result)
          (alias : a -> rid:int -> int -> int -> bool)
          (lcdd : a -> rid:int -> int -> int -> T.lcdd_entry list option)
          (region_of : a -> int -> int option) =
        let idx = build e in
        Q.reset_query_counters ();
        (* repeats make the memoized engine answer mostly from cache *)
        for _ = 1 to 3 do
          List.iter
            (fun a ->
              ignore (region_of idx a);
              List.iter
                (fun b ->
                  ignore (equiv idx a b);
                  ignore (equiv_prob idx a b);
                  ignore (call idx ~call:a ~mem:b);
                  ignore (alias idx ~rid:2 a b);
                  ignore (lcdd idx ~rid:2 a b))
                items)
            items
        done;
        Q.query_counters ()
      in
      let memoized =
        stream Q.build Q.get_equiv_acc Q.get_equiv_prob
          (fun i ~call ~mem -> Q.get_call_acc i ~call ~mem)
          (fun i ~rid a b -> Q.get_alias i ~rid a b)
          (fun i ~rid a b -> Q.get_lcdd i ~rid a b)
          Q.get_region_of_item
      in
      let reference =
        stream R.build R.get_equiv_acc R.get_equiv_prob
          (fun i ~call ~mem -> R.get_call_acc i ~call ~mem)
          (fun i ~rid a b -> R.get_alias i ~rid a b)
          (fun i ~rid a b -> R.get_lcdd i ~rid a b)
          R.get_region_of_item
      in
      List.iter2
        (fun (kind, n) (kind', n') ->
          Alcotest.(check string) "kind order" kind kind';
          Alcotest.(check int) kind n n')
        memoized reference;
      (* and the stream really exercised the memo *)
      let n = List.length items in
      Alcotest.(check int) "equiv_acc total" (3 * n * n)
        (List.assoc "equiv_acc" memoized);
      Alcotest.(check int) "equiv_prob total" (3 * n * n)
        (List.assoc "equiv_prob" memoized))

let maintenance_tests =
  [
    Alcotest.test_case "Maintain edits empty watching memos" `Quick (fun () ->
        let e = fig2_entry () in
        let idx = Q.build e in
        let m = Hli_core.Maintain.start e in
        Hli_core.Maintain.watch m idx;
        let items = take 8 (List.sort_uniq compare (T.all_items e)) in
        List.iter
          (fun a -> List.iter (fun b -> ignore (Q.get_equiv_acc idx a b)) items)
          items;
        Alcotest.(check bool) "memo is warm" true (Q.memo_size idx > 0);
        Hli_core.Maintain.delete_item m 6;
        Alcotest.(check int) "memo emptied by delete_item" 0 (Q.memo_size idx);
        (* refill, then a generating edit must empty it again *)
        List.iter
          (fun a -> List.iter (fun b -> ignore (Q.get_equiv_acc idx a b)) items)
          items;
        Alcotest.(check bool) "memo warm again" true (Q.memo_size idx > 0);
        ignore (Hli_core.Maintain.gen_item m ~like:9 ~line:19);
        Alcotest.(check int) "memo emptied by gen_item" 0 (Q.memo_size idx));
    Alcotest.test_case "post-transaction answers still match the oracle"
      `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        Hli_core.Maintain.delete_item m 6;
        let e', _ = Hli_core.Maintain.commit m in
        diff_entry e');
  ]

let () =
  Alcotest.run "query-equiv"
    [
      ("differential", differential_tests);
      ("randomized", List.map QCheck_alcotest.to_alcotest random_props);
      ("counters", [ counter_parity_test ]);
      ("maintenance", maintenance_tests);
    ]
