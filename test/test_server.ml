(* End-to-end tests for the hlid server (lib/server): a real listening
   socket served from a spawned domain, exercised by real client
   sessions.

   - differential: every query kind answered over the wire equals the
     in-process engine on the same entries;
   - maintenance parity: notify/refresh replays Maintain edits with
     identical generated ids and post-edit answers;
   - concurrency: >= 5 simultaneous sessions each get in-process
     answers;
   - faults: every injected protocol violation (garbage tag, flipped
     CRC, oversized frame, query-before-open, unknown unit, version
     mismatch, shutdown mid-session, bad unroll factor) surfaces as
     its precise E-code, with no hang;
   - pipelining: N-in-flight batches correlate positionally against
     the oracle, out-of-sequence replies are rejected (E1105), a
     server killed mid-pipeline fails fast with E1110 — no hang, no
     wrong answers;
   - wire I/O: write_all survives tiny socket buffers / partial
     writes / a jammed peer, and an EINTR signal storm does not kill
     a session. *)

module P = Hli_server.Protocol
module C = Hli_server.Client
module T = Hli_core.Tables
module Q = Hli_core.Query
module M = Hli_core.Maintain
module S = Hli_core.Serialize

let equiv_result = Alcotest.testable Q.pp_equiv_result ( = )
let call_acc = Alcotest.testable Q.pp_call_acc ( = )
let prob_result = Alcotest.pair equiv_result Alcotest.int

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hli-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

(* Spawn a server on its own domain, run [f path], always shut down. *)
let with_server ?(jobs = 10) ?max_frame ?shm_dir ?store_cap f =
  let path = fresh_socket () in
  let cfg = Hli_server.Server.default_config ~socket_path:path in
  let cfg =
    {
      cfg with
      Hli_server.Server.jobs;
      idle_timeout = 0.005;
      max_frame = Option.value max_frame ~default:cfg.Hli_server.Server.max_frame;
      shm_dir;
      store_cap = Option.value store_cap ~default:cfg.Hli_server.Server.store_cap;
    }
  in
  let srv = Hli_server.Server.create cfg in
  let d = Domain.spawn (fun () -> Hli_server.Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Hli_server.Server.initiate_shutdown srv;
      Domain.join d;
      (try Sys.remove path with Sys_error _ -> ()))
    (fun () -> f path srv)

let with_client ?(shm = false) path f =
  let cl = C.connect ~timeout:10.0 ~shm path in
  Fun.protect ~finally:(fun () -> C.close cl) (fun () -> f cl)

(* Corpus: the real pipeline's HLI for a small workload. *)
let entries_of_workload name =
  let w = Option.get (Workloads.Registry.find name) in
  let prog = Srclang.Typecheck.program_of_string w.Workloads.Workload.source in
  Harness.Pipeline.build_hli_entries prog

let wire_of entries = Hli_core.Serialize.to_bytes { T.entries }

let items_of_entry (e : T.hli_entry) =
  List.sort_uniq compare
    (List.concat_map
       (fun le -> List.map (fun it -> it.T.item_id) le.T.items)
       e.T.line_table)

let rids_of_entry (e : T.hli_entry) =
  List.map (fun r -> r.T.region_id) e.T.regions

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

(* Check every query kind over the wire against a local index. *)
let check_unit_against_local cl (e : T.hli_entry) =
  let u = e.T.unit_name in
  let idx = Q.build e in
  let items = take 12 (items_of_entry e) in
  let rids = take 4 (rids_of_entry e) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check equiv_result
            (Printf.sprintf "%s equiv %d %d" u a b)
            (Q.get_equiv_acc idx a b)
            (C.equiv_acc cl ~u a b);
          Alcotest.check call_acc
            (Printf.sprintf "%s call %d %d" u a b)
            (Q.get_call_acc idx ~call:a ~mem:b)
            (C.call_acc cl ~u ~call:a ~mem:b);
          Alcotest.check prob_result
            (Printf.sprintf "%s equiv_prob %d %d" u a b)
            (Q.get_equiv_prob idx a b)
            (C.equiv_prob cl ~u a b))
        items)
    items;
  List.iter
    (fun item ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s region_of %d" u item)
        (Q.get_region_of_item idx item)
        (C.region_of_item cl ~u item))
    items;
  List.iter
    (fun rid ->
      for ca = 0 to 3 do
        for cb = 0 to 3 do
          Alcotest.(check bool)
            (Printf.sprintf "%s alias r%d %d %d" u rid ca cb)
            (Q.get_alias idx ~rid ca cb)
            (C.alias cl ~u ~rid ca cb)
        done
      done;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s lcdd r%d %d %d" u rid a b)
                (Q.get_lcdd idx ~rid a b = None)
                (C.lcdd cl ~u ~rid a b = None))
            (take 5 items))
        (take 5 items))
    rids

let expect_code code f =
  match f () with
  | _ -> Alcotest.failf "expected a %s diagnostic" code
  | exception Diagnostics.Diagnostic d ->
      Alcotest.(check string) "code" code d.Diagnostics.code

(* Scrape the integer that follows [key] in a stats JSON blob. *)
let json_int key json =
  let klen = String.length key and n = String.length json in
  let rec find i =
    if i + klen > n then Alcotest.failf "stats JSON lacks %s" key
    else if String.sub json i klen = key then i + klen
    else find (i + 1)
  in
  let start = find 0 in
  Scanf.sscanf (String.sub json start (min 20 (n - start))) "%d" Fun.id

(* ------------------------------------------------------------------ *)
(* Differential + maintenance + concurrency                            *)
(* ------------------------------------------------------------------ *)

let wc_entries = lazy (entries_of_workload "wc")

let differential_tests =
  [
    Alcotest.test_case "wire answers equal the in-process engine" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                let opened = C.open_hli_bytes cl (wire_of entries) in
                Alcotest.(check int)
                  "all units opened" (List.length entries) (List.length opened);
                List.iter
                  (fun (e : T.hli_entry) ->
                    (* reported duplicates match the local index's *)
                    let idx = Q.build e in
                    Alcotest.(check (list int))
                      "duplicates"
                      (Q.duplicate_items idx)
                      (List.assoc e.T.unit_name opened);
                    check_unit_against_local cl e)
                  entries)));
    Alcotest.test_case "line table survives the wire" `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                List.iter
                  (fun (e : T.hli_entry) ->
                    Alcotest.(check bool)
                      "line table equal" true
                      (C.line_table cl e.T.unit_name = e.T.line_table))
                  entries)));
    Alcotest.test_case "maintenance notifications replay Maintain" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        let e =
          List.find (fun e -> items_of_entry e <> []) entries
        in
        let u = e.T.unit_name in
        match items_of_entry e with
        | i0 :: rest ->
            let like = match rest with i :: _ -> i | [] -> i0 in
            (* local replay *)
            let mt = M.start e in
            M.delete_item mt i0;
            let gid = M.gen_item mt ~like ~line:5 in
            let _entry', idx' = M.commit mt in
            with_server (fun path _srv ->
                with_client path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of [ e ]));
                    C.notify_delete cl ~u i0;
                    let gid_r = C.notify_gen cl ~u ~like ~line:5 in
                    Alcotest.(check int) "generated id" gid gid_r;
                    C.refresh cl ~u;
                    (* post-edit answers equal the committed local index *)
                    List.iter
                      (fun a ->
                        List.iter
                          (fun b ->
                            Alcotest.check equiv_result
                              (Printf.sprintf "post-edit equiv %d %d" a b)
                              (Q.get_equiv_acc idx' a b)
                              (C.equiv_acc cl ~u a b))
                          (take 8 (gid :: items_of_entry e)))
                      (take 8 (gid :: items_of_entry e));
                    Alcotest.(check (option int))
                      "deleted item unmapped"
                      (Q.get_region_of_item idx' i0)
                      (C.region_of_item cl ~u i0)))
        | [] -> Alcotest.fail "workload has no items");
    Alcotest.test_case "5 concurrent sessions all get local answers" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        let bytes = wire_of entries in
        (* precompute the oracle once, outside the domains *)
        let e = List.hd entries in
        let idx = Q.build e in
        let items = take 10 (items_of_entry e) in
        let oracle =
          List.concat_map
            (fun a -> List.map (fun b -> Q.get_equiv_acc idx a b) items)
            items
        in
        with_server ~jobs:10 (fun path _srv ->
            let doms =
              List.init 5 (fun _ ->
                  Domain.spawn (fun () ->
                      with_client path (fun cl ->
                          ignore (C.open_hli_bytes cl bytes);
                          List.concat_map
                            (fun a ->
                              List.map
                                (fun b ->
                                  C.equiv_acc cl ~u:e.T.unit_name a b)
                                items)
                            items)))
            in
            List.iteri
              (fun i d ->
                Alcotest.(check bool)
                  (Printf.sprintf "session %d matches oracle" i)
                  true
                  (Domain.join d = oracle))
              doms));
    Alcotest.test_case "server telemetry is valid JSON with sessions" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                ignore (C.equiv_acc cl ~u:(List.hd entries).T.unit_name 1 1);
                let js = C.server_stats cl in
                (match Harness.Telemetry.validate_json js with
                | Ok () -> ()
                | Error (m, pos) ->
                    Alcotest.failf "bad stats JSON at %d: %s" pos m);
                Alcotest.(check bool)
                  "mentions sessions" true
                  (Harness.Telemetry.schema_of_json js = None
                  && String.length js > 2))));
  ]

(* ------------------------------------------------------------------ *)
(* Shared-memory fast path                                             *)
(* ------------------------------------------------------------------ *)

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

let with_shm_dir f =
  let dir = Filename.temp_file "hli-shm-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let rec hlix_files p =
  if Sys.is_directory p then
    List.concat_map
      (fun f -> hlix_files (Filename.concat p f))
      (Array.to_list (Sys.readdir p))
  else if Filename.check_suffix p ".hlix" then [ p ]
  else []

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let shm_tests =
  [
    Alcotest.test_case "shm answers equal the engine, no wire fallbacks"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        with_shm_dir (fun dir ->
            with_server ~shm_dir:dir (fun path _srv ->
                with_client ~shm:true path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of entries));
                    let before = C.shm_stats () in
                    List.iter
                      (fun (e : T.hli_entry) ->
                        Alcotest.(check bool)
                          (e.T.unit_name ^ " has a segment")
                          true
                          (C.shm_active cl e.T.unit_name);
                        check_unit_against_local cl e)
                      entries;
                    let after = C.shm_stats () in
                    Alcotest.(check bool)
                      "segments were mapped" true
                      (after.C.maps > before.C.maps);
                    Alcotest.(check int)
                      "no wire fallbacks" before.C.wire_fallbacks
                      after.C.wire_fallbacks))));
    Alcotest.test_case "maintenance window diverts to the wire, refresh\
                        reconverges off shm" `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        let e = List.find (fun e -> items_of_entry e <> []) entries in
        let u = e.T.unit_name in
        match items_of_entry e with
        | i0 :: rest ->
            let like = match rest with i :: _ -> i | [] -> i0 in
            (* local replay, watched like the server's session state *)
            let mt = M.start e in
            let idx0 = Q.build e in
            M.watch mt idx0;
            M.delete_item mt i0;
            let gid = M.gen_item mt ~like ~line:5 in
            let _entry', idx' = M.commit mt in
            let probes = take 8 (gid :: items_of_entry e) in
            with_shm_dir (fun dir ->
                with_server ~shm_dir:dir (fun path _srv ->
                    with_client ~shm:true path (fun cl ->
                        ignore (C.open_hli_bytes cl (wire_of [ e ]));
                        C.notify_delete cl ~u i0;
                        Alcotest.(check int)
                          "generated id" gid
                          (C.notify_gen cl ~u ~like ~line:5);
                        (* window open: answers come from the watched
                           wire index, counted as fallbacks *)
                        let before = C.shm_stats () in
                        List.iter
                          (fun a ->
                            Alcotest.check equiv_result
                              (Printf.sprintf "mid-window equiv %d" a)
                              (Q.get_equiv_acc idx0 a i0)
                              (C.equiv_acc cl ~u a i0))
                          probes;
                        let mid = C.shm_stats () in
                        Alcotest.(check bool)
                          "window lookups fell back" true
                          (mid.C.wire_fallbacks > before.C.wire_fallbacks);
                        C.refresh cl ~u;
                        (* window closed: the rebuilt segment answers,
                           equal to the committed engine *)
                        List.iter
                          (fun a ->
                            List.iter
                              (fun b ->
                                Alcotest.check equiv_result
                                  (Printf.sprintf "post-refresh equiv %d %d"
                                     a b)
                                  (Q.get_equiv_acc idx' a b)
                                  (C.equiv_acc cl ~u a b))
                              probes)
                          probes;
                        let after = C.shm_stats () in
                        Alcotest.(check int)
                          "post-refresh lookups served off shm"
                          mid.C.wire_fallbacks after.C.wire_fallbacks)))
        | [] -> Alcotest.fail "workload has no items");
    Alcotest.test_case "corrupt segment falls back to the wire" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        with_shm_dir (fun dir ->
            with_server ~shm_dir:dir (fun path _srv ->
                with_client ~shm:true path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of entries));
                    (* corrupt every published segment before the lazy
                       first-lookup mapping: flip a CRC-covered body
                       byte just past the header *)
                    let files = hlix_files dir in
                    Alcotest.(check bool)
                      "segments were published" true (files <> []);
                    List.iter (fun p -> flip_byte p 97) files;
                    let before = C.shm_stats () in
                    List.iter (check_unit_against_local cl) entries;
                    let after = C.shm_stats () in
                    Alcotest.(check bool)
                      "lookups fell back to the wire" true
                      (after.C.wire_fallbacks > before.C.wire_fallbacks)))));
    Alcotest.test_case "stale publish temporaries are swept and counted"
      `Quick (fun () ->
        with_shm_dir (fun dir ->
            (* a crashed server left a half-published segment behind *)
            let stale_dir = Filename.concat dir "sess-99" in
            Unix.mkdir stale_dir 0o755;
            let stale =
              Filename.concat stale_dir "deadbeef.hlix.tmp.4242"
            in
            Out_channel.with_open_bin stale (fun oc ->
                Out_channel.output_string oc "half-written junk");
            with_server ~shm_dir:dir (fun path _srv ->
                Alcotest.(check bool) "temporary removed at startup" false
                  (Sys.file_exists stale);
                Alcotest.(check bool) "orphan session dir removed" false
                  (Sys.file_exists stale_dir);
                with_client path (fun cl ->
                    Alcotest.(check int) "telemetry counted the sweep" 1
                      (json_int "\"stale_swept\":" (C.server_stats cl))))));
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

(* Write raw bytes, expect one R_error frame with [code]. *)
let expect_raw_error path bytes code =
  let fd = raw_connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.write_substring fd bytes 0 (String.length bytes));
      match P.recv_response ~timeout:10.0 (P.reader fd) with
      | P.R_error { e_code; _ } ->
          Alcotest.(check string) "error code" code e_code
      | _ -> Alcotest.failf "expected an R_error %s frame" code)

let flip_last s =
  let b = Bytes.of_string s in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let fault_tests =
  [
    Alcotest.test_case "garbage tag answers E1101" `Quick (fun () ->
        with_server (fun path _srv -> expect_raw_error path "\xee" "E1101"));
    Alcotest.test_case "flipped CRC answers E1103" `Quick (fun () ->
        with_server (fun path _srv ->
            let frame =
              P.request_to_string (P.Hello { version = P.protocol_version })
            in
            expect_raw_error path (flip_last frame) "E1103"));
    Alcotest.test_case "oversized frame answers E1104" `Quick (fun () ->
        with_server ~max_frame:1024 (fun path _srv ->
            let frame =
              P.request_to_string (P.Open_hli (String.make 4096 'x'))
            in
            expect_raw_error path frame "E1104"));
    Alcotest.test_case "version below minimum answers E1111" `Quick (fun () ->
        (* versions above ours negotiate down (see the handshake
           matrix); only pre-v4 peers are rejected outright *)
        with_server (fun path _srv ->
            expect_raw_error path
              (P.request_to_string
                 (P.Hello { version = P.min_protocol_version - 1 }))
              "E1111"));
    Alcotest.test_case "query before open raises E1106" `Quick (fun () ->
        with_server (fun path _srv ->
            with_client path (fun cl ->
                expect_code "E1106" (fun () -> C.equiv_acc cl ~u:"u" 1 2))));
    Alcotest.test_case "unknown unit raises E1107" `Quick (fun () ->
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of (Lazy.force wc_entries)));
                expect_code "E1107" (fun () ->
                    C.equiv_acc cl ~u:"no-such-unit" 1 2))));
    Alcotest.test_case "corrupt HLI payload relays its E06xx code" `Quick
      (fun () ->
        with_server (fun path _srv ->
            with_client path (fun cl ->
                expect_code "E0610" (fun () ->
                    C.open_hli_bytes cl "not an HLI2 container"))));
    Alcotest.test_case "bad unroll factor relays E0701" `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                expect_code "E0701" (fun () ->
                    C.notify_unroll cl
                      ~u:(List.hd entries).T.unit_name
                      ~rid:1 ~factor:1))));
    Alcotest.test_case "shutdown mid-session answers E1110" `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                let u = (List.hd entries).T.unit_name in
                Hli_server.Server.initiate_shutdown srv;
                (* the session notices the flag at its next idle poll;
                   keep querying (bounded) until the E1110 arrives *)
                let rec poke n =
                  if n = 0 then
                    Alcotest.fail "no E1110 after shutdown"
                  else
                    match
                      C.query_batch cl [ P.Q_region_of { u; item = 1 } ]
                    with
                    | _ ->
                        Unix.sleepf 0.02;
                        poke (n - 1)
                    | exception Diagnostics.Diagnostic d ->
                        Alcotest.(check string)
                          "code" "E1110" d.Diagnostics.code
                in
                poke 200)));
    Alcotest.test_case "connect to a dead socket raises E1112" `Quick
      (fun () ->
        expect_code "E1112" (fun () ->
            C.connect ~timeout:2.0 (fresh_socket ())));
  ]

(* ------------------------------------------------------------------ *)
(* Version-negotiation matrix                                          *)
(* ------------------------------------------------------------------ *)

(* A raw session whose Hello carries a hand-picked version, so the
   downgrade path is exercised exactly as an old (or future) client
   would: the negotiated version sticks to the connection, and frames
   outside the negotiated surface must fault rather than answer. *)
let raw_session path f =
  let fd = raw_connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rd = P.reader fd in
      let send req =
        let b = P.request_to_string req in
        ignore (Unix.write_substring fd b 0 (String.length b))
      in
      let recv () = P.recv_response ~timeout:10.0 rd in
      f send recv)

let hello_at path version =
  raw_session path (fun send recv ->
      send (P.Hello { version });
      recv ())

let handshake_tests =
  [
    Alcotest.test_case "below min_protocol_version is rejected (E1111)"
      `Quick (fun () ->
        with_server (fun path _srv ->
            match hello_at path (P.min_protocol_version - 1) with
            | P.R_error { e_code; _ } ->
                Alcotest.(check string) "code" "E1111" e_code
            | _ -> Alcotest.fail "expected E1111"));
    Alcotest.test_case "current version negotiates itself" `Quick (fun () ->
        with_server (fun path _srv ->
            match hello_at path P.protocol_version with
            | P.R_hello { version; _ } ->
                Alcotest.(check int) "negotiated" P.protocol_version version
            | _ -> Alcotest.fail "expected R_hello"));
    Alcotest.test_case "future client is capped at the server's version"
      `Quick (fun () ->
        with_server (fun path _srv ->
            match hello_at path (P.protocol_version + 1) with
            | P.R_hello { version; _ } ->
                Alcotest.(check int) "negotiated" P.protocol_version version
            | _ -> Alcotest.fail "expected R_hello"));
    Alcotest.test_case "v4 session downgrades cleanly; Q_prob faults E1113"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        let u = (List.hd entries).T.unit_name in
        with_server (fun path _srv ->
            raw_session path (fun send recv ->
                send (P.Hello { version = 4 });
                (match recv () with
                | P.R_hello { version; _ } ->
                    Alcotest.(check int) "negotiated" 4 version
                | _ -> Alcotest.fail "expected R_hello");
                (* the v4 surface still answers in full... *)
                send (P.Open_hli (wire_of entries));
                (match recv () with
                | P.R_opened _ -> ()
                | _ -> Alcotest.fail "expected R_opened");
                let idx = Q.build (List.hd entries) in
                send (P.Batch [ P.Q_equiv { u; a = 1; b = 2 } ]);
                (match recv () with
                | P.R_results [ P.A_equiv r ] ->
                    Alcotest.check equiv_result "equiv over a v4 session"
                      (Q.get_equiv_acc idx 1 2) r
                | _ -> Alcotest.fail "expected R_results");
                (* ...but the v5 frame was never offered *)
                send (P.Q_prob { u; pairs = [ (1, 2) ] });
                (match recv () with
                | P.R_error { e_code; _ } ->
                    Alcotest.(check string) "code" "E1113" e_code
                | _ -> Alcotest.fail "expected E1113");
                (* the fault is per-frame, not fatal: the session keeps
                   serving its negotiated surface *)
                send (P.Batch [ P.Q_region_of { u; item = 1 } ]);
                match recv () with
                | P.R_results [ P.A_region_of r ] ->
                    Alcotest.(check (option int)) "post-fault region_of"
                      (Q.get_region_of_item idx 1) r
                | _ -> Alcotest.fail "expected R_results after the fault")));
    Alcotest.test_case "v5 session answers Q_prob against the local engine"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        let e = List.hd entries in
        let u = e.T.unit_name in
        with_server (fun path _srv ->
            raw_session path (fun send recv ->
                send (P.Hello { version = 5 });
                (match recv () with
                | P.R_hello { version; _ } ->
                    Alcotest.(check int) "negotiated" 5 version
                | _ -> Alcotest.fail "expected R_hello");
                send (P.Open_hli (wire_of entries));
                (match recv () with
                | P.R_opened _ -> ()
                | _ -> Alcotest.fail "expected R_opened");
                let idx = Q.build e in
                let pairs =
                  match take 5 (items_of_entry e) with
                  | a :: rest -> (a, a) :: List.map (fun b -> (a, b)) rest
                  | [] -> Alcotest.fail "workload has no items"
                in
                send (P.Q_prob { u; pairs });
                match recv () with
                | P.R_prob answers ->
                    List.iter2
                      (fun (a, b) ans ->
                        Alcotest.check prob_result
                          (Printf.sprintf "prob %d %d" a b)
                          (Q.get_equiv_prob idx a b) ans)
                      pairs answers
                | _ -> Alcotest.fail "expected R_prob")));
    Alcotest.test_case "v4 client library: equiv_prob raises E1113 locally"
      `Quick (fun () ->
        (* the shipped client is v5, so fake an old one by asking the
           server: a downgraded session must make the client-side guard
           fire without a round-trip — checked through the public API
           via a raw v4 session above; here pin the client's version
           accessor against the protocol constant *)
        with_server (fun path _srv ->
            with_client path (fun cl ->
                Alcotest.(check int) "client negotiates the current version"
                  P.protocol_version (C.version cl))));
  ]

(* ------------------------------------------------------------------ *)
(* Pipelining                                                          *)
(* ------------------------------------------------------------------ *)

let chunks n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: r ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 r
        else go acc (x :: cur) (k + 1) r
  in
  go [] [] 0 l

let with_pipelined_client ?(pipeline = 8) path f =
  let cl = C.connect ~timeout:10.0 ~pipeline path in
  Fun.protect ~finally:(fun () -> C.close cl) (fun () -> f cl)

let pipeline_tests =
  [
    Alcotest.test_case "8-in-flight batches correlate against the oracle"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        let e = List.hd entries in
        let u = e.T.unit_name in
        let idx = Q.build e in
        let items = take 10 (items_of_entry e) in
        let pairs =
          List.concat_map (fun a -> List.map (fun b -> (a, b)) items) items
        in
        (* uneven batch sizes so a shifted reply can't count-match *)
        let batches =
          List.mapi
            (fun i c ->
              List.map (fun (a, b) -> P.Q_equiv { u; a; b }) (take (1 + (i mod 3)) c))
            (chunks 3 pairs)
        in
        let oracle =
          List.map
            (List.map (function
              | P.Q_equiv { a; b; _ } -> P.A_equiv (Q.get_equiv_acc idx a b)
              | _ -> assert false))
            batches
        in
        with_server (fun path _srv ->
            with_pipelined_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                let answers = C.query_batches cl batches in
                Alcotest.(check bool)
                  "pipelined answers positionally equal the oracle" true
                  (answers = oracle))));
    Alcotest.test_case "pipelined maintenance defers and correlates acks"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        let e = List.find (fun e -> items_of_entry e <> []) entries in
        let u = e.T.unit_name in
        match items_of_entry e with
        | i0 :: rest ->
            let like = match rest with i :: _ -> i | [] -> i0 in
            let mt = M.start e in
            M.delete_item mt i0;
            let gid = M.gen_item mt ~like ~line:5 in
            let _entry', idx' = M.commit mt in
            with_server (fun path _srv ->
                with_pipelined_client path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of [ e ]));
                    C.notify_delete cl ~u i0;
                    Alcotest.(check bool)
                      "delete ack deferred" true
                      (C.pending cl > 0);
                    (* a reply-bearing op must first drain the ack *)
                    let gid_r = C.notify_gen cl ~u ~like ~line:5 in
                    Alcotest.(check int) "generated id" gid gid_r;
                    Alcotest.(check int) "acks drained by sync op" 0
                      (C.pending cl);
                    C.refresh cl ~u;
                    C.flush cl;
                    Alcotest.(check int) "flush drains" 0 (C.pending cl);
                    List.iter
                      (fun a ->
                        Alcotest.check equiv_result
                          (Printf.sprintf "post-edit equiv %d" a)
                          (Q.get_equiv_acc idx' a gid)
                          (C.equiv_acc cl ~u a gid))
                      (take 8 (gid :: items_of_entry e))))
        | [] -> Alcotest.fail "workload has no items");
    Alcotest.test_case "out-of-sequence reply is rejected with E1105" `Quick
      (fun () ->
        (* a rogue server that handshakes honestly, then answers the
           Batch with an R_ack: the client must refuse to mis-correlate *)
        let path = fresh_socket () in
        let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind listen (Unix.ADDR_UNIX path);
        Unix.listen listen 1;
        let d =
          Domain.spawn (fun () ->
              let fd, _ = Unix.accept listen in
              let rd = P.reader fd in
              (match P.recv_request ~timeout:10.0 rd with
              | P.Got (P.Hello _) ->
                  P.send_response fd
                    (P.R_hello { version = P.protocol_version; shm_dir = None; shards = [] })
              | _ -> ());
              (match P.recv_request ~timeout:10.0 rd with
              | P.Got (P.Batch _) -> P.send_response fd P.R_ack
              | _ -> ());
              (* linger long enough for the client to read the bogus
                 reply, then vanish *)
              (try ignore (P.recv_request ~timeout:2.0 rd) with _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())
        in
        Fun.protect
          ~finally:(fun () ->
            Domain.join d;
            (try Unix.close listen with Unix.Unix_error _ -> ());
            try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let cl = C.connect ~timeout:5.0 ~pipeline:4 path in
            expect_code "E1105" (fun () ->
                C.query_batch cl [ P.Q_region_of { u = "u"; item = 1 } ]);
            C.close cl));
    Alcotest.test_case "server shutdown mid-pipeline fails fast with E1110"
      `Quick (fun () ->
        let entries = Lazy.force wc_entries in
        with_server (fun path srv ->
            with_pipelined_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                let u = (List.hd entries).T.unit_name in
                Hli_server.Server.initiate_shutdown srv;
                let batches =
                  List.init 64 (fun i -> [ P.Q_region_of { u; item = i } ])
                in
                let rec poke n =
                  if n = 0 then Alcotest.fail "no E1110 after shutdown"
                  else
                    match C.query_batches cl batches with
                    | _ ->
                        Unix.sleepf 0.01;
                        poke (n - 1)
                    | exception Diagnostics.Diagnostic d ->
                        Alcotest.(check bool)
                          (Printf.sprintf "fault code %s" d.Diagnostics.code)
                          true
                          (List.mem d.Diagnostics.code [ "E1110"; "E1112" ])
                in
                poke 200)));
  ]

(* ------------------------------------------------------------------ *)
(* Wire I/O: partial writes, jammed peers, EINTR                       *)
(* ------------------------------------------------------------------ *)

let tiny_buffered_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* as small as the kernel will let us: forces many partial writes *)
  Unix.setsockopt_int a Unix.SO_SNDBUF 4096;
  Unix.setsockopt_int b Unix.SO_RCVBUF 4096;
  Unix.set_nonblock a;
  (a, b)

let wire_io_tests =
  [
    Alcotest.test_case
      "write_all survives tiny buffers and partial writes intact" `Quick
      (fun () ->
        let a, b = tiny_buffered_socketpair () in
        let payload = String.init 262144 (fun i -> Char.chr (i land 0xff)) in
        let frame = P.response_to_string (P.R_stats payload) in
        let reader_d =
          Domain.spawn (fun () ->
              let rd = P.reader b in
              let r = P.recv_response ~timeout:10.0 rd in
              (try Unix.close b with Unix.Unix_error _ -> ());
              r)
        in
        P.write_all ~deadline:(P.now () +. 10.0) a frame;
        let got = Domain.join reader_d in
        (try Unix.close a with Unix.Unix_error _ -> ());
        Alcotest.(check bool)
          "no dropped tail, no corruption" true
          (got = P.R_stats payload));
    Alcotest.test_case "write_all against a jammed peer raises E1109" `Quick
      (fun () ->
        let a, b = tiny_buffered_socketpair () in
        let frame = P.response_to_string (P.R_stats (String.make 1048576 'x')) in
        (match
           P.write_all ~deadline:(P.now () +. 0.2) a frame
         with
        | () -> Alcotest.fail "expected E1109 on a never-read socket"
        | exception S.Corrupt c ->
            Alcotest.(check string) "code" "E1109" c.S.c_code);
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ());
    Alcotest.test_case "wire session survives an EINTR signal storm" `Quick
      (fun () ->
        let entries = Lazy.force wc_entries in
        let ticks = ref 0 in
        let old =
          Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr ticks))
        in
        let storm = { Unix.it_interval = 0.001; it_value = 0.001 } in
        ignore (Unix.setitimer Unix.ITIMER_REAL storm);
        Fun.protect
          ~finally:(fun () ->
            ignore
              (Unix.setitimer Unix.ITIMER_REAL
                 { Unix.it_interval = 0.0; it_value = 0.0 });
            ignore (Sys.signal Sys.sigalrm old))
          (fun () ->
            with_server (fun path _srv ->
                with_client path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of entries));
                    let e = List.hd entries in
                    let idx = Q.build e in
                    let items = take 8 (items_of_entry e) in
                    List.iter
                      (fun a ->
                        List.iter
                          (fun b ->
                            Alcotest.check equiv_result
                              (Printf.sprintf "equiv %d %d under signals" a b)
                              (Q.get_equiv_acc idx a b)
                              (C.equiv_acc cl ~u:e.T.unit_name a b))
                          items)
                      items)));
        Alcotest.(check bool) "the storm actually fired" true (!ticks > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Delta uploads (protocol v3)                                         *)
(* ------------------------------------------------------------------ *)

(* Pull the three delta counters out of the server stats JSON. *)
let delta_counters json =
  let key = "\"delta\":{\"opens\":" in
  let klen = String.length key and n = String.length json in
  let rec find i =
    if i + klen > n then Alcotest.fail "stats JSON lacks the delta object"
    else if String.sub json i klen = key then i + klen
    else find (i + 1)
  in
  let start = find 0 in
  Scanf.sscanf
    (String.sub json start (min 80 (n - start)))
    "%d,\"entries_reused\":%d,\"entries_filled\":%d"
    (fun opens reused filled -> (opens, reused, filled))

let stats_of path =
  with_client path (fun cl -> delta_counters (C.server_stats cl))

(* Two programs, one array subscript apart in [leaf] (the offset lands
   in its section/class strings, so leaf's HLI entry really differs —
   a plain constant edit wouldn't change the entry at all): every
   other entry is byte-identical, which is exactly what the delta
   upload is supposed to exploit. *)
let delta_src mid =
  "int g;\nint a[10];\n"
  ^ Printf.sprintf "int leaf(int n) { a[n + %d] = n; return g + n; }\n" mid
  ^ "int caller(int n) { return leaf(n) + 1; }\n"
  ^ "int lone(int n) { return n * 7; }\n"
  ^ "int main() { return caller(2) + lone(3); }\n"

let delta_entries mid =
  Harness.Pipeline.build_hli_entries
    (Srclang.Typecheck.program_of_string (delta_src mid))

let delta_tests =
  [
    Alcotest.test_case "a re-opened session reuses the entry store" `Quick
      (fun () ->
        let entries = delta_entries 1 in
        let n = List.length entries in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries)));
            let o1, r1, f1 = stats_of path in
            Alcotest.(check (pair int int)) "cold open fills everything"
              (0, n) (r1, f1);
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                List.iter (check_unit_against_local cl) entries);
            let o2, r2, f2 = stats_of path in
            Alcotest.(check int) "both opens were deltas" (o1 + 1) o2;
            Alcotest.(check (pair int int)) "warm open ships nothing"
              (n, f1) (r2 - r1, f2)));
    Alcotest.test_case "an edited function ships only its entry" `Quick
      (fun () ->
        let before = delta_entries 1 and after = delta_entries 2 in
        with_server (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of before)));
            let _, _, f1 = stats_of path in
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of after));
                List.iter (check_unit_against_local cl) after);
            let _, r2, f2 = stats_of path in
            Alcotest.(check int) "one entry crossed the wire" (f1 + 1) f2;
            Alcotest.(check int) "the rest replayed from the store"
              (List.length after - 1) r2));
    Alcotest.test_case "eviction under store-cap refills, never misanswers"
      `Quick (fun () ->
        let entries = delta_entries 1 in
        let n = List.length entries in
        (* a 1-byte store keeps nothing, so every open must ship every
           entry again — correctness must not depend on reuse *)
        with_server ~store_cap:1 (fun path _srv ->
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries)));
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                List.iter (check_unit_against_local cl) entries);
            let _, reused, filled = stats_of path in
            Alcotest.(check (pair int int)) "no reuse, all refilled" (0, 2 * n)
              (reused, filled)));
    Alcotest.test_case "Delta_fill without a pending open answers E1106"
      `Quick (fun () ->
        with_server (fun path _srv ->
            let fd = raw_connect path in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let rd = P.reader fd in
                let send r =
                  let b = P.request_to_string r in
                  ignore (Unix.write_substring fd b 0 (String.length b))
                in
                send (P.Hello { version = P.protocol_version });
                (match P.recv_response ~timeout:10.0 rd with
                | P.R_hello _ -> ()
                | _ -> Alcotest.fail "expected R_hello");
                send (P.Delta_fill [ "junk" ]);
                match P.recv_response ~timeout:10.0 rd with
                | P.R_error { e_code; _ } ->
                    Alcotest.(check string) "code" "E1106" e_code
                | _ -> Alcotest.fail "expected R_error E1106")));
    Alcotest.test_case "abandoned negotiation: fresh session resyncs clean"
      `Quick (fun () ->
        let entries = delta_entries 1 in
        with_server (fun path _srv ->
            (* a raw peer opens a delta, is told what to fill, and dies
               mid-negotiation without sending the fill *)
            let fd = raw_connect path in
            (let rd = P.reader fd in
             let refs =
               List.map
                 (fun (name, p) -> (name, S.entry_hash_of_payload p))
                 (S.split_container (wire_of entries))
             in
             let b = P.request_to_string (P.Hello { version = P.protocol_version }) in
             ignore (Unix.write_substring fd b 0 (String.length b));
             (match P.recv_response ~timeout:10.0 rd with
             | P.R_hello _ -> ()
             | _ -> Alcotest.fail "expected R_hello");
             let b = P.request_to_string (P.Open_delta refs) in
             ignore (Unix.write_substring fd b 0 (String.length b));
             match P.recv_response ~timeout:10.0 rd with
             | P.R_delta_need missing ->
                 Alcotest.(check bool) "server asked for the entries" true
                   (missing <> [])
             | _ -> Alcotest.fail "expected R_delta_need");
            Unix.close fd;
            (* the store was never fed, yet a fresh session must come up
               with correct answers (delta negotiation + fill) *)
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                List.iter (check_unit_against_local cl) entries)));
    Alcotest.test_case "any other request abandons the pending delta" `Quick
      (fun () ->
        let entries = delta_entries 1 in
        with_server (fun path _srv ->
            let fd = raw_connect path in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let rd = P.reader fd in
                let send r =
                  let b = P.request_to_string r in
                  ignore (Unix.write_substring fd b 0 (String.length b))
                in
                let recv () = P.recv_response ~timeout:10.0 rd in
                send (P.Hello { version = P.protocol_version });
                (match recv () with
                | P.R_hello _ -> ()
                | _ -> Alcotest.fail "expected R_hello");
                let split = S.split_container (wire_of entries) in
                let refs =
                  List.map
                    (fun (name, p) -> (name, S.entry_hash_of_payload p))
                    split
                in
                send (P.Open_delta refs);
                (match recv () with
                | P.R_delta_need _ -> ()
                | _ -> Alcotest.fail "expected R_delta_need");
                (* an interleaved request voids the negotiation... *)
                send P.Stats;
                (match recv () with
                | P.R_stats _ -> ()
                | _ -> Alcotest.fail "expected R_stats");
                (* ...so the fill that follows is a state violation *)
                send (P.Delta_fill (List.map snd split));
                match recv () with
                | P.R_error { e_code; _ } ->
                    Alcotest.(check string) "code" "E1106" e_code
                | _ -> Alcotest.fail "expected R_error E1106")));
    Alcotest.test_case "refresh only rebuilds dirty units' segments" `Quick
      (fun () ->
        let entries = delta_entries 1 in
        let read_bytes p =
          In_channel.with_open_bin p In_channel.input_all
        in
        let seg_of dir u =
          let base = Digest.to_hex (Digest.string u) ^ ".hlix" in
          match
            List.find_opt (fun p -> Filename.basename p = base)
              (hlix_files dir)
          with
          | Some p -> p
          | None -> Alcotest.failf "no segment for %s" u
        in
        let skips json =
          let key = "\"refresh_skips\":" in
          let klen = String.length key and n = String.length json in
          let rec find i =
            if i + klen > n then Alcotest.fail "stats lack refresh_skips"
            else if String.sub json i klen = key then i + klen
            else find (i + 1)
          in
          Scanf.sscanf (String.sub json (find 0) 12) "%d" Fun.id
        in
        let e = List.find (fun e -> items_of_entry e <> []) entries in
        let touched = e.T.unit_name in
        with_shm_dir (fun dir ->
            with_server ~shm_dir:dir (fun path _srv ->
                with_client ~shm:true path (fun cl ->
                    ignore (C.open_hli_bytes cl (wire_of entries));
                    let before =
                      List.map
                        (fun (e : T.hli_entry) ->
                          let p = seg_of dir e.T.unit_name in
                          (e.T.unit_name, p, read_bytes p))
                        entries
                    in
                    let skips0 = skips (C.server_stats cl) in
                    C.notify_delete cl ~u:touched
                      (List.hd (items_of_entry e));
                    (* an end-of-pass barrier sweeps every unit, but
                       only the edited one may be rebuilt *)
                    List.iter
                      (fun (e : T.hli_entry) -> C.refresh cl ~u:e.T.unit_name)
                      entries;
                    List.iter
                      (fun (u, p, old) ->
                        if u = touched then
                          Alcotest.(check bool)
                            (u ^ " segment was rebuilt") false
                            (read_bytes p = old)
                        else
                          Alcotest.(check bool)
                            (u ^ " segment byte-identical, generation \
                              word included")
                            true
                            (read_bytes p = old))
                      before;
                    Alcotest.(check int) "clean units were skipped"
                      (skips0 + List.length entries - 1)
                      (skips (C.server_stats cl))))));
    Alcotest.test_case "re-opening identical content leaves the store fixed"
      `Quick (fun () ->
        let entries = delta_entries 1 in
        with_server (fun path _srv ->
            let store_stats () =
              with_client path (fun cl ->
                  let json = C.server_stats cl in
                  let key = "\"store\":{\"bytes\":" in
                  let klen = String.length key and n = String.length json in
                  let rec find i =
                    if i + klen > n then
                      Alcotest.fail "stats JSON lacks the store object"
                    else if String.sub json i klen = key then i + klen
                    else find (i + 1)
                  in
                  let start = find 0 in
                  Scanf.sscanf
                    (String.sub json start (min 60 (n - start)))
                    "%d,\"entries\":%d"
                    (fun b e -> (b, e)))
            in
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries)));
            let b1, n1 = store_stats () in
            Alcotest.(check bool) "first open stored something" true (b1 > 0);
            Alcotest.(check int) "one store entry per unit"
              (List.length entries) n1;
            (* repeated identical opens must not double-insert: the
               store's accounted bytes stay exactly fixed *)
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries)));
            with_client path (fun cl ->
                ignore (C.open_hli_bytes cl (wire_of entries));
                List.iter (check_unit_against_local cl) entries);
            Alcotest.(check (pair int int))
              "store_bytes and entry count unchanged" (b1, n1)
              (store_stats ())));
  ]

(* ------------------------------------------------------------------ *)
(* Fleet: units sharded across several hlid instances via the router   *)
(* ------------------------------------------------------------------ *)

module R = Hli_server.Router

(* [n] independent servers, torn down innermost-first. *)
let with_fleet n f =
  let rec go acc k =
    if k = 0 then f (List.rev acc)
    else with_server (fun path srv -> go ((path, srv) :: acc) (k - 1))
  in
  go [] n

let with_router ?pipeline paths f =
  let rt = R.connect ?pipeline paths in
  Fun.protect ~finally:(fun () -> R.close rt) (fun () -> f rt)

(* The fleet corpus: guaranteed to hold >= 2 units with items. *)
let fleet_entries = lazy (delta_entries 1)

(* Delete a unit's first item and commit: the post-edit oracle. *)
let deleted_oracle (e : T.hli_entry) =
  let i0 = List.hd (items_of_entry e) in
  let mt = M.start e in
  M.delete_item mt i0;
  let _entry', idx' = M.commit mt in
  (i0, idx')

let fleet_tests =
  [
    Alcotest.test_case "process-mode router: shard map + proxied answers"
      `Quick (fun () ->
        let entries = Lazy.force fleet_entries in
        with_fleet 3 (fun fleet ->
            let backends = List.map fst fleet in
            let front = fresh_socket () in
            let stop = Atomic.make false in
            let d =
              Domain.spawn (fun () ->
                  R.serve ~backends ~socket_path:front ~stop ())
            in
            Fun.protect
              ~finally:(fun () ->
                Atomic.set stop true;
                Domain.join d)
              (fun () ->
                let rec wait n =
                  if Sys.file_exists front then ()
                  else if n = 0 then
                    Alcotest.fail "router socket never appeared"
                  else begin
                    Unix.sleepf 0.02;
                    wait (n - 1)
                  end
                in
                wait 250;
                with_client front (fun cl ->
                    Alcotest.(check (list string))
                      "Hello carries the shard map in ring order" backends
                      (C.shard_map cl);
                    (* open_hli_bytes first tries Open_delta; the router
                       answers E1106 and the client resyncs with a full
                       upload — the fallback is part of what we test *)
                    ignore (C.open_hli_bytes cl (wire_of entries));
                    List.iter (check_unit_against_local cl) entries)));
        (* a standalone daemon advertises no shard map *)
        with_server (fun path _srv ->
            with_client path (fun cl ->
                Alcotest.(check (list string))
                  "standalone Hello: empty shard map" [] (C.shard_map cl))));
    Alcotest.test_case "cross-shard batches split and merge positionally"
      `Quick (fun () ->
        let entries = Lazy.force fleet_entries in
        with_fleet 3 (fun fleet ->
            with_router ~pipeline:4 (List.map fst fleet) (fun rt ->
                let opened = R.open_hli_bytes rt (wire_of entries) in
                Alcotest.(check int) "all units opened"
                  (List.length entries) (List.length opened);
                let shards =
                  List.sort_uniq compare
                    (List.map
                       (fun (e : T.hli_entry) ->
                         R.shard_of rt e.T.unit_name)
                       entries)
                in
                Alcotest.(check bool) "units spread over >= 2 shards" true
                  (List.length shards >= 2);
                (* per-unit (query, oracle answer) pairs... *)
                let per_entry =
                  List.map
                    (fun (e : T.hli_entry) ->
                      let u = e.T.unit_name in
                      let idx = Q.build e in
                      let items = take 5 (items_of_entry e) in
                      List.concat_map
                        (fun a ->
                          (P.Q_region_of { u; item = a },
                           P.A_region_of (Q.get_region_of_item idx a))
                          :: List.concat_map
                               (fun b ->
                                 [
                                   ( P.Q_equiv { u; a; b },
                                     P.A_equiv (Q.get_equiv_acc idx a b) );
                                   ( P.Q_call { u; call = a; mem = b },
                                     P.A_call
                                       (Q.get_call_acc idx ~call:a ~mem:b)
                                   );
                                 ])
                               items)
                        items)
                    entries
                in
                (* ...woven round-robin so consecutive queries hop
                   shards: the router must split the train per shard
                   and stitch replies back into request order *)
                let rec weave lists =
                  let heads, tails =
                    List.fold_right
                      (fun l (hs, ts) ->
                        match l with
                        | [] -> (hs, ts)
                        | h :: t -> (h :: hs, t :: ts))
                      lists ([], [])
                  in
                  match heads with [] -> [] | _ -> heads @ weave tails
                in
                let woven = weave per_entry in
                let queries = List.map fst woven
                and oracle = List.map snd woven in
                Alcotest.(check bool)
                  "one interleaved batch merges to the oracle" true
                  (R.query_batch rt queries = oracle);
                (* pipelined trains of small cross-shard batches *)
                let rec chunk k = function
                  | [] -> []
                  | xs ->
                      let rec split i = function
                        | x :: rest when i > 0 ->
                            let h, t = split (i - 1) rest in
                            (x :: h, t)
                        | rest -> ([], rest)
                      in
                      let h, t = split k xs in
                      h :: chunk k t
                in
                Alcotest.(check bool)
                  "pipelined batches merge to the oracle" true
                  (R.query_batches rt (chunk 7 queries) = chunk 7 oracle))));
    Alcotest.test_case "refresh is an epoch barrier across shards" `Quick
      (fun () ->
        let entries = Lazy.force fleet_entries in
        let with_items =
          List.filter (fun e -> items_of_entry e <> []) entries
        in
        with_fleet 3 (fun fleet ->
            with_router ~pipeline:8 (List.map fst fleet) (fun rt ->
                ignore (R.open_hli_bytes rt (wire_of entries));
                let e_u = List.hd with_items in
                let e_v =
                  List.find
                    (fun (e : T.hli_entry) ->
                      R.shard_of rt e.T.unit_name
                      <> R.shard_of rt e_u.T.unit_name)
                    with_items
                in
                let u = e_u.T.unit_name and v = e_v.T.unit_name in
                let iu, idx_u = deleted_oracle e_u
                and iv, idx_v = deleted_oracle e_v in
                let e0 = R.epoch rt in
                (* deferred maintenance acks in flight on two shards *)
                R.notify_delete rt ~u iu;
                R.notify_delete rt ~u:v iv;
                Alcotest.(check bool) "acks in flight on two shards" true
                  (R.pending rt >= 2);
                R.refresh rt ~u;
                Alcotest.(check int) "barrier drained every shard" 0
                  (R.pending rt);
                Alcotest.(check int) "epoch advanced" (e0 + 1) (R.epoch rt);
                R.refresh rt ~u:v;
                Alcotest.(check int) "second barrier drained too" 0
                  (R.pending rt);
                (* post-barrier answers are uniformly post-edit *)
                List.iter
                  (fun (un, idx) ->
                    let probe =
                      take 6
                        (items_of_entry
                           (if un = u then e_u else e_v))
                    in
                    List.iter
                      (fun a ->
                        List.iter
                          (fun b ->
                            Alcotest.check equiv_result
                              (Printf.sprintf "post-barrier %s %d %d" un a
                                 b)
                              (Q.get_equiv_acc idx a b)
                              (R.equiv_acc rt ~u:un a b))
                          probe)
                      probe)
                  [ (u, idx_u); (v, idx_v) ])));
    Alcotest.test_case
      "killed shard: re-handshake, replay, byte-identical answers" `Quick
      (fun () ->
        let entries = Lazy.force fleet_entries in
        let e =
          List.find (fun e -> items_of_entry e <> []) entries
        in
        let u = e.T.unit_name in
        (* local replay of the maintenance the recovery must reproduce *)
        let i0, rest =
          match items_of_entry e with
          | i0 :: rest -> (i0, rest)
          | [] -> Alcotest.fail "corpus has no items"
        in
        let like = match rest with i :: _ -> i | [] -> i0 in
        let mt = M.start e in
        M.delete_item mt i0;
        let gid = M.gen_item mt ~like ~line:5 in
        let _entry', idx' = M.commit mt in
        (* servers managed by hand: the victim restarts on the SAME
           socket path, which with_server's teardown cannot express *)
        let paths = List.init 3 (fun _ -> fresh_socket ()) in
        let start path =
          let cfg =
            {
              (Hli_server.Server.default_config ~socket_path:path) with
              jobs = 4;
              idle_timeout = 0.005;
            }
          in
          let srv = Hli_server.Server.create cfg in
          (srv, Domain.spawn (fun () -> Hli_server.Server.run srv))
        in
        let servers = Array.of_list (List.map start paths) in
        let halt i =
          let srv, d = servers.(i) in
          Hli_server.Server.initiate_shutdown srv;
          Domain.join d
        in
        Fun.protect
          ~finally:(fun () ->
            Array.iteri (fun i _ -> try halt i with _ -> ()) servers;
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              paths)
          (fun () ->
            with_router ~pipeline:4 paths (fun rt ->
                ignore (R.open_hli_bytes rt (wire_of entries));
                (* maintenance before the kill, so recovery must replay
                   the log — and reproduce the same generated id *)
                R.notify_delete rt ~u i0;
                Alcotest.(check int) "generated id" gid
                  (R.notify_gen rt ~u ~like ~line:5);
                R.refresh rt ~u;
                (* probe through query_batch: batches always cross the
                   wire (the client memoizes singles locally, which
                   would mask the kill entirely) *)
                let items = take 8 (gid :: items_of_entry e) in
                let train =
                  List.concat_map
                    (fun a ->
                      List.map (fun b -> P.Q_equiv { u; a; b }) items)
                    items
                in
                let probe () = R.query_batch rt train in
                let before = probe () in
                (* SIGKILL-equivalent: the owner goes away mid-session
                   and a replacement comes up on the same socket *)
                let victim = R.shard_of rt u in
                halt victim;
                servers.(victim) <- start (List.nth paths victim);
                (* the next train on the dead connection must be
                   retried, not answered wrongly, not raised *)
                let after = probe () in
                Alcotest.(check bool)
                  "retried answers byte-identical" true (before = after);
                Alcotest.(check bool) "a failover was recorded" true
                  (R.failovers rt >= 1);
                (* and the recovered shard still equals the committed
                   local engine, deleted item unmapped included *)
                List.iter
                  (fun a ->
                    List.iter
                      (fun b ->
                        Alcotest.check equiv_result
                          (Printf.sprintf "post-failover equiv %d %d" a b)
                          (Q.get_equiv_acc idx' a b)
                          (R.equiv_acc rt ~u a b))
                      items)
                  items;
                Alcotest.(check (option int)) "deleted item unmapped"
                  (Q.get_region_of_item idx' i0)
                  (R.region_of_item rt ~u i0);
                (* unrelated shards never noticed *)
                List.iter
                  (fun (o : T.hli_entry) ->
                    if R.shard_of rt o.T.unit_name <> victim then
                      Alcotest.(check bool)
                        (o.T.unit_name ^ " line table intact") true
                        (R.line_table rt o.T.unit_name = o.T.line_table))
                  entries)));
  ]

let () =
  Alcotest.run "server"
    [
      ("differential", differential_tests);
      ("shm", shm_tests);
      ("faults", fault_tests);
      ("handshake", handshake_tests);
      ("pipelining", pipeline_tests);
      ("wire-io", wire_io_tests);
      ("delta", delta_tests);
      ("fleet", fleet_tests);
    ]
