(* Tests for the optimization passes: CSE (Figure 4), LICM, unrolling
   (Figure 6) — both their effect and their semantic safety. *)

let cse_src =
  {|
double coeff[4];
double buf[64];

void bump(double *d)
{
  d[0] = d[0] + 1.0;
}

double work()
{
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < 64; i++)
  {
    s = s + coeff[0] * coeff[1];
    bump(buf);
    s = s + coeff[0] * coeff[1];
  }
  return s;
}

int main()
{
  int i;
  coeff[0] = 2.0;
  coeff[1] = 3.0;
  for (i = 0; i < 64; i++) { buf[i] = 0.0; }
  print_double(work());
  print_double(buf[0]);
  return 0;
}
|}

let setup src =
  let prog = Srclang.Typecheck.program_of_string src in
  let entries = Harness.Pipeline.build_hli_entries prog in
  (prog, entries)

let lower_with_maps prog entries =
  let rtl = Backend.Lower.lower_program prog in
  let maps =
    List.filter_map
      (fun (e : Hli_core.Tables.hli_entry) ->
        Option.map
          (fun fn -> (e.Hli_core.Tables.unit_name, (e, Backend.Hli_import.map_unit e fn)))
          (Backend.Rtl.find_fn rtl e.Hli_core.Tables.unit_name))
      entries
  in
  (rtl, maps)

let cse_tests =
  [
    Alcotest.test_case "HLI lets loads survive calls" `Quick (fun () ->
        let prog, entries = setup cse_src in
        let run use_hli =
          let rtl, maps = lower_with_maps prog entries in
          let total = Backend.Cse.fresh_stats () in
          List.iter
            (fun fn ->
              let _, m = List.assoc fn.Backend.Rtl.fname maps in
              let hli = if use_hli then Some m else None in
              let s = Backend.Cse.run_fn ?hli fn in
              total.Backend.Cse.loads_eliminated <-
                total.Backend.Cse.loads_eliminated + s.Backend.Cse.loads_eliminated)
            rtl.Backend.Rtl.fns;
          (rtl, total.Backend.Cse.loads_eliminated)
        in
        let rtl_gcc, loads_gcc = run false in
        let rtl_hli, loads_hli = run true in
        Alcotest.(check bool) "more loads eliminated with HLI" true
          (loads_hli > loads_gcc);
        let r1 = Machine.Exec.run rtl_gcc in
        let r2 = Machine.Exec.run rtl_hli in
        Alcotest.(check string) "same output" r1.Machine.Exec.output
          r2.Machine.Exec.output);
    Alcotest.test_case "CSE deletes HLI items via maintenance" `Quick (fun () ->
        let prog, entries = setup cse_src in
        let rtl, maps = lower_with_maps prog entries in
        let fn = Option.get (Backend.Rtl.find_fn rtl "work") in
        let entry, m = List.assoc "work" maps in
        let before = List.length (Hli_core.Tables.all_items entry) in
        let mt = Hli_core.Maintain.start entry in
        let s =
          Backend.Cse.run_fn ~hli:m
            ~maintain:(Backend.Hli_import.local_maint mt)
            fn
        in
        let entry', _ = Hli_core.Maintain.commit mt in
        let after = List.length (Hli_core.Tables.all_items entry') in
        Alcotest.(check int) "items deleted"
          (before - s.Backend.Cse.loads_eliminated)
          after);
  ]

let licm_src =
  {|
double table[16];
double out[512];

void sweep(double *dst, double *t, int n)
{
  int i;
  for (i = 0; i < n; i++)
  {
    dst[i] = t[3] * 2.0 + t[5] + i * 0.5;
  }
}

int main()
{
  int i;
  double s;
  for (i = 0; i < 16; i++) { table[i] = 1.0 + i; }
  sweep(out, table, 512);
  s = 0.0;
  for (i = 0; i < 512; i++) { s = s + out[i]; }
  print_double(s);
  return 0;
}
|}

let licm_tests =
  [
    Alcotest.test_case "invariant loads hoist with HLI" `Quick (fun () ->
        let prog, entries = setup licm_src in
        let run use_hli =
          let rtl, maps = lower_with_maps prog entries in
          let hoisted = ref 0 in
          List.iter
            (fun fn ->
              let _, m = List.assoc fn.Backend.Rtl.fname maps in
              let hli = if use_hli then Some m else None in
              let s = Backend.Licm.run_fn ?hli fn in
              hoisted := !hoisted + s.Backend.Licm.hoisted_loads)
            rtl.Backend.Rtl.fns;
          (rtl, !hoisted)
        in
        let rtl_gcc, h_gcc = run false in
        let rtl_hli, h_hli = run true in
        (* the t[3]/t[5] loads hoist in both modes here (stores go to a
           provably different pointer only under HLI; without HLI the
           Breg-vs-Breg conflict pins them) *)
        Alcotest.(check bool) "hli hoists more or equal" true (h_hli >= h_gcc);
        Alcotest.(check bool) "hli hoists something" true (h_hli > 0);
        let r1 = Machine.Exec.run rtl_gcc in
        let r2 = Machine.Exec.run rtl_hli in
        Alcotest.(check string) "same output" r1.Machine.Exec.output
          r2.Machine.Exec.output;
        Alcotest.(check bool) "fewer dynamic instructions" true
          (r2.Machine.Exec.dyn_count <= r1.Machine.Exec.dyn_count));
  ]

let unroll_src =
  {|
double v[128];

int main()
{
  int i;
  double s;
  for (i = 0; i < 128; i++)
  {
    v[i] = 0.5 * i;
  }
  s = 0.0;
  for (i = 0; i < 128; i++)
  {
    s = s + v[i] * 1.5;
  }
  print_double(s);
  return 0;
}
|}

let unroll_tests =
  [
    Alcotest.test_case "unroll preserves semantics, cuts overhead" `Quick
      (fun () ->
        let prog, _ = setup unroll_src in
        let rtl0 = Backend.Lower.lower_program prog in
        let base = Machine.Exec.run rtl0 in
        let rtl = Backend.Lower.lower_program prog in
        let stats = ref 0 in
        let fns =
          List.map
            (fun fn ->
              let s = Backend.Unroll.run_fn ~factor:4 fn in
              stats := !stats + s.Backend.Unroll.unrolled;
              Backend.Unroll.refresh fn)
            rtl.Backend.Rtl.fns
        in
        let rtl = { rtl with Backend.Rtl.fns = fns } in
        Alcotest.(check bool) "unrolled some loops" true (!stats >= 2);
        let r = Machine.Exec.run rtl in
        Alcotest.(check string) "same output" base.Machine.Exec.output
          r.Machine.Exec.output;
        Alcotest.(check bool) "fewer dynamic instructions" true
          (r.Machine.Exec.dyn_count < base.Machine.Exec.dyn_count));
    Alcotest.test_case "accumulator chains survive unrolling" `Quick (fun () ->
        (* the s += ... reduction is the loop-carried case the renamer
           must not break *)
        let prog, _ = setup unroll_src in
        let rtl = Backend.Lower.lower_program prog in
        let fns =
          List.map
            (fun fn ->
              ignore (Backend.Unroll.run_fn ~factor:2 fn);
              Backend.Unroll.refresh fn)
            rtl.Backend.Rtl.fns
        in
        let rtl = { rtl with Backend.Rtl.fns = fns } in
        let r = Machine.Exec.run rtl in
        Alcotest.(check string) "sum" "6096.000000"
          (String.trim r.Machine.Exec.output));
    Alcotest.test_case "non-dividing trip counts left alone" `Quick (fun () ->
        let src =
          "int a[7];\nint main() { int i; int s; s = 0; for (i = 0; i < 7; i++) { a[i] = i; s = s + a[i]; } print_int(s); return 0; }"
        in
        let prog, _ = setup src in
        let rtl = Backend.Lower.lower_program prog in
        let total = ref 0 in
        List.iter
          (fun fn ->
            let s = Backend.Unroll.run_fn ~factor:4 fn in
            total := !total + s.Backend.Unroll.unrolled)
          rtl.Backend.Rtl.fns;
        Alcotest.(check int) "nothing unrolled" 0 !total;
        let r = Machine.Exec.run rtl in
        Alcotest.(check string) "21" "21" (String.trim r.Machine.Exec.output));
  ]

(* whole-pipeline semantic preservation with all passes on, over a few
   workloads (the full set runs in test_workloads) *)
let integration_tests =
  List.map
    (fun name ->
      Alcotest.test_case ("passes preserve " ^ name) `Slow (fun () ->
          let w = Option.get (Workloads.Registry.find name) in
          let config = Harness.Pipeline.config_of_passes "cse,licm,unroll=2" in
          let c = Harness.Pipeline.compile ~config w.Workloads.Workload.source in
          let r1 = Machine.Exec.run (Harness.Pipeline.rtl_gcc_r4600 c) in
          let r2 = Machine.Exec.run (Harness.Pipeline.rtl_hli_r10000 c) in
          Alcotest.(check string) "output" r1.Machine.Exec.output
            r2.Machine.Exec.output))
    [ "101.tomcatv"; "129.compress"; "048.ora" ]

let () =
  Alcotest.run "passes"
    [
      ("cse", cse_tests);
      ("licm", licm_tests);
      ("unroll", unroll_tests);
      ("integration", integration_tests);
    ]
