(* Driver-layer tests: --passes spec parsing and round-tripping, the
   registry and its derived telemetry span names, pipeline ordering /
   stage-chain validation, and a golden check that the default
   pipeline's Table 1/2 output is byte-identical to the output recorded
   before the pass-manager refactor (test/golden_tables.txt). *)

let diag_code f =
  match f () with
  | exception Diagnostics.Diagnostic d -> Some d.Diagnostics.code
  | _ -> None

let check_code name expected f =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (option string)) name (Some expected) (diag_code f))

let roundtrip s = Driver.Pass_manager.(specs_to_string (parse_specs s))

let spec_tests =
  [
    Alcotest.test_case "round-trip canonical spec" `Quick (fun () ->
        Alcotest.(check string)
          "same" "cse,licm,unroll=4"
          (roundtrip "cse,licm,unroll=4"));
    Alcotest.test_case "round-trip normalizes whitespace" `Quick (fun () ->
        Alcotest.(check string) "trimmed" "cse,licm" (roundtrip " cse , licm "));
    Alcotest.test_case "empty spec is the default pipeline" `Quick (fun () ->
        Alcotest.(check int)
          "no specs" 0
          (List.length (Driver.Pass_manager.parse_specs "")));
    Alcotest.test_case "unroll default arg survives round-trip" `Quick
      (fun () ->
        (* a bare "unroll" keeps sp_arg = None (the pass's default_arg
           applies at run time), so it prints back without "=N" *)
        Alcotest.(check string) "bare" "unroll" (roundtrip "unroll"));
    check_code "unknown pass is E1001" "E1001" (fun () ->
        Driver.Pass_manager.parse_specs "cse,frobnicate");
    check_code "structural pass not selectable (E1002)" "E1002" (fun () ->
        Driver.Pass_manager.parse_specs "lower");
    check_code "argument on argless pass (E1002)" "E1002" (fun () ->
        Driver.Pass_manager.parse_specs "cse=3");
    check_code "non-integer argument (E1002)" "E1002" (fun () ->
        Driver.Pass_manager.parse_specs "unroll=x");
    check_code "unroll factor < 2 (E1002)" "E1002" (fun () ->
        Driver.Pass_manager.parse_specs "unroll=1");
    check_code "duplicate pass (E1003)" "E1003" (fun () ->
        Driver.Pass_manager.parse_specs "cse,cse");
    check_code "unroll before cse violates ordering (E1004)" "E1004" (fun () ->
        Driver.Pass_manager.parse_specs "unroll=4,cse");
    check_code "licm before cse violates ordering (E1004)" "E1004" (fun () ->
        Driver.Pass_manager.parse_specs "licm,cse");
  ]

let registry_tests =
  [
    Alcotest.test_case "telemetry stage order is derived" `Quick (fun () ->
        Alcotest.(check (list string))
          "same list" Driver.Pass_manager.span_names
          Harness.Telemetry.stage_order);
    Alcotest.test_case "span = prefix.name for every pass" `Quick (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Driver.Pass.span_name p ^ " namespaced")
              true
              (String.contains (Driver.Pass.span_name p) '.'))
          Driver.Pass_manager.registry);
    Alcotest.test_case "list-passes names every pass" `Quick (fun () ->
        let text = Driver.Pass_manager.list_text () in
        let has_sub s sub =
          let n = String.length s and k = String.length sub in
          let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
          go 0
        in
        List.iter
          (fun p ->
            Alcotest.(check bool) (Driver.Pass.name p) true
              (has_sub text (Driver.Pass.name p)))
          Driver.Pass_manager.registry);
    Alcotest.test_case "all four ablations are registered" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool) n true
              (Driver.Variant.find_ablation n <> None))
          [ "merge-off"; "routine-regions"; "hli-only"; "lsq-off" ];
        Alcotest.(check bool) "baseline" true
          (Driver.Variant.find_ablation "baseline" <> None));
    Alcotest.test_case "variant matrix is machine-major" `Quick (fun () ->
        Alcotest.(check (list string))
          "order"
          [ "gcc/r4600"; "hli/r4600"; "gcc/r10000"; "hli/r10000" ]
          (List.map Driver.Variant.name Driver.Variant.matrix));
  ]

let pipeline_tests =
  [
    Alcotest.test_case "backend pipeline with passes validates" `Quick
      (fun () ->
        Alcotest.(check (option string)) "ok" None
          (diag_code (fun () ->
               Driver.Pass_manager.(
                 validate_pipeline
                   (backend_pipeline ~alias:Backend.Ddg.With_hli
                      (parse_specs "cse,licm,unroll=4"))))));
    Alcotest.test_case "gcc-only pipeline skips hli_import yet validates"
      `Quick (fun () ->
        (* cse's after=[hli_import] only binds when hli_import is
           co-selected; the GCC baselines run passes without HLI *)
        Alcotest.(check (option string)) "ok" None
          (diag_code (fun () ->
               Driver.Pass_manager.(
                 validate_pipeline
                   (backend_pipeline ~alias:Backend.Ddg.Gcc_only
                      (parse_specs "cse,licm"))))));
    check_code "stage chain mismatch is E1005" "E1005" (fun () ->
        Driver.Pass_manager.(
          validate_pipeline [ step "parse_typecheck"; step "lower" ]));
    check_code "duplicate step is E1003" "E1003" (fun () ->
        Driver.Pass_manager.(
          validate_pipeline [ step "lower"; step "hli_import"; step "hli_import" ]));
    Alcotest.test_case "frontend runs without a variant" `Quick (fun () ->
        let ctx = Driver.Pass.ctx () in
        let h =
          Driver.Pass_manager.run_frontend ctx
            { Driver.Pass.src = "int main() { return 0; }"; src_file = None }
        in
        Alcotest.(check bool) "entries" true (h.Driver.Pass.h_entries <> []);
        Alcotest.(check bool) "serialized" true (h.Driver.Pass.h_bytes > 0));
    check_code "backend without a variant is E1010" "E1010" (fun () ->
        let ctx = Driver.Pass.ctx () in
        let h =
          Driver.Pass_manager.run_frontend ctx
            { Driver.Pass.src = "int main() { return 0; }"; src_file = None }
        in
        Driver.Pass_manager.run_backend ctx [] h);
    Alcotest.test_case "diagnostics carry the source file name" `Quick
      (fun () ->
        let ctx = Driver.Pass.ctx () in
        match
          Driver.Pass_manager.run_frontend ctx
            { Driver.Pass.src = "int f() { return nope; }";
              src_file = Some "bad.c" }
        with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check (option string)) "file" (Some "bad.c")
              d.Diagnostics.file;
            Alcotest.(check string) "code" "E0301" d.Diagnostics.code
        | _ -> Alcotest.fail "expected a typecheck diagnostic");
  ]

(* Byte-identity of the default pipeline against the output recorded
   before the refactor (same two workloads and fuel the @smoke alias
   uses). *)
let golden_tests =
  [
    Alcotest.test_case "default-pipeline tables match the recorded golden"
      `Slow (fun () ->
        let golden =
          let ic = open_in_bin "golden_tables.txt" in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let ws =
          List.map
            (fun n -> Option.get (Workloads.Registry.find n))
            [ "wc"; "129.compress" ]
        in
        let rows = Harness.Tables.run_all ~fuel:100_000_000 ws in
        Alcotest.(check string)
          "byte-identical" golden
          (Harness.Tables.print_tables rows));
  ]

let () =
  Alcotest.run "driver"
    [
      ("specs", spec_tests);
      ("registry", registry_tests);
      ("pipeline", pipeline_tests);
      ("golden", golden_tests);
    ]
