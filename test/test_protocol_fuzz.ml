(* Fuzz harness for the hlid wire protocol (lib/server/protocol.ml).

   Same rule as the serializer harness: the pure frame codec must
   either return a frame or raise [Serialize.Corrupt] with an E11xx
   protocol code — any other exception, any non-protocol code, or a
   surviving frame that does not re-encode/re-decode to itself, is a
   bug.  The corpus is one exemplar of every request and response
   frame kind plus a stream of random frames from the shared
   generators (test/testgen.ml).

   1. Round-trip: encode/decode is the identity on every corpus frame.
   2. Truncation: every strict prefix of every encoded frame is
      rejected with a precise E11xx code (never accepted, never a
      crash, never an E06xx serializer code leaking through).
   3. Mutation: deterministic single-byte xor of every frame either
      rejects with E11xx or decodes to a frame that re-encodes and
      re-decodes consistently (a tag flip can legally turn one
      single-string frame into another).
   4. Frame trains: pipelined concatenations of random frames decode
      positionally through the streaming parser
      ([parse_frame]/[decode_request_at]), and every random cut point
      leaves the parser waiting for more bytes (never a spurious
      accept or reject of a partial tail).

   Runs under dune runtest with a modest default budget; the
   @protocol-fuzz alias (pulled into @smoke) raises it via FUZZ_ITERS.
   FUZZ_SEED varies the deterministic stream. *)

module P = Hli_server.Protocol
module S = Hli_core.Serialize

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let iters = env_int "FUZZ_ITERS" 100
let seed = env_int "FUZZ_SEED" 0x484c4944 (* "HLID" *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      prerr_endline ("FAIL: " ^ m))
    fmt

(* deterministic 48-bit LCG so a failing run reproduces exactly *)
let rng = ref seed

let rand_int bound =
  rng := ((!rng * 25214903917) + 11) land 0xffffffffffff;
  (!rng lsr 16) mod bound

(* ------------------------------------------------------------------ *)
(* Corpus: one exemplar per frame kind, then random frames             *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  {
    Hli_core.Tables.unit_name = "u";
    line_table =
      [
        {
          Hli_core.Tables.line_no = 3;
          items = [ { Hli_core.Tables.item_id = 1; acc = Hli_core.Tables.Acc_load } ];
        };
      ];
    regions =
      [
        {
          Hli_core.Tables.region_id = 1;
          rtype = Hli_core.Tables.Region_unit;
          parent = None;
          first_line = 1;
          last_line = 9;
          eq_classes = [];
          aliases = [];
          lcdds = [];
          callrefmods = [];
        };
      ];
  }

let exemplar_requests : (string * P.request) list =
  [
    ("hello", P.Hello { version = P.protocol_version });
    ("open_hli", P.Open_hli (S.to_bytes { Hli_core.Tables.entries = [ sample_entry ] }));
    ("open_path", P.Open_path "/tmp/x.hli");
    ( "batch",
      P.Batch
        [
          P.Q_equiv { u = "u"; a = 1; b = 2 };
          P.Q_alias { u = "u"; rid = 1; ca = 0; cb = 1 };
          P.Q_lcdd { u = "u"; rid = 1; a = 1; b = 2 };
          P.Q_call { u = "u"; call = 3; mem = 1 };
          P.Q_region_of { u = "u"; item = 1 };
          P.Q_hoist_target { u = "u"; item = 1 };
        ] );
    ("notify_delete", P.Notify_delete { u = "u"; item = 1 });
    ("notify_gen", P.Notify_gen { u = "u"; like = 1; line = 3 });
    ("notify_move", P.Notify_move { u = "u"; item = 1; target_rid = 1 });
    ("notify_unroll", P.Notify_unroll { u = "u"; rid = 1; factor = 4 });
    ("refresh", P.Refresh "u");
    ("line_table", P.Line_table "u");
    ("stats", P.Stats);
    ("close", P.Close);
    ("shm_list", P.Shm_list);
    ( "open_delta",
      P.Open_delta
        [
          ("u", Digest.string "u's entry payload");
          ("v", Digest.string "v's entry payload");
        ] );
    ("open_delta_empty", P.Open_delta []);
    ( "delta_fill",
      P.Delta_fill [ S.entry_to_bytes sample_entry; "second payload" ] );
    ("q_prob", P.Q_prob { u = "u"; pairs = [ (1, 2); (2, 2); (3, 99991) ] });
    ("q_prob_empty", P.Q_prob { u = "u"; pairs = [] });
  ]

let exemplar_responses : (string * P.response) list =
  [
    ( "r_hello",
      P.R_hello { version = P.protocol_version; shm_dir = None; shards = [] } );
    ( "r_hello_shm",
      P.R_hello
        {
          version = P.protocol_version;
          shm_dir = Some "/tmp/hlid-shm/sess-1";
          shards = [];
        } );
    ( "r_hello_fleet",
      P.R_hello
        {
          version = P.protocol_version;
          shm_dir = None;
          shards = [ "/tmp/hlid-0.sock"; "/tmp/hlid-1.sock"; "/tmp/hlid-2.sock" ];
        } );
    ("r_opened", P.R_opened [ ("u", [ 1; 2 ]); ("v", []) ]);
    ( "r_results",
      P.R_results
        [
          P.A_equiv Hli_core.Query.Equiv_none;
          P.A_equiv (Hli_core.Query.Equiv_same Hli_core.Tables.Maybe);
          P.A_alias true;
          P.A_lcdd None;
          P.A_lcdd
            (Some
               [
                 {
                   Hli_core.Tables.lcdd_src = 1;
                   lcdd_dst = 2;
                   lcdd_dep = Hli_core.Tables.Dep_maybe;
                   lcdd_distance = Some 0;
                   lcdd_prob = Some 850;
                 };
               ]);
          P.A_call Hli_core.Query.Call_refmod;
          P.A_region_of (Some 1);
          P.A_hoist_target None;
        ] );
    ("r_ack", P.R_ack);
    ("r_gen", P.R_gen 7);
    ("r_moved", P.R_moved false);
    ( "r_unrolled",
      P.R_unrolled
        {
          Hli_core.Maintain.copies = [ (1, [| 10; 11 |]) ];
          new_classes = [ (5, [| 50; 51 |]) ];
        } );
    ("r_line_table", P.R_line_table sample_entry.Hli_core.Tables.line_table);
    ("r_stats", P.R_stats "{\"sessions\":1}");
    ("r_closing", P.R_closing);
    ( "r_shm_list",
      P.R_shm_list
        [ ("u", "/tmp/hlid-shm/sess-1/aa.hlix"); ("v", "/tmp/x.hlix") ] );
    ("r_shm_list_empty", P.R_shm_list []);
    ("r_delta_need", P.R_delta_need [ 0; 3; 17 ]);
    ("r_delta_need_none", P.R_delta_need []);
    ( "r_prob",
      P.R_prob
        [
          (Hli_core.Query.Equiv_none, 1000);
          (Hli_core.Query.Equiv_same Hli_core.Tables.Maybe, 500);
          (Hli_core.Query.Equiv_same Hli_core.Tables.Definitely, 1000);
          (Hli_core.Query.Equiv_alias, 850);
          (Hli_core.Query.Equiv_unknown, 0);
        ] );
    ("r_prob_empty", P.R_prob []);
    ("r_error", P.R_error { e_code = "E1107"; e_msg = "unknown unit" });
  ]

type 'a outcome = Decoded of 'a | Rejected of string | Crashed of exn

let decode of_string b =
  match of_string b with
  | f -> Decoded f
  | exception S.Corrupt c -> Rejected c.S.c_code
  | exception e -> Crashed e

(* ------------------------------------------------------------------ *)
(* The three phases, generic over request/response                     *)
(* ------------------------------------------------------------------ *)

let round_trip name to_string of_string frame =
  let bytes = to_string frame in
  match decode of_string bytes with
  | Decoded f when f = frame -> ()
  | Decoded _ -> fail "%s: frame round-trip mismatch" name
  | Rejected code -> fail "%s: own encoding rejected with %s" name code
  | Crashed e -> fail "%s: decoder crashed: %s" name (Printexc.to_string e)

let truncations name of_string bytes counter =
  for len = 0 to String.length bytes - 1 do
    incr counter;
    match decode of_string (String.sub bytes 0 len) with
    | Rejected code when P.is_protocol_code code -> ()
    | Rejected code -> fail "%s: prefix %d rejected with non-protocol %s" name len code
    | Decoded _ -> fail "%s: strict prefix of length %d decoded" name len
    | Crashed e ->
        fail "%s: truncation at %d crashed: %s" name len (Printexc.to_string e)
  done

let mutations name to_string of_string bytes ~muts ~survivors =
  let n = String.length bytes in
  for _ = 1 to iters do
    incr muts;
    let pos = rand_int n in
    let x = 1 + rand_int 255 in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
    match decode of_string (Bytes.to_string b) with
    | Rejected code when P.is_protocol_code code -> ()
    | Rejected code ->
        fail "%s: mutant at byte %d rejected with non-protocol %s" name pos code
    | Crashed e ->
        fail "%s: mutation at byte %d (xor %#x) crashed: %s" name pos x
          (Printexc.to_string e)
    | Decoded f' -> (
        incr survivors;
        match decode of_string (to_string f') with
        | Decoded f'' when f'' = f' -> ()
        | _ -> fail "%s: surviving mutant at byte %d fails re-round-trip" name pos)
  done

let sweep kind to_string of_string frames ~truncs ~muts ~survivors =
  List.iter
    (fun (name, frame) ->
      let name = kind ^ "/" ^ name in
      round_trip name to_string of_string frame;
      let bytes = to_string frame in
      truncations name of_string bytes truncs;
      mutations name to_string of_string bytes ~muts ~survivors)
    frames

let () =
  let truncs = ref 0 and muts = ref 0 and survivors = ref 0 in
  let req_of s = P.request_of_string s in
  let resp_of s = P.response_of_string s in
  (* exemplars: every frame kind *)
  sweep "req" P.request_to_string req_of exemplar_requests ~truncs ~muts
    ~survivors;
  sweep "resp" P.response_to_string resp_of exemplar_responses ~truncs ~muts
    ~survivors;
  (* random requests from the shared generator *)
  let rand = Random.State.make [| seed |] in
  let n = max 25 (iters / 4) in
  for i = 1 to n do
    let r = QCheck.Gen.generate1 ~rand Testgen.gen_request in
    let name = Printf.sprintf "req/random-%d" i in
    round_trip name P.request_to_string req_of r;
    let bytes = P.request_to_string r in
    (* random frames get a lighter mutation budget; truncation is
       all-prefix as everywhere else *)
    truncations name req_of bytes truncs;
    for _ = 1 to 8 do
      incr muts;
      let pos = rand_int (String.length bytes) in
      let x = 1 + rand_int 255 in
      let b = Bytes.of_string bytes in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match decode req_of (Bytes.to_string b) with
      | Rejected code when P.is_protocol_code code -> ()
      | Rejected code ->
          fail "%s: mutant rejected with non-protocol %s" name code
      | Crashed e -> fail "%s: mutant crashed: %s" name (Printexc.to_string e)
      | Decoded f' -> (
          incr survivors;
          match decode req_of (P.request_to_string f') with
          | Decoded f'' when f'' = f' -> ()
          | _ -> fail "%s: surviving mutant fails re-round-trip" name)
    done
  done;
  (* pipelined frame trains through the streaming parser *)
  let trains = ref 0 and cuts = ref 0 in
  let n_trains = max 10 (iters / 10) in
  for t = 1 to n_trains do
    incr trains;
    let name = Printf.sprintf "train-%d" t in
    let k = 2 + rand_int 6 in
    let reqs =
      List.init k (fun _ -> QCheck.Gen.generate1 ~rand Testgen.gen_request)
    in
    let train = String.concat "" (List.map P.request_to_string reqs) in
    let buf = Bytes.of_string train in
    (* walk [buf.[0..len)] frame by frame; returns the decoded prefix
       and whether the tail is a clean "need more bytes" *)
    let walk len =
      let rec go ofs acc =
        if ofs = len then (List.rev acc, true)
        else
          match
            P.parse_frame ~kind:"request" ~known:P.is_request_tag buf ~ofs
              ~len:(len - ofs)
          with
          | None -> (List.rev acc, false)
          | Some fi -> go fi.P.f_end (P.decode_request_at buf fi :: acc)
      in
      go 0 []
    in
    (match walk (String.length train) with
    | decoded, true when decoded = reqs -> ()
    | decoded, complete ->
        fail "%s: %d-frame train decoded %d frames (complete=%b)" name k
          (List.length decoded) complete
    | exception e -> fail "%s: train walk crashed: %s" name (Printexc.to_string e));
    (* random cut points: a partial tail must leave the parser waiting *)
    for _ = 1 to 32 do
      incr cuts;
      let len = rand_int (String.length train + 1) in
      match walk len with
      | decoded, _ ->
          (* every fully-contained frame must decode to its original *)
          let m = List.length decoded in
          if decoded <> List.filteri (fun i _ -> i < m) reqs then
            fail "%s: cut at %d mis-decoded a complete frame" name len
      | exception S.Corrupt c when P.is_protocol_code c.S.c_code ->
          fail "%s: cut at %d rejected (%s) instead of waiting" name len
            c.S.c_code
      | exception e ->
          fail "%s: cut at %d crashed: %s" name len (Printexc.to_string e)
    done
  done;
  Printf.printf
    "protocol fuzz: %d exemplar frames + %d random requests: %d truncations, \
     %d mutations (%d mutants decoded, all re-round-tripped), %d frame \
     trains (%d cut points)\n"
    (List.length exemplar_requests + List.length exemplar_responses)
    n !truncs !muts !survivors !trains !cuts;
  if !failures > 0 then begin
    Printf.eprintf "protocol fuzz: %d failure(s) (FUZZ_SEED=%d FUZZ_ITERS=%d)\n"
      !failures seed iters;
    exit 1
  end
