(* Property-based soundness testing: generate random array kernels,
   compile them with and without HLI (and with the optimization passes),
   and require byte-identical program output.  This is the whole
   system's safety property: no analysis result may ever license a
   semantics-changing reordering. *)

let array_names = [| "aa"; "bb"; "cc" |]

(* random subscript around the induction variable *)
let gen_subscript =
  QCheck.Gen.(
    oneof
      [
        return "i";
        return "i-1";
        return "i+1";
        return "i+2";
        map string_of_int (int_range 0 9);
      ])

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        (oneofl [ 0; 1; 2 ] >>= fun a ->
         gen_subscript >>= fun s ->
         return (Printf.sprintf "%s[%s]" array_names.(a) s));
        map string_of_int (int_range 1 9);
        return "s";
      ])

let gen_stmt =
  QCheck.Gen.(
    oneof
      [
        (* array store *)
        (oneofl [ 0; 1; 2 ] >>= fun a ->
         gen_subscript >>= fun s ->
         gen_operand >>= fun x ->
         gen_operand >>= fun y ->
         oneofl [ "+"; "-"; "*" ] >>= fun op ->
         return (Printf.sprintf "    %s[%s] = %s %s %s;" array_names.(a) s x op y));
        (* scalar update *)
        (gen_operand >>= fun x ->
         oneofl [ "+"; "-" ] >>= fun op ->
         return (Printf.sprintf "    s = s %s %s;" op x));
      ])

let gen_program =
  QCheck.Gen.(
    int_range 2 8 >>= fun nstmts ->
    list_repeat nstmts gen_stmt >>= fun body ->
    int_range 4 30 >>= fun trip ->
    let body = String.concat "\n" body in
    return
      (Printf.sprintf
         {|
int aa[64];
int bb[64];
int cc[64];

void kernel(int *pa, int *pb)
{
  int i;
  int s;
  s = 0;
  for (i = 3; i < %d; i++)
  {
%s
    pa[i] = pa[i] + pb[i-1];
  }
  aa[0] = aa[0] + s;
}

int main()
{
  int i;
  int sig;
  for (i = 0; i < 64; i++)
  {
    aa[i] = i * 3 + 1;
    bb[i] = 64 - i;
    cc[i] = (i * 7) %% 13;
  }
  kernel(aa, bb);
  kernel(bb, cc);
  sig = 0;
  for (i = 0; i < 64; i++)
  {
    sig = (sig * 31 + aa[i] + bb[i] * 2 + cc[i] * 3) %% 65536;
  }
  print_int(sig);
  return 0;
}
|}
         (3 + trip) body))

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let outputs_agree ?(config = Harness.Pipeline.default_config) src =
  match Harness.Pipeline.compile ~config src with
  | exception Diagnostics.Diagnostic _ -> false
  | c ->
      let out rtl = (Machine.Exec.run rtl).Machine.Exec.output in
      let o1 = out (Harness.Pipeline.rtl_gcc_r4600 c) in
      out (Harness.Pipeline.rtl_hli_r4600 c) = o1
      && out (Harness.Pipeline.rtl_gcc_r10000 c) = o1
      && out (Harness.Pipeline.rtl_hli_r10000 c) = o1

let props =
  [
    QCheck.Test.make ~count:40 ~name:"HLI scheduling never changes output"
      arb_program (fun src -> outputs_agree src);
    QCheck.Test.make ~count:25 ~name:"CSE+LICM+unroll never change output"
      arb_program (fun src ->
        outputs_agree
          ~config:(Harness.Pipeline.config_of_passes "cse,licm,unroll=2")
          src);
    QCheck.Test.make ~count:40 ~name:"item mapping is always total" arb_program
      (fun src ->
        match Harness.Pipeline.compile src with
        | exception Diagnostics.Diagnostic _ -> false
        | c -> c.Harness.Pipeline.map_unmapped = 0);
  ]

let () =
  Alcotest.run "random-soundness"
    [ ("properties", List.map QCheck_alcotest.to_alcotest props) ]
