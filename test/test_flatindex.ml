(* HLIX (lib/core/flatindex.ml) correctness + corruption harness.

   1. Differential: for every workload entry, every query answered off
      the flat segment equals the in-process engine — equiv_acc over
      all sampled item pairs (absent ids included), call_acc, alias,
      region_of_item.
   2. All-prefix truncation: every strict prefix of a segment must be
      rejected by [Flatindex.validate] with a precise E063x code
      (truncations land on E0632 — the stored total_len can never fit).
   3. Single-byte mutation sweep (budget scaled by FUZZ_ITERS, like
      the serializer fuzz suite): any flipped byte outside the seqlock
      generation word must surface as E0630..E0635; flips inside the
      generation word leave the content intact, so validation must
      still pass and answers must still match the oracle.
   4. Seqlock torture: one writer domain rebuilding a published
      segment in a storm of Maintain commits while reader domains
      hammer the mapping with generation-checked lookups — every
      settled answer must match the oracle, and the race must actually
      be exercised (retry count > 0).

   The @fuzz alias raises the mutation budget via FUZZ_ITERS. *)

module T = Hli_core.Tables
module Q = Hli_core.Query
module F = Hli_core.Flatindex
module S = Hli_core.Serialize
module M = Hli_core.Maintain

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let iters = env_int "FUZZ_ITERS" 100
let seed = env_int "FUZZ_SEED" 0x484c4958 (* "HLIX" *)
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      prerr_endline ("FAIL: " ^ m))
    fmt

(* deterministic LCG so failing runs reproduce exactly *)
let rng = ref seed

let rand_int bound =
  rng := ((!rng * 25214903917) + 11) land 0xffffffffffff;
  (!rng lsr 16) mod bound

let entries_of_workload (w : Workloads.Workload.t) =
  let prog = Srclang.Typecheck.program_of_string w.Workloads.Workload.source in
  Harness.Pipeline.build_hli_entries prog

let items_of_entry (e : T.hli_entry) =
  List.sort_uniq compare
    (List.concat_map
       (fun le -> List.map (fun it -> it.T.item_id) le.T.items)
       e.T.line_table)

let rids_of_entry (e : T.hli_entry) =
  List.sort_uniq compare (List.map (fun r -> r.T.region_id) e.T.regions)

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let pp_equiv r = Format.asprintf "%a" Q.pp_equiv_result r
let pp_call r = Format.asprintf "%a" Q.pp_call_acc r

(* ------------------------------------------------------------------ *)
(* 1: differential vs the engine                                       *)
(* ------------------------------------------------------------------ *)

let differential name (e : T.hli_entry) idx seg =
  let u = e.T.unit_name in
  (* sampled present ids plus ids the HLI has never seen *)
  let items = take 14 (items_of_entry e) @ [ 999_999_983; 424242 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let want = Q.get_equiv_acc idx a b
          and got = F.get_equiv_acc seg a b in
          if want <> got then
            fail "%s/%s equiv %d %d: engine %s, segment %s" name u a b
              (pp_equiv want) (pp_equiv got);
          let want = Q.get_call_acc idx ~call:a ~mem:b
          and got = F.get_call_acc seg ~call:a ~mem:b in
          if want <> got then
            fail "%s/%s call %d %d: engine %s, segment %s" name u a b
              (pp_call want) (pp_call got))
        items)
    items;
  List.iter
    (fun item ->
      if Q.get_region_of_item idx item <> F.get_region_of_item seg item then
        fail "%s/%s region_of %d disagrees" name u item)
    items;
  List.iter
    (fun rid ->
      for ca = 0 to 5 do
        for cb = 0 to 5 do
          if Q.get_alias idx ~rid ca cb <> F.get_alias seg ~rid ca cb then
            fail "%s/%s alias r%d %d %d disagrees" name u rid ca cb
        done
      done;
      let pairs = take 8 items in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if Q.get_lcdd idx ~rid a b <> F.get_lcdd seg ~rid a b then
                fail "%s/%s lcdd r%d %d %d disagrees" name u rid a b)
            pairs)
        pairs)
    (take 6 (rids_of_entry e) @ [ 31337 ])

(* ------------------------------------------------------------------ *)
(* 2+3: truncation and mutation sweeps                                 *)
(* ------------------------------------------------------------------ *)

let e063x = [ "E0630"; "E0631"; "E0632"; "E0633"; "E0634"; "E0635" ]

let expect_rejected name what hash seg =
  match F.validate ~expect_hash:hash seg with
  | () -> fail "%s: %s validated despite corruption" name what
  | exception S.Corrupt c ->
      if not (List.mem c.S.c_code e063x) then
        fail "%s: %s rejected with %s, not an E063x code" name what c.S.c_code
  | exception e ->
      fail "%s: %s crashed validate: %s" name what (Printexc.to_string e)

let truncations name hash bytes counter =
  let n = Bytes.length bytes in
  for len = 0 to n - 1 do
    incr counter;
    let seg = F.seg_of_bytes (Bytes.sub bytes 0 len) in
    expect_rejected name (Printf.sprintf "truncation at %d" len) hash seg
  done

let mutations name hash idx ~probe bytes ~muts counter gen_checked =
  let n = Bytes.length bytes in
  (* targeted header positions first, then a budgeted random sweep *)
  let positions =
    [ 0; 1; 4; 5; 8; 9; 15; 16; 19; 20; 23; 24; 39; 40; 52; 80; 95 ]
    @ List.init muts (fun _ -> rand_int n)
  in
  List.iter
    (fun pos ->
      if pos < n then begin
        incr counter;
        let x = 1 + rand_int 255 in
        let b = Bytes.copy bytes in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
        let seg = F.seg_of_bytes b in
        let what = Printf.sprintf "mutation at byte %d (xor %#x)" pos x in
        if pos >= 8 && pos < 16 then begin
          (* generation word: outside the CRC by design — content is
             intact, so validation passes and answers stay correct *)
          incr gen_checked;
          (match F.validate ~expect_hash:hash seg with
          | () -> ()
          | exception e ->
              fail "%s: %s (gen word) rejected: %s" name what
                (Printexc.to_string e));
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if Q.get_equiv_acc idx a b <> F.get_equiv_acc seg a b then
                    fail "%s: %s (gen word) changed an answer" name what)
                probe)
            probe
        end
        else expect_rejected name what hash seg
      end)
    positions

(* ------------------------------------------------------------------ *)
(* 4: seqlock torture — writer rebuild storm vs generation-checked     *)
(* readers over one shared mapping                                     *)
(* ------------------------------------------------------------------ *)

let torture () =
  let w =
    match Workloads.Registry.find "wc" with
    | Some w -> w
    | None -> failwith "wc workload missing"
  in
  let entries = entries_of_workload w in
  let e = List.find (fun e -> items_of_entry e <> []) entries in
  let idx0 = Q.build e in
  let hash = Digest.string "torture" in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlix-torture-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let pub = Hli_server.Shm.publish ~dir ~name:"torture" ~hash idx0 in
  (* an alternate index with extra generated items: every answer for
     the ORIGINAL items is invariant, but the segment bytes (offsets,
     item table) genuinely move between rebuilds *)
  let items = items_of_entry e in
  let like = List.hd items in
  let mt = M.start e in
  for i = 0 to 19 do
    ignore (M.gen_item mt ~like ~line:(5 + i))
  done;
  let _entry', idx1 = M.commit mt in
  let probes = Array.of_list (take 12 items) in
  let np = Array.length probes in
  let oracle =
    Array.init np (fun i ->
        Array.init np (fun j ->
            ( Q.get_equiv_acc idx0 probes.(i) probes.(j),
              Q.get_call_acc idx0 ~call:probes.(i) ~mem:probes.(j) )))
  in
  let stop = Atomic.make false in
  let total_retries = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let checked = Atomic.make 0 in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let fd = Unix.openfile pub.Hli_server.Shm.p_path [ Unix.O_RDWR ] 0 in
            let map () =
              let len = (Unix.fstat fd).Unix.st_size in
              Bigarray.array1_of_genarray
                (Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout
                   true [| len |])
            in
            let seg = ref (map ()) in
            while not (Atomic.get stop) do
              (* one seqlock-protected batch over the whole probe set:
                 a wide window so preemption lands inside it *)
              let g1 = F.generation !seg in
              if g1 land 1 = 1 then Atomic.incr total_retries
              else begin
                (if F.total_len !seg > Bigarray.Array1.dim !seg then
                   seg := map ());
                match
                  let ok = ref true in
                  for i = 0 to np - 1 do
                    for j = 0 to np - 1 do
                      let we, wc = oracle.(i).(j) in
                      if
                        F.get_equiv_acc !seg probes.(i) probes.(j) <> we
                        || F.get_call_acc !seg ~call:probes.(i)
                             ~mem:probes.(j)
                           <> wc
                      then ok := false
                    done
                  done;
                  !ok
                with
                | ok ->
                    let g2 = F.generation !seg in
                    if g1 <> g2 then Atomic.incr total_retries
                    else begin
                      Atomic.incr checked;
                      if not ok then Atomic.incr mismatches
                    end
                | exception F.Torn -> Atomic.incr total_retries
              end
            done;
            Unix.close fd))
  in
  (* writer: rebuild storm alternating the two indexes *)
  let t0 = Unix.gettimeofday () in
  let flips = ref 0 in
  while
    Unix.gettimeofday () -. t0 < 20.0
    && not (Atomic.get total_retries > 0 && Atomic.get checked > 250)
  do
    Hli_server.Shm.rebuild pub ~hash (if !flips land 1 = 0 then idx1 else idx0);
    incr flips
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Hli_server.Shm.close pub;
  (try Unix.unlink pub.Hli_server.Shm.p_path with Unix.Unix_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if Atomic.get mismatches > 0 then
    fail "torture: %d settled answers mismatched the oracle"
      (Atomic.get mismatches);
  if Atomic.get total_retries = 0 then
    fail "torture: generation retries = 0 — the race was never exercised";
  if Atomic.get checked = 0 then fail "torture: no settled reads at all";
  Printf.printf
    "torture: %d rebuilds, %d settled batches, %d generation retries, 0 \
     mismatches\n"
    !flips (Atomic.get checked)
    (Atomic.get total_retries)

(* ------------------------------------------------------------------ *)

let () =
  let truncs = ref 0 and muts_done = ref 0 and gen_checked = ref 0 in
  let nworkloads = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      incr nworkloads;
      let name = w.Workloads.Workload.name in
      let entries = entries_of_workload w in
      let wire = S.to_bytes { T.entries } in
      let hash = Digest.string wire in
      List.iter
        (fun (e : T.hli_entry) ->
          let idx = Q.build e in
          let bytes = F.build ~content_hash:hash idx in
          let seg = F.seg_of_bytes bytes in
          (match F.validate ~expect_hash:hash seg with
          | () -> ()
          | exception ex ->
              fail "%s/%s: fresh segment failed validation: %s" name
                e.T.unit_name (Printexc.to_string ex));
          (* a wrong expected hash must be precise E0634 *)
          (match F.validate ~expect_hash:(Digest.string "other") seg with
          | () -> fail "%s/%s: wrong hash accepted" name e.T.unit_name
          | exception S.Corrupt c ->
              if c.S.c_code <> "E0634" then
                fail "%s/%s: wrong hash rejected as %s, want E0634" name
                  e.T.unit_name c.S.c_code);
          differential name e idx seg)
        entries;
      (* sweeps on the first (largest-coverage) entry per workload *)
      match entries with
      | e :: _ ->
          let idx = Q.build e in
          let bytes = F.build ~content_hash:hash idx in
          truncations name hash bytes truncs;
          mutations name hash idx
            ~probe:(take 4 (items_of_entry e))
            bytes
            ~muts:(max 32 (iters / 2))
            muts_done gen_checked
      | [] -> ())
    Workloads.Registry.all;
  torture ();
  if !failures > 0 then begin
    Printf.eprintf "flatindex: %d failure(s) (FUZZ_SEED=%d FUZZ_ITERS=%d)\n"
      !failures seed iters;
    exit 1
  end;
  Printf.printf
    "flatindex: %d workloads: differential ok, %d truncations, %d mutations \
     (%d in the gen word) rejected/ignored correctly\n"
    !nworkloads !truncs !muts_done !gen_checked
