(* Tests for the harness domain pool: ordering determinism, the
   sequential ~jobs:1 reference path, exception propagation, nested
   (re-entrant) batches, and end-to-end parallel-vs-sequential
   equality of a table row. *)

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let ints = Alcotest.(list int)

let pool_tests =
  [
    Alcotest.test_case "map preserves input order" `Quick (fun () ->
        with_pool 4 (fun p ->
            let xs = List.init 100 Fun.id in
            let expected = List.map (fun i -> i * i) xs in
            Alcotest.check ints "ordered" expected
              (Pool.map p (fun i -> i * i) xs)));
    Alcotest.test_case "map is deterministic across runs" `Quick (fun () ->
        with_pool 4 (fun p ->
            let xs = List.init 64 Fun.id in
            let f i = (i * 7919) mod 101 in
            let r1 = Pool.map p f xs in
            let r2 = Pool.map p f xs in
            Alcotest.check ints "same" r1 r2;
            Alcotest.check ints "matches List.map" (List.map f xs) r1));
    Alcotest.test_case "jobs=1 runs strictly sequentially" `Quick (fun () ->
        with_pool 1 (fun p ->
            Alcotest.(check int) "no extra domains" 1 (Pool.size p);
            let order = ref [] in
            let r =
              Pool.map p
                (fun i ->
                  order := i :: !order;
                  i + 1)
                [ 3; 1; 4; 1; 5 ]
            in
            Alcotest.check ints "results" [ 4; 2; 5; 2; 6 ] r;
            (* side effects happened left-to-right *)
            Alcotest.check ints "evaluation order" [ 3; 1; 4; 1; 5 ]
              (List.rev !order)));
    Alcotest.test_case "jobs=1 equals parallel results" `Quick (fun () ->
        let xs = List.init 50 (fun i -> i - 25) in
        let f i = (i * i) - (3 * i) in
        let seq = with_pool 1 (fun p -> Pool.map p f xs) in
        let par = with_pool 6 (fun p -> Pool.map p f xs) in
        Alcotest.check ints "equal" seq par);
    Alcotest.test_case "exception propagates to the submitter" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            Alcotest.check_raises "boom" (Failure "boom") (fun () ->
                ignore
                  (Pool.map p
                     (fun i -> if i = 37 then failwith "boom" else i)
                     (List.init 64 Fun.id)))));
    Alcotest.test_case "first exception (submission order) wins" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            Alcotest.check_raises "first" (Failure "first") (fun () ->
                ignore
                  (Pool.map p
                     (fun i ->
                       if i = 5 then failwith "first"
                       else if i = 40 then failwith "second"
                       else i)
                     (List.init 64 Fun.id)))));
    Alcotest.test_case "siblings still run when one raises" `Quick (fun () ->
        with_pool 4 (fun p ->
            let ran = Atomic.make 0 in
            (try
               ignore
                 (Pool.map p
                    (fun i ->
                      Atomic.incr ran;
                      if i = 0 then failwith "boom")
                    (List.init 32 Fun.id))
             with Failure _ -> ());
            Alcotest.(check int) "all ran" 32 (Atomic.get ran)));
    Alcotest.test_case "nested maps do not deadlock" `Quick (fun () ->
        with_pool 2 (fun p ->
            let outer =
              Pool.map p
                (fun i ->
                  let inner =
                    Pool.map p (fun j -> (i * 10) + j)
                      (List.init 4 Fun.id)
                  in
                  List.fold_left ( + ) 0 inner)
                (List.init 4 Fun.id)
            in
            Alcotest.check ints "sums" [ 6; 46; 86; 126 ] outer));
    Alcotest.test_case "map_opt None is List.map" `Quick (fun () ->
        Alcotest.check ints "plain" [ 2; 4; 6 ]
          (Pool.map_opt None (fun i -> 2 * i) [ 1; 2; 3 ]));
    Alcotest.test_case "HLI_JOBS drives default_jobs" `Quick (fun () ->
        Unix.putenv "HLI_JOBS" "3";
        Alcotest.(check int) "env wins" 3 (Pool.default_jobs ());
        Unix.putenv "HLI_JOBS" "not-a-number";
        Alcotest.(check bool) "garbage falls back" true
          (Pool.default_jobs () >= 1);
        Unix.putenv "HLI_JOBS" "");
    Alcotest.test_case "malformed HLI_JOBS warns with E1012" `Quick (fun () ->
        Fun.protect
          ~finally:(fun () -> Unix.putenv "HLI_JOBS" "")
          (fun () ->
            Unix.putenv "HLI_JOBS" "not-a-number";
            let jobs, warning = Pool.default_jobs_checked () in
            Alcotest.(check bool) "usable fallback" true (jobs >= 1);
            (match warning with
            | Some d ->
                Alcotest.(check string) "code" "E1012" d.Diagnostics.code;
                Alcotest.(check bool)
                  "warning severity" true
                  (d.Diagnostics.severity = Diagnostics.Warning)
            | None -> Alcotest.fail "expected an E1012 warning");
            Unix.putenv "HLI_JOBS" "0";
            (match Pool.default_jobs_checked () with
            | _, Some d ->
                Alcotest.(check string) "zero warns" "E1012" d.Diagnostics.code
            | _, None -> Alcotest.fail "HLI_JOBS=0 should warn");
            (* well-formed and empty (unset-by-convention) stay silent *)
            Unix.putenv "HLI_JOBS" "4";
            Alcotest.(check bool)
              "valid is silent" true
              (Pool.default_jobs_checked () = (4, None));
            Unix.putenv "HLI_JOBS" "";
            Alcotest.(check bool)
              "empty is silent" true
              (snd (Pool.default_jobs_checked ()) = None)));
    Alcotest.test_case "submit runs fire-and-forget jobs" `Quick (fun () ->
        (* jobs=1: inline, synchronous *)
        with_pool 1 (fun p ->
            let hit = ref false in
            Pool.submit p (fun () -> hit := true);
            Alcotest.(check bool) "inline" true !hit);
        (* jobs>1: all jobs run, and a raising job kills neither the
           worker nor its siblings *)
        with_pool 4 (fun p ->
            let ran = Atomic.make 0 in
            let done_ = Atomic.make 0 in
            for i = 0 to 31 do
              Pool.submit p (fun () ->
                  Atomic.incr ran;
                  Atomic.incr done_;
                  if i mod 7 = 0 then failwith "dropped")
            done;
            let deadline = Unix.gettimeofday () +. 5.0 in
            while Atomic.get done_ < 32 && Unix.gettimeofday () < deadline do
              Domain.cpu_relax ()
            done;
            Alcotest.(check int) "all ran" 32 (Atomic.get ran)));
  ]

(* The acceptance property at workload granularity: a row computed
   through a pool renders byte-identically to the sequential one. *)
let integration_tests =
  [
    Alcotest.test_case "parallel row == sequential row" `Slow (fun () ->
        let w = Option.get (Workloads.Registry.find "wc") in
        let seq = Harness.Tables.run_workload w in
        let par =
          with_pool 4 (fun p -> Harness.Tables.run_workload ~pool:p w)
        in
        Alcotest.(check string)
          "table1" (Harness.Tables.table1_row seq)
          (Harness.Tables.table1_row par);
        Alcotest.(check string)
          "table2" (Harness.Tables.table2_row seq)
          (Harness.Tables.table2_row par));
    Alcotest.test_case "out-of-fuel yields an annotated partial row" `Quick
      (fun () ->
        let w = Option.get (Workloads.Registry.find "wc") in
        let r = Harness.Tables.run_workload ~fuel:100 w in
        (match r.Harness.Tables.failure with
        | Some "out of fuel" -> ()
        | Some other -> Alcotest.failf "unexpected annotation: %s" other
        | None -> Alcotest.fail "expected a failure annotation");
        (* compile-side columns survive; the printed row is annotated *)
        Alcotest.(check bool) "hli bytes" true (r.Harness.Tables.hli_bytes > 0);
        let line = Harness.Tables.table2_row r in
        Alcotest.(check bool) "annotated" true
          (String.length line > 0
          && String.length line <> String.length ""
          &&
          let has_sub sub =
            let n = String.length line and m = String.length sub in
            let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
            go 0
          in
          has_sub "out of fuel"));
  ]

let () =
  Alcotest.run "pool"
    [ ("pool", pool_tests); ("integration", integration_tests) ]
