(* Tests for the harness domain pool: ordering determinism, the
   sequential ~jobs:1 reference path, exception propagation, nested
   (re-entrant) batches, and end-to-end parallel-vs-sequential
   equality of a table row. *)

let with_pool jobs f =
  let p = Harness.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Harness.Pool.shutdown p) (fun () -> f p)

let ints = Alcotest.(list int)

let pool_tests =
  [
    Alcotest.test_case "map preserves input order" `Quick (fun () ->
        with_pool 4 (fun p ->
            let xs = List.init 100 Fun.id in
            let expected = List.map (fun i -> i * i) xs in
            Alcotest.check ints "ordered" expected
              (Harness.Pool.map p (fun i -> i * i) xs)));
    Alcotest.test_case "map is deterministic across runs" `Quick (fun () ->
        with_pool 4 (fun p ->
            let xs = List.init 64 Fun.id in
            let f i = (i * 7919) mod 101 in
            let r1 = Harness.Pool.map p f xs in
            let r2 = Harness.Pool.map p f xs in
            Alcotest.check ints "same" r1 r2;
            Alcotest.check ints "matches List.map" (List.map f xs) r1));
    Alcotest.test_case "jobs=1 runs strictly sequentially" `Quick (fun () ->
        with_pool 1 (fun p ->
            Alcotest.(check int) "no extra domains" 1 (Harness.Pool.size p);
            let order = ref [] in
            let r =
              Harness.Pool.map p
                (fun i ->
                  order := i :: !order;
                  i + 1)
                [ 3; 1; 4; 1; 5 ]
            in
            Alcotest.check ints "results" [ 4; 2; 5; 2; 6 ] r;
            (* side effects happened left-to-right *)
            Alcotest.check ints "evaluation order" [ 3; 1; 4; 1; 5 ]
              (List.rev !order)));
    Alcotest.test_case "jobs=1 equals parallel results" `Quick (fun () ->
        let xs = List.init 50 (fun i -> i - 25) in
        let f i = (i * i) - (3 * i) in
        let seq = with_pool 1 (fun p -> Harness.Pool.map p f xs) in
        let par = with_pool 6 (fun p -> Harness.Pool.map p f xs) in
        Alcotest.check ints "equal" seq par);
    Alcotest.test_case "exception propagates to the submitter" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            Alcotest.check_raises "boom" (Failure "boom") (fun () ->
                ignore
                  (Harness.Pool.map p
                     (fun i -> if i = 37 then failwith "boom" else i)
                     (List.init 64 Fun.id)))));
    Alcotest.test_case "first exception (submission order) wins" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            Alcotest.check_raises "first" (Failure "first") (fun () ->
                ignore
                  (Harness.Pool.map p
                     (fun i ->
                       if i = 5 then failwith "first"
                       else if i = 40 then failwith "second"
                       else i)
                     (List.init 64 Fun.id)))));
    Alcotest.test_case "siblings still run when one raises" `Quick (fun () ->
        with_pool 4 (fun p ->
            let ran = Atomic.make 0 in
            (try
               ignore
                 (Harness.Pool.map p
                    (fun i ->
                      Atomic.incr ran;
                      if i = 0 then failwith "boom")
                    (List.init 32 Fun.id))
             with Failure _ -> ());
            Alcotest.(check int) "all ran" 32 (Atomic.get ran)));
    Alcotest.test_case "nested maps do not deadlock" `Quick (fun () ->
        with_pool 2 (fun p ->
            let outer =
              Harness.Pool.map p
                (fun i ->
                  let inner =
                    Harness.Pool.map p (fun j -> (i * 10) + j)
                      (List.init 4 Fun.id)
                  in
                  List.fold_left ( + ) 0 inner)
                (List.init 4 Fun.id)
            in
            Alcotest.check ints "sums" [ 6; 46; 86; 126 ] outer));
    Alcotest.test_case "map_opt None is List.map" `Quick (fun () ->
        Alcotest.check ints "plain" [ 2; 4; 6 ]
          (Harness.Pool.map_opt None (fun i -> 2 * i) [ 1; 2; 3 ]));
    Alcotest.test_case "HLI_JOBS drives default_jobs" `Quick (fun () ->
        Unix.putenv "HLI_JOBS" "3";
        Alcotest.(check int) "env wins" 3 (Harness.Pool.default_jobs ());
        Unix.putenv "HLI_JOBS" "not-a-number";
        Alcotest.(check bool) "garbage falls back" true
          (Harness.Pool.default_jobs () >= 1);
        Unix.putenv "HLI_JOBS" "");
  ]

(* The acceptance property at workload granularity: a row computed
   through a pool renders byte-identically to the sequential one. *)
let integration_tests =
  [
    Alcotest.test_case "parallel row == sequential row" `Slow (fun () ->
        let w = Option.get (Workloads.Registry.find "wc") in
        let seq = Harness.Tables.run_workload w in
        let par =
          with_pool 4 (fun p -> Harness.Tables.run_workload ~pool:p w)
        in
        Alcotest.(check string)
          "table1" (Harness.Tables.table1_row seq)
          (Harness.Tables.table1_row par);
        Alcotest.(check string)
          "table2" (Harness.Tables.table2_row seq)
          (Harness.Tables.table2_row par));
    Alcotest.test_case "out-of-fuel yields an annotated partial row" `Quick
      (fun () ->
        let w = Option.get (Workloads.Registry.find "wc") in
        let r = Harness.Tables.run_workload ~fuel:100 w in
        (match r.Harness.Tables.failure with
        | Some "out of fuel" -> ()
        | Some other -> Alcotest.failf "unexpected annotation: %s" other
        | None -> Alcotest.fail "expected a failure annotation");
        (* compile-side columns survive; the printed row is annotated *)
        Alcotest.(check bool) "hli bytes" true (r.Harness.Tables.hli_bytes > 0);
        let line = Harness.Tables.table2_row r in
        Alcotest.(check bool) "annotated" true
          (String.length line > 0
          && String.length line <> String.length ""
          &&
          let has_sub sub =
            let n = String.length line and m = String.length sub in
            let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
            go 0
          in
          has_sub "out of fuel"));
  ]

let () =
  Alcotest.run "pool"
    [ ("pool", pool_tests); ("integration", integration_tests) ]
