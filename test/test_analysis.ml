(* Tests for the analysis library: affine forms, dependence tests,
   sections, points-to, call graph, REF/MOD. *)

open Srclang
open Analysis

let sym name = Symbol.fresh ~name ~ty:Types.Tint ~storage:Symbol.Local

(* fixed symbols shared by the affine tests *)
let i = sym "i"
let j = sym "j"
let k = sym "k"

let aff_testable = Alcotest.testable Affine.pp Affine.equal

(* ------------------------------------------------------------------ *)
(* Affine forms                                                        *)
(* ------------------------------------------------------------------ *)

let affine_tests =
  [
    Alcotest.test_case "add/sub cancel" `Quick (fun () ->
        let f = Affine.add (Affine.var i) (Affine.const 3) in
        let g = Affine.sub f (Affine.var i) in
        Alcotest.check aff_testable "3" (Affine.const 3) g);
    Alcotest.test_case "scale distributes" `Quick (fun () ->
        let f = Affine.add (Affine.var ~coeff:2 i) (Affine.const 5) in
        let g = Affine.scale 3 f in
        Alcotest.(check int) "coeff" 6 (Affine.coeff_of g i);
        Alcotest.(check (option int)) "const" None (Affine.const_value g));
    Alcotest.test_case "subst" `Quick (fun () ->
        (* (2i + j)[i := k + 1] = 2k + j + 2 *)
        let f = Affine.add (Affine.var ~coeff:2 i) (Affine.var j) in
        let r = Affine.add (Affine.var k) (Affine.const 1) in
        let g = Affine.subst f i r in
        Alcotest.(check int) "k coeff" 2 (Affine.coeff_of g k);
        Alcotest.(check int) "j coeff" 1 (Affine.coeff_of g j);
        Alcotest.(check int) "i coeff" 0 (Affine.coeff_of g i));
    Alcotest.test_case "of_expr affine" `Quick (fun () ->
        let p = Typecheck.program_of_string "int f(int i, int j) { return 2*i + j - 3; }" in
        let f = Option.get (Tast.find_func p "f") in
        match f.Tast.body with
        | [ { Tast.sdesc = Tast.Sreturn (Some e); _ } ] -> (
            match Affine.of_expr e with
            | Some a ->
                Alcotest.(check int) "const" (-3) a.Affine.const;
                Alcotest.(check int) "terms" 2 (List.length a.Affine.terms)
            | None -> Alcotest.fail "not affine")
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "of_expr rejects product" `Quick (fun () ->
        let p = Typecheck.program_of_string "int f(int i, int j) { return i * j; }" in
        let f = Option.get (Tast.find_func p "f") in
        match f.Tast.body with
        | [ { Tast.sdesc = Tast.Sreturn (Some e); _ } ] ->
            Alcotest.(check bool) "none" true (Affine.of_expr e = None)
        | _ -> Alcotest.fail "shape");
  ]

(* qcheck: algebraic laws of affine arithmetic *)
let gen_affine =
  QCheck.Gen.(
    int_range (-20) 20 >>= fun c ->
    int_range (-5) 5 >>= fun ci ->
    int_range (-5) 5 >>= fun cj ->
    return
      (Affine.add
         (Affine.add (Affine.var ~coeff:ci i) (Affine.var ~coeff:cj j))
         (Affine.const c)))

let arb_affine = QCheck.make ~print:Affine.to_string gen_affine

let affine_props =
  [
    QCheck.Test.make ~count:300 ~name:"a - a = 0" arb_affine (fun a ->
        Affine.equal (Affine.sub a a) Affine.zero);
    QCheck.Test.make ~count:300 ~name:"add commutes"
      (QCheck.pair arb_affine arb_affine) (fun (a, b) ->
        Affine.equal (Affine.add a b) (Affine.add b a));
    QCheck.Test.make ~count:300 ~name:"neg involutive" arb_affine (fun a ->
        Affine.equal (Affine.neg (Affine.neg a)) a);
    QCheck.Test.make ~count:300 ~name:"scale 2 = a + a" arb_affine (fun a ->
        Affine.equal (Affine.scale 2 a) (Affine.add a a));
  ]

(* ------------------------------------------------------------------ *)
(* Dependence tests                                                    *)
(* ------------------------------------------------------------------ *)

let loop_ctx_of r =
  match r.Frontir.Region.kind with
  | Frontir.Region.Loop_region { ivar = Some iv; lower; upper; inclusive; step } ->
      let aff e = Option.bind e Affine.of_expr in
      Some
        (Deptest.loop_ctx ~ivar:iv ?lower:(aff lower) ?upper:(aff upper)
           ~inclusive ?step ())
  | _ -> None

(* helper: extract the single loop's context and the memory accesses of a
   one-function program *)
let carried_of src =
  let p = Typecheck.program_of_string src in
  let f = List.hd p.Tast.funcs in
  let region = Frontir.Region.of_func f in
  let items, _ = Frontir.Itemgen.of_func f in
  let loop = List.hd region.Frontir.Region.subs in
  let ctx = Option.get (loop_ctx_of loop) in
  let accesses =
    List.filter_map Frontir.Itemgen.access_of items.Frontir.Itemgen.items
  in
  (ctx, accesses)

let outcome_testable = Alcotest.testable Deptest.pp_outcome (fun a b -> a = b)

let deptest_tests =
  [
    Alcotest.test_case "strong SIV distance 1" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[100];\nvoid f() { int i; for (i = 1; i < 100; i++) { a[i] = a[i-1]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "d=1"
              (Deptest.Dependent { distance = Some 1; definite = true })
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "self access independent across iterations" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[100];\nint b[100];\nvoid f() { int i; for (i = 0; i < 100; i++) { a[i] = b[i]; } }"
        in
        match accs with
        | [ _load; store ] ->
            Alcotest.check outcome_testable "independent" Deptest.Independent
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store store)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "ZIV distinct constants" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[100];\nvoid f() { int i; for (i = 0; i < 100; i++) { a[3] = a[7]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "independent" Deptest.Independent
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "scalar distance 1" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int s;\nvoid f() { int i; for (i = 0; i < 9; i++) { s = s + 1; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "d=1"
              (Deptest.Dependent { distance = Some 1; definite = true })
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "GCD independent (stride 2)" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[200];\nvoid f() { int i; for (i = 0; i < 50; i++) { a[2*i] = a[2*i+1]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "independent" Deptest.Independent
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "distance beyond trip count" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[100];\nvoid f() { int i; for (i = 0; i < 5; i++) { a[i] = a[i+50]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "independent" Deptest.Independent
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) load store)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "symbolic invariant offset cancels" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[200];\nvoid f(int n) { int i; for (i = 0; i < 50; i++) { a[i+n] = a[i+n-2]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "d=2"
              (Deptest.Dependent { distance = Some 2; definite = true })
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "non-invariant symbol is maybe" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[200];\nvoid f(int n) { int i; for (i = 0; i < 50; i++) { a[i+n] = a[i+n-2]; } }"
        in
        match accs with
        | [ load; store ] -> (
            match Deptest.carried ~ctx ~invariant:(fun _ -> false) store load with
            | Deptest.Dependent { distance = None; _ } -> ()
            | o -> Alcotest.failf "expected maybe, got %a" Deptest.pp_outcome o)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "step 2 halves the distance" `Quick (fun () ->
        let ctx, accs =
          carried_of
            "int a[200];\nvoid f() { int i; for (i = 0; i < 100; i = i + 2) { a[i] = a[i-4]; } }"
        in
        match accs with
        | [ load; store ] ->
            Alcotest.check outcome_testable "d=2 iterations"
              (Deptest.Dependent { distance = Some 2; definite = true })
              (Deptest.carried ~ctx ~invariant:(fun _ -> true) store load)
        | _ -> Alcotest.fail "accesses");
    Alcotest.test_case "same_location exact and different" `Quick (fun () ->
        let _, accs =
          carried_of
            "int a[100];\nvoid f() { int i; for (i = 1; i < 99; i++) { a[i] = a[i] + a[i-1]; } }"
        in
        match accs with
        | [ l1; l2; st ] ->
            Alcotest.(check bool) "a[i] ~ a[i]" true
              (Deptest.same_location ~invariant:(fun _ -> true) l1 st = Deptest.Same);
            Alcotest.(check bool) "a[i] vs a[i-1]" true
              (Deptest.same_location ~invariant:(fun _ -> true) l2 st = Deptest.Different)
        | _ -> Alcotest.fail "accesses");
  ]

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)
(* ------------------------------------------------------------------ *)

let section_tests =
  [
    Alcotest.test_case "widen over ivar" `Quick (fun () ->
        let s = Section.of_point [ Affine.var i ] in
        let w =
          Section.widen_over ~ivar:i ~iv_lo:(Some (Affine.const 1))
            ~iv_hi:(Some (Affine.const 9)) s
        in
        Alcotest.(check bool) "same as [1..9]" true
          (Section.same w
             (Section.Dims
                [ { Section.lo = Some (Affine.const 1); hi = Some (Affine.const 9) } ])));
    Alcotest.test_case "widen flips for negative coeff" `Quick (fun () ->
        let s = Section.of_point [ Affine.var ~coeff:(-1) i ] in
        let w =
          Section.widen_over ~ivar:i ~iv_lo:(Some (Affine.const 1))
            ~iv_hi:(Some (Affine.const 9)) s
        in
        Alcotest.(check bool) "[-9..-1]" true
          (Section.same w
             (Section.Dims
                [ { Section.lo = Some (Affine.const (-9)); hi = Some (Affine.const (-1)) } ])));
    Alcotest.test_case "disjoint points" `Quick (fun () ->
        let a = Section.of_point [ Affine.const 3 ] in
        let b = Section.of_point [ Affine.const 4 ] in
        Alcotest.(check bool) "3 vs 4" true (Section.disjoint a b);
        Alcotest.(check bool) "3 vs 3" false (Section.disjoint a a));
    Alcotest.test_case "join covers both" `Quick (fun () ->
        let a = Section.of_point [ Affine.const 3 ] in
        let b = Section.of_point [ Affine.const 7 ] in
        let j = Section.join a b in
        Alcotest.(check bool) "covers 5" false
          (Section.disjoint j (Section.of_point [ Affine.const 5 ])));
    Alcotest.test_case "whole never disjoint" `Quick (fun () ->
        Alcotest.(check bool) "whole" false
          (Section.disjoint Section.Whole (Section.of_point [ Affine.const 0 ])));
    Alcotest.test_case "symbolic bounds only comparable when const diff" `Quick
      (fun () ->
        let a = Section.of_point [ Affine.var i ] in
        let b = Section.of_point [ Affine.add (Affine.var i) (Affine.const 2) ] in
        let c = Section.of_point [ Affine.var j ] in
        Alcotest.(check bool) "i vs i+2 disjoint" true (Section.disjoint a b);
        Alcotest.(check bool) "i vs j unknown" false (Section.disjoint a c));
  ]

(* ------------------------------------------------------------------ *)
(* Points-to and REF/MOD                                               *)
(* ------------------------------------------------------------------ *)

let interproc_src =
  {|
int a[10];
int b[10];
int g;

void writer(int *p)
{
  p[0] = 1;
}

int reader(int *q)
{
  return q[1];
}

void caller()
{
  writer(a);
  g = reader(b);
}

int pure_leaf(int x)
{
  return x * 2;
}

int main()
{
  caller();
  return pure_leaf(g);
}
|}

let pointsto_tests =
  [
    Alcotest.test_case "params point at arguments" `Quick (fun () ->
        let p = Typecheck.program_of_string interproc_src in
        let pt = Pointsto.analyze p in
        let writer = Option.get (Tast.find_func p "writer") in
        let param = List.hd writer.Tast.params in
        let a_sym = fst (List.nth p.Tast.globals 0) in
        let b_sym = fst (List.nth p.Tast.globals 1) in
        Alcotest.(check bool) "p -> a" true (Pointsto.may_point_at pt param a_sym);
        Alcotest.(check bool) "p not-> b" false (Pointsto.may_point_at pt param b_sym));
    Alcotest.test_case "refmod distinguishes ref and mod" `Quick (fun () ->
        let p = Typecheck.program_of_string interproc_src in
        let pt = Pointsto.analyze p in
        let rm = Refmod.analyze p pt in
        let a_sym = fst (List.nth p.Tast.globals 0) in
        let b_sym = fst (List.nth p.Tast.globals 1) in
        let g_sym = fst (List.nth p.Tast.globals 2) in
        Alcotest.(check bool) "writer mods a" true
          (Refmod.call_acc rm ~callee:"writer" a_sym = Refmod.Acc_mod);
        Alcotest.(check bool) "reader refs b" true
          (Refmod.call_acc rm ~callee:"reader" b_sym = Refmod.Acc_ref);
        Alcotest.(check bool) "pure_leaf touches nothing" true
          (Refmod.call_acc rm ~callee:"pure_leaf" g_sym = Refmod.Acc_none);
        Alcotest.(check bool) "caller mods a transitively" true
          (Refmod.call_acc rm ~callee:"caller" a_sym = Refmod.Acc_mod);
        Alcotest.(check bool) "caller touches g" true
          (match Refmod.call_acc rm ~callee:"caller" g_sym with
          | Refmod.Acc_mod | Refmod.Acc_refmod -> true
          | _ -> false));
    Alcotest.test_case "builtins are effect-free" `Quick (fun () ->
        let p = Typecheck.program_of_string interproc_src in
        let pt = Pointsto.analyze p in
        let rm = Refmod.analyze p pt in
        let g_sym = fst (List.nth p.Tast.globals 2) in
        Alcotest.(check bool) "sqrt" true
          (Refmod.call_acc rm ~callee:"sqrt" g_sym = Refmod.Acc_none));
    Alcotest.test_case "callgraph" `Quick (fun () ->
        let p = Typecheck.program_of_string interproc_src in
        let cg = Callgraph.build p in
        Alcotest.(check (list string)) "caller callees" [ "reader"; "writer" ]
          (Callgraph.callees cg "caller");
        Alcotest.(check bool) "main reaches writer" true
          (Callgraph.reaches cg ~from:"main" ~target:"writer");
        Alcotest.(check bool) "no recursion" false (Callgraph.is_recursive cg "main"));
    Alcotest.test_case "recursion detected and refmod converges" `Quick (fun () ->
        let src =
          "int g;\nint fact(int n) { g = g + 1; if (n < 2) { return 1; } return n * fact(n - 1); }\nint main() { return fact(5); }"
        in
        let p = Typecheck.program_of_string src in
        let cg = Callgraph.build p in
        Alcotest.(check bool) "recursive" true (Callgraph.is_recursive cg "fact");
        let pt = Pointsto.analyze p in
        let rm = Refmod.analyze p pt in
        let g_sym = fst (List.hd p.Tast.globals) in
        Alcotest.(check bool) "fact mods g" true
          (match Refmod.call_acc rm ~callee:"fact" g_sym with
          | Refmod.Acc_mod | Refmod.Acc_refmod -> true
          | _ -> false));
    Alcotest.test_case "escaped pointers go conservative" `Quick (fun () ->
        let src =
          "int a[4];\nint *box[2];\nvoid f() { box[0] = a; }\nint g() { int *p; p = box[0]; return p[0]; }\nint main() { f(); return g(); }"
        in
        let p = Typecheck.program_of_string src in
        let pt = Pointsto.analyze p in
        let gf = Option.get (Tast.find_func p "g") in
        let psym = List.hd gf.Tast.locals in
        Alcotest.(check bool) "p is universe" true
          (Pointsto.points_to pt psym = Pointsto.Universe));
  ]

(* ------------------------------------------------------------------ *)
(* Interprocedural fingerprints (the HLI cache key)                    *)
(* ------------------------------------------------------------------ *)

(* leaf's REF/MOD skeleton is a global write; caller calls leaf; lone
   is unrelated.  The edits below probe exactly the propagation rules
   the per-function cache relies on. *)
let fp_src body =
  "int g;\n"
  ^ Printf.sprintf "int leaf(int n) { %s }\n" body
  ^ "int caller(int n) { return leaf(n + 1); }\n"
  ^ "int lone(int n) { return n * 3; }\n"
  ^ "int main() { return caller(2) + lone(1); }\n"

let fps_of body =
  Fingerprint.of_program (Typecheck.program_of_string (fp_src body))

let fingerprint_tests =
  [
    Alcotest.test_case "deterministic across identical programs" `Quick
      (fun () ->
        let a = fps_of "g = n; return n + 1;" in
        let b = fps_of "g = n; return n + 1;" in
        List.iter
          (fun f ->
            Alcotest.(check string)
              f
              (Fingerprint.func_hex a f)
              (Fingerprint.func_hex b f))
          [ "leaf"; "caller"; "lone"; "main" ]);
    Alcotest.test_case "constant edit stays intraprocedural" `Quick (fun () ->
        (* a body tweak that leaves leaf's access skeleton alone must
           invalidate leaf and nothing else — this is the fan-in bound
           the edit-storm numbers depend on *)
        let a = fps_of "g = n; return n + 1;" in
        let b = fps_of "g = n; return n + 2;" in
        Alcotest.(check bool) "leaf changes" false
          (Fingerprint.func_hex a "leaf" = Fingerprint.func_hex b "leaf");
        Alcotest.(check string) "caller stable"
          (Fingerprint.func_hex a "caller")
          (Fingerprint.func_hex b "caller");
        Alcotest.(check string) "lone stable"
          (Fingerprint.func_hex a "lone")
          (Fingerprint.func_hex b "lone"));
    Alcotest.test_case "callee REF/MOD edit invalidates the caller" `Quick
      (fun () ->
        (* dropping the global write changes leaf's direct REF/MOD
           skeleton, which feeds every transitive caller's key *)
        let a = fps_of "g = n; return n + 1;" in
        let b = fps_of "return n + 1;" in
        Alcotest.(check bool) "leaf changes" false
          (Fingerprint.func_hex a "leaf" = Fingerprint.func_hex b "leaf");
        Alcotest.(check bool) "caller changes" false
          (Fingerprint.func_hex a "caller" = Fingerprint.func_hex b "caller");
        Alcotest.(check bool) "main changes transitively" false
          (Fingerprint.func_hex a "main" = Fingerprint.func_hex b "main");
        Alcotest.(check string) "lone stable"
          (Fingerprint.func_hex a "lone")
          (Fingerprint.func_hex b "lone"));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("affine", affine_tests);
      ("affine-props", List.map QCheck_alcotest.to_alcotest affine_props);
      ("deptest", deptest_tests);
      ("section", section_tests);
      ("interprocedural", pointsto_tests);
      ("fingerprint", fingerprint_tests);
    ]
