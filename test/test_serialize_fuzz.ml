(* Fuzz/differential harness for the HLI serializer.

   Three corpora, one rule: the reader must either return a value or
   raise [Serialize.Corrupt] — any other exception, or accepting bytes
   it cannot faithfully re-encode, is a bug.

   1. Random HLI files from the shared generator (test/testgen.ml),
      including the Some-0 boundary values only HLI2 represents: the
      HLI2 pair must round-trip exactly, and the legacy HLI1
      writer/reader pair must agree with [Testgen.v1_normalize] (the
      differential oracle).
   2. Truncations of every workload's encoded file (both containers) at
      every prefix length: a strict prefix can never decode.
   3. Deterministic single-byte mutations of the same files: a mutant
      that decodes must re-encode to a value equal to itself, and the
      structural validator must not crash on it.

   Runs under dune runtest with a modest default budget; the @fuzz
   alias (pulled into @smoke) raises it via FUZZ_ITERS.  FUZZ_SEED
   varies the deterministic stream. *)

module T = Hli_core.Tables

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let iters = env_int "FUZZ_ITERS" 100
let seed = env_int "FUZZ_SEED" 0x484c49 (* "HLI" *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      prerr_endline ("FAIL: " ^ m))
    fmt

(* deterministic 48-bit LCG so a failing run reproduces exactly *)
let rng = ref seed

let rand_int bound =
  rng := ((!rng * 25214903917) + 11) land 0xffffffffffff;
  (!rng lsr 16) mod bound

type outcome = Decoded of T.hli_file | Rejected | Crashed of exn

let decode b =
  match Hli_core.Serialize.of_bytes b with
  | f -> Decoded f
  | exception Hli_core.Serialize.Corrupt _ -> Rejected
  | exception e -> Crashed e

(* phase 1: randomized generation, both encoders *)
let random_files () =
  let rand = Random.State.make [| seed |] in
  let n = max 50 iters in
  for _ = 1 to n do
    let f = QCheck.Gen.generate1 ~rand (Testgen.gen_file ~allow_zero:true ()) in
    (match decode (Hli_core.Serialize.to_bytes f) with
    | Decoded f' when f' = f -> ()
    | Decoded _ -> fail "random file: HLI2 round-trip mismatch"
    | Rejected -> fail "random file: HLI2 encoding rejected"
    | Crashed e ->
        fail "random file: decoder crashed: %s" (Printexc.to_string e));
    match
      Hli_core.Serialize.of_bytes_v1 (Hli_core.Serialize.to_bytes_v1 f)
    with
    | f1 ->
        if f1 <> Testgen.v1_normalize f then
          fail "random file: HLI1 pair disagrees with v1_normalize"
    | exception e ->
        fail "random file: HLI1 pair crashed: %s" (Printexc.to_string e)
  done;
  Printf.printf "fuzz: %d random files (HLI2 round-trip + HLI1 oracle)\n" n

(* phases 2+3: truncation and mutation over the workload corpus *)
let corpus () =
  List.map
    (fun w ->
      let prog =
        Srclang.Typecheck.program_of_string w.Workloads.Workload.source
      in
      let entries = Harness.Pipeline.build_hli_entries prog in
      (w.Workloads.Workload.name, { T.entries }))
    Workloads.Registry.all

let truncations name bytes counter =
  for len = 0 to String.length bytes - 1 do
    incr counter;
    match decode (String.sub bytes 0 len) with
    | Rejected -> ()
    | Decoded _ -> fail "%s: strict prefix of length %d decoded" name len
    | Crashed e ->
        fail "%s: truncation at %d crashed: %s" name len (Printexc.to_string e)
  done

let mutations name bytes ~muts ~survivors =
  let n = String.length bytes in
  for _ = 1 to iters do
    incr muts;
    let pos = rand_int n in
    let x = 1 + rand_int 255 in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
    match decode (Bytes.to_string b) with
    | Rejected -> ()
    | Crashed e ->
        fail "%s: mutation at byte %d (xor %#x) crashed: %s" name pos x
          (Printexc.to_string e)
    | Decoded f' -> (
        incr survivors;
        (match decode (Hli_core.Serialize.to_bytes f') with
        | Decoded f'' when f'' = f' -> ()
        | _ -> fail "%s: surviving mutant at byte %d fails re-round-trip" name pos);
        match Hli_core.Validate.check_file f' with
        | _issues -> () (* issues are fine; crashing is not *)
        | exception e ->
            fail "%s: validator crashed on mutant: %s" name
              (Printexc.to_string e))
  done

let () =
  random_files ();
  let corpus = corpus () in
  let truncs = ref 0 and muts = ref 0 and survivors = ref 0 in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun (tag, bytes) ->
          let name = name ^ "/" ^ tag in
          truncations name bytes truncs;
          mutations name bytes ~muts ~survivors)
        [
          ("hli2", Hli_core.Serialize.to_bytes f);
          ("hli1", Hli_core.Serialize.to_bytes_v1 f);
        ])
    corpus;
  Printf.printf
    "fuzz: %d workloads x {HLI2,HLI1}: %d truncations, %d mutations (%d \
     mutants decoded, all re-round-tripped)\n"
    (List.length corpus) !truncs !muts !survivors;
  if !failures > 0 then begin
    Printf.eprintf "fuzz: %d failure(s) (FUZZ_SEED=%d FUZZ_ITERS=%d)\n"
      !failures seed iters;
    exit 1
  end
