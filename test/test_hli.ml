(* Tests for the HLI core: tables, queries, serialization (with a random
   file generator), and the maintenance API including unrolling. *)

module T = Hli_core.Tables

(* the paper's Figure 2 program builds our reference entry *)
let fig2 =
  {|
int a[10];
int b[10];
int sum;

void foo()
{
  int i;
  int j;
  for (i = 0; i < 10; i++)
  {
    a[i] = 0;
  }
  for (i = 0; i < 10; i++)
  {
    sum = sum + a[i] + b[0];
    for (j = 1; j < 10; j++)
    {
      b[j] = b[j] + b[j-1];
      a[i] = a[i] + b[j];
      sum = sum + 1;
    }
  }
}
|}

let fig2_entry () =
  let prog = Srclang.Typecheck.program_of_string fig2 in
  let ctx = Hligen.Tblconst.make_context prog in
  let f = List.hd prog.Srclang.Tast.funcs in
  let entry, _, _ = Hligen.Tblconst.build_unit ctx f in
  entry

let query_tests =
  [
    Alcotest.test_case "region structure" `Quick (fun () ->
        let e = fig2_entry () in
        Alcotest.(check int) "4 regions" 4 (List.length e.T.regions);
        let r1 = List.hd e.T.regions in
        Alcotest.(check bool) "unit first" true (r1.T.rtype = T.Region_unit);
        Alcotest.(check int) "unit has 3 classes" 3 (List.length r1.T.eq_classes));
    Alcotest.test_case "equiv: b[j] vs b[j-1] proven distinct" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        (* items 6 and 7 are the loads of b[j] and b[j-1] *)
        Alcotest.(check bool) "none" true
          (Hli_core.Query.get_equiv_acc idx 6 7 = Hli_core.Query.Equiv_none);
        Alcotest.(check bool) "symmetric" true
          (Hli_core.Query.get_equiv_acc idx 7 6 = Hli_core.Query.Equiv_none));
    Alcotest.test_case "equiv: b[j] load vs store same class" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        match Hli_core.Query.get_equiv_acc idx 6 8 with
        | Hli_core.Query.Equiv_same _ -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "equiv across regions via subclasses" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        (* item 1 (a[i] store, first loop) vs item 9 (a[i] load, j loop):
           common region is the unit; same a[0..9] class (maybe) *)
        match Hli_core.Query.get_equiv_acc idx 1 9 with
        | Hli_core.Query.Equiv_same T.Maybe -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "alias: b[0] vs b[0..9] in region 3" `Quick (fun () ->
        let e = fig2_entry () in
        let idx = Hli_core.Query.build e in
        (* item 4 is the b[0] load; item 6 the b[j] load.  In region 3
           their classes are distinct but aliased. *)
        match Hli_core.Query.get_equiv_acc idx 4 6 with
        | Hli_core.Query.Equiv_alias -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "lcdd b[j] -> b[j-1] distance 1" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        match Hli_core.Query.get_lcdd idx ~rid:4 8 7 with
        | Some [ l ] ->
            Alcotest.(check (option int)) "distance" (Some 1) l.T.lcdd_distance;
            Alcotest.(check bool) "definite" true (l.T.lcdd_dep = T.Dep_definite)
        | Some l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)
        | None -> Alcotest.fail "items not represented");
    Alcotest.test_case "line table lookups" `Quick (fun () ->
        let e = fig2_entry () in
        let idx = Hli_core.Query.build e in
        Alcotest.(check (option int)) "item 6 on line 19" (Some 19)
          (Hli_core.Query.line_of_item idx 6);
        Alcotest.(check int) "3 items on line 19" 3
          (List.length (T.items_of_line e 19));
        Alcotest.(check (option bool)) "item 8 is store" (Some true)
          (Option.map (fun a -> a = T.Acc_store) (Hli_core.Query.access_type idx 8)));
    Alcotest.test_case "unknown items answer unknown" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        Alcotest.(check bool) "unknown" true
          (Hli_core.Query.get_equiv_acc idx 999 6 = Hli_core.Query.Equiv_unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let gen_file : T.hli_file QCheck.Gen.t =
  QCheck.Gen.(
    let gen_acc = oneofl [ T.Acc_load; T.Acc_store; T.Acc_call ] in
    let gen_item =
      int_range 1 500 >>= fun id ->
      gen_acc >>= fun acc -> return { T.item_id = id; acc }
    in
    let gen_line =
      int_range 1 200 >>= fun line_no ->
      list_size (int_range 0 5) gen_item >>= fun items ->
      return { T.line_no; items }
    in
    let gen_member =
      oneof
        [
          map (fun i -> T.Member_item i) (int_range 1 500);
          (int_range 1 20 >>= fun sub_region ->
           int_range 1 500 >>= fun cls ->
           return (T.Member_subclass { sub_region; cls }));
        ]
    in
    let gen_class =
      int_range 1 500 >>= fun class_id ->
      oneofl [ T.Definitely; T.Maybe ] >>= fun kind ->
      string_size ~gen:(char_range 'a' 'z') (int_range 0 8) >>= fun desc ->
      list_size (int_range 0 4) gen_member >>= fun members ->
      return { T.class_id; kind; desc; members }
    in
    let gen_lcdd =
      int_range 1 500 >>= fun lcdd_src ->
      int_range 1 500 >>= fun lcdd_dst ->
      oneofl [ T.Dep_definite; T.Dep_maybe ] >>= fun lcdd_dep ->
      opt (int_range 1 64) >>= fun lcdd_distance ->
      return { T.lcdd_src; lcdd_dst; lcdd_dep; lcdd_distance }
    in
    let gen_callrefmod =
      oneof
        [
          map (fun i -> T.Key_call_item i) (int_range 1 500);
          map (fun r -> T.Key_sub_region r) (int_range 1 20);
        ]
      >>= fun call_key ->
      bool >>= fun refmod_all ->
      list_size (int_range 0 3) (int_range 1 500) >>= fun ref_classes ->
      list_size (int_range 0 3) (int_range 1 500) >>= fun mod_classes ->
      return { T.call_key; ref_classes; mod_classes; refmod_all }
    in
    let gen_region =
      int_range 1 20 >>= fun region_id ->
      oneofl [ T.Region_unit; T.Region_loop ] >>= fun rtype ->
      opt (int_range 1 20) >>= fun parent ->
      int_range 1 100 >>= fun first_line ->
      int_range 1 100 >>= fun d ->
      list_size (int_range 0 4) gen_class >>= fun eq_classes ->
      list_size (int_range 0 2)
        (list_size (int_range 2 4) (int_range 1 500)
        >>= fun alias_classes -> return { T.alias_classes })
      >>= fun aliases ->
      list_size (int_range 0 4) gen_lcdd >>= fun lcdds ->
      list_size (int_range 0 2) gen_callrefmod >>= fun callrefmods ->
      return
        {
          T.region_id;
          rtype;
          parent;
          first_line;
          last_line = first_line + d;
          eq_classes;
          aliases;
          lcdds;
          callrefmods;
        }
    in
    let gen_entry =
      string_size ~gen:(char_range 'a' 'z') (int_range 1 10) >>= fun unit_name ->
      list_size (int_range 0 8) gen_line >>= fun line_table ->
      list_size (int_range 0 4) gen_region >>= fun regions ->
      return { T.unit_name; line_table; regions }
    in
    list_size (int_range 0 4) gen_entry >>= fun entries -> return { T.entries })

let serialize_props =
  [
    QCheck.Test.make ~count:200 ~name:"binary round-trip"
      (QCheck.make gen_file) (fun f ->
        Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f);
    QCheck.Test.make ~count:100 ~name:"size is deterministic"
      (QCheck.make gen_file) (fun f ->
        Hli_core.Serialize.size_bytes f = Hli_core.Serialize.size_bytes f);
  ]

let serialize_tests =
  [
    Alcotest.test_case "bad magic rejected" `Quick (fun () ->
        match Hli_core.Serialize.of_bytes "NOPE" with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted garbage");
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let f = { T.entries = [ fig2_entry () ] } in
        let b = Hli_core.Serialize.to_bytes f in
        let cut = String.sub b 0 (String.length b - 3) in
        match Hli_core.Serialize.of_bytes cut with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted truncated");
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let f = { T.entries = [] } in
        let b = Hli_core.Serialize.to_bytes f ^ "x" in
        match Hli_core.Serialize.of_bytes b with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted trailing");
    Alcotest.test_case "figure-2 entry round-trips" `Quick (fun () ->
        let f = { T.entries = [ fig2_entry () ] } in
        Alcotest.(check bool) "eq" true
          (Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f));
  ]

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let maintain_tests =
  [
    Alcotest.test_case "delete_item removes everywhere" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        Hli_core.Maintain.delete_item m 6;
        let e', idx = Hli_core.Maintain.commit m in
        Alcotest.(check bool) "gone from lines" true
          (not (List.mem 6 (T.all_items e')));
        Alcotest.(check (option int)) "no region" None
          (Hli_core.Query.get_region_of_item idx 6));
    Alcotest.test_case "deleting a whole class cascades" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        (* item 7 (b[j-1]) is alone in its class; deleting it must drop
           the class and the LCDD entry pointing at it *)
        Hli_core.Maintain.delete_item m 7;
        let e', _ = Hli_core.Maintain.commit m in
        let r4 = Option.get (T.find_region e' 4) in
        Alcotest.(check int) "3 classes left" 3 (List.length r4.T.eq_classes);
        Alcotest.(check bool) "no dangling lcdd" true
          (List.for_all
             (fun l ->
               List.exists (fun c -> c.T.class_id = l.T.lcdd_src) r4.T.eq_classes
               && List.exists (fun c -> c.T.class_id = l.T.lcdd_dst) r4.T.eq_classes)
             r4.T.lcdds));
    Alcotest.test_case "gen_item inherits class and line" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        let nid = Hli_core.Maintain.gen_item m ~like:6 ~line:19 in
        let e', idx = Hli_core.Maintain.commit m in
        Alcotest.(check bool) "fresh id" true (nid > 6);
        Alcotest.(check (option int)) "same region"
          (Hli_core.Query.get_region_of_item idx 6)
          (Hli_core.Query.get_region_of_item idx nid);
        Alcotest.(check bool) "same class" true
          (Hli_core.Query.get_equiv_acc idx 6 nid <> Hli_core.Query.Equiv_none);
        Alcotest.(check bool) "on line" true
          (List.exists (fun it -> it.T.item_id = nid) (T.items_of_line e' 19)));
    Alcotest.test_case "move_item_outward" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        (* move the a[i] load (item 9) from region 4 out to region 3 *)
        Alcotest.(check bool) "moved" true
          (Hli_core.Maintain.move_item_outward m ~item:9 ~target_rid:3);
        let _, idx = Hli_core.Maintain.commit m in
        Alcotest.(check (option int)) "now in region 3" (Some 3)
          (Hli_core.Query.get_region_of_item idx 9));
    Alcotest.test_case "unroll remaps LCDD (Figure 6)" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        let r = Hli_core.Maintain.unroll m ~rid:4 ~factor:2 in
        let e', idx = Hli_core.Maintain.commit m in
        (* every original item gained one copy *)
        List.iter
          (fun (_, arr) -> Alcotest.(check int) "2 copies" 2 (Array.length arr))
          r.Hli_core.Maintain.copies;
        let r4 = Option.get (T.find_region e' 4) in
        (* the b[j] -> b[j-1] d=1 dependence becomes: copy0 -> copy1
           same-iteration alias, and copy1 -> copy0 at distance 1 *)
        Alcotest.(check bool) "has wrapped lcdd d=1" true
          (List.exists
             (fun l -> l.T.lcdd_distance = Some 1 && l.T.lcdd_dep = T.Dep_definite)
             r4.T.lcdds);
        Alcotest.(check bool) "has new alias entry" true (r4.T.aliases <> []);
        (* copies of one item stay equivalent to their original class *)
        let orig, arr = List.hd r.Hli_core.Maintain.copies in
        Alcotest.(check bool) "copy equiv known" true
          (Hli_core.Query.get_equiv_acc idx orig arr.(1)
          <> Hli_core.Query.Equiv_unknown));
    Alcotest.test_case "unroll factor 1 rejected" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        match Hli_core.Maintain.unroll m ~rid:4 ~factor:1 with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check string) "code" "E0701" d.Diagnostics.code
        | _ -> Alcotest.fail "accepted factor 1");
  ]

(* ------------------------------------------------------------------ *)
(* Duplicate item detection                                            *)
(* ------------------------------------------------------------------ *)

(* A malformed entry a buggy front end could emit: item 5 appears on
   two lines of the line table, and item 7 is a member of two
   equivalence classes. *)
let dup_entry () =
  let item id acc = { T.item_id = id; acc } in
  {
    T.unit_name = "dup";
    line_table =
      [
        { T.line_no = 1; items = [ item 5 T.Acc_load; item 6 T.Acc_store ] };
        { T.line_no = 2; items = [ item 5 T.Acc_load; item 7 T.Acc_load ] };
      ];
    regions =
      [
        {
          T.region_id = 1;
          rtype = T.Region_unit;
          parent = None;
          first_line = 1;
          last_line = 2;
          eq_classes =
            [
              {
                T.class_id = 100;
                kind = T.Definitely;
                members = [ T.Member_item 6; T.Member_item 7 ];
                desc = "x";
              };
              {
                T.class_id = 101;
                kind = T.Maybe;
                members = [ T.Member_item 7 ];
                desc = "y";
              };
            ];
          aliases = [];
          lcdds = [];
          callrefmods = [];
        };
      ];
  }

let duplicate_tests =
  [
    Alcotest.test_case "duplicated ids are reported sorted, once each" `Quick
      (fun () ->
        let idx = Hli_core.Query.build (dup_entry ()) in
        Alcotest.(check (list int))
          "dups" [ 5; 7 ]
          (Hli_core.Query.duplicate_items idx));
    Alcotest.test_case "well-formed entries report none" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        Alcotest.(check (list int))
          "no dups" []
          (Hli_core.Query.duplicate_items idx));
  ]

let () =
  Alcotest.run "hli"
    [
      ("query", query_tests);
      ("serialize", serialize_tests);
      ("serialize-props", List.map QCheck_alcotest.to_alcotest serialize_props);
      ("maintain", maintain_tests);
      ("duplicates", duplicate_tests);
    ]
