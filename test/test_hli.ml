(* Tests for the HLI core: tables, queries, serialization (with a random
   file generator), and the maintenance API including unrolling. *)

module T = Hli_core.Tables

(* the paper's Figure 2 program builds our reference entry *)
let fig2 =
  {|
int a[10];
int b[10];
int sum;

void foo()
{
  int i;
  int j;
  for (i = 0; i < 10; i++)
  {
    a[i] = 0;
  }
  for (i = 0; i < 10; i++)
  {
    sum = sum + a[i] + b[0];
    for (j = 1; j < 10; j++)
    {
      b[j] = b[j] + b[j-1];
      a[i] = a[i] + b[j];
      sum = sum + 1;
    }
  }
}
|}

let fig2_entry () =
  let prog = Srclang.Typecheck.program_of_string fig2 in
  let ctx = Hligen.Tblconst.make_context prog in
  let f = List.hd prog.Srclang.Tast.funcs in
  let entry, _, _ = Hligen.Tblconst.build_unit ctx f in
  entry

let query_tests =
  [
    Alcotest.test_case "region structure" `Quick (fun () ->
        let e = fig2_entry () in
        Alcotest.(check int) "4 regions" 4 (List.length e.T.regions);
        let r1 = List.hd e.T.regions in
        Alcotest.(check bool) "unit first" true (r1.T.rtype = T.Region_unit);
        Alcotest.(check int) "unit has 3 classes" 3 (List.length r1.T.eq_classes));
    Alcotest.test_case "equiv: b[j] vs b[j-1] proven distinct" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        (* items 6 and 7 are the loads of b[j] and b[j-1] *)
        Alcotest.(check bool) "none" true
          (Hli_core.Query.get_equiv_acc idx 6 7 = Hli_core.Query.Equiv_none);
        Alcotest.(check bool) "symmetric" true
          (Hli_core.Query.get_equiv_acc idx 7 6 = Hli_core.Query.Equiv_none));
    Alcotest.test_case "equiv: b[j] load vs store same class" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        match Hli_core.Query.get_equiv_acc idx 6 8 with
        | Hli_core.Query.Equiv_same _ -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "equiv across regions via subclasses" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        (* item 1 (a[i] store, first loop) vs item 9 (a[i] load, j loop):
           common region is the unit; same a[0..9] class (maybe) *)
        match Hli_core.Query.get_equiv_acc idx 1 9 with
        | Hli_core.Query.Equiv_same T.Maybe -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "alias: b[0] vs b[0..9] in region 3" `Quick (fun () ->
        let e = fig2_entry () in
        let idx = Hli_core.Query.build e in
        (* item 4 is the b[0] load; item 6 the b[j] load.  In region 3
           their classes are distinct but aliased. *)
        match Hli_core.Query.get_equiv_acc idx 4 6 with
        | Hli_core.Query.Equiv_alias -> ()
        | r -> Alcotest.failf "got %a" Hli_core.Query.pp_equiv_result r);
    Alcotest.test_case "lcdd b[j] -> b[j-1] distance 1" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        match Hli_core.Query.get_lcdd idx ~rid:4 8 7 with
        | Some [ l ] ->
            Alcotest.(check (option int)) "distance" (Some 1) l.T.lcdd_distance;
            Alcotest.(check bool) "definite" true (l.T.lcdd_dep = T.Dep_definite)
        | Some l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)
        | None -> Alcotest.fail "items not represented");
    Alcotest.test_case "line table lookups" `Quick (fun () ->
        let e = fig2_entry () in
        let idx = Hli_core.Query.build e in
        Alcotest.(check (option int)) "item 6 on line 19" (Some 19)
          (Hli_core.Query.line_of_item idx 6);
        Alcotest.(check int) "3 items on line 19" 3
          (List.length (T.items_of_line e 19));
        Alcotest.(check (option bool)) "item 8 is store" (Some true)
          (Option.map (fun a -> a = T.Acc_store) (Hli_core.Query.access_type idx 8)));
    Alcotest.test_case "unknown items answer unknown" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        Alcotest.(check bool) "unknown" true
          (Hli_core.Query.get_equiv_acc idx 999 6 = Hli_core.Query.Equiv_unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* random files come from the shared generator (test/testgen.ml), which
   the fuzz harness also uses; ~allow_zero adds the Some 0 boundary
   values only HLI2 can represent *)
let serialize_props =
  [
    QCheck.Test.make ~count:200 ~name:"HLI2 round-trip (incl. Some 0)"
      (QCheck.make (Testgen.gen_file ~allow_zero:true ())) (fun f ->
        Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f);
    QCheck.Test.make ~count:200 ~name:"HLI1 pair agrees with v1_normalize"
      (QCheck.make (Testgen.gen_file ~allow_zero:true ())) (fun f ->
        Hli_core.Serialize.of_bytes_v1 (Hli_core.Serialize.to_bytes_v1 f)
        = Testgen.v1_normalize f);
    QCheck.Test.make ~count:100 ~name:"size is deterministic"
      (QCheck.make (Testgen.gen_file ())) (fun f ->
        Hli_core.Serialize.size_bytes f = Hli_core.Serialize.size_bytes f);
  ]

let serialize_tests =
  [
    Alcotest.test_case "bad magic rejected" `Quick (fun () ->
        match Hli_core.Serialize.of_bytes "NOPE" with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted garbage");
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let f = { T.entries = [ fig2_entry () ] } in
        let b = Hli_core.Serialize.to_bytes f in
        let cut = String.sub b 0 (String.length b - 3) in
        match Hli_core.Serialize.of_bytes cut with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted truncated");
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let f = { T.entries = [] } in
        let b = Hli_core.Serialize.to_bytes f ^ "x" in
        match Hli_core.Serialize.of_bytes b with
        | exception Hli_core.Serialize.Corrupt _ -> ()
        | _ -> Alcotest.fail "accepted trailing");
    Alcotest.test_case "figure-2 entry round-trips" `Quick (fun () ->
        let f = { T.entries = [ fig2_entry () ] } in
        Alcotest.(check bool) "eq" true
          (Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f));
  ]

(* ------------------------------------------------------------------ *)
(* Text rendering (hli_dump output)                                    *)
(* ------------------------------------------------------------------ *)

let dump_tests =
  [
    Alcotest.test_case "per-mille probabilities render compactly" `Quick
      (fun () ->
        List.iter
          (fun (p, s) ->
            Alcotest.(check string)
              (Printf.sprintf "p=%d" p)
              s
              (Hli_core.Tables.prob_to_string p))
          [
            (0, "0.0");
            (1000, "1.0");
            (500, "0.5");
            (850, "0.85");
            (730, "0.73");
            (125, "0.125");
            (30, "0.03");
            (7, "0.007");
          ]);
    Alcotest.test_case "golden text dump with probability sections" `Quick
      (fun () ->
        (* exactly what [hli_dump --entry u] prints for an HLI3 entry:
           alias sets and maybe-LCDDs carry p=..., sections without a
           probability render as before (HLI2 dumps are unchanged) *)
        let e =
          {
            T.unit_name = "u";
            line_table =
              [ { T.line_no = 3; items = [ { T.item_id = 1; acc = T.Acc_store } ] } ];
            regions =
              [
                {
                  T.region_id = 1;
                  rtype = T.Region_loop;
                  parent = None;
                  first_line = 1;
                  last_line = 9;
                  eq_classes =
                    [
                      {
                        T.class_id = 1;
                        kind = T.Maybe;
                        desc = "a";
                        members = [ T.Member_item 1 ];
                      };
                    ];
                  aliases =
                    [
                      { T.alias_classes = [ 1; 2 ]; alias_prob = Some 850 };
                      { T.alias_classes = [ 2; 3 ]; alias_prob = None };
                    ];
                  lcdds =
                    [
                      {
                        T.lcdd_src = 1;
                        lcdd_dst = 1;
                        lcdd_dep = T.Dep_maybe;
                        lcdd_distance = Some 4;
                        lcdd_prob = Some 500;
                      };
                      {
                        T.lcdd_src = 1;
                        lcdd_dst = 2;
                        lcdd_dep = T.Dep_definite;
                        lcdd_distance = None;
                        lcdd_prob = None;
                      };
                    ];
                  callrefmods = [];
                };
              ];
          }
        in
        let expected =
          String.concat "\n"
            [
              "unit u:";
              "  1 lines, 1 items, 1 regions";
              "  region 1 (loop, lines 1-9):";
              "    classes: c1? \"a\" = {i1}";
              "    aliases: {1, 2, p=0.85}; {2, 3}";
              "    lcdd: c1 -> c1 (maybe, d=4, p=0.5)";
              "          c1 -> c2 (definite, d=?)";
              "    calls: 0 entries";
              "";
            ]
        in
        Alcotest.(check string) "dump" expected
          (Hli_core.Serialize.to_text { T.entries = [ e ] }));
  ]

(* ------------------------------------------------------------------ *)
(* Serialization boundaries (HLI2 hardening)                           *)
(* ------------------------------------------------------------------ *)

let corrupt_code f =
  match f () with
  | exception Hli_core.Serialize.Corrupt c -> c.Hli_core.Serialize.c_code
  | _ -> "no-error"

(* a minimal region, for building targeted fixtures *)
let region ?(parent = None) ?(lcdds = []) id =
  {
    T.region_id = id;
    rtype = T.Region_loop;
    parent;
    first_line = 1;
    last_line = 9;
    eq_classes = [];
    aliases = [];
    lcdds;
    callrefmods = [];
  }

let boundary_tests =
  [
    Alcotest.test_case "varint boundaries round-trip" `Quick (fun () ->
        List.iter
          (fun v ->
            let b = Buffer.create 10 in
            Hli_core.Serialize.put_varint b v;
            let cur = { Hli_core.Serialize.data = Buffer.contents b; pos = 0 } in
            Alcotest.(check int)
              (Printf.sprintf "varint %d" v)
              v
              (Hli_core.Serialize.get_varint cur);
            Alcotest.(check int) "fully consumed" (Buffer.length b)
              cur.Hli_core.Serialize.pos)
          [ 0; 1; 127; 128; 16383; 16384; (1 lsl 62) - 1 ]);
    Alcotest.test_case "oversized varints rejected as E0612" `Quick (fun () ->
        (* 9 continuation bytes: may not loop to a 10th *)
        Alcotest.(check string) "all-continuation" "E0612"
          (corrupt_code (fun () ->
               Hli_core.Serialize.get_varint
                 { Hli_core.Serialize.data = String.make 9 '\xff'; pos = 0 }));
        (* 9th byte would push the value past 62 bits *)
        Alcotest.(check string) "63rd bit" "E0612"
          (corrupt_code (fun () ->
               Hli_core.Serialize.get_varint
                 {
                   Hli_core.Serialize.data = String.make 8 '\xff' ^ "\x40";
                   pos = 0;
                 }));
        (* ... while the largest representable value still decodes *)
        Alcotest.(check int) "max_int ok" max_int
          (Hli_core.Serialize.get_varint
             { Hli_core.Serialize.data = String.make 8 '\xff' ^ "\x3f"; pos = 0 }));
    Alcotest.test_case "absurd list/entry counts rejected as E0613" `Quick
      (fun () ->
        let huge =
          let b = Buffer.create 16 in
          Hli_core.Serialize.put_varint b max_int;
          Buffer.contents b
        in
        Alcotest.(check string) "HLI1" "E0613"
          (corrupt_code (fun () ->
               Hli_core.Serialize.of_bytes ("HLI1" ^ huge)));
        Alcotest.(check string) "HLI2" "E0613"
          (corrupt_code (fun () ->
               Hli_core.Serialize.of_bytes ("HLI2" ^ huge))));
    Alcotest.test_case "callrefmod bool tag > 1 rejected as E0614" `Quick
      (fun () ->
        let b = Buffer.create 8 in
        Buffer.add_char b '\000' (* Key_call_item *);
        Hli_core.Serialize.put_varint b 5;
        Buffer.add_char b '\002' (* invalid refmod_all *);
        Alcotest.(check string) "tag 2" "E0614"
          (corrupt_code (fun () ->
               Hli_core.Serialize.get_callrefmod
                 { Hli_core.Serialize.data = Buffer.contents b; pos = 0 })));
    Alcotest.test_case "CRC32 protects entry payloads (E0615)" `Quick (fun () ->
        let f = { T.entries = [ fig2_entry () ] } in
        let b = Bytes.of_string (Hli_core.Serialize.to_bytes f) in
        (* flip one payload bit, well past the magic + counts *)
        Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 0x10));
        Alcotest.(check string) "flip" "E0615"
          (corrupt_code (fun () ->
               Hli_core.Serialize.of_bytes (Bytes.to_string b))));
    Alcotest.test_case "Some 0 survives HLI2, collapses in HLI1" `Quick
      (fun () ->
        let lcdd =
          {
            T.lcdd_src = 1;
            lcdd_dst = 1;
            lcdd_dep = T.Dep_definite;
            lcdd_distance = Some 0;
            lcdd_prob = None;
          }
        in
        let f =
          {
            T.entries =
              [
                {
                  T.unit_name = "z";
                  line_table = [];
                  regions =
                    [ region 1; region ~parent:(Some 0) ~lcdds:[ lcdd ] 2 ];
                };
              ];
          }
        in
        (* lossless through the HLI2 container *)
        let f2 = Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) in
        Alcotest.(check bool) "HLI2 preserves" true (f = f2);
        let r2 = List.nth (List.hd f2.T.entries).T.regions 1 in
        Alcotest.(check (option int)) "parent Some 0" (Some 0) r2.T.parent;
        Alcotest.(check (option int)) "distance Some 0" (Some 0)
          (List.hd r2.T.lcdds).T.lcdd_distance;
        (* the legacy payload encoding documents its loss *)
        let f1 =
          Hli_core.Serialize.of_bytes_v1 (Hli_core.Serialize.to_bytes_v1 f)
        in
        let r1 = List.nth (List.hd f1.T.entries).T.regions 1 in
        Alcotest.(check (option int)) "HLI1 parent collapses" None r1.T.parent;
        Alcotest.(check (option int)) "HLI1 distance collapses" None
          (List.hd r1.T.lcdds).T.lcdd_distance);
    Alcotest.test_case "empty file and empty tables round-trip" `Quick
      (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check bool) "rt" true
              (Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f))
          [
            { T.entries = [] };
            { T.entries = [ { T.unit_name = "e"; line_table = []; regions = [] } ] };
            { T.entries = [ { T.unit_name = "r"; line_table = []; regions = [ region 1 ] } ] };
          ]);
    Alcotest.test_case "golden HLI1 fixture decodes (reader compat)" `Quick
      (fun () ->
        (* one unit, one line with one store, one region with a class,
           an unknown-distance LCDD and a sub-region REF/MOD entry —
           byte-for-byte the output of the original HLI1 writer *)
        let golden =
          "HLI1" ^ "\x01" (* 1 entry *) ^ "\x01u" (* unit name *)
          ^ "\x01\x03\x01\x01\x01" (* line 3: item 1, store *)
          ^ "\x01" (* 1 region *)
          ^ "\x01\x00\x00\x01\x09" (* id 1, unit, no parent, lines 1-9 *)
          ^ "\x01\x02\x01\x01a\x01\x00\x01" (* class 2, maybe, "a", item 1 *)
          ^ "\x00" (* no aliases *)
          ^ "\x01\x02\x02\x01\x00" (* lcdd 2->2 maybe, distance None *)
          ^ "\x01\x01\x04\x01\x01\x02\x00" (* refmod: sub-region 4, all,
                                              ref [2], mod [] *)
        in
        let expected =
          {
            T.entries =
              [
                {
                  T.unit_name = "u";
                  line_table =
                    [
                      {
                        T.line_no = 3;
                        items = [ { T.item_id = 1; acc = T.Acc_store } ];
                      };
                    ];
                  regions =
                    [
                      {
                        T.region_id = 1;
                        rtype = T.Region_unit;
                        parent = None;
                        first_line = 1;
                        last_line = 9;
                        eq_classes =
                          [
                            {
                              T.class_id = 2;
                              kind = T.Maybe;
                              desc = "a";
                              members = [ T.Member_item 1 ];
                            };
                          ];
                        aliases = [];
                        lcdds =
                          [
                            {
                              T.lcdd_src = 2;
                              lcdd_dst = 2;
                              lcdd_dep = T.Dep_maybe;
                              lcdd_distance = None;
                              lcdd_prob = None;
                            };
                          ];
                        callrefmods =
                          [
                            {
                              T.call_key = T.Key_sub_region 4;
                              ref_classes = [ 2 ];
                              mod_classes = [];
                              refmod_all = true;
                            };
                          ];
                      };
                    ];
                };
              ];
          }
        in
        (* the magic dispatch routes old files to the legacy reader *)
        Alcotest.(check bool) "decodes" true
          (Hli_core.Serialize.of_bytes golden = expected);
        (* and the legacy writer still emits exactly these bytes *)
        Alcotest.(check string) "writer stable" golden
          (Hli_core.Serialize.to_bytes_v1 expected));
    Alcotest.test_case "post-unroll=4 entry round-trips losslessly" `Quick
      (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        ignore (Hli_core.Maintain.unroll m ~rid:4 ~factor:4);
        let e', _ = Hli_core.Maintain.commit m in
        let f = { T.entries = [ e' ] } in
        Alcotest.(check bool) "HLI2 round-trip" true
          (Hli_core.Serialize.of_bytes (Hli_core.Serialize.to_bytes f) = f);
        Alcotest.(check bool) "HLI1 size still defined" true
          (Hli_core.Serialize.size_bytes f > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let maintain_tests =
  [
    Alcotest.test_case "delete_item removes everywhere" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        Hli_core.Maintain.delete_item m 6;
        let e', idx = Hli_core.Maintain.commit m in
        Alcotest.(check bool) "gone from lines" true
          (not (List.mem 6 (T.all_items e')));
        Alcotest.(check (option int)) "no region" None
          (Hli_core.Query.get_region_of_item idx 6));
    Alcotest.test_case "deleting a whole class cascades" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        (* item 7 (b[j-1]) is alone in its class; deleting it must drop
           the class and the LCDD entry pointing at it *)
        Hli_core.Maintain.delete_item m 7;
        let e', _ = Hli_core.Maintain.commit m in
        let r4 = Option.get (T.find_region e' 4) in
        Alcotest.(check int) "3 classes left" 3 (List.length r4.T.eq_classes);
        Alcotest.(check bool) "no dangling lcdd" true
          (List.for_all
             (fun l ->
               List.exists (fun c -> c.T.class_id = l.T.lcdd_src) r4.T.eq_classes
               && List.exists (fun c -> c.T.class_id = l.T.lcdd_dst) r4.T.eq_classes)
             r4.T.lcdds));
    Alcotest.test_case "gen_item inherits class and line" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        let nid = Hli_core.Maintain.gen_item m ~like:6 ~line:19 in
        let e', idx = Hli_core.Maintain.commit m in
        Alcotest.(check bool) "fresh id" true (nid > 6);
        Alcotest.(check (option int)) "same region"
          (Hli_core.Query.get_region_of_item idx 6)
          (Hli_core.Query.get_region_of_item idx nid);
        Alcotest.(check bool) "same class" true
          (Hli_core.Query.get_equiv_acc idx 6 nid <> Hli_core.Query.Equiv_none);
        Alcotest.(check bool) "on line" true
          (List.exists (fun it -> it.T.item_id = nid) (T.items_of_line e' 19)));
    Alcotest.test_case "move_item_outward" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        (* move the a[i] load (item 9) from region 4 out to region 3 *)
        Alcotest.(check bool) "moved" true
          (Hli_core.Maintain.move_item_outward m ~item:9 ~target_rid:3);
        let _, idx = Hli_core.Maintain.commit m in
        Alcotest.(check (option int)) "now in region 3" (Some 3)
          (Hli_core.Query.get_region_of_item idx 9));
    Alcotest.test_case "unroll remaps LCDD (Figure 6)" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        let r = Hli_core.Maintain.unroll m ~rid:4 ~factor:2 in
        let e', idx = Hli_core.Maintain.commit m in
        (* every original item gained one copy *)
        List.iter
          (fun (_, arr) -> Alcotest.(check int) "2 copies" 2 (Array.length arr))
          r.Hli_core.Maintain.copies;
        let r4 = Option.get (T.find_region e' 4) in
        (* the b[j] -> b[j-1] d=1 dependence becomes: copy0 -> copy1
           same-iteration alias, and copy1 -> copy0 at distance 1 *)
        Alcotest.(check bool) "has wrapped lcdd d=1" true
          (List.exists
             (fun l -> l.T.lcdd_distance = Some 1 && l.T.lcdd_dep = T.Dep_definite)
             r4.T.lcdds);
        Alcotest.(check bool) "has new alias entry" true (r4.T.aliases <> []);
        (* copies of one item stay equivalent to their original class *)
        let orig, arr = List.hd r.Hli_core.Maintain.copies in
        Alcotest.(check bool) "copy equiv known" true
          (Hli_core.Query.get_equiv_acc idx orig arr.(1)
          <> Hli_core.Query.Equiv_unknown));
    Alcotest.test_case "unroll factor 1 rejected" `Quick (fun () ->
        let e = fig2_entry () in
        let m = Hli_core.Maintain.start e in
        match Hli_core.Maintain.unroll m ~rid:4 ~factor:1 with
        | exception Diagnostics.Diagnostic d ->
            Alcotest.(check string) "code" "E0701" d.Diagnostics.code
        | _ -> Alcotest.fail "accepted factor 1");
  ]

(* ------------------------------------------------------------------ *)
(* Duplicate item detection                                            *)
(* ------------------------------------------------------------------ *)

(* A malformed entry a buggy front end could emit: item 5 appears on
   two lines of the line table, and item 7 is a member of two
   equivalence classes. *)
let dup_entry () =
  let item id acc = { T.item_id = id; acc } in
  {
    T.unit_name = "dup";
    line_table =
      [
        { T.line_no = 1; items = [ item 5 T.Acc_load; item 6 T.Acc_store ] };
        { T.line_no = 2; items = [ item 5 T.Acc_load; item 7 T.Acc_load ] };
      ];
    regions =
      [
        {
          T.region_id = 1;
          rtype = T.Region_unit;
          parent = None;
          first_line = 1;
          last_line = 2;
          eq_classes =
            [
              {
                T.class_id = 100;
                kind = T.Definitely;
                members = [ T.Member_item 6; T.Member_item 7 ];
                desc = "x";
              };
              {
                T.class_id = 101;
                kind = T.Maybe;
                members = [ T.Member_item 7 ];
                desc = "y";
              };
            ];
          aliases = [];
          lcdds = [];
          callrefmods = [];
        };
      ];
  }

let duplicate_tests =
  [
    Alcotest.test_case "duplicated ids are reported sorted, once each" `Quick
      (fun () ->
        let idx = Hli_core.Query.build (dup_entry ()) in
        Alcotest.(check (list int))
          "dups" [ 5; 7 ]
          (Hli_core.Query.duplicate_items idx));
    Alcotest.test_case "well-formed entries report none" `Quick (fun () ->
        let idx = Hli_core.Query.build (fig2_entry ()) in
        Alcotest.(check (list int))
          "no dups" []
          (Hli_core.Query.duplicate_items idx));
  ]

(* ------------------------------------------------------------------ *)
(* The per-function on-disk cache (Harness.Pipeline)                   *)
(* ------------------------------------------------------------------ *)

let cache_src mid =
  "int g;\n"
  ^ Printf.sprintf "int leaf(int n) { g = g + n; return n + %d; }\n" mid
  ^ "int caller(int n) { return leaf(n) + 1; }\n"
  ^ "int lone(int n) { return n * 7; }\n"
  ^ "int main() { return caller(2) + lone(3); }\n"

let with_cache_dir f =
  let dir =
    Filename.temp_file "hli-cache-test" ""
  in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let cache_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".hlie")
  |> List.sort compare

let frontend_bytes ?config src =
  let h = Harness.Pipeline.frontend ?config src in
  Hli_core.Serialize.to_bytes { T.entries = h.Driver.Pass.h_entries }

let cache_config ?(max = None) dir =
  { Harness.Pipeline.default_config with hli_cache = Some dir; hli_cache_max = max }

let cache_tests =
  [
    Alcotest.test_case "warm replay is byte-identical, entry-per-function"
      `Quick (fun () ->
        with_cache_dir (fun dir ->
            let config = cache_config dir in
            let uncached = frontend_bytes (cache_src 1) in
            let cold = frontend_bytes ~config (cache_src 1) in
            Alcotest.(check int) "one entry file per function" 4
              (List.length (cache_files dir));
            let warm = frontend_bytes ~config (cache_src 1) in
            Alcotest.(check bool) "cold == uncached" true (cold = uncached);
            Alcotest.(check bool) "warm == uncached" true (warm = uncached);
            Alcotest.(check int) "warm writes nothing" 4
              (List.length (cache_files dir))));
    Alcotest.test_case "a one-function edit rebuilds one entry" `Quick
      (fun () ->
        with_cache_dir (fun dir ->
            let config = cache_config dir in
            ignore (frontend_bytes ~config (cache_src 1));
            let before = cache_files dir in
            (* leaf's constant changes; its REF/MOD skeleton doesn't, so
               caller/lone/main replay from the same entries *)
            let edited = frontend_bytes ~config (cache_src 2) in
            Alcotest.(check bool) "edited == uncached rebuild" true
              (edited = frontend_bytes (cache_src 2));
            let after = cache_files dir in
            Alcotest.(check int) "exactly one new entry"
              (List.length before + 1)
              (List.length after);
            Alcotest.(check bool) "old entries still present" true
              (List.for_all (fun f -> List.mem f after) before)));
    Alcotest.test_case "--passes configs share front-end entries" `Quick
      (fun () ->
        (* regression for the cache-key audit: the optional-pass spec is
           back-end-only and deliberately outside the key — a run with
           --passes must hit the entries a pass-less run stored (and
           vice versa), never alias to wrong ones *)
        with_cache_dir (fun dir ->
            ignore (frontend_bytes ~config:(cache_config dir) (cache_src 1));
            let before = cache_files dir in
            let passes_config =
              {
                (Harness.Pipeline.config_of_passes "cse,licm,unroll=2") with
                hli_cache = Some dir;
              }
            in
            let h = frontend_bytes ~config:passes_config (cache_src 1) in
            Alcotest.(check bool) "same front-end product" true
              (h = frontend_bytes (cache_src 1));
            Alcotest.(check (list string)) "no new entries written" before
              (cache_files dir);
            let c =
              Harness.Pipeline.compile ~config:passes_config (cache_src 1)
            in
            let fresh =
              Harness.Pipeline.compile
                ~config:(Harness.Pipeline.config_of_passes "cse,licm,unroll=2")
                (cache_src 1)
            in
            Alcotest.(check string) "cached+passes == fresh+passes"
              (Hli_core.Serialize.to_text fresh.Harness.Pipeline.hli)
              (Hli_core.Serialize.to_text c.Harness.Pipeline.hli)));
    Alcotest.test_case "ablation is part of the key" `Quick (fun () ->
        with_cache_dir (fun dir ->
            ignore (frontend_bytes ~config:(cache_config dir) (cache_src 1));
            let n = List.length (cache_files dir) in
            let ab =
              List.find
                (fun a -> a.Driver.Variant.ab_name = "merge-off")
                Driver.Variant.ablations
            in
            let config =
              { (cache_config dir) with Harness.Pipeline.ablation = ab }
            in
            ignore (frontend_bytes ~config (cache_src 1));
            Alcotest.(check int) "ablated run stores its own entries" (2 * n)
              (List.length (cache_files dir))));
    Alcotest.test_case "size cap trims the oldest entries" `Quick (fun () ->
        with_cache_dir (fun dir ->
            (* cap of 1 byte: every miss-filling compile trims the
               directory back down to (at most) its newest entry *)
            let config = cache_config ~max:(Some 1) dir in
            ignore (frontend_bytes ~config (cache_src 1));
            (* every entry is bigger than the cap, so the post-write trim
               drains the directory completely *)
            Alcotest.(check (list string)) "trim drained the cache" []
              (cache_files dir);
            (* a capped cache still compiles correctly *)
            Alcotest.(check bool) "capped warm run still correct" true
              (frontend_bytes ~config (cache_src 1)
              = frontend_bytes (cache_src 1))));
    Alcotest.test_case "trim ties break on path; concurrent trims survive"
      `Quick (fun () ->
        with_cache_dir (fun dir ->
            let mk name =
              let p = Filename.concat dir name in
              Out_channel.with_open_bin p (fun oc ->
                  Out_channel.output_string oc (String.make 10 'x'));
              p
            in
            let paths = List.map mk [ "a.hlie"; "b.hlie"; "c.hlie"; "d.hlie" ] in
            (* identical mtimes: on a 1s-granularity filesystem a whole
               edit storm ties, so only the secondary path sort keeps
               eviction deterministic *)
            let t0 = Unix.time () -. 60.0 in
            List.iter (fun p -> Unix.utimes p t0 t0) paths;
            Harness.Pipeline.cache_trim dir ~max_bytes:(Some 20);
            Alcotest.(check (list string))
              "lexicographically smallest paths evicted first"
              [ "c.hlie"; "d.hlie" ]
              (List.sort compare (Array.to_list (Sys.readdir dir)));
            (* two trims racing stat/unlink over the same files: both
               must finish silently (a file the other trim already
               removed is ENOENT at unlink, not an error) *)
            let more =
              List.map mk (List.init 30 (Printf.sprintf "e%02d.hlie"))
            in
            List.iter (fun p -> Unix.utimes p t0 t0) more;
            let doms =
              List.init 2 (fun _ ->
                  Domain.spawn (fun () ->
                      Harness.Pipeline.cache_trim dir ~max_bytes:(Some 1)))
            in
            List.iter Domain.join doms;
            Alcotest.(check (list string)) "concurrent trims drained" []
              (List.sort compare (Array.to_list (Sys.readdir dir)))));
  ]

let () =
  Alcotest.run "hli"
    [
      ("query", query_tests);
      ("serialize", serialize_tests);
      ("text-dump", dump_tests);
      ("serialize-boundary", boundary_tests);
      ("serialize-props", List.map QCheck_alcotest.to_alcotest serialize_props);
      ("maintain", maintain_tests);
      ("duplicates", duplicate_tests);
      ("hli-cache", cache_tests);
    ]
