(* Per-workload integration tests: every benchmark compiles, its HLI
   maps completely onto the RTL, serializes round-trip, and all four
   scheduled variants compute identical output. *)

let workload_case (w : Workloads.Workload.t) =
  Alcotest.test_case w.Workloads.Workload.name `Slow (fun () ->
      let c = Harness.Pipeline.compile w.Workloads.Workload.source in
      (* mapping must be total: the ITEMGEN/lowering contract *)
      Alcotest.(check int) "unmapped refs" 0 c.Harness.Pipeline.map_unmapped;
      (* the HLI file survives the HLI2 container round-trip *)
      let bytes = Hli_core.Serialize.to_bytes c.Harness.Pipeline.hli in
      Alcotest.(check bool) "roundtrip" true
        (Hli_core.Serialize.of_bytes bytes = c.Harness.Pipeline.hli);
      Alcotest.(check int) "container size accounted" (String.length bytes)
        (Hli_core.Serialize.container_bytes c.Harness.Pipeline.hli);
      (* Table 1's size metric stays the legacy HLI1 payload *)
      Alcotest.(check int) "size accounted"
        (Hli_core.Serialize.size_bytes c.Harness.Pipeline.hli)
        c.Harness.Pipeline.hli_bytes;
      (* query accounting invariants (Figure 5) *)
      let s = c.Harness.Pipeline.stats in
      Alcotest.(check bool) "queries issued" true (s.Backend.Ddg.total > 0);
      Alcotest.(check bool) "combined <= gcc" true
        (s.Backend.Ddg.combined_yes <= s.Backend.Ddg.gcc_yes);
      Alcotest.(check bool) "combined <= hli" true
        (s.Backend.Ddg.combined_yes <= s.Backend.Ddg.hli_yes);
      (* all four scheduled variants agree on the program's output *)
      let out rtl = (Machine.Exec.run rtl).Machine.Exec.output in
      let o1 = out (Harness.Pipeline.rtl_gcc_r4600 c) in
      Alcotest.(check bool) "produces output" true (String.length o1 > 0);
      Alcotest.(check string) "hli r4600" o1 (out (Harness.Pipeline.rtl_hli_r4600 c));
      Alcotest.(check string) "gcc r10000" o1 (out (Harness.Pipeline.rtl_gcc_r10000 c));
      Alcotest.(check string) "hli r10000" o1 (out (Harness.Pipeline.rtl_hli_r10000 c)))

let registry_tests =
  [
    Alcotest.test_case "fourteen workloads, names unique" `Quick (fun () ->
        Alcotest.(check int) "count" 14 (List.length Workloads.Registry.all);
        let names =
          List.map (fun w -> w.Workloads.Workload.name) Workloads.Registry.all
        in
        Alcotest.(check int) "unique" 14 (List.length (List.sort_uniq compare names)));
    Alcotest.test_case "suite split matches the paper" `Quick (fun () ->
        let int_ws, fp_ws =
          List.partition
            (fun w -> not (Workloads.Workload.is_fp w.Workloads.Workload.suite))
            Workloads.Registry.all
        in
        Alcotest.(check int) "4 integer programs" 4 (List.length int_ws);
        Alcotest.(check int) "10 floating-point programs" 10 (List.length fp_ws));
    Alcotest.test_case "sources are non-trivial" `Quick (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check bool)
              (w.Workloads.Workload.name ^ " has enough lines")
              true
              (Workloads.Workload.line_count w > 60))
          Workloads.Registry.all);
    Alcotest.test_case "template expansion leaves no holes" `Quick (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check bool)
              (w.Workloads.Workload.name ^ " expanded")
              false
              (String.contains w.Workloads.Workload.source '@'))
          Workloads.Registry.all);
  ]

let () =
  Alcotest.run "workloads"
    [
      ("registry", registry_tests);
      ("end-to-end", List.map workload_case Workloads.Registry.all);
    ]
