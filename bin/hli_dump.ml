(* hli_dump — inspect a serialized HLI file (HLI1 or HLI2 container).

   Prints the line table and region tables of every program unit;
   --verify checks the binary round-trip, --check runs the structural
   validator (lib/core/validate.ml) and reports every issue instead of
   dumping.  --entry NAME narrows either mode to one function's entry
   and also prints its content hash — the per-entry digest the HLI
   cache and the delta-upload protocol key on, for debugging cache
   misses.  Decode failures (bad magic, truncation, CRC mismatch, ...)
   are structured diagnostics with E06xx codes. *)

open Cmdliner

let run path verify check entry =
  try
    (* --check reports the full issue list itself, so read without the
       on-load validator (which stops at the first issue) *)
    let f = Hli_core.Serialize.read_file ~validate:(not check) path in
    match entry with
    | Some name -> begin
        match Hli_core.Tables.find_entry f name with
        | None ->
            Fmt.epr "%s: no unit named %s (has: %s)@." path name
              (String.concat ", "
                 (List.map
                    (fun e -> e.Hli_core.Tables.unit_name)
                    f.Hli_core.Tables.entries));
            1
        | Some e ->
            let hash = Digest.to_hex (Hli_core.Serialize.entry_hash e) in
            if check then begin
              match Hli_core.Validate.check_entry e with
              | [] ->
                  Fmt.pr "%s: %s: OK (%d region(s), entry hash %s)@." path
                    name
                    (List.length e.Hli_core.Tables.regions)
                    hash;
                  0
              | issues ->
                  List.iter
                    (fun i ->
                      Fmt.epr "%s: error%s@." path
                        (Hli_core.Validate.issue_to_string i))
                    issues;
                  Fmt.epr "%s: %s: %d structural issue(s)@." path name
                    (List.length issues);
                  2
            end
            else begin
              Fmt.pr "%a@." Hli_core.Tables.pp_entry e;
              Fmt.pr "entry hash: %s@." hash;
              0
            end
      end
    | None ->
    if check then begin
      match Hli_core.Validate.check_file f with
      | [] ->
          Fmt.pr "%s: OK (%d unit(s), %d region(s), %d container bytes)@."
            path
            (List.length f.Hli_core.Tables.entries)
            (List.fold_left
               (fun acc e -> acc + List.length e.Hli_core.Tables.regions)
               0 f.Hli_core.Tables.entries)
            (Hli_core.Serialize.container_bytes f);
          0
      | issues ->
          List.iter
            (fun i ->
              Fmt.epr "%s: error%s@." path
                (Hli_core.Validate.issue_to_string i))
            issues;
          Fmt.epr "%s: %d structural issue(s)@." path (List.length issues);
          2
    end
    else begin
      print_string (Hli_core.Serialize.to_text f);
      if verify then begin
        let bytes = Hli_core.Serialize.to_bytes f in
        let f2 = Hli_core.Serialize.of_bytes bytes in
        if f = f2 then Fmt.pr "round-trip: OK (%d bytes)@." (String.length bytes)
        else begin
          Fmt.epr "round-trip: MISMATCH@.";
          exit 2
        end
      end;
      0
    end
  with
  | Diagnostics.Diagnostic d ->
      Fmt.epr "%a@." Diagnostics.pp d;
      1
  | Hli_core.Serialize.Corrupt c ->
      Fmt.epr "corrupt HLI file: %s@." (Hli_core.Serialize.corruption_to_string c);
      1
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"HLI file")

let verify_flag =
  Arg.(value & flag & info [ "verify" ] ~doc:"check binary round-trip")

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "run the structural validator and report every issue instead of \
           dumping; exits 2 when issues are found")

let entry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "entry" ] ~docv:"NAME"
        ~doc:
          "restrict to the named function's entry: dump (or, with \
           $(b,--check), validate) just that entry and print its content \
           hash — the digest the HLI cache and delta uploads key on")

let cmd =
  let doc = "dump a High-Level Information file" in
  Cmd.v (Cmd.info "hli_dump" ~doc)
    Term.(const run $ path_arg $ verify_flag $ check_flag $ entry_arg)

let () = exit (Cmd.eval' cmd)
