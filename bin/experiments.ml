(* experiments — regenerate the paper's Table 1 and Table 2 over all
   fourteen workloads, plus the DESIGN.md ablations (--ablation) and
   optional-pass selections (--passes). *)

open Cmdliner

let run_tables only quick passes ablation speculate list_passes =
  if list_passes then begin
    print_string (Driver.Pass_manager.list_text ());
    0
  end
  else
    try
      let wls =
        match only with
        | [] -> Workloads.Registry.all
        | names ->
            List.filter
              (fun w -> List.mem w.Workloads.Workload.name names)
              Workloads.Registry.all
      in
      let ablation =
        match Driver.Variant.find_ablation ablation with
        | Some a -> a
        | None ->
            Diagnostics.error ~code:"E1006" ~phase:Diagnostics.Driver
              "unknown ablation %S (known: %s)" ablation
              (String.concat ", " ("baseline" :: Driver.Variant.ablation_names))
      in
      let ablation =
        match speculate with
        | None -> ablation
        | Some t when t >= 0 && t <= 1000 -> Driver.Variant.with_speculate t ablation
        | Some t ->
            Diagnostics.error ~code:"E1006" ~phase:Diagnostics.Driver
              "--speculate threshold %d out of range (per-mille, 0..1000)" t
      in
      let config =
        { Harness.Pipeline.specs = Driver.Pass_manager.parse_specs passes;
          ablation;
          hli_cache = Harness.Pipeline.hli_cache_env ();
          hli_cache_max = Harness.Pipeline.hli_cache_max_env ();
          remote = None;
          pipeline = 1;
          shm = false }
      in
      let fuel = if quick then 20_000_000 else 400_000_000 in
      let rows =
        List.map
          (fun w ->
            Fmt.epr "running %s...@." w.Workloads.Workload.name;
            Harness.Tables.run_workload ~fuel ~config w)
          wls
      in
      print_string (Harness.Tables.print_tables rows);
      0
    with Diagnostics.Diagnostic d ->
      Fmt.epr "%a@." Diagnostics.pp d;
      Diagnostics.exit_code d

let only_arg =
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME" ~doc:"run only this workload (repeatable)")

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"cap simulation fuel for a fast pass")

let passes_arg =
  Arg.(
    value & opt string ""
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:"optional passes to run, e.g. $(b,cse,licm,unroll=4)")

let ablation_arg =
  Arg.(
    value & opt string "baseline"
    & info [ "ablation" ] ~docv:"NAME" ~doc:"ablation configuration")

let speculate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "speculate" ] ~docv:"THRESH"
        ~doc:
          "speculative scheduling threshold in per mille (0..1000); \
           composes with $(b,--ablation)")

let list_passes_flag =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"list registered passes and exit")

let cmd =
  let doc = "reproduce the paper's Tables 1 and 2" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const run_tables $ only_arg $ quick_flag $ passes_arg $ ablation_arg
      $ speculate_arg $ list_passes_flag)

let () = exit (Cmd.eval' cmd)
