(* hlid — the persistent HLI query daemon.

   Loads nothing at startup: each client session ships (Open_hli) or
   names (Open_path) a validated HLI2 file, then issues dependence /
   alias / REF-MOD queries and maintenance notifications over the
   framed wire protocol (lib/server/protocol.ml; DESIGN.md has the
   byte-level spec).  The server is event-driven: one poller domain
   reads and decodes frames in place over per-connection reused
   buffers and dispatches requests to a worker pool, so any number of
   (possibly pipelined) sessions share -j worker domains.
   SIGINT/SIGTERM shut down gracefully: in-flight sessions drain,
   telemetry is flushed, and the socket file is removed.  Exit codes
   follow the diagnostics scheme (7 = net). *)

open Cmdliner

(* Keep in sync with Harness.Telemetry.schema_version; hlid links only
   the server stack, not the harness, so the string is repeated here
   (test_telemetry pins the constant). *)
let schema_version = "hli-telemetry-v7"

(* --router: proxy mode.  Listen on --socket, shard every session's
   units across the backend fleet by consistent hash of unit name,
   with epoch-propagated Refresh barriers and bounded-retry failover
   (lib/server/router.ml; DESIGN.md §9). *)
let run_router socket backends timeout max_frame =
  let stop = Atomic.make false in
  let shutdown _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  Fmt.epr "hlid: routing %s across %d shards (%s)@." socket
    (List.length backends)
    (String.concat ", " backends);
  match
    Hli_server.Router.serve ~timeout ~max_frame ~backends ~socket_path:socket
      ~stop ()
  with
  | () -> 0
  | exception Diagnostics.Diagnostic d ->
      Fmt.epr "%a@." Diagnostics.pp d;
      Diagnostics.exit_code d

let run_hlid socket router jobs max_frame timeout shm_dir store_cap stats
    stats_json =
  match router with
  | Some backends ->
      run_router socket
        (String.split_on_char ',' backends
        |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
        timeout max_frame
  | None ->
  let cfg =
    {
      (Hli_server.Server.default_config ~socket_path:socket) with
      jobs;
      max_frame;
      request_timeout = timeout;
      shm_dir;
      store_cap;
    }
  in
  match Hli_server.Server.create cfg with
  | exception Diagnostics.Diagnostic d ->
      Fmt.epr "%a@." Diagnostics.pp d;
      Diagnostics.exit_code d
  | srv ->
      let shutdown _ = Hli_server.Server.initiate_shutdown srv in
      Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
      (match shm_dir with
      | Some d -> Fmt.epr "hlid: publishing HLIX segments under %s@." d
      | None -> ());
      Fmt.epr "hlid: listening on %s (%d jobs)@." socket jobs;
      Hli_server.Server.run srv;
      let json = Hli_server.Server.stats_json srv in
      if stats then Fmt.pr "== hlid server telemetry ==@.%s@." json;
      (match stats_json with
      | None -> ()
      | Some path ->
          let payload =
            Printf.sprintf "{\"schema\":\"%s\",\"server\":%s}" schema_version
              json
          in
          if path = "-" then print_endline payload
          else begin
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc payload);
            Fmt.epr "hlid: wrote telemetry to %s@." path
          end);
      0

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (stale files are removed)")

let router_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "router" ] ~docv:"SOCK1,SOCK2,..."
        ~doc:
          "run as a fleet router instead of a daemon: listen on \
           $(b,--socket) and shard each session's HLI units across the \
           listed backend hlid sockets by consistent hash of unit name, \
           splitting batched query trains per shard and merging replies \
           positionally; Refresh barriers drain every shard (epoch \
           propagation) and a backend dying mid-session is re-handshaken \
           and retried, never answered wrongly")

let jobs_arg =
  Arg.(
    value
    & opt int (max 8 (Pool.default_jobs ()))
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker-pool size; $(docv) - 1 worker domains run request \
           handlers for the event loop — size for CPU parallelism, not \
           for a session cap (default: at least 8)")

let max_frame_arg =
  Arg.(
    value
    & opt int Hli_server.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:
          "largest accepted request payload; oversized frames are rejected \
           with E1104 before allocation")

let timeout_arg =
  Arg.(
    value
    & opt float Hli_server.Protocol.default_timeout
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"per-request progress timeout; a stalled frame answers E1109")

let shm_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shm-dir" ] ~docv:"DIR"
        ~doc:
          "enable the shared-memory fast path: publish one mmap-able HLIX \
           index segment per opened unit under $(docv)/sess-<id>/, \
           advertised to clients in the Hello response and rebuilt under \
           the seqlock protocol at every Refresh barrier; co-located \
           clients connecting with --shm answer read-only queries \
           straight off the mapping")

let store_cap_arg =
  Arg.(
    value
    & opt int (Hli_server.Server.default_config ~socket_path:"").store_cap
    & info [ "store-cap" ] ~docv:"BYTES"
        ~doc:
          "byte bound on the cross-session entry store backing delta \
           uploads (protocol v3): a session re-opening after an edit \
           ships only the entries the store lacks; oldest entries are \
           evicted past $(docv) (default 256 MiB)")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"print server telemetry at shutdown")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"PATH"
        ~doc:
          "write the hli-telemetry-v7 server telemetry to $(docv) at \
           shutdown (\"-\" for stdout)")

let cmd =
  let doc = "persistent HLI query service over a Unix-domain socket" in
  Cmd.v
    (Cmd.info "hlid" ~doc)
    Term.(
      const run_hlid $ socket_arg $ router_arg $ jobs_arg $ max_frame_arg
      $ timeout_arg $ shm_dir_arg $ store_cap_arg $ stats_flag
      $ stats_json_arg)

let () = exit (Cmd.eval' cmd)
