(* hlic — the full compiler driver.

   Compiles a mini-C source file through the whole pipeline: front-end
   analysis, HLI generation, GCC-like lowering, HLI import, the
   optional passes selected with --passes, basic-block scheduling, and
   (optionally) execution on one of the simulated machines.

   Errors are structured diagnostics: rendered as
   file:line:col: severity[CODE]: message, with the process exit code
   keyed to the failing phase (1 I/O, 2 lex/parse, 3 typecheck,
   4 compile, 5 simulation, 6 driver misuse). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --lint-hli: decode an HLI file and print every structural issue the
   validator finds (hli_dump --check is the same checker from the dump
   side).  Exit 0 clean, 4 on issues, per-phase code on decode errors. *)
let lint_hli path =
  match Hli_core.Serialize.read_file ~validate:false path with
  | exception Diagnostics.Diagnostic d ->
      Fmt.epr "%a@." Diagnostics.pp d;
      Diagnostics.exit_code d
  | exception Sys_error msg ->
      Fmt.epr "error[E0001]: %s@." msg;
      1
  | f -> (
      match Hli_core.Validate.check_file f with
      | [] ->
          Fmt.pr "%s: OK (%d unit(s), %d region(s))@." path
            (List.length f.Hli_core.Tables.entries)
            (List.fold_left
               (fun acc e ->
                 acc + List.length e.Hli_core.Tables.regions)
               0 f.Hli_core.Tables.entries);
          0
      | issues ->
          List.iter
            (fun i ->
              Fmt.epr "%s: error%s@." path
                (Hli_core.Validate.issue_to_string i))
            issues;
          Fmt.epr "%s: %d structural issue(s)@." path (List.length issues);
          4)

let run_hlic src_path use_hli machine run emit_hli dump_rtl passes ablation
    speculate list_passes jobs stats stats_json lint hli_cache hli_cache_max
    remote pipeline shm =
  if list_passes then begin
    print_string (Driver.Pass_manager.list_text ());
    0
  end
  else
    match lint with
    | Some path -> lint_hli path
    | None -> (
    match src_path with
    | None ->
        Fmt.epr "error[E1000]: no source file (see hlic --help)@.";
        6
    | Some src_path -> (
        let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
        let tm = Harness.Telemetry.create () in
        Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool)
        @@ fun () ->
        try
          let src = read_file src_path in
          let ablation =
            match Driver.Variant.find_ablation ablation with
            | Some a -> a
            | None ->
                Diagnostics.error ~code:"E1006" ~phase:Diagnostics.Driver
                  "unknown ablation %S (known: %s)" ablation
                  (String.concat ", "
                     ("baseline" :: Driver.Variant.ablation_names))
          in
          let ablation =
            match speculate with
            | None -> ablation
            | Some t when t >= 0 && t <= 1000 ->
                Driver.Variant.with_speculate t ablation
            | Some t ->
                Diagnostics.error ~code:"E1006" ~phase:Diagnostics.Driver
                  "--speculate threshold %d out of range (per-mille, 0..1000)"
                  t
          in
          let config =
            {
              Harness.Pipeline.specs = Driver.Pass_manager.parse_specs passes;
              ablation;
              hli_cache =
                (match hli_cache with
                | Some dir -> Some dir
                | None -> Harness.Pipeline.hli_cache_env ());
              hli_cache_max =
                (match hli_cache_max with
                | Some n when n > 0 -> Some n
                | Some _ -> None
                | None -> Harness.Pipeline.hli_cache_max_env ());
              remote;
              pipeline = max 1 pipeline;
              shm;
            }
          in
          let c =
            Harness.Pipeline.compile ~config ~src_file:src_path ?pool ~tm src
          in
          (match emit_hli with
          | Some out ->
              Hli_core.Serialize.write_file out c.Harness.Pipeline.hli;
              Fmt.pr "wrote %s (%d bytes)@." out c.Harness.Pipeline.hli_bytes
          | None -> ());
          let md_is_4600 = machine = "r4600" in
          let rtl =
            match (use_hli, md_is_4600) with
            | true, true -> Harness.Pipeline.rtl_hli_r4600 c
            | true, false -> Harness.Pipeline.rtl_hli_r10000 c
            | false, true -> Harness.Pipeline.rtl_gcc_r4600 c
            | false, false -> Harness.Pipeline.rtl_gcc_r10000 c
          in
          if dump_rtl then
            List.iter
              (fun fn -> Fmt.pr "%a@." Backend.Rtl.pp_fn fn)
              rtl.Backend.Rtl.fns;
          List.iter
            (fun n ->
              Fmt.pr "%s: %s@." n.Driver.Pass.n_pass n.Driver.Pass.n_text)
            (Harness.Pipeline.pass_notes c);
          if c.Harness.Pipeline.map_dropped > 0 then
            Fmt.epr "warning[E0801]: %d HLI unit(s) had no RTL function@."
              c.Harness.Pipeline.map_dropped;
          let s = c.Harness.Pipeline.stats in
          Fmt.pr
            "dependence queries: total=%d gcc_yes=%d hli_yes=%d combined_yes=%d@."
            s.Backend.Ddg.total s.Backend.Ddg.gcc_yes s.Backend.Ddg.hli_yes
            s.Backend.Ddg.combined_yes;
          if ablation.Driver.Variant.speculate <> None then
            Fmt.pr "speculation: edges_dropped=%d checks=%d@."
              s.Backend.Ddg.spec_edges_dropped s.Backend.Ddg.spec_checks;
          if run then begin
            let m =
              if md_is_4600 then Machine.Simulate.R4600
              else Machine.Simulate.R10000
            in
            let md = Driver.Variant.machdesc_of ablation
                (Driver.Variant.{ alias = Backend.Ddg.Gcc_only;
                                  machine = (if md_is_4600 then R4600 else R10000) })
            in
            let r =
              Harness.Telemetry.span ~tm "machine.simulate" (fun () ->
                  Machine.Simulate.run ~md m rtl)
            in
            Fmt.pr "%s" r.Machine.Simulate.output;
            Fmt.pr "[%s] %d cycles, %d instructions, L1 %d/%d hits/misses@."
              (Machine.Simulate.machine_name m)
              r.Machine.Simulate.cycles r.Machine.Simulate.dyn_insns
              r.Machine.Simulate.l1_hits r.Machine.Simulate.l1_misses;
            if r.Machine.Simulate.misspeculations > 0 then
              Fmt.pr "[%s] %d misspeculation(s) recovered@."
                (Machine.Simulate.machine_name m)
                r.Machine.Simulate.misspeculations
          end;
          if stats then begin
            Fmt.pr "== per-stage telemetry ==@.%a" Harness.Telemetry.pp_table tm;
            Fmt.pr "== HLI queries by kind ==@.";
            List.iter
              (fun (name, v) -> Fmt.pr "%-16s %12d@." name v)
              (Hli_core.Query.query_counters ())
          end;
          (match stats_json with
          | None -> ()
          | Some path ->
              let b = Buffer.create 512 in
              let shm_json =
                if shm then Hli_server.Client.shm_stats_json () else "null"
              in
              Buffer.add_string b
                (Printf.sprintf
                   "{\"schema\":\"%s\",\"file\":\"%s\",\"shm\":%s,\"hli_queries\":{"
                   Harness.Telemetry.schema_version
                   (Harness.Telemetry.json_escape src_path)
                   shm_json);
              List.iteri
                (fun i (name, v) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
                (Hli_core.Query.query_counters ());
              Buffer.add_string b "},";
              Buffer.add_string b (Harness.Telemetry.json_fragment tm);
              Buffer.add_char b '}';
              if path = "-" then print_endline (Buffer.contents b)
              else begin
                let oc = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (Buffer.contents b));
                Fmt.pr "wrote telemetry to %s@." path
              end);
          0
        with
        | Diagnostics.Diagnostic d ->
            (* source-phase diagnostics get the file path; driver
               misuse (bad --passes/--ablation) is not about the file *)
            let d =
              match (d.Diagnostics.file, d.Diagnostics.phase) with
              | None, (Diagnostics.Driver | Diagnostics.Io | Diagnostics.Net) ->
                  d
              | None, _ -> Diagnostics.with_file src_path d
              | Some _, _ -> d
            in
            Fmt.epr "%a@." Diagnostics.pp d;
            Diagnostics.exit_code d
        | Sys_error msg ->
            Fmt.epr "error[E0001]: %s@." msg;
            1))

let src_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"mini-C source file")

let hli_flag =
  Arg.(value & opt bool true & info [ "use-hli" ] ~doc:"use HLI in the scheduler (default true)")

let machine_arg =
  Arg.(value & opt (enum [ ("r4600", "r4600"); ("r10000", "r10000") ]) "r10000"
       & info [ "machine" ] ~doc:"target machine model")

let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"execute on the simulator")

let emit_arg =
  Arg.(value & opt (some string) None & info [ "emit-hli" ] ~docv:"OUT" ~doc:"write the HLI file")

let dump_flag = Arg.(value & flag & info [ "dump-rtl" ] ~doc:"print the scheduled RTL")

let passes_arg =
  Arg.(
    value & opt string ""
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:
          "comma-separated optional passes to run, in order, e.g. \
           $(b,cse,licm,unroll=4); see $(b,--list-passes)")

let ablation_arg =
  Arg.(
    value & opt string "baseline"
    & info [ "ablation" ] ~docv:"NAME"
        ~doc:"ablation configuration (baseline, merge-off, \
              routine-regions, hli-only, lsq-off)")

let speculate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "speculate" ] ~docv:"THRESH"
        ~doc:
          "speculative scheduling: drop maybe-class store-to-load \
           dependences whose HLI confidence is below $(docv) per mille \
           (0..1000) from the DDG, inserting run-time checks with \
           recovery; composes with $(b,--ablation).  Unset keeps \
           schedules byte-identical to the non-speculative compiler")

let list_passes_flag =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"list registered passes and exit")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "domain-pool size for the four pipeline variants (default: \
           \\$(b,HLI_JOBS) env, else the recommended domain count; 1 is \
           fully sequential)")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"print per-stage telemetry and HLI query counters")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"PATH"
        ~doc:"write the telemetry JSON dump to $(docv) (\"-\" for stdout)")

let lint_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "lint-hli" ] ~docv:"FILE"
        ~doc:
          "decode $(docv) and run the structural HLI validator instead of \
           compiling; exits 4 when issues are found")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SOCKETS"
        ~doc:
          "hlid Unix-domain socket; With_hli variants import, query and \
           maintain HLI over the wire instead of in-process (tables stay \
           byte-identical).  A comma-separated list is a sharded fleet: \
           units hash across the listed hlid instances behind the \
           client-library router, with epoch-propagated Refresh barriers \
           and failover retry (or point a single $(docv) at a \
           $(b,hlid --router) process)")

let pipeline_arg =
  Arg.(
    value
    & opt int 1
    & info [ "pipeline" ] ~docv:"N"
        ~doc:
          "with $(b,--remote): keep up to $(docv) request frames in flight \
           per server session (1 = strict request/reply); answers stay \
           byte-identical, round-trips overlap")

let shm_flag =
  Arg.(
    value & flag
    & info [ "shm" ]
        ~doc:
          "with $(b,--remote): map the HLIX index segments the server \
           publishes (hlid $(b,--shm-dir)) and answer read-only queries \
           from shared memory, falling back to the wire per query when a \
           segment is missing, mid-rebuild or a maintenance transaction \
           is open; tables stay byte-identical")

let hli_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hli-cache" ] ~docv:"DIR"
        ~doc:
          "cache serialized front-end HLI output under $(docv) keyed by \
           source hash, ablation and format version (default: \
           \\$(b,HLI_CACHE) env; unset disables caching)")

let hli_cache_max_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hli-cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "size cap for the $(b,--hli-cache) directory: after each store, \
           least-recently-used entries (by mtime) are trimmed until the \
           cache fits $(docv) bytes (default: \\$(b,HLI_CACHE_MAX) env; \
           unset or non-positive means unbounded)")

let cmd =
  let doc = "compile mini-C with High-Level Information support" in
  Cmd.v (Cmd.info "hlic" ~doc)
    Term.(
      const run_hlic $ src_arg $ hli_flag $ machine_arg $ run_flag $ emit_arg
      $ dump_flag $ passes_arg $ ablation_arg $ speculate_arg
      $ list_passes_flag $ jobs_arg $ stats_flag $ stats_json_arg $ lint_arg
      $ hli_cache_arg $ hli_cache_max_arg $ remote_arg $ pipeline_arg
      $ shm_flag)

let () = exit (Cmd.eval' cmd)
