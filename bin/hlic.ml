(* hlic — the full compiler driver.

   Compiles a mini-C source file through the whole pipeline: front-end
   analysis, HLI generation, GCC-like lowering, HLI import, optional
   CSE/LICM/unrolling, basic-block scheduling, and (optionally)
   execution on one of the simulated machines. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_hlic src_path use_hli machine run emit_hli dump_rtl cse licm unroll
    jobs stats stats_json =
  let pool = if jobs > 1 then Some (Harness.Pool.create ~jobs) else None in
  let tm = Harness.Telemetry.create () in
  Fun.protect ~finally:(fun () -> Option.iter Harness.Pool.shutdown pool)
  @@ fun () ->
  try
    let src = read_file src_path in
    let passes =
      {
        Harness.Pipeline.p_cse = cse;
        p_licm = licm;
        p_unroll = (if unroll >= 2 then Some unroll else None);
      }
    in
    let c = Harness.Pipeline.compile ~passes ?pool ~tm src in
    (match emit_hli with
    | Some out ->
        Hli_core.Serialize.write_file out c.Harness.Pipeline.hli;
        Fmt.pr "wrote %s (%d bytes)@." out c.Harness.Pipeline.hli_bytes
    | None -> ());
    let md_is_4600 = machine = "r4600" in
    let rtl =
      match (use_hli, md_is_4600) with
      | true, true -> c.Harness.Pipeline.rtl_hli_r4600
      | true, false -> c.Harness.Pipeline.rtl_hli_r10000
      | false, true -> c.Harness.Pipeline.rtl_gcc_r4600
      | false, false -> c.Harness.Pipeline.rtl_gcc_r10000
    in
    if dump_rtl then
      List.iter (fun fn -> Fmt.pr "%a@." Backend.Rtl.pp_fn fn) rtl.Backend.Rtl.fns;
    let s = c.Harness.Pipeline.stats in
    Fmt.pr "dependence queries: total=%d gcc_yes=%d hli_yes=%d combined_yes=%d@."
      s.Backend.Ddg.total s.Backend.Ddg.gcc_yes s.Backend.Ddg.hli_yes
      s.Backend.Ddg.combined_yes;
    if run then begin
      let m = if md_is_4600 then Machine.Simulate.R4600 else Machine.Simulate.R10000 in
      let r =
        Harness.Telemetry.span ~tm "machine.simulate" (fun () ->
            Machine.Simulate.run m rtl)
      in
      Fmt.pr "%s" r.Machine.Simulate.output;
      Fmt.pr "[%s] %d cycles, %d instructions, L1 %d/%d hits/misses@."
        (Machine.Simulate.machine_name m)
        r.Machine.Simulate.cycles r.Machine.Simulate.dyn_insns
        r.Machine.Simulate.l1_hits r.Machine.Simulate.l1_misses
    end;
    if stats then begin
      Fmt.pr "== per-stage telemetry ==@.%a" Harness.Telemetry.pp_table tm;
      Fmt.pr "== HLI queries by kind ==@.";
      List.iter
        (fun (name, v) -> Fmt.pr "%-16s %12d@." name v)
        (Hli_core.Query.query_counters ())
    end;
    (match stats_json with
    | None -> ()
    | Some path ->
        let b = Buffer.create 512 in
        Buffer.add_string b
          (Printf.sprintf "{\"schema\":\"hli-telemetry-v1\",\"file\":\"%s\",\"hli_queries\":{"
             (Harness.Telemetry.json_escape src_path));
        List.iteri
          (fun i (name, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
          (Hli_core.Query.query_counters ());
        Buffer.add_string b "},";
        Buffer.add_string b (Harness.Telemetry.json_fragment tm);
        Buffer.add_char b '}';
        if path = "-" then print_endline (Buffer.contents b)
        else begin
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Buffer.contents b));
          Fmt.pr "wrote telemetry to %s@." path
        end);
    0
  with
  | Harness.Pipeline.Compile_error msg ->
      Fmt.epr "error: %s@." msg;
      1
  | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1

let src_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source file")

let hli_flag =
  Arg.(value & opt bool true & info [ "use-hli" ] ~doc:"use HLI in the scheduler (default true)")

let machine_arg =
  Arg.(value & opt (enum [ ("r4600", "r4600"); ("r10000", "r10000") ]) "r10000"
       & info [ "machine" ] ~doc:"target machine model")

let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"execute on the simulator")

let emit_arg =
  Arg.(value & opt (some string) None & info [ "emit-hli" ] ~docv:"OUT" ~doc:"write the HLI file")

let dump_flag = Arg.(value & flag & info [ "dump-rtl" ] ~doc:"print the scheduled RTL")

let cse_flag = Arg.(value & flag & info [ "cse" ] ~doc:"run local CSE")
let licm_flag = Arg.(value & flag & info [ "licm" ] ~doc:"run loop-invariant code motion")

let unroll_arg =
  Arg.(value & opt int 0 & info [ "unroll" ] ~docv:"K" ~doc:"unroll eligible loops by K")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "domain-pool size for the four pipeline variants (default: \
           \\$(b,HLI_JOBS) env, else the recommended domain count; 1 is \
           fully sequential)")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"print per-stage telemetry and HLI query counters")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"PATH"
        ~doc:"write the hli-telemetry-v1 JSON dump to $(docv) (\"-\" for stdout)")

let cmd =
  let doc = "compile mini-C with High-Level Information support" in
  Cmd.v (Cmd.info "hlic" ~doc)
    Term.(
      const run_hlic $ src_arg $ hli_flag $ machine_arg $ run_flag $ emit_arg
      $ dump_flag $ cse_flag $ licm_flag $ unroll_arg $ jobs_arg $ stats_flag
      $ stats_json_arg)

let () = exit (Cmd.eval' cmd)
