(** HLIX — a position-independent, mmap-able flat image of a query
    {!Query.index}.

    One segment holds everything {!Query.get_equiv_acc},
    {!Query.get_call_acc}, {!Query.get_alias}, {!Query.get_lcdd} and
    {!Query.get_region_of_item} consult at query time — per-item
    (region, class) chains with the class kind and alias slot
    precomputed per element, per-region alias bitsets, ancestor
    chains, callrefmod tables, per-region LCDD edge lists and the
    line -> innermost-region map — as fixed-width little-endian
    records behind a fixed header.  All cross-references are byte
    offsets from the segment base (no pointers), so the same bytes
    answer queries at any mapping address in any process.

    Layout (all fields u32 LE unless noted; [NONE] = 0xffffffff):

    {v
    header (96 bytes)
       0  magic "HLIX"
       4  version (= 1)
       8  generation (u64; seqlock word, NOT covered by the CRC)
      16  body CRC32 over bytes [20, total_len)
      20  total_len (bytes used, header included)
      24  content hash (16 bytes; MD5 of the source HLI2 container)
      40  n_items   44 n_regions   48 n_lines
      52..84  section offsets: items, chain pool, regions, crm
              records, class-id pool, alias pool, ups pool, lines
      84  lcdd section offset   88 n_lcdds
      92..96  reserved (zero)
    items     n_items x 16: id, line (NONE if absent), chain_off,
              chain_len — sorted by id (binary search)
    chain     elements x 20: region_idx (into the region table),
              rid, cid, kind (0 definitely / 1 maybe / 2 absent),
              alias slot of cid in rid's bitset (NONE if unmapped)
    regions   n_regions x 40: rid, first_line (i32), last_line (i32),
              crm_off, crm_cnt, ups_off, ups_cnt, alias_off,
              lcdd_off, lcdd_cnt — sorted by rid, deduplicated
              last-wins like [Query.region_by_id]
    crm       records x 28: key_kind (0 call item / 1 sub-region),
              key_val (item id, or region index; NONE if the
              sub-region id is unknown), refmod_all, ref_off,
              ref_cnt, mod_off, mod_cnt — entry order preserved
              (first covering entry wins, like the engine)
    cls       sorted u32 class-id runs (binary-search membership for
              the crm REF/MOD sets)
    alias     per region: width, k, k x (class id, slot) pairs
              sorted by class id, then the k*k bit matrix verbatim
              from [Query.alias_bits] (padded to 4 bytes)
    ups       u32 region-table indices (self first, root last)
    lines     n_lines x 8: line, region index — sorted by line
    lcdd      n_lcdds x 24: src class, dst class, dep (0 definite /
              1 maybe), has_distance, distance (i32), prob (0 none /
              per-mille p stored as p+1) — entry order preserved per
              region
    v}

    The precomputed kind and slot per chain element make the hot
    paths allocation-free: an equiv answer needs only the two chain
    scans and one bit probe, with no hash lookups.

    Readers treat the mapping as untrusted at all times: every load
    is bounds-checked against the mapping and absurd counts raise
    {!Torn} (never a crash, never an unbounded loop), so a segment
    being rewritten in place under the seqlock protocol can only
    produce a retry, not a wrong answer — callers re-check the
    generation word after computing and retry/fall back on a
    mismatch.  {!validate} checks magic/version/length/CRC/hash and
    section geometry with precise E063x diagnostics:

    - E0630 bad magic            - E0631 unknown version
    - E0632 truncated segment    - E0633 body CRC mismatch
    - E0634 content-hash mismatch- E0635 malformed section geometry *)

module S = Serialize
module Q = Query
open Tables

type seg = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Torn

let magic = "HLIX"
let hlix_version = 2
let header_size = 96
let none = 0xffffffff
let mask32 = 0xffffffff

(* header field offsets *)
let o_gen = 8
let o_crc = 16
let o_len = 20
let o_hash = 24
let o_nitems = 40
let o_nregions = 44
let o_nlines = 48
let o_items = 52
let o_chain = 56
let o_regions = 60
let o_crm = 64
let o_cls = 68
let o_alias = 72
let o_ups = 76
let o_lines = 80
let o_lcdd = 84
let o_nlcdds = 88

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let pu32 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

(** Serialize [idx] into HLIX bytes (generation 0).  [content_hash]
    is the 16-byte digest of the source HLI2 container the index was
    built from; readers use it to pair a segment with the unit they
    opened. *)
let build ~content_hash (idx : Q.index) : Bytes.t =
  if String.length content_hash <> 16 then
    invalid_arg "Flatindex.build: content_hash must be 16 bytes";
  (* canonical region set: one row per id, last occurrence wins,
     exactly the engine's [region_by_id] *)
  let regions =
    Hashtbl.fold (fun _ r acc -> r :: acc) idx.Q.region_by_id []
    |> List.sort (fun a b -> compare a.region_id b.region_id)
    |> Array.of_list
  in
  let n_regions = Array.length regions in
  let ridx = Hashtbl.create (max 16 (2 * n_regions)) in
  Array.iteri (fun i r -> Hashtbl.replace ridx r.region_id i) regions;
  (* items: union of the chain and line keysets (they differ: items
     can appear in classes but not the line table and vice versa) *)
  let iset = Hashtbl.create 256 in
  Hashtbl.iter (fun id _ -> Hashtbl.replace iset id ()) idx.Q.chain_of_item;
  Hashtbl.iter (fun id _ -> Hashtbl.replace iset id ()) idx.Q.line_of_item;
  let items =
    Hashtbl.fold (fun id () acc -> id :: acc) iset []
    |> List.sort compare |> Array.of_list
  in
  let n_items = Array.length items in
  let chains =
    Array.map
      (fun id ->
        match Hashtbl.find_opt idx.Q.chain_of_item id with
        | Some c -> c
        | None -> [||])
      items
  in
  let chain_total = Array.fold_left (fun a c -> a + Array.length c) 0 chains in
  let upss =
    Array.map
      (fun r ->
        match Hashtbl.find_opt idx.Q.regions_up_of r.region_id with
        | Some a -> a
        | None -> [||])
      regions
  in
  let ups_total = Array.fold_left (fun a u -> a + Array.length u) 0 upss in
  let crm_total =
    Array.fold_left (fun a r -> a + List.length r.callrefmods) 0 regions
  in
  let cls_total =
    Array.fold_left
      (fun a r ->
        List.fold_left
          (fun a e -> a + List.length e.ref_classes + List.length e.mod_classes)
          a r.callrefmods)
      0 regions
  in
  let pad4 n = (n + 3) land lnot 3 in
  let empty_alias =
    { Q.ab_slot = Hashtbl.create 1; ab_width = 0; ab_bits = Bytes.create 0 }
  in
  let aliases =
    Array.map
      (fun r ->
        match Hashtbl.find_opt idx.Q.alias_of_region r.region_id with
        | Some ab -> ab
        | None -> empty_alias)
      regions
  in
  let alias_bytes =
    Array.fold_left
      (fun a ab ->
        a + 8 + (8 * ab.Q.ab_width) + pad4 (Bytes.length ab.Q.ab_bits))
      0 aliases
  in
  let lines =
    Hashtbl.fold
      (fun line r acc -> (line, Hashtbl.find ridx r.region_id) :: acc)
      idx.Q.innermost_at_line []
    |> List.sort compare |> Array.of_list
  in
  let n_lines = Array.length lines in
  let lcdd_total =
    Array.fold_left (fun a r -> a + List.length r.lcdds) 0 regions
  in
  (* section offsets *)
  let off_items = header_size in
  let off_chain = off_items + (16 * n_items) in
  let off_regions = off_chain + (20 * chain_total) in
  let off_crm = off_regions + (40 * n_regions) in
  let off_cls = off_crm + (28 * crm_total) in
  let off_alias = off_cls + (4 * cls_total) in
  let off_ups = off_alias + alias_bytes in
  let off_lines = off_ups + (4 * ups_total) in
  let off_lcdd = off_lines + (8 * n_lines) in
  let total = off_lcdd + (24 * lcdd_total) in
  let b = Bytes.make total '\000' in
  Bytes.blit_string magic 0 b 0 4;
  pu32 b 4 hlix_version;
  (* generation stays 0: the publisher stamps it *)
  pu32 b o_len total;
  Bytes.blit_string content_hash 0 b o_hash 16;
  pu32 b o_nitems n_items;
  pu32 b o_nregions n_regions;
  pu32 b o_nlines n_lines;
  pu32 b o_items off_items;
  pu32 b o_chain off_chain;
  pu32 b o_regions off_regions;
  pu32 b o_crm off_crm;
  pu32 b o_cls off_cls;
  pu32 b o_alias off_alias;
  pu32 b o_ups off_ups;
  pu32 b o_lines off_lines;
  pu32 b o_lcdd off_lcdd;
  pu32 b o_nlcdds lcdd_total;
  (* items + chain pool *)
  let chain_off = ref off_chain in
  Array.iteri
    (fun i id ->
      let c = chains.(i) in
      let ioff = off_items + (16 * i) in
      pu32 b ioff id;
      pu32 b (ioff + 4)
        (match Hashtbl.find_opt idx.Q.line_of_item id with
        | Some l -> l land mask32
        | None -> none);
      pu32 b (ioff + 8) !chain_off;
      pu32 b (ioff + 12) (Array.length c);
      Array.iter
        (fun (rid, cid) ->
          let e = !chain_off in
          pu32 b e
            (match Hashtbl.find_opt ridx rid with Some i -> i | None -> none);
          pu32 b (e + 4) rid;
          pu32 b (e + 8) cid;
          pu32 b (e + 12)
            (match Hashtbl.find_opt idx.Q.kind_of_class (rid, cid) with
            | Some Definitely -> 0
            | Some Maybe -> 1
            | None -> 2);
          pu32 b (e + 16)
            (match Hashtbl.find_opt idx.Q.alias_of_region rid with
            | Some ab -> (
                match Hashtbl.find_opt ab.Q.ab_slot cid with
                | Some s -> s
                | None -> none)
            | None -> none);
          chain_off := e + 20)
        c)
    items;
  assert (!chain_off = off_regions);
  (* regions + crm + cls + alias + ups + lcdd *)
  let crm_off = ref off_crm
  and cls_off = ref off_cls
  and alias_off = ref off_alias
  and ups_off = ref off_ups
  and lcdd_off = ref off_lcdd in
  Array.iteri
    (fun i r ->
      let roff = off_regions + (40 * i) in
      pu32 b roff r.region_id;
      pu32 b (roff + 4) (r.first_line land mask32);
      pu32 b (roff + 8) (r.last_line land mask32);
      pu32 b (roff + 12) !crm_off;
      pu32 b (roff + 16) (List.length r.callrefmods);
      List.iter
        (fun e ->
          let eoff = !crm_off in
          (match e.call_key with
          | Key_call_item id ->
              pu32 b eoff 0;
              pu32 b (eoff + 4) id
          | Key_sub_region sr ->
              pu32 b eoff 1;
              pu32 b (eoff + 4)
                (match Hashtbl.find_opt ridx sr with
                | Some i -> i
                | None -> none));
          pu32 b (eoff + 8) (if e.refmod_all then 1 else 0);
          (* sorted runs so the reader binary-searches membership *)
          let put_cls l =
            let off0 = !cls_off in
            List.iter
              (fun c ->
                pu32 b !cls_off c;
                cls_off := !cls_off + 4)
              (List.sort compare l);
            (off0, List.length l)
          in
          let ro, rc = put_cls e.ref_classes in
          let mo, mc = put_cls e.mod_classes in
          pu32 b (eoff + 12) ro;
          pu32 b (eoff + 16) rc;
          pu32 b (eoff + 20) mo;
          pu32 b (eoff + 24) mc;
          crm_off := eoff + 28)
        r.callrefmods;
      pu32 b (roff + 20) !ups_off;
      pu32 b (roff + 24) (Array.length upss.(i));
      Array.iter
        (fun ur ->
          pu32 b !ups_off (Hashtbl.find ridx ur.region_id);
          ups_off := !ups_off + 4)
        upss.(i);
      pu32 b (roff + 28) !alias_off;
      let ab = aliases.(i) in
      let k = ab.Q.ab_width in
      pu32 b !alias_off k;
      pu32 b (!alias_off + 4) k;
      let pairs =
        Hashtbl.fold (fun c s acc -> (c, s) :: acc) ab.Q.ab_slot []
        |> List.sort compare
      in
      List.iteri
        (fun j (c, s) ->
          pu32 b (!alias_off + 8 + (8 * j)) c;
          pu32 b (!alias_off + 8 + (8 * j) + 4) s)
        pairs;
      let bo = !alias_off + 8 + (8 * k) in
      Bytes.blit ab.Q.ab_bits 0 b bo (Bytes.length ab.Q.ab_bits);
      alias_off := bo + pad4 (Bytes.length ab.Q.ab_bits);
      pu32 b (roff + 32) !lcdd_off;
      pu32 b (roff + 36) (List.length r.lcdds);
      List.iter
        (fun l ->
          let e = !lcdd_off in
          pu32 b e l.lcdd_src;
          pu32 b (e + 4) l.lcdd_dst;
          pu32 b (e + 8)
            (match l.lcdd_dep with Dep_definite -> 0 | Dep_maybe -> 1);
          (match l.lcdd_distance with
          | Some d ->
              pu32 b (e + 12) 1;
              pu32 b (e + 16) (d land mask32)
          | None -> ());
          (match l.lcdd_prob with
          | Some p -> pu32 b (e + 20) (p + 1)
          | None -> ());
          lcdd_off := e + 24)
        r.lcdds)
    regions;
  assert (!crm_off = off_cls);
  assert (!cls_off = off_alias);
  assert (!alias_off = off_ups);
  assert (!ups_off = off_lines);
  assert (!lcdd_off = total);
  Array.iteri
    (fun i (line, ri) ->
      pu32 b (off_lines + (8 * i)) (line land mask32);
      pu32 b (off_lines + (8 * i) + 4) ri)
    lines;
  let crc = S.crc32 (Bytes.unsafe_to_string b) o_len (total - o_len) in
  pu32 b o_crc crc;
  b

(* ------------------------------------------------------------------ *)
(* Raw loads (bounds-checked: garbage raises Torn, never a crash)      *)
(* ------------------------------------------------------------------ *)

let dim (seg : seg) = Bigarray.Array1.dim seg

let u8 (seg : seg) off =
  if off < 0 || off >= dim seg then raise Torn;
  Bigarray.Array1.unsafe_get seg off

(* NB: [Bigarray.Array1.unsafe_get] must stay fully applied at every
   site below — binding it to a shorter name demotes the primitive to
   a generic C call and costs ~30x on the query hot path. *)
let u32 (seg : seg) off =
  if off < 0 || off + 4 > Bigarray.Array1.dim seg then raise Torn;
  Bigarray.Array1.unsafe_get seg off
  lor (Bigarray.Array1.unsafe_get seg (off + 1) lsl 8)
  lor (Bigarray.Array1.unsafe_get seg (off + 2) lsl 16)
  lor (Bigarray.Array1.unsafe_get seg (off + 3) lsl 24)

let i32 (seg : seg) off =
  let v = u32 seg off in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* ------------------------------------------------------------------ *)
(* Header accessors                                                    *)
(* ------------------------------------------------------------------ *)

(** Seqlock generation word.  Even = stable, odd = rebuild in
    progress.  Publishers go odd before rewriting the body and even
    (+2) after; readers sample it before and after a lookup. *)
let generation (seg : seg) =
  let g = u32 seg o_gen and h = u32 seg (o_gen + 4) in
  g lor (h lsl 32)

let set_generation (seg : seg) g =
  if dim seg < o_gen + 8 then raise Torn;
  for i = 0 to 7 do
    Bigarray.Array1.unsafe_set seg (o_gen + i) ((g lsr (i * 8)) land 0xff)
  done

let total_len (seg : seg) = u32 seg o_len

let content_hash (seg : seg) =
  String.init 16 (fun i -> Char.chr (u8 seg (o_hash + i)))

(** Wrap HLIX bytes (e.g. fresh from {!build}) as a segment without
    going through a file — tests and in-process probes. *)
let seg_of_bytes (b : Bytes.t) : seg =
  let n = Bytes.length b in
  let seg =
    Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n
  in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set seg i (Char.code (Bytes.unsafe_get b i))
  done;
  seg

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(** Full segment check: magic (E0630), version (E0631), length
    (E0632), body CRC over [20, total_len) (E0633), content hash
    against [expect_hash] when given (E0634), and section geometry —
    monotone section offsets consistent with the header counts
    (E0635).  The generation word is deliberately outside the CRC;
    call this once per mapping and once per observed generation
    change, not per query. *)
let validate ?expect_hash (seg : seg) =
  let n = dim seg in
  if n < header_size then
    S.corrupt ~code:"E0632" "HLIX segment truncated: %d bytes, header needs %d"
      n header_size;
  for i = 0 to 3 do
    if u8 seg i <> Char.code magic.[i] then
      S.corrupt ~at:i ~code:"E0630" "bad HLIX magic"
  done;
  let v = u32 seg 4 in
  if v <> hlix_version then
    S.corrupt ~at:4 ~code:"E0631" "unknown HLIX version %d (expected %d)" v
      hlix_version;
  let len = u32 seg o_len in
  if len < header_size || len > n then
    S.corrupt ~at:o_len ~code:"E0632"
      "HLIX total_len %d outside [%d, %d] (truncated segment?)" len header_size
      n;
  (* CRC over [o_len, len): everything except magic/version (checked
     above), the seqlock word and the CRC field itself *)
  let body = Bytes.create (len - o_len) in
  for i = 0 to len - o_len - 1 do
    Bytes.unsafe_set body i
      (Char.unsafe_chr (Bigarray.Array1.unsafe_get seg (o_len + i)))
  done;
  let crc = S.crc32 (Bytes.unsafe_to_string body) 0 (len - o_len) in
  if crc <> u32 seg o_crc then
    S.corrupt ~at:o_crc ~code:"E0633"
      "HLIX body CRC mismatch: stored %08x, computed %08x" (u32 seg o_crc) crc;
  (match expect_hash with
  | Some h when content_hash seg <> h ->
      S.corrupt ~at:o_hash ~code:"E0634"
        "HLIX content hash does not match the opened HLI2 container"
  | _ -> ());
  let n_items = u32 seg o_nitems
  and n_regions = u32 seg o_nregions
  and n_lines = u32 seg o_nlines
  and n_lcdds = u32 seg o_nlcdds in
  let offs =
    [
      u32 seg o_items; u32 seg o_chain; u32 seg o_regions; u32 seg o_crm;
      u32 seg o_cls; u32 seg o_alias; u32 seg o_ups; u32 seg o_lines;
      u32 seg o_lcdd;
    ]
  in
  let rec monotone prev = function
    | [] -> prev <= len
    | o :: rest -> prev <= o && monotone o rest
  in
  if not (monotone header_size offs) then
    S.corrupt ~code:"E0635" "HLIX section offsets not monotone within %d" len;
  let sec i = List.nth offs i in
  if sec 1 - sec 0 <> 16 * n_items then
    S.corrupt ~code:"E0635" "HLIX item section size disagrees with n_items";
  if sec 3 - sec 2 <> 40 * n_regions then
    S.corrupt ~code:"E0635" "HLIX region section size disagrees with n_regions";
  if sec 8 - sec 7 <> 8 * n_lines then
    S.corrupt ~code:"E0635" "HLIX line section size disagrees with n_lines";
  if len - sec 8 <> 24 * n_lcdds then
    S.corrupt ~code:"E0635" "HLIX lcdd section size disagrees with n_lcdds"

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

(* preallocated results: the hot path returns these without allocating *)
let equiv_same_def = Q.Equiv_same Definitely
let equiv_same_maybe = Q.Equiv_same Maybe

(* cap any count read from the mapping: a table can't hold more
   records than the mapping has bytes, so anything bigger is torn *)
let capped seg count rec_size =
  if count < 0 || count * rec_size > dim seg then raise Torn;
  count

(* binary search the item table for [id]; -1 when absent.  Torn data
   may break sortedness — that yields a wrong slot, never a crash or
   unbounded loop, and the caller's generation re-check rejects it. *)
let find_item (seg : seg) id =
  let n = capped seg (u32 seg o_nitems) 16 in
  let base = u32 seg o_items in
  let lo = ref 0 and hi = ref n and res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = u32 seg (base + (16 * mid)) in
    if v = id then begin
      res := mid;
      lo := !hi
    end
    else if v < id then lo := mid + 1
    else hi := mid
  done;
  !res

let find_region (seg : seg) rid =
  let n = capped seg (u32 seg o_nregions) 40 in
  let base = u32 seg o_regions in
  let lo = ref 0 and hi = ref n and res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = u32 seg (base + (40 * mid)) in
    if v = rid then begin
      res := mid;
      lo := !hi
    end
    else if v < rid then lo := mid + 1
    else hi := mid
  done;
  !res

(* membership probe of a sorted u32 run *)
let cls_mem (seg : seg) off cnt v =
  let cnt = capped seg cnt 4 in
  let lo = ref 0 and hi = ref cnt and found = ref false in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let x = u32 seg (off + (4 * mid)) in
    if x = v then begin
      found := true;
      lo := !hi
    end
    else if x < v then lo := mid + 1
    else hi := mid
  done;
  !found

(* slot of class [c] in the region's alias record at [aoff]; -1 when
   the class is not in the alias relation *)
let alias_slot (seg : seg) aoff c =
  let k = capped seg (u32 seg (aoff + 4)) 8 in
  let base = aoff + 8 in
  let lo = ref 0 and hi = ref k and res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let x = u32 seg (base + (8 * mid)) in
    if x = c then begin
      res := u32 seg (base + (8 * mid) + 4);
      lo := !hi
    end
    else if x < c then lo := mid + 1
    else hi := mid
  done;
  !res

let alias_bit (seg : seg) aoff width sa sb =
  if sa < 0 || sb < 0 || sa >= width || sb >= width then false
  else
    let k = u32 seg (aoff + 4) in
    let bits = aoff + 8 + (8 * k) in
    let i = (sa * width) + sb in
    u8 seg (bits + (i lsr 3)) land (1 lsl (i land 7)) <> 0

(** Mirror of {!Query.get_equiv_acc}'s uncached decision, off the
    mapping.  Raises {!Torn} on any out-of-bounds load (segment being
    rewritten); never allocates on a successful path. *)
let get_equiv_acc (seg : seg) item_a item_b =
  let ia = find_item seg item_a and ib = find_item seg item_b in
  if ia < 0 || ib < 0 then Q.Equiv_unknown
  else
    let base = u32 seg o_items in
    let ca_off = u32 seg (base + (16 * ia) + 8)
    and ca_len = capped seg (u32 seg (base + (16 * ia) + 12)) 20
    and cb_off = u32 seg (base + (16 * ib) + 8)
    and cb_len = capped seg (u32 seg (base + (16 * ib) + 12)) 20 in
    if ca_len = 0 || cb_len = 0 then Q.Equiv_unknown
    else begin
      (* innermost region present in both chains, scanning a's chain
         outward — identical walk order to the engine *)
      let result = ref Q.Equiv_unknown and decided = ref false in
      let i = ref 0 in
      while (not !decided) && !i < ca_len do
        let ea = ca_off + (20 * !i) in
        let rid = u32 seg (ea + 4) in
        let j = ref 0 and jm = ref (-1) in
        while !jm < 0 && !j < cb_len do
          if u32 seg (cb_off + (20 * !j) + 4) = rid then jm := !j;
          incr j
        done;
        if !jm >= 0 then begin
          decided := true;
          let eb = cb_off + (20 * !jm) in
          let ca = u32 seg (ea + 8) and cb = u32 seg (eb + 8) in
          if ca = cb then
            result :=
              (match u32 seg (ea + 12) with
              | 0 -> equiv_same_def
              | 1 -> equiv_same_maybe
              | _ -> Q.Equiv_unknown)
          else begin
            let ridx = u32 seg ea in
            if ridx = none then result := Q.Equiv_unknown
            else begin
              let sa = u32 seg (ea + 16) and sb = u32 seg (eb + 16) in
              if sa = none || sb = none then result := Q.Equiv_none
              else begin
                let roff =
                  u32 seg o_regions + (40 * capped seg ridx 40)
                in
                let aoff = u32 seg (roff + 28) in
                let width = capped seg (u32 seg aoff) 8 in
                result :=
                  (if alias_bit seg aoff width sa sb then Q.Equiv_alias
                   else Q.Equiv_none)
              end
            end
          end
        end;
        incr i
      done;
      !result
    end

(* exact-line probe of the sorted lines section; -1 when absent *)
let find_line (seg : seg) line =
  let n = capped seg (u32 seg o_nlines) 8 in
  let base = u32 seg o_lines in
  let lo = ref 0 and hi = ref n and res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = u32 seg (base + (8 * mid)) in
    if v = line then begin
      res := u32 seg (base + (8 * mid) + 4);
      lo := !hi
    end
    else if v < line then lo := mid + 1
    else hi := mid
  done;
  !res

(* first chain element of item slot [islot] whose rid equals [rid];
   the class id there, or -1 — the engine's [class_at] *)
let class_at (seg : seg) islot rid =
  let base = u32 seg o_items in
  let c_off = u32 seg (base + (16 * islot) + 8)
  and c_len = capped seg (u32 seg (base + (16 * islot) + 12)) 20 in
  let i = ref 0 and res = ref (-1) in
  while !res < 0 && !i < c_len do
    if u32 seg (c_off + (20 * !i) + 4) = rid then
      res := u32 seg (c_off + (20 * !i) + 8);
    incr i
  done;
  !res

(** Mirror of {!Query.get_call_acc}'s uncached decision: resolve the
    call item's line to its innermost region, then walk the
    precomputed ancestor chain looking for the first callrefmod entry
    covering the call. *)
let get_call_acc (seg : seg) ~call ~mem =
  let ic = find_item seg call in
  if ic < 0 then Q.Call_unknown
  else
    let base = u32 seg o_items in
    let call_line = u32 seg (base + (16 * ic) + 4) in
    if call_line = none then Q.Call_unknown
    else
      let r0 = find_line seg call_line in
      if r0 < 0 then Q.Call_unknown
      else begin
        let im = find_item seg mem in
        let rbase = u32 seg o_regions in
        let r0off = rbase + (40 * capped seg r0 40) in
        let ups_off = u32 seg (r0off + 20)
        and ups_cnt = capped seg (u32 seg (r0off + 24)) 4 in
        let result = ref Q.Call_unknown and decided = ref false in
        let i = ref 0 in
        while (not !decided) && !i < ups_cnt do
          let uidx = capped seg (u32 seg (ups_off + (4 * !i))) 32 in
          let roff = rbase + (40 * uidx) in
          let rid = u32 seg roff in
          let crm_off = u32 seg (roff + 12)
          and crm_cnt = capped seg (u32 seg (roff + 16)) 28 in
          (* first covering entry, in table order *)
          let e = ref (-1) and j = ref 0 in
          while !e < 0 && !j < crm_cnt do
            let eoff = crm_off + (28 * !j) in
            let covers =
              match u32 seg eoff with
              | 0 -> u32 seg (eoff + 4) = call
              | _ ->
                  let sr = u32 seg (eoff + 4) in
                  sr <> none
                  &&
                  let soff = rbase + (40 * capped seg sr 40) in
                  call_line >= i32 seg (soff + 4)
                  && call_line <= i32 seg (soff + 8)
            in
            if covers then e := eoff;
            incr j
          done;
          (if !e >= 0 then
             let eoff = !e in
             let refmod_all = u32 seg (eoff + 8) <> 0 in
             let mc = if im < 0 then -1 else class_at seg im rid in
             if mc < 0 then begin
               (* call covered but mem not representable here *)
               if refmod_all then begin
                 decided := true;
                 result := Q.Call_refmod
               end
             end
             else begin
               decided := true;
               if refmod_all then result := Q.Call_refmod
               else
                 let r =
                   cls_mem seg (u32 seg (eoff + 12)) (u32 seg (eoff + 16)) mc
                 and m =
                   cls_mem seg (u32 seg (eoff + 20)) (u32 seg (eoff + 24)) mc
                 in
                 result :=
                   (match (r, m) with
                   | false, false -> Q.Call_none
                   | true, false -> Q.Call_ref
                   | false, true -> Q.Call_mod
                   | true, true -> Q.Call_refmod)
             end);
          incr i
        done;
        !result
      end

(** Mirror of {!Query.get_alias}: O(log k) slot lookups plus one bit
    probe on the region's alias matrix. *)
let get_alias (seg : seg) ~rid cls_a cls_b =
  let ri = find_region seg rid in
  if ri < 0 then false
  else
    let roff = u32 seg o_regions + (40 * ri) in
    let aoff = u32 seg (roff + 28) in
    let width = capped seg (u32 seg aoff) 8 in
    let sa = alias_slot seg aoff cls_a in
    if sa < 0 then false
    else
      let sb = alias_slot seg aoff cls_b in
      alias_bit seg aoff width sa sb

(** Mirror of {!Query.get_region_of_item}: the region of the item's
    innermost (first) chain element. *)
let get_region_of_item (seg : seg) item =
  let i = find_item seg item in
  if i < 0 then None
  else
    let base = u32 seg o_items in
    let len = u32 seg (base + (16 * i) + 12) in
    if len = 0 then None
    else Some (u32 seg (u32 seg (base + (16 * i) + 8) + 4))

(** Mirror of {!Query.get_lcdd}: resolve both items to their classes
    in region [rid], then filter the region's LCDD edge list (entry
    order preserved).  [None] when the region is unknown or either
    item has no class there — exactly the engine's answer, so a
    shared-memory reader returns byte-identical results. *)
let get_lcdd (seg : seg) ~rid item_a item_b =
  let ri = find_region seg rid in
  if ri < 0 then None
  else
    let ia = find_item seg item_a and ib = find_item seg item_b in
    if ia < 0 || ib < 0 then None
    else
      let ca = class_at seg ia rid and cb = class_at seg ib rid in
      if ca < 0 || cb < 0 then None
      else begin
        let roff = u32 seg o_regions + (40 * ri) in
        let off = u32 seg (roff + 32)
        and cnt = capped seg (u32 seg (roff + 36)) 24 in
        (* build back-to-front so the list preserves entry order *)
        let acc = ref [] in
        for j = cnt - 1 downto 0 do
          let e = off + (24 * j) in
          let src = u32 seg e and dst = u32 seg (e + 4) in
          if (src = ca && dst = cb) || (src = cb && dst = ca) then
            acc :=
              {
                lcdd_src = src;
                lcdd_dst = dst;
                lcdd_dep = (if u32 seg (e + 8) = 0 then Dep_definite else Dep_maybe);
                lcdd_distance =
                  (if u32 seg (e + 12) = 0 then None else Some (i32 seg (e + 16)));
                lcdd_prob =
                  (let v = u32 seg (e + 20) in
                   if v = 0 then None else Some (v - 1));
              }
              :: !acc
        done;
        Some !acc
      end
