(** The High-Level Information (HLI) format — logical schema.

    Follows Section 2 of the paper exactly.  An HLI {e file} holds one
    {e entry} per program unit; each entry has a {b line table} (mapping
    source lines to memory/call items, in back-end instruction order) and
    a {b region table} (per-region equivalent-access, alias, loop-carried
    data dependence and call REF/MOD sub-tables).

    Everything here is deliberately independent of both the front end and
    the back end: items, classes and regions are plain integers, and the
    only strings are unit names, callee names and optional human-readable
    descriptors.  That independence is the paper's central design claim —
    the same file can serve any front-end/back-end pair. *)

(** Access type of an item (paper: "load, store, function call, etc."). *)
type access_type = Acc_load | Acc_store | Acc_call

(** Equivalence strength of a class (Section 2.2.1): [Definitely] means
    all member accesses touch the same location; [Maybe] means the front
    end merged possibly-overlapping accesses to keep the HLI small. *)
type equiv_kind = Definitely | Maybe

(** Dependence strength in the LCDD table. *)
type dep_type = Dep_definite | Dep_maybe

(* ------------------------------------------------------------------ *)
(* Line table                                                          *)
(* ------------------------------------------------------------------ *)

type item_entry = {
  item_id : int;  (** unique within the program unit *)
  acc : access_type;
}

type line_entry = {
  line_no : int;
  items : item_entry list;
      (** in the exact order the back end's instruction list contains
          the corresponding memory references (Section 2.1) *)
}

type line_table = line_entry list
(** sorted by [line_no] *)

(* ------------------------------------------------------------------ *)
(* Region table                                                        *)
(* ------------------------------------------------------------------ *)

(** A member of an equivalence class: either an item immediately enclosed
    by the region, or a whole class of an immediate sub-region. *)
type member =
  | Member_item of int
  | Member_subclass of { sub_region : int; cls : int }

type eq_class = {
  class_id : int;
      (** drawn from the same id space as items, per the paper ("each
          equivalent access class has a unique item ID") *)
  kind : equiv_kind;
  members : member list;
  desc : string;  (** human-readable location, e.g. ["b[0..9]"] *)
}

type alias_entry = {
  alias_classes : int list;
      (** ids of classes of this region that may overlap at run time *)
  alias_prob : int option;
      (** HLI3 probability section: likelihood the classes really do
          overlap at run time, in per-mille (0..1000), derived from
          points-to set cardinalities.  [None] = no estimate (HLI1/HLI2
          data, or evidence unavailable); consumers treat absence as
          "assume the alias" *)
}

type lcdd_entry = {
  lcdd_src : int;  (** class id at the earlier iteration *)
  lcdd_dst : int;  (** class id at the later iteration *)
  lcdd_dep : dep_type;
  lcdd_distance : int option;
      (** iteration distance, normalized forward ('>'); [None] = unknown *)
  lcdd_prob : int option;
      (** HLI3 probability section: likelihood the dependence is real,
          in per-mille (0..1000), derived from affine-test slack
          (GCD/Banerjee margins).  [None] = no estimate *)
}

(** Key of a call REF/MOD entry: a call item immediately enclosed by the
    region, or a sub-region standing for all calls within it. *)
type call_key = Key_call_item of int | Key_sub_region of int

type callrefmod_entry = {
  call_key : call_key;
  ref_classes : int list;
  mod_classes : int list;
  (* When true, the call's effect could not be bounded: it may touch any
     memory (e.g. pointers laundered through memory). *)
  refmod_all : bool;
}

type region_type = Region_unit | Region_loop

type region_entry = {
  region_id : int;  (** the unit region is 1 *)
  rtype : region_type;
  parent : int option;
  first_line : int;
  last_line : int;
  eq_classes : eq_class list;
  aliases : alias_entry list;
  lcdds : lcdd_entry list;
  callrefmods : callrefmod_entry list;
}

(* ------------------------------------------------------------------ *)
(* File                                                                *)
(* ------------------------------------------------------------------ *)

type hli_entry = {
  unit_name : string;  (** function name *)
  line_table : line_table;
  regions : region_entry list;  (** preorder; head is the unit region *)
}

type hli_file = { entries : hli_entry list }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let find_entry file name =
  List.find_opt (fun e -> e.unit_name = name) file.entries

let find_region entry rid =
  List.find_opt (fun r -> r.region_id = rid) entry.regions

let find_class region cid =
  List.find_opt (fun c -> c.class_id = cid) region.eq_classes

let items_of_line entry line =
  match List.find_opt (fun le -> le.line_no = line) entry.line_table with
  | Some le -> le.items
  | None -> []

(** All item ids of a unit, in line-table order. *)
let all_items entry =
  List.concat_map (fun le -> List.map (fun it -> it.item_id) le.items) entry.line_table

let acc_to_string = function
  | Acc_load -> "load"
  | Acc_store -> "store"
  | Acc_call -> "call"

let pp_member ppf = function
  | Member_item id -> Fmt.pf ppf "i%d" id
  | Member_subclass { sub_region; cls } -> Fmt.pf ppf "R%d.c%d" sub_region cls

let pp_class ppf c =
  Fmt.pf ppf "c%d%s \"%s\" = {@[<h>%a@]}" c.class_id
    (match c.kind with Definitely -> "" | Maybe -> "?")
    c.desc
    Fmt.(list ~sep:comma pp_member)
    c.members

(** Render a per-mille probability as a compact decimal, e.g. 850 ->
    ["0.85"]; integer arithmetic only, so output is deterministic. *)
let prob_to_string p =
  if p mod 10 = 0 then
    if p mod 100 = 0 then Printf.sprintf "%d.%d" (p / 1000) (p mod 1000 / 100)
    else Printf.sprintf "%d.%02d" (p / 1000) (p mod 1000 / 10)
  else Printf.sprintf "%d.%03d" (p / 1000) (p mod 1000)

let pp_prob ppf = function
  | None -> ()
  | Some p -> Fmt.pf ppf ", p=%s" (prob_to_string p)

let pp_lcdd ppf l =
  Fmt.pf ppf "c%d -> c%d (%s, d=%s%a)" l.lcdd_src l.lcdd_dst
    (match l.lcdd_dep with Dep_definite -> "definite" | Dep_maybe -> "maybe")
    (match l.lcdd_distance with Some d -> string_of_int d | None -> "?")
    pp_prob l.lcdd_prob

let pp_region ppf r =
  Fmt.pf ppf "@[<v 2>region %d (%s, lines %d-%d%s):@,classes: @[<v>%a@]@,aliases: @[<h>%a@]@,lcdd: @[<v>%a@]@,calls: %d entries@]"
    r.region_id
    (match r.rtype with Region_unit -> "unit" | Region_loop -> "loop")
    r.first_line r.last_line
    (match r.parent with Some p -> Fmt.str ", parent %d" p | None -> "")
    Fmt.(list ~sep:cut pp_class)
    r.eq_classes
    Fmt.(
      list ~sep:semi (fun ppf a ->
          pf ppf "{%a%a}" (list ~sep:comma int) a.alias_classes pp_prob
            a.alias_prob))
    r.aliases
    Fmt.(list ~sep:cut pp_lcdd)
    r.lcdds
    (List.length r.callrefmods)

let pp_entry ppf e =
  Fmt.pf ppf "@[<v 2>unit %s:@,%d lines, %d items, %d regions@,%a@]" e.unit_name
    (List.length e.line_table)
    (List.length (all_items e))
    (List.length e.regions)
    Fmt.(list ~sep:cut pp_region)
    e.regions
