(** HLI query interface (paper Section 3.2.2) — indexed, memoized engine.

    The stored HLI is accessed only through these functions, so a back
    end never touches the raw tables.  An {!index} is built once per
    program unit when its entry is imported.

    The paper's premise is that the back end consults the HLI on every
    memory-disambiguation decision (tens of queries per source line in
    the first scheduling pass alone, Table 2), so this engine
    precomputes everything a query needs at {!build} time:

    - each item's full [(region, class)] representation chain as an
      array (no per-query list walking through subclass links),
    - per-region alias {e bitsets}, making {!get_alias} and the
      alias leg of {!get_equiv_acc} an O(1) bit test,
    - each region's ancestor chain and, per source line, the innermost
      region containing it (for {!get_call_acc}),

    and memoizes the two pair-granularity queries ({!get_equiv_acc} on
    the unordered item pair, {!get_call_acc} on [(call, mem)]).  Memo
    tables are dropped by {!invalidate}, which {!Maintain} transactions
    call on watched indexes so maintenance can never leave a stale
    cached answer behind.  Per-kind query counters are bumped once per
    {e logical} query — cache hits included — so Table 2 totals are
    independent of caching.

    An index (and its memo tables) is not synchronized: harness domains
    each build their own index per compilation variant.  The
    process-wide counters below are sharded per domain (each domain
    writes its own shard; readers sum the shards), so counting stays
    off the atomic-operation cost on the per-query hot path.

    The previous list-walking implementation survives verbatim as
    {!Query_ref}, the slow reference oracle the differential tests
    compare against. *)

open Tables

(* ------------------------------------------------------------------ *)
(* Per-kind query counters (harness telemetry)                         *)
(* ------------------------------------------------------------------ *)

(** Process-wide counters of the five basic HLI queries, one per kind,
    plus the memo-cache and index-build counters the v2 telemetry
    schema reports.

    Counting sits on the hot path of every query, so the counters are
    {e sharded per domain}: each domain bumps plain mutable fields of
    its own domain-local shard (no atomic read-modify-write per query),
    and readers sum over all shards.  Every logical query is counted
    exactly once, so the sums are deterministic even though the
    per-shard split is not.  Readers run either on the same domain or
    after the harness pool has joined its workers (a synchronization
    edge), so the summed values are up to date at every read point. *)
type query_kind =
  | Q_equiv_acc
  | Q_alias
  | Q_lcdd
  | Q_call_acc
  | Q_region_of_item
  | Q_equiv_prob

type shard = {
  mutable s_equiv_acc : int;
  mutable s_alias : int;
  mutable s_lcdd : int;
  mutable s_call_acc : int;
  mutable s_region_of_item : int;
  mutable s_equiv_prob : int;
  mutable s_equiv_hits : int;
  mutable s_equiv_misses : int;
  mutable s_call_hits : int;
  mutable s_call_misses : int;
  mutable s_invalidations : int;
  mutable s_index_builds : int;
}

let shards : shard list ref = ref []
let shards_mutex = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          s_equiv_acc = 0;
          s_alias = 0;
          s_lcdd = 0;
          s_call_acc = 0;
          s_region_of_item = 0;
          s_equiv_prob = 0;
          s_equiv_hits = 0;
          s_equiv_misses = 0;
          s_call_hits = 0;
          s_call_misses = 0;
          s_invalidations = 0;
          s_index_builds = 0;
        }
      in
      Mutex.lock shards_mutex;
      shards := s :: !shards;
      Mutex.unlock shards_mutex;
      s)

let shard () = Domain.DLS.get shard_key

let sum_shards f =
  Mutex.lock shards_mutex;
  let v = List.fold_left (fun acc s -> acc + f s) 0 !shards in
  Mutex.unlock shards_mutex;
  v

let count_query k =
  let s = shard () in
  match k with
  | Q_equiv_acc -> s.s_equiv_acc <- s.s_equiv_acc + 1
  | Q_alias -> s.s_alias <- s.s_alias + 1
  | Q_lcdd -> s.s_lcdd <- s.s_lcdd + 1
  | Q_call_acc -> s.s_call_acc <- s.s_call_acc + 1
  | Q_region_of_item -> s.s_region_of_item <- s.s_region_of_item + 1
  | Q_equiv_prob -> s.s_equiv_prob <- s.s_equiv_prob + 1

let query_kind_name = function
  | Q_equiv_acc -> "equiv_acc"
  | Q_alias -> "alias"
  | Q_lcdd -> "lcdd"
  | Q_call_acc -> "call_acc"
  | Q_region_of_item -> "region_of_item"
  | Q_equiv_prob -> "equiv_prob"

let all_query_kinds =
  [ Q_equiv_acc; Q_alias; Q_lcdd; Q_call_acc; Q_region_of_item; Q_equiv_prob ]

let field_of_kind k (s : shard) =
  match k with
  | Q_equiv_acc -> s.s_equiv_acc
  | Q_alias -> s.s_alias
  | Q_lcdd -> s.s_lcdd
  | Q_call_acc -> s.s_call_acc
  | Q_region_of_item -> s.s_region_of_item
  | Q_equiv_prob -> s.s_equiv_prob

(** Snapshot of all per-kind counters, in a fixed order. *)
let query_counters () =
  List.map (fun k -> (query_kind_name k, sum_shards (field_of_kind k))) all_query_kinds

let reset_query_counters () =
  Mutex.lock shards_mutex;
  List.iter
    (fun s ->
      s.s_equiv_acc <- 0;
      s.s_alias <- 0;
      s.s_lcdd <- 0;
      s.s_call_acc <- 0;
      s.s_region_of_item <- 0;
      s.s_equiv_prob <- 0)
    !shards;
  Mutex.unlock shards_mutex

(* ------------------------------------------------------------------ *)
(* Cache / index-build counters (harness telemetry, schema v2)         *)
(* ------------------------------------------------------------------ *)

(** Snapshot of the memo/index counters, in a fixed order (these feed
    the [hli-telemetry-v2] [query_cache] object and the [--stats] hit
    rate rows). *)
let cache_counters () =
  [
    ("equiv_memo_hits", sum_shards (fun s -> s.s_equiv_hits));
    ("equiv_memo_misses", sum_shards (fun s -> s.s_equiv_misses));
    ("call_memo_hits", sum_shards (fun s -> s.s_call_hits));
    ("call_memo_misses", sum_shards (fun s -> s.s_call_misses));
    ("memo_invalidations", sum_shards (fun s -> s.s_invalidations));
    ("index_builds", sum_shards (fun s -> s.s_index_builds));
  ]

let reset_cache_counters () =
  Mutex.lock shards_mutex;
  List.iter
    (fun s ->
      s.s_equiv_hits <- 0;
      s.s_equiv_misses <- 0;
      s.s_call_hits <- 0;
      s.s_call_misses <- 0;
      s.s_invalidations <- 0;
      s.s_index_builds <- 0)
    !shards;
  Mutex.unlock shards_mutex

(* ------------------------------------------------------------------ *)
(* Query result types                                                  *)
(* ------------------------------------------------------------------ *)

(** Result of the equivalent-access query, mirroring the paper's
    [HLI_EquivAccType]. *)
type equiv_result =
  | Equiv_none  (** proven distinct: never the same location *)
  | Equiv_same of equiv_kind  (** same class (definitely or maybe) *)
  | Equiv_alias  (** distinct classes listed as aliased *)
  | Equiv_unknown  (** at least one item is not represented in the HLI *)

(** Result of the call REF/MOD query, mirroring [HLI_GetCallAcc]. *)
type call_acc_result =
  | Call_none
  | Call_ref
  | Call_mod
  | Call_refmod
  | Call_unknown

(* ------------------------------------------------------------------ *)
(* Alias bitsets                                                       *)
(* ------------------------------------------------------------------ *)

(* Per-region alias relation flattened to a k×k bit matrix over the
   class ids that appear in any alias entry.  Two classes are aliased
   iff some alias entry lists both — exactly the relation the reference
   engine computes by scanning the entry list. *)
type alias_bits = {
  ab_slot : (int, int) Hashtbl.t;  (** class id -> dense slot *)
  ab_width : int;
  ab_bits : Bytes.t;
}

let build_alias_bits (r : region_entry) : alias_bits =
  let ab_slot = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun ae ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem ab_slot c) then begin
            Hashtbl.replace ab_slot c !next;
            incr next
          end)
        ae.alias_classes)
    r.aliases;
  let k = !next in
  let ab_bits = Bytes.make (((k * k) + 7) / 8) '\000' in
  let set a b =
    let i = (a * k) + b in
    Bytes.set ab_bits (i lsr 3)
      (Char.chr (Char.code (Bytes.get ab_bits (i lsr 3)) lor (1 lsl (i land 7))))
  in
  List.iter
    (fun ae ->
      let ss = List.map (Hashtbl.find ab_slot) ae.alias_classes in
      List.iter (fun x -> List.iter (fun y -> set x y) ss) ss)
    r.aliases;
  { ab_slot; ab_width = k; ab_bits }

let alias_bit_test (ab : alias_bits) a b =
  match (Hashtbl.find_opt ab.ab_slot a, Hashtbl.find_opt ab.ab_slot b) with
  | Some sa, Some sb ->
      let i = (sa * ab.ab_width) + sb in
      Char.code (Bytes.get ab.ab_bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The index                                                           *)
(* ------------------------------------------------------------------ *)

(* Specialized int-keyed hash table for the memo caches: the generic
   [Hashtbl] hashes every key through the polymorphic runtime hash,
   which is a measurable per-query cost; a multiplicative mix of the
   packed pair key is enough (the low bits of the pack are one item id,
   so identity hashing would collide pathologically). *)
module Imemo = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  (* bucket selection uses the low bits of the hash, and multiplication
     only propagates entropy upward — fold the high half (the first
     packed id) down before mixing *)
  let hash x =
    let x = x lxor (x lsr 21) in
    x * 0x9E3779B1 land max_int
end)

type index = {
  entry : hli_entry;
  region_by_id : (int, region_entry) Hashtbl.t;
  (* innermost class containing each item: item id -> (region, class) *)
  direct_class : (int, int * int) Hashtbl.t;
  (* subclass links: (sub_region, class) -> (region, class) of parent *)
  class_up : (int * int, int * int) Hashtbl.t;
  acc_of_item : (int, access_type) Hashtbl.t;
  line_of_item : (int, int) Hashtbl.t;
  (* --- dense precomputed structures --- *)
  (* item id -> its full (region, class) chain, innermost first *)
  chain_of_item : (int, (int * int) array) Hashtbl.t;
  (* (region, class) -> equivalence kind, for the class_kind leg *)
  kind_of_class : (int * int, equiv_kind) Hashtbl.t;
  (* region id -> flattened alias relation *)
  alias_of_region : (int, alias_bits) Hashtbl.t;
  (* region id -> ancestor chain (the region itself first, root last) *)
  regions_up_of : (int, region_entry array) Hashtbl.t;
  (* line number -> innermost region containing it (line-interval index
     over the lines the line table actually mentions) *)
  innermost_at_line : (int, region_entry) Hashtbl.t;
  (* item ids seen more than once in the line table or in equivalence
     classes — earlier entries were silently overwritten pre-index;
     importers surface these as a warning *)
  dup_items : int list;
  (* --- memo tables (per index; single-domain) --- *)
  (* keyed by two item ids packed into one int (see [memo_key]) *)
  equiv_memo : equiv_result Imemo.t;
  call_memo : call_acc_result Imemo.t;
  prob_memo : (equiv_result * int) Imemo.t;
}

(* Pack an id pair into one int key: cheaper to hash than a tuple and
   allocation-free on the per-query hot path.  A pair is only packable
   when both ids fit [memo_id_bits] (item ids are small per-unit
   integers, so in practice always); queries about out-of-range ids
   bypass the memo and are recomputed. *)
let memo_id_bits = 21
let memo_id_max = (1 lsl memo_id_bits) - 1
let memo_packable a b = a >= 0 && a <= memo_id_max && b >= 0 && b <= memo_id_max
let memo_key a b = (a lsl memo_id_bits) lor b

let build (entry : hli_entry) : index =
  let sh = shard () in
  sh.s_index_builds <- sh.s_index_builds + 1;
  let region_by_id = Hashtbl.create 16 in
  let direct_class = Hashtbl.create 64 in
  let class_up = Hashtbl.create 64 in
  let acc_of_item = Hashtbl.create 64 in
  let line_of_item = Hashtbl.create 64 in
  let dups = ref [] in
  List.iter (fun r -> Hashtbl.replace region_by_id r.region_id r) entry.regions;
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              match m with
              | Member_item id ->
                  if Hashtbl.mem direct_class id then dups := id :: !dups;
                  Hashtbl.replace direct_class id (r.region_id, c.class_id)
              | Member_subclass { sub_region; cls } ->
                  Hashtbl.replace class_up (sub_region, cls) (r.region_id, c.class_id))
            c.members)
        r.eq_classes)
    entry.regions;
  List.iter
    (fun le ->
      List.iter
        (fun it ->
          if Hashtbl.mem acc_of_item it.item_id then dups := it.item_id :: !dups;
          Hashtbl.replace acc_of_item it.item_id it.acc;
          Hashtbl.replace line_of_item it.item_id le.line_no)
        le.items)
    entry.line_table;
  (* full representation chain per item, innermost first.  The walk is
     capped at the number of subclass links so a malformed (cyclic)
     class_up relation terminates instead of hanging the build. *)
  let chain_of_item = Hashtbl.create (Hashtbl.length direct_class) in
  let max_chain = Hashtbl.length class_up + 1 in
  Hashtbl.iter
    (fun item rc0 ->
      let rec walk acc n rc =
        let acc = rc :: acc in
        if n >= max_chain then acc
        else
          match Hashtbl.find_opt class_up rc with
          | Some up -> walk acc (n + 1) up
          | None -> acc
      in
      Hashtbl.replace chain_of_item item
        (Array.of_list (List.rev (walk [] 1 rc0))))
    direct_class;
  (* (region, class) -> kind.  Region lookup goes through region_by_id
     (last region wins on a duplicate id); within a region the first
     class with a given id wins, like find_class. *)
  let kind_of_class = Hashtbl.create 64 in
  let alias_of_region = Hashtbl.create 16 in
  Hashtbl.iter
    (fun rid r ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem kind_of_class (rid, c.class_id)) then
            Hashtbl.replace kind_of_class (rid, c.class_id) c.kind)
        r.eq_classes;
      Hashtbl.replace alias_of_region rid (build_alias_bits r))
    region_by_id;
  (* ancestor chains, capped against malformed parent cycles *)
  let regions_up_of = Hashtbl.create 16 in
  let max_up = Hashtbl.length region_by_id in
  Hashtbl.iter
    (fun rid0 _ ->
      let rec up acc n rid =
        match Hashtbl.find_opt region_by_id rid with
        | None -> List.rev acc
        | Some r -> (
            if n >= max_up then List.rev (r :: acc)
            else
              match r.parent with
              | None -> List.rev (r :: acc)
              | Some p -> up (r :: acc) (n + 1) p)
      in
      Hashtbl.replace regions_up_of rid0 (Array.of_list (up [] 1 rid0)))
    region_by_id;
  (* innermost region per line of the line table: the fold mirrors the
     reference engine exactly (first region in entry order wins a
     span-length tie) *)
  let innermost_at_line = Hashtbl.create 64 in
  List.iter
    (fun le ->
      if not (Hashtbl.mem innermost_at_line le.line_no) then
        let line = le.line_no in
        let innermost =
          List.fold_left
            (fun best r ->
              if line >= r.first_line && line <= r.last_line then
                match best with
                | Some b
                  when r.last_line - r.first_line < b.last_line - b.first_line
                  ->
                    Some r
                | None -> Some r
                | _ -> best
              else best)
            None entry.regions
        in
        match innermost with
        | Some r -> Hashtbl.replace innermost_at_line line r
        | None -> ())
    entry.line_table;
  {
    entry;
    region_by_id;
    direct_class;
    class_up;
    acc_of_item;
    line_of_item;
    chain_of_item;
    kind_of_class;
    alias_of_region;
    regions_up_of;
    innermost_at_line;
    dup_items = List.sort_uniq compare !dups;
    equiv_memo = Imemo.create 256;
    call_memo = Imemo.create 64;
    prob_memo = Imemo.create 64;
  }

(** Item ids that occurred more than once in the line table or in the
    equivalence classes of [idx]'s entry (sorted, deduplicated).  The
    index keeps the last occurrence, as the pre-index engine did;
    importers report these on the same warning channel as unmapped
    references. *)
let duplicate_items idx = idx.dup_items

(** Drop every memoized answer of [idx].  Called by {!Maintain} on
    watched indexes after each maintenance transaction; the next query
    recomputes from the index's entry snapshot. *)
let invalidate idx =
  let s = shard () in
  s.s_invalidations <- s.s_invalidations + 1;
  Imemo.reset idx.equiv_memo;
  Imemo.reset idx.call_memo;
  Imemo.reset idx.prob_memo

(** Number of memoized answers currently held (tests use this to prove
    invalidation). *)
let memo_size idx =
  Imemo.length idx.equiv_memo + Imemo.length idx.call_memo
  + Imemo.length idx.prob_memo

(* ------------------------------------------------------------------ *)
(* Basic queries                                                       *)
(* ------------------------------------------------------------------ *)

let region idx rid = Hashtbl.find_opt idx.region_by_id rid

let access_type idx item = Hashtbl.find_opt idx.acc_of_item item

let line_of_item idx item = Hashtbl.find_opt idx.line_of_item item

(** Innermost region whose equivalent-access table directly contains the
    item.  [None] when the item is unknown to the HLI. *)
let get_region_of_item idx item =
  count_query Q_region_of_item;
  Option.map fst (Hashtbl.find_opt idx.direct_class item)

(** The class representing [item] in region [rid]: the first entry with
    that region along the item's precomputed chain. *)
let class_at idx ~rid item =
  match Hashtbl.find_opt idx.chain_of_item item with
  | None -> None
  | Some chain ->
      let n = Array.length chain in
      let rec find i =
        if i >= n then None
        else
          let r, c = chain.(i) in
          if r = rid then Some c else find (i + 1)
      in
      find 0

(** Chain of (region, class) representations of an item, innermost
    first. *)
let class_chain idx item =
  match Hashtbl.find_opt idx.chain_of_item item with
  | Some chain -> Array.to_list chain
  | None -> []

let class_kind idx ~rid cid = Hashtbl.find_opt idx.kind_of_class (rid, cid)

let classes_aliased (r : region_entry) a b =
  List.exists
    (fun ae -> List.mem a ae.alias_classes && List.mem b ae.alias_classes)
    r.aliases

(* uncached equivalent-access decision over the precomputed chains *)
let equiv_acc_uncached idx item_a item_b =
  match
    ( Hashtbl.find_opt idx.chain_of_item item_a,
      Hashtbl.find_opt idx.chain_of_item item_b )
  with
  | None, _ | _, None -> Equiv_unknown
  | Some chain_a, Some chain_b ->
      let la = Array.length chain_a and lb = Array.length chain_b in
      (* innermost region present in both chains, scanning a's chain
         outward — the chains are region paths, so this is the lowest
         common region of the two items *)
      let rec find i =
        if i >= la then Equiv_unknown
        else
          let rid, ca = chain_a.(i) in
          let rec assoc j =
            if j >= lb then None
            else
              let rb, cb = chain_b.(j) in
              if rb = rid then Some cb else assoc (j + 1)
          in
          match assoc 0 with
          | None -> find (i + 1)
          | Some cb ->
              if ca = cb then (
                match Hashtbl.find_opt idx.kind_of_class (rid, ca) with
                | Some k -> Equiv_same k
                | None -> Equiv_unknown)
              else (
                match Hashtbl.find_opt idx.alias_of_region rid with
                | None -> Equiv_unknown
                | Some ab ->
                    if alias_bit_test ab ca cb then Equiv_alias else Equiv_none)
      in
      find 0

(** Do two items possibly access the same memory location {e within one
    iteration} of every loop enclosing both?  This is the query the back
    end's dependence checker combines with its own analysis (Figure 5).
    Memoized on the unordered item pair (the relation is symmetric);
    the per-kind counter is bumped on every call, hit or miss. *)
let get_equiv_acc idx item_a item_b =
  let s = shard () in
  s.s_equiv_acc <- s.s_equiv_acc + 1;
  if memo_packable item_a item_b then begin
    (* unordered key: the relation is symmetric *)
    let key =
      if item_a <= item_b then memo_key item_a item_b
      else memo_key item_b item_a
    in
    match Imemo.find idx.equiv_memo key with
    | r ->
        s.s_equiv_hits <- s.s_equiv_hits + 1;
        r
    | exception Not_found ->
        s.s_equiv_misses <- s.s_equiv_misses + 1;
        let r = equiv_acc_uncached idx item_a item_b in
        Imemo.replace idx.equiv_memo key r;
        r
  end
  else begin
    s.s_equiv_misses <- s.s_equiv_misses + 1;
    equiv_acc_uncached idx item_a item_b
  end

(* ------------------------------------------------------------------ *)
(* Probabilistic equivalent-access query (HLI3)                        *)
(* ------------------------------------------------------------------ *)

(** Per-mille confidence assumed for a "maybe" answer when the HLI
    carries no probability section (HLI1/HLI2 data, or the front end
    had no evidence): an uninformative midpoint, so consumers that
    speculate only above-midpoint thresholds never act on it. *)
let default_maybe_prob = 500

(* probability recorded for the alias pair (ca, cb) in region [rid]:
   the first alias entry listing both classes wins, mirroring the
   entry-scan order of the reference engine *)
let alias_prob_at idx ~rid ca cb =
  match Hashtbl.find_opt idx.region_by_id rid with
  | None -> default_maybe_prob
  | Some r -> (
      match
        List.find_opt
          (fun ae -> List.mem ca ae.alias_classes && List.mem cb ae.alias_classes)
          r.aliases
      with
      | Some { alias_prob = Some p; _ } -> p
      | Some { alias_prob = None; _ } | None -> default_maybe_prob)

(* the equiv_acc chain walk, returning the answer together with its
   per-mille confidence.  The decision leg is byte-identical to
   [equiv_acc_uncached]; only the confidence is new. *)
let equiv_prob_uncached idx item_a item_b =
  match
    ( Hashtbl.find_opt idx.chain_of_item item_a,
      Hashtbl.find_opt idx.chain_of_item item_b )
  with
  | None, _ | _, None -> (Equiv_unknown, 0)
  | Some chain_a, Some chain_b ->
      let la = Array.length chain_a and lb = Array.length chain_b in
      let rec find i =
        if i >= la then (Equiv_unknown, 0)
        else
          let rid, ca = chain_a.(i) in
          let rec assoc j =
            if j >= lb then None
            else
              let rb, cb = chain_b.(j) in
              if rb = rid then Some cb else assoc (j + 1)
          in
          match assoc 0 with
          | None -> find (i + 1)
          | Some cb ->
              if ca = cb then (
                match Hashtbl.find_opt idx.kind_of_class (rid, ca) with
                | Some Definitely -> (Equiv_same Definitely, 1000)
                | Some Maybe -> (Equiv_same Maybe, default_maybe_prob)
                | None -> (Equiv_unknown, 0))
              else (
                match Hashtbl.find_opt idx.alias_of_region rid with
                | None -> (Equiv_unknown, 0)
                | Some ab ->
                    if alias_bit_test ab ca cb then
                      (Equiv_alias, alias_prob_at idx ~rid ca cb)
                    else (Equiv_none, 1000))
      in
      find 0

(** {!get_equiv_acc} with a per-mille confidence attached: how likely
    the two items really do touch the same location ([Equiv_same] /
    [Equiv_alias]), or how certain the separation is ([Equiv_none] is
    proven, so 1000; [Equiv_unknown] carries no evidence, so 0).  The
    answer component always equals [get_equiv_acc] on the same pair.
    Memoized on the unordered item pair; the [Q_equiv_prob] counter is
    bumped on every call, hit or miss. *)
let get_equiv_prob idx item_a item_b =
  let s = shard () in
  s.s_equiv_prob <- s.s_equiv_prob + 1;
  if memo_packable item_a item_b then begin
    let key =
      if item_a <= item_b then memo_key item_a item_b
      else memo_key item_b item_a
    in
    match Imemo.find idx.prob_memo key with
    | r -> r
    | exception Not_found ->
        let r = equiv_prob_uncached idx item_a item_b in
        Imemo.replace idx.prob_memo key r;
        r
  end
  else equiv_prob_uncached idx item_a item_b

(** Alias query between two classes of one region: are they listed in a
    common alias entry?  An O(1) bit test on the region's alias bitset. *)
let get_alias idx ~rid cls_a cls_b =
  count_query Q_alias;
  match Hashtbl.find_opt idx.alias_of_region rid with
  | None -> false
  | Some ab -> alias_bit_test ab cls_a cls_b

(** Loop-carried data dependences between the classes representing the
    two items in loop region [rid] (normalized forward).  The empty list
    means "no LCDD recorded", which proves independence across
    iterations only when both items are represented in the region. *)
let get_lcdd idx ~rid item_a item_b =
  count_query Q_lcdd;
  match (region idx rid, class_at idx ~rid item_a, class_at idx ~rid item_b) with
  | Some r, Some ca, Some cb ->
      Some
        (List.filter
           (fun l ->
             (l.lcdd_src = ca && l.lcdd_dst = cb)
             || (l.lcdd_src = cb && l.lcdd_dst = ca))
           r.lcdds)
  | _ -> None

(* uncached call REF/MOD resolution over the precomputed line-interval
   and ancestor-chain indexes *)
let call_acc_uncached idx ~call ~mem =
  (* does region [r]'s callrefmod table cover this call? *)
  let covering call_line (r : region_entry) =
    List.find_opt
      (fun e ->
        match e.call_key with
        | Key_call_item id -> id = call
        | Key_sub_region sr -> (
            (* the call is inside sub-region sr *)
            match Hashtbl.find_opt idx.region_by_id sr with
            | Some sub -> call_line >= sub.first_line && call_line <= sub.last_line
            | None -> false))
      r.callrefmods
  in
  match Hashtbl.find_opt idx.line_of_item call with
  | None -> Call_unknown
  | Some call_line -> (
      match Hashtbl.find_opt idx.innermost_at_line call_line with
      | None -> Call_unknown
      | Some r0 ->
          let ups =
            match Hashtbl.find_opt idx.regions_up_of r0.region_id with
            | Some a -> a
            | None -> [||]
          in
          let n = Array.length ups in
          let rec search i =
            if i >= n then Call_unknown
            else
              let r = ups.(i) in
              match (covering call_line r, class_at idx ~rid:r.region_id mem) with
              | Some e, Some mc ->
                  if e.refmod_all then Call_refmod
                  else begin
                    match
                      (List.mem mc e.ref_classes, List.mem mc e.mod_classes)
                    with
                    | false, false -> Call_none
                    | true, false -> Call_ref
                    | false, true -> Call_mod
                    | true, true -> Call_refmod
                  end
              | Some e, None ->
                  (* call covered but mem not representable here *)
                  if e.refmod_all then Call_refmod else search (i + 1)
              | None, _ -> search (i + 1)
          in
          search 0)

(** May the call item [call] reference or modify the location of memory
    item [mem]?  Resolves the call through the region that lists it
    (either as an immediate call item or via a sub-region entry),
    walking the precomputed ancestor chain of the innermost region
    containing the call's line.  Memoized on [(call, mem)]; the
    per-kind counter is bumped on every call, hit or miss. *)
let get_call_acc idx ~call ~mem =
  let s = shard () in
  s.s_call_acc <- s.s_call_acc + 1;
  if memo_packable call mem then begin
    let key = memo_key call mem in
    match Imemo.find idx.call_memo key with
    | r ->
        s.s_call_hits <- s.s_call_hits + 1;
        r
    | exception Not_found ->
        s.s_call_misses <- s.s_call_misses + 1;
        let r = call_acc_uncached idx ~call ~mem in
        Imemo.replace idx.call_memo key r;
        r
  end
  else begin
    s.s_call_misses <- s.s_call_misses + 1;
    call_acc_uncached idx ~call ~mem
  end

(* ------------------------------------------------------------------ *)
(* Derived queries                                                     *)
(* ------------------------------------------------------------------ *)

(** True when the HLI proves the two items never touch the same location
    in the same iteration — the "no dependence" answer used to cut DDG
    edges. *)
let proves_independent idx item_a item_b =
  match get_equiv_acc idx item_a item_b with
  | Equiv_none -> true
  | Equiv_same _ | Equiv_alias | Equiv_unknown -> false

(** True when the HLI proves the call neither refs nor mods the item's
    location. *)
let call_independent idx ~call ~mem =
  match get_call_acc idx ~call ~mem with
  | Call_none -> true
  | Call_ref | Call_mod | Call_refmod | Call_unknown -> false

let pp_equiv_result ppf = function
  | Equiv_none -> Fmt.string ppf "none"
  | Equiv_same Definitely -> Fmt.string ppf "same(definite)"
  | Equiv_same Maybe -> Fmt.string ppf "same(maybe)"
  | Equiv_alias -> Fmt.string ppf "alias"
  | Equiv_unknown -> Fmt.string ppf "unknown"

let pp_call_acc ppf = function
  | Call_none -> Fmt.string ppf "none"
  | Call_ref -> Fmt.string ppf "ref"
  | Call_mod -> Fmt.string ppf "mod"
  | Call_refmod -> Fmt.string ppf "refmod"
  | Call_unknown -> Fmt.string ppf "unknown"
