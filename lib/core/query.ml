(** HLI query interface (paper Section 3.2.2).

    The stored HLI is accessed only through these functions, so a back
    end never touches the raw tables.  An {!index} is built once per
    program unit when its entry is imported; all queries are then O(tree
    depth) or table lookups.

    The five basic query functions are {!get_equiv_acc}, {!get_alias},
    {!get_lcdd}, {!get_call_acc} and {!get_region_of_item}; the remaining
    functions are conveniences composed from them. *)

open Tables

(* ------------------------------------------------------------------ *)
(* Per-kind query counters (harness telemetry)                         *)
(* ------------------------------------------------------------------ *)

(** Process-wide counters of the five basic HLI queries, one per kind.
    [Atomic] so harness domains running schedulers in parallel can bump
    them without races; totals are deterministic even though the
    interleaving is not. *)
type query_kind = Q_equiv_acc | Q_alias | Q_lcdd | Q_call_acc | Q_region_of_item

let q_equiv_acc = Atomic.make 0
let q_alias = Atomic.make 0
let q_lcdd = Atomic.make 0
let q_call_acc = Atomic.make 0
let q_region_of_item = Atomic.make 0

let cell_of_kind = function
  | Q_equiv_acc -> q_equiv_acc
  | Q_alias -> q_alias
  | Q_lcdd -> q_lcdd
  | Q_call_acc -> q_call_acc
  | Q_region_of_item -> q_region_of_item

let count_query k = Atomic.incr (cell_of_kind k)

let query_kind_name = function
  | Q_equiv_acc -> "equiv_acc"
  | Q_alias -> "alias"
  | Q_lcdd -> "lcdd"
  | Q_call_acc -> "call_acc"
  | Q_region_of_item -> "region_of_item"

let all_query_kinds =
  [ Q_equiv_acc; Q_alias; Q_lcdd; Q_call_acc; Q_region_of_item ]

(** Snapshot of all per-kind counters, in a fixed order. *)
let query_counters () =
  List.map
    (fun k -> (query_kind_name k, Atomic.get (cell_of_kind k)))
    all_query_kinds

let reset_query_counters () =
  List.iter (fun k -> Atomic.set (cell_of_kind k) 0) all_query_kinds

type index = {
  entry : hli_entry;
  region_by_id : (int, region_entry) Hashtbl.t;
  (* innermost class containing each item: item id -> (region, class) *)
  direct_class : (int, int * int) Hashtbl.t;
  (* subclass links: (sub_region, class) -> (region, class) of parent *)
  class_up : (int * int, int * int) Hashtbl.t;
  (* call items -> region that lists them immediately *)
  acc_of_item : (int, access_type) Hashtbl.t;
  line_of_item : (int, int) Hashtbl.t;
}

let build (entry : hli_entry) : index =
  let region_by_id = Hashtbl.create 16 in
  let direct_class = Hashtbl.create 64 in
  let class_up = Hashtbl.create 64 in
  let acc_of_item = Hashtbl.create 64 in
  let line_of_item = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace region_by_id r.region_id r) entry.regions;
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              match m with
              | Member_item id -> Hashtbl.replace direct_class id (r.region_id, c.class_id)
              | Member_subclass { sub_region; cls } ->
                  Hashtbl.replace class_up (sub_region, cls) (r.region_id, c.class_id))
            c.members)
        r.eq_classes)
    entry.regions;
  List.iter
    (fun le ->
      List.iter
        (fun it ->
          Hashtbl.replace acc_of_item it.item_id it.acc;
          Hashtbl.replace line_of_item it.item_id le.line_no)
        le.items)
    entry.line_table;
  { entry; region_by_id; direct_class; class_up; acc_of_item; line_of_item }

(* ------------------------------------------------------------------ *)
(* Basic queries                                                       *)
(* ------------------------------------------------------------------ *)

let region idx rid = Hashtbl.find_opt idx.region_by_id rid

let access_type idx item = Hashtbl.find_opt idx.acc_of_item item

let line_of_item idx item = Hashtbl.find_opt idx.line_of_item item

(** Innermost region whose equivalent-access table directly contains the
    item.  [None] when the item is unknown to the HLI. *)
let get_region_of_item idx item =
  count_query Q_region_of_item;
  Option.map fst (Hashtbl.find_opt idx.direct_class item)

(** The class representing [item] in region [rid], walking subclass
    links upward from the item's innermost region. *)
let class_at idx ~rid item =
  let rec walk (r, c) =
    if r = rid then Some c
    else
      match Hashtbl.find_opt idx.class_up (r, c) with
      | Some up -> walk up
      | None -> None
  in
  Option.bind (Hashtbl.find_opt idx.direct_class item) walk

(** Chain of (region, class) representations of an item, innermost
    first. *)
let class_chain idx item =
  let rec walk acc rc =
    let acc = rc :: acc in
    match Hashtbl.find_opt idx.class_up rc with
    | Some up -> walk acc up
    | None -> List.rev acc
  in
  match Hashtbl.find_opt idx.direct_class item with
  | Some rc -> walk [] rc
  | None -> []

let class_kind idx ~rid cid =
  match region idx rid with
  | None -> None
  | Some r -> Option.map (fun c -> c.kind) (find_class r cid)

(** Result of the equivalent-access query, mirroring the paper's
    [HLI_EquivAccType]. *)
type equiv_result =
  | Equiv_none  (** proven distinct: never the same location *)
  | Equiv_same of equiv_kind  (** same class (definitely or maybe) *)
  | Equiv_alias  (** distinct classes listed as aliased *)
  | Equiv_unknown  (** at least one item is not represented in the HLI *)

let classes_aliased (r : region_entry) a b =
  List.exists
    (fun ae -> List.mem a ae.alias_classes && List.mem b ae.alias_classes)
    r.aliases

(** Do two items possibly access the same memory location {e within one
    iteration} of every loop enclosing both?  This is the query the back
    end's dependence checker combines with its own analysis (Figure 5). *)
let get_equiv_acc idx item_a item_b =
  count_query Q_equiv_acc;
  let chain_a = class_chain idx item_a and chain_b = class_chain idx item_b in
  if chain_a = [] || chain_b = [] then Equiv_unknown
  else begin
    (* find the innermost region present in both chains *)
    let common =
      List.find_opt (fun (r, _) -> List.mem_assoc r chain_b) chain_a
    in
    match common with
    | None -> Equiv_unknown
    | Some (rid, ca) -> (
        let cb = List.assoc rid chain_b in
        if ca = cb then
          match class_kind idx ~rid ca with
          | Some k -> Equiv_same k
          | None -> Equiv_unknown
        else
          match region idx rid with
          | Some r -> if classes_aliased r ca cb then Equiv_alias else Equiv_none
          | None -> Equiv_unknown)
  end

(** Alias query between two classes of one region: are they listed in a
    common alias entry? *)
let get_alias idx ~rid cls_a cls_b =
  count_query Q_alias;
  match region idx rid with
  | None -> false
  | Some r -> classes_aliased r cls_a cls_b

(** Loop-carried data dependences between the classes representing the
    two items in loop region [rid] (normalized forward).  The empty list
    means "no LCDD recorded", which proves independence across
    iterations only when both items are represented in the region. *)
let get_lcdd idx ~rid item_a item_b =
  count_query Q_lcdd;
  match (region idx rid, class_at idx ~rid item_a, class_at idx ~rid item_b) with
  | Some r, Some ca, Some cb ->
      Some
        (List.filter
           (fun l ->
             (l.lcdd_src = ca && l.lcdd_dst = cb)
             || (l.lcdd_src = cb && l.lcdd_dst = ca))
           r.lcdds)
  | _ -> None

(** Result of the call REF/MOD query, mirroring [HLI_GetCallAcc]. *)
type call_acc_result =
  | Call_none
  | Call_ref
  | Call_mod
  | Call_refmod
  | Call_unknown

(** May the call item [call] reference or modify the location of memory
    item [mem]?  Resolves the call through the region that lists it
    (either as an immediate call item or via a sub-region entry). *)
let get_call_acc idx ~call ~mem =
  count_query Q_call_acc;
  (* Find a region whose callrefmod table covers this call, preferring
     the innermost region that also represents [mem]. *)
  let covering (r : region_entry) =
    List.find_opt
      (fun e ->
        match e.call_key with
        | Key_call_item id -> id = call
        | Key_sub_region sr -> (
            (* the call is inside sub-region sr *)
            match Hashtbl.find_opt idx.region_by_id sr with
            | Some sub -> (
                match line_of_item idx call with
                | Some ln -> ln >= sub.first_line && ln <= sub.last_line
                | None -> false)
            | None -> false))
      r.callrefmods
  in
  let rec regions_up rid acc =
    match region idx rid with
    | None -> List.rev acc
    | Some r -> (
        match r.parent with
        | None -> List.rev (r :: acc)
        | Some p -> regions_up p (r :: acc))
  in
  match line_of_item idx call with
  | None -> Call_unknown
  | Some call_line -> (
      (* innermost region containing the call line *)
      let innermost =
        List.fold_left
          (fun best r ->
            if call_line >= r.first_line && call_line <= r.last_line then
              match best with
              | Some b
                when r.last_line - r.first_line < b.last_line - b.first_line ->
                  Some r
              | None -> Some r
              | _ -> best
            else best)
          None idx.entry.regions
      in
      match innermost with
      | None -> Call_unknown
      | Some r0 ->
          let rec search = function
            | [] -> Call_unknown
            | r :: rest -> (
                match (covering r, class_at idx ~rid:r.region_id mem) with
                | Some e, Some mc ->
                    if e.refmod_all then Call_refmod
                    else begin
                      match
                        (List.mem mc e.ref_classes, List.mem mc e.mod_classes)
                      with
                      | false, false -> Call_none
                      | true, false -> Call_ref
                      | false, true -> Call_mod
                      | true, true -> Call_refmod
                    end
                | Some e, None ->
                    (* call covered but mem not representable here *)
                    if e.refmod_all then Call_refmod else search rest
                | None, _ -> search rest)
          in
          search (regions_up r0.region_id []))

(* ------------------------------------------------------------------ *)
(* Derived queries                                                     *)
(* ------------------------------------------------------------------ *)

(** True when the HLI proves the two items never touch the same location
    in the same iteration — the "no dependence" answer used to cut DDG
    edges. *)
let proves_independent idx item_a item_b =
  match get_equiv_acc idx item_a item_b with
  | Equiv_none -> true
  | Equiv_same _ | Equiv_alias | Equiv_unknown -> false

(** True when the HLI proves the call neither refs nor mods the item's
    location. *)
let call_independent idx ~call ~mem =
  match get_call_acc idx ~call ~mem with
  | Call_none -> true
  | Call_ref | Call_mod | Call_refmod | Call_unknown -> false

let pp_equiv_result ppf = function
  | Equiv_none -> Fmt.string ppf "none"
  | Equiv_same Definitely -> Fmt.string ppf "same(definite)"
  | Equiv_same Maybe -> Fmt.string ppf "same(maybe)"
  | Equiv_alias -> Fmt.string ppf "alias"
  | Equiv_unknown -> Fmt.string ppf "unknown"

let pp_call_acc ppf = function
  | Call_none -> Fmt.string ppf "none"
  | Call_ref -> Fmt.string ppf "ref"
  | Call_mod -> Fmt.string ppf "mod"
  | Call_refmod -> Fmt.string ppf "refmod"
  | Call_unknown -> Fmt.string ppf "unknown"
