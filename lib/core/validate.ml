(** Structural validation of HLI files.

    The serializer ({!Serialize}) guarantees that what was decoded is
    the byte stream that was written — it says nothing about whether
    the decoded tables make {e sense}.  An HLI file is an interface
    between independent compilers, so the consumer must also check the
    {e references} inside it before building query indexes over them:
    a region that names a missing parent, an alias row over unknown
    class ids or an unsorted line table would otherwise surface much
    later as silently-wrong dependence answers.

    {!check_file} returns every problem found as an {!issue} (one
    E06xx code each, so tools can filter); {!validate} raises the first
    as a {!Diagnostics.Diagnostic}.  [Serialize.read_file] runs
    {!validate} on load by default; [hli_dump --check] and
    [hlic --lint-hli] print the full issue list.

    Checks (codes):
    - E0621 line table not sorted by strictly increasing line number
    - E0622 duplicate region id / duplicate class id within a region
    - E0623 region line range inverted, or outside its parent's range
    - E0624 region parent unresolved, self-referential or cyclic
    - E0625 class member names an unknown sub-region or class
    - E0626 alias entry names an unknown class of its region
    - E0627 LCDD endpoint names an unknown class of its region
    - E0628 call REF/MOD entry names an unknown region or class
    - E0629 duplicate unit name in the file
    - E0636 probability section value outside per-mille range 0..1000 *)

open Tables

type issue = {
  i_code : string;  (** E06xx *)
  i_unit : string;  (** unit name, [""] for file-level issues *)
  i_msg : string;
}

let issue_to_string i =
  if i.i_unit = "" then Printf.sprintf "[%s] %s" i.i_code i.i_msg
  else Printf.sprintf "[%s] unit %s: %s" i.i_code i.i_unit i.i_msg

(* ------------------------------------------------------------------ *)
(* Per-entry checks                                                    *)
(* ------------------------------------------------------------------ *)

let check_entry (e : hli_entry) : issue list =
  let issues = ref [] in
  let add code fmt =
    Fmt.kstr
      (fun m -> issues := { i_code = code; i_unit = e.unit_name; i_msg = m } :: !issues)
      fmt
  in
  (* line table: strictly increasing line numbers *)
  let rec check_lines = function
    | a :: (b :: _ as rest) ->
        if b.line_no <= a.line_no then
          add "E0621" "line table not sorted: line %d follows line %d"
            b.line_no a.line_no;
        check_lines rest
    | [ _ ] | [] -> ()
  in
  check_lines e.line_table;
  (* region id table; duplicate ids make every later reference ambiguous *)
  let rtbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem rtbl r.region_id then
        add "E0622" "duplicate region id %d" r.region_id
      else Hashtbl.replace rtbl r.region_id r)
    e.regions;
  let region_exists rid = Hashtbl.mem rtbl rid in
  (* parent links: resolved, non-self, acyclic *)
  List.iter
    (fun r ->
      match r.parent with
      | None -> ()
      | Some p when p = r.region_id ->
          add "E0624" "region %d is its own parent" r.region_id
      | Some p when not (region_exists p) ->
          add "E0624" "region %d names missing parent %d" r.region_id p
      | Some _ -> ())
    e.regions;
  (* cycle check over the resolved parent links: walk up from every
     region; more steps than regions means a loop *)
  let n_regions = List.length e.regions in
  List.iter
    (fun r ->
      let rec walk rid steps =
        if steps > n_regions then
          add "E0624" "parent chain of region %d is cyclic" r.region_id
        else
          match Hashtbl.find_opt rtbl rid with
          | Some { parent = Some p; _ } when p <> rid && region_exists p ->
              walk p (steps + 1)
          | _ -> ()
      in
      walk r.region_id 0)
    e.regions;
  (* line ranges: well-ordered, and nested within the parent's range *)
  List.iter
    (fun r ->
      if r.last_line < r.first_line then
        add "E0623" "region %d has inverted line range %d-%d" r.region_id
          r.first_line r.last_line;
      match r.parent with
      | Some p when p <> r.region_id -> (
          match Hashtbl.find_opt rtbl p with
          | Some pr
            when r.first_line < pr.first_line || r.last_line > pr.last_line ->
              add "E0623"
                "region %d (lines %d-%d) escapes parent %d (lines %d-%d)"
                r.region_id r.first_line r.last_line p pr.first_line
                pr.last_line
          | _ -> ())
      | _ -> ())
    e.regions;
  (* per-region class tables, then every intra-region reference *)
  List.iter
    (fun r ->
      let ctbl = Hashtbl.create 16 in
      List.iter
        (fun c ->
          if Hashtbl.mem ctbl c.class_id then
            add "E0622" "region %d: duplicate class id %d" r.region_id
              c.class_id
          else Hashtbl.replace ctbl c.class_id ())
        r.eq_classes;
      let class_exists cid = Hashtbl.mem ctbl cid in
      let sub_class_exists ~sub_region ~cls =
        match Hashtbl.find_opt rtbl sub_region with
        | None -> false
        | Some sr -> List.exists (fun c -> c.class_id = cls) sr.eq_classes
      in
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              match m with
              | Member_item _ -> ()
              | Member_subclass { sub_region; cls } ->
                  if not (region_exists sub_region) then
                    add "E0625"
                      "region %d class %d: member names missing sub-region %d"
                      r.region_id c.class_id sub_region
                  else if not (sub_class_exists ~sub_region ~cls) then
                    add "E0625"
                      "region %d class %d: member names missing class %d of \
                       sub-region %d"
                      r.region_id c.class_id cls sub_region)
            c.members)
        r.eq_classes;
      List.iter
        (fun a ->
          List.iter
            (fun cid ->
              if not (class_exists cid) then
                add "E0626" "region %d: alias entry names unknown class %d"
                  r.region_id cid)
            a.alias_classes;
          match a.alias_prob with
          | Some p when p < 0 || p > 1000 ->
              add "E0636"
                "region %d: alias probability %d outside per-mille range \
                 0..1000"
                r.region_id p
          | _ -> ())
        r.aliases;
      List.iter
        (fun l ->
          if not (class_exists l.lcdd_src) then
            add "E0627" "region %d: LCDD source names unknown class %d"
              r.region_id l.lcdd_src;
          if not (class_exists l.lcdd_dst) then
            add "E0627" "region %d: LCDD target names unknown class %d"
              r.region_id l.lcdd_dst;
          match l.lcdd_prob with
          | Some p when p < 0 || p > 1000 ->
              add "E0636"
                "region %d: LCDD probability %d outside per-mille range \
                 0..1000"
                r.region_id p
          | _ -> ())
        r.lcdds;
      List.iter
        (fun cm ->
          (match cm.call_key with
          | Key_call_item _ -> ()
          | Key_sub_region sr ->
              if not (region_exists sr) then
                add "E0628"
                  "region %d: call REF/MOD key names missing sub-region %d"
                  r.region_id sr);
          List.iter
            (fun cid ->
              if not (class_exists cid) then
                add "E0628"
                  "region %d: call REF/MOD entry names unknown class %d"
                  r.region_id cid)
            (cm.ref_classes @ cm.mod_classes))
        r.callrefmods)
    e.regions;
  List.rev !issues

(* ------------------------------------------------------------------ *)
(* File-level checks                                                   *)
(* ------------------------------------------------------------------ *)

let check_file (f : hli_file) : issue list =
  let seen = Hashtbl.create 8 in
  let dup_issues =
    List.filter_map
      (fun e ->
        if Hashtbl.mem seen e.unit_name then
          Some
            {
              i_code = "E0629";
              i_unit = e.unit_name;
              i_msg = "duplicate unit name";
            }
        else begin
          Hashtbl.replace seen e.unit_name ();
          None
        end)
      f.entries
  in
  dup_issues @ List.concat_map check_entry f.entries

(** Raise the first structural issue (annotated with how many more were
    found) as a {!Diagnostics.Diagnostic}; no-op on a clean file. *)
let validate ?file (f : hli_file) : unit =
  match check_file f with
  | [] -> ()
  | first :: rest ->
      let more =
        match List.length rest with
        | 0 -> ""
        | n -> Printf.sprintf " (and %d more issue%s)" n (if n = 1 then "" else "s")
      in
      let msg =
        if first.i_unit = "" then first.i_msg
        else Printf.sprintf "unit %s: %s" first.i_unit first.i_msg
      in
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ?file ~code:first.i_code
              ~phase:Diagnostics.Hligen ~severity:Diagnostics.Error
              (msg ^ more)))
