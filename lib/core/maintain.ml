(** HLI maintenance functions (paper Section 3.2.3).

    As the back end optimizes, memory references are deleted (CSE), moved
    (loop-invariant removal) or duplicated (unrolling); these functions
    keep the HLI tables consistent with such changes so later passes can
    still query it.  All functions work on a mutable {!t} wrapping one
    program-unit entry; {!commit} returns the updated immutable entry and
    a fresh query index. *)

open Tables

type t = {
  mutable entry : hli_entry;
  (* query indexes whose memo caches must be dropped whenever a
     transaction edits the entry; registered with {!watch} *)
  mutable watchers : Query.index list;
}

let start entry = { entry; watchers = [] }

(** Register [idx] so its memoized query answers are invalidated after
    every maintenance transaction on [m].  Importers watch the index
    they expose to optimization passes, guaranteeing no pass can observe
    a cached answer that predates an HLI edit. *)
let watch m idx = m.watchers <- idx :: m.watchers

let invalidate_watchers m = List.iter Query.invalidate m.watchers

let commit m = (m.entry, Query.build m.entry)

let next_free_id m =
  let from_items =
    List.fold_left
      (fun acc le -> List.fold_left (fun a it -> max a it.item_id) acc le.items)
      0 m.entry.line_table
  in
  let from_classes =
    List.fold_left
      (fun acc r -> List.fold_left (fun a c -> max a c.class_id) acc r.eq_classes)
      0 m.entry.regions
  in
  1 + max from_items from_classes

(* map over all regions *)
let update_regions m f =
  m.entry <- { m.entry with regions = List.map f m.entry.regions }

let update_line_table m f = m.entry <- { m.entry with line_table = f m.entry.line_table }

(* ------------------------------------------------------------------ *)
(* Deleting an item (e.g. a load removed by CSE)                       *)
(* ------------------------------------------------------------------ *)

(** Remove [item] from the line table and from every equivalence class.
    Classes left empty are dropped, along with alias/LCDD/REFMOD rows
    that referenced them. *)
let delete_item m item =
  update_line_table m (fun lt ->
      List.filter_map
        (fun le ->
          let items = List.filter (fun it -> it.item_id <> item) le.items in
          if items = [] then None else Some { le with items })
        lt);
  (* remove membership *)
  update_regions m (fun r ->
      {
        r with
        eq_classes =
          List.map
            (fun c ->
              {
                c with
                members =
                  List.filter
                    (fun mbr ->
                      match mbr with
                      | Member_item id -> id <> item
                      | Member_subclass _ -> true)
                    c.members;
              })
            r.eq_classes;
      });
  (* drop empty classes, cascading through subclass references *)
  let rec drop_empties () =
    let empty_ids = ref [] in
    update_regions m (fun r ->
        let keep, dead =
          List.partition (fun c -> c.members <> []) r.eq_classes
        in
        List.iter (fun c -> empty_ids := (r.region_id, c.class_id) :: !empty_ids) dead;
        { r with eq_classes = keep });
    match !empty_ids with
    | [] -> ()
    | dead ->
        update_regions m (fun r ->
            let drop_cls cid = List.exists (fun (_, d) -> d = cid) dead in
            let member_dead = function
              | Member_subclass { sub_region; cls } ->
                  List.exists (fun (rr, dd) -> rr = sub_region && dd = cls) dead
              | Member_item _ -> false
            in
            {
              r with
              eq_classes =
                List.map
                  (fun c ->
                    { c with members = List.filter (fun mb -> not (member_dead mb)) c.members })
                  r.eq_classes;
              aliases =
                List.filter_map
                  (fun a ->
                    let cs = List.filter (fun c -> not (drop_cls c)) a.alias_classes in
                    if List.length cs >= 2 then Some { a with alias_classes = cs }
                    else None)
                  r.aliases;
              lcdds =
                List.filter
                  (fun l -> not (drop_cls l.lcdd_src || drop_cls l.lcdd_dst))
                  r.lcdds;
              callrefmods =
                List.map
                  (fun e ->
                    {
                      e with
                      ref_classes = List.filter (fun c -> not (drop_cls c)) e.ref_classes;
                      mod_classes = List.filter (fun c -> not (drop_cls c)) e.mod_classes;
                    })
                  r.callrefmods;
            });
        drop_empties ()
  in
  drop_empties ();
  invalidate_watchers m

(* ------------------------------------------------------------------ *)
(* Generating and inheriting items                                     *)
(* ------------------------------------------------------------------ *)

let insert_in_line_table lt ~line ~item ~acc =
  let rec go = function
    | [] -> [ { line_no = line; items = [ { item_id = item; acc } ] } ]
    | le :: rest ->
        if le.line_no = line then
          { le with items = le.items @ [ { item_id = item; acc } ] } :: rest
        else if le.line_no > line then
          { line_no = line; items = [ { item_id = item; acc } ] } :: le :: rest
        else le :: go rest
  in
  go lt

(** Create a new item that inherits the attributes (access type and
    equivalence class) of [like], placed on [line].  Returns the new
    item id.  This is the generate+inherit primitive used by unrolling
    and rematerialization. *)
let gen_item m ~like ~line =
  let idx = Query.build m.entry in
  let acc = Option.value ~default:Acc_load (Query.access_type idx like) in
  let id = next_free_id m in
  update_line_table m (fun lt -> insert_in_line_table lt ~line ~item:id ~acc);
  (match Hashtbl.find_opt idx.Query.direct_class like with
  | Some (rid, cid) ->
      update_regions m (fun r ->
          if r.region_id <> rid then r
          else
            {
              r with
              eq_classes =
                List.map
                  (fun c ->
                    if c.class_id = cid then
                      { c with members = c.members @ [ Member_item id ] }
                    else c)
                  r.eq_classes;
            })
  | None -> ());
  invalidate_watchers m;
  id

(** Make [item] a member of the class that represents it in [target_rid]
    instead of its current (inner) class — the loop-invariant-removal
    move: the reference now executes in the outer region. *)
let move_item_outward m ~item ~target_rid =
  let idx = Query.build m.entry in
  match
    (Hashtbl.find_opt idx.Query.direct_class item, Query.class_at idx ~rid:target_rid item)
  with
  | Some (cur_rid, cur_cid), Some target_cid when cur_rid <> target_rid ->
      (* remove from the inner class *)
      update_regions m (fun r ->
          if r.region_id = cur_rid then
            {
              r with
              eq_classes =
                List.map
                  (fun c ->
                    if c.class_id = cur_cid then
                      {
                        c with
                        members =
                          List.filter
                            (fun mb -> mb <> Member_item item)
                            c.members;
                      }
                    else c)
                  r.eq_classes;
            }
          else if r.region_id = target_rid then
            {
              r with
              eq_classes =
                List.map
                  (fun c ->
                    if c.class_id = target_cid then
                      { c with members = c.members @ [ Member_item item ] }
                    else c)
                  r.eq_classes;
            }
          else r);
      invalidate_watchers m;
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Loop unrolling (paper Figure 6)                                     *)
(* ------------------------------------------------------------------ *)

(** Result of unrolling region [rid] by [factor]: for every original
    item the ids of its copies (copy 0 is the original), and the updated
    entry.  The LCDD table of the unrolled loop is recomputed from the
    original distances: a dependence with distance [d] from copy [i]
    lands on copy [(i + d) mod factor] at new distance [(i + d) /
    factor]; dependences that land within the same unrolled body
    ([i + d < factor]) become same-iteration alias entries. *)
type unroll_result = {
  copies : (int * int array) list;  (** original item id -> per-copy ids *)
  new_classes : (int * int array) list;  (** original class -> per-copy class ids *)
}

let unroll m ~rid ~factor =
  if factor < 2 then
    Diagnostics.error ~code:"E0701" ~phase:(Diagnostics.Opt "unroll")
      "unroll: factor must be >= 2 (got %d)" factor;
  let entry = m.entry in
  let r =
    match find_region entry rid with
    | Some r -> r
    | None ->
        Diagnostics.error ~code:"E0702" ~phase:(Diagnostics.Opt "unroll")
          "unroll: no region %d in unit %s" rid entry.unit_name
  in
  let idx = Query.build entry in
  (* items directly in classes of this region (not via subclasses) *)
  let direct_items =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun mb -> match mb with Member_item id -> Some id | Member_subclass _ -> None)
          c.members)
      r.eq_classes
  in
  let next = ref (next_free_id m) in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let copies =
    List.map
      (fun it ->
        let arr = Array.init factor (fun k -> if k = 0 then it else fresh ()) in
        (it, arr))
      direct_items
  in
  (* copy classes: class C -> C_0 .. C_{factor-1}; C_0 reuses the id *)
  let new_classes =
    List.map
      (fun c ->
        let arr = Array.init factor (fun k -> if k = 0 then c.class_id else fresh ()) in
        (c.class_id, arr))
      r.eq_classes
  in
  let class_copy cid k =
    match List.assoc_opt cid new_classes with
    | Some arr -> arr.(k)
    | None -> cid
  in
  (* new line-table entries for the copies, on the item's original line *)
  update_line_table m (fun lt ->
      List.fold_left
        (fun lt (orig, arr) ->
          let line = Option.value ~default:0 (Query.line_of_item idx orig) in
          let acc = Option.value ~default:Acc_load (Query.access_type idx orig) in
          let lt = ref lt in
          Array.iteri
            (fun k id ->
              if k > 0 then lt := insert_in_line_table !lt ~line ~item:id ~acc)
            arr;
          !lt)
        lt copies)
  ;
  (* rebuild the region: per-copy classes, remapped LCDD, widened
     aliases *)
  let unrolled_classes =
    List.concat_map
      (fun c ->
        List.init factor (fun k ->
            let members =
              List.filter_map
                (fun mb ->
                  match mb with
                  | Member_item id -> (
                      match List.assoc_opt id copies with
                      | Some arr -> Some (Member_item arr.(k))
                      | None -> None)
                  | Member_subclass _ as s ->
                      (* sub-loop contents are not duplicated per copy 0 *)
                      if k = 0 then Some s else None)
                c.members
            in
            {
              class_id = class_copy c.class_id k;
              kind = c.kind;
              desc = (if k = 0 then c.desc else Printf.sprintf "%s.u%d" c.desc k);
              members;
            }))
      r.eq_classes
    |> List.filter (fun c -> c.members <> [])
  in
  let new_lcdds = ref [] and new_aliases = ref (r.aliases) in
  List.iter
    (fun l ->
      match l.lcdd_distance with
      | None ->
          (* Unknown distance: it may be any d >= 1, so besides keeping a
             maybe-LCDD between every pair of copies, copies of different
             original iterations that now share one unrolled iteration
             may touch the same location — record cross-copy aliases. *)
          for i = 0 to factor - 1 do
            for j = 0 to factor - 1 do
              new_lcdds :=
                {
                  lcdd_src = class_copy l.lcdd_src i;
                  lcdd_dst = class_copy l.lcdd_dst j;
                  lcdd_dep = Dep_maybe;
                  lcdd_distance = None;
                  lcdd_prob = l.lcdd_prob;
                }
                :: !new_lcdds;
              if i <> j then
                new_aliases :=
                  {
                    alias_classes =
                      [ class_copy l.lcdd_src i; class_copy l.lcdd_dst j ];
                    alias_prob = l.lcdd_prob;
                  }
                  :: !new_aliases
            done
          done
      | Some d ->
          for i = 0 to factor - 1 do
            let target = i + d in
            if target < factor then
              (* lands inside the same unrolled body: now a
                 same-iteration relation *)
              new_aliases :=
                {
                  alias_classes =
                    [ class_copy l.lcdd_src i; class_copy l.lcdd_dst target ];
                  alias_prob = l.lcdd_prob;
                }
                :: !new_aliases
            else
              new_lcdds :=
                {
                  lcdd_src = class_copy l.lcdd_src i;
                  lcdd_dst = class_copy l.lcdd_dst (target mod factor);
                  lcdd_dep = l.lcdd_dep;
                  lcdd_distance = Some (target / factor);
                  lcdd_prob = l.lcdd_prob;
                }
                :: !new_lcdds
          done)
    r.lcdds;
  (* existing alias entries apply to every copy pair of the involved
     classes (conservative widening) *)
  let widened_aliases =
    List.concat_map
      (fun a ->
        List.init factor (fun k ->
            { a with alias_classes = List.map (fun c -> class_copy c k) a.alias_classes }))
      !new_aliases
  in
  update_regions m (fun reg ->
      if reg.region_id <> rid then reg
      else
        {
          reg with
          eq_classes = unrolled_classes;
          lcdds = List.rev !new_lcdds;
          aliases = widened_aliases;
        });
  invalidate_watchers m;
  { copies; new_classes }
