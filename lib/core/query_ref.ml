(** Slow reference oracle for the HLI query engine.

    This is the pre-index implementation of {!Query}, kept alive
    verbatim as a differential-testing oracle: it answers each query by
    walking subclass links with [List.assoc]/[List.mem_assoc] and by
    linearly scanning [entry.regions] for line containment, with no
    precomputation beyond the base hash tables and no memoization.

    It deliberately shares {!Query}'s result types and bumps the same
    per-kind [Atomic] counters, so a query stream replayed against both
    engines must produce identical answers {e and} identical counter
    totals (see [test/test_query_equiv.ml]).  Nothing outside the test
    and bench trees should use this module. *)

open Tables

type index = {
  entry : hli_entry;
  region_by_id : (int, region_entry) Hashtbl.t;
  (* innermost class containing each item: item id -> (region, class) *)
  direct_class : (int, int * int) Hashtbl.t;
  (* subclass links: (sub_region, class) -> (region, class) of parent *)
  class_up : (int * int, int * int) Hashtbl.t;
  acc_of_item : (int, access_type) Hashtbl.t;
  line_of_item : (int, int) Hashtbl.t;
}

let build (entry : hli_entry) : index =
  let region_by_id = Hashtbl.create 16 in
  let direct_class = Hashtbl.create 64 in
  let class_up = Hashtbl.create 64 in
  let acc_of_item = Hashtbl.create 64 in
  let line_of_item = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace region_by_id r.region_id r) entry.regions;
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          List.iter
            (fun m ->
              match m with
              | Member_item id -> Hashtbl.replace direct_class id (r.region_id, c.class_id)
              | Member_subclass { sub_region; cls } ->
                  Hashtbl.replace class_up (sub_region, cls) (r.region_id, c.class_id))
            c.members)
        r.eq_classes)
    entry.regions;
  List.iter
    (fun le ->
      List.iter
        (fun it ->
          Hashtbl.replace acc_of_item it.item_id it.acc;
          Hashtbl.replace line_of_item it.item_id le.line_no)
        le.items)
    entry.line_table;
  { entry; region_by_id; direct_class; class_up; acc_of_item; line_of_item }

(* ------------------------------------------------------------------ *)
(* Basic queries                                                       *)
(* ------------------------------------------------------------------ *)

let region idx rid = Hashtbl.find_opt idx.region_by_id rid

let access_type idx item = Hashtbl.find_opt idx.acc_of_item item

let line_of_item idx item = Hashtbl.find_opt idx.line_of_item item

let get_region_of_item idx item =
  Query.count_query Query.Q_region_of_item;
  Option.map fst (Hashtbl.find_opt idx.direct_class item)

(** The class representing [item] in region [rid], walking subclass
    links upward from the item's innermost region. *)
let class_at idx ~rid item =
  let rec walk (r, c) =
    if r = rid then Some c
    else
      match Hashtbl.find_opt idx.class_up (r, c) with
      | Some up -> walk up
      | None -> None
  in
  Option.bind (Hashtbl.find_opt idx.direct_class item) walk

let class_chain idx item =
  let rec walk acc rc =
    let acc = rc :: acc in
    match Hashtbl.find_opt idx.class_up rc with
    | Some up -> walk acc up
    | None -> List.rev acc
  in
  match Hashtbl.find_opt idx.direct_class item with
  | Some rc -> walk [] rc
  | None -> []

let class_kind idx ~rid cid =
  match region idx rid with
  | None -> None
  | Some r -> Option.map (fun c -> c.kind) (find_class r cid)

let classes_aliased (r : region_entry) a b =
  List.exists
    (fun ae -> List.mem a ae.alias_classes && List.mem b ae.alias_classes)
    r.aliases

let get_equiv_acc idx item_a item_b : Query.equiv_result =
  Query.count_query Query.Q_equiv_acc;
  let chain_a = class_chain idx item_a and chain_b = class_chain idx item_b in
  if chain_a = [] || chain_b = [] then Query.Equiv_unknown
  else begin
    (* find the innermost region present in both chains *)
    let common =
      List.find_opt (fun (r, _) -> List.mem_assoc r chain_b) chain_a
    in
    match common with
    | None -> Query.Equiv_unknown
    | Some (rid, ca) -> (
        let cb = List.assoc rid chain_b in
        if ca = cb then
          match class_kind idx ~rid ca with
          | Some k -> Query.Equiv_same k
          | None -> Query.Equiv_unknown
        else
          match region idx rid with
          | Some r ->
              if classes_aliased r ca cb then Query.Equiv_alias
              else Query.Equiv_none
          | None -> Query.Equiv_unknown)
  end

(* probability of the alias pair: the first alias entry listing both
   classes wins, like [classes_aliased]'s scan order *)
let alias_prob_of (r : region_entry) a b =
  match
    List.find_opt
      (fun ae -> List.mem a ae.alias_classes && List.mem b ae.alias_classes)
      r.aliases
  with
  | Some { alias_prob = Some p; _ } -> p
  | Some { alias_prob = None; _ } | None -> Query.default_maybe_prob

let get_equiv_prob idx item_a item_b : Query.equiv_result * int =
  Query.count_query Query.Q_equiv_prob;
  let chain_a = class_chain idx item_a and chain_b = class_chain idx item_b in
  if chain_a = [] || chain_b = [] then (Query.Equiv_unknown, 0)
  else begin
    let common =
      List.find_opt (fun (r, _) -> List.mem_assoc r chain_b) chain_a
    in
    match common with
    | None -> (Query.Equiv_unknown, 0)
    | Some (rid, ca) -> (
        let cb = List.assoc rid chain_b in
        if ca = cb then
          match class_kind idx ~rid ca with
          | Some Definitely -> (Query.Equiv_same Definitely, 1000)
          | Some Maybe -> (Query.Equiv_same Maybe, Query.default_maybe_prob)
          | None -> (Query.Equiv_unknown, 0)
        else
          match region idx rid with
          | Some r ->
              if classes_aliased r ca cb then
                (Query.Equiv_alias, alias_prob_of r ca cb)
              else (Query.Equiv_none, 1000)
          | None -> (Query.Equiv_unknown, 0))
  end

let get_alias idx ~rid cls_a cls_b =
  Query.count_query Query.Q_alias;
  match region idx rid with
  | None -> false
  | Some r -> classes_aliased r cls_a cls_b

let get_lcdd idx ~rid item_a item_b =
  Query.count_query Query.Q_lcdd;
  match (region idx rid, class_at idx ~rid item_a, class_at idx ~rid item_b) with
  | Some r, Some ca, Some cb ->
      Some
        (List.filter
           (fun l ->
             (l.lcdd_src = ca && l.lcdd_dst = cb)
             || (l.lcdd_src = cb && l.lcdd_dst = ca))
           r.lcdds)
  | _ -> None

let get_call_acc idx ~call ~mem : Query.call_acc_result =
  Query.count_query Query.Q_call_acc;
  (* Find a region whose callrefmod table covers this call, preferring
     the innermost region that also represents [mem]. *)
  let covering (r : region_entry) =
    List.find_opt
      (fun e ->
        match e.call_key with
        | Key_call_item id -> id = call
        | Key_sub_region sr -> (
            (* the call is inside sub-region sr *)
            match Hashtbl.find_opt idx.region_by_id sr with
            | Some sub -> (
                match line_of_item idx call with
                | Some ln -> ln >= sub.first_line && ln <= sub.last_line
                | None -> false)
            | None -> false))
      r.callrefmods
  in
  let rec regions_up rid acc =
    match region idx rid with
    | None -> List.rev acc
    | Some r -> (
        match r.parent with
        | None -> List.rev (r :: acc)
        | Some p -> regions_up p (r :: acc))
  in
  match line_of_item idx call with
  | None -> Query.Call_unknown
  | Some call_line -> (
      (* innermost region containing the call line *)
      let innermost =
        List.fold_left
          (fun best r ->
            if call_line >= r.first_line && call_line <= r.last_line then
              match best with
              | Some b
                when r.last_line - r.first_line < b.last_line - b.first_line ->
                  Some r
              | None -> Some r
              | _ -> best
            else best)
          None idx.entry.regions
      in
      match innermost with
      | None -> Query.Call_unknown
      | Some r0 ->
          let rec search = function
            | [] -> Query.Call_unknown
            | r :: rest -> (
                match (covering r, class_at idx ~rid:r.region_id mem) with
                | Some e, Some mc ->
                    if e.refmod_all then Query.Call_refmod
                    else begin
                      match
                        (List.mem mc e.ref_classes, List.mem mc e.mod_classes)
                      with
                      | false, false -> Query.Call_none
                      | true, false -> Query.Call_ref
                      | false, true -> Query.Call_mod
                      | true, true -> Query.Call_refmod
                    end
                | Some e, None ->
                    (* call covered but mem not representable here *)
                    if e.refmod_all then Query.Call_refmod else search rest
                | None, _ -> search rest)
          in
          search (regions_up r0.region_id []))

(* ------------------------------------------------------------------ *)
(* Derived queries                                                     *)
(* ------------------------------------------------------------------ *)

let proves_independent idx item_a item_b =
  match get_equiv_acc idx item_a item_b with
  | Query.Equiv_none -> true
  | Query.Equiv_same _ | Query.Equiv_alias | Query.Equiv_unknown -> false

let call_independent idx ~call ~mem =
  match get_call_acc idx ~call ~mem with
  | Query.Call_none -> true
  | Query.Call_ref | Query.Call_mod | Query.Call_refmod | Query.Call_unknown ->
      false
