(** Binary (de)serialization of HLI files.

    The paper defines the logical layout (its Figure 1) but not a byte
    format; this module provides a compact one so that Table 1's "HLI
    size (KB)" column is measurable.  Integers are LEB128 varints;
    strings are length-prefixed.  [of_bytes (to_bytes f) = f] holds for
    every well-formed file (round-trip is property-tested). *)

open Tables

exception Corrupt of string

let magic = "HLI1"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let put_varint buf n =
  if n < 0 then
    Diagnostics.error ~code:"E0601" ~phase:Diagnostics.Hligen
      "put_varint: negative value %d" n;
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_list buf f l =
  put_varint buf (List.length l);
  List.iter (f buf) l

let put_acc buf = function
  | Acc_load -> Buffer.add_char buf '\000'
  | Acc_store -> Buffer.add_char buf '\001'
  | Acc_call -> Buffer.add_char buf '\002'

let put_item buf it =
  put_varint buf it.item_id;
  put_acc buf it.acc

let put_line buf le =
  put_varint buf le.line_no;
  put_list buf put_item le.items

let put_member buf = function
  | Member_item id ->
      Buffer.add_char buf '\000';
      put_varint buf id
  | Member_subclass { sub_region; cls } ->
      Buffer.add_char buf '\001';
      put_varint buf sub_region;
      put_varint buf cls

let put_class buf c =
  put_varint buf c.class_id;
  Buffer.add_char buf (match c.kind with Definitely -> '\000' | Maybe -> '\001');
  put_string buf c.desc;
  put_list buf put_member c.members

let put_alias buf a = put_list buf (fun b x -> put_varint b x) a.alias_classes

let put_lcdd buf l =
  put_varint buf l.lcdd_src;
  put_varint buf l.lcdd_dst;
  Buffer.add_char buf (match l.lcdd_dep with Dep_definite -> '\000' | Dep_maybe -> '\001');
  put_varint buf (match l.lcdd_distance with None -> 0 | Some d -> d)

let put_callrefmod buf e =
  (match e.call_key with
  | Key_call_item id ->
      Buffer.add_char buf '\000';
      put_varint buf id
  | Key_sub_region r ->
      Buffer.add_char buf '\001';
      put_varint buf r);
  Buffer.add_char buf (if e.refmod_all then '\001' else '\000');
  put_list buf (fun b x -> put_varint b x) e.ref_classes;
  put_list buf (fun b x -> put_varint b x) e.mod_classes

let put_region buf r =
  put_varint buf r.region_id;
  Buffer.add_char buf (match r.rtype with Region_unit -> '\000' | Region_loop -> '\001');
  put_varint buf (match r.parent with None -> 0 | Some p -> p);
  put_varint buf r.first_line;
  put_varint buf r.last_line;
  put_list buf put_class r.eq_classes;
  put_list buf put_alias r.aliases;
  put_list buf put_lcdd r.lcdds;
  put_list buf put_callrefmod r.callrefmods

let put_entry buf e =
  put_string buf e.unit_name;
  put_list buf put_line e.line_table;
  put_list buf put_region e.regions

let to_bytes (f : hli_file) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_list buf put_entry f.entries;
  Buffer.contents buf

(** Serialized size in bytes: the paper's Table 1 metric. *)
let size_bytes f = String.length (to_bytes f)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let byte cur =
  if cur.pos >= String.length cur.data then raise (Corrupt "truncated");
  let c = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let get_varint cur =
  let rec go shift acc =
    let b = byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_string cur =
  let n = get_varint cur in
  if cur.pos + n > String.length cur.data then raise (Corrupt "truncated string");
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_list cur f =
  let n = get_varint cur in
  List.init n (fun _ -> f cur)

let get_acc cur =
  match byte cur with
  | 0 -> Acc_load
  | 1 -> Acc_store
  | 2 -> Acc_call
  | n -> raise (Corrupt (Printf.sprintf "bad access type %d" n))

let get_item cur =
  let item_id = get_varint cur in
  { item_id; acc = get_acc cur }

let get_line cur =
  let line_no = get_varint cur in
  { line_no; items = get_list cur get_item }

let get_member cur =
  match byte cur with
  | 0 -> Member_item (get_varint cur)
  | 1 ->
      let sub_region = get_varint cur in
      Member_subclass { sub_region; cls = get_varint cur }
  | n -> raise (Corrupt (Printf.sprintf "bad member tag %d" n))

let get_class cur =
  let class_id = get_varint cur in
  let kind =
    match byte cur with
    | 0 -> Definitely
    | 1 -> Maybe
    | n -> raise (Corrupt (Printf.sprintf "bad equiv kind %d" n))
  in
  let desc = get_string cur in
  { class_id; kind; desc; members = get_list cur get_member }

let get_alias cur = { alias_classes = get_list cur get_varint }

let get_lcdd cur =
  let lcdd_src = get_varint cur in
  let lcdd_dst = get_varint cur in
  let lcdd_dep =
    match byte cur with
    | 0 -> Dep_definite
    | 1 -> Dep_maybe
    | n -> raise (Corrupt (Printf.sprintf "bad dep type %d" n))
  in
  let d = get_varint cur in
  { lcdd_src; lcdd_dst; lcdd_dep; lcdd_distance = (if d = 0 then None else Some d) }

let get_callrefmod cur =
  let call_key =
    match byte cur with
    | 0 -> Key_call_item (get_varint cur)
    | 1 -> Key_sub_region (get_varint cur)
    | n -> raise (Corrupt (Printf.sprintf "bad call key %d" n))
  in
  let refmod_all = byte cur = 1 in
  let ref_classes = get_list cur get_varint in
  let mod_classes = get_list cur get_varint in
  { call_key; ref_classes; mod_classes; refmod_all }

let get_region cur =
  let region_id = get_varint cur in
  let rtype =
    match byte cur with
    | 0 -> Region_unit
    | 1 -> Region_loop
    | n -> raise (Corrupt (Printf.sprintf "bad region type %d" n))
  in
  let parent = match get_varint cur with 0 -> None | p -> Some p in
  let first_line = get_varint cur in
  let last_line = get_varint cur in
  let eq_classes = get_list cur get_class in
  let aliases = get_list cur get_alias in
  let lcdds = get_list cur get_lcdd in
  let callrefmods = get_list cur get_callrefmod in
  { region_id; rtype; parent; first_line; last_line; eq_classes; aliases; lcdds; callrefmods }

let get_entry cur =
  let unit_name = get_string cur in
  let line_table = get_list cur get_line in
  let regions = get_list cur get_region in
  { unit_name; line_table; regions }

let of_bytes (s : string) : hli_file =
  if String.length s < 4 || String.sub s 0 4 <> magic then
    raise (Corrupt "bad magic");
  let cur = { data = s; pos = 4 } in
  let entries = get_list cur get_entry in
  if cur.pos <> String.length s then raise (Corrupt "trailing bytes");
  { entries }

(* ------------------------------------------------------------------ *)
(* File I/O and text dump                                              *)
(* ------------------------------------------------------------------ *)

let write_file path f =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes f))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))

let to_text (f : hli_file) : string =
  Fmt.str "@[<v>%a@]@." Fmt.(list ~sep:cut pp_entry) f.entries
