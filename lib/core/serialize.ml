(** Binary (de)serialization of HLI files.

    The paper defines the logical layout (its Figure 1) but not a byte
    format; this module provides two:

    {b HLI1} — the original compact payload encoding.  Integers are
    LEB128 varints; strings are length-prefixed.  It is {e lossy} at two
    points: [lcdd_distance = Some 0] and [parent = Some 0] are encoded
    as the varint [0] and come back as [None].  The encoding is kept as
    the legacy reader (old files stay loadable), as the differential
    oracle of the fuzz harness, and as the {b Table 1 size metric}: the
    paper measures the information payload, not container overhead, so
    {!size_bytes} is defined over HLI1 and is stable across container
    revisions.

    {b HLI2} — the validated container revision.  Differences from
    HLI1, all motivated by the file being a front-end/back-end
    {e interface} that must not trust its producer:

    - option fields carry an explicit tag byte (0 = [None], 1 =
      [Some]), so [Some 0] survives the round-trip;
    - booleans and all constructor tags reject bytes outside their
      range;
    - varints are bounded: at most 9 bytes, and the final byte may not
      push the value past 62 bits ([max_int] on 64-bit OCaml);
    - every list length is checked against the remaining input before
      anything is allocated;
    - each entry is length-prefixed and followed by a CRC32 of its
      payload, so truncation and bit-rot are reported per entry instead
      of decoding into garbage tables.

    {b HLI3} — HLI2 plus the optional probability sections: each alias
    entry carries an optional per-mille [alias_prob] and each LCDD
    entry an optional per-mille [lcdd_prob] (explicit option tag, then
    a varint).  Everything else — framing, CRCs, bounds — is HLI2
    verbatim.  {!to_bytes} writes HLI3; {!of_bytes} reads all three
    revisions (HLI1/HLI2 data decodes with [None] probabilities).

    [of_bytes (to_bytes f) = f] holds for {e every} value of
    {!Tables.hli_file} (property-tested, including [Some 0] boundary
    values).  All decode failures raise {!Corrupt} carrying a precise
    E06xx code; {!read_file} re-raises them as {!Diagnostics} (and runs
    the {!Validate} structural checks on the decoded file). *)

open Tables

(** Why a decode was rejected.  [c_code] is a [Diagnostics] E06xx code
    (see the table in [lib/driver/diagnostics.ml]); [c_at] is the byte
    offset in the input, [-1] when unknown. *)
type corruption = { c_code : string; c_at : int; c_msg : string }

exception Corrupt of corruption

let corrupt ?(at = -1) ~code fmt =
  Fmt.kstr (fun m -> raise (Corrupt { c_code = code; c_at = at; c_msg = m })) fmt

let corruption_to_string c =
  if c.c_at >= 0 then Printf.sprintf "[%s] byte %d: %s" c.c_code c.c_at c.c_msg
  else Printf.sprintf "[%s] %s" c.c_code c.c_msg

(** Re-raise a {!Corrupt} as a structured diagnostic (the file-level
    entry points do this so drivers render [file: error[E06xx]: ...]). *)
let diagnostic_of_corruption ?file c =
  Diagnostics.make ?file ~code:c.c_code ~phase:Diagnostics.Hligen
    ~severity:Diagnostics.Error
    (if c.c_at >= 0 then Printf.sprintf "%s (at byte %d)" c.c_msg c.c_at
     else c.c_msg)

let magic_v1 = "HLI1"
let magic_v2 = "HLI2"
let magic_v3 = "HLI3"

(** Version tag of the container {!to_bytes} writes; part of the HLI
    cache key so a format revision invalidates stale cache entries. *)
let format_version = magic_v3

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected)                                       *)
(* ------------------------------------------------------------------ *)

(* Slicing-by-8: tables.(k).(b) is the CRC of byte [b] followed by [k]
   zero bytes, so eight table lookups advance the state by eight input
   bytes at once.  The wire protocol checksums every frame payload in
   both directions, which makes this loop hot enough to matter.  Built
   eagerly at module init: pool domains all checksum frames, and a
   [lazy] forced from two domains at once raises
   [CamlinternalLazy.Undefined]. *)
let crc_tables =
  let t0 =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let t = Array.make 8 t0 in
  for k = 1 to 7 do
    t.(k) <-
      Array.init 256 (fun n ->
          let c = t.(k - 1).(n) in
          t0.(c land 0xff) lxor (c lsr 8))
  done;
  t

(** CRC32 (IEEE 802.3, reflected) of [s.[ofs .. ofs+len-1]]. *)
let crc32 s ofs len =
  if ofs < 0 || len < 0 || ofs > String.length s - len then
    invalid_arg "Serialize.crc32";
  let t = crc_tables in
  let t0 = t.(0)
  and t1 = t.(1)
  and t2 = t.(2)
  and t3 = t.(3)
  and t4 = t.(4)
  and t5 = t.(5)
  and t6 = t.(6)
  and t7 = t.(7) in
  (* bounds are established above; unsafe reads keep the inner loop
     branch-free *)
  let b i = Char.code (String.unsafe_get s i) in
  let c = ref 0xffffffff in
  let i = ref ofs in
  let stop = ofs + len in
  while stop - !i >= 8 do
    let p = !i in
    let lo =
      !c lxor (b p lor (b (p + 1) lsl 8) lor (b (p + 2) lsl 16)
               lor (b (p + 3) lsl 24))
    in
    let hi =
      b (p + 4) lor (b (p + 5) lsl 8) lor (b (p + 6) lsl 16)
      lor (b (p + 7) lsl 24)
    in
    c :=
      Array.unsafe_get t7 (lo land 0xff)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xff)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xff)
      lxor Array.unsafe_get t4 (lo lsr 24)
      lxor Array.unsafe_get t3 (hi land 0xff)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xff)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xff)
      lxor Array.unsafe_get t0 (hi lsr 24);
    i := p + 8
  done;
  while !i < stop do
    c := Array.unsafe_get t0 ((!c lxor b !i) land 0xff) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Writer primitives                                                   *)
(* ------------------------------------------------------------------ *)

let put_varint buf n =
  if n < 0 then
    Diagnostics.error ~code:"E0601" ~phase:Diagnostics.Hligen
      "put_varint: negative value %d" n;
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_list buf f l =
  put_varint buf (List.length l);
  List.iter (f buf) l

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

(* explicit option tag: the HLI2 fix for the Some 0 <-> None collapse *)
let put_opt buf f = function
  | None -> Buffer.add_char buf '\000'
  | Some v ->
      Buffer.add_char buf '\001';
      f buf v

let put_crc32 buf s =
  let c = crc32 s 0 (String.length s) in
  Buffer.add_char buf (Char.chr (c land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 24) land 0xff))

(* ------------------------------------------------------------------ *)
(* Shared writer pieces (identical in HLI1 and HLI2)                   *)
(* ------------------------------------------------------------------ *)

let put_acc buf = function
  | Acc_load -> Buffer.add_char buf '\000'
  | Acc_store -> Buffer.add_char buf '\001'
  | Acc_call -> Buffer.add_char buf '\002'

let put_item buf it =
  put_varint buf it.item_id;
  put_acc buf it.acc

let put_line buf le =
  put_varint buf le.line_no;
  put_list buf put_item le.items

let put_member buf = function
  | Member_item id ->
      Buffer.add_char buf '\000';
      put_varint buf id
  | Member_subclass { sub_region; cls } ->
      Buffer.add_char buf '\001';
      put_varint buf sub_region;
      put_varint buf cls

let put_class buf c =
  put_varint buf c.class_id;
  Buffer.add_char buf (match c.kind with Definitely -> '\000' | Maybe -> '\001');
  put_string buf c.desc;
  put_list buf put_member c.members

let put_alias buf a = put_list buf (fun b x -> put_varint b x) a.alias_classes

let put_callrefmod buf e =
  (match e.call_key with
  | Key_call_item id ->
      Buffer.add_char buf '\000';
      put_varint buf id
  | Key_sub_region r ->
      Buffer.add_char buf '\001';
      put_varint buf r);
  put_bool buf e.refmod_all;
  put_list buf (fun b x -> put_varint b x) e.ref_classes;
  put_list buf (fun b x -> put_varint b x) e.mod_classes

(* ------------------------------------------------------------------ *)
(* HLI1 writer (legacy payload; Table 1's size metric)                 *)
(* ------------------------------------------------------------------ *)

let put_lcdd_v1 buf l =
  put_varint buf l.lcdd_src;
  put_varint buf l.lcdd_dst;
  Buffer.add_char buf (match l.lcdd_dep with Dep_definite -> '\000' | Dep_maybe -> '\001');
  (* lossy: Some 0 collapses onto the None encoding *)
  put_varint buf (match l.lcdd_distance with None -> 0 | Some d -> d)

let put_region_v1 buf r =
  put_varint buf r.region_id;
  Buffer.add_char buf (match r.rtype with Region_unit -> '\000' | Region_loop -> '\001');
  put_varint buf (match r.parent with None -> 0 | Some p -> p);
  put_varint buf r.first_line;
  put_varint buf r.last_line;
  put_list buf put_class r.eq_classes;
  put_list buf put_alias r.aliases;
  put_list buf put_lcdd_v1 r.lcdds;
  put_list buf put_callrefmod r.callrefmods

let put_entry_v1 buf e =
  put_string buf e.unit_name;
  put_list buf put_line e.line_table;
  put_list buf put_region_v1 e.regions

(** Legacy HLI1 encoder.  Lossy on [Some 0] option fields — kept for
    golden-fixture tests and as the fuzz harness's differential oracle,
    and because {!size_bytes} is defined over it. *)
let to_bytes_v1 (f : hli_file) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v1;
  put_list buf put_entry_v1 f.entries;
  Buffer.contents buf

(** Serialized payload size in bytes: the paper's Table 1 metric.
    Defined over the HLI1 payload encoding so the column is stable
    across container revisions (HLI2 adds per-entry length, CRC and
    option-tag overhead; the bench serialization section reports it). *)
let size_bytes f = String.length (to_bytes_v1 f)

(* ------------------------------------------------------------------ *)
(* HLI2 writer                                                         *)
(* ------------------------------------------------------------------ *)

let put_lcdd_v2 buf l =
  put_varint buf l.lcdd_src;
  put_varint buf l.lcdd_dst;
  Buffer.add_char buf (match l.lcdd_dep with Dep_definite -> '\000' | Dep_maybe -> '\001');
  put_opt buf put_varint l.lcdd_distance

let put_region_v2 buf r =
  put_varint buf r.region_id;
  Buffer.add_char buf (match r.rtype with Region_unit -> '\000' | Region_loop -> '\001');
  put_opt buf put_varint r.parent;
  put_varint buf r.first_line;
  put_varint buf r.last_line;
  put_list buf put_class r.eq_classes;
  put_list buf put_alias r.aliases;
  put_list buf put_lcdd_v2 r.lcdds;
  put_list buf put_callrefmod r.callrefmods

let put_entry_v2 buf e =
  put_string buf e.unit_name;
  put_list buf put_line e.line_table;
  put_list buf put_region_v2 e.regions

(* ------------------------------------------------------------------ *)
(* HLI3 writer (HLI2 + optional probability sections)                  *)
(* ------------------------------------------------------------------ *)

let put_alias_v3 buf a =
  put_list buf (fun b x -> put_varint b x) a.alias_classes;
  put_opt buf put_varint a.alias_prob

let put_lcdd_v3 buf l =
  put_varint buf l.lcdd_src;
  put_varint buf l.lcdd_dst;
  Buffer.add_char buf (match l.lcdd_dep with Dep_definite -> '\000' | Dep_maybe -> '\001');
  put_opt buf put_varint l.lcdd_distance;
  put_opt buf put_varint l.lcdd_prob

let put_region_v3 buf r =
  put_varint buf r.region_id;
  Buffer.add_char buf (match r.rtype with Region_unit -> '\000' | Region_loop -> '\001');
  put_opt buf put_varint r.parent;
  put_varint buf r.first_line;
  put_varint buf r.last_line;
  put_list buf put_class r.eq_classes;
  put_list buf put_alias_v3 r.aliases;
  put_list buf put_lcdd_v3 r.lcdds;
  put_list buf put_callrefmod r.callrefmods

let put_entry_v3 buf e =
  put_string buf e.unit_name;
  put_list buf put_line e.line_table;
  put_list buf put_region_v3 e.regions

(** Encode as an HLI3 container: magic, entry count, then one
    length-prefixed, CRC32-trailed payload per entry. *)
let to_bytes (f : hli_file) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v3;
  put_varint buf (List.length f.entries);
  let ebuf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.clear ebuf;
      put_entry_v3 ebuf e;
      let payload = Buffer.contents ebuf in
      put_varint buf (String.length payload);
      Buffer.add_string buf payload;
      put_crc32 buf payload)
    f.entries;
  Buffer.contents buf

(** On-disk size of the HLI3 container (payload + option tags + entry
    framing + CRCs); compare with {!size_bytes}. *)
let container_bytes f = String.length (to_bytes f)

(* ------------------------------------------------------------------ *)
(* Reader primitives                                                   *)
(* ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let remaining cur = String.length cur.data - cur.pos

let byte cur =
  if cur.pos >= String.length cur.data then
    corrupt ~at:cur.pos ~code:"E0611" "truncated input";
  let c = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

(* Bounded LEB128: at most 9 bytes (shifts 0..56), and the 9th byte may
   not carry a continuation bit or push the value past 62 bits — a
   crafted run of continuation bytes must not be able to loop past sane
   limits or overflow the OCaml int. *)
let get_varint_slow cur =
  let start = cur.pos in
  let rec go shift acc =
    let b = byte cur in
    if shift = 56 && (b land 0x80 <> 0 || b > 0x3f) then
      corrupt ~at:start ~code:"E0612"
        "varint exceeds 9 bytes / 62 bits (byte %#x at shift %d)" b shift;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_varint cur =
  (* fast path: single-byte value, by far the common case on the wire
     (tags, small ids, short string lengths) *)
  let pos = cur.pos in
  if pos < String.length cur.data then begin
    let b = Char.code (String.unsafe_get cur.data pos) in
    if b < 0x80 then begin
      cur.pos <- pos + 1;
      b
    end
    else get_varint_slow cur
  end
  else get_varint_slow cur (* re-raises the truncation corrupt *)

let get_string cur =
  let n = get_varint cur in
  if n > remaining cur then
    corrupt ~at:cur.pos ~code:"E0613"
      "string length %d exceeds the %d remaining bytes" n (remaining cur);
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

(* Every element encodes to at least one byte, so a decoded element
   count larger than the remaining input is corrupt by construction —
   checked before List.init so a 5-byte file cannot demand a multi-GB
   allocation. *)
let get_list cur f =
  let n = get_varint cur in
  if n > remaining cur then
    corrupt ~at:cur.pos ~code:"E0613"
      "list length %d exceeds the %d remaining bytes" n (remaining cur);
  List.init n (fun _ -> f cur)

let get_bool cur =
  match byte cur with
  | 0 -> false
  | 1 -> true
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad bool tag %d" n

let get_opt cur f =
  match byte cur with
  | 0 -> None
  | 1 -> Some (f cur)
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad option tag %d" n

let get_crc32 cur =
  if remaining cur < 4 then
    corrupt ~at:cur.pos ~code:"E0611" "truncated CRC32";
  let b i = Char.code cur.data.[cur.pos + i] in
  let c = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  cur.pos <- cur.pos + 4;
  c

(* ------------------------------------------------------------------ *)
(* Shared reader pieces                                                *)
(* ------------------------------------------------------------------ *)

let get_acc cur =
  match byte cur with
  | 0 -> Acc_load
  | 1 -> Acc_store
  | 2 -> Acc_call
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad access type %d" n

let get_item cur =
  let item_id = get_varint cur in
  { item_id; acc = get_acc cur }

let get_line cur =
  let line_no = get_varint cur in
  { line_no; items = get_list cur get_item }

let get_member cur =
  match byte cur with
  | 0 -> Member_item (get_varint cur)
  | 1 ->
      let sub_region = get_varint cur in
      Member_subclass { sub_region; cls = get_varint cur }
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad member tag %d" n

let get_class cur =
  let class_id = get_varint cur in
  let kind =
    match byte cur with
    | 0 -> Definitely
    | 1 -> Maybe
    | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad equiv kind %d" n
  in
  let desc = get_string cur in
  { class_id; kind; desc; members = get_list cur get_member }

(* HLI1/HLI2 alias entries predate the probability section *)
let get_alias cur = { alias_classes = get_list cur get_varint; alias_prob = None }

let get_dep cur =
  match byte cur with
  | 0 -> Dep_definite
  | 1 -> Dep_maybe
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad dep type %d" n

let get_call_key cur =
  match byte cur with
  | 0 -> Key_call_item (get_varint cur)
  | 1 -> Key_sub_region (get_varint cur)
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad call key %d" n

let get_callrefmod cur =
  let call_key = get_call_key cur in
  let refmod_all = get_bool cur in
  let ref_classes = get_list cur get_varint in
  let mod_classes = get_list cur get_varint in
  { call_key; ref_classes; mod_classes; refmod_all }

let get_rtype cur =
  match byte cur with
  | 0 -> Region_unit
  | 1 -> Region_loop
  | n -> corrupt ~at:(cur.pos - 1) ~code:"E0614" "bad region type %d" n

(* ------------------------------------------------------------------ *)
(* HLI1 reader (legacy)                                                *)
(* ------------------------------------------------------------------ *)

let get_lcdd_v1 cur =
  let lcdd_src = get_varint cur in
  let lcdd_dst = get_varint cur in
  let lcdd_dep = get_dep cur in
  let d = get_varint cur in
  { lcdd_src; lcdd_dst; lcdd_dep;
    lcdd_distance = (if d = 0 then None else Some d); lcdd_prob = None }

let get_region_v1 cur =
  let region_id = get_varint cur in
  let rtype = get_rtype cur in
  let parent = match get_varint cur with 0 -> None | p -> Some p in
  let first_line = get_varint cur in
  let last_line = get_varint cur in
  let eq_classes = get_list cur get_class in
  let aliases = get_list cur get_alias in
  let lcdds = get_list cur get_lcdd_v1 in
  let callrefmods = get_list cur get_callrefmod in
  { region_id; rtype; parent; first_line; last_line; eq_classes; aliases; lcdds; callrefmods }

let get_entry_v1 cur =
  let unit_name = get_string cur in
  let line_table = get_list cur get_line in
  let regions = get_list cur get_region_v1 in
  { unit_name; line_table; regions }

(** Decode a legacy HLI1 payload (without dispatching on the magic) —
    exposed for the differential fuzz oracle. *)
let of_bytes_v1 (s : string) : hli_file =
  if String.length s < 4 || String.sub s 0 4 <> magic_v1 then
    corrupt ~at:0 ~code:"E0610" "bad magic (want %s)" magic_v1;
  let cur = { data = s; pos = 4 } in
  let entries = get_list cur get_entry_v1 in
  if cur.pos <> String.length s then
    corrupt ~at:cur.pos ~code:"E0616" "%d trailing bytes" (remaining cur);
  { entries }

(* ------------------------------------------------------------------ *)
(* HLI2 reader                                                         *)
(* ------------------------------------------------------------------ *)

let get_lcdd_v2 cur =
  let lcdd_src = get_varint cur in
  let lcdd_dst = get_varint cur in
  let lcdd_dep = get_dep cur in
  let lcdd_distance = get_opt cur get_varint in
  { lcdd_src; lcdd_dst; lcdd_dep; lcdd_distance; lcdd_prob = None }

let get_region_v2 cur =
  let region_id = get_varint cur in
  let rtype = get_rtype cur in
  let parent = get_opt cur get_varint in
  let first_line = get_varint cur in
  let last_line = get_varint cur in
  let eq_classes = get_list cur get_class in
  let aliases = get_list cur get_alias in
  let lcdds = get_list cur get_lcdd_v2 in
  let callrefmods = get_list cur get_callrefmod in
  { region_id; rtype; parent; first_line; last_line; eq_classes; aliases; lcdds; callrefmods }

let get_entry_v2 cur =
  let unit_name = get_string cur in
  let line_table = get_list cur get_line in
  let regions = get_list cur get_region_v2 in
  { unit_name; line_table; regions }

(* ------------------------------------------------------------------ *)
(* HLI3 reader                                                         *)
(* ------------------------------------------------------------------ *)

let get_alias_v3 cur =
  let alias_classes = get_list cur get_varint in
  let alias_prob = get_opt cur get_varint in
  { alias_classes; alias_prob }

let get_lcdd_v3 cur =
  let lcdd_src = get_varint cur in
  let lcdd_dst = get_varint cur in
  let lcdd_dep = get_dep cur in
  let lcdd_distance = get_opt cur get_varint in
  let lcdd_prob = get_opt cur get_varint in
  { lcdd_src; lcdd_dst; lcdd_dep; lcdd_distance; lcdd_prob }

let get_region_v3 cur =
  let region_id = get_varint cur in
  let rtype = get_rtype cur in
  let parent = get_opt cur get_varint in
  let first_line = get_varint cur in
  let last_line = get_varint cur in
  let eq_classes = get_list cur get_class in
  let aliases = get_list cur get_alias_v3 in
  let lcdds = get_list cur get_lcdd_v3 in
  let callrefmods = get_list cur get_callrefmod in
  { region_id; rtype; parent; first_line; last_line; eq_classes; aliases; lcdds; callrefmods }

let get_entry_v3 cur =
  let unit_name = get_string cur in
  let line_table = get_list cur get_line in
  let regions = get_list cur get_region_v3 in
  { unit_name; line_table; regions }

(* HLI2 and HLI3 share the container framing (entry count, per-entry
   length + CRC32); only the entry payload codec differs. *)
let of_container ~get_entry (s : string) : hli_file =
  let cur = { data = s; pos = 4 } in
  let n_entries = get_varint cur in
  if n_entries > remaining cur then
    corrupt ~at:cur.pos ~code:"E0613"
      "entry count %d exceeds the %d remaining bytes" n_entries (remaining cur);
  let entries =
    List.init n_entries (fun i ->
        let len = get_varint cur in
        if len > remaining cur then
          corrupt ~at:cur.pos ~code:"E0613"
            "entry %d: payload length %d exceeds the %d remaining bytes" i len
            (remaining cur);
        let payload_ofs = cur.pos in
        let payload = String.sub s payload_ofs len in
        cur.pos <- cur.pos + len;
        let stored = get_crc32 cur in
        let computed = crc32 s payload_ofs len in
        if stored <> computed then
          corrupt ~at:payload_ofs ~code:"E0615"
            "entry %d: CRC32 mismatch (stored %08x, computed %08x)" i stored
            computed;
        let sub = { data = payload; pos = 0 } in
        let e = get_entry sub in
        if sub.pos <> len then
          corrupt ~at:(payload_ofs + sub.pos) ~code:"E0616"
            "entry %d: %d bytes of payload left undecoded" i (len - sub.pos);
        e)
  in
  if cur.pos <> String.length s then
    corrupt ~at:cur.pos ~code:"E0616" "%d trailing bytes" (remaining cur);
  { entries }

let of_bytes_v2 = of_container ~get_entry:get_entry_v2
let of_bytes_v3 = of_container ~get_entry:get_entry_v3

(* ------------------------------------------------------------------ *)
(* Per-entry payloads and content hashes                               *)
(* ------------------------------------------------------------------ *)

(* Each HLI3 entry is already a self-contained length+CRC framed
   payload, which makes the function the natural unit of storage and
   transfer: the per-function disk cache keys single-entry payloads by
   fingerprint, and the hlid delta-upload path ships/references entries
   by content hash instead of re-shipping whole containers.  These
   always use the current (HLI3) entry codec: the cache key and the
   content hashes both cover {!format_version}, so a revision bump
   retires stale payloads instead of mis-decoding them. *)

(** Encode one entry as its bare HLI3 payload (no length/CRC framing —
    callers that need framing add it, exactly as {!to_bytes} does). *)
let entry_to_bytes (e : hli_entry) : string =
  let buf = Buffer.create 1024 in
  put_entry_v3 buf e;
  Buffer.contents buf

(** Decode one bare HLI3 entry payload; raises {!Corrupt} (E06xx) on
    any malformation, including undecoded trailing bytes. *)
let entry_of_bytes (s : string) : hli_entry =
  let cur = { data = s; pos = 0 } in
  let e = get_entry_v3 cur in
  if cur.pos <> String.length s then
    corrupt ~at:cur.pos ~code:"E0616" "%d trailing bytes after entry"
      (remaining cur);
  e

(** Content hash of an entry: MD5 over its HLI3 payload bytes.  Stable
    across container framing, so the same value names an entry in the
    disk cache, on the wire (delta uploads) and in [hli_dump]. *)
let entry_hash_of_payload (payload : string) : Digest.t =
  Digest.string payload

let entry_hash (e : hli_entry) : Digest.t =
  entry_hash_of_payload (entry_to_bytes e)

(** Split an HLI3 container into its per-entry payloads, in order, with
    each CRC verified — [(unit_name, payload)] per entry.  The payload
    is {e not} decoded beyond the leading unit name, so this is the
    cheap way to content-address a container's entries.  Only the
    current revision is accepted: the callers (delta uploads, the disk
    cache) content-address payloads under {!format_version}, so an
    HLI2 container here would silently hash v2 bytes under v3 names. *)
let split_container (s : string) : (string * string) list =
  if String.length s < 4 || String.sub s 0 4 <> magic_v3 then
    corrupt ~at:0 ~code:"E0610" "bad magic (want %s)" magic_v3;
  let cur = { data = s; pos = 4 } in
  let n_entries = get_varint cur in
  if n_entries > remaining cur then
    corrupt ~at:cur.pos ~code:"E0613"
      "entry count %d exceeds the %d remaining bytes" n_entries (remaining cur);
  let entries =
    List.init n_entries (fun i ->
        let len = get_varint cur in
        if len > remaining cur then
          corrupt ~at:cur.pos ~code:"E0613"
            "entry %d: payload length %d exceeds the %d remaining bytes" i len
            (remaining cur);
        let payload_ofs = cur.pos in
        let payload = String.sub s payload_ofs len in
        cur.pos <- cur.pos + len;
        let stored = get_crc32 cur in
        let computed = crc32 s payload_ofs len in
        if stored <> computed then
          corrupt ~at:payload_ofs ~code:"E0615"
            "entry %d: CRC32 mismatch (stored %08x, computed %08x)" i stored
            computed;
        let sub = { data = payload; pos = 0 } in
        (get_string sub, payload))
  in
  if cur.pos <> String.length s then
    corrupt ~at:cur.pos ~code:"E0616" "%d trailing bytes" (remaining cur);
  entries

(** Reassemble an HLI3 container from per-entry payloads, in order.
    Inverse of {!split_container}: byte-identical to {!to_bytes} over
    the same entries, so a receiver that collected payloads by content
    hash recovers the exact container (and its whole-container
    digest). *)
let container_of_payloads (payloads : string list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v3;
  put_varint buf (List.length payloads);
  List.iter
    (fun payload ->
      put_varint buf (String.length payload);
      Buffer.add_string buf payload;
      put_crc32 buf payload)
    payloads;
  Buffer.contents buf

(** Decode any container revision, dispatching on the magic. *)
let of_bytes (s : string) : hli_file =
  if String.length s < 4 then
    corrupt ~at:0 ~code:"E0610" "input shorter than a magic number";
  match String.sub s 0 4 with
  | m when m = magic_v3 -> of_bytes_v3 s
  | m when m = magic_v2 -> of_bytes_v2 s
  | m when m = magic_v1 -> of_bytes_v1 s
  | m ->
      corrupt ~at:0 ~code:"E0610" "bad magic %S (want %s, %s or %s)" m magic_v3
        magic_v2 magic_v1

(* ------------------------------------------------------------------ *)
(* File I/O and text dump                                              *)
(* ------------------------------------------------------------------ *)

let write_file path f =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes f))

(** Read and decode an HLI file (either container revision).  Decode
    failures and — unless [validate] is [false] — structural-validation
    failures are raised as {!Diagnostics.Diagnostic} values carrying the
    file path and a precise E06xx code. *)
let read_file ?(validate = true) path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let f =
    try of_bytes s
    with Corrupt c ->
      raise (Diagnostics.Diagnostic (diagnostic_of_corruption ~file:path c))
  in
  if validate then Validate.validate ~file:path f;
  f

let to_text (f : hli_file) : string =
  Fmt.str "@[<v>%a@]@." Fmt.(list ~sep:cut pp_entry) f.entries
