(** hlid fleet router: HLI units sharded across N hlid instances by
    consistent hash of unit name, behind the single-session client
    surface (DESIGN.md §9).

    Batched/pipelined query trains are split per shard, fanned out
    concurrently (one worker domain per shard on multi-core hosts) and
    merged back into positional order.  {!refresh} is an epoch
    barrier: every shard's in-flight replies are drained before the
    owner refreshes, so pre- and post-refresh answers are never mixed
    across shards.  A shard dying mid-session triggers re-handshake
    and bounded retry — reconnect, re-open the shard's unit subset,
    replay its maintenance log (verified against the recorded results;
    divergence raises E1105), re-run the failed operation — so callers
    see retried answers, never wrong ones. *)

type t

val connect :
  ?timeout:float ->
  ?max_frame:int ->
  ?pipeline:int ->
  ?shm:bool ->
  ?fanout:bool ->
  ?retry_attempts:int ->
  ?retry_delay:float ->
  string list ->
  t
(** Open one session per shard socket and hand back the fleet session.
    [pipeline]/[shm]/[timeout]/[max_frame] apply to every shard
    client.  [fanout] (default: on iff more than one shard {e and}
    more than one core) runs each shard on its own worker domain so
    sub-trains overlap; off, shards are driven sequentially from the
    caller — cheaper on a single core.  [retry_attempts] (default 25)
    × [retry_delay] (default 0.2s) bound how long a recovery waits for
    a dead shard to come back — at setup too, so a shard mid-restart
    does not kill sessions that merely started at the wrong moment.
    Raises E1112 if a shard stays unreachable through the whole
    window, [Invalid_argument] on an empty list. *)

val shard_of : t -> string -> int
(** The ring owner (index into the socket list) of a unit name —
    deterministic in fleet size and order only. *)

val shard_paths : t -> string list
(** The shard sockets, in ring order (the v4 Hello shard map). *)

val epoch : t -> int
(** Refresh barriers completed on this session. *)

val failovers : t -> int
(** Successful shard recoveries (reconnect + replay) performed. *)

val pending : t -> int
(** In-flight frames summed across shards (0 unless pipelining); 0
    immediately after any {!refresh} — the barrier drained them. *)

val open_hli_bytes : t -> string -> (string * int list) list
(** Split the container per shard, open every sub-container on its
    owner (delta uploads included, via each shard client), and merge
    the per-unit results back into container order.  The sub-containers
    are retained for failover re-opens. *)

val close : t -> unit
(** Close every shard session and stop the worker domains.  Never
    raises. *)

val flush : t -> unit
(** Drain in-flight replies on every shard. *)

(** {2 Queries} — positional, exactly as {!Client}. *)

val query_batch : t -> Protocol.query list -> Protocol.answer list
val query_batches : t -> Protocol.query list list -> Protocol.answer list list

val equiv_acc : t -> u:string -> int -> int -> Hli_core.Query.equiv_result
val alias : t -> u:string -> rid:int -> int -> int -> bool

val lcdd :
  t -> u:string -> rid:int -> int -> int ->
  Hli_core.Tables.lcdd_entry list option

val call_acc :
  t -> u:string -> call:int -> mem:int -> Hli_core.Query.call_acc_result

val region_of_item : t -> u:string -> int -> int option
val hoist_target : t -> u:string -> int -> int option

val equiv_prob :
  t -> u:string -> int -> int -> Hli_core.Query.equiv_result * int
(** Confidence-weighted equiv (v5), routed to the unit's ring owner;
    memoized per shard client like {!equiv_acc}. *)

val line_table : t -> string -> Hli_core.Tables.line_entry list

(** {2 Maintenance} — routed to the unit's owner and appended to that
    shard's replay log before executing, so a shard death mid-op still
    yields exactly one (replayed) answer. *)

val notify_delete : t -> u:string -> int -> unit
val notify_gen : t -> u:string -> like:int -> line:int -> int
val notify_move : t -> u:string -> item:int -> target_rid:int -> bool

val notify_unroll :
  t -> u:string -> rid:int -> factor:int -> Hli_core.Maintain.unroll_result

val refresh : t -> u:string -> unit
(** The epoch barrier (see the module header). *)

val stats_json : t -> string
(** Aggregate fleet telemetry: [{"router":{"shards","epoch",
    "failovers"},"backends":[...]}] with each backend's own stats
    object in shard order. *)

(** {2 Process mode} — [hlid --router] *)

val serve :
  ?timeout:float ->
  ?max_frame:int ->
  backends:string list ->
  socket_path:string ->
  stop:bool Atomic.t ->
  unit ->
  unit
(** Listen on [socket_path] speaking the ordinary wire protocol and
    proxy each accepted session onto a fleet session over [backends]
    (one domain per connection; Hello advertises the shard map;
    Open_delta answers E1106 so clients resync with a full upload).
    Returns once [stop] goes true; sessions are told E1110 and
    drained.  Raises E1112 if the socket cannot be bound. *)
