(** HLIX segment publisher — the server side of the shared-memory
    query fast path.

    One {!pub} is one published segment file: an mmap'd HLIX image of
    a unit's query index that co-located clients map read-only and
    query without touching the socket.

    Publication is atomic: the segment is built into a temp file in
    the target directory, mapped, stamped with an even generation,
    and [rename(2)]d into place — a reader can never observe a
    half-written file at the advertised path.

    Rebuilds (Refresh barriers) rewrite the mapping {e in place}
    under the seqlock protocol: the generation word goes odd, the
    body is rewritten around it, and the generation lands on the next
    even value.  In-place rewriting (rather than a fresh
    tmp+rename) is essential — a rename would orphan every existing
    client mapping on the old inode with a forever-stale generation,
    silently freezing their answers.  When the new image outgrows the
    file, the file is grown (never shrunk) and remapped; readers
    notice [total_len] exceeding their mapping and remap the same
    path.  The capacity is rounded up generously so steady-state
    maintenance never pays the grow path. *)

module F = Hli_core.Flatindex

type pub = {
  p_path : string;  (** advertised path (post-rename) *)
  p_fd : Unix.file_descr;
  mutable p_map : F.seg;
  mutable p_cap : int;  (** mapped/file capacity, >= the image *)
  mutable p_gen : int;  (** current even generation *)
}

let chunk = 65536
let round_cap n = (n + chunk - 1) / chunk * chunk

let map_rw fd cap : F.seg =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout true [| cap |])

let blit_range (b : Bytes.t) (seg : F.seg) lo hi =
  for i = lo to hi - 1 do
    Bigarray.Array1.unsafe_set seg i (Char.code (Bytes.unsafe_get b i))
  done

(** Build [idx]'s HLIX image and publish it as [dir]/[name].hlix
    (atomic tmp+rename), keeping the file mapped read-write for
    in-place rebuilds.  [hash] is the 16-byte digest of the source
    HLI2 container. *)
let publish ~dir ~name ~hash idx : pub =
  let bytes = F.build ~content_hash:hash idx in
  let cap = round_cap (Bytes.length bytes) in
  let path = Filename.concat dir (name ^ ".hlix") in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Unix.ftruncate fd cap;
     let map = map_rw fd cap in
     blit_range bytes map 0 (Bytes.length bytes);
     F.set_generation map 2;
     Unix.rename tmp path;
     { p_path = path; p_fd = fd; p_map = map; p_cap = cap; p_gen = 2 }
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e)

(** Seqlock in-place rebuild: generation odd -> rewrite the body
    around the generation word -> generation even (+2).  Readers that
    sample the generation before and after a lookup can never accept
    a torn image. *)
let rebuild pub ~hash idx =
  let odd = pub.p_gen + 1 in
  F.set_generation pub.p_map odd;
  let bytes = F.build ~content_hash:hash idx in
  let len = Bytes.length bytes in
  if len > pub.p_cap then begin
    let cap = round_cap len in
    Unix.ftruncate pub.p_fd cap;
    (* same inode, same pages: the odd generation already written is
       visible through the new mapping too *)
    let m = map_rw pub.p_fd cap in
    pub.p_map <- m;
    pub.p_cap <- cap
  end;
  blit_range bytes pub.p_map 0 F.o_gen;
  blit_range bytes pub.p_map (F.o_gen + 8) len;
  F.set_generation pub.p_map (pub.p_gen + 2);
  pub.p_gen <- pub.p_gen + 2

let close pub = try Unix.close pub.p_fd with Unix.Unix_error _ -> ()

(** Remove orphaned publish temporaries ([<segment>.tmp.<pid>]) under
    [dir], returning how many were removed.  A publisher that crashes
    between [openfile] and [rename] leaves its temp file behind
    forever — nothing ever advertises or reopens it — so any
    [*.tmp.*] in a session directory we own is garbage by
    construction (publishes within a session run on that session's
    single worker, so a sweep at session open or close can never race
    a live publish into the same directory). *)
let sweep_stale dir : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          (* "<base>.tmp.<pid>": a ".tmp." infix, not a suffix *)
          let is_tmp =
            let rec find i =
              if i + 5 > String.length name then false
              else if String.sub name i 5 = ".tmp." then true
              else find (i + 1)
            in
            find 0
          in
          if is_tmp then (
            match Unix.unlink (Filename.concat dir name) with
            | () -> n + 1
            | exception Unix.Unix_error _ -> n)
          else n)
        0 names

(** Close and remove the advertised file.  Client mappings survive
    the unlink (the inode lives until the last mapping dies); they
    just stop seeing rebuilds, which the generation check turns into
    a wire fallback. *)
let unpublish pub =
  close pub;
  try Unix.unlink pub.p_path with Unix.Unix_error _ -> ()
