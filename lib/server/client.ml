(** Blocking hlid client, with optional request pipelining.

    One {!t} is one server session (one socket, one opened HLI file).
    Single-query conveniences memoize locally — the client-side image
    of the query engine's memo tables — and every maintenance
    notification conservatively resets all memo tables, exactly as
    [Maintain]'s watch edge invalidates local indexes.  Memoization is
    invisible to table output: Table 2 query counts are computed from
    back-end DDG statistics, not the query engine's counters.

    Pipelining rides on the server's ordering guarantee: replies come
    back strictly in request order, one per request, so correlation is
    positional — an expectation FIFO records what each in-flight frame
    must be answered with, and a reply that does not match the
    head-of-line expectation is rejected as out-of-sequence (E1105).
    With a window of [pipeline] frames, {!query_batches} keeps up to
    that many [Batch] frames in flight, and the unit-returning
    notifications ([notify_delete], [refresh]) defer their acks — sent
    immediately, collected lazily before the next reply-bearing call.
    Sends drain ready replies first, so both sides can never be
    blocked writing into full socket buffers at once.

    All failures are {!Diagnostics.Diagnostic}: protocol faults carry
    their E11xx code (phase [Net]), and server-relayed errors
    ([R_error]) re-raise under the server's original code, so e.g. a
    relayed E0701 bad-unroll-factor behaves like the local call. *)

module P = Protocol
module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query

(* what the head-of-line in-flight request must be answered with *)
type expected = E_ack of string | E_results of int

type t = {
  fd : Unix.file_descr;
  rd : P.reader;
  max_frame : int;
  timeout : float;
  pipeline : int;  (** max in-flight frames; 1 = strict request/reply *)
  expect : expected Queue.t;  (** in-flight expectations, send order *)
  (* memo tables, keyed by (unit, args); reset on any notify *)
  memo_equiv : (string * int * int, Q.equiv_result) Hashtbl.t;
  memo_alias : (string * int * int * int, bool) Hashtbl.t;
  memo_lcdd : (string * int * int * int, T.lcdd_entry list option) Hashtbl.t;
  memo_call : (string * int * int, Q.call_acc_result) Hashtbl.t;
  memo_region : (string * int, int option) Hashtbl.t;
}

let net_raise ?at code fmt =
  Fmt.kstr
    (fun m ->
      let m =
        match at with
        | Some at when at >= 0 -> Printf.sprintf "%s (at byte %d)" m at
        | _ -> m
      in
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

let send cl (req : P.request) =
  match
    P.send_request ~deadline:(Unix.gettimeofday () +. cl.timeout) cl.fd req
  with
  | () -> ()
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

let recv_reply cl : P.response =
  match P.recv_response ~max_frame:cl.max_frame ~timeout:cl.timeout cl.rd with
  | P.R_error { e_code; e_msg } -> net_raise e_code "%s" e_msg
  | resp -> resp
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

(* collect the reply for the oldest in-flight request and check it
   against its expectation; a mismatch means the server answered out
   of sequence (or not at all) and the stream can't be trusted *)
let collect_one cl : P.answer list option =
  match Queue.take_opt cl.expect with
  | None -> net_raise "E1105" "reply collected with no request in flight"
  | Some exp -> (
      let resp = recv_reply cl in
      match (exp, resp) with
      | E_ack _, P.R_ack -> None
      | E_results n, P.R_results l when List.length l = n -> Some l
      | E_results n, P.R_results l ->
          net_raise "E1105"
            "out-of-sequence reply: %d answers to a %d-query batch"
            (List.length l) n
      | E_ack what, _ ->
          net_raise "E1105" "out-of-sequence reply to pipelined %s" what
      | E_results _, _ -> net_raise "E1105" "out-of-sequence reply to Batch")

let in_flight cl = Queue.length cl.expect

(* drain every outstanding expectation (deferred acks and any
   leftover results); every reply-bearing operation starts here so
   the request/reply stream below it is strictly synchronous *)
let drain cl =
  while in_flight cl > 0 do
    ignore (collect_one cl)
  done

let rpc cl (req : P.request) : P.response =
  drain cl;
  send cl req;
  recv_reply cl

let connect ?(timeout = P.default_timeout) ?(max_frame = P.default_max_frame)
    ?(pipeline = 1) path : t =
  if pipeline < 1 then invalid_arg "Client.connect: pipeline must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     net_raise "E1112" "cannot connect to %s: %s" path (Unix.error_message e));
  let cl =
    {
      fd;
      rd = P.reader fd;
      max_frame;
      timeout;
      pipeline;
      expect = Queue.create ();
      memo_equiv = Hashtbl.create 256;
      memo_alias = Hashtbl.create 64;
      memo_lcdd = Hashtbl.create 64;
      memo_call = Hashtbl.create 64;
      memo_region = Hashtbl.create 64;
    }
  in
  (match rpc cl (P.Hello { version = P.protocol_version }) with
  | P.R_hello { version } when version = P.protocol_version -> ()
  | P.R_hello { version } ->
      net_raise "E1111" "protocol version mismatch: client %d, server %d"
        P.protocol_version version
  | _ -> net_raise "E1105" "unexpected response to Hello");
  cl

let close cl =
  (* best-effort goodbye; the server also handles a plain EOF *)
  (try
     drain cl;
     P.send_request cl.fd P.Close;
     ignore (P.recv_response ~max_frame:cl.max_frame ~timeout:1.0 cl.rd)
   with _ -> ());
  try Unix.close cl.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Session setup                                                       *)
(* ------------------------------------------------------------------ *)

let expect_opened = function
  | P.R_opened l -> l
  | _ -> net_raise "E1105" "unexpected response to Open"

let open_hli_bytes cl bytes = expect_opened (rpc cl (P.Open_hli bytes))
let open_path cl path = expect_opened (rpc cl (P.Open_path path))

let line_table cl u =
  match rpc cl (P.Line_table u) with
  | P.R_line_table lt -> lt
  | _ -> net_raise "E1105" "unexpected response to Line_table"

let server_stats cl =
  match rpc cl P.Stats with
  | P.R_stats s -> s
  | _ -> net_raise "E1105" "unexpected response to Stats"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* Pipelined fan-out: keep up to [pipeline] Batch frames in flight;
   replies land positionally (the server answers in request order).
   Frames are encoded into a local buffer and flushed in groups of
   half the window, so a window costs a couple of write syscalls, not
   one per frame.  Before blocking on the window: flush, then drain
   whatever replies are already readable — the send path can then
   never deadlock against a server blocked writing replies we aren't
   reading. *)
let query_batches cl (batches : P.query list list) : P.answer list list =
  drain cl;
  let n = List.length batches in
  let results = Array.make n [] in
  let next = ref 0 in
  let collect () =
    (match collect_one cl with
    | Some l -> results.(!next) <- l
    | None -> net_raise "E1105" "out-of-sequence reply (ack for a Batch)");
    incr next
  in
  let buf = Buffer.create 4096 in
  let buffered = ref 0 in
  let pending_exp = ref [] in
  let flush_send () =
    if Buffer.length buf > 0 then begin
      (* drain replies already readable before pushing more bytes, so
         both sides can't end up blocked writing into full buffers *)
      while in_flight cl > 0 && P.readable cl.rd do
        collect ()
      done;
      (match
         P.write_all
           ~deadline:(Unix.gettimeofday () +. cl.timeout)
           cl.fd (Buffer.contents buf)
       with
      | () -> ()
      | exception S.Corrupt c ->
          raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c)));
      List.iter (fun e -> Queue.add e cl.expect) (List.rev !pending_exp);
      pending_exp := [];
      buffered := 0;
      Buffer.clear buf
    end
  in
  (* full-window bursts: one write carries the whole window, and the
     reply drain empties it before the next burst.  Splitting the
     window into smaller writes would overlap client encode with
     server compute, but costs proportionally more syscalls — and the
     amortized syscall wins more than the overlap, decisively so on a
     single-core host. *)
  let group = cl.pipeline in
  List.iter
    (fun qs ->
      (* window full: collect replies until a slot opens.  Collecting
         (not flushing) keeps the steady state at [group] frames per
         write — flushing here would degenerate to one frame per
         syscall once the window first fills. *)
      while in_flight cl + !buffered >= cl.pipeline do
        if in_flight cl = 0 then flush_send () else collect ()
      done;
      P.encode_request_into buf (P.Batch qs);
      pending_exp := E_results (List.length qs) :: !pending_exp;
      incr buffered;
      if !buffered >= group then flush_send ())
    batches;
  flush_send ();
  while in_flight cl > 0 do
    collect ()
  done;
  Array.to_list results

let query_batch cl (qs : P.query list) : P.answer list =
  match query_batches cl [ qs ] with [ l ] -> l | _ -> assert false

let one cl q =
  match query_batch cl [ q ] with [ a ] -> a | _ -> assert false

let memoized tbl key fetch =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = fetch () in
      Hashtbl.replace tbl key v;
      v

let equiv_acc cl ~u a b =
  memoized cl.memo_equiv (u, a, b) @@ fun () ->
  match one cl (P.Q_equiv { u; a; b }) with
  | P.A_equiv r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (equiv)"

let alias cl ~u ~rid ca cb =
  memoized cl.memo_alias (u, rid, ca, cb) @@ fun () ->
  match one cl (P.Q_alias { u; rid; ca; cb }) with
  | P.A_alias r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (alias)"

let lcdd cl ~u ~rid a b =
  memoized cl.memo_lcdd (u, rid, a, b) @@ fun () ->
  match one cl (P.Q_lcdd { u; rid; a; b }) with
  | P.A_lcdd r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (lcdd)"

let call_acc cl ~u ~call ~mem =
  memoized cl.memo_call (u, call, mem) @@ fun () ->
  match one cl (P.Q_call { u; call; mem }) with
  | P.A_call r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (call)"

let region_of_item cl ~u item =
  memoized cl.memo_region (u, item) @@ fun () ->
  match one cl (P.Q_region_of { u; item }) with
  | P.A_region_of r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (region_of)"

let hoist_target cl ~u item =
  (* not memoized: the answer depends on maintained state committed
     server-side, mirroring the local commit-then-query sequence *)
  match one cl (P.Q_hoist_target { u; item }) with
  | P.A_hoist_target r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (hoist_target)"

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let reset_memo cl =
  Hashtbl.reset cl.memo_equiv;
  Hashtbl.reset cl.memo_alias;
  Hashtbl.reset cl.memo_lcdd;
  Hashtbl.reset cl.memo_call;
  Hashtbl.reset cl.memo_region

let expect_ack what = function
  | P.R_ack -> ()
  | _ -> net_raise "E1105" "unexpected response to %s" what

(* the two unit-returning notifications can defer their acks: send
   now, expect the R_ack later (the expectation FIFO keeps it
   correlated), but never let more than the window build up *)
let deferred_ack cl what req =
  if cl.pipeline > 1 then begin
    while in_flight cl >= cl.pipeline do
      ignore (collect_one cl)
    done;
    while in_flight cl > 0 && P.readable cl.rd do
      ignore (collect_one cl)
    done;
    send cl req;
    Queue.add (E_ack what) cl.expect
  end
  else expect_ack what (rpc cl req)

let notify_delete cl ~u item =
  reset_memo cl;
  deferred_ack cl "Notify_delete" (P.Notify_delete { u; item })

let notify_gen cl ~u ~like ~line =
  reset_memo cl;
  match rpc cl (P.Notify_gen { u; like; line }) with
  | P.R_gen id -> id
  | _ -> net_raise "E1105" "unexpected response to Notify_gen"

let notify_move cl ~u ~item ~target_rid =
  reset_memo cl;
  match rpc cl (P.Notify_move { u; item; target_rid }) with
  | P.R_moved moved -> moved
  | _ -> net_raise "E1105" "unexpected response to Notify_move"

let notify_unroll cl ~u ~rid ~factor =
  reset_memo cl;
  match rpc cl (P.Notify_unroll { u; rid; factor }) with
  | P.R_unrolled r -> r
  | _ -> net_raise "E1105" "unexpected response to Notify_unroll"

let refresh cl ~u =
  reset_memo cl;
  deferred_ack cl "Refresh" (P.Refresh u)

let flush cl = drain cl
let pending cl = in_flight cl
