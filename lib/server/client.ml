(** Blocking hlid client.

    One {!t} is one server session (one socket, one opened HLI file).
    Single-query conveniences memoize locally — the client-side image
    of the query engine's memo tables — and every maintenance
    notification conservatively resets all memo tables, exactly as
    [Maintain]'s watch edge invalidates local indexes.  Memoization is
    invisible to table output: Table 2 query counts are computed from
    back-end DDG statistics, not the query engine's counters.

    All failures are {!Diagnostics.Diagnostic}: protocol faults carry
    their E11xx code (phase [Net]), and server-relayed errors
    ([R_error]) re-raise under the server's original code, so e.g. a
    relayed E0701 bad-unroll-factor behaves like the local call. *)

module P = Protocol
module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  timeout : float;
  (* memo tables, keyed by (unit, args); reset on any notify *)
  memo_equiv : (string * int * int, Q.equiv_result) Hashtbl.t;
  memo_alias : (string * int * int * int, bool) Hashtbl.t;
  memo_lcdd : (string * int * int * int, T.lcdd_entry list option) Hashtbl.t;
  memo_call : (string * int * int, Q.call_acc_result) Hashtbl.t;
  memo_region : (string * int, int option) Hashtbl.t;
}

let net_raise ?at code fmt =
  Fmt.kstr
    (fun m ->
      let m =
        match at with
        | Some at when at >= 0 -> Printf.sprintf "%s (at byte %d)" m at
        | _ -> m
      in
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

let rpc cl (req : P.request) : P.response =
  match
    P.send_request cl.fd req;
    P.recv_response ~max_frame:cl.max_frame ~timeout:cl.timeout cl.fd
  with
  | P.R_error { e_code; e_msg } -> net_raise e_code "%s" e_msg
  | resp -> resp
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

let connect ?(timeout = P.default_timeout) ?(max_frame = P.default_max_frame)
    path : t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     net_raise "E1112" "cannot connect to %s: %s" path (Unix.error_message e));
  let cl =
    {
      fd;
      max_frame;
      timeout;
      memo_equiv = Hashtbl.create 256;
      memo_alias = Hashtbl.create 64;
      memo_lcdd = Hashtbl.create 64;
      memo_call = Hashtbl.create 64;
      memo_region = Hashtbl.create 64;
    }
  in
  (match rpc cl (P.Hello { version = P.protocol_version }) with
  | P.R_hello { version } when version = P.protocol_version -> ()
  | P.R_hello { version } ->
      net_raise "E1111" "protocol version mismatch: client %d, server %d"
        P.protocol_version version
  | _ -> net_raise "E1105" "unexpected response to Hello");
  cl

let close cl =
  (* best-effort goodbye; the server also handles a plain EOF *)
  (try
     P.send_request cl.fd P.Close;
     ignore (P.recv_response ~max_frame:cl.max_frame ~timeout:1.0 cl.fd)
   with _ -> ());
  try Unix.close cl.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Session setup                                                       *)
(* ------------------------------------------------------------------ *)

let expect_opened = function
  | P.R_opened l -> l
  | _ -> net_raise "E1105" "unexpected response to Open"

let open_hli_bytes cl bytes = expect_opened (rpc cl (P.Open_hli bytes))
let open_path cl path = expect_opened (rpc cl (P.Open_path path))

let line_table cl u =
  match rpc cl (P.Line_table u) with
  | P.R_line_table lt -> lt
  | _ -> net_raise "E1105" "unexpected response to Line_table"

let server_stats cl =
  match rpc cl P.Stats with
  | P.R_stats s -> s
  | _ -> net_raise "E1105" "unexpected response to Stats"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let query_batch cl (qs : P.query list) : P.answer list =
  match rpc cl (P.Batch qs) with
  | P.R_results l when List.length l = List.length qs -> l
  | P.R_results _ -> net_raise "E1105" "batch answer count mismatch"
  | _ -> net_raise "E1105" "unexpected response to Batch"

let one cl q =
  match query_batch cl [ q ] with [ a ] -> a | _ -> assert false

let memoized tbl key fetch =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = fetch () in
      Hashtbl.replace tbl key v;
      v

let equiv_acc cl ~u a b =
  memoized cl.memo_equiv (u, a, b) @@ fun () ->
  match one cl (P.Q_equiv { u; a; b }) with
  | P.A_equiv r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (equiv)"

let alias cl ~u ~rid ca cb =
  memoized cl.memo_alias (u, rid, ca, cb) @@ fun () ->
  match one cl (P.Q_alias { u; rid; ca; cb }) with
  | P.A_alias r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (alias)"

let lcdd cl ~u ~rid a b =
  memoized cl.memo_lcdd (u, rid, a, b) @@ fun () ->
  match one cl (P.Q_lcdd { u; rid; a; b }) with
  | P.A_lcdd r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (lcdd)"

let call_acc cl ~u ~call ~mem =
  memoized cl.memo_call (u, call, mem) @@ fun () ->
  match one cl (P.Q_call { u; call; mem }) with
  | P.A_call r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (call)"

let region_of_item cl ~u item =
  memoized cl.memo_region (u, item) @@ fun () ->
  match one cl (P.Q_region_of { u; item }) with
  | P.A_region_of r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (region_of)"

let hoist_target cl ~u item =
  (* not memoized: the answer depends on maintained state committed
     server-side, mirroring the local commit-then-query sequence *)
  match one cl (P.Q_hoist_target { u; item }) with
  | P.A_hoist_target r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (hoist_target)"

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let reset_memo cl =
  Hashtbl.reset cl.memo_equiv;
  Hashtbl.reset cl.memo_alias;
  Hashtbl.reset cl.memo_lcdd;
  Hashtbl.reset cl.memo_call;
  Hashtbl.reset cl.memo_region

let expect_ack what = function
  | P.R_ack -> ()
  | _ -> net_raise "E1105" "unexpected response to %s" what

let notify_delete cl ~u item =
  reset_memo cl;
  expect_ack "Notify_delete" (rpc cl (P.Notify_delete { u; item }))

let notify_gen cl ~u ~like ~line =
  reset_memo cl;
  match rpc cl (P.Notify_gen { u; like; line }) with
  | P.R_gen id -> id
  | _ -> net_raise "E1105" "unexpected response to Notify_gen"

let notify_move cl ~u ~item ~target_rid =
  reset_memo cl;
  match rpc cl (P.Notify_move { u; item; target_rid }) with
  | P.R_moved moved -> moved
  | _ -> net_raise "E1105" "unexpected response to Notify_move"

let notify_unroll cl ~u ~rid ~factor =
  reset_memo cl;
  match rpc cl (P.Notify_unroll { u; rid; factor }) with
  | P.R_unrolled r -> r
  | _ -> net_raise "E1105" "unexpected response to Notify_unroll"

let refresh cl ~u =
  reset_memo cl;
  expect_ack "Refresh" (rpc cl (P.Refresh u))
