(** Blocking hlid client, with optional request pipelining.

    One {!t} is one server session (one socket, one opened HLI file).
    Single-query conveniences memoize locally — the client-side image
    of the query engine's memo tables — and every maintenance
    notification conservatively resets all memo tables, exactly as
    [Maintain]'s watch edge invalidates local indexes.  Memoization is
    invisible to table output: Table 2 query counts are computed from
    back-end DDG statistics, not the query engine's counters.

    Pipelining rides on the server's ordering guarantee: replies come
    back strictly in request order, one per request, so correlation is
    positional — an expectation FIFO records what each in-flight frame
    must be answered with, and a reply that does not match the
    head-of-line expectation is rejected as out-of-sequence (E1105).
    With a window of [pipeline] frames, {!query_batches} keeps up to
    that many [Batch] frames in flight, and the unit-returning
    notifications ([notify_delete], [refresh]) defer their acks — sent
    immediately, collected lazily before the next reply-bearing call.
    Sends drain ready replies first, so both sides can never be
    blocked writing into full socket buffers at once.

    All failures are {!Diagnostics.Diagnostic}: protocol faults carry
    their E11xx code (phase [Net]), and server-relayed errors
    ([R_error]) re-raise under the server's original code, so e.g. a
    relayed E0701 bad-unroll-factor behaves like the local call. *)

module P = Protocol
module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query
module F = Hli_core.Flatindex

(* what the head-of-line in-flight request must be answered with *)
type expected = E_ack of string | E_results of int

(* One advertised HLIX segment, mapped lazily on first lookup.  The fd
   stays open for the session: a rebuild that outgrows the file is
   detected by [total_len] exceeding the mapping and answered by
   remapping the same (still-open) fd. *)
type shm_unit = {
  su_path : string;
  mutable su_fd : Unix.file_descr option;
  mutable su_map : F.seg option;
  mutable su_vgen : int;
      (** generation at the last successful full validation; a lookup
          under any other generation revalidates (CRC + content hash)
          before trusting the image *)
  mutable su_ok : bool;  (** false: segment failed validation, never retried *)
}

type t = {
  fd : Unix.file_descr;
  rd : P.reader;
  max_frame : int;
  timeout : float;
  mutable version : int;
      (** the session's negotiated protocol version — min(client,
          server) from the Hello exchange.  Below 5 the v5 frames
          (Q_prob) are not offered; calling {!equiv_prob} then raises
          E1113 locally instead of tripping the server's fault path *)
  pipeline : int;  (** max in-flight frames; 1 = strict request/reply *)
  shm : bool;  (** shared-memory fast path requested *)
  mutable shm_dir : string option;  (** advertised by the server's Hello *)
  mutable shards : string list;
      (** the fleet's shard map from the server's Hello: socket paths
          of the hlid instances units are sharded across, in ring
          order; [] for a standalone daemon *)
  mutable shm_hash : string;  (** digest of the opened HLI2; "" = unknown *)
  shm_units : (string, shm_unit) Hashtbl.t;
  mutable shm_last_u : string;
      (** single-entry lookup cache over [shm_units], hit by physical
          equality: query streams reuse one unit-name string for runs
          of queries, and the per-query string hash is measurable at
          shm rates.  Reset to a fresh sentinel whenever [shm_units]
          changes *)
  mutable shm_last_su : shm_unit option;
  maint_open : (string, unit) Hashtbl.t;
      (** units with uncommitted maintenance: shm lookups fall back to
          the wire until the next [refresh] barrier *)
  expect : expected Queue.t;  (** in-flight expectations, send order *)
  (* memo tables, keyed by (unit, args); invalidated per unit on notify *)
  memo_equiv : (string * int * int, Q.equiv_result) Hashtbl.t;
  memo_alias : (string * int * int * int, bool) Hashtbl.t;
  memo_lcdd : (string * int * int * int, T.lcdd_entry list option) Hashtbl.t;
  memo_call : (string * int * int, Q.call_acc_result) Hashtbl.t;
  memo_region : (string * int, int option) Hashtbl.t;
  memo_prob : (string * int * int, Q.equiv_result * int) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Shm counters (the telemetry "shm" object)                           *)
(* ------------------------------------------------------------------ *)

type shm_stats = {
  maps : int;  (** segment mappings established (remaps included) *)
  generation_retries : int;  (** lookups retried under the seqlock *)
  wire_fallbacks : int;  (** shm-eligible lookups answered on the wire *)
  segment_bytes : int;  (** bytes currently mapped across segments *)
}

let sc_maps = Atomic.make 0
let sc_retries = Atomic.make 0
let sc_fallbacks = Atomic.make 0
let sc_bytes = Atomic.make 0

let shm_stats () =
  {
    maps = Atomic.get sc_maps;
    generation_retries = Atomic.get sc_retries;
    wire_fallbacks = Atomic.get sc_fallbacks;
    segment_bytes = Atomic.get sc_bytes;
  }

(* canonical rendering of the telemetry "shm" object (hli-telemetry-v7) *)
let shm_stats_json () =
  let s = shm_stats () in
  Printf.sprintf
    "{\"maps\":%d,\"generation_retries\":%d,\"wire_fallbacks\":%d,\
     \"segment_bytes\":%d}"
    s.maps s.generation_retries s.wire_fallbacks s.segment_bytes

let net_raise ?at code fmt =
  Fmt.kstr
    (fun m ->
      let m =
        match at with
        | Some at when at >= 0 -> Printf.sprintf "%s (at byte %d)" m at
        | _ -> m
      in
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

let send cl (req : P.request) =
  match P.send_request ~deadline:(P.now () +. cl.timeout) cl.fd req with
  | () -> ()
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

let recv_reply cl : P.response =
  match P.recv_response ~max_frame:cl.max_frame ~timeout:cl.timeout cl.rd with
  | P.R_error { e_code; e_msg } -> net_raise e_code "%s" e_msg
  | resp -> resp
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

(* collect the reply for the oldest in-flight request and check it
   against its expectation; a mismatch means the server answered out
   of sequence (or not at all) and the stream can't be trusted *)
let collect_one cl : P.answer list option =
  match Queue.take_opt cl.expect with
  | None -> net_raise "E1105" "reply collected with no request in flight"
  | Some exp -> (
      let resp = recv_reply cl in
      match (exp, resp) with
      | E_ack _, P.R_ack -> None
      | E_results n, P.R_results l when List.length l = n -> Some l
      | E_results n, P.R_results l ->
          net_raise "E1105"
            "out-of-sequence reply: %d answers to a %d-query batch"
            (List.length l) n
      | E_ack what, _ ->
          net_raise "E1105" "out-of-sequence reply to pipelined %s" what
      | E_results _, _ -> net_raise "E1105" "out-of-sequence reply to Batch")

let in_flight cl = Queue.length cl.expect
let shard_map cl = cl.shards

(* drain every outstanding expectation (deferred acks and any
   leftover results); every reply-bearing operation starts here so
   the request/reply stream below it is strictly synchronous *)
let drain cl =
  while in_flight cl > 0 do
    ignore (collect_one cl)
  done

let rpc cl (req : P.request) : P.response =
  drain cl;
  send cl req;
  recv_reply cl

let connect ?(timeout = P.default_timeout) ?(max_frame = P.default_max_frame)
    ?(pipeline = 1) ?(shm = false) path : t =
  if pipeline < 1 then invalid_arg "Client.connect: pipeline must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     net_raise "E1112" "cannot connect to %s: %s" path (Unix.error_message e));
  let cl =
    {
      fd;
      rd = P.reader fd;
      max_frame;
      timeout;
      version = P.protocol_version;
      pipeline;
      shm;
      shm_dir = None;
      shards = [];
      shm_hash = "";
      shm_units = Hashtbl.create 8;
      shm_last_u = Bytes.unsafe_to_string (Bytes.create 0);
      shm_last_su = None;
      maint_open = Hashtbl.create 8;
      expect = Queue.create ();
      memo_equiv = Hashtbl.create 256;
      memo_alias = Hashtbl.create 64;
      memo_lcdd = Hashtbl.create 64;
      memo_call = Hashtbl.create 64;
      memo_region = Hashtbl.create 64;
      memo_prob = Hashtbl.create 64;
    }
  in
  (match rpc cl (P.Hello { version = P.protocol_version }) with
  | P.R_hello { version; shm_dir; shards }
    when version <= P.protocol_version && version >= P.min_protocol_version ->
      (* downgrade negotiation: an older server answers with its own
         version and the session runs at that level (no v5 frames) *)
      cl.version <- version;
      cl.shards <- shards;
      if shm then cl.shm_dir <- shm_dir
  | P.R_hello { version; _ } ->
      net_raise "E1111" "protocol version mismatch: client %d, server %d"
        P.protocol_version version
  | _ -> net_raise "E1105" "unexpected response to Hello");
  cl

let drop_shm_unit su =
  (match su.su_map with
  | Some seg ->
      Atomic.fetch_and_add sc_bytes (-Bigarray.Array1.dim seg) |> ignore;
      su.su_map <- None
  | None -> ());
  match su.su_fd with
  | Some fd ->
      su.su_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let close cl =
  Hashtbl.iter (fun _ su -> drop_shm_unit su) cl.shm_units;
  Hashtbl.reset cl.shm_units;
  cl.shm_last_u <- Bytes.unsafe_to_string (Bytes.create 0);
  cl.shm_last_su <- None;
  (* best-effort goodbye; the server also handles a plain EOF *)
  (try
     drain cl;
     P.send_request cl.fd P.Close;
     ignore (P.recv_response ~max_frame:cl.max_frame ~timeout:1.0 cl.rd)
   with _ -> ());
  try Unix.close cl.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Session setup                                                       *)
(* ------------------------------------------------------------------ *)

let expect_opened = function
  | P.R_opened l -> l
  | _ -> net_raise "E1105" "unexpected response to Open"

(* After an open in shm mode: learn which segments the server
   published for this session.  Mapping is lazy (first lookup). *)
let fetch_shm_list cl =
  if cl.shm && cl.shm_dir <> None then begin
    Hashtbl.iter (fun _ su -> drop_shm_unit su) cl.shm_units;
    Hashtbl.reset cl.shm_units;
    cl.shm_last_u <- Bytes.unsafe_to_string (Bytes.create 0);
    cl.shm_last_su <- None;
    match rpc cl P.Shm_list with
    | P.R_shm_list segs ->
        List.iter
          (fun (u, path) ->
            Hashtbl.replace cl.shm_units u
              {
                su_path = path;
                su_fd = None;
                su_map = None;
                su_vgen = -1;
                su_ok = true;
              })
          segs
    | _ -> net_raise "E1105" "unexpected response to Shm_list"
  end

(* like [rpc] but hands back R_error frames instead of raising, so the
   delta open below can tell a clean in-sequence rejection (safe to
   resync over the same socket) from a transport fault (not safe) *)
let rpc_raw cl (req : P.request) : P.response =
  drain cl;
  send cl req;
  match P.recv_response ~max_frame:cl.max_frame ~timeout:cl.timeout cl.rd with
  | resp -> resp
  | exception S.Corrupt c ->
      raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))

(* Delta open: reference every entry by content hash, ship only what
   the server's cross-session store lacks.  Returns [None] when the
   exchange was answered cleanly but unsuccessfully (an R_error or an
   unexpected reply type) — the reply stream is still aligned, so the
   caller resyncs with a full upload over the same session and the
   answer is never wrong, only slower.  Transport faults (corrupt
   frame, EOF, timeout) raise as usual: the socket can't be trusted
   for a resync. *)
let try_open_delta cl bytes : (string * int list) list option =
  match S.split_container bytes with
  | exception S.Corrupt _ ->
      (* not a splittable HLI2 container: ship it whole and let the
         server answer authoritatively (its R_error carries the precise
         E06xx code the caller expects) *)
      None
  | split -> (
  let refs =
    List.map (fun (name, p) -> (name, S.entry_hash_of_payload p)) split
  in
  match rpc_raw cl (P.Open_delta refs) with
  | P.R_opened l -> Some l
  | P.R_delta_need idxs -> (
      let payloads = Array.of_list (List.map snd split) in
      let n = Array.length payloads in
      if List.exists (fun i -> i < 0 || i >= n) idxs then None
      else
        match
          rpc_raw cl (P.Delta_fill (List.map (Array.get payloads) idxs))
        with
        | P.R_opened l -> Some l
        | _ -> None)
  | _ -> None)

let open_hli_bytes cl bytes =
  let opened =
    match try_open_delta cl bytes with
    | Some l -> l
    | None -> expect_opened (rpc cl (P.Open_hli bytes))
  in
  cl.shm_hash <- Digest.string bytes;
  fetch_shm_list cl;
  opened

let open_path cl path =
  let opened = expect_opened (rpc cl (P.Open_path path)) in
  (cl.shm_hash <- (try Digest.file path with Sys_error _ -> ""));
  fetch_shm_list cl;
  opened

let line_table cl u =
  match rpc cl (P.Line_table u) with
  | P.R_line_table lt -> lt
  | _ -> net_raise "E1105" "unexpected response to Line_table"

let server_stats cl =
  match rpc cl P.Stats with
  | P.R_stats s -> s
  | _ -> net_raise "E1105" "unexpected response to Stats"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* Pipelined fan-out: keep up to [pipeline] Batch frames in flight;
   replies land positionally (the server answers in request order).
   Frames are encoded into a local buffer and flushed in groups of
   half the window, so a window costs a couple of write syscalls, not
   one per frame.  Before blocking on the window: flush, then drain
   whatever replies are already readable — the send path can then
   never deadlock against a server blocked writing replies we aren't
   reading. *)
let query_batches cl (batches : P.query list list) : P.answer list list =
  drain cl;
  let n = List.length batches in
  let results = Array.make n [] in
  let next = ref 0 in
  let collect () =
    (match collect_one cl with
    | Some l -> results.(!next) <- l
    | None -> net_raise "E1105" "out-of-sequence reply (ack for a Batch)");
    incr next
  in
  let buf = Buffer.create 4096 in
  let buffered = ref 0 in
  let pending_exp = ref [] in
  let flush_send () =
    if Buffer.length buf > 0 then begin
      (* drain replies already readable before pushing more bytes, so
         both sides can't end up blocked writing into full buffers *)
      while in_flight cl > 0 && P.readable cl.rd do
        collect ()
      done;
      (match
         P.write_all ~deadline:(P.now () +. cl.timeout) cl.fd
           (Buffer.contents buf)
       with
      | () -> ()
      | exception S.Corrupt c ->
          raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c)));
      List.iter (fun e -> Queue.add e cl.expect) (List.rev !pending_exp);
      pending_exp := [];
      buffered := 0;
      Buffer.clear buf
    end
  in
  (* full-window bursts: one write carries the whole window, and the
     reply drain empties it before the next burst.  Splitting the
     window into smaller writes would overlap client encode with
     server compute, but costs proportionally more syscalls — and the
     amortized syscall wins more than the overlap, decisively so on a
     single-core host. *)
  let group = cl.pipeline in
  List.iter
    (fun qs ->
      (* window full: collect replies until a slot opens.  Collecting
         (not flushing) keeps the steady state at [group] frames per
         write — flushing here would degenerate to one frame per
         syscall once the window first fills. *)
      while in_flight cl + !buffered >= cl.pipeline do
        if in_flight cl = 0 then flush_send () else collect ()
      done;
      P.encode_request_into buf (P.Batch qs);
      pending_exp := E_results (List.length qs) :: !pending_exp;
      incr buffered;
      if !buffered >= group then flush_send ())
    batches;
  flush_send ();
  while in_flight cl > 0 do
    collect ()
  done;
  Array.to_list results

(* Split train: put the whole train on the wire now, hand back a
   closure that blocks for the replies.  The fleet router drives every
   shard from one thread; sending all sub-trains before collecting any
   lets the backend processes compute concurrently.  The send path
   still drains replies that become readable between bursts, so
   neither side can block on a full pipe. *)
let query_batches_send cl (batches : P.query list list) :
    unit -> P.answer list list =
  drain cl;
  let n = List.length batches in
  let results = Array.make n [] in
  let next = ref 0 in
  let collect () =
    (match collect_one cl with
    | Some l -> results.(!next) <- l
    | None -> net_raise "E1105" "out-of-sequence reply (ack for a Batch)");
    incr next
  in
  let buf = Buffer.create 4096 in
  let pending_exp = ref [] in
  let flush_send () =
    if Buffer.length buf > 0 then begin
      while in_flight cl > 0 && P.readable cl.rd do
        collect ()
      done;
      (match
         P.write_all ~deadline:(P.now () +. cl.timeout) cl.fd
           (Buffer.contents buf)
       with
      | () -> ()
      | exception S.Corrupt c ->
          raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c)));
      List.iter (fun e -> Queue.add e cl.expect) (List.rev !pending_exp);
      pending_exp := [];
      Buffer.clear buf
    end
  in
  let group = max cl.pipeline 8 in
  let k = ref 0 in
  List.iter
    (fun qs ->
      P.encode_request_into buf (P.Batch qs);
      pending_exp := E_results (List.length qs) :: !pending_exp;
      incr k;
      if !k mod group = 0 then flush_send ())
    batches;
  flush_send ();
  fun () ->
    while !next < n do
      collect ()
    done;
    Array.to_list results

let query_batch cl (qs : P.query list) : P.answer list =
  match query_batches cl [ qs ] with [ l ] -> l | _ -> assert false

let one cl q =
  match query_batch cl [ q ] with [ a ] -> a | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Shared-memory fast path                                             *)
(* ------------------------------------------------------------------ *)

(* Map (or remap, after a grow) the unit's segment.  The mapping must
   be MAP_SHARED so the server's in-place seqlock rebuilds are
   visible through it, which requires an O_RDWR fd; the client never
   writes. *)
let su_seg su : F.seg =
  match su.su_map with
  | Some seg -> seg
  | None ->
      let fd =
        match su.su_fd with
        | Some fd -> fd
        | None ->
            let fd = Unix.openfile su.su_path [ Unix.O_RDWR ] 0 in
            su.su_fd <- Some fd;
            fd
      in
      let cap = (Unix.fstat fd).Unix.st_size in
      let seg =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout true
             [| cap |])
      in
      su.su_map <- Some seg;
      Atomic.incr sc_maps;
      Atomic.fetch_and_add sc_bytes cap |> ignore;
      seg

let shm_attempts = 3

(* Answer [f seg] off the unit's mapped segment under the seqlock
   protocol, or [None] to fall back to the wire.  A lookup is accepted
   only when the generation word is even and unchanged across it; a
   generation that moved (or torn bytes raising {!F.Torn}) retries up
   to {!shm_attempts} times.  The image is fully revalidated (CRC +
   content hash) whenever the generation differs from the last
   validated one; a segment that fails validation under a {e stable}
   generation is corrupt and permanently withdrawn. *)
let with_seg cl u (f : F.seg -> 'a) : 'a option =
  if not cl.shm then None
  else
    let su_opt =
      if cl.shm_last_u == u then cl.shm_last_su
      else begin
        let r = Hashtbl.find_opt cl.shm_units u in
        cl.shm_last_u <- u;
        cl.shm_last_su <- r;
        r
      end
    in
    match su_opt with
    | None -> None (* nothing advertised for this unit: plain wire *)
    | Some su ->
        if
          (not su.su_ok)
          || (Hashtbl.length cl.maint_open > 0 && Hashtbl.mem cl.maint_open u)
        then begin
          Atomic.incr sc_fallbacks;
          None
        end
        else begin
          let fallback () =
            Atomic.incr sc_fallbacks;
            None
          in
          let rec go tries =
            if tries = 0 then fallback ()
            else
              let retry () =
                Atomic.incr sc_retries;
                go (tries - 1)
              in
              match su_seg su with
              | exception (Unix.Unix_error _ | Sys_error _) ->
                  (* segment gone (session reaped, dir cleaned) *)
                  su.su_ok <- false;
                  fallback ()
              | seg -> (
                  match F.generation seg with
                  | exception F.Torn ->
                      su.su_ok <- false;
                      fallback ()
                  | g1 when g1 land 1 = 1 -> retry ()
                  | g1 -> (
                      match
                        if F.total_len seg > Bigarray.Array1.dim seg then begin
                          (* the file grew under a rebuild: remap it *)
                          Atomic.fetch_and_add sc_bytes
                            (-Bigarray.Array1.dim seg)
                          |> ignore;
                          su.su_map <- None;
                          `Retry
                        end
                        else if g1 <> su.su_vgen then begin
                          let expect_hash =
                            if cl.shm_hash = "" then None else Some cl.shm_hash
                          in
                          match F.validate ?expect_hash seg with
                          | () ->
                              if F.generation seg = g1 then begin
                                su.su_vgen <- g1;
                                `Go
                              end
                              else `Retry
                          | exception (S.Corrupt _ | F.Torn) ->
                              if F.generation seg <> g1 then `Retry
                              else begin
                                (* corrupt under a stable generation *)
                                su.su_ok <- false;
                                `Dead
                              end
                        end
                        else `Go
                      with
                      | `Retry -> retry ()
                      | `Dead -> fallback ()
                      | `Go -> (
                          match f seg with
                          | v ->
                              if F.generation seg = g1 then Some v
                              else retry ()
                          | exception F.Torn -> retry ())))
          in
          go shm_attempts
        end

(** Answer one read-only query off the mapped segment, [None] = use
    the wire.  Hoist queries always use the wire: hoist tracks
    maintained state server-side. *)
let shm_query cl (q : P.query) : P.answer option =
  match q with
  | P.Q_equiv { u; a; b } ->
      Option.map
        (fun r -> P.A_equiv r)
        (with_seg cl u (fun seg -> F.get_equiv_acc seg a b))
  | P.Q_alias { u; rid; ca; cb } ->
      Option.map
        (fun r -> P.A_alias r)
        (with_seg cl u (fun seg -> F.get_alias seg ~rid ca cb))
  | P.Q_call { u; call; mem } ->
      Option.map
        (fun r -> P.A_call r)
        (with_seg cl u (fun seg -> F.get_call_acc seg ~call ~mem))
  | P.Q_region_of { u; item } ->
      Option.map
        (fun r -> P.A_region_of r)
        (with_seg cl u (fun seg -> F.get_region_of_item seg item))
  | P.Q_lcdd { u; rid; a; b } ->
      Option.map
        (fun r -> P.A_lcdd r)
        (with_seg cl u (fun seg -> F.get_lcdd seg ~rid a b))
  | P.Q_hoist_target _ -> None

let shm_active cl u = cl.shm && Hashtbl.mem cl.shm_units u

let memoized tbl key fetch =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = fetch () in
      Hashtbl.replace tbl key v;
      v

let equiv_acc cl ~u a b =
  memoized cl.memo_equiv (u, a, b) @@ fun () ->
  match with_seg cl u (fun seg -> F.get_equiv_acc seg a b) with
  | Some r -> r
  | None -> (
      match one cl (P.Q_equiv { u; a; b }) with
      | P.A_equiv r -> r
      | _ -> net_raise "E1105" "answer kind mismatch (equiv)")

let alias cl ~u ~rid ca cb =
  memoized cl.memo_alias (u, rid, ca, cb) @@ fun () ->
  match with_seg cl u (fun seg -> F.get_alias seg ~rid ca cb) with
  | Some r -> r
  | None -> (
      match one cl (P.Q_alias { u; rid; ca; cb }) with
      | P.A_alias r -> r
      | _ -> net_raise "E1105" "answer kind mismatch (alias)")

let lcdd cl ~u ~rid a b =
  memoized cl.memo_lcdd (u, rid, a, b) @@ fun () ->
  match with_seg cl u (fun seg -> F.get_lcdd seg ~rid a b) with
  | Some r -> r
  | None -> (
      match one cl (P.Q_lcdd { u; rid; a; b }) with
      | P.A_lcdd r -> r
      | _ -> net_raise "E1105" "answer kind mismatch (lcdd)")

let call_acc cl ~u ~call ~mem =
  memoized cl.memo_call (u, call, mem) @@ fun () ->
  match with_seg cl u (fun seg -> F.get_call_acc seg ~call ~mem) with
  | Some r -> r
  | None -> (
      match one cl (P.Q_call { u; call; mem }) with
      | P.A_call r -> r
      | _ -> net_raise "E1105" "answer kind mismatch (call)")

let region_of_item cl ~u item =
  memoized cl.memo_region (u, item) @@ fun () ->
  match with_seg cl u (fun seg -> F.get_region_of_item seg item) with
  | Some r -> r
  | None -> (
      match one cl (P.Q_region_of { u; item }) with
      | P.A_region_of r -> r
      | _ -> net_raise "E1105" "answer kind mismatch (region_of)")

let version cl = cl.version

let equiv_prob cl ~u a b =
  (* probability queries stay on the wire in shm mode too: HLIX
     segments don't carry alias probability sections (yet), so the
     mapped image can't answer with a confidence *)
  if cl.version < 5 then
    net_raise "E1113"
      "Q_prob not offered at negotiated protocol version %d (needs 5)"
      cl.version;
  memoized cl.memo_prob (u, a, b) @@ fun () ->
  match rpc cl (P.Q_prob { u; pairs = [ (a, b) ] }) with
  | P.R_prob [ r ] -> r
  | P.R_prob l ->
      net_raise "E1105" "out-of-sequence reply: %d answers to a 1-pair Q_prob"
        (List.length l)
  | _ -> net_raise "E1105" "answer kind mismatch (equiv_prob)"

let hoist_target cl ~u item =
  (* not memoized: the answer depends on maintained state committed
     server-side, mirroring the local commit-then-query sequence *)
  match one cl (P.Q_hoist_target { u; item }) with
  | P.A_hoist_target r -> r
  | _ -> net_raise "E1105" "answer kind mismatch (hoist_target)"

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

(* Invalidation is scoped to the unit the notify names: memos for
   untouched units stay warm across another unit's maintenance (the
   watch edge only invalidates the maintained unit's index locally
   too).  The notify also opens the unit's maintenance window — shm
   lookups fall back to the wire until the next [refresh] barrier. *)
let invalidate_unit cl u =
  let drop proj tbl =
    Hashtbl.filter_map_inplace
      (fun k v -> if String.equal (proj k) u then None else Some v)
      tbl
  in
  drop (fun (u', _, _) -> u') cl.memo_equiv;
  drop (fun (u', _, _, _) -> u') cl.memo_alias;
  drop (fun (u', _, _, _) -> u') cl.memo_lcdd;
  drop (fun (u', _, _) -> u') cl.memo_call;
  drop (fun (u', _) -> u') cl.memo_region;
  drop (fun (u', _, _) -> u') cl.memo_prob;
  Hashtbl.replace cl.maint_open u ()

let expect_ack what = function
  | P.R_ack -> ()
  | _ -> net_raise "E1105" "unexpected response to %s" what

(* the two unit-returning notifications can defer their acks: send
   now, expect the R_ack later (the expectation FIFO keeps it
   correlated), but never let more than the window build up *)
let deferred_ack cl what req =
  if cl.pipeline > 1 then begin
    while in_flight cl >= cl.pipeline do
      ignore (collect_one cl)
    done;
    while in_flight cl > 0 && P.readable cl.rd do
      ignore (collect_one cl)
    done;
    send cl req;
    Queue.add (E_ack what) cl.expect
  end
  else expect_ack what (rpc cl req)

let notify_delete cl ~u item =
  invalidate_unit cl u;
  deferred_ack cl "Notify_delete" (P.Notify_delete { u; item })

let notify_gen cl ~u ~like ~line =
  invalidate_unit cl u;
  match rpc cl (P.Notify_gen { u; like; line }) with
  | P.R_gen id -> id
  | _ -> net_raise "E1105" "unexpected response to Notify_gen"

let notify_move cl ~u ~item ~target_rid =
  invalidate_unit cl u;
  match rpc cl (P.Notify_move { u; item; target_rid }) with
  | P.R_moved moved -> moved
  | _ -> net_raise "E1105" "unexpected response to Notify_move"

let notify_unroll cl ~u ~rid ~factor =
  invalidate_unit cl u;
  match rpc cl (P.Notify_unroll { u; rid; factor }) with
  | P.R_unrolled r -> r
  | _ -> net_raise "E1105" "unexpected response to Notify_unroll"

let refresh cl ~u =
  invalidate_unit cl u;
  if shm_active cl u then begin
    (* the barrier must be synchronous when the unit is served off
       shm: only once the server has acked the Refresh is the segment
       rebuilt to the committed index, so a deferred ack would let an
       shm read race ahead of the rebuild and answer from the
       pre-commit image *)
    expect_ack "Refresh" (rpc cl (P.Refresh u));
    Hashtbl.remove cl.maint_open u
  end
  else begin
    deferred_ack cl "Refresh" (P.Refresh u);
    Hashtbl.remove cl.maint_open u
  end

let flush cl = drain cl
let pending cl = in_flight cl
