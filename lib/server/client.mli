(** Blocking hlid client: one value is one server session.

    Single-query conveniences memoize answers locally; every
    maintenance notification resets all memo tables (the client-side
    image of [Maintain]'s watch-edge invalidation), so answers always
    match what the in-process engine would return.

    Every failure raises {!Diagnostics.Diagnostic}: protocol faults
    carry their E11xx code under phase [Net]; server-relayed errors
    re-raise under the server's original code (a relayed E0701 behaves
    like the local bad-unroll-factor). *)

type t

val connect : ?timeout:float -> ?max_frame:int -> string -> t
(** Connect to a hlid socket path and perform the Hello handshake.
    Raises E1112 if the socket is unreachable, E1111 on a protocol
    version mismatch. *)

val close : t -> unit
(** Best-effort [Close] round-trip, then closes the socket.  Never
    raises. *)

val open_hli_bytes : t -> string -> (string * int list) list
(** Ship HLI2 container bytes inline; the server validates and opens
    them.  Returns, per unit, its name and duplicate item ids. *)

val open_path : t -> string -> (string * int list) list
(** Have the server load and validate an HLI2 file from its own
    filesystem. *)

val line_table : t -> string -> Hli_core.Tables.line_entry list
(** The named unit's line table (drives remote instruction mapping). *)

val server_stats : t -> string
(** Server telemetry JSON (see {!Server.stats_json}). *)

(** {2 Queries} *)

val query_batch : t -> Protocol.query list -> Protocol.answer list
(** One frame carrying N queries; answers are positional.  Bypasses
    the memo tables (servbench uses this directly). *)

val equiv_acc : t -> u:string -> int -> int -> Hli_core.Query.equiv_result
val alias : t -> u:string -> rid:int -> int -> int -> bool

val lcdd :
  t -> u:string -> rid:int -> int -> int ->
  Hli_core.Tables.lcdd_entry list option

val call_acc :
  t -> u:string -> call:int -> mem:int -> Hli_core.Query.call_acc_result

val region_of_item : t -> u:string -> int -> int option

val hoist_target : t -> u:string -> int -> int option
(** Server-side commit-then-query for the LICM hoist decision; not
    memoized because the answer tracks maintained state. *)

(** {2 Maintenance notifications} — each resets the memo tables. *)

val notify_delete : t -> u:string -> int -> unit
val notify_gen : t -> u:string -> like:int -> line:int -> int
val notify_move : t -> u:string -> item:int -> target_rid:int -> bool

val notify_unroll :
  t -> u:string -> rid:int -> factor:int -> Hli_core.Maintain.unroll_result

val refresh : t -> u:string -> unit
(** End-of-pass barrier: the server rebuilds the unit's query index
    from the maintained entry ([Maintain.commit]'s index
    replacement). *)
