(** Blocking hlid client: one value is one server session.

    Single-query conveniences memoize answers locally; every
    maintenance notification resets all memo tables (the client-side
    image of [Maintain]'s watch-edge invalidation), so answers always
    match what the in-process engine would return.

    With [~pipeline:n] (n > 1) the client keeps up to [n] frames in
    flight: {!query_batches} overlaps batches, and {!notify_delete}/
    {!refresh} defer their acks.  Correlation is positional — the
    server answers strictly in request order, the client keeps an
    expectation FIFO, and any reply that does not match the
    head-of-line expectation raises an out-of-sequence E1105.  With
    the default [pipeline = 1] the session is strict request/reply,
    wire-identical to PR 5 clients.

    Every failure raises {!Diagnostics.Diagnostic}: protocol faults
    carry their E11xx code under phase [Net]; server-relayed errors
    re-raise under the server's original code (a relayed E0701 behaves
    like the local bad-unroll-factor). *)

type t

val connect :
  ?timeout:float -> ?max_frame:int -> ?pipeline:int -> ?shm:bool -> string -> t
(** Connect to a hlid socket path and perform the Hello handshake.
    [pipeline] (default 1) is the max in-flight frame window.  With
    [~shm:true], the shared-memory fast path is enabled: the HLIX
    segments the server publishes for this session are mapped
    read-only and the single-query conveniences answer equiv/alias/
    call/region-of queries straight off the mapping under the seqlock
    protocol, transparently falling back to the wire when the
    generation is odd or moved mid-read, the segment is missing or
    corrupt, or the unit has uncommitted maintenance (DESIGN.md §8).
    Raises E1112 if the socket is unreachable, E1111 on a protocol
    version mismatch, [Invalid_argument] if [pipeline < 1].

    The handshake negotiates down: a server at an older (>= v4)
    version is accepted and the session runs at that version; see
    {!version} and {!equiv_prob}. *)

val version : t -> int
(** The session's negotiated protocol version (min of client and
    server). *)

val close : t -> unit
(** Drain in-flight replies, best-effort [Close] round-trip, then
    closes the socket.  Never raises. *)

val flush : t -> unit
(** Collect every in-flight reply (deferred acks included).  Raises
    like the operation that deferred them would have. *)

val pending : t -> int
(** In-flight frames awaiting replies (0 unless pipelining). *)

val shard_map : t -> string list
(** The fleet's shard map from the server's Hello (v4): socket paths
    of the hlid instances HLI units are sharded across, in ring
    order.  [] when the peer is a standalone daemon. *)

val open_hli_bytes : t -> string -> (string * int list) list
(** Open an HLI2 container on the session, shipping as little as
    possible: entries are referenced by content hash ([Open_delta])
    and only the ones the server's cross-session store lacks are
    uploaded ([Delta_fill]).  A delta exchange the server answers
    cleanly but unsuccessfully is resynced with a full [Open_hli]
    upload over the same session — never a wrong answer, only a
    slower one; transport faults raise as usual.  Returns, per unit,
    its name and duplicate item ids. *)

val open_path : t -> string -> (string * int list) list
(** Have the server load and validate an HLI2 file from its own
    filesystem. *)

val line_table : t -> string -> Hli_core.Tables.line_entry list
(** The named unit's line table (drives remote instruction mapping). *)

val server_stats : t -> string
(** Server telemetry JSON (see {!Server.stats_json}). *)

(** {2 Queries} *)

val query_batch : t -> Protocol.query list -> Protocol.answer list
(** One frame carrying N queries; answers are positional.  Bypasses
    the memo tables (servbench uses this directly). *)

val query_batches : t -> Protocol.query list list -> Protocol.answer list list
(** Pipelined fan-out: up to [pipeline] [Batch] frames in flight at
    once, answers correlated positionally.  Sends drain ready replies
    first, so the call cannot deadlock against a full socket buffer.
    Equivalent to mapping {!query_batch} but overlapping the wire
    round-trips. *)

val query_batches_send :
  t -> Protocol.query list list -> unit -> Protocol.answer list list
(** {!query_batches} split in two: the call puts the whole train on
    the wire (draining replies that become readable between bursts)
    and returns a closure that blocks for the answers.  Lets one
    thread keep several servers busy at once — the fleet router sends
    every shard's sub-train before collecting from any shard.  No
    other operation may run on this session between the send and the
    collect. *)

val equiv_acc : t -> u:string -> int -> int -> Hli_core.Query.equiv_result
val alias : t -> u:string -> rid:int -> int -> int -> bool

val lcdd :
  t -> u:string -> rid:int -> int -> int ->
  Hli_core.Tables.lcdd_entry list option

val call_acc :
  t -> u:string -> call:int -> mem:int -> Hli_core.Query.call_acc_result

val region_of_item : t -> u:string -> int -> int option

val hoist_target : t -> u:string -> int -> int option
(** Server-side commit-then-query for the LICM hoist decision; not
    memoized because the answer tracks maintained state. *)

val equiv_prob :
  t -> u:string -> int -> int -> Hli_core.Query.equiv_result * int
(** Confidence-weighted equiv (v5): the engine's [get_equiv_prob] —
    the equiv answer plus a per-mille confidence from the HLI3
    probability sections.  Memoized like {!equiv_acc}; always answered
    on the wire (HLIX segments don't carry alias probabilities).
    Raises E1113 without touching the wire when the session was
    negotiated below v5. *)

(** {2 Shared-memory fast path} *)

val shm_query : t -> Protocol.query -> Protocol.answer option
(** Answer one read-only query off the unit's mapped HLIX segment,
    [None] = not answerable off shm (shm off, no segment, seqlock
    retries exhausted, or an uncommitted maintenance window) — send it
    over the wire instead.  Hoist queries always return [None].
    Never returns a wrong answer: lookups are accepted only under an
    even, unchanged generation, and images are CRC/content-hash
    revalidated whenever the generation moves. *)

val shm_active : t -> string -> bool
(** [true] iff shm mode is on and the named unit has an advertised
    segment (mapped lazily on first lookup). *)

(** Process-wide shm counters (the telemetry ["shm"] object). *)
type shm_stats = {
  maps : int;  (** segment mappings established (remaps included) *)
  generation_retries : int;  (** lookups retried under the seqlock *)
  wire_fallbacks : int;  (** shm-eligible lookups answered on the wire *)
  segment_bytes : int;  (** bytes currently mapped across segments *)
}

val shm_stats : unit -> shm_stats

val shm_stats_json : unit -> string
(** The counters rendered as the canonical hli-telemetry-v7 ["shm"]
    JSON object. *)

(** {2 Maintenance notifications} — each invalidates the named unit's
    memo entries (other units' memos stay warm) and opens its
    maintenance window, during which shm lookups fall back to the
    wire. *)

val notify_delete : t -> u:string -> int -> unit
(** With [pipeline > 1] the ack is deferred: collected by the next
    reply-bearing call (or {!flush}/{!close}). *)

val notify_gen : t -> u:string -> like:int -> line:int -> int
val notify_move : t -> u:string -> item:int -> target_rid:int -> bool

val notify_unroll :
  t -> u:string -> rid:int -> factor:int -> Hli_core.Maintain.unroll_result

val refresh : t -> u:string -> unit
(** End-of-pass barrier: the server rebuilds the unit's query index
    from the maintained entry ([Maintain.commit]'s index replacement)
    and, in shm mode, rebuilds the unit's HLIX segment under the
    seqlock.  Ack deferred like {!notify_delete} when pipelining —
    except when the unit is served off shm, where the barrier is
    synchronous (a deferred ack would let an shm read race the
    server's rebuild and answer from the pre-commit image).  Closes
    the unit's maintenance window. *)
