(** hlid wire protocol: length-framed, CRC-checked request/response
    frames over a Unix-domain socket.

    Every frame is

    {v tag:u8 | len:varint | payload (len bytes) | CRC32(payload):u32le v}

    reusing the HLI2 container's primitives (bounded LEB128 varints,
    explicit option/bool tags, IEEE CRC32) from {!Hli_core.Serialize},
    so the wire format inherits the same hostile-input posture: every
    decode failure raises {!Hli_core.Serialize.Corrupt} with a precise
    E11xx code (see the table in [lib/driver/diagnostics.ml]) —

    - E1101 unknown frame tag        - E1102 truncated frame
    - E1103 frame CRC32 mismatch     - E1104 frame exceeds size bound
    - E1105 malformed frame payload  - E1106 protocol state violation
    - E1107 unknown unit name        - E1108 relayed server-side error
    - E1109 timeout                  - E1110 connection closed
    - E1111 protocol version mismatch
    - E1112 socket setup failure

    The exchange is strictly synchronous: one request frame in, one
    response frame out.  A {!Batch} request carries N queries in one
    frame; {!R_results} answers them positionally.  DESIGN.md has the
    byte-level layout of every payload. *)

module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query

let protocol_version = 1

(** Bound on a frame's payload length, checked {e before} the payload
    is read or allocated. *)
let default_max_frame = 16 * 1024 * 1024

let default_timeout = 30.0

let err ?at code fmt = S.corrupt ?at ~code fmt

(* ------------------------------------------------------------------ *)
(* Frame types                                                         *)
(* ------------------------------------------------------------------ *)

type query =
  | Q_equiv of { u : string; a : int; b : int }
  | Q_alias of { u : string; rid : int; ca : int; cb : int }
  | Q_lcdd of { u : string; rid : int; a : int; b : int }
  | Q_call of { u : string; call : int; mem : int }
  | Q_region_of of { u : string; item : int }
  | Q_hoist_target of { u : string; item : int }
      (** LICM's hoist decision: the parent region of the item's
          region under the {e committed} entry, queried server-side so
          the commit/fresh-index step happens where the tables live *)

type answer =
  | A_equiv of Q.equiv_result
  | A_alias of bool
  | A_lcdd of T.lcdd_entry list option
  | A_call of Q.call_acc_result
  | A_region_of of int option
  | A_hoist_target of int option

type request =
  | Hello of { version : int }
  | Open_hli of string  (** HLI2 container bytes, shipped inline *)
  | Open_path of string  (** HLI2 file path readable by the server *)
  | Batch of query list
  | Notify_delete of { u : string; item : int }
  | Notify_gen of { u : string; like : int; line : int }
  | Notify_move of { u : string; item : int; target_rid : int }
  | Notify_unroll of { u : string; rid : int; factor : int }
  | Refresh of string
      (** end-of-pass barrier: rebuild the unit's query index from the
          current (maintained) entry, mirroring the local pipeline's
          per-pass [Maintain.commit] index replacement *)
  | Line_table of string
  | Stats
  | Close

type response =
  | R_hello of { version : int }
  | R_opened of (string * int list) list
      (** per opened unit: name and duplicate item ids *)
  | R_results of answer list
  | R_ack
  | R_gen of int
  | R_moved of bool
  | R_unrolled of Hli_core.Maintain.unroll_result
  | R_line_table of T.line_entry list
  | R_stats of string  (** server telemetry as a JSON object *)
  | R_closing
  | R_error of { e_code : string; e_msg : string }

(* ------------------------------------------------------------------ *)
(* Payload encoders                                                    *)
(* ------------------------------------------------------------------ *)

let put_query buf = function
  | Q_equiv { u; a; b } ->
      Buffer.add_char buf '\000';
      S.put_string buf u;
      S.put_varint buf a;
      S.put_varint buf b
  | Q_alias { u; rid; ca; cb } ->
      Buffer.add_char buf '\001';
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf ca;
      S.put_varint buf cb
  | Q_lcdd { u; rid; a; b } ->
      Buffer.add_char buf '\002';
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf a;
      S.put_varint buf b
  | Q_call { u; call; mem } ->
      Buffer.add_char buf '\003';
      S.put_string buf u;
      S.put_varint buf call;
      S.put_varint buf mem
  | Q_region_of { u; item } ->
      Buffer.add_char buf '\004';
      S.put_string buf u;
      S.put_varint buf item
  | Q_hoist_target { u; item } ->
      Buffer.add_char buf '\005';
      S.put_string buf u;
      S.put_varint buf item

let put_equiv buf (r : Q.equiv_result) =
  Buffer.add_char buf
    (match r with
    | Q.Equiv_none -> '\000'
    | Q.Equiv_same T.Definitely -> '\001'
    | Q.Equiv_same T.Maybe -> '\002'
    | Q.Equiv_alias -> '\003'
    | Q.Equiv_unknown -> '\004')

let put_call buf (r : Q.call_acc_result) =
  Buffer.add_char buf
    (match r with
    | Q.Call_none -> '\000'
    | Q.Call_ref -> '\001'
    | Q.Call_mod -> '\002'
    | Q.Call_refmod -> '\003'
    | Q.Call_unknown -> '\004')

let put_answer buf = function
  | A_equiv r ->
      Buffer.add_char buf '\000';
      put_equiv buf r
  | A_alias b ->
      Buffer.add_char buf '\001';
      S.put_bool buf b
  | A_lcdd o ->
      Buffer.add_char buf '\002';
      S.put_opt buf (fun b l -> S.put_list b S.put_lcdd_v2 l) o
  | A_call r ->
      Buffer.add_char buf '\003';
      put_call buf r
  | A_region_of o ->
      Buffer.add_char buf '\004';
      S.put_opt buf S.put_varint o
  | A_hoist_target o ->
      Buffer.add_char buf '\005';
      S.put_opt buf S.put_varint o

(* (id, per-copy ids) pairs of Maintain.unroll_result *)
let put_ipairs buf l =
  S.put_list buf
    (fun b (id, arr) ->
      S.put_varint b id;
      S.put_list b (fun b x -> S.put_varint b x) (Array.to_list arr))
    l

let request_tag = function
  | Hello _ -> 0x01
  | Open_hli _ -> 0x02
  | Open_path _ -> 0x03
  | Batch _ -> 0x04
  | Notify_delete _ -> 0x05
  | Notify_gen _ -> 0x06
  | Notify_move _ -> 0x07
  | Notify_unroll _ -> 0x08
  | Refresh _ -> 0x09
  | Line_table _ -> 0x0a
  | Stats -> 0x0b
  | Close -> 0x0c

let is_request_tag t = t >= 0x01 && t <= 0x0c

let response_tag = function
  | R_hello _ -> 0x81
  | R_opened _ -> 0x82
  | R_results _ -> 0x83
  | R_ack -> 0x84
  | R_gen _ -> 0x85
  | R_moved _ -> 0x86
  | R_unrolled _ -> 0x87
  | R_line_table _ -> 0x88
  | R_stats _ -> 0x89
  | R_closing -> 0x8a
  | R_error _ -> 0xff

let is_response_tag t = (t >= 0x81 && t <= 0x8a) || t = 0xff

let frame tag payload =
  let buf = Buffer.create (String.length payload + 12) in
  Buffer.add_char buf (Char.chr tag);
  S.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  S.put_crc32 buf payload;
  Buffer.contents buf

let request_to_string (r : request) : string =
  let buf = Buffer.create 64 in
  (match r with
  | Hello { version } -> S.put_varint buf version
  | Open_hli bytes -> S.put_string buf bytes
  | Open_path p -> S.put_string buf p
  | Batch qs -> S.put_list buf put_query qs
  | Notify_delete { u; item } ->
      S.put_string buf u;
      S.put_varint buf item
  | Notify_gen { u; like; line } ->
      S.put_string buf u;
      S.put_varint buf like;
      S.put_varint buf line
  | Notify_move { u; item; target_rid } ->
      S.put_string buf u;
      S.put_varint buf item;
      S.put_varint buf target_rid
  | Notify_unroll { u; rid; factor } ->
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf factor
  | Refresh u | Line_table u -> S.put_string buf u
  | Stats | Close -> ());
  frame (request_tag r) (Buffer.contents buf)

let response_to_string (r : response) : string =
  let buf = Buffer.create 64 in
  (match r with
  | R_hello { version } -> S.put_varint buf version
  | R_opened units ->
      S.put_list buf
        (fun b (name, dups) ->
          S.put_string b name;
          S.put_list b (fun b x -> S.put_varint b x) dups)
        units
  | R_results answers -> S.put_list buf put_answer answers
  | R_ack | R_closing -> ()
  | R_gen id -> S.put_varint buf id
  | R_moved b -> S.put_bool buf b
  | R_unrolled { Hli_core.Maintain.copies; new_classes } ->
      put_ipairs buf copies;
      put_ipairs buf new_classes
  | R_line_table lt -> S.put_list buf S.put_line lt
  | R_stats json -> S.put_string buf json
  | R_error { e_code; e_msg } ->
      S.put_string buf e_code;
      S.put_string buf e_msg);
  frame (response_tag r) (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Payload decoders                                                    *)
(* ------------------------------------------------------------------ *)

let get_query cur =
  match S.byte cur with
  | 0 ->
      let u = S.get_string cur in
      let a = S.get_varint cur in
      let b = S.get_varint cur in
      Q_equiv { u; a; b }
  | 1 ->
      let u = S.get_string cur in
      let rid = S.get_varint cur in
      let ca = S.get_varint cur in
      let cb = S.get_varint cur in
      Q_alias { u; rid; ca; cb }
  | 2 ->
      let u = S.get_string cur in
      let rid = S.get_varint cur in
      let a = S.get_varint cur in
      let b = S.get_varint cur in
      Q_lcdd { u; rid; a; b }
  | 3 ->
      let u = S.get_string cur in
      let call = S.get_varint cur in
      let mem = S.get_varint cur in
      Q_call { u; call; mem }
  | 4 ->
      let u = S.get_string cur in
      let item = S.get_varint cur in
      Q_region_of { u; item }
  | 5 ->
      let u = S.get_string cur in
      let item = S.get_varint cur in
      Q_hoist_target { u; item }
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad query tag %d" n

let get_equiv cur : Q.equiv_result =
  match S.byte cur with
  | 0 -> Q.Equiv_none
  | 1 -> Q.Equiv_same T.Definitely
  | 2 -> Q.Equiv_same T.Maybe
  | 3 -> Q.Equiv_alias
  | 4 -> Q.Equiv_unknown
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad equiv result %d" n

let get_call cur : Q.call_acc_result =
  match S.byte cur with
  | 0 -> Q.Call_none
  | 1 -> Q.Call_ref
  | 2 -> Q.Call_mod
  | 3 -> Q.Call_refmod
  | 4 -> Q.Call_unknown
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad call result %d" n

let get_answer cur =
  match S.byte cur with
  | 0 -> A_equiv (get_equiv cur)
  | 1 -> A_alias (S.get_bool cur)
  | 2 -> A_lcdd (S.get_opt cur (fun cur -> S.get_list cur S.get_lcdd_v2))
  | 3 -> A_call (get_call cur)
  | 4 -> A_region_of (S.get_opt cur S.get_varint)
  | 5 -> A_hoist_target (S.get_opt cur S.get_varint)
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad answer tag %d" n

let get_ipairs cur =
  S.get_list cur (fun cur ->
      let id = S.get_varint cur in
      let l = S.get_list cur S.get_varint in
      (id, Array.of_list l))

let decode_request_payload tag cur : request =
  match tag with
  | 0x01 -> Hello { version = S.get_varint cur }
  | 0x02 -> Open_hli (S.get_string cur)
  | 0x03 -> Open_path (S.get_string cur)
  | 0x04 -> Batch (S.get_list cur get_query)
  | 0x05 ->
      let u = S.get_string cur in
      Notify_delete { u; item = S.get_varint cur }
  | 0x06 ->
      let u = S.get_string cur in
      let like = S.get_varint cur in
      Notify_gen { u; like; line = S.get_varint cur }
  | 0x07 ->
      let u = S.get_string cur in
      let item = S.get_varint cur in
      Notify_move { u; item; target_rid = S.get_varint cur }
  | 0x08 ->
      let u = S.get_string cur in
      let rid = S.get_varint cur in
      Notify_unroll { u; rid; factor = S.get_varint cur }
  | 0x09 -> Refresh (S.get_string cur)
  | 0x0a -> Line_table (S.get_string cur)
  | 0x0b -> Stats
  | 0x0c -> Close
  | _ -> assert false (* tag validated by the framing layer *)

let decode_response_payload tag cur : response =
  match tag with
  | 0x81 -> R_hello { version = S.get_varint cur }
  | 0x82 ->
      R_opened
        (S.get_list cur (fun cur ->
             let name = S.get_string cur in
             (name, S.get_list cur S.get_varint)))
  | 0x83 -> R_results (S.get_list cur get_answer)
  | 0x84 -> R_ack
  | 0x85 -> R_gen (S.get_varint cur)
  | 0x86 -> R_moved (S.get_bool cur)
  | 0x87 ->
      let copies = get_ipairs cur in
      let new_classes = get_ipairs cur in
      R_unrolled { Hli_core.Maintain.copies; new_classes }
  | 0x88 -> R_line_table (S.get_list cur S.get_line)
  | 0x89 -> R_stats (S.get_string cur)
  | 0x8a -> R_closing
  | 0xff ->
      let e_code = S.get_string cur in
      R_error { e_code; e_msg = S.get_string cur }
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Framing layer (pure: operates on strings)                           *)
(* ------------------------------------------------------------------ *)

let is_protocol_code c = String.length c >= 3 && String.sub c 0 3 = "E11"

(* A payload decoder uses the E06xx serializer primitives; any fault it
   raises is, at this layer, one thing: a malformed payload. *)
let remap_payload_fault f cur =
  try f cur
  with S.Corrupt c when not (is_protocol_code c.c_code) ->
    err ~at:c.c_at "E1105" "malformed frame payload: %s" c.c_msg

(* Split a complete frame into (tag, payload), enforcing tag validity,
   the size bound, CRC integrity and exact length. *)
let split_frame ?(max_frame = default_max_frame) ~kind ~known (s : string) :
    int * string =
  if String.length s = 0 then err ~at:0 "E1102" "empty %s frame" kind;
  let tag = Char.code s.[0] in
  if not (known tag) then err ~at:0 "E1101" "unknown %s frame tag %#x" kind tag;
  let cur = { S.data = s; S.pos = 1 } in
  let len =
    try S.get_varint cur with
    | S.Corrupt c when c.c_code = "E0611" ->
        err ~at:c.c_at "E1102" "truncated frame length"
    | S.Corrupt c -> err ~at:c.c_at "E1105" "malformed frame length: %s" c.c_msg
  in
  if len > max_frame then
    err ~at:1 "E1104" "frame payload of %d bytes exceeds the %d-byte bound" len
      max_frame;
  if len + 4 > String.length s - cur.S.pos then
    err ~at:cur.S.pos "E1102"
      "truncated frame: payload+CRC need %d bytes, %d remain" (len + 4)
      (String.length s - cur.S.pos);
  let payload_ofs = cur.S.pos in
  let payload = String.sub s payload_ofs len in
  cur.S.pos <- payload_ofs + len;
  let stored = S.get_crc32 cur in
  let computed = S.crc32 s payload_ofs len in
  if stored <> computed then
    err ~at:payload_ofs "E1103"
      "frame CRC32 mismatch (stored %08x, computed %08x)" stored computed;
  if cur.S.pos <> String.length s then
    err ~at:cur.S.pos "E1105" "%d trailing bytes after frame"
      (String.length s - cur.S.pos);
  (tag, payload)

let decode_with ~kind ~known decode ?max_frame (s : string) =
  let tag, payload = split_frame ?max_frame ~kind ~known s in
  let cur = { S.data = payload; S.pos = 0 } in
  let v = remap_payload_fault (decode tag) cur in
  if cur.S.pos <> String.length payload then
    err ~at:cur.S.pos "E1105" "%d undecoded payload bytes"
      (String.length payload - cur.S.pos);
  v

let request_of_string ?max_frame s : request =
  decode_with ~kind:"request" ~known:is_request_tag decode_request_payload
    ?max_frame s

let response_of_string ?max_frame s : response =
  decode_with ~kind:"response" ~known:is_response_tag decode_response_payload
    ?max_frame s

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

type 'a recv = Got of 'a | Idle | Closed

let now = Unix.gettimeofday

(* true iff [fd] becomes readable before [deadline] *)
let wait_readable fd deadline =
  let rec go () =
    let left = deadline -. now () in
    if left <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_exact fd n ~deadline ~what =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    if not (wait_readable fd deadline) then
      err "E1109" "timed out mid-frame reading %s" what;
    match Unix.read fd b !got (n - !got) with
    | 0 -> err "E1102" "connection closed mid-frame (reading %s)" what
    | k -> got := !got + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        err "E1110" "read failed: %s" (Unix.error_message e)
  done;
  Bytes.unsafe_to_string b

(* Receive one frame.  [idle_timeout], when given, bounds only the wait
   for the {e first} byte and expiry yields [Idle] — the server's poll
   point for its shutdown flag.  Once a frame has started, [timeout]
   bounds progress and expiry raises E1109.  EOF before the first byte
   is [Closed]; EOF mid-frame is E1102. *)
let recv_with ~kind ~known decode ?(max_frame = default_max_frame)
    ?idle_timeout ?(timeout = default_timeout) fd : 'a recv =
  let first_deadline =
    now () +. match idle_timeout with Some t -> t | None -> timeout
  in
  if not (wait_readable fd first_deadline) then (
    match idle_timeout with
    | Some _ -> Idle
    | None -> err "E1109" "timed out waiting for a %s frame" kind)
  else begin
    let b = Bytes.create 1 in
    let rec read_first () =
      match Unix.read fd b 0 1 with
      | 0 -> None
      | _ -> Some (Char.code (Bytes.get b 0))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_first ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
      | exception Unix.Unix_error (e, _, _) ->
          err "E1110" "read failed: %s" (Unix.error_message e)
    in
    match read_first () with
    | None -> Closed
    | Some tag ->
        if not (known tag) then err ~at:0 "E1101" "unknown %s frame tag %#x" kind tag;
        let deadline = now () +. timeout in
        (* length varint, byte by byte, bounded like the serializer's *)
        let lenbuf = Buffer.create 9 in
        let rec read_len n =
          if n > 9 then err "E1105" "frame length varint exceeds 9 bytes";
          let s = read_exact fd 1 ~deadline ~what:"frame length" in
          Buffer.add_string lenbuf s;
          if Char.code s.[0] land 0x80 <> 0 then read_len (n + 1)
        in
        read_len 1;
        let lenbytes = Buffer.contents lenbuf in
        let len =
          let cur = { S.data = lenbytes; S.pos = 0 } in
          try S.get_varint cur
          with S.Corrupt c ->
            err ~at:c.c_at "E1105" "malformed frame length: %s" c.c_msg
        in
        if len > max_frame then
          err "E1104" "frame payload of %d bytes exceeds the %d-byte bound" len
            max_frame;
        let rest = read_exact fd (len + 4) ~deadline ~what:"frame payload" in
        (* re-assemble and run the one validated decode path *)
        let full =
          let buf = Buffer.create (len + 14) in
          Buffer.add_char buf (Char.chr tag);
          Buffer.add_string buf lenbytes;
          Buffer.add_string buf rest;
          Buffer.contents buf
        in
        Got (decode_with ~kind ~known decode ~max_frame full)
  end

let recv_request ?max_frame ?idle_timeout ?timeout fd : request recv =
  recv_with ~kind:"request" ~known:is_request_tag decode_request_payload
    ?max_frame ?idle_timeout ?timeout fd

(** Clients have no idle state: EOF means the server went away
    (E1110), and a quiet line past [timeout] is E1109. *)
let recv_response ?max_frame ?timeout fd : response =
  match
    recv_with ~kind:"response" ~known:is_response_tag decode_response_payload
      ?max_frame ?timeout fd
  with
  | Got r -> r
  | Closed -> err "E1110" "connection closed by server"
  | Idle -> assert false (* no idle_timeout passed *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go ofs =
    if ofs < n then
      match Unix.write fd b ofs (n - ofs) with
      | k -> go (ofs + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error (e, _, _) ->
          err "E1110" "write failed: %s" (Unix.error_message e)
  in
  go 0

let send_request fd r = write_all fd (request_to_string r)
let send_response fd r = write_all fd (response_to_string r)

(** Render a protocol fault as a structured diagnostic (phase [Net],
    process exit code 7). *)
let diagnostic_of_fault ?file (c : S.corruption) =
  Diagnostics.make ?file ~code:c.c_code ~phase:Diagnostics.Net
    ~severity:Diagnostics.Error
    (if c.c_at >= 0 then Printf.sprintf "%s (at byte %d)" c.c_msg c.c_at
     else c.c_msg)
