(** hlid wire protocol: length-framed, CRC-checked request/response
    frames over a Unix-domain socket.

    Every frame is

    {v tag:u8 | len:varint | payload (len bytes) | CRC32(payload):u32le v}

    reusing the HLI2 container's primitives (bounded LEB128 varints,
    explicit option/bool tags, IEEE CRC32) from {!Hli_core.Serialize},
    so the wire format inherits the same hostile-input posture: every
    decode failure raises {!Hli_core.Serialize.Corrupt} with a precise
    E11xx code (see the table in [lib/driver/diagnostics.ml]) —

    - E1101 unknown frame tag        - E1102 truncated frame
    - E1103 frame CRC32 mismatch     - E1104 frame exceeds size bound
    - E1105 malformed frame payload  - E1106 protocol state violation
    - E1107 unknown unit name        - E1108 relayed server-side error
    - E1109 timeout                  - E1110 connection closed
    - E1111 protocol version mismatch
    - E1112 socket setup failure
    - E1113 frame known but not offered at the negotiated version

    The exchange is one response frame per request frame, answered
    {e strictly in request order} — which is what makes pipelining
    sound: a client may send N request frames back-to-back and
    correlate the N replies by sequence position alone (DESIGN.md §7
    has the correlation rules).  A {!Batch} request carries N queries
    in one frame; {!R_results} answers them positionally.  DESIGN.md
    has the byte-level layout of every payload. *)

module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query

(* v2: R_hello advertises the session's shm segment directory and the
   Shm_list/R_shm_list frame pair enumerates published HLIX segments
   (the co-located shared-memory fast path).  v3: delta uploads — an
   Open_delta frame references per-function entries by content hash
   against the server's cross-session entry store, R_delta_need lists
   the hashes the server lacks, and Delta_fill ships exactly those
   payloads; a session re-opening an edited program uploads only the
   entries that changed.  v4: R_hello carries the serving fleet's shard
   map — the socket paths of the hlid instances units are sharded
   across (empty for a standalone daemon) — so a client that lands on
   a router can discover the backends.  v5: probabilistic queries —
   the Q_prob/R_prob frame pair carries confidence-weighted equiv
   answers ((result, per-mille) pairs from HLI3 probability sections).
   v5 also introduces {e downgrade} negotiation: the server accepts
   any client version >= 4 and replies with min(client, server), so a
   v4 client keeps working unchanged (it simply is not offered
   Q_prob; sending one anyway on a v4 session is a protocol fault,
   E1113, distinct from an unknown tag).  Peers older than v4 are
   rejected with E1111 as before — the version is checked first on
   both ends. *)
let protocol_version = 5

(** Oldest peer version the v5 negotiation still serves. *)
let min_protocol_version = 4

(** Bound on a frame's payload length, checked {e before} the payload
    is read or allocated. *)
let default_max_frame = 16 * 1024 * 1024

let default_timeout = 30.0

let err ?at code fmt = S.corrupt ?at ~code fmt

(* ------------------------------------------------------------------ *)
(* Frame types                                                         *)
(* ------------------------------------------------------------------ *)

type query =
  | Q_equiv of { u : string; a : int; b : int }
  | Q_alias of { u : string; rid : int; ca : int; cb : int }
  | Q_lcdd of { u : string; rid : int; a : int; b : int }
  | Q_call of { u : string; call : int; mem : int }
  | Q_region_of of { u : string; item : int }
  | Q_hoist_target of { u : string; item : int }
      (** LICM's hoist decision: the parent region of the item's
          region under the {e committed} entry, queried server-side so
          the commit/fresh-index step happens where the tables live *)

type answer =
  | A_equiv of Q.equiv_result
  | A_alias of bool
  | A_lcdd of T.lcdd_entry list option
  | A_call of Q.call_acc_result
  | A_region_of of int option
  | A_hoist_target of int option

type request =
  | Hello of { version : int }
  | Open_hli of string  (** HLI2 container bytes, shipped inline *)
  | Open_path of string  (** HLI2 file path readable by the server *)
  | Batch of query list
  | Notify_delete of { u : string; item : int }
  | Notify_gen of { u : string; like : int; line : int }
  | Notify_move of { u : string; item : int; target_rid : int }
  | Notify_unroll of { u : string; rid : int; factor : int }
  | Refresh of string
      (** end-of-pass barrier: rebuild the unit's query index from the
          current (maintained) entry, mirroring the local pipeline's
          per-pass [Maintain.commit] index replacement *)
  | Line_table of string
  | Stats
  | Close
  | Shm_list
      (** enumerate the HLIX segments published for this session's
          opened units (shared-memory fast path; DESIGN.md §8) *)
  | Open_delta of (string * string) list
      (** open by reference: per entry, its unit name and the 16-byte
          content hash of its HLI2 payload ({!S.entry_hash}).  Entries
          the server already holds (from any prior session) are reused;
          the rest are requested back via {!R_delta_need} and shipped
          with {!Delta_fill} *)
  | Delta_fill of string list
      (** the entry payloads an {!R_delta_need} asked for, in the
          listed order; only valid while its [Open_delta] is pending *)
  | Q_prob of { u : string; pairs : (int * int) list }
      (** confidence-weighted equiv: per item pair, the engine's
          [get_equiv_prob] answer — (result, per-mille confidence).
          v5 only; on a session negotiated at v4 this frame is a
          protocol fault (E1113) *)

type response =
  | R_hello of {
      version : int;
      shm_dir : string option;
      shards : string list;
    }
      (** [shm_dir]: the per-session directory where the server
          publishes HLIX segments, when the shm fast path is enabled.
          [shards]: the fleet's shard map — socket paths of the hlid
          instances HLI units are sharded across, in ring order; empty
          when the peer is a standalone daemon (v4) *)
  | R_opened of (string * int list) list
      (** per opened unit: name and duplicate item ids *)
  | R_results of answer list
  | R_ack
  | R_gen of int
  | R_moved of bool
  | R_unrolled of Hli_core.Maintain.unroll_result
  | R_line_table of T.line_entry list
  | R_stats of string  (** server telemetry as a JSON object *)
  | R_closing
  | R_shm_list of (string * string) list
      (** per published unit: name and HLIX segment path *)
  | R_delta_need of int list
      (** positions (into the [Open_delta] list) of the entries the
          server's store lacks; empty never occurs — a fully known
          delta open is answered with {!R_opened} directly *)
  | R_prob of (Q.equiv_result * int) list
      (** positional answers to a {!Q_prob}'s pairs (v5) *)
  | R_error of { e_code : string; e_msg : string }

(* ------------------------------------------------------------------ *)
(* Payload encoders                                                    *)
(* ------------------------------------------------------------------ *)

let put_query buf = function
  | Q_equiv { u; a; b } ->
      Buffer.add_char buf '\000';
      S.put_string buf u;
      S.put_varint buf a;
      S.put_varint buf b
  | Q_alias { u; rid; ca; cb } ->
      Buffer.add_char buf '\001';
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf ca;
      S.put_varint buf cb
  | Q_lcdd { u; rid; a; b } ->
      Buffer.add_char buf '\002';
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf a;
      S.put_varint buf b
  | Q_call { u; call; mem } ->
      Buffer.add_char buf '\003';
      S.put_string buf u;
      S.put_varint buf call;
      S.put_varint buf mem
  | Q_region_of { u; item } ->
      Buffer.add_char buf '\004';
      S.put_string buf u;
      S.put_varint buf item
  | Q_hoist_target { u; item } ->
      Buffer.add_char buf '\005';
      S.put_string buf u;
      S.put_varint buf item

let put_equiv buf (r : Q.equiv_result) =
  Buffer.add_char buf
    (match r with
    | Q.Equiv_none -> '\000'
    | Q.Equiv_same T.Definitely -> '\001'
    | Q.Equiv_same T.Maybe -> '\002'
    | Q.Equiv_alias -> '\003'
    | Q.Equiv_unknown -> '\004')

let put_call buf (r : Q.call_acc_result) =
  Buffer.add_char buf
    (match r with
    | Q.Call_none -> '\000'
    | Q.Call_ref -> '\001'
    | Q.Call_mod -> '\002'
    | Q.Call_refmod -> '\003'
    | Q.Call_unknown -> '\004')

let put_answer buf = function
  | A_equiv r ->
      Buffer.add_char buf '\000';
      put_equiv buf r
  | A_alias b ->
      Buffer.add_char buf '\001';
      S.put_bool buf b
  | A_lcdd o ->
      Buffer.add_char buf '\002';
      S.put_opt buf (fun b l -> S.put_list b S.put_lcdd_v3 l) o
  | A_call r ->
      Buffer.add_char buf '\003';
      put_call buf r
  | A_region_of o ->
      Buffer.add_char buf '\004';
      S.put_opt buf S.put_varint o
  | A_hoist_target o ->
      Buffer.add_char buf '\005';
      S.put_opt buf S.put_varint o

(* (id, per-copy ids) pairs of Maintain.unroll_result *)
let put_ipairs buf l =
  S.put_list buf
    (fun b (id, arr) ->
      S.put_varint b id;
      S.put_list b (fun b x -> S.put_varint b x) (Array.to_list arr))
    l

let request_tag = function
  | Hello _ -> 0x01
  | Open_hli _ -> 0x02
  | Open_path _ -> 0x03
  | Batch _ -> 0x04
  | Notify_delete _ -> 0x05
  | Notify_gen _ -> 0x06
  | Notify_move _ -> 0x07
  | Notify_unroll _ -> 0x08
  | Refresh _ -> 0x09
  | Line_table _ -> 0x0a
  | Stats -> 0x0b
  | Close -> 0x0c
  | Shm_list -> 0x0d
  | Open_delta _ -> 0x0e
  | Delta_fill _ -> 0x0f
  | Q_prob _ -> 0x10

let is_request_tag t = t >= 0x01 && t <= 0x10

let response_tag = function
  | R_hello _ -> 0x81
  | R_opened _ -> 0x82
  | R_results _ -> 0x83
  | R_ack -> 0x84
  | R_gen _ -> 0x85
  | R_moved _ -> 0x86
  | R_unrolled _ -> 0x87
  | R_line_table _ -> 0x88
  | R_stats _ -> 0x89
  | R_closing -> 0x8a
  | R_shm_list _ -> 0x8b
  | R_delta_need _ -> 0x8c
  | R_prob _ -> 0x8d
  | R_error _ -> 0xff

let is_response_tag t = (t >= 0x81 && t <= 0x8d) || t = 0xff

let frame tag payload =
  let buf = Buffer.create (String.length payload + 12) in
  Buffer.add_char buf (Char.chr tag);
  S.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  S.put_crc32 buf payload;
  Buffer.contents buf

let request_payload (r : request) : string =
  let buf = Buffer.create 64 in
  (match r with
  | Hello { version } -> S.put_varint buf version
  | Open_hli bytes -> S.put_string buf bytes
  | Open_path p -> S.put_string buf p
  | Batch qs -> S.put_list buf put_query qs
  | Notify_delete { u; item } ->
      S.put_string buf u;
      S.put_varint buf item
  | Notify_gen { u; like; line } ->
      S.put_string buf u;
      S.put_varint buf like;
      S.put_varint buf line
  | Notify_move { u; item; target_rid } ->
      S.put_string buf u;
      S.put_varint buf item;
      S.put_varint buf target_rid
  | Notify_unroll { u; rid; factor } ->
      S.put_string buf u;
      S.put_varint buf rid;
      S.put_varint buf factor
  | Refresh u | Line_table u -> S.put_string buf u
  | Stats | Close | Shm_list -> ()
  | Open_delta refs ->
      S.put_list buf
        (fun b (name, hash) ->
          S.put_string b name;
          S.put_string b hash)
        refs
  | Delta_fill payloads -> S.put_list buf S.put_string payloads
  | Q_prob { u; pairs } ->
      S.put_string buf u;
      S.put_list buf
        (fun b (a, x) ->
          S.put_varint b a;
          S.put_varint b x)
        pairs);
  Buffer.contents buf

(* append the framed request to [buf] without building the
   intermediate frame string — the hot path for pipelined sends *)
let frame_into buf tag payload =
  Buffer.add_char buf (Char.chr tag);
  S.put_varint buf (String.length payload);
  Buffer.add_string buf payload;
  S.put_crc32 buf payload

let encode_request_into buf (r : request) =
  frame_into buf (request_tag r) (request_payload r)

let request_to_string (r : request) : string =
  frame (request_tag r) (request_payload r)

let response_payload (r : response) : string =
  let buf = Buffer.create 64 in
  (match r with
  | R_hello { version; shm_dir; shards } ->
      S.put_varint buf version;
      S.put_opt buf S.put_string shm_dir;
      S.put_list buf S.put_string shards
  | R_opened units ->
      S.put_list buf
        (fun b (name, dups) ->
          S.put_string b name;
          S.put_list b (fun b x -> S.put_varint b x) dups)
        units
  | R_results answers -> S.put_list buf put_answer answers
  | R_ack | R_closing -> ()
  | R_gen id -> S.put_varint buf id
  | R_moved b -> S.put_bool buf b
  | R_unrolled { Hli_core.Maintain.copies; new_classes } ->
      put_ipairs buf copies;
      put_ipairs buf new_classes
  | R_line_table lt -> S.put_list buf S.put_line lt
  | R_stats json -> S.put_string buf json
  | R_shm_list segs ->
      S.put_list buf
        (fun b (name, path) ->
          S.put_string b name;
          S.put_string b path)
        segs
  | R_delta_need idxs -> S.put_list buf S.put_varint idxs
  | R_prob answers ->
      S.put_list buf
        (fun b (r, p) ->
          put_equiv b r;
          S.put_varint b p)
        answers
  | R_error { e_code; e_msg } ->
      S.put_string buf e_code;
      S.put_string buf e_msg);
  Buffer.contents buf

let encode_response_into buf (r : response) =
  frame_into buf (response_tag r) (response_payload r)

let response_to_string (r : response) : string =
  frame (response_tag r) (response_payload r)

(* ------------------------------------------------------------------ *)
(* Payload decoders                                                    *)
(* ------------------------------------------------------------------ *)

let get_query ?(get_u = S.get_string) cur =
  match S.byte cur with
  | 0 ->
      let u = get_u cur in
      let a = S.get_varint cur in
      let b = S.get_varint cur in
      Q_equiv { u; a; b }
  | 1 ->
      let u = get_u cur in
      let rid = S.get_varint cur in
      let ca = S.get_varint cur in
      let cb = S.get_varint cur in
      Q_alias { u; rid; ca; cb }
  | 2 ->
      let u = get_u cur in
      let rid = S.get_varint cur in
      let a = S.get_varint cur in
      let b = S.get_varint cur in
      Q_lcdd { u; rid; a; b }
  | 3 ->
      let u = get_u cur in
      let call = S.get_varint cur in
      let mem = S.get_varint cur in
      Q_call { u; call; mem }
  | 4 ->
      let u = get_u cur in
      let item = S.get_varint cur in
      Q_region_of { u; item }
  | 5 ->
      let u = get_u cur in
      let item = S.get_varint cur in
      Q_hoist_target { u; item }
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad query tag %d" n

(* A Batch almost always repeats one unit name across every query;
   reusing the previous string when the bytes match skips the
   per-query allocation AND hands the server physically-equal keys, so
   its own per-batch unit memoization is a pointer compare. *)
let get_batch cur =
  let last = ref "" in
  let get_u cur =
    let n = S.get_varint cur in
    if n > S.remaining cur then
      err ~at:cur.S.pos "E1105" "string length %d exceeds the %d remaining bytes"
        n (S.remaining cur);
    let l = !last in
    let pos = cur.S.pos in
    if
      String.length l = n
      &&
      let rec eq i =
        i = n
        || String.unsafe_get l i = String.unsafe_get cur.S.data (pos + i)
           && eq (i + 1)
      in
      eq 0
    then begin
      cur.S.pos <- pos + n;
      l
    end
    else begin
      let s = String.sub cur.S.data pos n in
      cur.S.pos <- pos + n;
      last := s;
      s
    end
  in
  S.get_list cur (get_query ~get_u)

let get_equiv cur : Q.equiv_result =
  match S.byte cur with
  | 0 -> Q.Equiv_none
  | 1 -> Q.Equiv_same T.Definitely
  | 2 -> Q.Equiv_same T.Maybe
  | 3 -> Q.Equiv_alias
  | 4 -> Q.Equiv_unknown
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad equiv result %d" n

let get_call cur : Q.call_acc_result =
  match S.byte cur with
  | 0 -> Q.Call_none
  | 1 -> Q.Call_ref
  | 2 -> Q.Call_mod
  | 3 -> Q.Call_refmod
  | 4 -> Q.Call_unknown
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad call result %d" n

let get_answer cur =
  match S.byte cur with
  | 0 -> A_equiv (get_equiv cur)
  | 1 -> A_alias (S.get_bool cur)
  | 2 -> A_lcdd (S.get_opt cur (fun cur -> S.get_list cur S.get_lcdd_v3))
  | 3 -> A_call (get_call cur)
  | 4 -> A_region_of (S.get_opt cur S.get_varint)
  | 5 -> A_hoist_target (S.get_opt cur S.get_varint)
  | n -> err ~at:(cur.S.pos - 1) "E1105" "bad answer tag %d" n

let get_ipairs cur =
  S.get_list cur (fun cur ->
      let id = S.get_varint cur in
      let l = S.get_list cur S.get_varint in
      (id, Array.of_list l))

let decode_request_payload tag cur : request =
  match tag with
  | 0x01 -> Hello { version = S.get_varint cur }
  | 0x02 -> Open_hli (S.get_string cur)
  | 0x03 -> Open_path (S.get_string cur)
  | 0x04 -> Batch (get_batch cur)
  | 0x05 ->
      let u = S.get_string cur in
      Notify_delete { u; item = S.get_varint cur }
  | 0x06 ->
      let u = S.get_string cur in
      let like = S.get_varint cur in
      Notify_gen { u; like; line = S.get_varint cur }
  | 0x07 ->
      let u = S.get_string cur in
      let item = S.get_varint cur in
      Notify_move { u; item; target_rid = S.get_varint cur }
  | 0x08 ->
      let u = S.get_string cur in
      let rid = S.get_varint cur in
      Notify_unroll { u; rid; factor = S.get_varint cur }
  | 0x09 -> Refresh (S.get_string cur)
  | 0x0a -> Line_table (S.get_string cur)
  | 0x0b -> Stats
  | 0x0c -> Close
  | 0x0d -> Shm_list
  | 0x0e ->
      Open_delta
        (S.get_list cur (fun cur ->
             let name = S.get_string cur in
             let hash = S.get_string cur in
             if String.length hash <> 16 then
               err ~at:cur.S.pos "E1105"
                 "entry hash of %d bytes (want 16, an MD5 digest)"
                 (String.length hash);
             (name, hash)))
  | 0x0f -> Delta_fill (S.get_list cur S.get_string)
  | 0x10 ->
      let u = S.get_string cur in
      let pairs =
        S.get_list cur (fun cur ->
            let a = S.get_varint cur in
            let b = S.get_varint cur in
            (a, b))
      in
      Q_prob { u; pairs }
  | _ -> assert false (* tag validated by the framing layer *)

let decode_response_payload tag cur : response =
  match tag with
  | 0x81 ->
      let version = S.get_varint cur in
      let shm_dir = S.get_opt cur S.get_string in
      let shards = S.get_list cur S.get_string in
      R_hello { version; shm_dir; shards }
  | 0x82 ->
      R_opened
        (S.get_list cur (fun cur ->
             let name = S.get_string cur in
             (name, S.get_list cur S.get_varint)))
  | 0x83 -> R_results (S.get_list cur get_answer)
  | 0x84 -> R_ack
  | 0x85 -> R_gen (S.get_varint cur)
  | 0x86 -> R_moved (S.get_bool cur)
  | 0x87 ->
      let copies = get_ipairs cur in
      let new_classes = get_ipairs cur in
      R_unrolled { Hli_core.Maintain.copies; new_classes }
  | 0x88 -> R_line_table (S.get_list cur S.get_line)
  | 0x89 -> R_stats (S.get_string cur)
  | 0x8a -> R_closing
  | 0x8b ->
      R_shm_list
        (S.get_list cur (fun cur ->
             let name = S.get_string cur in
             (name, S.get_string cur)))
  | 0x8c -> R_delta_need (S.get_list cur S.get_varint)
  | 0x8d ->
      R_prob
        (S.get_list cur (fun cur ->
             let r = get_equiv cur in
             let p = S.get_varint cur in
             (r, p)))
  | 0xff ->
      let e_code = S.get_string cur in
      R_error { e_code; e_msg = S.get_string cur }
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Framing layer: a streaming, zero-copy parser                        *)
(* ------------------------------------------------------------------ *)

let is_protocol_code c = String.length c >= 3 && String.sub c 0 3 = "E11"

(* A payload decoder uses the E06xx serializer primitives; any fault it
   raises is, at this layer, one thing: a malformed payload. *)
let remap_payload_fault f cur =
  try f cur
  with S.Corrupt c when not (is_protocol_code c.c_code) ->
    err ~at:c.c_at "E1105" "malformed frame payload: %s" c.c_msg

type frame_info = {
  f_tag : int;
  f_payload_ofs : int;  (** absolute offset of the payload in the buffer *)
  f_payload_len : int;
  f_end : int;  (** offset just past the CRC — where the next frame starts *)
}

(* [parse_frame buf ~ofs ~len] examines the [len] valid bytes starting
   at [ofs] for one frame.  [None] means the frame is incomplete — feed
   more bytes and retry.  Malformations that are already decidable from
   a prefix (unknown tag, oversized or overlong length varint, CRC
   mismatch once the whole frame is present) raise eagerly, so a
   hostile peer is rejected before its payload is ever buffered.  The
   frame is never copied: the caller decodes it in place with
   {!decode_request_at}/{!decode_response_at}. *)
let parse_frame ?(max_frame = default_max_frame) ~kind ~known (buf : Bytes.t)
    ~ofs ~len : frame_info option =
  if len <= 0 then None
  else begin
    let tag = Char.code (Bytes.get buf ofs) in
    if not (known tag) then
      err ~at:0 "E1101" "unknown %s frame tag %#x" kind tag;
    (* length varint: scan for its last byte, bounded like the
       serializer's (9 bytes), without committing a cursor yet *)
    let rec scan i =
      if i >= 9 then err "E1105" "frame length varint exceeds 9 bytes"
      else if 1 + i >= len then None
      else if Char.code (Bytes.get buf (ofs + 1 + i)) land 0x80 <> 0 then
        scan (i + 1)
      else Some ()
    in
    match scan 0 with
    | None -> None
    | Some () ->
        (* the cursor below stays within the scanned varint bytes, all
           inside the valid region, so the whole-buffer view is safe *)
        let cur = { S.data = Bytes.unsafe_to_string buf; S.pos = ofs + 1 } in
        let plen =
          try S.get_varint cur
          with S.Corrupt c ->
            err ~at:c.c_at "E1105" "malformed frame length: %s" c.c_msg
        in
        if plen > max_frame then
          err ~at:(ofs + 1) "E1104"
            "frame payload of %d bytes exceeds the %d-byte bound" plen
            max_frame;
        let payload_ofs = cur.S.pos in
        if payload_ofs - ofs + plen + 4 > len then None
        else begin
          cur.S.pos <- payload_ofs + plen;
          let stored = S.get_crc32 cur in
          let computed = S.crc32 (Bytes.unsafe_to_string buf) payload_ofs plen in
          if stored <> computed then
            err ~at:payload_ofs "E1103"
              "frame CRC32 mismatch (stored %08x, computed %08x)" stored
              computed;
          Some
            {
              f_tag = tag;
              f_payload_ofs = payload_ofs;
              f_payload_len = plen;
              f_end = payload_ofs + plen + 4;
            }
        end
  end

(* Decode a parsed frame's payload in place.  The cursor ranges over
   the whole buffer, but [parse_frame] guaranteed the payload bytes are
   valid and CRC-checked; a decoder that strays outside them cannot
   land back exactly on the payload end (positions only advance), so
   the final exact-length check subsumes the per-payload bound. *)
let decode_payload_at decode (buf : Bytes.t) (fi : frame_info) =
  let cur = { S.data = Bytes.unsafe_to_string buf; S.pos = fi.f_payload_ofs } in
  let v = remap_payload_fault (decode fi.f_tag) cur in
  if cur.S.pos <> fi.f_payload_ofs + fi.f_payload_len then
    err ~at:cur.S.pos "E1105" "%d undecoded payload bytes"
      (fi.f_payload_ofs + fi.f_payload_len - cur.S.pos);
  v

let decode_request_at buf fi : request =
  decode_payload_at decode_request_payload buf fi

let decode_response_at buf fi : response =
  decode_payload_at decode_response_payload buf fi

(* The pure string path (fuzz harness, tests) runs through the same
   streaming parser the server and client use, so the harness exercises
   exactly the production decode path. *)
let decode_with ~kind ~known decode ?max_frame (s : string) =
  let len = String.length s in
  if len = 0 then err ~at:0 "E1102" "empty %s frame" kind;
  let buf = Bytes.unsafe_of_string s in
  match parse_frame ?max_frame ~kind ~known buf ~ofs:0 ~len with
  | None -> err ~at:len "E1102" "truncated %s frame" kind
  | Some fi ->
      if fi.f_end <> len then
        err ~at:fi.f_end "E1105" "%d trailing bytes after frame"
          (len - fi.f_end);
      decode_payload_at decode buf fi

let request_of_string ?max_frame s : request =
  decode_with ~kind:"request" ~known:is_request_tag decode_request_payload
    ?max_frame s

let response_of_string ?max_frame s : response =
  decode_with ~kind:"response" ~known:is_response_tag decode_response_payload
    ?max_frame s

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

type 'a recv = Got of 'a | Idle | Closed

(* Deadline clock for every wire timeout: CLOCK_MONOTONIC, in seconds.
   Wall time (gettimeofday) steps under NTP, which would fire or starve
   request deadlines; all deadlines passed to [wait_fd]/[write_all]/
   [recv_with] must be computed as [now () +. budget] from this same
   clock. *)
let now () : float = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* true iff [fd] becomes ready before [deadline] ([None] = wait
   forever).  EINTR recomputes the {e remaining} time — an interrupted
   wait must never restart the full budget. *)
let wait_fd ~for_read fd deadline =
  let rec go () =
    let left =
      match deadline with
      | None -> -1.0 (* negative timeout: block until ready *)
      | Some d -> d -. now ()
    in
    if (match deadline with Some _ -> left <= 0.0 | None -> false) then false
    else
      let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
      match Unix.select r w [] left with
      | [], [], _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait_readable fd deadline = wait_fd ~for_read:true fd (Some deadline)

(* ------------------------------------------------------------------ *)
(* Buffered reader: per-connection reused buffer with pushback         *)
(* ------------------------------------------------------------------ *)

(* One [reader] owns one fd's inbound byte stream.  Reads pull as many
   bytes as the kernel has ready into a grow-once scratch buffer;
   frames are parsed and decoded in place and surplus bytes (the start
   of the next frame of a pipelined train) simply stay buffered for
   the next receive — no per-frame allocation, no one-byte syscalls. *)
type reader = {
  rd_fd : Unix.file_descr;
  mutable rd_buf : Bytes.t;
  mutable rd_ofs : int;  (** start of unconsumed bytes *)
  mutable rd_len : int;  (** end of valid bytes *)
}

let reader ?(initial = 64 * 1024) fd =
  { rd_fd = fd; rd_buf = Bytes.create (max 16 initial); rd_ofs = 0; rd_len = 0 }

let reader_buffered rd = rd.rd_len - rd.rd_ofs

(* a reply may already be buffered, or bytes may be ready to read;
   this is a poll (zero-timeout select), never a wait *)
let readable rd =
  reader_buffered rd > 0
  ||
  let rec poll () =
    match Unix.select [ rd.rd_fd ] [] [] 0.0 with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
  in
  poll ()

(* make room to read: compact (cheap, reuses the buffer) before
   growing (only when one frame outgrows the current buffer) *)
let rd_make_room rd =
  if rd.rd_len = Bytes.length rd.rd_buf then
    if rd.rd_ofs > 0 then begin
      Bytes.blit rd.rd_buf rd.rd_ofs rd.rd_buf 0 (rd.rd_len - rd.rd_ofs);
      rd.rd_len <- rd.rd_len - rd.rd_ofs;
      rd.rd_ofs <- 0
    end
    else begin
      let nb = Bytes.create (2 * Bytes.length rd.rd_buf) in
      Bytes.blit rd.rd_buf 0 nb 0 rd.rd_len;
      rd.rd_buf <- nb
    end

(* pull whatever the kernel has ready; never blocks longer than one
   [read] on a blocking fd that [select] reported readable *)
let rd_refill rd =
  rd_make_room rd;
  match
    Unix.read rd.rd_fd rd.rd_buf rd.rd_len (Bytes.length rd.rd_buf - rd.rd_len)
  with
  | 0 -> `Eof
  | k ->
      rd.rd_len <- rd.rd_len + k;
      `Data
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof
  | exception Unix.Unix_error (e, _, _) ->
      err "E1110" "read failed: %s" (Unix.error_message e)

(* Receive one frame through [rd].  [idle_timeout], when given, bounds
   only the wait for the {e first} byte of a frame and expiry yields
   [Idle].  Once a frame has started (including pushed-back bytes from
   a previous read), [timeout] bounds the whole frame and expiry raises
   E1109.  EOF before the first byte is [Closed]; EOF mid-frame is
   E1102. *)
let recv_with ~kind ~known decode ?(max_frame = default_max_frame)
    ?idle_timeout ?(timeout = default_timeout) rd : 'a recv =
  let try_parse () =
    match
      parse_frame ~max_frame ~kind ~known rd.rd_buf ~ofs:rd.rd_ofs
        ~len:(reader_buffered rd)
    with
    | None -> None
    | Some fi ->
        let v = decode rd.rd_buf fi in
        rd.rd_ofs <- fi.f_end;
        if rd.rd_ofs = rd.rd_len then begin
          rd.rd_ofs <- 0;
          rd.rd_len <- 0
        end;
        Some v
  in
  match try_parse () with
  | Some v -> Got v
  | None ->
      let started () = reader_buffered rd > 0 in
      let budget =
        if started () then timeout
        else match idle_timeout with Some t -> t | None -> timeout
      in
      let rec go deadline =
        if not (wait_readable rd.rd_fd deadline) then
          if started () then err "E1109" "timed out mid-frame reading a %s" kind
          else
            match idle_timeout with
            | Some _ -> Idle
            | None -> err "E1109" "timed out waiting for a %s frame" kind
        else begin
          let was_started = started () in
          match rd_refill rd with
          | `Eof ->
              if started () then
                err "E1102" "connection closed mid-frame (reading a %s)" kind
              else Closed
          | `Again -> go deadline
          | `Data -> (
              match try_parse () with
              | Some v -> Got v
              | None ->
                  (* the first byte of a frame switches the budget from
                     the idle wait to the per-frame [timeout] *)
                  let deadline =
                    if was_started then deadline else now () +. timeout
                  in
                  go deadline)
        end
      in
      go (now () +. budget)

let recv_request ?max_frame ?idle_timeout ?timeout rd : request recv =
  recv_with ~kind:"request" ~known:is_request_tag decode_request_at ?max_frame
    ?idle_timeout ?timeout rd

(** Clients have no idle state: EOF means the server went away
    (E1110), and a quiet line past [timeout] is E1109. *)
let recv_response ?max_frame ?timeout rd : response =
  match
    recv_with ~kind:"response" ~known:is_response_tag decode_response_at
      ?max_frame ?timeout rd
  with
  | Got r -> r
  | Closed -> err "E1110" "connection closed by server"
  | Idle -> assert false (* no idle_timeout passed *)

(* Write the whole frame, surviving partial writes, EINTR, and
   EAGAIN/0-byte writes on non-blocking fds: no progress means wait
   for writability (never a busy-loop, never a dropped frame tail).
   [deadline] bounds the whole write; expiry raises E1109. *)
let write_all ?deadline fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go ofs =
    if ofs < n then
      match Unix.write fd b ofs (n - ofs) with
      | 0 -> await ofs
      | k -> go (ofs + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          await ofs
      | exception Unix.Unix_error (e, _, _) ->
          err "E1110" "write failed: %s" (Unix.error_message e)
  and await ofs =
    if wait_fd ~for_read:false fd deadline then go ofs
    else err "E1109" "timed out writing a frame (%d of %d bytes sent)" ofs n
  in
  go 0

let send_request ?deadline fd r = write_all ?deadline fd (request_to_string r)
let send_response ?deadline fd r = write_all ?deadline fd (response_to_string r)

(** Render a protocol fault as a structured diagnostic (phase [Net],
    process exit code 7). *)
let diagnostic_of_fault ?file (c : S.corruption) =
  Diagnostics.make ?file ~code:c.c_code ~phase:Diagnostics.Net
    ~severity:Diagnostics.Error
    (if c.c_at >= 0 then Printf.sprintf "%s (at byte %d)" c.c_msg c.c_at
     else c.c_msg)
