(** hlid server core: event-driven accept/read loop, worker pool,
    telemetry.

    One poller (the domain that calls {!run}) owns every socket: it
    accepts connections, pulls ready bytes into per-connection reused
    buffers, parses and decodes frames {e in place}
    ({!Protocol.parse_frame}), and hands decoded requests to a
    fixed-size {!Pool} of worker domains.  Each connection carries a
    work queue drained by {e at most one} worker at a time, so

    - requests on one connection are handled strictly in arrival
      order and answered in that order (the invariant pipelined
      clients correlate replies by);
    - a connection's session state (its per-unit
      {!Hli_core.Maintain} transactions and {!Hli_core.Query}
      indexes) is only ever touched by the worker currently holding
      its queue — no locking around HLI state;
    - a slow or heavily pipelined connection occupies one worker,
      never the poller: other connections keep being read and served.

    Only the telemetry record and the connection table are shared
    (mutex-protected).  The semantics mirror the in-process pipeline
    exactly (the remote differential suite depends on it): queries
    answer from the connection's current index, maintenance ops
    invalidate its memo tables via the [watch] edge, and the index
    structure is only rebuilt at a {!Protocol.Refresh} — the wire
    image of the local per-pass [Maintain.commit].

    Shutdown is graceful: {!initiate_shutdown} flips a flag, closes
    the listening socket and wakes the poller through a self-pipe; the
    poller queues a shutdown notice behind each connection's in-flight
    work, so every client gets its pending answers, then an E1110
    error frame, then EOF.  {!run} bounds the drain and force-closes
    stragglers. *)

module P = Protocol
module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query
module M = Hli_core.Maintain

type config = {
  socket_path : string;
  jobs : int;
      (** worker-pool size; [jobs - 1] worker domains execute request
          handlers (sessions no longer pin a worker for their
          lifetime, so this sizes for CPU, not connection count) *)
  max_frame : int;
  idle_timeout : float;  (** poller wakeup cap (shutdown/deadline latency) *)
  request_timeout : float;  (** mid-frame progress bound *)
  shm_dir : string option;
      (** when set, publish one HLIX segment per opened unit under
          [shm_dir]/sess-<id>/ so co-located clients can answer
          read-only queries straight off an mmap (DESIGN.md §8) *)
  store_cap : int;
      (** byte bound on the cross-session entry store (delta uploads);
          oldest-inserted entries are evicted past it *)
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = max 8 (Pool.default_jobs ());
    max_frame = P.default_max_frame;
    idle_timeout = 0.2;
    request_timeout = P.default_timeout;
    shm_dir = None;
    store_cap = 256 * 1024 * 1024;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry (hli-telemetry-v8 "server" object)                        *)
(* ------------------------------------------------------------------ *)

let lat_cap = 8192
let per_session_cap = 32

type stats = {
  mutable st_sessions : int;
  mutable st_active : int;
  mutable st_frames : int;
  mutable st_batches : int;
  mutable st_queries : int;
  mutable st_batch_max : int;
  mutable st_q_equiv : int;
  mutable st_q_alias : int;
  mutable st_q_lcdd : int;
  mutable st_q_call : int;
  mutable st_q_region : int;
  mutable st_q_hoist : int;
  mutable st_q_prob : int;
  mutable st_maintenance : int;
  mutable st_rejected : int;
  mutable st_timeouts : int;
  mutable st_shm_publishes : int;
  mutable st_shm_rebuilds : int;
  mutable st_shm_stale_swept : int;
      (** orphaned [*.tmp.*] publish temporaries removed (a crash
          between openfile and rename leaves one behind) *)
  mutable st_delta_opens : int;
  mutable st_delta_reused : int;  (** entries served from the store *)
  mutable st_delta_filled : int;  (** entries shipped by Delta_fill *)
  mutable st_refresh_skips : int;  (** Refresh barriers on clean units *)
  st_lat : float array;  (** service latencies, seconds; ring buffer *)
  mutable st_lat_n : int;  (** total recorded (may exceed the cap) *)
  mutable st_per_session : (int * int * int) list;
      (** (session id, frames, queries), newest first, capped *)
}

let fresh_stats () =
  {
    st_sessions = 0;
    st_active = 0;
    st_frames = 0;
    st_batches = 0;
    st_queries = 0;
    st_batch_max = 0;
    st_q_equiv = 0;
    st_q_alias = 0;
    st_q_lcdd = 0;
    st_q_call = 0;
    st_q_region = 0;
    st_q_hoist = 0;
    st_q_prob = 0;
    st_maintenance = 0;
    st_rejected = 0;
    st_timeouts = 0;
    st_shm_publishes = 0;
    st_shm_rebuilds = 0;
    st_shm_stale_swept = 0;
    st_delta_opens = 0;
    st_delta_reused = 0;
    st_delta_filled = 0;
    st_refresh_skips = 0;
    st_lat = Array.make lat_cap 0.0;
    st_lat_n = 0;
    st_per_session = [];
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type unit_state = {
  us_mt : M.t;
  mutable us_idx : Q.index;  (** replaced at [Refresh], like a commit *)
  us_hash : string;  (** 16-byte digest of the source HLI2 container *)
  mutable us_pub : Shm.pub option;  (** published HLIX segment, if any *)
  mutable us_dirty : bool;
      (** maintenance ops since the last commit; a [Refresh] on a
          clean unit skips the commit, index rebuild and shm rebuild
          entirely, leaving the published segment byte-identical
          (generation word included) *)
}

(* Work items flow poller -> per-connection queue -> one worker.  The
   queue preserves arrival order; [W_fault]/[W_shutdown]/[W_close]
   always terminate the connection after any queued requests. *)
type work =
  | W_req of P.request
  | W_fault of S.corruption  (** framing fault: answer its code, close *)
  | W_shutdown  (** graceful drain: answer E1110, close *)
  | W_close  (** peer vanished: close silently *)

(* Alive: the poller reads it.  Draining: no more reads; queued work
   (ending in a terminating item) is still being answered.  Dead: the
   worker is done; the poller reaps fd + bookkeeping. *)
type conn_state = Alive | Draining | Dead

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_buf : Bytes.t;  (** inbound scratch, grow-once, reused *)
  mutable c_ofs : int;  (** parse offset *)
  mutable c_len : int;  (** end of valid bytes *)
  mutable c_frame_since : float;
      (** when the first byte of the current partial frame arrived;
          0.0 = no partial frame pending *)
  mutable c_version : int;
      (** the session's negotiated protocol version — min(client,
          server), set by the Hello handler.  Frames a downgraded
          session was never offered (Q_prob below v5) are faulted
          with E1113.  Worker-only. *)
  c_units : (string, unit_state) Hashtbl.t;  (** worker-only *)
  mutable c_delta : ((string * string) array * int list) option;
      (** pending [Open_delta] (the (name, hash) refs and the missing
          positions an [R_delta_need] listed), awaiting its
          [Delta_fill]; cleared by any other request (the client
          abandoned the delta — e.g. resynced with a full upload).
          Worker-only. *)
  c_lock : Mutex.t;  (** guards c_work / c_scheduled / c_state *)
  c_work : work Queue.t;
  mutable c_scheduled : bool;  (** a worker owns the queue right now *)
  mutable c_state : conn_state;
  mutable c_frames : int;  (** worker-only counters, read at reap *)
  mutable c_queries : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  pool : Pool.t;
  active : int Atomic.t;  (** un-reaped connections *)
  mutex : Mutex.t;  (** guards [st], [conns] and the entry store *)
  st : stats;
  mutable conns : conn list;
  (* Cross-session content-addressed entry store backing delta
     uploads: entry payload keyed by its 16-byte content hash.  Every
     successful open (full or delta) feeds it, so a session re-opening
     an edited program only ships the entries whose hashes the store
     has never seen.  Bounded: oldest-inserted entries are evicted
     once [entry_store_cap] bytes accumulate (a miss only costs the
     client a re-upload). *)
  store : (string, string) Hashtbl.t;
  store_q : string Queue.t;  (** insertion order, for eviction *)
  mutable store_bytes : int;
  wake_r : Unix.file_descr;  (** self-pipe: workers/signals wake the poller *)
  wake_w : Unix.file_descr;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let wake t =
  (* best-effort, async-signal-safe enough: a full pipe already means
     a wakeup is pending *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* the table and queue move together under [t.mutex]: a hash is in the
   table iff it appears exactly once in the queue *)
let store_put t hash payload =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.store hash) then begin
    Hashtbl.replace t.store hash payload;
    Queue.add hash t.store_q;
    t.store_bytes <- t.store_bytes + String.length payload;
    while t.store_bytes > t.cfg.store_cap && not (Queue.is_empty t.store_q) do
      let h = Queue.pop t.store_q in
      match Hashtbl.find_opt t.store h with
      | Some p ->
          Hashtbl.remove t.store h;
          t.store_bytes <- t.store_bytes - String.length p
      | None -> ()
    done
  end

let store_get t hash = locked t @@ fun () -> Hashtbl.find_opt t.store hash

let record_latency t dt =
  t.st.st_lat.(t.st.st_lat_n mod lat_cap) <- dt;
  t.st.st_lat_n <- t.st.st_lat_n + 1

let percentile_ns sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let i = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
    int_of_float (sorted.(max 0 i) *. 1e9)

(** The server-side telemetry object embedded as the ["server"] field
    of an hli-telemetry-v8 dump (and answered to a [Stats] frame). *)
let stats_json t =
  locked t @@ fun () ->
  let s = t.st in
  let sorted = Array.sub s.st_lat 0 (min s.st_lat_n lat_cap) in
  Array.sort compare sorted;
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"sessions\":%d,\"active\":%d,\"frames\":%d,\"rejected_frames\":%d,\
        \"timed_out_frames\":%d,\"batches\":%d,\"batch_max\":%d,\
        \"maintenance_ops\":%d,\"queries\":{\"total\":%d,\"equiv_acc\":%d,\
        \"alias\":%d,\"lcdd\":%d,\"call_acc\":%d,\"region_of_item\":%d,\
        \"hoist_target\":%d,\"equiv_prob\":%d},\"latency_ns\":{\"samples\":%d,\"p50\":%d,\
        \"p99\":%d},\"shm\":{\"publishes\":%d,\"rebuilds\":%d,\
        \"stale_swept\":%d},\"delta\":{\"opens\":%d,\"entries_reused\":%d,\
        \"entries_filled\":%d},\"store\":{\"bytes\":%d,\"entries\":%d},\
        \"refresh_skips\":%d,\
        \"per_session\":["
       s.st_sessions s.st_active s.st_frames s.st_rejected s.st_timeouts
       s.st_batches s.st_batch_max s.st_maintenance s.st_queries s.st_q_equiv
       s.st_q_alias s.st_q_lcdd s.st_q_call s.st_q_region s.st_q_hoist
       s.st_q_prob s.st_lat_n
       (percentile_ns sorted 0.50)
       (percentile_ns sorted 0.99)
       s.st_shm_publishes s.st_shm_rebuilds s.st_shm_stale_swept
       s.st_delta_opens s.st_delta_reused s.st_delta_filled t.store_bytes
       (Hashtbl.length t.store) s.st_refresh_skips);
  List.iteri
    (fun i (id, frames, queries) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"session\":%d,\"frames\":%d,\"queries\":%d}" id
           frames queries))
    (List.rev s.st_per_session);
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Request handling (worker side)                                      *)
(* ------------------------------------------------------------------ *)

let q_unit = function
  | P.Q_equiv { u; _ }
  | P.Q_alias { u; _ }
  | P.Q_lcdd { u; _ }
  | P.Q_call { u; _ }
  | P.Q_region_of { u; _ }
  | P.Q_hoist_target { u; _ } ->
      u

exception Reply_error of string * string  (* code, message *)

let reply_error code fmt = Fmt.kstr (fun m -> raise (Reply_error (code, m))) fmt

let find_unit units u =
  if Hashtbl.length units = 0 then
    reply_error "E1106" "no HLI opened on this session";
  match Hashtbl.find_opt units u with
  | Some us -> us
  | None -> reply_error "E1107" "unknown unit %S" u

let answer_query_in us q : P.answer =
  match q with
  | P.Q_equiv { a; b; _ } -> P.A_equiv (Q.get_equiv_acc us.us_idx a b)
  | P.Q_alias { rid; ca; cb; _ } -> P.A_alias (Q.get_alias us.us_idx ~rid ca cb)
  | P.Q_lcdd { rid; a; b; _ } -> P.A_lcdd (Q.get_lcdd us.us_idx ~rid a b)
  | P.Q_call { call; mem; _ } -> P.A_call (Q.get_call_acc us.us_idx ~call ~mem)
  | P.Q_region_of { item; _ } ->
      P.A_region_of (Q.get_region_of_item us.us_idx item)
  | P.Q_hoist_target { item; _ } ->
      (* verbatim the local LICM hoist decision: commit, then ask the
         fresh index and walk to the region's parent *)
      let entry, idx = M.commit us.us_mt in
      P.A_hoist_target
        (match Q.get_region_of_item idx item with
        | Some rid -> (
            match T.find_region entry rid with
            | Some r -> r.T.parent
            | None -> None)
        | None -> None)

(** The per-session directory where this connection's HLIX segments
    live; advertised to the client in the Hello response. *)
let session_shm_dir t (c : conn) =
  Option.map
    (fun d -> Filename.concat d (Printf.sprintf "sess-%d" c.c_id))
    t.cfg.shm_dir

(* Remove orphaned publish temporaries from a session directory and
   account for them.  Crash-orphaned [*.tmp.*] files (a publisher
   SIGKILLed between openfile and rename) otherwise sit in
   [shm_dir]/sess-<id>/ forever: nothing advertises them, and they
   block the rmdir at reap. *)
let sweep_session_dir t d =
  let n = Shm.sweep_stale d in
  if n > 0 then
    locked t (fun () ->
        t.st.st_shm_stale_swept <- t.st.st_shm_stale_swept + n)

(* Publish one unit's HLIX segment, or skip on any filesystem trouble:
   the fast path is an optimization — the wire path stays
   authoritative, so shm failure must never fail the open. *)
let try_publish t dir name ~hash idx =
  match Shm.publish ~dir ~name:(Digest.to_hex (Digest.string name)) ~hash idx with
  | pub ->
      locked t (fun () -> t.st.st_shm_publishes <- t.st.st_shm_publishes + 1);
      Some pub
  | exception _ -> None

let open_file t (c : conn) ~hash (f : T.hli_file) : P.response =
  let units = c.c_units in
  if Hashtbl.length units > 0 then
    reply_error "E1106" "session already has an HLI open";
  let dir =
    match session_shm_dir t c with
    | Some d when hash <> "" ->
        (try
           if not (Sys.file_exists d) then Unix.mkdir d 0o755
           else sweep_session_dir t d;
           Some d
         with Unix.Unix_error _ | Sys_error _ -> None)
    | _ -> None
  in
  let opened =
    List.map
      (fun (e : T.hli_entry) ->
        let mt = M.start e in
        let idx = Q.build e in
        M.watch mt idx;
        let pub =
          match dir with
          | Some d -> try_publish t d e.T.unit_name ~hash idx
          | None -> None
        in
        Hashtbl.replace units e.T.unit_name
          {
            us_mt = mt;
            us_idx = idx;
            us_hash = hash;
            us_pub = pub;
            us_dirty = false;
          };
        (e.T.unit_name, Q.duplicate_items idx))
      f.T.entries
  in
  P.R_opened opened

let bump_query_kind st = function
  | P.Q_equiv _ -> st.st_q_equiv <- st.st_q_equiv + 1
  | P.Q_alias _ -> st.st_q_alias <- st.st_q_alias + 1
  | P.Q_lcdd _ -> st.st_q_lcdd <- st.st_q_lcdd + 1
  | P.Q_call _ -> st.st_q_call <- st.st_q_call + 1
  | P.Q_region_of _ -> st.st_q_region <- st.st_q_region + 1
  | P.Q_hoist_target _ -> st.st_q_hoist <- st.st_q_hoist + 1

(* decode + validate + open a full HLI2 container, and seed the entry
   store so later sessions can delta-open against these entries *)
let open_container_bytes t (c : conn) bytes : P.response =
  match S.of_bytes bytes with
  | exception S.Corrupt cor ->
      P.R_error { e_code = cor.S.c_code; e_msg = S.corruption_to_string cor }
  | f -> (
      match Hli_core.Validate.validate f with
      | () ->
          let resp = open_file t c ~hash:(Digest.string bytes) f in
          (try
             List.iter
               (fun (_, p) -> store_put t (S.entry_hash_of_payload p) p)
               (S.split_container bytes)
           with S.Corrupt _ -> ());
          resp
      | exception Diagnostics.Diagnostic d ->
          P.R_error
            { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message })

(* resolve every referenced entry out of the store; a reference
   evicted since the scan is a state error the client answers with a
   full-upload resync *)
let delta_payloads t (refs : (string * string) array) : string list =
  Array.to_list
    (Array.map
       (fun (name, h) ->
         match store_get t h with
         | Some p -> p
         | None ->
             reply_error "E1106" "entry %S evicted mid-open; resend in full"
               name)
       refs)

(* handle one request; returns (response, keep_connection_open) *)
let handle t (c : conn) (req : P.request) : P.response * bool =
  let units = c.c_units in
  (* any request other than the fill abandons a pending delta open
     (the client fell back to a full upload, or gave up) *)
  (match req with P.Delta_fill _ -> () | _ -> c.c_delta <- None);
  match req with
  | P.Hello { version } ->
      if version < P.min_protocol_version then
        ( P.R_error
            {
              e_code = "E1111";
              e_msg =
                Printf.sprintf
                  "protocol version mismatch: client %d, server %d (oldest \
                   served: %d)"
                  version P.protocol_version P.min_protocol_version;
            },
          false )
      else begin
        (* downgrade negotiation: serve the older of the two versions;
           a v4 client simply is not offered the v5 frames *)
        c.c_version <- min version P.protocol_version;
        ( P.R_hello
            {
              version = c.c_version;
              shm_dir = session_shm_dir t c;
              shards = [];
            },
          true )
      end
  | P.Open_hli bytes -> (open_container_bytes t c bytes, true)
  | P.Open_delta refs ->
      if Hashtbl.length units > 0 then
        reply_error "E1106" "session already has an HLI open";
      let arr = Array.of_list refs in
      let missing = ref [] in
      Array.iteri
        (fun i (_, h) -> if store_get t h = None then missing := i :: !missing)
        arr;
      let missing = List.rev !missing in
      locked t (fun () ->
          let st = t.st in
          st.st_delta_opens <- st.st_delta_opens + 1;
          st.st_delta_reused <-
            st.st_delta_reused + (Array.length arr - List.length missing));
      if missing = [] then
        (open_container_bytes t c (S.container_of_payloads (delta_payloads t arr)),
         true)
      else begin
        c.c_delta <- Some (arr, missing);
        (P.R_delta_need missing, true)
      end
  | P.Delta_fill payloads -> (
      match c.c_delta with
      | None -> reply_error "E1106" "Delta_fill without a pending Open_delta"
      | Some (arr, missing) ->
          c.c_delta <- None;
          let n_miss = List.length missing
          and n_got = List.length payloads in
          if n_miss <> n_got then
            reply_error "E1106"
              "Delta_fill carries %d payloads for %d missing entries" n_got
              n_miss;
          List.iter2
            (fun i p ->
              let name, claimed = arr.(i) in
              if S.entry_hash_of_payload p <> claimed then
                reply_error "E1105"
                  "entry %S: payload hash differs from its Open_delta \
                   reference"
                  name;
              store_put t claimed p)
            missing payloads;
          locked t (fun () ->
              t.st.st_delta_filled <- t.st.st_delta_filled + n_got);
          ( open_container_bytes t c
              (S.container_of_payloads (delta_payloads t arr)),
            true ))
  | P.Open_path path -> (
      match S.read_file path with
      | f ->
          let hash = try Digest.file path with Sys_error _ -> "" in
          (open_file t c ~hash f, true)
      | exception Diagnostics.Diagnostic d ->
          ( P.R_error
              { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
            true )
      | exception Sys_error msg ->
          (P.R_error { e_code = "E0001"; e_msg = msg }, true))
  | P.Batch qs ->
      (* a batch almost always stays on one unit, and the decoder
         interns repeated names, so the memo usually hits on the
         pointer compare before ever touching the hashtable *)
      let memo_u = ref "" and memo_us = ref None in
      let answers =
        List.map
          (fun q ->
            let u = q_unit q in
            let us =
              match !memo_us with
              | Some us when !memo_u == u || String.equal !memo_u u -> us
              | _ ->
                  let us = find_unit units u in
                  memo_u := u;
                  memo_us := Some us;
                  us
            in
            answer_query_in us q)
          qs
      in
      locked t (fun () ->
          let st = t.st in
          st.st_batches <- st.st_batches + 1;
          let n = List.length qs in
          st.st_queries <- st.st_queries + n;
          if n > st.st_batch_max then st.st_batch_max <- n;
          List.iter (bump_query_kind st) qs);
      (P.R_results answers, true)
  | P.Notify_delete { u; item } ->
      let us = find_unit units u in
      us.us_dirty <- true;
      M.delete_item us.us_mt item;
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_ack, true)
  | P.Notify_gen { u; like; line } ->
      let us = find_unit units u in
      us.us_dirty <- true;
      let id = M.gen_item us.us_mt ~like ~line in
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_gen id, true)
  | P.Notify_move { u; item; target_rid } ->
      let us = find_unit units u in
      us.us_dirty <- true;
      let moved = M.move_item_outward us.us_mt ~item ~target_rid in
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_moved moved, true)
  | P.Notify_unroll { u; rid; factor } -> (
      let us = find_unit units u in
      us.us_dirty <- true;
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      match M.unroll us.us_mt ~rid ~factor with
      | r -> (P.R_unrolled r, true)
      | exception Diagnostics.Diagnostic d ->
          ( P.R_error
              { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
            true ))
  | P.Refresh u ->
      let us = find_unit units u in
      if not us.us_dirty then begin
        (* clean unit: the committed state cannot have changed, so the
           barrier is a no-op — the index stays, and the published shm
           segment is left byte-identical (its generation word never
           moves, which co-located readers rely on to skip
           revalidation) *)
        locked t (fun () -> t.st.st_refresh_skips <- t.st.st_refresh_skips + 1);
        (P.R_ack, true)
      end
      else begin
      us.us_dirty <- false;
      let _entry, idx = M.commit us.us_mt in
      us.us_idx <- idx;
      M.watch us.us_mt idx;
      (match us.us_pub with
      | Some pub -> (
          (* seqlock in-place rebuild; on any failure the segment is
             withdrawn and the client's generation check turns its
             next lookup into a wire fallback *)
          try
            Shm.rebuild pub ~hash:us.us_hash idx;
            locked t (fun () ->
                t.st.st_shm_rebuilds <- t.st.st_shm_rebuilds + 1)
          with _ ->
            Shm.unpublish pub;
            us.us_pub <- None)
      | None -> ());
      (P.R_ack, true)
      end
  | P.Line_table u ->
      let us = find_unit units u in
      (P.R_line_table us.us_mt.M.entry.T.line_table, true)
  | P.Stats -> (P.R_stats (stats_json t), true)
  | P.Shm_list ->
      let segs =
        Hashtbl.fold
          (fun name us acc ->
            match us.us_pub with
            | Some pub -> (name, pub.Shm.p_path) :: acc
            | None -> acc)
          units []
      in
      (P.R_shm_list segs, true)
  | P.Q_prob { u; pairs } ->
      if c.c_version < 5 then
        reply_error "E1113"
          "Q_prob not offered at negotiated protocol version %d (needs 5)"
          c.c_version;
      let us = find_unit units u in
      let answers =
        List.map (fun (a, b) -> Q.get_equiv_prob us.us_idx a b) pairs
      in
      locked t (fun () ->
          let st = t.st in
          let n = List.length pairs in
          st.st_queries <- st.st_queries + n;
          st.st_q_prob <- st.st_q_prob + n);
      (P.R_prob answers, true)
  | P.Close -> (P.R_closing, false)

(* ------------------------------------------------------------------ *)
(* Worker: drain one connection's queue                                *)
(* ------------------------------------------------------------------ *)

(* Handle one work item; responses are {e encoded} into [out], not
   written — the drain loop flushes the whole burst in one write, so a
   pipelined train of N requests costs one syscall, not N.  Returns
   true to keep the connection, false to terminate it. *)
let handle_work t c out = function
  | W_req req ->
      let t0 = P.now () in
      let resp, keep =
        try handle t c req with
        | Reply_error (e_code, e_msg) -> (P.R_error { e_code; e_msg }, true)
        | Diagnostics.Diagnostic d ->
            ( P.R_error
                { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
              true )
      in
      P.encode_response_into out resp;
      c.c_frames <- c.c_frames + 1;
      (match req with
      | P.Batch qs -> c.c_queries <- c.c_queries + List.length qs
      | P.Q_prob { pairs; _ } -> c.c_queries <- c.c_queries + List.length pairs
      | _ -> ());
      locked t (fun () ->
          t.st.st_frames <- t.st.st_frames + 1;
          record_latency t (P.now () -. t0));
      keep
  | W_fault cor ->
      (* a framing fault is unrecoverable: answer with its precise
         E-code, then drop the connection *)
      locked t (fun () ->
          if cor.S.c_code = "E1109" then t.st.st_timeouts <- t.st.st_timeouts + 1
          else t.st.st_rejected <- t.st.st_rejected + 1);
      P.encode_response_into out
        (P.R_error
           { e_code = cor.S.c_code; e_msg = S.corruption_to_string cor });
      false
  | W_shutdown ->
      (* graceful shutdown: in-flight requests were answered above;
         tell the client we are going away rather than silently
         hanging up *)
      P.encode_response_into out
        (P.R_error { e_code = "E1110"; e_msg = "server shutting down" });
      false
  | W_close -> false

(* cap on buffered responses before an intermediate flush: bounds
   worker memory against a huge pipelined train of large answers *)
let flush_watermark = 256 * 1024

let process t c =
  let out = Buffer.create 1024 in
  (* the flush is bounded: a client that stops reading its responses
     costs one E1109 after request_timeout, not a wedged worker *)
  let flush () =
    if Buffer.length out > 0 then begin
      let s = Buffer.contents out in
      Buffer.clear out;
      P.write_all
        ~deadline:(P.now () +. t.cfg.request_timeout)
        c.c_fd s
    end
  in
  let die () =
    (* best-effort parting frames (fault codes, shutdown notice) *)
    (try flush () with _ -> ());
    Mutex.lock c.c_lock;
    Queue.clear c.c_work;
    c.c_scheduled <- false;
    c.c_state <- Dead;
    Mutex.unlock c.c_lock;
    wake t
  in
  let rec drain () =
    let item =
      Mutex.lock c.c_lock;
      let i = Queue.take_opt c.c_work in
      Mutex.unlock c.c_lock;
      i
    in
    match item with
    | Some w -> (
        match handle_work t c out w with
        | true ->
            if Buffer.length out > flush_watermark then flush ();
            drain ()
        | false -> die ()
        | exception _ -> die ())
    | None -> (
        (* queue looks empty: flush the burst {e before} releasing the
           scheduled flag, so another worker can't interleave writes;
           then re-check — new work may have arrived while writing *)
        match flush () with
        | () ->
            Mutex.lock c.c_lock;
            let empty = Queue.is_empty c.c_work in
            if empty then c.c_scheduled <- false;
            Mutex.unlock c.c_lock;
            if not empty then drain ()
        | exception _ -> die ())
  in
  drain ()

(* queue one work item without waking a worker; [terminal] also stops
   further reads.  Callers follow up with {!kick} once the whole burst
   is queued — submitting per frame would make a worker (or, in
   poller-inline mode, the poller itself) answer frame by frame, and
   the response coalescing in {!process} would never see a burst. *)
let push t c ?(terminal = false) w =
  ignore t;
  Mutex.lock c.c_lock;
  if c.c_state <> Dead then begin
    Queue.add w c.c_work;
    if terminal && c.c_state = Alive then c.c_state <- Draining
  end;
  Mutex.unlock c.c_lock

(* make sure exactly one worker owns the queue *)
let kick t c =
  Mutex.lock c.c_lock;
  let submit =
    c.c_state <> Dead && (not c.c_scheduled) && not (Queue.is_empty c.c_work)
  in
  if submit then c.c_scheduled <- true;
  Mutex.unlock c.c_lock;
  if submit then Pool.submit t.pool (fun () -> process t c)

let enqueue t c ?terminal w =
  push t c ?terminal w;
  kick t c

(* ------------------------------------------------------------------ *)
(* Poller: accept, read, parse, dispatch                               *)
(* ------------------------------------------------------------------ *)

let conn_state c =
  Mutex.lock c.c_lock;
  let s = c.c_state in
  Mutex.unlock c.c_lock;
  s

(* grow-once scratch management: compact before growing, grow
   geometrically; [parse_frame]'s eager E1104 bounds any single frame,
   so the buffer never exceeds ~2x max_frame *)
let conn_make_room c =
  if c.c_len = Bytes.length c.c_buf then
    if c.c_ofs > 0 then begin
      Bytes.blit c.c_buf c.c_ofs c.c_buf 0 (c.c_len - c.c_ofs);
      c.c_len <- c.c_len - c.c_ofs;
      c.c_ofs <- 0
    end
    else begin
      let nb = Bytes.create (2 * Bytes.length c.c_buf) in
      Bytes.blit c.c_buf 0 nb 0 c.c_len;
      c.c_buf <- nb
    end

(* parse every complete frame out of the buffer; decoded requests go
   to the connection's queue in arrival order *)
let parse_conn t c =
  let fault cor = push t c ~terminal:true (W_fault cor) in
  let rec go () =
    match
      P.parse_frame ~max_frame:t.cfg.max_frame ~kind:"request"
        ~known:P.is_request_tag c.c_buf ~ofs:c.c_ofs
        ~len:(c.c_len - c.c_ofs)
    with
    | exception S.Corrupt cor -> fault cor
    | None ->
        if c.c_ofs = c.c_len then begin
          (* everything consumed: rewind so the next read starts at 0 *)
          c.c_ofs <- 0;
          c.c_len <- 0;
          c.c_frame_since <- 0.0
        end
        else if c.c_frame_since = 0.0 then
          c.c_frame_since <- P.now ()
    | Some fi -> (
        match P.decode_request_at c.c_buf fi with
        | exception S.Corrupt cor -> fault cor
        | req ->
            c.c_ofs <- fi.P.f_end;
            c.c_frame_since <- 0.0;
            push t c (W_req req);
            go ())
  in
  go ();
  (* one kick for the whole burst: the worker drains every frame this
     read produced and answers them with one coalesced write *)
  kick t c

let on_gone t c =
  (* EOF or a dead socket: close silently once queued work is done *)
  if conn_state c = Alive then enqueue t c ~terminal:true W_close

let read_conn t c =
  conn_make_room c;
  match Unix.read c.c_fd c.c_buf c.c_len (Bytes.length c.c_buf - c.c_len) with
  | 0 -> on_gone t c
  | k ->
      c.c_len <- c.c_len + k;
      parse_conn t c
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error _ -> on_gone t c

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let net_error code fmt =
  Fmt.kstr
    (fun m ->
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

(** Bind and listen on [cfg.socket_path] (removing a stale socket
    file); raises a phase-[Net] E1112 diagnostic on failure. *)
let create (cfg : config) : t =
  (* a dying client must surface as a write error, not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
   with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     net_error "E1112" "cannot listen on %s: %s" cfg.socket_path
       (Unix.error_message e));
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  (match cfg.shm_dir with
  | Some d -> (
      try if not (Sys.file_exists d) then Unix.mkdir d 0o755
      with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  let t =
    {
    (* jobs = 1 is poller-inline mode: Pool.submit with no worker
       domains runs the job synchronously, so request handling happens
       on the poller domain itself.  On a single-core host that saves
       the cross-domain handoff per burst; the cost is that one slow
       request stalls every session, so it is opt-in, never the
       default. *)
      cfg = { cfg with jobs = max 1 cfg.jobs };
      listen_fd = fd;
      stop = Atomic.make false;
      pool = Pool.create ~jobs:(max 1 cfg.jobs);
      active = Atomic.make 0;
      mutex = Mutex.create ();
      st = fresh_stats ();
      conns = [];
      store = Hashtbl.create 256;
      store_q = Queue.create ();
      store_bytes = 0;
      wake_r;
      wake_w;
    }
  in
  (* a previous daemon SIGKILLed mid-publish leaves sess-<id>/ dirs
     with orphaned *.tmp.* files under a shared shm root; sweep them
     now so the space is reclaimed and the dirs can be reused *)
  (match cfg.shm_dir with
  | Some root -> (
      match Sys.readdir root with
      | exception Sys_error _ -> ()
      | names ->
          Array.iter
            (fun name ->
              if String.length name > 5 && String.sub name 0 5 = "sess-" then begin
                let d = Filename.concat root name in
                match Sys.is_directory d with
                | true ->
                    sweep_session_dir t d;
                    (try Unix.rmdir d with Unix.Unix_error _ -> ())
                | false | (exception Sys_error _) -> ()
              end)
            names)
  | None -> ());
  t

(** Flip the stop flag, close the listening socket and wake the
    poller.  Callable from a signal handler; {!run} then drains and
    returns. *)
let initiate_shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    wake t
  end

let conn_counter = ref 0

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        incr conn_counter;
        let c =
          {
            c_id = !conn_counter;
            c_fd = fd;
            c_buf = Bytes.create (64 * 1024);
            c_ofs = 0;
            c_len = 0;
            c_frame_since = 0.0;
            c_version = P.protocol_version;
            c_units = Hashtbl.create 8;
            c_delta = None;
            c_lock = Mutex.create ();
            c_work = Queue.create ();
            c_scheduled = false;
            c_state = Alive;
            c_frames = 0;
            c_queries = 0;
          }
        in
        Atomic.incr t.active;
        locked t (fun () ->
            t.st.st_sessions <- t.st.st_sessions + 1;
            t.st.st_active <- t.st.st_active + 1;
            t.conns <- c :: t.conns);
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> () (* closed by initiate_shutdown *)
  in
  go ()

let drain_wake_pipe t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* reap Dead connections: close the fd (only the poller ever does)
   and fold the worker-side counters into telemetry *)
let reap t =
  let dead, live =
    locked t (fun () ->
        let dead, live = List.partition (fun c -> conn_state c = Dead) t.conns in
        t.conns <- live;
        (dead, live))
  in
  List.iter
    (fun c ->
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
      (* the worker is done with a Dead conn, so its units are safe to
         touch here: withdraw the session's segments and directory *)
      Hashtbl.iter
        (fun _ us ->
          match us.us_pub with
          | Some pub ->
              Shm.unpublish pub;
              us.us_pub <- None
          | None -> ())
        c.c_units;
      (match session_shm_dir t c with
      | Some d ->
          sweep_session_dir t d;
          (try Unix.rmdir d with Unix.Unix_error _ -> ())
      | None -> ());
      Atomic.decr t.active;
      locked t (fun () ->
          t.st.st_active <- t.st.st_active - 1;
          t.st.st_per_session <-
            (let l = (c.c_id, c.c_frames, c.c_queries) :: t.st.st_per_session in
             if List.length l > per_session_cap then
               List.filteri (fun i _ -> i < per_session_cap) l
             else l)))
    dead;
  live

(* expire connections stuck mid-frame past the request timeout *)
let check_frame_deadlines t live =
  let now = P.now () in
  List.iter
    (fun c ->
      if
        conn_state c = Alive
        && c.c_frame_since > 0.0
        && now -. c.c_frame_since > t.cfg.request_timeout
      then
        enqueue t c ~terminal:true
          (W_fault
             {
               S.c_code = "E1109";
               c_at = -1;
               c_msg =
                 Printf.sprintf "timed out mid-frame after %.1fs"
                   t.cfg.request_timeout;
             }))
    live

(* the poller sleeps until the next fd event, but never past the idle
   interval or the earliest mid-frame deadline *)
let select_timeout t live =
  let now = P.now () in
  List.fold_left
    (fun acc c ->
      if c.c_frame_since > 0.0 then
        min acc (max 0.0 (c.c_frame_since +. t.cfg.request_timeout -. now))
      else acc)
    t.cfg.idle_timeout live

let sleepf s = try Unix.sleepf s with Unix.Unix_error _ -> ()

(** Event loop; returns once {!initiate_shutdown} has been called and
    every connection has drained (bounded: stragglers are force-closed
    after a grace period). *)
let run t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let live = reap t in
      check_frame_deadlines t live;
      let readable =
        List.filter_map
          (fun c -> if conn_state c = Alive then Some c.c_fd else None)
          live
      in
      (match
         Unix.select
           (t.wake_r :: t.listen_fd :: readable)
           [] [] (select_timeout t live)
       with
      | ready, _, _ ->
          if List.memq t.wake_r ready then drain_wake_pipe t;
          if List.memq t.listen_fd ready then accept_loop t;
          List.iter
            (fun c ->
              if List.memq c.c_fd ready && conn_state c = Alive then
                read_conn t c)
            live
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* the listening fd was closed under us: shutdown signal *)
          ());
      loop ()
    end
  in
  loop ();
  (* graceful drain: every connection gets its queued answers, then an
     E1110 notice, then EOF *)
  let live = reap t in
  List.iter (fun c -> enqueue t c ~terminal:true W_shutdown) live;
  let deadline = P.now () +. (2.0 *. t.cfg.idle_timeout) +. 1.0 in
  while Atomic.get t.active > 0 && P.now () < deadline do
    ignore (reap t);
    sleepf 0.02
  done;
  if Atomic.get t.active > 0 then begin
    (* force stragglers out: a worker blocked writing to a client that
       stopped reading fails immediately once the socket is shut down *)
    locked t (fun () ->
        List.iter
          (fun c ->
            try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns);
    let deadline = P.now () +. 2.0 in
    while Atomic.get t.active > 0 && P.now () < deadline do
      ignore (reap t);
      sleepf 0.02
    done
  end;
  ignore (reap t);
  Pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

let socket_path t = t.cfg.socket_path
