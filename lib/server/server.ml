(** hlid server core: accept loop, concurrent sessions, telemetry.

    One listening Unix-domain socket; each accepted connection becomes
    a {e session} running on a {!Pool} worker domain.  A session owns
    its HLI data outright — {!Protocol.Open_hli}/[Open_path] loads a
    validated file into per-unit {!Hli_core.Maintain} transactions,
    each watching an eagerly built {!Hli_core.Query} index — so
    sessions share no query state and need no locking; only the
    telemetry record is shared (mutex-protected).

    The semantics mirror the in-process pipeline exactly (the remote
    differential suite depends on it):
    - queries answer from the session's current index, whose memo
      tables are invalidated by every maintenance op (the [watch]
      edge), but whose structure is only rebuilt at a {!Protocol.Refresh}
      — the wire image of the local per-pass [Maintain.commit];
    - [Q_hoist_target] commits and asks the fresh index, which is
      verbatim what the local LICM hoist decision does.

    Shutdown is graceful: {!initiate_shutdown} flips a flag and closes
    the listening socket; sessions notice at their idle poll, answer
    in-flight work, send an E1110 error frame and drain.  {!run}
    bounds the drain and force-closes stragglers. *)

module P = Protocol
module S = Hli_core.Serialize
module T = Hli_core.Tables
module Q = Hli_core.Query
module M = Hli_core.Maintain

type config = {
  socket_path : string;
  jobs : int;  (** pool size; [jobs - 1] workers bound concurrent sessions *)
  max_frame : int;
  idle_timeout : float;  (** session poll interval (shutdown latency) *)
  request_timeout : float;  (** mid-frame progress bound *)
}

let default_config ~socket_path =
  {
    socket_path;
    (* sessions are held for a connection's lifetime, so the pool is
       sized for concurrency, not CPU count *)
    jobs = max 8 (Pool.default_jobs ());
    max_frame = P.default_max_frame;
    idle_timeout = 0.2;
    request_timeout = P.default_timeout;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry (hli-telemetry-v5 "server" object)                        *)
(* ------------------------------------------------------------------ *)

let lat_cap = 8192
let per_session_cap = 32

type stats = {
  mutable st_sessions : int;
  mutable st_active : int;
  mutable st_frames : int;
  mutable st_batches : int;
  mutable st_queries : int;
  mutable st_batch_max : int;
  mutable st_q_equiv : int;
  mutable st_q_alias : int;
  mutable st_q_lcdd : int;
  mutable st_q_call : int;
  mutable st_q_region : int;
  mutable st_q_hoist : int;
  mutable st_maintenance : int;
  mutable st_rejected : int;
  mutable st_timeouts : int;
  st_lat : float array;  (** service latencies, seconds; ring buffer *)
  mutable st_lat_n : int;  (** total recorded (may exceed the cap) *)
  mutable st_per_session : (int * int * int) list;
      (** (session id, frames, queries), newest first, capped *)
}

let fresh_stats () =
  {
    st_sessions = 0;
    st_active = 0;
    st_frames = 0;
    st_batches = 0;
    st_queries = 0;
    st_batch_max = 0;
    st_q_equiv = 0;
    st_q_alias = 0;
    st_q_lcdd = 0;
    st_q_call = 0;
    st_q_region = 0;
    st_q_hoist = 0;
    st_maintenance = 0;
    st_rejected = 0;
    st_timeouts = 0;
    st_lat = Array.make lat_cap 0.0;
    st_lat_n = 0;
    st_per_session = [];
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  pool : Pool.t;
  active : int Atomic.t;
  mutex : Mutex.t;  (** guards [st] and [conns] *)
  st : stats;
  mutable conns : Unix.file_descr list;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_latency t dt =
  t.st.st_lat.(t.st.st_lat_n mod lat_cap) <- dt;
  t.st.st_lat_n <- t.st.st_lat_n + 1

let percentile_ns sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let i = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
    int_of_float (sorted.(max 0 i) *. 1e9)

(** The server-side telemetry object embedded as the ["server"] field
    of an hli-telemetry-v5 dump (and answered to a [Stats] frame). *)
let stats_json t =
  locked t @@ fun () ->
  let s = t.st in
  let sorted =
    Array.sub s.st_lat 0 (min s.st_lat_n lat_cap)
  in
  Array.sort compare sorted;
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"sessions\":%d,\"active\":%d,\"frames\":%d,\"rejected_frames\":%d,\
        \"timed_out_frames\":%d,\"batches\":%d,\"batch_max\":%d,\
        \"maintenance_ops\":%d,\"queries\":{\"total\":%d,\"equiv_acc\":%d,\
        \"alias\":%d,\"lcdd\":%d,\"call_acc\":%d,\"region_of_item\":%d,\
        \"hoist_target\":%d},\"latency_ns\":{\"samples\":%d,\"p50\":%d,\
        \"p99\":%d},\"per_session\":["
       s.st_sessions s.st_active s.st_frames s.st_rejected s.st_timeouts
       s.st_batches s.st_batch_max s.st_maintenance s.st_queries s.st_q_equiv
       s.st_q_alias s.st_q_lcdd s.st_q_call s.st_q_region s.st_q_hoist
       s.st_lat_n
       (percentile_ns sorted 0.50)
       (percentile_ns sorted 0.99));
  List.iteri
    (fun i (id, frames, queries) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"session\":%d,\"frames\":%d,\"queries\":%d}" id
           frames queries))
    (List.rev s.st_per_session);
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type unit_state = {
  us_mt : M.t;
  mutable us_idx : Q.index;  (** replaced at [Refresh], like a commit *)
}

let q_unit = function
  | P.Q_equiv { u; _ }
  | P.Q_alias { u; _ }
  | P.Q_lcdd { u; _ }
  | P.Q_call { u; _ }
  | P.Q_region_of { u; _ }
  | P.Q_hoist_target { u; _ } ->
      u

exception Reply_error of string * string  (* code, message *)

let reply_error code fmt = Fmt.kstr (fun m -> raise (Reply_error (code, m))) fmt

let find_unit units u =
  if Hashtbl.length units = 0 then
    reply_error "E1106" "no HLI opened on this session";
  match Hashtbl.find_opt units u with
  | Some us -> us
  | None -> reply_error "E1107" "unknown unit %S" u

let answer_query units q : P.answer =
  let us = find_unit units (q_unit q) in
  match q with
  | P.Q_equiv { a; b; _ } -> P.A_equiv (Q.get_equiv_acc us.us_idx a b)
  | P.Q_alias { rid; ca; cb; _ } -> P.A_alias (Q.get_alias us.us_idx ~rid ca cb)
  | P.Q_lcdd { rid; a; b; _ } -> P.A_lcdd (Q.get_lcdd us.us_idx ~rid a b)
  | P.Q_call { call; mem; _ } ->
      P.A_call (Q.get_call_acc us.us_idx ~call ~mem)
  | P.Q_region_of { item; _ } ->
      P.A_region_of (Q.get_region_of_item us.us_idx item)
  | P.Q_hoist_target { item; _ } ->
      (* verbatim the local LICM hoist decision: commit, then ask the
         fresh index and walk to the region's parent *)
      let entry, idx = M.commit us.us_mt in
      P.A_hoist_target
        (match Q.get_region_of_item idx item with
        | Some rid -> (
            match T.find_region entry rid with
            | Some r -> r.T.parent
            | None -> None)
        | None -> None)

let open_file units (f : T.hli_file) : P.response =
  if Hashtbl.length units > 0 then
    reply_error "E1106" "session already has an HLI open";
  let opened =
    List.map
      (fun (e : T.hli_entry) ->
        let mt = M.start e in
        let idx = Q.build e in
        M.watch mt idx;
        Hashtbl.replace units e.T.unit_name { us_mt = mt; us_idx = idx };
        (e.T.unit_name, Q.duplicate_items idx))
      f.T.entries
  in
  P.R_opened opened

let bump_query_kind st = function
  | P.Q_equiv _ -> st.st_q_equiv <- st.st_q_equiv + 1
  | P.Q_alias _ -> st.st_q_alias <- st.st_q_alias + 1
  | P.Q_lcdd _ -> st.st_q_lcdd <- st.st_q_lcdd + 1
  | P.Q_call _ -> st.st_q_call <- st.st_q_call + 1
  | P.Q_region_of _ -> st.st_q_region <- st.st_q_region + 1
  | P.Q_hoist_target _ -> st.st_q_hoist <- st.st_q_hoist + 1

(* handle one request; returns (response, keep_session_open) *)
let handle t units (req : P.request) : P.response * bool =
  match req with
  | P.Hello { version } ->
      if version <> P.protocol_version then
        ( P.R_error
            {
              e_code = "E1111";
              e_msg =
                Printf.sprintf "protocol version mismatch: client %d, server %d"
                  version P.protocol_version;
            },
          false )
      else (P.R_hello { version = P.protocol_version }, true)
  | P.Open_hli bytes -> (
      match S.of_bytes bytes with
      | exception S.Corrupt c ->
          (P.R_error { e_code = c.S.c_code; e_msg = S.corruption_to_string c }, true)
      | f -> (
          match Hli_core.Validate.validate f with
          | () -> (open_file units f, true)
          | exception Diagnostics.Diagnostic d ->
              ( P.R_error
                  { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
                true )))
  | P.Open_path path -> (
      match S.read_file path with
      | f -> (open_file units f, true)
      | exception Diagnostics.Diagnostic d ->
          (P.R_error { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message }, true)
      | exception Sys_error msg ->
          (P.R_error { e_code = "E0001"; e_msg = msg }, true))
  | P.Batch qs ->
      let answers = List.map (answer_query units) qs in
      locked t (fun () ->
          let st = t.st in
          st.st_batches <- st.st_batches + 1;
          let n = List.length qs in
          st.st_queries <- st.st_queries + n;
          if n > st.st_batch_max then st.st_batch_max <- n;
          List.iter (bump_query_kind st) qs);
      (P.R_results answers, true)
  | P.Notify_delete { u; item } ->
      let us = find_unit units u in
      M.delete_item us.us_mt item;
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_ack, true)
  | P.Notify_gen { u; like; line } ->
      let us = find_unit units u in
      let id = M.gen_item us.us_mt ~like ~line in
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_gen id, true)
  | P.Notify_move { u; item; target_rid } ->
      let us = find_unit units u in
      let moved = M.move_item_outward us.us_mt ~item ~target_rid in
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      (P.R_moved moved, true)
  | P.Notify_unroll { u; rid; factor } -> (
      let us = find_unit units u in
      locked t (fun () -> t.st.st_maintenance <- t.st.st_maintenance + 1);
      match M.unroll us.us_mt ~rid ~factor with
      | r -> (P.R_unrolled r, true)
      | exception Diagnostics.Diagnostic d ->
          (P.R_error { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message }, true))
  | P.Refresh u ->
      let us = find_unit units u in
      let _entry, idx = M.commit us.us_mt in
      us.us_idx <- idx;
      M.watch us.us_mt idx;
      (P.R_ack, true)
  | P.Line_table u ->
      let us = find_unit units u in
      (P.R_line_table us.us_mt.M.entry.T.line_table, true)
  | P.Stats -> (P.R_stats (stats_json t), true)
  | P.Close -> (P.R_closing, false)

let session t fd id =
  let units : (string, unit_state) Hashtbl.t = Hashtbl.create 8 in
  let frames = ref 0 and queries = ref 0 in
  let send r = P.send_response fd r in
  let rec loop () =
    if Atomic.get t.stop then
      (* graceful shutdown: in-flight requests were answered; tell the
         client we are going away rather than silently hanging up *)
      try send (P.R_error { e_code = "E1110"; e_msg = "server shutting down" })
      with _ -> ()
    else
      match
        P.recv_request ~max_frame:t.cfg.max_frame
          ~idle_timeout:t.cfg.idle_timeout ~timeout:t.cfg.request_timeout fd
      with
      | P.Idle -> loop ()
      | P.Closed -> ()
      | P.Got req ->
          let t0 = Unix.gettimeofday () in
          let resp, keep =
            try handle t units req with
            | Reply_error (e_code, e_msg) ->
                (P.R_error { e_code; e_msg }, true)
            | Diagnostics.Diagnostic d ->
                ( P.R_error
                    { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
                  true )
          in
          send resp;
          incr frames;
          (match req with P.Batch qs -> queries := !queries + List.length qs | _ -> ());
          locked t (fun () ->
              t.st.st_frames <- t.st.st_frames + 1;
              record_latency t (Unix.gettimeofday () -. t0));
          if keep then loop ()
      | exception S.Corrupt c ->
          (* a framing fault is unrecoverable: answer with its precise
             E-code, then drop the connection *)
          locked t (fun () ->
              if c.S.c_code = "E1109" then t.st.st_timeouts <- t.st.st_timeouts + 1
              else t.st.st_rejected <- t.st.st_rejected + 1);
          (try
             send
               (P.R_error
                  { e_code = c.S.c_code; e_msg = S.corruption_to_string c })
           with _ -> ())
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns;
      t.st.st_active <- t.st.st_active - 1;
      t.st.st_per_session <-
        (let l = (id, !frames, !queries) :: t.st.st_per_session in
         if List.length l > per_session_cap then
           List.filteri (fun i _ -> i < per_session_cap) l
         else l));
  Atomic.decr t.active

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let net_error code fmt =
  Fmt.kstr
    (fun m ->
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

(** Bind and listen on [cfg.socket_path] (removing a stale socket
    file); raises a phase-[Net] E1112 diagnostic on failure. *)
let create (cfg : config) : t =
  (* a dying client must surface as a write error, not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
   with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     net_error "E1112" "cannot listen on %s: %s" cfg.socket_path
       (Unix.error_message e));
  {
    cfg = { cfg with jobs = max 2 cfg.jobs };
    listen_fd = fd;
    stop = Atomic.make false;
    pool = Pool.create ~jobs:(max 2 cfg.jobs);
    active = Atomic.make 0;
    mutex = Mutex.create ();
    st = fresh_stats ();
    conns = [];
  }

(** Flip the stop flag and close the listening socket.  Callable from
    a signal handler; {!run} then drains and returns. *)
let initiate_shutdown t =
  if not (Atomic.exchange t.stop true) then
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let sleepf s = try Unix.sleepf s with Unix.Unix_error _ -> ()

(** Accept loop; returns once {!initiate_shutdown} has been called and
    every session has drained (bounded: stragglers are force-closed
    after a grace period). *)
let run t =
  (* Never block indefinitely in accept: closing the listening socket
     from another domain (initiate_shutdown without a signal) does not
     wake a blocked accept(2), so poll with select at the idle
     interval and re-check the stop flag between waits.  A select or
     accept on the closed descriptor errors out, which is also a
     shutdown signal. *)
  let rec accept_loop () =
    if not (Atomic.get t.stop) then
      match Unix.select [ t.listen_fd ] [] [] t.cfg.idle_timeout with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Atomic.incr t.active;
              let id =
                locked t (fun () ->
                    t.st.st_sessions <- t.st.st_sessions + 1;
                    t.st.st_active <- t.st.st_active + 1;
                    t.conns <- fd :: t.conns;
                    t.st.st_sessions)
              in
              Pool.submit t.pool (fun () -> session t fd id);
              accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | exception Unix.Unix_error _ ->
              (* listening socket closed by initiate_shutdown *)
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
  in
  accept_loop ();
  (* drain: sessions notice the stop flag at their idle poll *)
  let deadline = Unix.gettimeofday () +. (2.0 *. t.cfg.idle_timeout) +. 1.0 in
  while Atomic.get t.active > 0 && Unix.gettimeofday () < deadline do
    sleepf 0.02
  done;
  if Atomic.get t.active > 0 then begin
    (* force stragglers out: their blocking reads fail immediately *)
    locked t (fun () ->
        List.iter
          (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
    let deadline = Unix.gettimeofday () +. 2.0 in
    while Atomic.get t.active > 0 && Unix.gettimeofday () < deadline do
      sleepf 0.02
    done
  end;
  Pool.shutdown t.pool;
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

let socket_path t = t.cfg.socket_path
