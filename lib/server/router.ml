(** hlid fleet router: shard HLI units across N hlid instances by
    consistent hash of unit name, behind the single-session client
    surface.

    One {!t} is one logical session over a fleet: it opens each unit
    on the shard that owns it, splits batched/pipelined query trains
    per shard, fans the sub-trains out concurrently (one worker domain
    per shard, unless the host is single-core where the handoff costs
    more than the overlap buys), and merges the replies back into
    positional order — callers cannot tell a fleet from one daemon,
    except that it survives a shard dying.

    {b Epochs.}  A {!refresh} is a barrier: before the owning shard is
    told, every shard's in-flight replies are drained, so an answer
    computed before the barrier can never be collected after it — the
    router never mixes pre- and post-refresh answers across shards.
    Each barrier advances the session epoch (reported in
    {!stats_json}).

    {b Failover.}  A shard dying mid-session (connection closed,
    truncated frame, timeout — E1110/E1102/E1109/E1112) triggers
    re-handshake and bounded retry, generalizing the single-client
    kill-socket machinery: the router reconnects (waiting for a
    restarted instance if need be), re-opens the shard's unit subset
    from the retained sub-container, replays the shard's maintenance
    log in order — Maintain is deterministic, and the replay {e
    verifies} each replayed op reproduces the recorded result, raising
    E1105 on divergence rather than ever serving from diverged state —
    then re-runs the failed operation.  Queries are idempotent, so a
    retried train is safe; clients see retried answers, never wrong
    ones.

    {!serve} is the [hlid --router] process mode: the same machinery
    behind a listening socket speaking the ordinary wire protocol, its
    Hello advertising the backend shard map (protocol v4). *)

module P = Protocol
module C = Client
module S = Hli_core.Serialize

let net_raise code fmt =
  Fmt.kstr
    (fun m ->
      raise
        (Diagnostics.Diagnostic
           (Diagnostics.make ~code ~phase:Diagnostics.Net
              ~severity:Diagnostics.Error m)))
    fmt

(* The faults that mean "the shard (or its connection) died", as
   opposed to a semantic error the caller must see: connection closed,
   truncated frame (EOF mid-frame), stalled line, connect refusal.
   Everything else — unknown unit, validation failures, relayed
   E-codes — propagates untouched. *)
let retryable code =
  code = "E1110" || code = "E1102" || code = "E1109" || code = "E1112"

(* ------------------------------------------------------------------ *)
(* Consistent hash ring                                                *)
(* ------------------------------------------------------------------ *)

(* Classic ring: each shard contributes [vnodes] points keyed by its
   {e index} (not its socket path, so placement depends only on fleet
   size and order — the same unit lands on the same shard no matter
   where the sockets live); a unit belongs to the first point at or
   after its own hash, wrapping.  MD5's first 8 bytes are plenty. *)
let vnodes = 64

let hash8 s = String.get_int64_be (Digest.string s) 0

let make_ring n : (int64 * int) array =
  let pts =
    Array.init (n * vnodes) (fun k ->
        let shard = k / vnodes and v = k mod vnodes in
        (hash8 (Printf.sprintf "shard:%d:%d" shard v), shard))
  in
  Array.sort compare pts;
  pts

let ring_lookup ring h =
  let n = Array.length ring in
  (* first point with key >= h, else wrap to point 0 *)
  let rec bs lo hi = (* invariant: answer in [lo, hi] or = n *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst ring.(mid) < h then bs (mid + 1) hi else bs lo mid
  in
  let i = bs 0 n in
  snd ring.(if i = n then 0 else i)

(* ------------------------------------------------------------------ *)
(* Maintenance log (replayed on failover)                              *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_delete of string * int
  | Op_gen of string * int * int  (** unit, like, line *)
  | Op_move of string * int * int  (** unit, item, target_rid *)
  | Op_unroll of string * int * int  (** unit, rid, factor *)
  | Op_refresh of string

type op_result =
  | Res_unit
  | Res_int of int
  | Res_bool of bool
  | Res_unroll of Hli_core.Maintain.unroll_result

let apply_op cl : op -> op_result = function
  | Op_delete (u, item) ->
      C.notify_delete cl ~u item;
      Res_unit
  | Op_gen (u, like, line) -> Res_int (C.notify_gen cl ~u ~like ~line)
  | Op_move (u, item, target_rid) ->
      Res_bool (C.notify_move cl ~u ~item ~target_rid)
  | Op_unroll (u, rid, factor) ->
      Res_unroll (C.notify_unroll cl ~u ~rid ~factor)
  | Op_refresh u ->
      C.refresh cl ~u;
      Res_unit

let op_unit = function
  | Op_delete (u, _)
  | Op_gen (u, _, _)
  | Op_move (u, _, _)
  | Op_unroll (u, _, _)
  | Op_refresh u ->
      u

(* ------------------------------------------------------------------ *)
(* Per-shard worker domains                                            *)
(* ------------------------------------------------------------------ *)

(* One worker serializes every operation on its shard's client (the
   client is not thread-safe) while letting different shards run
   concurrently.  In inline mode (single-core hosts, or the process
   router's per-connection sessions) jobs run on the caller — same
   serialization, no handoff. *)
type worker = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  w_jobs : (unit -> unit) Queue.t;
  mutable w_stop : bool;
  mutable w_domain : unit Domain.t option;
}

let worker_loop w =
  let rec go () =
    Mutex.lock w.w_mutex;
    while Queue.is_empty w.w_jobs && not w.w_stop do
      Condition.wait w.w_cond w.w_mutex
    done;
    match Queue.take_opt w.w_jobs with
    | Some job ->
        Mutex.unlock w.w_mutex;
        job ();
        go ()
    | None -> Mutex.unlock w.w_mutex (* stopped, queue drained *)
  in
  go ()

let make_worker () =
  let w =
    {
      w_mutex = Mutex.create ();
      w_cond = Condition.create ();
      w_jobs = Queue.create ();
      w_stop = false;
      w_domain = None;
    }
  in
  w.w_domain <- Some (Domain.spawn (fun () -> worker_loop w));
  w

let stop_worker w =
  Mutex.lock w.w_mutex;
  w.w_stop <- true;
  Condition.broadcast w.w_cond;
  Mutex.unlock w.w_mutex;
  match w.w_domain with
  | Some d ->
      w.w_domain <- None;
      Domain.join d
  | None -> ()

type 'a outcome = Pending | Ok_ of 'a | Exn of exn * Printexc.raw_backtrace

(* ------------------------------------------------------------------ *)
(* Session state                                                       *)
(* ------------------------------------------------------------------ *)

type shard = {
  sk_path : string;
  mutable sk_cl : C.t option;  (** live connection; None = needs (re)connect *)
  mutable sk_bytes : string option;
      (** this shard's sub-container, retained for failover re-open *)
  mutable sk_opened : (string * int list) list option;
      (** open result on the {e current} connection (cleared on
          reconnect so retried opens don't double-open the session) *)
  mutable sk_log : (op * op_result option ref) list;
      (** applied maintenance, newest first; the ref is filled once
          the op's result is known (possibly during a replay) *)
}

type t = {
  shards : shard array;
  ring : (int64 * int) array;
  workers : worker option array;  (** None = inline *)
  timeout : float;
  max_frame : int;
  pipeline : int;
  shm : bool;
  retry_attempts : int;  (** reconnect attempts per recovery *)
  retry_delay : float;  (** pause between reconnect attempts *)
  op_retries : int;  (** full recover+retry cycles per operation *)
  mutable epoch : int;  (** refresh barriers completed *)
  failovers : int Atomic.t;  (** successful shard recoveries *)
  owners : (string, int) Hashtbl.t;
      (** unit -> ring owner memo: the ring never changes over a
          session, and an MD5 per query would dominate batched
          routing.  Only touched from the session's driving thread
          (splits happen before dispatch). *)
  mutable last_u : string;  (** last unit routed (query streams are *)
  mutable last_owner : int;  (** runs of one unit) *)
  mutable closed : bool;
}

let shard_of t u =
  if t.last_owner >= 0 && (t.last_u == u || String.equal t.last_u u) then
    t.last_owner
  else begin
    let i =
      match Hashtbl.find_opt t.owners u with
      | Some i -> i
      | None ->
          let i = ring_lookup t.ring (hash8 ("unit:" ^ u)) in
          Hashtbl.add t.owners u i;
          i
    in
    t.last_u <- u;
    t.last_owner <- i;
    i
  end
let shard_paths t = Array.to_list (Array.map (fun s -> s.sk_path) t.shards)
let epoch t = t.epoch
let failovers t = Atomic.get t.failovers

let connect ?(timeout = P.default_timeout) ?(max_frame = P.default_max_frame)
    ?(pipeline = 1) ?(shm = false) ?fanout ?(retry_attempts = 25)
    ?(retry_delay = 0.2) paths : t =
  (match paths with
  | [] -> invalid_arg "Router.connect: no shard sockets"
  | _ -> ());
  let n = List.length paths in
  let fanout =
    match fanout with
    | Some b -> b
    | None -> n > 1 && Domain.recommended_domain_count () > 1
  in
  let shards =
    Array.of_list
      (List.map
         (fun p ->
           {
             sk_path = p;
             sk_cl = None;
             sk_bytes = None;
             sk_opened = None;
             sk_log = [];
           })
         paths)
  in
  let t =
    {
      shards;
      ring = make_ring n;
      workers =
        Array.init n (fun _ -> if fanout then Some (make_worker ()) else None);
      timeout;
      max_frame;
      pipeline;
      shm;
      retry_attempts;
      retry_delay;
      op_retries = 4;
      epoch = 0;
      failovers = Atomic.make 0;
      owners = Hashtbl.create 64;
      last_u = "";
      last_owner = -1;
      closed = false;
    }
  in
  (* connect every shard up front, waiting out a restart-in-progress
     with the same bounded policy as a recovery: a genuinely dead
     instance still surfaces at session setup (E1112), exactly like
     the single-socket client, but a shard mid-restart (chaos, rolling
     upgrade) does not kill sessions that merely started at the wrong
     moment *)
  Array.iter
    (fun sk ->
      let rec conn attempt =
        match C.connect ~timeout ~max_frame ~pipeline ~shm sk.sk_path with
        | cl -> cl
        | exception Diagnostics.Diagnostic d
          when retryable d.Diagnostics.code && attempt < retry_attempts ->
            Unix.sleepf retry_delay;
            conn (attempt + 1)
      in
      sk.sk_cl <- Some (conn 1))
    t.shards;
  t

(* run [f] on shard [i]'s worker (or inline) and wait; exceptions
   re-raise in the caller *)
let dispatch t i (f : unit -> 'a) : unit -> 'a =
  match t.workers.(i) with
  | None ->
      let r = match f () with v -> Ok_ v | exception e -> Exn (e, Printexc.get_raw_backtrace ()) in
      fun () ->
        (match r with
        | Ok_ v -> v
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
  | Some w ->
      let m = Mutex.create () in
      let c = Condition.create () in
      let cell = ref Pending in
      let job () =
        let r =
          match f () with
          | v -> Ok_ v
          | exception e -> Exn (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock m;
        cell := r;
        Condition.signal c;
        Mutex.unlock m
      in
      Mutex.lock w.w_mutex;
      Queue.add job w.w_jobs;
      Condition.signal w.w_cond;
      Mutex.unlock w.w_mutex;
      fun () ->
        Mutex.lock m;
        while (match !cell with Pending -> true | _ -> false) do
          Condition.wait c m
        done;
        Mutex.unlock m;
        (match !cell with
        | Ok_ v -> v
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)

let run_on t i f = dispatch t i f ()

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

(* Reconnect to a dead shard — waiting out a restart-in-progress with
   bounded attempts — then rebuild the exact session state: re-open
   the retained sub-container and replay the maintenance log in order,
   verifying every replayed op reproduces its recorded result (the
   engine is deterministic; a divergence means the replacement is not
   answering from equivalent state and must not be trusted). *)
let recover t sk : C.t =
  let rec conn attempt =
    match
      C.connect ~timeout:t.timeout ~max_frame:t.max_frame
        ~pipeline:t.pipeline ~shm:t.shm sk.sk_path
    with
    | cl -> cl
    | exception Diagnostics.Diagnostic d
      when retryable d.Diagnostics.code && attempt < t.retry_attempts ->
        Unix.sleepf t.retry_delay;
        conn (attempt + 1)
  in
  let cl = conn 1 in
  sk.sk_cl <- Some cl;
  sk.sk_opened <- None;
  (match sk.sk_bytes with
  | Some b -> sk.sk_opened <- Some (C.open_hli_bytes cl b)
  | None -> ());
  List.iter
    (fun (op, cell) ->
      let r = apply_op cl op in
      match !cell with
      | Some recorded when recorded <> r ->
          net_raise "E1105"
            "failover replay diverged on %s (unit %S): the replacement \
             shard is not equivalent"
            sk.sk_path (op_unit op)
      | _ -> cell := Some r)
    (List.rev sk.sk_log);
  Atomic.incr t.failovers;
  cl

(* run [f] against the shard's live client, recovering and retrying
   (bounded) across shard death; must be called on the shard's worker *)
let with_client t sk (f : C.t -> 'a) : 'a =
  let rec go attempt =
    match
      match sk.sk_cl with
      | Some cl -> f cl
      | None -> f (recover t sk)
    with
    | v -> v
    | exception Diagnostics.Diagnostic d
      when retryable d.Diagnostics.code && attempt < t.op_retries ->
        (match sk.sk_cl with
        | Some cl ->
            sk.sk_cl <- None;
            C.close cl
        | None -> ());
        go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Session setup                                                       *)
(* ------------------------------------------------------------------ *)

let check_open t =
  if t.closed then net_raise "E1110" "router session is closed"

(** Split the container per shard, open each sub-container on its
    shard concurrently, and merge the per-unit results back into
    container order. *)
let open_hli_bytes t bytes : (string * int list) list =
  check_open t;
  let parts =
    match S.split_container bytes with
    | parts -> parts
    | exception S.Corrupt c ->
        raise (Diagnostics.Diagnostic (P.diagnostic_of_fault c))
  in
  let n = Array.length t.shards in
  let groups = Array.make n [] in
  List.iter
    (fun (name, payload) ->
      let i = shard_of t name in
      groups.(i) <- (name, payload) :: groups.(i))
    parts;
  let waits =
    Array.to_list
      (Array.mapi
         (fun i sk ->
           match List.rev groups.(i) with
           | [] -> fun () -> []
           | named ->
               let sub = S.container_of_payloads (List.map snd named) in
               sk.sk_bytes <- Some sub;
               sk.sk_log <- [];
               dispatch t i (fun () ->
                   with_client t sk (fun cl ->
                       match sk.sk_opened with
                       | Some r -> r
                       | None ->
                           let r = C.open_hli_bytes cl sub in
                           sk.sk_opened <- Some r;
                           r)))
         t.shards)
  in
  let opened = List.concat_map (fun wait -> wait ()) waits in
  (* container order, like a single server's R_opened *)
  List.map
    (fun (name, _) ->
      match List.assoc_opt name opened with
      | Some dups -> (name, dups)
      | None -> net_raise "E1105" "shard did not open unit %S" name)
    parts

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let q_unit = function
  | P.Q_equiv { u; _ }
  | P.Q_alias { u; _ }
  | P.Q_lcdd { u; _ }
  | P.Q_call { u; _ }
  | P.Q_region_of { u; _ }
  | P.Q_hoist_target { u; _ } ->
      u

(** A shard's share of one batch: [Whole] when the shard owns every
    query of the batch — forwarded verbatim, answers slotted as a
    block — or [Split] with positions for cross-shard batches. *)
type sub = Whole of P.query list | Split of (int * P.query) list

(** Split each batch per shard (preserving per-shard query order), fan
    the per-shard sub-trains out concurrently — each shard client
    pipelines its own train — and merge every answer back into its
    original batch position.  Batches whose queries all share one
    owner (the common case: a session works one unit at a time) skip
    the positional split entirely. *)
let query_batches t (batches : P.query list list) : P.answer list list =
  check_open t;
  let n = Array.length t.shards in
  let nb = List.length batches in
  let out = Array.make nb [] in
  (* positional scatter targets, allocated only for cross-shard
     batches *)
  let scat = Array.make nb [||] in
  (* per shard: (batch index, sub) accumulated in batch order *)
  let trains = Array.make n [] in
  List.iteri
    (fun bi qs ->
      let owner =
        match qs with
        | [] -> Some (-1)
        | q0 :: rest ->
            let i0 = shard_of t (q_unit q0) in
            if List.for_all (fun q -> shard_of t (q_unit q) = i0) rest then
              Some i0
            else None
      in
      match owner with
      | Some -1 -> () (* empty batch: out.(bi) stays [] *)
      | Some i -> trains.(i) <- (bi, Whole qs) :: trains.(i)
      | None ->
          (* split this batch by owner, keeping per-shard positional
             order; every position is overwritten by exactly one
             shard's merge below *)
          scat.(bi) <- Array.make (List.length qs) (P.A_alias false);
          let per = Array.make n [] in
          List.iteri
            (fun pos q ->
              let i = shard_of t (q_unit q) in
              per.(i) <- (pos, q) :: per.(i))
            qs;
          Array.iteri
            (fun i l ->
              match List.rev l with
              | [] -> ()
              | l -> trains.(i) <- (bi, Split l) :: trains.(i))
            per)
    batches;
  let waits =
    Array.to_list
      (Array.mapi
         (fun i sk ->
           match List.rev trains.(i) with
           | [] -> fun () -> []
           | train ->
               let subs =
                 List.map
                   (fun (_, s) ->
                     match s with
                     | Whole qs -> qs
                     | Split l -> List.map snd l)
                   train
               in
               let wait =
                 match t.workers.(i) with
                 | Some _ ->
                     dispatch t i (fun () ->
                         with_client t sk (fun cl -> C.query_batches cl subs))
                 | None ->
                     (* no worker domain for this shard: overlap the
                        backends anyway.  Put the sub-train on the wire
                        now — every shard is sent before any is
                        collected, so the server processes compute
                        concurrently even though one thread drives
                        them.  A shard death after the send loses the
                        in-flight replies: recover and re-run this
                        sub-train synchronously, same budget as
                        [with_client]. *)
                     let k =
                       with_client t sk (fun cl ->
                           C.query_batches_send cl subs)
                     in
                     fun () -> (
                       try k ()
                       with Diagnostics.Diagnostic d
                       when retryable d.Diagnostics.code ->
                         (match sk.sk_cl with
                         | Some cl ->
                             sk.sk_cl <- None;
                             C.close cl
                         | None -> ());
                         with_client t sk (fun cl -> C.query_batches cl subs))
               in
               fun () -> List.combine train (wait ()))
         t.shards)
  in
  List.iter
    (fun merged ->
      List.iter
        (fun ((bi, s), answers) ->
          match s with
          | Whole _ -> out.(bi) <- answers
          | Split posed ->
              List.iter2
                (fun (pos, _) a -> scat.(bi).(pos) <- a)
                posed answers)
        merged)
    (List.map (fun w -> w ()) waits);
  Array.iteri
    (fun bi a -> if Array.length a > 0 then out.(bi) <- Array.to_list a)
    scat;
  Array.to_list out

let query_batch t qs =
  match query_batches t [ qs ] with [ r ] -> r | _ -> assert false

(* single-query conveniences: route to the owner and inherit the
   shard client's memo tables and shm fast path *)
let on_unit t u f =
  check_open t;
  let i = shard_of t u in
  run_on t i (fun () -> with_client t t.shards.(i) f)

let equiv_acc t ~u a b = on_unit t u (fun cl -> C.equiv_acc cl ~u a b)
let alias t ~u ~rid ca cb = on_unit t u (fun cl -> C.alias cl ~u ~rid ca cb)
let lcdd t ~u ~rid a b = on_unit t u (fun cl -> C.lcdd cl ~u ~rid a b)

let call_acc t ~u ~call ~mem =
  on_unit t u (fun cl -> C.call_acc cl ~u ~call ~mem)

let region_of_item t ~u item = on_unit t u (fun cl -> C.region_of_item cl ~u item)
let hoist_target t ~u item = on_unit t u (fun cl -> C.hoist_target cl ~u item)
let equiv_prob t ~u a b = on_unit t u (fun cl -> C.equiv_prob cl ~u a b)
let line_table t u = on_unit t u (fun cl -> C.line_table cl u)

(* ------------------------------------------------------------------ *)
(* Maintenance + the epoch barrier                                     *)
(* ------------------------------------------------------------------ *)

(* log-then-apply: the op is in the shard's log before it runs, so a
   shard dying mid-op replays it (filling the same result cell) and
   the caller still gets exactly one answer *)
let maint t (op : op) : op_result =
  check_open t;
  let i = shard_of t (op_unit op) in
  let sk = t.shards.(i) in
  run_on t i (fun () ->
      let cell = ref None in
      sk.sk_log <- (op, cell) :: sk.sk_log;
      with_client t sk (fun cl ->
          match !cell with
          | Some r -> r (* applied by a recovery replay *)
          | None ->
              let r = apply_op cl op in
              cell := Some r;
              r))

let notify_delete t ~u item = ignore (maint t (Op_delete (u, item)))

let notify_gen t ~u ~like ~line =
  match maint t (Op_gen (u, like, line)) with
  | Res_int id -> id
  | _ -> assert false

let notify_move t ~u ~item ~target_rid =
  match maint t (Op_move (u, item, target_rid)) with
  | Res_bool b -> b
  | _ -> assert false

let notify_unroll t ~u ~rid ~factor =
  match maint t (Op_unroll (u, rid, factor)) with
  | Res_unroll r -> r
  | _ -> assert false

let pending t =
  Array.fold_left
    (fun acc sk -> acc + match sk.sk_cl with Some cl -> C.pending cl | None -> 0)
    0 t.shards

let flush t =
  check_open t;
  let waits =
    Array.to_list
      (Array.mapi
         (fun i sk ->
           dispatch t i (fun () ->
               match sk.sk_cl with
               | None -> ()
               | Some _ -> with_client t sk C.flush))
         t.shards)
  in
  List.iter (fun w -> w ()) waits

(** The epoch barrier: drain every shard's in-flight replies, advance
    the epoch, then refresh the owning shard.  After the barrier no
    pre-refresh answer is still in flight anywhere, so replies
    collected later are uniformly post-refresh — a router never mixes
    generations across shards. *)
let refresh t ~u =
  flush t;
  t.epoch <- t.epoch + 1;
  ignore (maint t (Op_refresh u));
  (* collect the refresh's own ack too (deferred under pipelining):
     [pending t = 0] holds on return, so the barrier is observable *)
  flush t

(* ------------------------------------------------------------------ *)
(* Telemetry + teardown                                                *)
(* ------------------------------------------------------------------ *)

(** Aggregate fleet telemetry: a ["router"] object (shard count,
    epoch, failovers) plus each backend's own stats object, in shard
    order ([null] for an unreachable backend). *)
let stats_json t =
  check_open t;
  let backends =
    Array.to_list
      (Array.mapi
         (fun i sk ->
           run_on t i (fun () ->
               match with_client t sk C.server_stats with
               | s -> s
               | exception _ -> "null"))
         t.shards)
  in
  Printf.sprintf "{\"router\":{\"shards\":%d,\"epoch\":%d,\"failovers\":%d},\
                  \"backends\":[%s]}"
    (Array.length t.shards) t.epoch
    (Atomic.get t.failovers)
    (String.concat "," backends)

let close t =
  if not t.closed then begin
    let waits =
      Array.to_list
        (Array.mapi
           (fun i sk ->
             dispatch t i (fun () ->
                 match sk.sk_cl with
                 | Some cl ->
                     sk.sk_cl <- None;
                     C.close cl
                 | None -> ()))
           t.shards)
    in
    List.iter (fun w -> try w () with _ -> ()) waits;
    Array.iter (function Some w -> stop_worker w | None -> ()) t.workers;
    t.closed <- true
  end

(* ------------------------------------------------------------------ *)
(* Process mode: hlid --router                                         *)
(* ------------------------------------------------------------------ *)

(* One accepted connection = one fleet session (inline mode: the
   connection's domain serializes its own backends; concurrency comes
   from connections, not per-session fan-out).  Requests are answered
   strictly in order, so pipelined clients correlate positionally as
   with a plain hlid.  Open_delta is answered E1106 — the client
   library resyncs with a full Open_hli (the delta store lives on the
   shards; re-splitting reference lists is not worth the protocol
   surface) — and backend sessions run at pipeline 1 so every ack the
   router forwards is a real backend answer, never a deferred one. *)
let handle_req t ~backends ~ver (req : P.request) : P.response * bool =
  match req with
  | P.Hello { version } ->
      if version < P.min_protocol_version then
        ( P.R_error
            {
              e_code = "E1111";
              e_msg =
                Printf.sprintf
                  "protocol version mismatch: client %d, router %d (oldest \
                   served: %d)"
                  version P.protocol_version P.min_protocol_version;
            },
          false )
      else begin
        (* downgrade negotiation, like the daemon's: serve the older
           of the two versions *)
        ver := min version P.protocol_version;
        (P.R_hello { version = !ver; shm_dir = None; shards = backends }, true)
      end
  | P.Open_hli bytes -> (P.R_opened (open_hli_bytes t bytes), true)
  | P.Open_path path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | bytes -> (P.R_opened (open_hli_bytes t bytes), true)
      | exception Sys_error m ->
          (P.R_error { e_code = "E1108"; e_msg = m }, true))
  | P.Open_delta _ | P.Delta_fill _ ->
      ( P.R_error
          {
            e_code = "E1106";
            e_msg = "delta upload unsupported via the router; resend as \
                     Open_hli";
          },
        true )
  | P.Batch qs -> (P.R_results (query_batch t qs), true)
  | P.Notify_delete { u; item } ->
      notify_delete t ~u item;
      (P.R_ack, true)
  | P.Notify_gen { u; like; line } -> (P.R_gen (notify_gen t ~u ~like ~line), true)
  | P.Notify_move { u; item; target_rid } ->
      (P.R_moved (notify_move t ~u ~item ~target_rid), true)
  | P.Notify_unroll { u; rid; factor } ->
      (P.R_unrolled (notify_unroll t ~u ~rid ~factor), true)
  | P.Refresh u ->
      refresh t ~u;
      (P.R_ack, true)
  | P.Line_table u -> (P.R_line_table (line_table t u), true)
  | P.Stats -> (P.R_stats (stats_json t), true)
  | P.Shm_list -> (P.R_shm_list [], true)
  | P.Q_prob { u; pairs } ->
      if !ver < 5 then
        ( P.R_error
            {
              e_code = "E1113";
              e_msg =
                Printf.sprintf
                  "Q_prob not offered at negotiated protocol version %d \
                   (needs 5)"
                  !ver;
            },
          true )
      else
        (P.R_prob (List.map (fun (a, b) -> equiv_prob t ~u a b) pairs), true)
  | P.Close -> (P.R_closing, false)

let handle_conn ~backends ~timeout ~max_frame ~stop fd =
  match connect ~timeout ~max_frame ~pipeline:1 ~fanout:false backends with
  | exception _ ->
      (* backends unreachable: the client sees EOF (E1110) and may
         retry; nothing sound to answer without a session *)
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | t ->
  let ver = ref P.protocol_version in
  let rd = P.reader fd in
  let respond resp =
    P.write_all
      ~deadline:(P.now () +. timeout)
      fd
      (P.response_to_string resp)
  in
  let rec loop () =
    match P.recv_request ~max_frame ~idle_timeout:0.2 ~timeout rd with
    | P.Idle -> if Atomic.get stop then (try respond (P.R_error { e_code = "E1110"; e_msg = "router shutting down" }) with _ -> ()) else loop ()
    | P.Closed -> ()
    | P.Got req ->
        let resp, keep =
          try handle_req t ~backends ~ver req
          with Diagnostics.Diagnostic d ->
            ( P.R_error
                { e_code = d.Diagnostics.code; e_msg = d.Diagnostics.message },
              true )
        in
        respond resp;
        if keep then loop ()
    | exception S.Corrupt c ->
        (try
           respond
             (P.R_error
                { e_code = c.S.c_code; e_msg = S.corruption_to_string c })
         with _ -> ())
  in
  (try loop () with _ -> ());
  close t;
  try Unix.close fd with Unix.Unix_error _ -> ()

(** Run the process-mode router: listen on [socket_path], proxy every
    accepted session onto a fleet session over [backends].  Returns
    when [stop] goes true (poll granularity 0.2s); in-flight sessions
    are told E1110 and drained, mirroring hlid's graceful shutdown. *)
let serve ?(timeout = P.default_timeout) ?(max_frame = P.default_max_frame)
    ~backends ~socket_path ~stop () =
  (match backends with
  | [] -> invalid_arg "Router.serve: no backend sockets"
  | _ -> ());
  (try if Sys.file_exists socket_path then Sys.remove socket_path
   with Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX socket_path);
     Unix.listen lfd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     net_raise "E1112" "cannot listen on %s: %s" socket_path
       (Unix.error_message e));
  let conns = ref [] in
  while not (Atomic.get stop) do
    match Unix.select [ lfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept lfd with
        | fd, _ ->
            conns :=
              Domain.spawn (fun () ->
                  handle_conn ~backends ~timeout ~max_frame ~stop fd)
              :: !conns
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  List.iter Domain.join !conns;
  try Sys.remove socket_path with Sys_error _ -> ()
