(** hlid server core: event-driven accept/read loop, worker pool,
    telemetry.

    One poller domain ({!run}) owns every socket: it accepts
    connections, reads ready bytes into per-connection reused buffers,
    parses/decodes frames in place and dispatches decoded requests to
    a {!Pool} of worker domains.  Each connection's queue is drained
    by at most one worker at a time, so requests are answered strictly
    in arrival order — the invariant pipelined clients correlate by —
    and session state needs no locking.  A session opens one validated
    HLI file into per-unit {!Hli_core.Maintain} transactions and
    answers {!Protocol.request} frames until [Close], EOF, a framing
    fault, or server shutdown.  Query/maintenance semantics mirror the
    in-process pipeline exactly (the remote differential suite checks
    Tables 1/2 byte-identity against it). *)

type config = {
  socket_path : string;
  jobs : int;
      (** worker-pool size; [jobs - 1] worker domains run request
          handlers.  Sessions no longer pin a worker for their
          lifetime, so this sizes for CPU parallelism, not for a
          connection-count cap.  [jobs = 1] is poller-inline mode:
          requests are handled synchronously on the poller domain —
          fastest on a single-core host, but one slow request then
          stalls every session. *)
  max_frame : int;  (** request payload size bound, bytes *)
  idle_timeout : float;
      (** poller wakeup cap in seconds — bounds shutdown latency *)
  request_timeout : float;
      (** per-frame progress bound; expiry answers E1109 *)
  shm_dir : string option;
      (** when set, the shared-memory fast path is on: one HLIX
          segment per opened unit is published under
          [shm_dir]/sess-<id>/, advertised in the Hello response, and
          rebuilt under the seqlock protocol at every [Refresh]
          barrier (DESIGN.md §8) *)
  store_cap : int;
      (** byte bound on the cross-session content-addressed entry
          store backing delta uploads; oldest-inserted entries are
          evicted past it (a miss only costs a client a re-upload) *)
}

val default_config : socket_path:string -> config
(** [jobs = max 8 (Pool.default_jobs ())],
    [max_frame = Protocol.default_max_frame], 0.2s idle poll, 30s
    request timeout, no shm dir, 256 MiB entry store. *)

type t

val create : config -> t
(** Bind and listen on [socket_path] (removing a stale socket file
    first).  Raises a phase-[Net] E1112 {!Diagnostics.Diagnostic} if
    the socket cannot be set up. *)

val run : t -> unit
(** Event loop (poller).  Returns only after {!initiate_shutdown}:
    every connection gets its queued answers, then an E1110 error
    frame, then EOF; stragglers are force-closed after a grace period,
    the worker pool is shut down and the socket file removed. *)

val initiate_shutdown : t -> unit
(** Flip the stop flag, close the listening socket and wake the
    poller through its self-pipe.  Idempotent and async-signal-safe
    enough for a [Sys.Signal_handle]. *)

val stats_json : t -> string
(** Server telemetry as a JSON object: session/frame/batch counters,
    per-query-kind counts, maintenance ops, rejected and timed-out
    frames, p50/p99 service latency (ns), capped per-session
    summaries.  Embedded as the ["server"] field of an
    hli-telemetry-v7 dump, and answered to a [Stats] frame. *)

val socket_path : t -> string
