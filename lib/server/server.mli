(** hlid server core: listening socket, concurrent sessions, telemetry.

    Each accepted connection becomes an isolated session on a {!Pool}
    worker domain: it opens one validated HLI file into per-unit
    {!Hli_core.Maintain} transactions and answers
    {!Protocol.request} frames until [Close], EOF, a framing fault, or
    server shutdown.  Query/maintenance semantics mirror the
    in-process pipeline exactly (the remote differential suite checks
    Tables 1/2 byte-identity against it). *)

type config = {
  socket_path : string;
  jobs : int;
      (** pool size; [jobs - 1] worker domains bound the number of
          concurrent sessions (clamped to at least 2) *)
  max_frame : int;  (** request payload size bound, bytes *)
  idle_timeout : float;
      (** session poll interval in seconds — bounds shutdown latency *)
  request_timeout : float;
      (** per-frame progress bound; expiry answers E1109 *)
}

val default_config : socket_path:string -> config
(** [jobs = max 8 (Pool.default_jobs ())],
    [max_frame = Protocol.default_max_frame], 0.2s idle poll, 30s
    request timeout. *)

type t

val create : config -> t
(** Bind and listen on [socket_path] (removing a stale socket file
    first).  Raises a phase-[Net] E1112 {!Diagnostics.Diagnostic} if
    the socket cannot be set up. *)

val run : t -> unit
(** Accept loop.  Returns only after {!initiate_shutdown}: in-flight
    sessions are drained (each answers an E1110 error frame at its
    next poll), stragglers are force-closed after a grace period, the
    worker pool is shut down and the socket file removed. *)

val initiate_shutdown : t -> unit
(** Flip the stop flag and close the listening socket.  Idempotent and
    async-signal-safe enough for a [Sys.Signal_handle]. *)

val stats_json : t -> string
(** Server telemetry as a JSON object: session/frame/batch counters,
    per-query-kind counts, maintenance ops, rejected and timed-out
    frames, p50/p99 service latency (ns), capped per-session
    summaries.  Embedded as the ["server"] field of an
    hli-telemetry-v5 dump, and answered to a [Stats] frame. *)

val socket_path : t -> string
