(** hlid wire protocol: length-framed, CRC-checked binary frames.

    Frame layout (DESIGN.md has the full byte-level spec):

    {v tag:u8 | len:varint | payload (len bytes) | CRC32(payload):u32le v}

    All decode failures raise {!Hli_core.Serialize.Corrupt} with a
    precise E11xx code: E1101 unknown tag, E1102 truncated frame,
    E1103 CRC mismatch, E1104 size bound exceeded, E1105 malformed
    payload, E1109 timeout, E1110 connection closed. *)

val protocol_version : int

val default_max_frame : int
(** Default payload size bound (16 MiB), enforced before allocation. *)

val default_timeout : float
(** Default per-frame progress timeout, seconds. *)

(** One query of a {!Batch}; [u] names the opened unit. *)
type query =
  | Q_equiv of { u : string; a : int; b : int }
  | Q_alias of { u : string; rid : int; ca : int; cb : int }
  | Q_lcdd of { u : string; rid : int; a : int; b : int }
  | Q_call of { u : string; call : int; mem : int }
  | Q_region_of of { u : string; item : int }
  | Q_hoist_target of { u : string; item : int }

(** Positional answers of an {!R_results}, mirroring {!query}. *)
type answer =
  | A_equiv of Hli_core.Query.equiv_result
  | A_alias of bool
  | A_lcdd of Hli_core.Tables.lcdd_entry list option
  | A_call of Hli_core.Query.call_acc_result
  | A_region_of of int option
  | A_hoist_target of int option

type request =
  | Hello of { version : int }
  | Open_hli of string  (** HLI2 container bytes, shipped inline *)
  | Open_path of string  (** HLI2 file path readable by the server *)
  | Batch of query list
  | Notify_delete of { u : string; item : int }
  | Notify_gen of { u : string; like : int; line : int }
  | Notify_move of { u : string; item : int; target_rid : int }
  | Notify_unroll of { u : string; rid : int; factor : int }
  | Refresh of string
      (** end-of-pass barrier: rebuild the unit's query index from the
          maintained entry (the local pipeline's per-pass
          [Maintain.commit] index replacement) *)
  | Line_table of string
  | Stats
  | Close

type response =
  | R_hello of { version : int }
  | R_opened of (string * int list) list
      (** per opened unit: name and duplicate item ids *)
  | R_results of answer list
  | R_ack
  | R_gen of int
  | R_moved of bool
  | R_unrolled of Hli_core.Maintain.unroll_result
  | R_line_table of Hli_core.Tables.line_entry list
  | R_stats of string  (** server telemetry as a JSON object *)
  | R_closing
  | R_error of { e_code : string; e_msg : string }

(** {2 Pure frame codec} — used directly by the fuzz harness. *)

val request_to_string : request -> string
val response_to_string : response -> string

val request_of_string : ?max_frame:int -> string -> request
(** Decode one complete request frame; raises
    {!Hli_core.Serialize.Corrupt} with an E11xx code on any fault. *)

val response_of_string : ?max_frame:int -> string -> response

val is_protocol_code : string -> bool
(** [true] on E11xx codes. *)

(** {2 Socket I/O} *)

(** [Idle]: the optional [idle_timeout] expired before any byte of a
    frame arrived (the server's shutdown-flag poll point).  [Closed]:
    EOF before any byte. *)
type 'a recv = Got of 'a | Idle | Closed

val recv_request :
  ?max_frame:int ->
  ?idle_timeout:float ->
  ?timeout:float ->
  Unix.file_descr ->
  request recv
(** Blocking read of one request frame.  Once a frame has started,
    [timeout] bounds progress (expiry raises E1109); EOF mid-frame
    raises E1102. *)

val recv_response : ?max_frame:int -> ?timeout:float -> Unix.file_descr -> response
(** Blocking read of one response frame.  EOF raises E1110; a quiet
    line past [timeout] raises E1109. *)

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit
(** Both raise [Corrupt] E1110 when the peer is gone. *)

val diagnostic_of_fault :
  ?file:string -> Hli_core.Serialize.corruption -> Diagnostics.t
(** Render a protocol fault as a phase-[Net] diagnostic (exit code 7). *)
