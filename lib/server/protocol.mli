(** hlid wire protocol: length-framed, CRC-checked binary frames.

    Frame layout (DESIGN.md has the full byte-level spec):

    {v tag:u8 | len:varint | payload (len bytes) | CRC32(payload):u32le v}

    All decode failures raise {!Hli_core.Serialize.Corrupt} with a
    precise E11xx code: E1101 unknown tag, E1102 truncated frame,
    E1103 CRC mismatch, E1104 size bound exceeded, E1105 malformed
    payload, E1109 timeout, E1110 connection closed. *)

val protocol_version : int

val min_protocol_version : int
(** Oldest peer version the negotiation still serves: a client at
    [min_protocol_version] or newer is answered with
    [min(client, protocol_version)]; anything older is rejected with
    E1111.  Frames a downgraded session was never offered (e.g.
    [Q_prob] on a v4 session) are faulted with E1113. *)

val default_max_frame : int
(** Default payload size bound (16 MiB), enforced before allocation. *)

val default_timeout : float
(** Default per-frame progress timeout, seconds. *)

(** One query of a {!Batch}; [u] names the opened unit. *)
type query =
  | Q_equiv of { u : string; a : int; b : int }
  | Q_alias of { u : string; rid : int; ca : int; cb : int }
  | Q_lcdd of { u : string; rid : int; a : int; b : int }
  | Q_call of { u : string; call : int; mem : int }
  | Q_region_of of { u : string; item : int }
  | Q_hoist_target of { u : string; item : int }

(** Positional answers of an {!R_results}, mirroring {!query}. *)
type answer =
  | A_equiv of Hli_core.Query.equiv_result
  | A_alias of bool
  | A_lcdd of Hli_core.Tables.lcdd_entry list option
  | A_call of Hli_core.Query.call_acc_result
  | A_region_of of int option
  | A_hoist_target of int option

type request =
  | Hello of { version : int }
  | Open_hli of string  (** HLI2 container bytes, shipped inline *)
  | Open_path of string  (** HLI2 file path readable by the server *)
  | Batch of query list
  | Notify_delete of { u : string; item : int }
  | Notify_gen of { u : string; like : int; line : int }
  | Notify_move of { u : string; item : int; target_rid : int }
  | Notify_unroll of { u : string; rid : int; factor : int }
  | Refresh of string
      (** end-of-pass barrier: rebuild the unit's query index from the
          maintained entry (the local pipeline's per-pass
          [Maintain.commit] index replacement) *)
  | Line_table of string
  | Stats
  | Close
  | Shm_list
      (** enumerate the HLIX segments published for this session's
          opened units (shared-memory fast path; DESIGN.md §8) *)
  | Open_delta of (string * string) list
      (** open by reference: per entry, its unit name and the 16-byte
          content hash of its HLI2 payload.  Known entries are reused
          from the server's cross-session store; missing ones are
          requested via [R_delta_need] and shipped with [Delta_fill] *)
  | Delta_fill of string list
      (** the entry payloads an [R_delta_need] asked for, in the listed
          order; only valid while its [Open_delta] is pending *)
  | Q_prob of { u : string; pairs : (int * int) list }
      (** confidence-weighted equiv: per item pair, the engine's
          [get_equiv_prob] answer.  v5 only — on a session negotiated
          at v4 this frame is a protocol fault (E1113) *)

type response =
  | R_hello of {
      version : int;
      shm_dir : string option;
      shards : string list;
    }
      (** [shm_dir]: the per-session directory where the server
          publishes HLIX segments, when the shm fast path is enabled.
          [shards]: the fleet's shard map (v4) — socket paths of the
          hlid instances units are sharded across, in ring order;
          empty for a standalone daemon *)
  | R_opened of (string * int list) list
      (** per opened unit: name and duplicate item ids *)
  | R_results of answer list
  | R_ack
  | R_gen of int
  | R_moved of bool
  | R_unrolled of Hli_core.Maintain.unroll_result
  | R_line_table of Hli_core.Tables.line_entry list
  | R_stats of string  (** server telemetry as a JSON object *)
  | R_closing
  | R_shm_list of (string * string) list
      (** per published unit: name and HLIX segment path *)
  | R_delta_need of int list
      (** positions (into the [Open_delta] list) of the entries the
          server's store lacks *)
  | R_prob of (Hli_core.Query.equiv_result * int) list
      (** positional answers to a [Q_prob]'s pairs: result and
          per-mille confidence (v5) *)
  | R_error of { e_code : string; e_msg : string }

(** {2 Pure frame codec} — used directly by the fuzz harness. *)

val request_to_string : request -> string
val response_to_string : response -> string

val encode_request_into : Buffer.t -> request -> unit
(** Append the framed request to the buffer without building the
    intermediate frame string — the hot path for pipelined sends. *)

val encode_response_into : Buffer.t -> response -> unit
(** Same, for coalesced response bursts. *)

val request_of_string : ?max_frame:int -> string -> request
(** Decode one complete request frame; raises
    {!Hli_core.Serialize.Corrupt} with an E11xx code on any fault. *)

val response_of_string : ?max_frame:int -> string -> response

val is_protocol_code : string -> bool
(** [true] on E11xx codes. *)

val is_request_tag : int -> bool
val is_response_tag : int -> bool

(** {2 Streaming zero-copy framing}

    The event-driven server and the pipelined client parse frames in
    place over a reused buffer: {!parse_frame} finds one frame's
    boundaries among the valid bytes (eagerly rejecting malformations
    decidable from a prefix), then {!decode_request_at}/
    {!decode_response_at} decode the CRC-checked payload without
    copying it out. *)

type frame_info = {
  f_tag : int;
  f_payload_ofs : int;  (** absolute offset of the payload in the buffer *)
  f_payload_len : int;
  f_end : int;  (** offset just past the CRC — where the next frame starts *)
}

val parse_frame :
  ?max_frame:int ->
  kind:string ->
  known:(int -> bool) ->
  Bytes.t ->
  ofs:int ->
  len:int ->
  frame_info option
(** [None] = incomplete, feed more bytes.  Raises E1101/E1103/E1104/
    E1105 as soon as the fault is decidable. *)

val decode_request_at : Bytes.t -> frame_info -> request
(** Decode a frame found by [parse_frame] with [known:is_request_tag];
    raises E1105 on a malformed payload. *)

val decode_response_at : Bytes.t -> frame_info -> response

(** {2 Socket I/O} *)

val now : unit -> float
(** The deadline clock: CLOCK_MONOTONIC, in seconds.  Every absolute
    [deadline] below is interpreted against this clock — compute them
    as [now () +. budget], never from [Unix.gettimeofday] (an NTP step
    would fire or starve the wait). *)

(** A buffered frame reader over one fd: bytes are pulled in bulk into
    a grow-once scratch buffer, frames decoded in place, and surplus
    bytes of a pipelined train pushed back for the next receive. *)
type reader

val reader : ?initial:int -> Unix.file_descr -> reader
(** Wrap [fd] ([initial] is the scratch-buffer size, default 64 KiB).
    All reads from the fd must go through the reader from then on. *)

val reader_buffered : reader -> int
(** Bytes received but not yet consumed (pushed-back surplus). *)

val readable : reader -> bool
(** [true] iff a receive can make progress without blocking: surplus
    bytes are buffered, or the fd is readable right now. *)

(** [Idle]: the optional [idle_timeout] expired before any byte of a
    frame arrived.  [Closed]: EOF before any byte. *)
type 'a recv = Got of 'a | Idle | Closed

val recv_request :
  ?max_frame:int ->
  ?idle_timeout:float ->
  ?timeout:float ->
  reader ->
  request recv
(** Blocking read of one request frame.  Once a frame has started,
    [timeout] bounds the rest of it (expiry raises E1109, recomputed —
    not restarted — across EINTR); EOF mid-frame raises E1102. *)

val recv_response : ?max_frame:int -> ?timeout:float -> reader -> response
(** Blocking read of one response frame.  EOF raises E1110; a quiet
    line past [timeout] raises E1109. *)

val write_all : ?deadline:float -> Unix.file_descr -> string -> unit
(** Write the whole string, surviving partial writes, EINTR and
    EAGAIN/0-byte writes on non-blocking fds (waits for writability,
    never busy-loops, never drops the tail).  [deadline] (absolute,
    {!now} clock) bounds the whole write — expiry raises E1109; a
    vanished peer raises E1110. *)

val send_request : ?deadline:float -> Unix.file_descr -> request -> unit
val send_response : ?deadline:float -> Unix.file_descr -> response -> unit
(** Both raise [Corrupt] E1110 when the peer is gone. *)

val diagnostic_of_fault :
  ?file:string -> Hli_core.Serialize.corruption -> Diagnostics.t
(** Render a protocol fault as a phase-[Net] diagnostic (exit code 7). *)
