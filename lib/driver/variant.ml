(** The compile-variant matrix and the ablation configurations.

    A variant is one point of the (alias analysis × machine) product
    the paper's Tables 1/2 are measured over; the seed hardwired the
    four points as record fields, here they are generated from the two
    axes so adding a machine or an alias mode extends the matrix
    instead of rewriting a record type.

    An {!ablation} bundles the configuration toggles behind DESIGN.md
    §5's ablation studies; [baseline] is the paper's configuration and
    each named ablation flips exactly one knob. *)

type machine = R4600 | R10000

let machines = [ R4600; R10000 ]
let machine_name = function R4600 -> "r4600" | R10000 -> "r10000"

let machdesc = function
  | R4600 -> Backend.Machdesc.r4600
  | R10000 -> Backend.Machdesc.r10000

let sim_machine = function
  | R4600 -> Machine.Simulate.R4600
  | R10000 -> Machine.Simulate.R10000

let aliases = [ Backend.Ddg.Gcc_only; Backend.Ddg.With_hli ]

let alias_name = function
  | Backend.Ddg.Gcc_only -> "gcc"
  | Backend.Ddg.With_hli -> "hli"

type t = { alias : Backend.Ddg.mode; machine : machine }

let name v = alias_name v.alias ^ "/" ^ machine_name v.machine
let use_hli v = v.alias = Backend.Ddg.With_hli

(** All variants, machine-major: gcc/r4600, hli/r4600, gcc/r10000,
    hli/r10000 — the canonical order every matrix consumer (pipeline,
    tables, CLI) relies on. *)
let matrix =
  List.concat_map
    (fun machine -> List.map (fun alias -> { alias; machine }) aliases)
    machines

(** The variant whose query stream backs Table 2: exactly one pass
    issues counted HLI queries (see DESIGN.md). *)
let stats_variant = { alias = Backend.Ddg.With_hli; machine = R10000 }

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

type ablation = {
  ab_name : string;
  ab_doc : string;
  merge_classes : bool;
      (** TBLCONST merges same-variable classes into parent regions *)
  routine_only_regions : bool;
      (** flatten the region tree to the unit region (drops loop
          regions and with them every LCDD table) *)
  combine_gcc : bool;
      (** DDG edge decision is [gcc && hli]; [false] trusts the HLI
          answer alone *)
  lsq_blocking : bool;  (** R10000 LSQ load-blocking rule *)
  speculate : int option;
      (** per-mille speculation threshold ([--speculate]): maybe-class
          store-to-load dependences with HLI confidence below it are
          dropped from the DDG, with check/recovery at run time
          ({!Backend.Ddg.build}).  [None] — the default everywhere —
          keeps schedules and simulations byte-identical to the
          non-speculative compiler *)
}

let baseline =
  {
    ab_name = "baseline";
    ab_doc = "paper configuration (no ablation)";
    merge_classes = true;
    routine_only_regions = false;
    combine_gcc = true;
    lsq_blocking = true;
    speculate = None;
  }

let ablations =
  [
    {
      baseline with
      ab_name = "merge-off";
      ab_doc = "no parent-class merging in TBLCONST (HLI size vs precision)";
      merge_classes = false;
    };
    {
      baseline with
      ab_name = "routine-regions";
      ab_doc = "routine-only regions: no loop regions, no LCDD tables";
      routine_only_regions = true;
    };
    {
      baseline with
      ab_name = "hli-only";
      ab_doc = "scheduler trusts the HLI answer alone (no GCC AND)";
      combine_gcc = false;
    };
    {
      baseline with
      ab_name = "lsq-off";
      ab_doc = "R10000 LSQ load-blocking rule disabled";
      lsq_blocking = false;
    };
  ]

(** [ab] with speculative scheduling at per-mille threshold [t] — the
    [--speculate] CLI flag composes this onto whatever ablation is
    selected. *)
let with_speculate t ab =
  {
    ab with
    ab_name = (if ab.ab_name = "baseline" then "" else ab.ab_name ^ "+")
              ^ Printf.sprintf "speculate=%d" t;
    speculate = Some t;
  }

let find_ablation n =
  List.find_opt (fun a -> a.ab_name = n) (baseline :: ablations)

let ablation_names = List.map (fun a -> a.ab_name) ablations

(** TBLCONST options this ablation implies. *)
let tblconst_options ab =
  {
    Hligen.Tblconst.merge_parent_classes = ab.merge_classes;
    routine_only_regions = ab.routine_only_regions;
  }

(** Machine description for [v] with the ablation's LSQ knob applied
    (only the R10000 has an LSQ to disable). *)
let machdesc_of ab v =
  let md = machdesc v.machine in
  if ab.lsq_blocking then md else { md with Backend.Machdesc.lsq_blocking = false }
