(** Pass registry, pipeline assembly, CLI pass-spec parsing and the
    typed pipeline runner.

    The registry is the single source of truth for pass names, their
    telemetry spans ([Pass.span_name]), their payload stages and their
    ordering constraints; [Telemetry.stage_order], [--list-passes] and
    pipeline validation are all derived from it. *)

open Pass

(* ------------------------------------------------------------------ *)
(* Pass implementations                                                *)
(* ------------------------------------------------------------------ *)

let run_parse _ctx ~arg:_ (s : source) : Srclang.Tast.program =
  Srclang.Typecheck.program_of_string s.src

let run_analysis ctx ~arg:_ (prog : Srclang.Tast.program) : analyzed =
  let opts = Variant.tblconst_options ctx.ablation in
  { a_prog = prog; a_ctx = Hligen.Tblconst.make_context ~opts prog }

let run_tblconst _ctx ~arg:_ (a : analyzed) : hli =
  let entries =
    List.map
      (fun f ->
        let e, _, _ = Hligen.Tblconst.build_unit a.a_ctx f in
        e)
      a.a_prog.Srclang.Tast.funcs
  in
  { h_prog = a.a_prog; h_entries = entries; h_bytes = 0 }

let run_serialize _ctx ~arg:_ (h : hli) : hli =
  {
    h with
    h_bytes = Hli_core.Serialize.size_bytes { Hli_core.Tables.entries = h.h_entries };
  }

let run_lower _ctx ~arg:_ (h : hli) : mapped =
  {
    m_entries = h.h_entries;
    m_rtl = Backend.Lower.lower_program h.h_prog;
    m_maps = Hashtbl.create 16;
    m_unmapped = 0;
    m_duplicates = 0;
    m_dropped = 0;
    m_notes = [];
  }

let run_hli_import ctx ~arg:_ (m : mapped) : mapped =
  let unmapped = ref 0 and duplicates = ref 0 and dropped = ref 0 in
  List.iter
    (fun (e : Hli_core.Tables.hli_entry) ->
      match Backend.Rtl.find_fn m.m_rtl e.Hli_core.Tables.unit_name with
      | Some fn ->
          let mp =
            match
              Option.bind ctx.remote (fun r ->
                  r.remote_unit e.Hli_core.Tables.unit_name)
            with
            | Some ru ->
                (* remote back end: the line table and duplicate list
                   come over the wire; queries route to the session *)
                Backend.Hli_import.map_unit_lines
                  ~source:(Backend.Hli_import.Remote ru.ru_source)
                  ~dups:ru.ru_dups
                  ~line_table:(ru.ru_line_table ())
                  fn
            | None -> Backend.Hli_import.map_unit e fn
          in
          unmapped := !unmapped + mp.Backend.Hli_import.unmapped_insns;
          duplicates := !duplicates + List.length mp.Backend.Hli_import.dup_items;
          Hashtbl.replace m.m_maps e.Hli_core.Tables.unit_name mp
      | None ->
          (* an HLI entry with no RTL function: its items can never be
             mapped — count it instead of dropping it silently *)
          incr dropped)
    m.m_entries;
  { m with m_unmapped = !unmapped; m_duplicates = !duplicates; m_dropped = !dropped }

(* Fold an optimization step over every function.  On HLI variants each
   function gets a maintenance session watching its imported query
   index (so no pass can observe a stale memoized answer), and after
   the step the committed entry and its fresh index replace the old
   ones — both in the map table and in the payload's entry list, so a
   later pass maintains the already-edited entry, not the original.

   On a remote back end the server owns all of that state: the pass
   sees the session's maintenance hooks, and the end-of-step commit
   becomes a Refresh barrier (the server rebuilds the unit's index
   from the maintained entry). *)
let fold_maintained ctx (m : mapped)
    (apply :
      hli:Backend.Hli_import.t option ->
      maintain:Backend.Hli_import.maint option ->
      Backend.Rtl.fn ->
      Backend.Rtl.fn) : mapped =
  let use_hli =
    match ctx.variant with Some v -> Variant.use_hli v | None -> false
  in
  let entries = ref m.m_entries in
  let fns =
    List.map
      (fun (fn : Backend.Rtl.fn) ->
        let fname = fn.Backend.Rtl.fname in
        let hli = if use_hli then Hashtbl.find_opt m.m_maps fname else None in
        let remote =
          if use_hli then
            Option.bind ctx.remote (fun r -> r.remote_unit fname)
          else None
        in
        match remote with
        | Some ru ->
            let fn = apply ~hli ~maintain:(Some ru.ru_maint) fn in
            ru.ru_refresh ();
            fn
        | None ->
            let maintain =
              if use_hli then
                Option.map Hli_core.Maintain.start
                  (List.find_opt
                     (fun (e : Hli_core.Tables.hli_entry) ->
                       e.Hli_core.Tables.unit_name = fname)
                     !entries)
              else None
            in
            (match (maintain, hli) with
            | Some mt, Some { Backend.Hli_import.source = Local index; _ } ->
                Hli_core.Maintain.watch mt index
            | _ -> ());
            let fn =
              apply ~hli
                ~maintain:(Option.map Backend.Hli_import.local_maint maintain)
                fn
            in
            (match maintain with
            | Some mt ->
                let entry', index = Hli_core.Maintain.commit mt in
                (match Hashtbl.find_opt m.m_maps fname with
                | Some mp ->
                    Hashtbl.replace m.m_maps fname
                      {
                        mp with
                        Backend.Hli_import.source =
                          Backend.Hli_import.Local index;
                      }
                | None -> ());
                entries :=
                  List.map
                    (fun (e : Hli_core.Tables.hli_entry) ->
                      if e.Hli_core.Tables.unit_name = fname then entry' else e)
                    !entries
            | None -> ());
            fn)
      m.m_rtl.Backend.Rtl.fns
  in
  { m with m_rtl = { m.m_rtl with Backend.Rtl.fns = fns }; m_entries = !entries }

let add_note (m : mapped) n_pass n_text =
  { m with m_notes = m.m_notes @ [ { n_pass; n_text } ] }

let run_cse ctx ~arg:_ (m : mapped) : mapped =
  let t = Backend.Cse.fresh_stats () in
  let m =
    fold_maintained ctx m (fun ~hli ~maintain fn ->
        let s = Backend.Cse.run_fn ?hli ?maintain fn in
        t.Backend.Cse.alu_eliminated <-
          t.Backend.Cse.alu_eliminated + s.Backend.Cse.alu_eliminated;
        t.Backend.Cse.loads_eliminated <-
          t.Backend.Cse.loads_eliminated + s.Backend.Cse.loads_eliminated;
        t.Backend.Cse.call_purges <-
          t.Backend.Cse.call_purges + s.Backend.Cse.call_purges;
        t.Backend.Cse.call_survivals <-
          t.Backend.Cse.call_survivals + s.Backend.Cse.call_survivals;
        fn)
  in
  add_note m "cse"
    (Fmt.str "alu=%d loads=%d call_purges=%d call_survivals=%d"
       t.Backend.Cse.alu_eliminated t.Backend.Cse.loads_eliminated
       t.Backend.Cse.call_purges t.Backend.Cse.call_survivals)

let run_licm ctx ~arg:_ (m : mapped) : mapped =
  let t = Backend.Licm.fresh_stats () in
  let m =
    fold_maintained ctx m (fun ~hli ~maintain fn ->
        let s = Backend.Licm.run_fn ?hli ?maintain fn in
        t.Backend.Licm.hoisted_loads <-
          t.Backend.Licm.hoisted_loads + s.Backend.Licm.hoisted_loads;
        t.Backend.Licm.hoisted_alu <-
          t.Backend.Licm.hoisted_alu + s.Backend.Licm.hoisted_alu;
        t.Backend.Licm.blocked_by_alias <-
          t.Backend.Licm.blocked_by_alias + s.Backend.Licm.blocked_by_alias;
        fn)
  in
  add_note m "licm"
    (Fmt.str "hoisted_loads=%d hoisted_alu=%d blocked_by_alias=%d"
       t.Backend.Licm.hoisted_loads t.Backend.Licm.hoisted_alu
       t.Backend.Licm.blocked_by_alias)

let run_unroll ctx ~arg (m : mapped) : mapped =
  let factor = Option.value ~default:4 arg in
  let t = Backend.Unroll.fresh_stats () in
  let m =
    fold_maintained ctx m (fun ~hli:_ ~maintain fn ->
        let s = Backend.Unroll.run_fn ?maintain ~factor fn in
        t.Backend.Unroll.unrolled <-
          t.Backend.Unroll.unrolled + s.Backend.Unroll.unrolled;
        t.Backend.Unroll.copies_made <-
          t.Backend.Unroll.copies_made + s.Backend.Unroll.copies_made;
        Backend.Unroll.refresh fn)
  in
  add_note m "unroll"
    (Fmt.str "factor=%d unrolled=%d copies=%d" factor
       t.Backend.Unroll.unrolled t.Backend.Unroll.copies_made)

let run_ddg_schedule ctx ~arg:_ (m : mapped) : scheduled =
  let v = the_variant ctx in
  let md = Variant.machdesc_of ctx.ablation v in
  let hli_of_fn name = Hashtbl.find_opt m.m_maps name in
  let stats =
    Backend.Sched.schedule_program ~mode:v.Variant.alias
      ~combine_gcc:ctx.ablation.Variant.combine_gcc
      ?speculate:ctx.ablation.Variant.speculate ~hli_of_fn ~md m.m_rtl
  in
  {
    s_rtl = m.m_rtl;
    s_stats = stats;
    s_unmapped = m.m_unmapped;
    s_duplicates = m.m_duplicates;
    s_dropped = m.m_dropped;
    s_notes = m.m_notes;
  }

let run_simulate ctx ~arg:_ (s : scheduled) : Machine.Simulate.report =
  let v = the_variant ctx in
  let md = Variant.machdesc_of ctx.ablation v in
  Machine.Simulate.run ~fuel:ctx.fuel ~md (Variant.sim_machine v.machine)
    s.s_rtl

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(** All passes, in canonical pipeline order.  This order doubles as the
    telemetry stage order (see [Telemetry.stage_order]). *)
let registry : Pass.t list =
  [
    P
      {
        name = "parse_typecheck";
        prefix = "frontend";
        doc = "parse and type-check the source";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [];
        maintains_hli = false;
        input = Source;
        output = Tast;
        run = run_parse;
      };
    P
      {
        name = "analysis";
        prefix = "frontend";
        doc = "points-to, REF/MOD and dependence analysis";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [];
        maintains_hli = false;
        input = Tast;
        output = Analyzed;
        run = run_analysis;
      };
    P
      {
        name = "tblconst";
        prefix = "hligen";
        doc = "build the HLI tables (ITEMGEN + TBLCONST)";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [];
        maintains_hli = false;
        input = Analyzed;
        output = Hli;
        run = run_tblconst;
      };
    P
      {
        name = "serialize";
        prefix = "hli";
        doc = "serialize the HLI file (Table 1's size column)";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [];
        maintains_hli = false;
        input = Hli;
        output = Hli;
        run = run_serialize;
      };
    P
      {
        name = "lower";
        prefix = "backend";
        doc = "lower the typed AST to RTL";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [];
        maintains_hli = false;
        input = Hli;
        output = Mapped;
        run = run_lower;
      };
    P
      {
        name = "hli_import";
        prefix = "backend";
        doc = "map HLI items onto RTL instructions (With_hli variants)";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [ "lower" ];
        maintains_hli = false;
        input = Mapped;
        output = Mapped;
        run = run_hli_import;
      };
    P
      {
        name = "cse";
        prefix = "backend";
        doc = "local CSE with HLI-aided call handling";
        structural = false;
        takes_arg = false;
        default_arg = None;
        after = [ "hli_import" ];
        maintains_hli = true;
        input = Mapped;
        output = Mapped;
        run = run_cse;
      };
    P
      {
        name = "licm";
        prefix = "backend";
        doc = "loop-invariant code motion with HLI disambiguation";
        structural = false;
        takes_arg = false;
        default_arg = None;
        after = [ "hli_import"; "cse" ];
        maintains_hli = true;
        input = Mapped;
        output = Mapped;
        run = run_licm;
      };
    P
      {
        name = "unroll";
        prefix = "backend";
        doc = "loop unrolling with HLI item duplication";
        structural = false;
        takes_arg = true;
        default_arg = Some 4;
        after = [ "hli_import"; "cse"; "licm" ];
        maintains_hli = true;
        input = Mapped;
        output = Mapped;
        run = run_unroll;
      };
    P
      {
        name = "ddg_schedule";
        prefix = "backend";
        doc = "build DDGs (counting queries) and list-schedule blocks";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [ "lower" ];
        maintains_hli = false;
        input = Mapped;
        output = Scheduled;
        run = run_ddg_schedule;
      };
    P
      {
        name = "simulate";
        prefix = "machine";
        doc = "run the scheduled program on the variant's timing model";
        structural = true;
        takes_arg = false;
        default_arg = None;
        after = [ "ddg_schedule" ];
        maintains_hli = false;
        input = Scheduled;
        output = Simulated;
        run = run_simulate;
      };
  ]

(** Telemetry span names in canonical order, derived from the registry
    (the seed hand-maintained this list in [telemetry.ml]). *)
let span_names = List.map Pass.span_name registry

let find n = List.find_opt (fun p -> Pass.name p = n) registry

let derr fmt = Diagnostics.error ~code:"E1001" ~phase:Diagnostics.Driver fmt

let find_exn n =
  match find n with
  | Some p -> p
  | None -> derr "unknown pass %S (see --list-passes)" n

(** Human-readable pass listing for [--list-passes]. *)
let list_text () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "registered passes (in pipeline order; * = structural, always runs):\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Fmt.str "  %c %-12s %-9s -> %-10s %-55s span=%s%s\n"
           (if Pass.is_structural p then '*' else ' ')
           (Pass.name p ^ if Pass.takes_arg p then "[=N]" else "")
           (Pass.input_stage_name p) (Pass.output_stage_name p) (Pass.doc p)
           (Pass.span_name p)
           (match Pass.after p with
           | [] -> ""
           | l -> " after=" ^ String.concat "," l)))
    registry;
  Buffer.add_string b
    "optional passes are selected with --passes NAME[,NAME=N...], e.g. \
     --passes cse,licm,unroll=4\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Pass specs (the --passes CLI syntax)                                *)
(* ------------------------------------------------------------------ *)

type spec = { sp_pass : string; sp_arg : int option }

let spec ?arg name = { sp_pass = name; sp_arg = arg }

let specs_to_string specs =
  String.concat ","
    (List.map
       (fun s ->
         match s.sp_arg with
         | None -> s.sp_pass
         | Some n -> Fmt.str "%s=%d" s.sp_pass n)
       specs)

(* Ordering constraints: every pass named in [after p] that is also
   selected must appear earlier in the list. *)
let validate_order names_of_list =
  List.iteri
    (fun i (n, after) ->
      List.iter
        (fun dep ->
          List.iteri
            (fun j (n', _) ->
              if n' = dep && j > i then
                Diagnostics.error ~code:"E1004" ~phase:Diagnostics.Driver
                  "pass %s must run after %s (reorder your --passes list)" n
                  dep)
            names_of_list)
        after)
    names_of_list

let validate_specs specs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.sp_pass then
        Diagnostics.error ~code:"E1003" ~phase:Diagnostics.Driver
          "pass %s listed twice in --passes" s.sp_pass;
      Hashtbl.replace seen s.sp_pass ())
    specs;
  validate_order
    (List.map (fun s -> (s.sp_pass, Pass.after (find_exn s.sp_pass))) specs)

(** Parse a [--passes] argument ("cse,licm,unroll=4") into validated
    specs; raises driver diagnostics (code E10xx) on unknown passes,
    structural passes, malformed or out-of-range arguments, duplicates
    and ordering violations. *)
let parse_specs (s : string) : spec list =
  let toks =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let specs =
    List.map
      (fun tok ->
        let name, arg =
          match String.index_opt tok '=' with
          | None -> (tok, None)
          | Some i ->
              let name = String.sub tok 0 i in
              let a = String.sub tok (i + 1) (String.length tok - i - 1) in
              let n =
                match int_of_string_opt a with
                | Some n -> n
                | None ->
                    Diagnostics.error ~code:"E1002" ~phase:Diagnostics.Driver
                      "pass argument %S in %S is not an integer" a tok
              in
              (name, Some n)
        in
        let p = find_exn name in
        if Pass.is_structural p then
          Diagnostics.error ~code:"E1002" ~phase:Diagnostics.Driver
            "pass %s is structural: it always runs and cannot be selected"
            name;
        (match arg with
        | Some _ when not (Pass.takes_arg p) ->
            Diagnostics.error ~code:"E1002" ~phase:Diagnostics.Driver
              "pass %s takes no argument" name
        | Some n when n < 2 ->
            Diagnostics.error ~code:"E1002" ~phase:Diagnostics.Driver
              "pass %s: argument must be >= 2 (got %d)" name n
        | _ -> ());
        { sp_pass = name; sp_arg = arg })
      toks
  in
  validate_specs specs;
  specs

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

type step = { pass : Pass.t; arg : int option }

let step ?arg name = { pass = find_exn name; arg }

(** The variant-independent front half: source to serialized HLI. *)
let frontend_pipeline () : step list =
  [ step "parse_typecheck"; step "analysis"; step "tblconst"; step "serialize" ]

(** The per-variant back half.  [Gcc_only] variants never import the
    HLI (the baselines must not touch — or count — HLI lookups);
    optional passes come from the validated [specs], in spec order. *)
let backend_pipeline ~(alias : Backend.Ddg.mode) (specs : spec list) :
    step list =
  [ step "lower" ]
  @ (match alias with
    | Backend.Ddg.With_hli -> [ step "hli_import" ]
    | Backend.Ddg.Gcc_only -> [])
  @ List.map (fun s -> step ?arg:s.sp_arg s.sp_pass) specs
  @ [ step "ddg_schedule" ]

(** Check a pipeline: payload stages must chain, no pass runs twice,
    and every ordering constraint holds. *)
let validate_pipeline (steps : step list) =
  let rec chain = function
    | { pass = P a; _ } :: ({ pass = P b; _ } :: _ as rest) ->
        (match Pass.stage_eq a.output b.input with
        | Some Eq -> ()
        | None ->
            Diagnostics.error ~code:"E1005" ~phase:Diagnostics.Driver
              "pass %s produces %s but pass %s consumes %s" a.name
              (Pass.stage_name a.output) b.name (Pass.stage_name b.input));
        chain rest
    | [ _ ] | [] -> ()
  in
  chain steps;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun st ->
      let n = Pass.name st.pass in
      if Hashtbl.mem seen n then
        Diagnostics.error ~code:"E1003" ~phase:Diagnostics.Driver
          "pass %s appears twice in the pipeline" n;
      Hashtbl.replace seen n ())
    steps;
  validate_order
    (List.map (fun st -> (Pass.name st.pass, Pass.after st.pass)) steps)

(* ------------------------------------------------------------------ *)
(* Typed runner                                                        *)
(* ------------------------------------------------------------------ *)

type packed = B : 'a Pass.stage * 'a -> packed

let run_step ctx (B (st, v)) { pass = P p; arg } : packed =
  match Pass.stage_eq st p.input with
  | None ->
      Diagnostics.error ~code:"E1005" ~phase:Diagnostics.Driver
        "pass %s expects a %s payload but the pipeline carries %s" p.name
        (Pass.stage_name p.input) (Pass.stage_name st)
  | Some Eq ->
      let out =
        ctx.span.spanf (p.prefix ^ "." ^ p.name) (fun () -> p.run ctx ~arg v)
      in
      B (p.output, out)

let run_pipeline ctx (steps : step list) (init : packed) : packed =
  validate_pipeline steps;
  List.fold_left (run_step ctx) init steps

let expect : type a. a Pass.stage -> packed -> a =
 fun st (B (st', v)) ->
  match Pass.stage_eq st' st with
  | Some Eq -> v
  | None ->
      Diagnostics.error ~code:"E1005" ~phase:Diagnostics.Driver
        "pipeline produced a %s payload where %s was expected"
        (Pass.stage_name st') (Pass.stage_name st)

(** Run the front half over a source file.  Diagnostics raised while a
    source file name is known get it attached. *)
let run_frontend ctx (s : source) : hli =
  try expect Hli (run_pipeline ctx (frontend_pipeline ()) (B (Source, s)))
  with Diagnostics.Diagnostic d when s.src_file <> None && d.Diagnostics.file = None ->
    raise (Diagnostics.Diagnostic
             (Diagnostics.with_file (Option.get s.src_file) d))

(** Run only the parse/typecheck pass.  The warm-start path of the
    harness's on-disk HLI cache needs the TAST (the back end lowers it)
    without re-running analysis + TBLCONST. *)
let run_parse_typecheck ctx (s : source) : Srclang.Tast.program =
  try expect Tast (run_pipeline ctx [ step "parse_typecheck" ] (B (Source, s)))
  with Diagnostics.Diagnostic d
    when s.src_file <> None && d.Diagnostics.file = None ->
    raise (Diagnostics.Diagnostic
             (Diagnostics.with_file (Option.get s.src_file) d))

(** Run the back half for the context's variant. *)
let run_backend ctx (specs : spec list) (h : hli) : scheduled =
  let v = the_variant ctx in
  expect Scheduled
    (run_pipeline ctx (backend_pipeline ~alias:v.Variant.alias specs) (B (Hli, h)))

(** Run the [simulate] pass over a scheduled variant. *)
let simulate ctx (s : scheduled) : Machine.Simulate.report =
  expect Simulated (run_pipeline ctx [ step "simulate" ] (B (Scheduled, s)))
