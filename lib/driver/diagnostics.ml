(** Structured compiler diagnostics.

    Every error the pipeline can produce — lexing through simulation —
    is a {!t}: an error code, a severity, a pipeline phase, an optional
    source position and a message.  Layers raise {!Diagnostic} (via
    {!error}) instead of [failwith]/[invalid_arg]/ad-hoc exceptions, so
    drivers can render uniformly ([file:line:col: error[CODE]: msg]),
    map phases to distinct exit codes, and the experiment harness can
    downgrade a per-workload failure into an annotated partial row
    instead of aborting the whole run.

    Code ranges, one block per phase:
    - [E01xx] lexing          - [E02xx] parsing
    - [E03xx] type checking   - [E04xx] front-end analysis / HLI gen
    - [E05xx] RTL lowering    - [E06xx] HLI serialization
    - [E07xx] HLI maintenance / optimization passes
    - [E08xx] scheduling      - [E09xx] simulation / runtime
    - [E10xx] driver & pass-manager configuration
    - [E11xx] hlid wire protocol / remote query service

    The serialization block [E06xx] is subdivided (see
    [lib/core/serialize.ml] and [lib/core/validate.ml]):
    - [E0601] encoder misuse (negative varint)
    - [E0610] bad magic / unknown container revision
    - [E0611] truncated input         - [E0612] varint over 9 bytes / 62 bits
    - [E0613] length field exceeds remaining input
    - [E0614] out-of-range tag byte   - [E0615] per-entry CRC32 mismatch
    - [E0616] trailing / undecoded bytes
    - [E0621]..[E0629] structural validation (line-table order, region
      tree, class/alias/LCDD/REF-MOD id resolution, duplicate units)
    - [E0636] probability section value outside per-mille range 0..1000

    The wire-protocol block [E11xx] is subdivided (see
    [lib/server/protocol.ml]; DESIGN.md has the byte-level spec):
    - [E1101] unknown frame tag       - [E1102] truncated frame
    - [E1103] frame CRC32 mismatch    - [E1104] frame exceeds size bound
    - [E1105] malformed frame payload
    - [E1106] protocol state violation (query before open, double open)
    - [E1107] unknown unit name       - [E1108] relayed server-side error
    - [E1109] request/response timeout
    - [E1110] connection closed / server shutting down
    - [E1111] protocol version mismatch
    - [E1112] socket setup failure
    - [E1113] frame known but not offered at the negotiated version
      (e.g. [Q_prob] on a v4 session)

    [E1012] (driver block) flags a malformed [HLI_JOBS] value whose
    silent fallback used to hide typos (see [Pool.default_jobs]). *)

type severity = Note | Warning | Error

type phase =
  | Lex
  | Parse
  | Typecheck
  | Analysis  (** front-end analysis (points-to, REF/MOD, dependence) *)
  | Hligen  (** ITEMGEN / TBLCONST / serialization *)
  | Lower  (** GCC-like RTL lowering *)
  | Import  (** HLI import / line mapping *)
  | Opt of string  (** an optimization or maintenance pass, by name *)
  | Sched
  | Sim  (** machine simulation *)
  | Driver  (** pipeline / pass-manager configuration *)
  | Io
  | Net  (** hlid wire protocol / remote query service *)

type t = {
  code : string;  (** e.g. ["E0301"] *)
  severity : severity;
  phase : phase;
  file : string option;
  line : int;  (** 1-based; 0 = no source position *)
  col : int;
  message : string;
}

exception Diagnostic of t

let make ?file ?(line = 0) ?(col = 0) ~code ~phase ~severity message : t =
  { code; severity; phase; file; line; col; message }

(** Raise a [Diagnostic] of severity [Error], [Fmt.kstr]-style. *)
let error ?file ?line ?col ~code ~phase fmt =
  Fmt.kstr
    (fun message ->
      raise (Diagnostic (make ?file ?line ?col ~code ~phase ~severity:Error message)))
    fmt

(** Attach (or replace) the source file of a diagnostic — drivers know
    the path, the layer that raised usually does not. *)
let with_file file d = { d with file = Some file }

let severity_name = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let phase_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Analysis -> "analysis"
  | Hligen -> "hligen"
  | Lower -> "lower"
  | Import -> "hli-import"
  | Opt p -> "pass:" ^ p
  | Sched -> "sched"
  | Sim -> "sim"
  | Driver -> "driver"
  | Io -> "io"
  | Net -> "net"

(** [file:line:col: severity[CODE]: message]; position segments are
    omitted when unknown. *)
let pp ppf (d : t) =
  (match (d.file, d.line > 0) with
  | Some f, true -> Fmt.pf ppf "%s:%d:%d: " f d.line d.col
  | Some f, false -> Fmt.pf ppf "%s: " f
  | None, true -> Fmt.pf ppf "%d:%d: " d.line d.col
  | None, false -> ());
  Fmt.pf ppf "%s[%s]: %s" (severity_name d.severity) d.code d.message

let to_string (d : t) = Fmt.str "%a" pp d

(** Distinct process exit codes per failure class, used by [bin/hlic]:
    1 I/O, 2 lex/parse, 3 type, 4 compile (analysis through
    scheduling), 5 simulation/runtime, 6 driver configuration,
    7 wire protocol / remote service. *)
let exit_code (d : t) =
  match d.phase with
  | Io -> 1
  | Lex | Parse -> 2
  | Typecheck -> 3
  | Analysis | Hligen | Lower | Import | Opt _ | Sched -> 4
  | Sim -> 5
  | Driver -> 6
  | Net -> 7
