(** Typed compilation passes.

    A pass is a named, registered stage with a typed payload.  The
    payload chain mirrors the paper's Figure 3 pipeline:

    {v
    Source --parse_typecheck--> Tast --analysis--> Analyzed
           --tblconst--> Hli --serialize--> Hli
           --lower--> Mapped --hli_import--> Mapped
           --cse/licm/unroll--> Mapped --ddg_schedule--> Scheduled
           --simulate--> Simulated
    v}

    Stages are a GADT so a pipeline is checked — statically where the
    pass list is literal, dynamically (with a {!Diagnostics} error, not
    a [Match_failure]) where it is assembled from CLI specs.  The pass
    manager derives each pass's telemetry span as
    [prefix ^ "." ^ name], which is how the hand-maintained span
    strings of the seed's [pipeline.ml] became derived data. *)

type source = { src : string; src_file : string option }

type analyzed = {
  a_prog : Srclang.Tast.program;
  a_ctx : Hligen.Tblconst.context;
}

type hli = {
  h_prog : Srclang.Tast.program;
  h_entries : Hli_core.Tables.hli_entry list;
  h_bytes : int;  (** serialized size; 0 until the [serialize] pass runs *)
}

(** A human-readable per-pass result note (e.g. CSE elimination counts),
    accumulated so drivers can report what the optional passes did. *)
type note = { n_pass : string; n_text : string }

type mapped = {
  m_entries : Hli_core.Tables.hli_entry list;
      (** current entries — maintenance passes replace edited ones *)
  m_rtl : Backend.Rtl.program;
  m_maps : (string, Backend.Hli_import.t) Hashtbl.t;  (** by unit name *)
  m_unmapped : int;  (** memory refs the line mapping could not cover *)
  m_duplicates : int;  (** duplicate HLI item ids found while indexing *)
  m_dropped : int;  (** HLI entries whose unit has no RTL function *)
  m_notes : note list;
}

type scheduled = {
  s_rtl : Backend.Rtl.program;
  s_stats : Backend.Ddg.stats;
  s_unmapped : int;
  s_duplicates : int;
  s_dropped : int;
  s_notes : note list;
}

type _ stage =
  | Source : source stage
  | Tast : Srclang.Tast.program stage
  | Analyzed : analyzed stage
  | Hli : hli stage
  | Mapped : mapped stage
  | Scheduled : scheduled stage
  | Simulated : Machine.Simulate.report stage

let stage_name : type a. a stage -> string = function
  | Source -> "source"
  | Tast -> "tast"
  | Analyzed -> "analyzed"
  | Hli -> "hli"
  | Mapped -> "mapped"
  | Scheduled -> "scheduled"
  | Simulated -> "simulated"

type (_, _) eq = Eq : ('a, 'a) eq

let stage_eq : type a b. a stage -> b stage -> (a, b) eq option =
 fun a b ->
  match (a, b) with
  | Source, Source -> Some Eq
  | Tast, Tast -> Some Eq
  | Analyzed, Analyzed -> Some Eq
  | Hli, Hli -> Some Eq
  | Mapped, Mapped -> Some Eq
  | Scheduled, Scheduled -> Some Eq
  | Simulated, Simulated -> Some Eq
  | _ -> None

(** Hooks giving the back end a remote HLI session (hlid) for one
    unit.  The closures route to Batch/Notify_* wire frames; the
    driver layer stays ignorant of the protocol. *)
type remote_unit = {
  ru_source : Backend.Hli_import.query_source;
  ru_maint : Backend.Hli_import.maint;
  ru_refresh : unit -> unit;
      (** end-of-pass barrier: the server replays [Maintain.commit]'s
          index replacement so the next pass queries fresh structure *)
  ru_line_table : unit -> Hli_core.Tables.line_table;
  ru_dups : int list;  (** duplicate item ids, from the server's open *)
}

(** A remote HLI back end: [remote_unit] answers [None] when the
    server session has no such unit (the import falls back to the
    local entry). *)
type remote = { remote_unit : string -> remote_unit option }

(** Execution context threaded through every pass.  [spanf] is the
    telemetry hook — the harness supplies [Telemetry.span], so the
    driver layer never depends on the harness. *)
type ctx = {
  span : spanf;
  variant : Variant.t option;
      (** [None] while running the variant-independent front end *)
  ablation : Variant.ablation;
  fuel : int;  (** simulation fuel budget *)
  remote : remote option;
      (** when set, With_hli variants import/query/maintain HLI over a
          hlid session instead of in-process indexes *)
}

and spanf = { spanf : 'a. string -> (unit -> 'a) -> 'a }

let no_span = { spanf = (fun _ f -> f ()) }

let ctx ?(spanf = no_span) ?variant ?(ablation = Variant.baseline)
    ?(fuel = 400_000_000) ?remote () =
  { span = spanf; variant; ablation; fuel; remote }

(** The variant of a backend-pipeline context; raises a driver
    diagnostic if a variant-dependent pass runs in a front-end context
    (an internal pipeline-assembly bug, not a user error). *)
let the_variant c =
  match c.variant with
  | Some v -> v
  | None ->
      Diagnostics.error ~code:"E1010" ~phase:Diagnostics.Driver
        "variant-dependent pass run without a variant context"

type t =
  | P : {
      name : string;
      prefix : string;  (** telemetry namespace; span = prefix ^ "." ^ name *)
      doc : string;
      structural : bool;
          (** part of the fixed pipeline skeleton — always runs, not
              selectable via [--passes] *)
      takes_arg : bool;  (** accepts [name=N] in a pass spec *)
      default_arg : int option;
      after : string list;
          (** passes that must run earlier when co-selected *)
      maintains_hli : bool;
          (** edits HLI entries through {!Hli_core.Maintain} *)
      input : 'i stage;
      output : 'o stage;
      run : ctx -> arg:int option -> 'i -> 'o;
    }
      -> t

let name (P p) = p.name
let doc (P p) = p.doc
let span_name (P p) = p.prefix ^ "." ^ p.name
let is_structural (P p) = p.structural
let takes_arg (P p) = p.takes_arg
let default_arg (P p) = p.default_arg
let after (P p) = p.after
let maintains_hli (P p) = p.maintains_hli
let input_stage_name (P p) = stage_name p.input
let output_stage_name (P p) = stage_name p.output
